// Streamed-vs-materialized training benchmarks (BENCH_train.json): the same
// Table-1 training run executed the classic way — generate the full corpus,
// then Fit — and through the fused streaming path, where samples render on
// demand inside the nn prefetch pipeline and the corpus never materializes.
// The trained networks are bit-identical by construction (pinned by
// TestFitSourceBitIdenticalToFit and the layer tests above it); these
// benchmarks measure only wall clock and peak heap.
package specml

import (
	"os"
	"runtime"
	"testing"
	"time"

	"specml/internal/dataset"
	"specml/internal/msim"
	"specml/internal/rng"
	"specml/internal/toolflow"
)

// trainBenchCorpusSize scales the corpus with SPECML_BENCH_SCALE; "paper" is
// the published 100 000-spectrum MS corpus.
func trainBenchCorpusSize() int {
	switch os.Getenv("SPECML_BENCH_SCALE") {
	case "laptop":
		return 10000
	case "paper":
		return 100000
	}
	return 2000
}

// peakHeapDuring runs f while sampling the heap, returning the peak observed
// live-heap footprint in MiB. The corpus (or its absence) dominates the
// profile for seconds, so millisecond-scale sampling resolves it fully.
func peakHeapDuring(f func()) float64 {
	runtime.GC()
	var ms runtime.MemStats
	var peak uint64
	sample := func() {
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	sample()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	f()
	close(stop)
	<-done
	sample()
	return float64(peak) / (1 << 20)
}

// trainBenchWorld builds the shared fixtures: simulator, true instrument
// model and the one-epoch Table-1 training spec.
func trainBenchWorld(b *testing.B) (*msim.LineSimulator, toolflow.TopologySpec) {
	b.Helper()
	comps, err := msim.Compounds(msim.DefaultTask...)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := msim.NewLineSimulator(comps)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := toolflow.MSTable1Spec(msim.DefaultAxis().N, sim.NumCompounds(),
		"selu", "softmax", "softmax", 1, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	spec.LR = 0.005
	spec.Workers = benchWorkers()
	return sim, spec
}

// BenchmarkTrainCorpusMaterialized is the classic two-phase baseline:
// generate the full corpus in memory, shuffle, split, Fit. Peak heap carries
// the whole corpus for the entire run.
func BenchmarkTrainCorpusMaterialized(b *testing.B) {
	sim, spec := trainBenchWorld(b)
	model, axis := msim.DefaultTrueModel(), msim.DefaultAxis()
	n := trainBenchCorpusSize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peak := peakHeapDuring(func() {
			d, err := msim.GenerateTrainingWith(sim, model, axis, n, 1.0, 1, benchWorkers(), msim.TrainingOptions{})
			if err != nil {
				b.Fatal(err)
			}
			d.Shuffle(rng.New(2))
			train, val, err := d.Split(0.98)
			if err != nil {
				b.Fatal(err)
			}
			runner := &toolflow.Runner{}
			if _, err := runner.Train(spec, train, val); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(peak, "peakHeapMiB")
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkTrainCorpusStreamed is the fused pipeline on the identical
// workload: the same samples (same seeds, same shuffle-then-split) render on
// demand inside FitSource's prefetch pipeline; only the 2% validation split
// ever materializes. The trained network is bit-identical to the baseline.
func BenchmarkTrainCorpusStreamed(b *testing.B) {
	sim, spec := trainBenchWorld(b)
	model, axis := msim.DefaultTrueModel(), msim.DefaultAxis()
	n := trainBenchCorpusSize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peak := peakHeapDuring(func() {
			src, _, err := msim.NewTrainingStream(sim, model, axis, n, 1.0, 1, msim.TrainingOptions{})
			if err != nil {
				b.Fatal(err)
			}
			trainIdx, valIdx, err := dataset.SplitIndices(n, 0.98, rng.New(2))
			if err != nil {
				b.Fatal(err)
			}
			train, err := dataset.Select(src, trainIdx)
			if err != nil {
				b.Fatal(err)
			}
			val, err := dataset.Materialize(src, valIdx)
			if err != nil {
				b.Fatal(err)
			}
			runner := &toolflow.Runner{}
			if _, err := runner.TrainSource(spec, train, val); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(peak, "peakHeapMiB")
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}
