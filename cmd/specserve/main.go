// Command specserve runs the batched concurrent inference server: it loads
// nn.Save-serialized networks from a model directory and serves
// /v1/predict, /v1/monitor sessions with alarm limits, /v1/models hot
// reload and /v1/stats over HTTP/JSON, with all forward passes coalesced
// by a per-model micro-batching dispatcher.
//
//	specserve -train-demo models/         # train a quick MS model to serve
//	specserve -models models/             # serve every models/*.json
//	specserve -models models/ -addr :9090 -max-batch 64 -batch-window 2ms
//
// Example session:
//
//	curl -s localhost:8080/v1/models
//	curl -s -X POST localhost:8080/v1/predict -d '{"model":"ms-demo","intensities":[...]}'
//	curl -s -X POST localhost:8080/v1/monitor -d '{"model":"ms-demo","smoothing":0.5}'
//	curl -s -X POST localhost:8080/v1/monitor/mon-000001/step -d '{"intensities":[...]}'
//
// SIGINT/SIGTERM triggers a graceful shutdown that drains in-flight
// batches before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"specml/internal/core"
	"specml/internal/msim"
	"specml/internal/obs"
	"specml/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		models    = flag.String("models", "", "directory of *.json model files (nn.Save format)")
		maxBatch  = flag.Int("max-batch", 32, "max requests coalesced into one forward pass")
		window    = flag.Duration("batch-window", 5*time.Millisecond, "how long a batch waits for co-travellers")
		workers   = flag.Int("workers", 0, "forward-pass worker count (0 = all cores); results are identical for any value")
		quantize  = flag.Bool("quantize", false, "serve int8-quantized engines (faster forward passes, bounded accuracy drift; responses carry X-Specml-Precision)")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request dispatcher timeout")
		maxSess   = flag.Int("max-sessions", 256, "max live monitor sessions (-1 = unlimited)")
		sessIdle  = flag.Duration("session-idle-timeout", 30*time.Minute, "expire monitor sessions idle this long (-1s = never)")
		trainDemo = flag.String("train-demo", "", "train a small MS pipeline and write <dir>/ms-demo.json, then exit")
		demoSize  = flag.Int("demo-samples", 400, "with -train-demo: training-corpus size")
		demoTask  = flag.String("demo-task", "", "with -train-demo: comma-separated compound names (default: the full standard task)")
		demoEpoch = flag.Int("demo-epochs", 2, "with -train-demo: training epochs")
		seed      = flag.Uint64("seed", 1, "with -train-demo: training seed")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); off when empty")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight batches on shutdown")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		fatal(err)
	}

	if *trainDemo != "" {
		if err := trainDemoModel(logger, *trainDemo, splitTask(*demoTask), *demoSize, *demoEpoch, *seed, *workers); err != nil {
			fatal(err)
		}
		return
	}
	if *models == "" {
		fmt.Fprintln(os.Stderr, "specserve: -models is required (try -train-demo models/ first)")
		flag.Usage()
		os.Exit(2)
	}
	srv, err := serve.New(serve.Config{
		MaxBatch:           *maxBatch,
		BatchWindow:        *window,
		Workers:            *workers,
		Quantize:           *quantize,
		RequestTimeout:     *timeout,
		ModelDir:           *models,
		MaxSessions:        *maxSess,
		SessionIdleTimeout: *sessIdle,
		Logger:             logger,
	})
	if err != nil {
		fatal(err)
	}
	for _, m := range srv.Registry().List() {
		logger.Info("loaded model", "model", m.Name, "in", m.InputLen, "out", m.OutputLen,
			"params", m.Params, "precision", m.Precision)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	if *pprofAddr != "" {
		// Profiling stays off the API listener so it is never exposed by
		// accident: its own mux on its own (typically loopback) address.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
		logger.Info("pprof listening", "url", fmt.Sprintf("http://%s/debug/pprof/", *pprofAddr))
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "max_batch", *maxBatch, "window", *window, "workers", *workers)

	select {
	case sig := <-stop:
		logger.Info("signal received, draining", "signal", sig.String())
	case err := <-errc:
		fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Error("http shutdown failed", "err", err)
	}
	if err := srv.Close(ctx); err != nil {
		logger.Error("drain failed", "err", err)
	}
	logger.Info("shutdown complete")
}

// trainDemoModel runs the laptop-scale MS pipeline end to end and exports
// the trained Table-1 CNN, so a served model exists within seconds of a
// fresh checkout.
func trainDemoModel(logger *slog.Logger, dir string, task []string, samples, epochs int, seed uint64, workers int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	pipe, err := core.NewMSPipeline(core.MSConfig{
		Task:         task,
		TrainSamples: samples,
		Epochs:       epochs,
		Seed:         seed,
		Workers:      workers,
	})
	if err != nil {
		return err
	}
	proto := msim.NewVirtualInstrument(nil, seed+5)
	refs, err := msim.CollectReferences(proto, pipe.LineSimulator(), msim.DefaultAxis(),
		msim.StandardMixtures(pipe.LineSimulator().NumCompounds()), 5)
	if err != nil {
		return err
	}
	if err := pipe.Characterize(refs); err != nil {
		return err
	}
	logger.Info("training demo model", "samples", samples)
	res, err := pipe.Train(os.Stdout)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "ms-demo.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = res.Model.Save(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	logger.Info("wrote demo model", "path", path, "val_mae", res.ValMAE, "serve_with", "specserve -models "+dir)
	return nil
}

// splitTask parses a comma-separated compound list; empty means the
// pipeline's default task.
func splitTask(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specserve:", err)
	os.Exit(1)
}
