// Command msflow runs the mass-spectrometry toolchain experiments: the
// Table-1 architecture dump, the activation-function study (Fig. 5), the
// simulator-sample-size study (Fig. 6) and the final per-compound
// evaluation (Fig. 7), at a selectable workload scale.
//
// Usage:
//
//	msflow -table1
//	msflow -fig5 -scale laptop
//	msflow -fig6 -seed 7
//	msflow -fig7 -export net.json
//	msflow -all
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"specml/internal/experiments"
	"specml/internal/obs"
	"specml/internal/toolflow"
)

// logger carries the command's diagnostics; experiment tables stay on
// stdout. Replaced by the -log-format flag in main.
var logger = obs.NopLogger()

func main() {
	var (
		table1    = flag.Bool("table1", false, "print the Table-1 network architecture")
		fig5      = flag.Bool("fig5", false, "run the activation-function study (Fig. 5)")
		fig6      = flag.Bool("fig6", false, "run the simulator sample-size study (Fig. 6)")
		fig7      = flag.Bool("fig7", false, "run the final per-compound evaluation (Fig. 7)")
		all       = flag.Bool("all", false, "run every MS experiment")
		scale     = flag.String("scale", "laptop", "workload scale: quick | laptop | paper")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		workers   = flag.Int("workers", 0, "generation/training worker count (0 = all cores); results are identical for any value")
		stream    = flag.Bool("stream", false, "render training corpora on demand instead of materializing them (bit-identical networks, bounded memory)")
		ckpt      = flag.String("checkpoint", "", "with -stream: checkpoint path prefix; each network writes (and resumes from) <prefix>-<name>.ckpt every epoch")
		verbose   = flag.Bool("v", false, "per-epoch training logs")
		export    = flag.String("export", "", "with -fig7: write the trained network JSON to this file")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()

	var lerr error
	if logger, lerr = obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo); lerr != nil {
		fmt.Fprintln(os.Stderr, "msflow:", lerr)
		os.Exit(2)
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	if *ckpt != "" && !*stream {
		fatal(fmt.Errorf("-checkpoint requires -stream"))
	}
	cfg := experiments.Config{Scale: sc, Seed: *seed, Workers: *workers,
		Stream: *stream, Checkpoint: *ckpt}
	if *verbose {
		cfg.Verbose = os.Stderr
	}
	ran := false
	if *table1 || *all {
		ran = true
		if _, err := experiments.Table1(cfg, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *fig5 || *all {
		ran = true
		fmt.Println("== Fig. 5: activation-function study ==")
		if _, err := experiments.Fig5(cfg, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *fig6 || *all {
		ran = true
		fmt.Println("== Fig. 6: simulator sample-size study ==")
		if _, err := experiments.Fig6(cfg, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *fig7 || *all {
		ran = true
		fmt.Println("== Fig. 7: final evaluation ==")
		res, err := experiments.Fig7(cfg, os.Stdout)
		if err != nil {
			fatal(err)
		}
		if *export != "" {
			f, err := os.Create(*export)
			if err != nil {
				fatal(err)
			}
			err = toolflow.Export(&toolflow.Result{Model: res.Model}, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fatal(err)
			}
			logger.Info("trained network exported", "path", *export)
		}
		fmt.Println()
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	logger.Error("msflow failed", "err", err)
	os.Exit(1)
}
