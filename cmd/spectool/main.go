// Command spectool generates and inspects spectra and provenance data:
//
//	spectool -fig4                      # ideal-vs-simulated spectrum table (Fig. 4)
//	spectool -compounds                 # list the built-in compound library
//	spectool -mixture "N2=0.7,O2=0.3"   # simulate one measured mixture spectrum
//	spectool -demo-store run.json       # run a mini pipeline, save its provenance
//	spectool -store run.json -lineage networks/000004
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"specml/internal/core"
	"specml/internal/dataset"
	"specml/internal/experiments"
	"specml/internal/msim"
	"specml/internal/nmrsim"
	"specml/internal/obs"
	"specml/internal/rng"
	"specml/internal/store"
	"specml/internal/toolflow"
)

// logger carries the command's diagnostics; data tables stay on stdout.
// Replaced by the -log-format flag in main.
var logger = obs.NopLogger()

func main() {
	var (
		fig4      = flag.Bool("fig4", false, "print the Fig. 4 ideal-vs-simulated table")
		compounds = flag.Bool("compounds", false, "list the compound library")
		mixture   = flag.String("mixture", "", "simulate a mixture, e.g. \"N2=0.7,O2=0.3\"")
		storePath = flag.String("store", "", "path of a saved provenance store to inspect")
		lineage   = flag.String("lineage", "", "with -store: print the lineage of a document ID")
		demoStore = flag.String("demo-store", "", "run a mini pipeline and save its provenance store to this path")
		streamN   = flag.Int("stream-demo", 0, "train a small MS network from an N-sample streamed corpus that is never materialized; prints throughput and peak heap")
		lstmN     = flag.Int("lstm-stream-demo", 0, "train the NMR LSTM from an N-window streamed rolling-window corpus that is never materialized; prints throughput and peak heap")
		maxHeapMB = flag.Int("max-heap-mb", 0, "with -stream-demo/-lstm-stream-demo: exit non-zero if peak heap exceeds this many MiB")
		ckpt      = flag.String("checkpoint", "", "with -stream-demo/-lstm-stream-demo: checkpoint path written every epoch and resumed from when it exists")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		workers   = flag.Int("workers", 0, "generation/training worker count (0 = all cores); results are identical for any value")
		exact     = flag.Bool("exact-render", false, "force the legacy analytic peak renderer for corpus generation (slower, bit-identical to pre-render-engine corpora)")
		oversamp  = flag.Int("render-oversample", 0, "render-engine master-grid oversampling factor (0 = automatic)")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()

	var lerr error
	if logger, lerr = obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo); lerr != nil {
		fmt.Fprintln(os.Stderr, "spectool:", lerr)
		os.Exit(2)
	}

	ran := false
	if *fig4 {
		ran = true
		cfg := experiments.Config{Seed: *seed, Workers: *workers,
			ExactRender: *exact, RenderOversample: *oversamp}
		if _, _, err := experiments.Fig4(cfg, os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *compounds {
		ran = true
		fmt.Printf("%-8s %-10s %s\n", "name", "formula", "fragments (m/z: relative intensity)")
		for _, c := range msim.Library {
			fmt.Printf("%-8s %-10s", c.Name, c.Formula)
			for _, f := range c.Fragments {
				fmt.Printf(" %.0f:%.1f", f.Position, f.Intensity)
			}
			fmt.Println()
		}
	}
	if *mixture != "" {
		ran = true
		if err := simulateMixture(*mixture, *seed); err != nil {
			fatal(err)
		}
	}
	if *demoStore != "" {
		ran = true
		if err := buildDemoStore(*demoStore, *seed, *workers, *exact); err != nil {
			fatal(err)
		}
	}
	if *storePath != "" {
		ran = true
		if err := inspectStore(*storePath, *lineage); err != nil {
			fatal(err)
		}
	}
	if *streamN > 0 {
		ran = true
		if err := runStreamDemo(*streamN, *seed, *workers, *exact, *maxHeapMB, *ckpt); err != nil {
			fatal(err)
		}
	}
	if *lstmN > 0 {
		ran = true
		if err := runLSTMStreamDemo(*lstmN, *seed, *workers, *exact, *maxHeapMB, *ckpt); err != nil {
			fatal(err)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// simulateMixture parses "Name=frac,..." and prints the simulated spectrum.
func simulateMixture(spec string, seed uint64) error {
	var names []string
	var fracs []float64
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("malformed mixture term %q (want Name=fraction)", part)
		}
		f, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return fmt.Errorf("fraction in %q: %w", part, err)
		}
		names = append(names, kv[0])
		fracs = append(fracs, f)
	}
	comps, err := msim.Compounds(names...)
	if err != nil {
		return err
	}
	sim, err := msim.NewLineSimulator(comps)
	if err != nil {
		return err
	}
	ideal, err := sim.Mixture(fracs)
	if err != nil {
		return err
	}
	model := msim.DefaultTrueModel()
	s, err := model.Measure(ideal, msim.DefaultAxis(), rng.New(seed))
	if err != nil {
		return err
	}
	fmt.Println("# m/z  intensity")
	for i := 0; i < s.Axis.N; i++ {
		fmt.Printf("%6.2f  %10.6f\n", s.Axis.Value(i), s.Intensities[i])
	}
	return nil
}

// inspectStore lists collections or prints a lineage.
func inspectStore(path, lineageID string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := store.Load(f)
	if err != nil {
		return err
	}
	if lineageID != "" {
		docs, err := st.Lineage(lineageID)
		if err != nil {
			return err
		}
		fmt.Printf("lineage of %s (%d ancestors):\n", lineageID, len(docs))
		for _, d := range docs {
			fmt.Printf("  %-24s %v\n", d.ID, d.Meta)
		}
		return nil
	}
	fmt.Printf("store %s: %d documents\n", path, st.Len())
	for _, c := range st.Collections() {
		docs := st.Find(c, nil)
		fmt.Printf("  %-16s %d documents\n", c, len(docs))
		for _, d := range docs {
			fmt.Printf("    %-24s %v\n", d.ID, d.Meta)
		}
	}
	return nil
}

// buildDemoStore runs characterization + training-data generation + a
// short training through a provenance-recording pipeline and saves the
// resulting document store.
func buildDemoStore(path string, seed uint64, workers int, exactRender bool) error {
	st := store.New()
	pipe, err := core.NewMSPipeline(core.MSConfig{
		TrainSamples: 200,
		Epochs:       1,
		Seed:         seed,
		Workers:      workers,
		ExactRender:  exactRender,
		Store:        st,
	})
	if err != nil {
		return err
	}
	proto := msim.NewVirtualInstrument(nil, seed+5)
	refs, err := msim.CollectReferences(proto, pipe.LineSimulator(), msim.DefaultAxis(),
		msim.StandardMixtures(8), 5)
	if err != nil {
		return err
	}
	if err := pipe.Characterize(refs); err != nil {
		return err
	}
	if _, err := pipe.Train(nil); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = st.Save(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	logger.Info("provenance store written", "documents", st.Len(), "path", path,
		"inspect_with", "spectool -store "+path)
	for _, d := range st.Find("networks", nil) {
		logger.Info("network recorded", "trace_with",
			fmt.Sprintf("spectool -store %s -lineage %s", path, d.ID))
	}
	return nil
}

// runStreamDemo trains the Table-1 network from an n-sample streamed corpus
// that is never materialized: samples render on demand inside the nn
// prefetch pipeline, so peak heap stays bounded by the in-flight
// mini-batches and the 2% validation split regardless of n. A background
// sampler tracks peak heap; with a positive limit the demo fails when
// training memory exceeds it — the regression gate the CI small-heap job
// runs under GOMEMLIMIT.
func runStreamDemo(n int, seed uint64, workers int, exactRender bool, maxHeapMB int, checkpoint string) error {
	comps, err := msim.Compounds(msim.DefaultTask...)
	if err != nil {
		return err
	}
	sim, err := msim.NewLineSimulator(comps)
	if err != nil {
		return err
	}
	axis := msim.DefaultAxis()
	src, _, err := msim.NewTrainingStream(sim, msim.DefaultTrueModel(), axis, n, 1.0, seed,
		msim.TrainingOptions{ExactRender: exactRender})
	if err != nil {
		return err
	}
	trainIdx, valIdx, err := dataset.SplitIndices(n, 0.98, rng.New(seed+1))
	if err != nil {
		return err
	}
	train, err := dataset.Select(src, trainIdx)
	if err != nil {
		return err
	}
	val, err := dataset.Materialize(src, valIdx)
	if err != nil {
		return err
	}
	spec, err := toolflow.MSTable1Spec(axis.N, sim.NumCompounds(),
		"selu", "softmax", "softmax", 2, 32, seed)
	if err != nil {
		return err
	}
	spec.LR = 0.005
	spec.Workers = workers
	spec.Checkpoint = checkpoint

	stopWatch := watchPeakHeap()
	start := time.Now()
	runner := &toolflow.Runner{Verbose: os.Stderr}
	res, err := runner.TrainSource(spec, train, val)
	elapsed := time.Since(start)
	peakMiB := stopWatch()
	if err != nil {
		return err
	}
	rate := float64(len(trainIdx)*spec.Epochs) / elapsed.Seconds()
	fmt.Printf("stream-demo: %d samples streamed (never materialized), val MAE %.4f\n", n, res.ValMAE)
	fmt.Printf("stream-demo: %.0f samples/s over %d epochs, peak heap %.1f MiB\n",
		rate, spec.Epochs, peakMiB)
	if maxHeapMB > 0 && peakMiB > float64(maxHeapMB) {
		return fmt.Errorf("peak heap %.1f MiB exceeds the %d MiB limit", peakMiB, maxHeapMB)
	}
	return nil
}

// runLSTMStreamDemo trains the paper's Table-2 LSTM monitor network from an
// n-window streamed rolling-window corpus that is never materialized: the
// order-dependent plateau series is replayed through a windowed
// dataset.Source (nmrsim.TimeSeriesStream), so peak heap holds the recorded
// per-step rng states (~100 B/step), the in-flight mini-batches, and the 2%
// validation split — not the n x steps x 1700-point corpus. Same peak-heap
// regression gate as runStreamDemo; the CI small-heap job runs both under
// GOMEMLIMIT.
func runLSTMStreamDemo(n int, seed uint64, workers int, exactRender bool, maxHeapMB int, checkpoint string) error {
	const steps, maxRepeat = 5, 20
	p := core.NewNMRPipeline(core.NMRConfig{
		Windows:     n,
		Steps:       steps,
		MaxRepeat:   maxRepeat,
		Seed:        seed,
		Workers:     workers,
		ExactRender: exactRender,
	})
	if err := p.FitComponents(); err != nil {
		return err
	}
	src, err := p.Augmenter().TimeSeriesStream(n, steps, maxRepeat, seed+30)
	if err != nil {
		return err
	}
	trainIdx, valIdx, err := dataset.SplitIndices(n, 0.98, rng.New(seed+1))
	if err != nil {
		return err
	}
	train, err := dataset.Select(src, trainIdx)
	if err != nil {
		return err
	}
	val, err := dataset.Materialize(src, valIdx)
	if err != nil {
		return err
	}
	spec := toolflow.NMRLSTMSpec(steps, p.LowField.Axis.N, nmrsim.NumComponents, 2, 32, seed)
	spec.Workers = workers
	spec.Checkpoint = checkpoint

	stopWatch := watchPeakHeap()
	start := time.Now()
	runner := &toolflow.Runner{Verbose: os.Stderr}
	res, err := runner.TrainSource(spec, train, val)
	elapsed := time.Since(start)
	peakMiB := stopWatch()
	if err != nil {
		return err
	}
	rate := float64(len(trainIdx)*spec.Epochs) / elapsed.Seconds()
	fmt.Printf("lstm-stream-demo: %d windows streamed (never materialized), val MAE %.4f\n", n, res.ValMAE)
	fmt.Printf("lstm-stream-demo: %.0f windows/s over %d epochs, peak heap %.1f MiB\n",
		rate, spec.Epochs, peakMiB)
	if maxHeapMB > 0 && peakMiB > float64(maxHeapMB) {
		return fmt.Errorf("peak heap %.1f MiB exceeds the %d MiB limit", peakMiB, maxHeapMB)
	}
	return nil
}

// watchPeakHeap samples HeapAlloc on a background ticker. The returned stop
// function takes a final sample and reports the peak in MiB.
func watchPeakHeap() (stop func() float64) {
	var (
		mu   sync.Mutex
		peak uint64
		ms   runtime.MemStats
	)
	sample := func() {
		runtime.ReadMemStats(&ms)
		mu.Lock()
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
		mu.Unlock()
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	return func() float64 {
		close(quit)
		<-done
		sample()
		return float64(peak) / (1 << 20)
	}
}

func fatal(err error) {
	logger.Error("spectool failed", "err", err)
	os.Exit(1)
}
