// Command specfront is the fleet front door: a proxy that routes
// inference traffic across N specserve backends by consistent hashing —
// on model name for /v1/predict (so each model's micro-batcher coalesces)
// and on session ID for /v1/monitor sessions (so smoothing state stays on
// one backend). Backends are health-checked continuously; failed hops
// retry against the next ring replica with backoff, and admission control
// sheds with 429 + Retry-After when every candidate backend's queue depth
// says the fleet is saturated. Front-to-backend hops use the SPB1 binary
// spectrum codec by default (see internal/serve/wire.go).
//
//	specfront -addr :8080 -backends http://127.0.0.1:9081,http://127.0.0.1:9082
//	specfront -backends ... -shed-queue-depth 256 -retries 2 -json-hops
//
// SIGINT/SIGTERM drains in-flight requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"specml/internal/front"
	"specml/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		backends  = flag.String("backends", "", "comma-separated specserve base URLs (required)")
		vnodes    = flag.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
		retries   = flag.Int("retries", 0, "max failover attempts beyond the first backend (0 = all remaining)")
		backoff   = flag.Duration("retry-backoff", 25*time.Millisecond, "sleep before the first retry, doubling per attempt")
		healthInt = flag.Duration("health-interval", time.Second, "backend probe period")
		healthTmo = flag.Duration("health-timeout", 2*time.Second, "per-probe timeout")
		failThr   = flag.Int("fail-threshold", 2, "consecutive failures before a backend leaves rotation")
		shed      = flag.Int("shed-queue-depth", 512, "per-backend queued+inflight limit before admission control sheds (-1 = never shed)")
		retryAft  = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		hopTmo    = flag.Duration("timeout", 15*time.Second, "per-backend-hop timeout")
		maxBody   = flag.Int64("max-body-bytes", 32<<20, "client request body cap")
		jsonHops  = flag.Bool("json-hops", false, "forward to backends as JSON instead of the SPB1 binary codec")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		fatal(err)
	}
	if *backends == "" {
		fmt.Fprintln(os.Stderr, "specfront: -backends is required (comma-separated specserve URLs)")
		flag.Usage()
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	f, err := front.New(front.Config{
		Backends:       urls,
		VNodes:         *vnodes,
		Retries:        *retries,
		RetryBackoff:   *backoff,
		HealthInterval: *healthInt,
		HealthTimeout:  *healthTmo,
		FailThreshold:  *failThr,
		ShedQueueDepth: *shed,
		RetryAfter:     *retryAft,
		RequestTimeout: *hopTmo,
		MaxBodyBytes:   *maxBody,
		JSONHops:       *jsonHops,
		Logger:         logger,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: f.Handler()}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "backends", len(urls),
		"binary_hops", !*jsonHops, "shed_queue_depth", *shed)

	select {
	case sig := <-stop:
		logger.Info("signal received, draining", "signal", sig.String())
	case err := <-errc:
		fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Error("http shutdown failed", "err", err)
	}
	if err := f.Close(ctx); err != nil {
		logger.Error("front close failed", "err", err)
	}
	logger.Info("shutdown complete")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specfront:", err)
	os.Exit(1)
}
