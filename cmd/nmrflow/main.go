// Command nmrflow runs the NMR experiments: the Section III.B.3 comparison
// of the locally connected CNN, the LSTM time-series model and classical
// Indirect Hard Modelling, plus the data-augmentation ablation.
//
// Usage:
//
//	nmrflow                 # the full CNN / IHM / LSTM comparison
//	nmrflow -ablation       # physically motivated augmentation vs naive
//	nmrflow -scale quick -seed 9
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"specml/internal/experiments"
	"specml/internal/obs"
)

// logger carries the command's diagnostics; experiment tables stay on
// stdout. Replaced by the -log-format flag in main.
var logger = obs.NopLogger()

func main() {
	var (
		ablation  = flag.Bool("ablation", false, "run the augmentation ablation instead of the main comparison")
		hybrid    = flag.Bool("hybrid", false, "run the CNN+LSTM hybrid extension instead of the main comparison")
		quant     = flag.Bool("quant", false, "run the post-training quantization study instead of the main comparison")
		scale     = flag.String("scale", "laptop", "workload scale: quick | laptop | paper")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		workers   = flag.Int("workers", 0, "generation/training worker count (0 = all cores); results are identical for any value")
		exact     = flag.Bool("exact-render", false, "force the legacy analytic peak renderer for corpus generation (slower, bit-identical to pre-render-engine corpora)")
		oversamp  = flag.Int("render-oversample", 0, "render-engine master-grid oversampling factor (0 = automatic)")
		stream    = flag.Bool("stream", false, "render both training corpora on demand instead of materializing them (bit-identical networks, bounded memory)")
		ckpt      = flag.String("checkpoint", "", "with -stream: checkpoint path prefix; the CNN writes (and resumes from) <prefix>-nmr-cnn.ckpt and the LSTM <prefix>-nmr-lstm.ckpt every epoch")
		verbose   = flag.Bool("v", false, "per-epoch training logs")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()

	var lerr error
	if logger, lerr = obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo); lerr != nil {
		fmt.Fprintln(os.Stderr, "nmrflow:", lerr)
		os.Exit(2)
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	if *ckpt != "" && !*stream {
		fatal(fmt.Errorf("-checkpoint requires -stream"))
	}
	cfg := experiments.Config{Scale: sc, Seed: *seed, Workers: *workers,
		ExactRender: *exact, RenderOversample: *oversamp,
		Stream: *stream, Checkpoint: *ckpt}
	if *verbose {
		cfg.Verbose = os.Stderr
	}
	if *ablation {
		if _, err := experiments.AblationAugmentation(cfg, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *hybrid {
		if _, err := experiments.HybridNMR(cfg, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *quant {
		if _, err := experiments.QuantizationStudy(cfg, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if _, err := experiments.NMR(cfg, os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	logger.Error("nmrflow failed", "err", err)
	os.Exit(1)
}
