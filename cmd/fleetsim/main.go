// Command fleetsim drives the closed recalibration loop against a live
// serving fleet: it simulates a fleet of virtual mass spectrometers with
// configurable per-device parameter drift, streams their measurements
// through specfront-routed monitor sessions, and watches the smoothed
// residual between served predictions and simulated ground truth. When a
// device's drift detector trips, fleetsim re-characterizes the drifted
// instrument, retrains the model from a streamed corpus (checkpointed and
// resumable), publishes the new weights fleet-wide via PUT /v1/models/{name}
// and drives POST /v1/models/reload — while churn workers keep hammering
// the predict path so stale-width 409s surface and are retried.
//
//	fleetsim -front http://127.0.0.1:8080 -model ms-demo \
//	    -devices 16 -steps 200 -seed 7 \
//	    -drift-device 3 -drift-start 60 -drift-ramp 20 -drift-mass-shift 0.7 \
//	    -report report.json
//	fleetsim -config loop.json -report -        # full config file, report to stdout
//
// The run is deterministic: the same seed and drift schedule produce the
// same trip step, the same retrained model bytes and the same reload count
// regardless of -workers. The exit status is 0 only if the run completed;
// the emitted report is the e2e gate's input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"specml/internal/core"
	"specml/internal/loop"
	"specml/internal/msim"
)

func main() {
	var (
		frontURL = flag.String("front", "http://127.0.0.1:8080", "specfront (or specserve) base URL")
		config   = flag.String("config", "", "JSON loop config file; overrides every other flag except -front/-report/-v")
		report   = flag.String("report", "", "write the JSON run report here (\"-\" = stdout)")
		verbose  = flag.Bool("v", false, "log loop progress to stderr")

		devices = flag.Int("devices", 8, "fleet size")
		steps   = flag.Int("steps", 100, "measurement waves to drive")
		seed    = flag.Uint64("seed", 1, "root seed for every stochastic component")
		model   = flag.String("model", "ms-demo", "served model name to monitor and republish")
		task    = flag.String("task", "", "comma-separated compound names the served model predicts (default: the full standard task)")
		workers = flag.Int("workers", 0, "wave parallelism (0 = one worker per device)")
		churn   = flag.Int("churn", 4, "concurrent predict workers during publish+reload windows")

		driftDevice = flag.Int("drift-device", -1, "device index to drift (-1 = healthy fleet)")
		driftStart  = flag.Int("drift-start", 50, "scan at which the drift ramp begins")
		driftRamp   = flag.Int("drift-ramp", 20, "scans until the drift reaches full magnitude")
		massShift   = flag.Float64("drift-mass-shift", 0.7, "full-drift mass axis offset (m/z)")
		gainTilt    = flag.Float64("drift-gain-tilt", 3.0, "full-drift relative growth of the attenuation tilt")
		fwhmGrowth  = flag.Float64("drift-fwhm-growth", 1.0, "full-drift relative peak width growth")
		noiseGrowth = flag.Float64("drift-noise-growth", 3.0, "full-drift relative noise growth")

		calibrate = flag.Int("det-calibrate", 10, "healthy steps used to auto-calibrate detector levels (0 = use -det-threshold/-det-trip)")
		thrFactor = flag.Float64("det-threshold-factor", 3, "allowance as a multiple of the calibrated healthy residual")
		tripFact  = flag.Float64("det-trip-factor", 12, "trip level as a multiple of the calibrated healthy residual")
		threshold = flag.Float64("det-threshold", 0, "explicit residual allowance (with -det-calibrate 0)")
		trip      = flag.Float64("det-trip", 0, "explicit CUSUM trip level (with -det-calibrate 0)")
		smoothing = flag.Float64("det-smoothing", 0.6, "residual EWMA factor in [0,1)")
		warmup    = flag.Int("det-warmup", 3, "detector steps before CUSUM accumulation starts")

		samples    = flag.Int("recal-samples", 512, "streamed retrain corpus size")
		refSamples = flag.Int("recal-ref-samples", 3, "reference measurements per mixture for re-characterization")
		epochs     = flag.Int("recal-epochs", 3, "retrain epochs")
		batch      = flag.Int("recal-batch", 32, "retrain batch size")
		axisScale  = flag.Int("recal-axis-scale", 1, "axis refinement factor for the retrain (>1 changes the served input width)")
		topology   = flag.String("recal-topology", "table1", "retrain topology: table1 or dense")
		hidden     = flag.Int("recal-hidden", 32, "dense topology hidden width")
		checkpoint = flag.String("recal-checkpoint", "", "checkpoint file making the retrain resumable")
		maxRecals  = flag.Int("recal-max", 1, "recalibration budget for the run")
	)
	flag.Parse()

	var cfg loop.Config
	if *config != "" {
		data, err := os.ReadFile(*config)
		if err != nil {
			fatal(err)
		}
		cfg, err = loop.ParseConfig(data)
		if err != nil {
			fatal(err)
		}
	} else {
		cfg = loop.Config{
			Devices: *devices,
			Steps:   *steps,
			Seed:    *seed,
			Model:   *model,
			Task:    splitTask(*task),
			Workers: *workers,
			Churn:   *churn,
			Drift: loop.DriftSpec{
				Device: *driftDevice,
				Schedule: msim.DriftSchedule{
					StartScan:   *driftStart,
					RampScans:   *driftRamp,
					MassShift:   *massShift,
					GainTilt:    *gainTilt,
					FWHMGrowth:  *fwhmGrowth,
					NoiseGrowth: *noiseGrowth,
				},
			},
			Detector: loop.DetectorSpec{
				DriftConfig: core.DriftConfig{
					Smoothing: *smoothing,
					Threshold: *threshold,
					Trip:      *trip,
					Warmup:    *warmup,
				},
				Calibrate:       *calibrate,
				ThresholdFactor: *thrFactor,
				TripFactor:      *tripFact,
			},
			Recal: loop.RecalSpec{
				Samples:    *samples,
				RefSamples: *refSamples,
				Epochs:     *epochs,
				Batch:      *batch,
				AxisScale:  *axisScale,
				Topology:   *topology,
				Hidden:     *hidden,
				Checkpoint: *checkpoint,
				MaxRecals:  *maxRecals,
			},
		}
		if *driftDevice < 0 {
			// Healthy fleet: drop the schedule so validation doesn't see a
			// half-configured fault.
			cfg.Drift = loop.DriftSpec{Device: -1}
		}
	}

	l, err := loop.New(cfg, loop.NewHTTPClient(*frontURL, nil))
	if err != nil {
		fatal(err)
	}
	if *verbose {
		l.Verbose = os.Stderr
	}
	rep, runErr := l.Run()
	if err := writeReport(*report, rep); err != nil {
		fatal(err)
	}
	if runErr != nil {
		fatal(runErr)
	}
	fmt.Fprintf(os.Stderr, "fleetsim: %d devices x %d steps: trips@%d recals=%d reloads=%d 409s=%d 5xx=%d\n",
		rep.Devices, rep.Steps, rep.TripStep, rep.Recals, rep.Reloads, rep.Conflicts, rep.Server5xx)
}

func writeReport(path string, rep loop.Report) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleetsim:", err)
	os.Exit(1)
}

// splitTask parses a comma-separated compound list; empty means the loop's
// default task.
func splitTask(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
