// Command platformsim reproduces Table 2: the execution time, power and
// energy of the Table-1 network on the Jetson Nano and Jetson TX2
// platform models (CPU and GPU each), and optionally measures real
// inference latency on the host machine.
//
// Usage:
//
//	platformsim
//	platformsim -host -samples 5000
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"specml/internal/experiments"
	"specml/internal/obs"
)

// logger carries the command's diagnostics; experiment tables stay on
// stdout. Replaced by the -log-format flag in main.
var logger = obs.NopLogger()

func main() {
	var (
		host      = flag.Bool("host", false, "also measure real inference latency on this machine")
		section4  = flag.Bool("section4", false, "also estimate the Section-IV FPGA alternatives")
		samples   = flag.Int("samples", 1000, "with -host: number of inferences to time")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()

	var lerr error
	if logger, lerr = obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo); lerr != nil {
		fmt.Fprintln(os.Stderr, "platformsim:", lerr)
		os.Exit(2)
	}

	cfg := experiments.Config{Seed: *seed}
	if _, err := experiments.Table2(cfg, os.Stdout); err != nil {
		fatal(err)
	}
	if *section4 {
		fmt.Println()
		if _, err := experiments.SectionIV(cfg, os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *host {
		fmt.Println()
		if _, err := experiments.HostInference(cfg, *samples, os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	logger.Error("platformsim failed", "err", err)
	os.Exit(1)
}
