// Benchmark harness regenerating every table and figure of the paper's
// evaluation. Each benchmark prints/records the same quantities the paper
// reports; custom metrics expose the headline numbers (MAE/MSE in percent,
// latencies, speedups) in the benchmark output.
//
// Scale: benchmarks default to the "quick" workload so a full -bench=.
// sweep stays in the minutes range. Set SPECML_BENCH_SCALE=laptop (or
// paper) to rerun at larger scale; cmd/msflow and cmd/nmrflow run the
// laptop scale by default and print the full tables.
package specml

import (
	"io"
	"os"
	"strconv"
	"testing"

	"specml/internal/experiments"
	"specml/internal/ihm"
	"specml/internal/msim"
	"specml/internal/nmrsim"
	"specml/internal/rng"
	"specml/internal/toolflow"
)

func benchConfig() experiments.Config {
	scale := experiments.Quick
	if s := os.Getenv("SPECML_BENCH_SCALE"); s != "" {
		if parsed, err := experiments.ParseScale(s); err == nil {
			scale = parsed
		}
	}
	return experiments.Config{Scale: scale, Seed: 1, Workers: benchWorkers()}
}

// benchWorkers reads SPECML_BENCH_WORKERS (default 0 = all cores). All
// results are bit-identical for any value, so the knob only moves the
// clock, never the reported metrics.
func benchWorkers() int {
	if s := os.Getenv("SPECML_BENCH_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return n
		}
	}
	return 0
}

// BenchmarkFig4SpectrumSimulation measures Tool 3: rendering one non-ideal
// continuous spectrum from an ideal line spectrum (the core of the
// "simulated measurement series ... generated in minutes" claim).
func BenchmarkFig4SpectrumSimulation(b *testing.B) {
	comps, err := msim.Compounds(msim.DefaultTask...)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := msim.NewLineSimulator(comps)
	if err != nil {
		b.Fatal(err)
	}
	frac := make([]float64, sim.NumCompounds())
	for i := range frac {
		frac[i] = 1 / float64(len(frac))
	}
	ideal, err := sim.Mixture(frac)
	if err != nil {
		b.Fatal(err)
	}
	model := msim.DefaultTrueModel()
	axis := msim.DefaultAxis()
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Measure(ideal, axis, src); err != nil {
			b.Fatal(err)
		}
	}
}

// fig4CorpusBench generates one Fig.4-style simulated training corpus with
// the given worker count and reports throughput in spectra per second.
func fig4CorpusBench(b *testing.B, workers int) {
	comps, err := msim.Compounds(msim.DefaultTask...)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := msim.NewLineSimulator(comps)
	if err != nil {
		b.Fatal(err)
	}
	model := msim.DefaultTrueModel()
	axis := msim.DefaultAxis()
	n := 250
	if s := os.Getenv("SPECML_BENCH_SCALE"); s == "laptop" {
		n = 1500
	} else if s == "paper" {
		n = 100000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := msim.GenerateTraining(sim, model, axis, n, 1.0, 1, workers); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "spectra/s")
}

// BenchmarkFig4CorpusGenerationSequential is the single-worker baseline of
// the corpus-generation speedup study (BENCH_parallel.json).
func BenchmarkFig4CorpusGenerationSequential(b *testing.B) { fig4CorpusBench(b, 1) }

// BenchmarkFig4CorpusGenerationParallel generates the same bit-identical
// corpus on all cores.
func BenchmarkFig4CorpusGenerationParallel(b *testing.B) { fig4CorpusBench(b, benchWorkers()) }

// table2TrainBench trains the Table-1 CNN on a fixed simulated corpus with
// the given worker count — the training half of the speedup study.
func table2TrainBench(b *testing.B, workers int) {
	comps, err := msim.Compounds(msim.DefaultTask...)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := msim.NewLineSimulator(comps)
	if err != nil {
		b.Fatal(err)
	}
	d, err := msim.GenerateTraining(sim, msim.DefaultTrueModel(), msim.DefaultAxis(), 250, 1.0, 1, workers)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := toolflow.MSTable1Spec(msim.DefaultAxis().N, sim.NumCompounds(),
		"selu", "softmax", "softmax", 2, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	spec.LR = 0.005
	spec.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner := &toolflow.Runner{}
		if _, err := runner.Train(spec, d, d); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.Len()*2)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkTable2TrainingSequential is the single-worker training baseline.
func BenchmarkTable2TrainingSequential(b *testing.B) { table2TrainBench(b, 1) }

// BenchmarkTable2TrainingParallel trains the same bit-identical network on
// all cores.
func BenchmarkTable2TrainingParallel(b *testing.B) { table2TrainBench(b, benchWorkers()) }

// BenchmarkTable1Inference measures one forward pass of the Table-1 CNN on
// the host (the per-sample cost underlying Table 2).
func BenchmarkTable1Inference(b *testing.B) {
	spec, err := toolflow.MSTable1Spec(msim.DefaultAxis().N, 8, "selu", "softmax", "softmax", 1, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	m, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, m.InputLen())
	for i := range x {
		x[i] = 1 / float64(len(x))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

// BenchmarkFig5ActivationStudy regenerates the activation study and
// reports the best softmax-head and best linear-head measured MAE.
func BenchmarkFig5ActivationStudy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		bestSoftmax, bestLinear := 1.0, 1.0
		for _, r := range rows {
			isSoftmaxOut := r.Name[len(r.Name)-4:] == "sftm"
			if isSoftmaxOut && r.MeasMAE < bestSoftmax {
				bestSoftmax = r.MeasMAE
			}
			if !isSoftmaxOut && r.MeasMAE < bestLinear {
				bestLinear = r.MeasMAE
			}
		}
		b.ReportMetric(100*bestSoftmax, "bestSoftmaxMeasMAE%")
		b.ReportMetric(100*bestLinear, "bestLinearMeasMAE%")
	}
}

// BenchmarkFig6SampleSizeStudy regenerates the sample-size sweep and
// reports the measured MAE at the smallest and largest budgets.
func BenchmarkFig6SampleSizeStudy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if r, ok := rows[10]; ok {
			b.ReportMetric(100*r.MeasMAE, "measMAE%@10")
		}
		if r, ok := rows[25]; ok {
			b.ReportMetric(100*r.MeasMAE, "measMAE%@25")
		}
	}
}

// BenchmarkFig7FinalEvaluation regenerates the final evaluation and
// reports the simulated-vs-measured MAE pair (paper: 0.27% vs 1.5%).
func BenchmarkFig7FinalEvaluation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.SimMAE, "simMAE%")
		b.ReportMetric(100*res.MeasMAE, "measMAE%")
	}
}

// BenchmarkTable2PlatformStudy regenerates Table 2 and reports the Nano
// and TX2 GPU speedups (paper: 4.8x and 7.1x).
func BenchmarkTable2PlatformStudy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Estimate.TimeSeconds/rows[1].Estimate.TimeSeconds, "nanoSpeedupX")
		b.ReportMetric(rows[2].Estimate.TimeSeconds/rows[3].Estimate.TimeSeconds, "tx2SpeedupX")
	}
}

// BenchmarkNMRCNNvsIHM regenerates the Section III.B.3 comparison and
// reports the CNN/IHM MSE ratio (paper: ~0.95) and the IHM-over-CNN
// speedup (paper: >1000x).
func BenchmarkNMRCNNvsIHM(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.NMR(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CNNMSE/res.IHMMSE, "cnnOverIhmMSE")
		b.ReportMetric(res.Speedup, "ihmOverCnnSpeedupX")
		b.ReportMetric(res.LSTMMSE/res.CNNMSE, "lstmOverCnnMSE")
		b.ReportMetric(res.LSTMPlateauStd/res.CNNPlateauStd, "lstmPlateauStdRatio")
	}
}

// BenchmarkNMRCNNInference measures a single forward pass of the
// 10532-parameter NMR CNN (paper: 0.9 ms on an i7-8565U with TensorFlow).
func BenchmarkNMRCNNInference(b *testing.B) {
	spec := toolflow.NMRCNNSpec(nmrsim.Axis().N, nmrsim.NumComponents, 1, 32, 1)
	m, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, m.InputLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

// BenchmarkNMRLSTMInference measures a single forward pass of the
// 221956-parameter LSTM over 5 timesteps (paper: 1.05 ms).
func BenchmarkNMRLSTMInference(b *testing.B) {
	spec := toolflow.NMRLSTMSpec(5, nmrsim.Axis().N, nmrsim.NumComponents, 1, 32, 1)
	m, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, m.InputLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

// BenchmarkIHMAnalysis measures one classical IHM mixture analysis — the
// baseline latency the paper's ">1000 times faster" claim compares
// against.
func BenchmarkIHMAnalysis(b *testing.B) {
	ins := nmrsim.NewLowField(3)
	comps := nmrsim.TrueComponents()
	an, err := ihm.NewMixtureAnalyzer(comps, ihm.AnalyzerOptions{MaxShift: 0.03, WidthRange: 0.4})
	if err != nil {
		b.Fatal(err)
	}
	s, err := ins.Measure([]float64{0.3, 0.2, 0.3, 0.2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.Analyze(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSectionIVPlatforms regenerates the Section-IV FPGA-alternative
// estimates and reports the soft-GPU and specialized speedups over the ARM
// baseline (paper: 4.2x and ~420x).
func BenchmarkSectionIVPlatforms(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SectionIV(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		arm := rows[0].Estimate.TimeSeconds
		b.ReportMetric(arm/rows[1].Estimate.TimeSeconds, "fgpuSpeedupX")
		b.ReportMetric(arm/rows[3].Estimate.TimeSeconds, "specializedSpeedupX")
	}
}

// BenchmarkHybridNMR regenerates the future-work CNN+LSTM hybrid study and
// reports the hybrid/LSTM MSE ratio.
func BenchmarkHybridNMR(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.HybridNMR(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HybridMSE/res.LSTMMSE, "hybridOverLstmMSE")
		b.ReportMetric(float64(res.HybridLatency)/float64(res.LSTMLatency), "latencyRatio")
	}
}

// BenchmarkQuantizationStudy regenerates the post-training quantization
// study and reports the 8-bit/float MSE ratio (near 1 means int8 deploys
// safely on number-format-tailored overlays).
func BenchmarkQuantizationStudy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.QuantizationStudy(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		baseline := rows[0].MeasuredMSE
		for _, r := range rows {
			if r.Bits == 8 {
				b.ReportMetric(r.MeasuredMSE/baseline, "int8OverFloatMSE")
			}
			if r.Bits == 4 {
				b.ReportMetric(r.MeasuredMSE/baseline, "int4OverFloatMSE")
			}
		}
	}
}

// BenchmarkAblationAugmentation regenerates the augmentation ablation and
// reports the naive/augmented MSE ratio (>1 means the paper's method wins).
func BenchmarkAblationAugmentation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationAugmentation(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.NaiveMSE/res.AugmentedMSE, "naiveOverAugMSE")
	}
}

// fig7Augmenter builds the Fig. 7-scale NMR augmenter (the paper's central
// data-augmentation workload: 1700-point spectra, four components, shift
// and width jitter plus noise) in cached or legacy-exact rendering mode.
func fig7Augmenter(exact bool) *nmrsim.Augmenter {
	return &nmrsim.Augmenter{
		Axis:           nmrsim.Axis(),
		Components:     nmrsim.TrueComponents(),
		ConcLo:         []float64{0, 0, 0, 0},
		ConcHi:         []float64{0.6, 0.6, 0.6, 0.5},
		ShiftJitter:    0.008,
		WidthJitter:    0.05,
		NoiseSigma:     0.01,
		IntensityScale: 0.05,
		Workers:        1, // single core: the speedup must come from the engine, not parallelism
		ExactRender:    exact,
	}
}

// fig7AugmentationBench renders Fig. 7-scale augmented corpora through the
// given render mode, reusing one dataset so the cached path runs at its
// zero-alloc steady state; throughput is reported in spectra per second.
func fig7AugmentationBench(b *testing.B, exact bool) {
	a := fig7Augmenter(exact)
	const n = 100
	d, err := a.Generate(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.GenerateInto(d, n, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "spectra/s")
}

// BenchmarkFig7AugmentationExact is the legacy analytic renderer baseline
// of the render-engine speedup study (BENCH_render.json).
func BenchmarkFig7AugmentationExact(b *testing.B) { fig7AugmentationBench(b, true) }

// BenchmarkFig7AugmentationCached renders the bit-compatible corpus through
// the cached-template engine on the same single core.
func BenchmarkFig7AugmentationCached(b *testing.B) { fig7AugmentationBench(b, false) }

// fig4CorpusRenderBench is the MS half of the render study: one Fig. 4
// simulated training corpus on a single core, cached vs exact rendering.
func fig4CorpusRenderBench(b *testing.B, opts msim.TrainingOptions) {
	comps, err := msim.Compounds(msim.DefaultTask...)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := msim.NewLineSimulator(comps)
	if err != nil {
		b.Fatal(err)
	}
	model := msim.DefaultTrueModel()
	axis := msim.DefaultAxis()
	const n = 250
	d, err := msim.GenerateTrainingWith(sim, model, axis, n, 1.0, 1, 1, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := msim.GenerateTrainingInto(d, sim, model, axis, n, 1.0, uint64(i), 1, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "spectra/s")
}

// BenchmarkFig4CorpusRenderExact is the legacy per-sample Mixture+Measure
// baseline of the MS corpus-generation speedup.
func BenchmarkFig4CorpusRenderExact(b *testing.B) {
	fig4CorpusRenderBench(b, msim.TrainingOptions{ExactRender: true})
}

// BenchmarkFig4CorpusRenderCached composes the same corpus from cached
// instrument-rendered compound templates.
func BenchmarkFig4CorpusRenderCached(b *testing.B) {
	fig4CorpusRenderBench(b, msim.TrainingOptions{})
}
