// Package specml reproduces "Artificial Intelligence for Mass Spectrometry
// and Nuclear Magnetic Resonance Spectroscopy Using a Novel Data
// Augmentation Method" (Fricke et al., DATE 2021 / IEEE TETC 2021) as a
// pure-Go library: physically motivated spectra simulators for MS and NMR,
// a from-scratch neural-network framework, Indirect Hard Modelling, an
// embedded-platform cost model and a benchmark harness regenerating every
// table and figure of the paper's evaluation.
//
// # Parallelism
//
// Dataset generation, Model.Fit and batched inference run on a shared
// worker pool (internal/parallel) controlled by a single Workers knob
// (0 = all cores) threaded through experiments.Config, the core pipeline
// configs, toolflow.TopologySpec and the cmd/* -workers flags. Results
// are bit-identical for any worker count: generation derives one
// rng.Split child stream per sample index, training reduces per-sample
// gradients in sample order from weight-aliased per-worker replicas, and
// per-row inference outputs are index-keyed. Workers is therefore a pure
// throughput knob — equal seeds give equal corpora and equal networks,
// sequential or parallel. SPECML_BENCH_SCALE and SPECML_BENCH_WORKERS
// compose in the benchmark harness: the former picks the corpus size,
// the latter the worker count.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results. The root package contains
// no code; the library lives under internal/ and is exercised through the
// commands in cmd/ and the examples in examples/.
package specml
