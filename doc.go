// Package specml reproduces "Artificial Intelligence for Mass Spectrometry
// and Nuclear Magnetic Resonance Spectroscopy Using a Novel Data
// Augmentation Method" (Fricke et al., DATE 2021 / IEEE TETC 2021) as a
// pure-Go library: physically motivated spectra simulators for MS and NMR,
// a from-scratch neural-network framework, Indirect Hard Modelling, an
// embedded-platform cost model and a benchmark harness regenerating every
// table and figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results. The root package contains
// no code; the library lives under internal/ and is exercised through the
// commands in cmd/ and the examples in examples/.
package specml
