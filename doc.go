// Package specml reproduces "Artificial Intelligence for Mass Spectrometry
// and Nuclear Magnetic Resonance Spectroscopy Using a Novel Data
// Augmentation Method" (Fricke et al., DATE 2021 / IEEE TETC 2021) as a
// pure-Go library: physically motivated spectra simulators for MS and NMR,
// a from-scratch neural-network framework, Indirect Hard Modelling, an
// embedded-platform cost model and a benchmark harness regenerating every
// table and figure of the paper's evaluation.
//
// # Parallelism
//
// Dataset generation, Model.Fit and batched inference run on a shared
// worker pool (internal/parallel) controlled by a single Workers knob
// (0 = all cores) threaded through experiments.Config, the core pipeline
// configs, toolflow.TopologySpec and the cmd/* -workers flags. Results
// are bit-identical for any worker count: generation derives one
// rng.Split child stream per sample index, training reduces per-sample
// gradients in sample order from weight-aliased per-worker replicas, and
// per-row inference outputs are index-keyed. Workers is therefore a pure
// throughput knob — equal seeds give equal corpora and equal networks,
// sequential or parallel. SPECML_BENCH_SCALE and SPECML_BENCH_WORKERS
// compose in the benchmark harness: the former picks the corpus size,
// the latter the worker count.
//
// # Serving
//
// internal/serve and cmd/specserve expose trained models as an HTTP/JSON
// inference service: /v1/predict (one spectrum to substance fractions),
// /v1/monitor (stateful core.Monitor sessions with alarm bands),
// /v1/models (registry with hot reload from a model directory) and
// /v1/stats (batch-size histogram, p50/p99 latency). Every forward pass
// is routed through a per-model micro-batching dispatcher that coalesces
// requests arriving within a configurable window (default 5ms, max batch
// 32) into one PredictBatch call; since PredictBatch is bit-identical to
// sequential Predict, batching never changes a response. Shutdown drains
// in-flight batches. Golden-file tests pin the on-disk model formats and
// fuzz harnesses keep the request decoder and spectrum preprocessing
// panic-free on hostile input.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results. The root package contains
// no code; the library lives under internal/ and is exercised through the
// commands in cmd/ and the examples in examples/.
package specml
