// Augmentation ablation: why the paper's data augmentation is
// *physically motivated* rather than a naive linear combination.
//
// Two identical NMR CNNs are trained on synthetic corpora generated from
// the same fitted IHM component models. The first corpus includes random
// per-component peak shifts and line broadenings — the distortions real
// mixtures exhibit ("the mixing of compounds in solution may shift single
// NMR peaks"). The second corpus is a plain linear combination with no
// distortions. Both networks are evaluated on a measured reactor campaign
// whose spectra do shift and broaden; the augmented network generalizes
// better.
//
// Run with: go run ./examples/augmentation_study
package main

import (
	"fmt"
	"log"
	"os"

	"specml/internal/experiments"
)

func main() {
	cfg := experiments.Config{Scale: experiments.Quick, Seed: 3}
	if len(os.Args) > 1 && os.Args[1] == "-laptop" {
		cfg.Scale = experiments.Laptop
	}
	res, err := experiments.AblationAugmentation(cfg, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if res.NaiveMSE > res.AugmentedMSE {
		fmt.Println("\n=> the physically motivated augmentation generalizes better,")
		fmt.Println("   reproducing the paper's argument for IHM-based simulation.")
	} else {
		fmt.Println("\n=> at this tiny scale the ordering is noisy; rerun with -laptop.")
	}
}
