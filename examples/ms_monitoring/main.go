// Closed-loop process monitoring: the scenario of the paper's Fig. 1.
//
// A trained MS pipeline watches a (virtual) process stream. The oxygen
// fraction slowly drifts out of its specification band; the monitor's
// smoothed estimates raise an alarm that a plant controller would act on.
// The example also demonstrates the plausibility check: a sample
// contaminated with a compound outside the measurement task is rejected
// instead of silently producing a wrong composition.
//
// Run with: go run ./examples/ms_monitoring
package main

import (
	"errors"
	"fmt"
	"log"

	"specml/internal/core"
	"specml/internal/msim"
	"specml/internal/spectrum"
)

func main() {
	pipe, err := core.NewMSPipeline(core.MSConfig{
		TrainSamples: 1000,
		Epochs:       18,
		Seed:         11,
	})
	if err != nil {
		log.Fatal(err)
	}
	proto := msim.NewVirtualInstrument(nil, 23)
	refs, err := msim.CollectReferences(proto, pipe.LineSimulator(), msim.DefaultAxis(),
		msim.StandardMixtures(8), 12)
	if err != nil {
		log.Fatal(err)
	}
	if err := pipe.Characterize(refs); err != nil {
		log.Fatal(err)
	}
	if _, err := pipe.Train(nil); err != nil {
		log.Fatal(err)
	}

	// quality control: O2 must stay below 12% in the product stream
	monitor, err := core.NewMonitor(pipe.Names(),
		[]core.Limit{{Name: "O2", Min: 0, Max: 0.12}}, 0.6)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("monitoring the process stream (O2 spec: <= 12%)")
	fmt.Println("step   O2 true   O2 estimate   status")
	for step := 0; step < 20; step++ {
		// the process drifts: an air leak raises O2 from 5% to 20%
		o2 := 0.05 + 0.15*float64(step)/19
		frac := []float64{0, 0.05, 0, 0.60 - o2, o2, 0, 0.35, 0}
		ideal, err := pipe.LineSimulator().Mixture(frac)
		if err != nil {
			log.Fatal(err)
		}
		sample, err := proto.Measure(ideal, msim.DefaultAxis())
		if err != nil {
			log.Fatal(err)
		}
		pred, err := pipe.Predict(sample)
		if err != nil {
			log.Fatal(err)
		}
		alarms, err := monitor.Step(pred)
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if len(alarms) > 0 {
			status = "ALARM: " + alarms[0].String()
		}
		fmt.Printf("%4d   %6.1f%%   %10.1f%%   %s\n",
			step, 100*o2, 100*monitor.Smoothed()[4], status)
	}

	// plausibility check: a propane contamination (not part of the task)
	fmt.Println("\ninjecting a sample contaminated with propane (unknown to the task):")
	propane, err := msim.ByName("C3H8")
	if err != nil {
		log.Fatal(err)
	}
	contaminated := propane.Lines()
	taskMix, _ := pipe.LineSimulator().Mixture([]float64{0, 0, 0, 0.5, 0, 0, 0, 0})
	blended, err := spectrum.SuperposeLines([]float64{0.5, 0.5},
		[]*spectrum.LineSpectrum{taskMix, contaminated})
	if err != nil {
		log.Fatal(err)
	}
	sample, err := proto.Measure(blended, msim.DefaultAxis())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := pipe.Predict(sample); err != nil {
		var impl *core.ErrImplausibleInput
		if errors.As(err, &impl) {
			fmt.Printf("rejected as implausible (%.1f%% of intensity outside known fragments)\n",
				100*impl.UnknownFraction)
		} else {
			log.Fatal(err)
		}
	} else {
		fmt.Println("WARNING: contaminated sample was not rejected")
	}
}
