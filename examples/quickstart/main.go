// Quickstart: the end-to-end MS flow in ~40 lines.
//
//  1. Stand up the virtual miniaturized mass spectrometer (the prototype).
//  2. Measure a handful of reference mixtures and characterize the
//     instrument (Tool 2).
//  3. Generate a simulated training corpus and train the Table-1 CNN
//     (Tools 1+3+4).
//  4. Predict the composition of a freshly measured sample.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"specml/internal/core"
	"specml/internal/msim"
)

func main() {
	// the pipeline owns the measurement task (8 gases) and the toolchain;
	// small sizes keep this demo under a minute single-threaded
	pipe, err := core.NewMSPipeline(core.MSConfig{
		TrainSamples: 1000,
		Epochs:       18,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// the "real" instrument: a virtual prototype with impurities and drift
	// the pipeline knows nothing about
	proto := msim.NewVirtualInstrument(nil, 7)

	// measure 14 reference mixtures, 12 spectra each, and characterize
	refs, err := msim.CollectReferences(proto, pipe.LineSimulator(), msim.DefaultAxis(),
		msim.StandardMixtures(8), 12)
	if err != nil {
		log.Fatal(err)
	}
	if err := pipe.Characterize(refs); err != nil {
		log.Fatal(err)
	}
	est := pipe.InstrumentModel()
	fmt.Printf("characterized instrument: peak FWHM %.2f + %.4f*m/z, mass offset %+.3f\n",
		est.PeakFWHM0, est.PeakFWHMSlope, est.MassOffset)

	// train on simulated spectra only
	res, err := pipe.Train(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s: %d parameters, simulated validation MAE %.2f%%\n",
		res.Spec.Name, res.Model.NumParams(), 100*res.ValMAE)

	// measure an unknown sample on the prototype and predict its makeup
	truth := []float64{0, 0.1, 0, 0.6, 0.1, 0, 0.2, 0} // CH4/N2/O2/CO2 blend
	ideal, err := pipe.LineSimulator().Mixture(truth)
	if err != nil {
		log.Fatal(err)
	}
	sample, err := proto.Measure(ideal, msim.DefaultAxis())
	if err != nil {
		log.Fatal(err)
	}
	pred, err := pipe.Predict(sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncompound   true    predicted")
	for i, name := range pipe.Names() {
		fmt.Printf("%-8s %6.1f%%  %8.1f%%\n", name, 100*truth[i], 100*pred[i])
	}
}
