module specml

go 1.22
