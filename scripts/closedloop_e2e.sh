#!/usr/bin/env bash
# closedloop_e2e.sh — fault-injecting check of the closed recalibration loop.
#
# Builds specserve + specfront + fleetsim, boots 1 front + 2 backends on
# loopback (each serving the same demo model from its own model directory),
# and runs fleetsim with a drift schedule forced onto one device at a known
# step. The run must close the loop end to end:
#
#   * the drift detector trips on the drifted device (and only after the
#     drift began),
#   * exactly ONE recalibration fires: re-characterize -> streamed retrain
#     -> publish -> fleet-wide hot reload,
#   * the retrain publishes at a refined axis width, so requests queued
#     across the swap hit the 409 stale-width path: at least one 409 must
#     be observed AND retried by the churn workers during the reload
#     window,
#   * zero 5xx anywhere,
#   * after the reload, the recalibrated device's smoothed residual sits
#     back below its trip allowance.
#
# Usage: scripts/closedloop_e2e.sh
set -euo pipefail

cd "$(dirname "$0")/.."
. scripts/lib.sh
e2e_init closedloop_e2e

FRONT_PORT=19180
B1_PORT=19181
B2_PORT=19182
FRONT="http://127.0.0.1:${FRONT_PORT}"

echo "== build"
go build -o "$TMP/specserve" ./cmd/specserve
go build -o "$TMP/specfront" ./cmd/specfront
go build -o "$TMP/fleetsim" ./cmd/fleetsim

echo "== train demo model"
# A 3-compound task keeps the baseline genuinely drift-sensitive: with the
# full 8-compound task the Table-1 CNN's residual barely moves under any
# physical drift (conv shift tolerance + sum normalization), so no detector
# setting could separate drifted from healthy devices.
TASK="N2,O2,CO2"
e2e_register_log train.log
"$TMP/specserve" -train-demo "$TMP/models" -demo-task "$TASK" -demo-samples 400 -demo-epochs 4 >"$TMP/train.log" 2>&1
# Each backend reloads and publishes into its own model directory, the way
# independent replicas would.
cp -r "$TMP/models" "$TMP/models2"

echo "== boot 2 backends + 1 front"
# The wide batch window keeps churn requests queued across the whole publish
# round trip: fleetsim only publishes once every churn worker has a request
# in flight, so as long as the window exceeds the PUT latency the swap lands
# while old-width rows are still batched — forcing the 409 stale-width path.
spawn b1.log "$TMP/specserve" -models "$TMP/models" -addr "127.0.0.1:${B1_PORT}" -batch-window 150ms
spawn b2.log "$TMP/specserve" -models "$TMP/models2" -addr "127.0.0.1:${B2_PORT}" -batch-window 150ms
wait_http "http://127.0.0.1:${B1_PORT}/healthz"
wait_http "http://127.0.0.1:${B2_PORT}/healthz"
spawn front.log "$TMP/specfront" -addr "127.0.0.1:${FRONT_PORT}" \
    -backends "http://127.0.0.1:${B1_PORT},http://127.0.0.1:${B2_PORT}" \
    -health-interval 200ms -retry-backoff 10ms
wait_http "${FRONT}/healthz"
wait_fleet_healthy "$FRONT" 2

echo "== closed loop: drift at scan 18, detect, retrain, hot reload"
REPORT="$TMP/report.json"
e2e_register_log fleetsim.log
"$TMP/fleetsim" -front "$FRONT" -model ms-demo -task "$TASK" -v \
    -devices 6 -steps 46 -seed 7 -churn 8 \
    -drift-device 3 -drift-start 18 -drift-ramp 6 \
    -drift-mass-shift 1.2 -drift-gain-tilt 2 -drift-fwhm-growth 3 -drift-noise-growth 6 \
    -det-calibrate 8 -det-threshold-factor 1.8 -det-trip-factor 4 \
    -det-smoothing 0.5 -det-warmup 2 \
    -recal-samples 512 -recal-epochs 3 -recal-batch 32 \
    -recal-topology table1 -recal-axis-scale 2 \
    -recal-checkpoint "$TMP/recal.ckpt" \
    -report "$REPORT" 2>"$TMP/fleetsim.log"
cat "$TMP/fleetsim.log"

echo "== assert the loop closed"
TRIP_STEP=$(report_field "$REPORT" trip_step)
TRIP_DEVICE=$(report_field "$REPORT" trip_device)
RECALS=$(report_field "$REPORT" recals)
RELOADS=$(report_field "$REPORT" reloads)
CONFLICTS=$(report_field "$REPORT" conflicts_409)
RETRIES=$(report_field "$REPORT" conflict_retries)
FIVEXX=$(report_field "$REPORT" server_5xx)
BELOW=$(report_field "$REPORT" below_threshold)
SHA=$(report_field "$REPORT" model_sha256)

fail() {
    echo "closedloop_e2e: $*" >&2
    cat "$REPORT" >&2
    exit 1
}

[ "$TRIP_DEVICE" = "3" ] || fail "trip on device ${TRIP_DEVICE}, want the drifted device 3"
[ "$TRIP_STEP" -gt 18 ] || fail "trip at step ${TRIP_STEP}, before the drift began at scan 18"
[ "$RECALS" = "1" ] || fail "want exactly 1 recalibration, got ${RECALS}"
[ "$RELOADS" = "1" ] || fail "want exactly 1 fleet reload, got ${RELOADS}"
[ -n "$SHA" ] || fail "report carries no retrained-model digest"
[ "$FIVEXX" = "0" ] || fail "${FIVEXX} requests answered 5xx"
[ "$CONFLICTS" -ge 1 ] || fail "no 409 stale-width response observed during the reload window"
[ "$RETRIES" -ge 1 ] || fail "409s observed but never retried"
[ "$BELOW" = "true" ] || fail "post-reload residual still above the trip allowance"

echo "== assert both backends serve the recalibrated width"
for port in "$B1_PORT" "$B2_PORT"; do
    if ! curl -fsS "http://127.0.0.1:${port}/v1/models" | grep -q '"inputLen":397'; then
        echo "closedloop_e2e: backend :${port} does not serve the 397-wide recalibrated model:" >&2
        curl -fsS "http://127.0.0.1:${port}/v1/models" >&2 || true
        exit 1
    fi
done

echo "== PASS: drift@${TRIP_STEP} on device ${TRIP_DEVICE} -> 1 recal, 1 reload, ${CONFLICTS} 409s retried, zero 5xx"
