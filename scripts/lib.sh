# lib.sh — shared boot/teardown helpers for the e2e scripts.
#
# Source this from a script that has `set -euo pipefail`:
#
#   . "$(dirname "$0")/lib.sh"
#   e2e_init fleet_e2e
#   spawn b1.log "$TMP/specserve" -models "$TMP/models" -addr 127.0.0.1:9081
#   B1_PID=$SPAWN_PID
#   wait_http http://127.0.0.1:9081/healthz
#
# e2e_init creates $TMP, tracks spawned PIDs, and installs an EXIT trap
# that tears everything down and dumps every registered log when the
# script fails, so CI failures carry the server-side story.
# shellcheck shell=bash

e2e_init() {
    E2E_NAME=$1
    TMP=$(mktemp -d)
    PIDS=()
    E2E_LOGS=()
    trap e2e_cleanup EXIT
}

e2e_cleanup() {
    local code=$?
    local pid log
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    if [ "$code" -ne 0 ]; then
        for log in "${E2E_LOGS[@]:-}"; do
            echo "--- ${log##*/} ---" >&2
            cat "$log" >&2 || true
        done
    fi
    rm -rf "$TMP"
    exit "$code"
}

# e2e_register_log <name> — include $TMP/<name> in the failure dump.
e2e_register_log() {
    E2E_LOGS+=("$TMP/$1")
}

# spawn <logname> <cmd...> — background a process with its output in
# $TMP/<logname>, register it for teardown and the failure dump, and leave
# its PID in $SPAWN_PID.
spawn() {
    local log="$TMP/$1"
    shift
    "$@" >"$log" 2>&1 &
    SPAWN_PID=$!
    PIDS+=("$SPAWN_PID")
    E2E_LOGS+=("$log")
}

# wait_http <url> — poll until the URL answers 2xx (10s budget).
wait_http() {
    local url=$1
    for _ in $(seq 1 100); do
        if curl -fsS "$url" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "${E2E_NAME}: timed out waiting for $url" >&2
    return 1
}

# wait_fleet_healthy <front-url> <want> — poll the front's fleet view until
# it reports exactly <want> healthy backends.
wait_fleet_healthy() {
    local front=$1 want=$2
    for _ in $(seq 1 100); do
        if curl -fsS "${front}/v1/fleet" 2>/dev/null | grep -q "\"healthy\":${want}[,}]"; then
            return 0
        fi
        sleep 0.1
    done
    echo "${E2E_NAME}: fleet never reported ${want} healthy backends:" >&2
    curl -fsS "${front}/v1/fleet" >&2 || true
    return 1
}

# report_field <report.json> <field> — extract a top-level numeric or bare
# JSON value from a fleetsim report.
report_field() {
    local file=$1 field=$2
    sed -n "s/^ *\"${field}\": *\([^,}]*\),*\$/\1/p" "$file" | head -n1 | tr -d '"'
}
