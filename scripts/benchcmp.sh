#!/usr/bin/env bash
# benchcmp.sh — guard against render-path performance regressions.
#
# Runs the Fig. 7 / Fig. 4 render benchmarks and compares each ns/op
# against the committed baseline in BENCH_render.json. Fails if any
# benchmark is more than THRESHOLD_PCT slower than its baseline.
#
# Usage: scripts/benchcmp.sh [threshold_pct]   (default 20)
#
# CI shares hardware, so the baseline is only meaningful on comparable
# machines; set BENCHCMP_SKIP=1 to run the benchmarks without enforcing
# the threshold (smoke mode).
set -euo pipefail

usage() {
    cat <<'EOF'
usage: scripts/benchcmp.sh [-h] [threshold_pct]

Runs the render benchmarks (Fig7Augmentation*, Fig4CorpusRender*) and
compares each ns/op against the committed baseline BENCH_render.json.
Exits non-zero when any benchmark is more than threshold_pct (default 20)
slower than its baseline.

Environment:
  BENCHCMP_SKIP=1   run the benchmarks but do not enforce the threshold
                    (CI smoke mode for noisy shared runners)
EOF
}

case "${1:-}" in
-h | --help)
    usage
    exit 0
    ;;
-*)
    echo "benchcmp: unknown option ${1}" >&2
    usage >&2
    exit 2
    ;;
esac
if [ "$#" -gt 1 ]; then
    echo "benchcmp: too many arguments" >&2
    usage >&2
    exit 2
fi

cd "$(dirname "$0")/.."

THRESHOLD_PCT="${1:-20}"
case "$THRESHOLD_PCT" in
'' | *[!0-9]*)
    echo "benchcmp: threshold_pct must be a non-negative integer, got '${THRESHOLD_PCT}'" >&2
    usage >&2
    exit 2
    ;;
esac
BASELINE="BENCH_render.json"

# A missing baseline is a repo-state error, never a pass: fail loudly even
# in BENCHCMP_SKIP smoke mode, with a hint on how to regenerate it.
if [ ! -f "$BASELINE" ]; then
    {
        echo "benchcmp: baseline $BASELINE not found in $(pwd)"
        echo "benchcmp: regenerate it from a quiet machine with:"
        echo "  go test -run '^\$' -bench 'Fig7Augmentation|Fig4CorpusRender' -benchtime 1s -cpu 1 ."
        echo "  (then record each ns/op under \"benchmark\"/\"ns_per_op\" keys in $BASELINE)"
    } >&2
    exit 2
fi

out=$(go test -run '^$' -bench 'Fig7Augmentation|Fig4CorpusRender' -benchtime 1s -cpu 1 . 2>&1)
echo "$out"

fail=0
for name in BenchmarkFig7AugmentationExact BenchmarkFig7AugmentationCached \
            BenchmarkFig4CorpusRenderExact BenchmarkFig4CorpusRenderCached; do
    got=$(echo "$out" | awk -v n="$name" '$1 ~ "^"n"($|\\s)" {print $3; exit}')
    if [ -z "$got" ]; then
        echo "benchcmp: $name missing from benchmark output" >&2
        fail=1
        continue
    fi
    base=$(awk -v n="$name" '
        $0 ~ "\"benchmark\": \""n"\"" {found=1}
        found && /"ns_per_op"/ {gsub(/[^0-9]/, ""); print; exit}
    ' "$BASELINE")
    if [ -z "$base" ]; then
        echo "benchcmp: $name missing from $BASELINE" >&2
        fail=1
        continue
    fi
    # integer arithmetic: got > base * (100 + threshold) / 100 ?
    limit=$(( base * (100 + THRESHOLD_PCT) / 100 ))
    pct=$(( (got - base) * 100 / base ))
    status="ok"
    if [ "${got%.*}" -gt "$limit" ]; then
        status="REGRESSION"
        fail=1
    fi
    printf '%-34s baseline %12d ns/op  now %12d ns/op  (%+d%%)  %s\n' \
        "$name" "$base" "${got%.*}" "$pct" "$status"
done

if [ "${BENCHCMP_SKIP:-0}" = "1" ]; then
    echo "benchcmp: BENCHCMP_SKIP=1, threshold not enforced"
    exit 0
fi
if [ "$fail" -ne 0 ]; then
    echo "benchcmp: render benchmarks regressed more than ${THRESHOLD_PCT}% vs $BASELINE" >&2
    exit 1
fi
echo "benchcmp: all render benchmarks within ${THRESHOLD_PCT}% of baseline"
