#!/usr/bin/env bash
# benchcmp.sh — guard against performance regressions on the hot paths.
#
# Runs one benchmark suite and compares each ns/op against its committed
# baseline file. Fails if any benchmark is more than THRESHOLD_PCT slower
# than its baseline.
#
#   render   Fig. 7 / Fig. 4 render engine        vs BENCH_render.json
#   serve    SPB1 wire codec + fleet proxy hop    vs BENCH_serve.json
#   kernels  int8 + float GEMM / forward kernels  vs BENCH_kernels.json
#   train    streamed vs materialized training    vs BENCH_train.json
#
# Usage: scripts/benchcmp.sh [-s render|serve|kernels|train] [threshold_pct]  (default: render, 20)
#
# CI shares hardware, so the baseline is only meaningful on comparable
# machines; set BENCHCMP_SKIP=1 to run the benchmarks without enforcing
# the threshold (smoke mode).
set -euo pipefail

usage() {
    cat <<'EOF'
usage: scripts/benchcmp.sh [-h] [-s render|serve|kernels|train] [threshold_pct]

Runs a benchmark suite and compares each ns/op against its committed
baseline. Exits non-zero when any benchmark is more than threshold_pct
(default 20) slower than its baseline.

Suites:
  render   Fig7Augmentation*, Fig4CorpusRender*     -> BENCH_render.json
  serve    WireDecode4096, WireEncode4096 (binary   -> BENCH_serve.json
           vs JSON spectrum codec), FleetPredict
           (1 front + 3 backends over loopback), and
           BatcherPredictMonitor (recurrent monitor
           stack through the batched dispatcher)
  kernels  GemmInt8NTConvLowered, the int8-vs-float -> BENCH_kernels.json
           batch-32 forward pairs (QuantForward* vs
           BatchForward*), and the batched recurrent
           engine (LSTMBatchForward32, LSTMFitEpoch);
           gates the int8 kernel, the float path it is
           compared against, and the GEMM LSTM path
  train    TrainCorpus{Materialized,Streamed}: the  -> BENCH_train.json
           classic generate-then-Fit flow vs the fused
           streaming pipeline on the identical corpus;
           gates both the streamed path and the
           materialized baseline it is compared against

Benchmarks are compared by their exact emitted name, including any
-GOMAXPROCS suffix, so a -cpu variant can never be scored against a
different variant's baseline.

Environment:
  BENCHCMP_SKIP=1   run the benchmarks but do not enforce the threshold
                    (CI smoke mode for noisy shared runners)
EOF
}

SUITE="render"
while [ "$#" -gt 0 ]; do
    case "$1" in
    -h | --help)
        usage
        exit 0
        ;;
    -s | --suite)
        if [ "$#" -lt 2 ]; then
            echo "benchcmp: -s requires an argument" >&2
            exit 2
        fi
        SUITE="$2"
        shift 2
        ;;
    -*)
        echo "benchcmp: unknown option ${1}" >&2
        usage >&2
        exit 2
        ;;
    *)
        break
        ;;
    esac
done
if [ "$#" -gt 1 ]; then
    echo "benchcmp: too many arguments" >&2
    usage >&2
    exit 2
fi

cd "$(dirname "$0")/.."

THRESHOLD_PCT="${1:-20}"
case "$THRESHOLD_PCT" in
'' | *[!0-9]*)
    echo "benchcmp: threshold_pct must be a non-negative integer, got '${THRESHOLD_PCT}'" >&2
    usage >&2
    exit 2
    ;;
esac

# Suite table: the baseline file, the go test invocations, the benchmark
# names to gate, and the regeneration hint. Names are the exact strings
# `go test -bench` emits under `-cpu 1` (no -GOMAXPROCS suffix).
case "$SUITE" in
render)
    BASELINE="BENCH_render.json"
    BENCH_CMDS=("go test -run ^\$ -bench Fig7Augmentation|Fig4CorpusRender -benchtime 1s -cpu 1 .")
    NAMES="BenchmarkFig7AugmentationExact BenchmarkFig7AugmentationCached \
           BenchmarkFig4CorpusRenderExact BenchmarkFig4CorpusRenderCached"
    REGEN="go test -run '^\$' -bench 'Fig7Augmentation|Fig4CorpusRender' -benchtime 3s -cpu 1 ."
    ;;
serve)
    BASELINE="BENCH_serve.json"
    BENCH_CMDS=(
        "go test -run ^\$ -bench WireDecode4096|WireEncode4096|BatcherPredictMonitor -benchtime 1s -cpu 1 ./internal/serve"
        "go test -run ^\$ -bench FleetPredict -benchtime 1s -cpu 1 ./internal/front"
    )
    NAMES="BenchmarkWireDecode4096/codec=json BenchmarkWireDecode4096/codec=binary \
           BenchmarkWireEncode4096/codec=json BenchmarkWireEncode4096/codec=binary \
           BenchmarkFleetPredict/hops=binary BenchmarkFleetPredict/hops=json \
           BenchmarkBatcherPredictMonitor"
    REGEN="go test -run '^\$' -bench 'WireDecode4096|WireEncode4096' -benchtime 2s -cpu 1 ./internal/serve && go test -run '^\$' -bench FleetPredict -benchtime 2s -cpu 1 ./internal/front"
    ;;
kernels)
    BASELINE="BENCH_kernels.json"
    BENCH_CMDS=(
        "go test -run ^\$ -bench GemmInt8NTConvLowered -benchtime 1s -cpu 1 ./internal/tensor"
        "go test -run ^\$ -bench QuantForwardDense32|QuantForwardConv32|BatchForwardDense32\$|BatchForwardConv32\$|LSTMBatchForward32\$|LSTMFitEpoch -benchtime 1s -cpu 1 ./internal/nn"
    )
    NAMES="BenchmarkGemmInt8NTConvLowered \
           BenchmarkQuantForwardDense32 BenchmarkQuantForwardConv32 \
           BenchmarkBatchForwardDense32 BenchmarkBatchForwardConv32 \
           BenchmarkLSTMBatchForward32 BenchmarkLSTMFitEpoch"
    REGEN="go test -run '^\$' -bench 'Gemm|Im2Col|Quantize' -benchtime 2s -cpu 1 ./internal/tensor && go test -run '^\$' -bench 'BatchForward|QuantForward|PredictBatch32|FitEpoch|LSTM' -benchtime 2s -cpu 1 ./internal/nn"
    ;;
train)
    BASELINE="BENCH_train.json"
    # One full run per benchmark: each iteration is a complete training run,
    # so -benchtime 1x keeps the gate in the seconds range at quick scale.
    BENCH_CMDS=("go test -run ^\$ -bench TrainCorpus -benchtime 1x -cpu 1 .")
    NAMES="BenchmarkTrainCorpusMaterialized BenchmarkTrainCorpusStreamed"
    REGEN="go test -run '^\$' -bench TrainCorpus -benchtime 1x -cpu 1 .  # plus SPECML_BENCH_SCALE=paper for the 100k-corpus section"
    ;;
*)
    echo "benchcmp: unknown suite '${SUITE}' (want render, serve, kernels or train)" >&2
    usage >&2
    exit 2
    ;;
esac

# A missing baseline is a repo-state error, never a pass: fail loudly even
# in BENCHCMP_SKIP smoke mode, with a hint on how to regenerate it.
if [ ! -f "$BASELINE" ]; then
    {
        echo "benchcmp: baseline $BASELINE not found in $(pwd)"
        echo "benchcmp: regenerate it from a quiet machine with:"
        echo "  $REGEN"
        echo "  (then record each ns/op under \"benchmark\"/\"ns_per_op\" keys in $BASELINE)"
    } >&2
    exit 2
fi

out=""
for cmd in "${BENCH_CMDS[@]}"; do
    # shellcheck disable=SC2086 — the table entries are word-split on purpose.
    chunk=$($cmd 2>&1)
    echo "$chunk"
    out="$out
$chunk"
done

fail=0
for name in $NAMES; do
    # Exact-name match: the emitted name (field 1) must equal the baseline
    # name byte for byte. Under -cpu 1 no -GOMAXPROCS suffix is emitted; a
    # suffixed variant (BenchmarkFoo-8) is a different measurement and is
    # deliberately NOT matched against the suffix-free baseline.
    got=$(echo "$out" | awk -v n="$name" '$1 == n {print $3; exit}')
    if [ -z "$got" ]; then
        echo "benchcmp: $name missing from benchmark output" >&2
        fail=1
        continue
    fi
    base=$(awk -v n="\"benchmark\": \"$name\"" '
        index($0, n) {found=1}
        found && /"ns_per_op"/ {gsub(/[^0-9]/, ""); print; exit}
    ' "$BASELINE")
    if [ -z "$base" ]; then
        echo "benchcmp: $name missing from $BASELINE" >&2
        fail=1
        continue
    fi
    # integer arithmetic: got > base * (100 + threshold) / 100 ?
    limit=$(( base * (100 + THRESHOLD_PCT) / 100 ))
    pct=$(( ("${got%.*}" - base) * 100 / base ))
    status="ok"
    if [ "${got%.*}" -gt "$limit" ]; then
        status="REGRESSION"
        fail=1
    fi
    printf '%-42s baseline %12d ns/op  now %12d ns/op  (%+d%%)  %s\n' \
        "$name" "$base" "${got%.*}" "$pct" "$status"
done

if [ "${BENCHCMP_SKIP:-0}" = "1" ]; then
    echo "benchcmp: BENCHCMP_SKIP=1, threshold not enforced"
    exit 0
fi
if [ "$fail" -ne 0 ]; then
    echo "benchcmp: ${SUITE} benchmarks regressed more than ${THRESHOLD_PCT}% vs $BASELINE" >&2
    exit 1
fi
echo "benchcmp: all ${SUITE} benchmarks within ${THRESHOLD_PCT}% of baseline"
