#!/usr/bin/env bash
# fleet_e2e.sh — end-to-end check of the fleet serving path.
#
# Builds specfront + specserve, boots 1 front + 2 backends on loopback,
# and drives real traffic through the front:
#
#   * predicts route consistently and answer 200,
#   * a monitor session is pinned to one backend for every step,
#   * SIGTERM-killing the backend that owns the traffic mid-run costs
#     ZERO 5xx — requests fail over to the surviving replica,
#   * the front's fleet view settles to the surviving backend.
#
# Any 5xx anywhere, a routing flap, or a missed failover fails the script.
#
# Usage: scripts/fleet_e2e.sh
set -euo pipefail

cd "$(dirname "$0")/.."
. scripts/lib.sh
e2e_init fleet_e2e

FRONT_PORT=19080
B1_PORT=19081
B2_PORT=19082
FRONT="http://127.0.0.1:${FRONT_PORT}"

echo "== build"
go build -o "$TMP/specserve" ./cmd/specserve
go build -o "$TMP/specfront" ./cmd/specfront

echo "== train demo model"
"$TMP/specserve" -train-demo "$TMP/models" -demo-samples 120 >"$TMP/train.log" 2>&1

echo "== boot 2 backends + 1 front"
spawn b1.log "$TMP/specserve" -models "$TMP/models" -addr "127.0.0.1:${B1_PORT}" -batch-window 1ms
B1_PID=$SPAWN_PID
spawn b2.log "$TMP/specserve" -models "$TMP/models" -addr "127.0.0.1:${B2_PORT}" -batch-window 1ms
B2_PID=$SPAWN_PID

wait_http "http://127.0.0.1:${B1_PORT}/healthz"
wait_http "http://127.0.0.1:${B2_PORT}/healthz"

spawn front.log "$TMP/specfront" -addr "127.0.0.1:${FRONT_PORT}" \
    -backends "http://127.0.0.1:${B1_PORT},http://127.0.0.1:${B2_PORT}" \
    -health-interval 200ms -retry-backoff 10ms
wait_http "${FRONT}/healthz"

wait_fleet_healthy "$FRONT" 2

BODY='{"model":"ms-demo","intensities":[0.1,0.9,0.3,0.7,0.2,0.8,0.4,0.6,0.5,0.1,0.9,0.3,0.7,0.2,0.8,0.4]}'

# predict runs one predict through the front, appends the status code to
# the 5xx ledger, asserts 200, and prints the backend that answered.
STATUS_LOG="$TMP/statuses"
predict() {
    local hdr="$TMP/hdr.$$"
    local code
    code=$(curl -s -o "$TMP/resp.$$" -D "$hdr" -w '%{http_code}' \
        -X POST "${FRONT}/v1/predict" -H 'Content-Type: application/json' -d "$BODY")
    echo "$code" >>"$STATUS_LOG"
    if [ "$code" != "200" ]; then
        echo "fleet_e2e: predict answered $code: $(cat "$TMP/resp.$$")" >&2
        return 1
    fi
    tr -d '\r' <"$hdr" | awk -F': ' 'tolower($1)=="x-specml-backend" {print $2}'
}

echo "== predict traffic (both backends up)"
OWNER=$(predict)
if [ -z "$OWNER" ]; then
    echo "fleet_e2e: predict response missing X-Specml-Backend" >&2
    exit 1
fi
for _ in $(seq 1 19); do
    got=$(predict)
    if [ "$got" != "$OWNER" ]; then
        echo "fleet_e2e: model routing flapped: $OWNER then $got" >&2
        exit 1
    fi
done
echo "   20/20 predicts ok, all routed to $OWNER"

echo "== monitor session stickiness"
SESS_HDR="$TMP/sess_hdr"
SESS_RESP=$(curl -s -D "$SESS_HDR" -X POST "${FRONT}/v1/monitor" \
    -H 'Content-Type: application/json' -d '{"model":"ms-demo","smoothing":0.5}')
SESSION=$(echo "$SESS_RESP" | grep -o '"session":"[^"]*"' | cut -d'"' -f4)
SESS_BACKEND=$(tr -d '\r' <"$SESS_HDR" | awk -F': ' 'tolower($1)=="x-specml-backend" {print $2}')
if [ -z "$SESSION" ] || [ -z "$SESS_BACKEND" ]; then
    echo "fleet_e2e: monitor create failed: $SESS_RESP" >&2
    exit 1
fi
for i in $(seq 1 10); do
    hdr="$TMP/step_hdr"
    code=$(curl -s -o "$TMP/step_resp" -D "$hdr" -w '%{http_code}' \
        -X POST "${FRONT}/v1/monitor/${SESSION}/step" \
        -H 'Content-Type: application/json' -d "$BODY")
    echo "$code" >>"$STATUS_LOG"
    got=$(tr -d '\r' <"$hdr" | awk -F': ' 'tolower($1)=="x-specml-backend" {print $2}')
    if [ "$code" != "200" ] || [ "$got" != "$SESS_BACKEND" ]; then
        echo "fleet_e2e: step $i: code $code via ${got:-?}, session lives on $SESS_BACKEND" >&2
        cat "$TMP/step_resp" >&2
        exit 1
    fi
done
echo "   session $SESSION pinned to $SESS_BACKEND for 10/10 steps"

echo "== SIGTERM the backend owning the predict traffic ($OWNER)"
case "$OWNER" in
*:${B1_PORT}) kill -TERM "$B1_PID" ;;
*:${B2_PORT}) kill -TERM "$B2_PID" ;;
*)
    echo "fleet_e2e: unrecognized backend name $OWNER" >&2
    exit 1
    ;;
esac

echo "== predict traffic through the failover"
NEW_OWNER=""
for i in $(seq 1 40); do
    got=$(predict) # asserts 200: failover must never surface an error
    if [ "$got" = "$OWNER" ] && [ "$i" -gt 20 ]; then
        echo "fleet_e2e: predict $i still attributed to the killed backend $OWNER" >&2
        exit 1
    fi
    NEW_OWNER=$got
done
if [ "$NEW_OWNER" = "$OWNER" ] || [ -z "$NEW_OWNER" ]; then
    echo "fleet_e2e: traffic never failed over from $OWNER" >&2
    exit 1
fi
echo "   40/40 predicts ok, traffic now on $NEW_OWNER"

echo "== fleet view settles to 1 healthy backend"
wait_fleet_healthy "$FRONT" 1

# The ledger is the hard gate: every status code seen by a client, with
# zero 5xx tolerated across the kill.
FIVEXX=$(grep -c '^5' "$STATUS_LOG" || true)
TOTAL=$(wc -l <"$STATUS_LOG")
if [ "$FIVEXX" != "0" ]; then
    echo "fleet_e2e: ${FIVEXX}/${TOTAL} requests answered 5xx" >&2
    exit 1
fi
echo "== PASS: ${TOTAL} requests, zero 5xx, failover + session pinning verified"
