package core

import (
	"fmt"
	"io"
	"time"

	"specml/internal/dataset"
	"specml/internal/ihm"
	"specml/internal/nmrsim"
	"specml/internal/rng"
	"specml/internal/spectrum"
	"specml/internal/toolflow"
)

// NMRConfig configures an NMRPipeline.
type NMRConfig struct {
	// TrainSamples is the synthetic-corpus size for the CNN (paper:
	// 300 000; default 1500 for laptop-scale runs).
	TrainSamples int
	// Windows and Steps configure the LSTM corpus: Windows samples of
	// Steps consecutive spectra (paper: 5 timesteps).
	Windows int
	Steps   int
	// MaxRepeat is the plateau-emulation repetition bound ("repeated
	// random training spectra one to twenty times").
	MaxRepeat int
	// Epochs/BatchSize for both models.
	Epochs    int
	BatchSize int
	// Seed drives everything.
	Seed uint64
	// Workers is the worker count for synthetic-corpus generation and
	// data-parallel training (0 = all cores); results are bit-identical
	// for any value.
	Workers int
	// MaxPureFitPeaks bounds the IHM pure-component fits.
	MaxPureFitPeaks int
	// ExactRender forces the legacy analytic peak renderer during corpus
	// generation instead of the cached-template render engine (slower,
	// bit-identical to pre-engine corpora; see DESIGN.md).
	ExactRender bool
	// RenderOversample overrides the render engine's automatic master-grid
	// oversampling factor (0 = automatic).
	RenderOversample int
	// Stream renders both training corpora on demand through the nn
	// prefetch pipeline instead of materializing them: the CNN corpus via a
	// per-sample seeded stream, the order-dependent rolling-window LSTM
	// corpus via a recorded-state windowed source (nmrsim.TimeSeriesStream).
	// The trained networks are bit-identical to the materialized path; peak
	// memory holds only the in-flight mini-batches.
	Stream bool
	// Checkpoint, when non-empty, is the specml/ckpt/v1 path streamed CNN
	// training writes after every epoch and resumes from when it already
	// exists. Requires Stream.
	Checkpoint string
	// LSTMCheckpoint is Checkpoint for streamed LSTM training. It must
	// differ from Checkpoint — the two models' checkpoints are not
	// interchangeable.
	LSTMCheckpoint string
}

func (c *NMRConfig) withDefaults() *NMRConfig {
	out := *c
	if out.TrainSamples <= 0 {
		out.TrainSamples = 1500
	}
	if out.Windows <= 0 {
		out.Windows = 400
	}
	if out.Steps <= 0 {
		out.Steps = 5
	}
	if out.MaxRepeat <= 0 {
		out.MaxRepeat = 20
	}
	if out.Epochs <= 0 {
		out.Epochs = 12
	}
	if out.BatchSize <= 0 {
		out.BatchSize = 32
	}
	if out.MaxPureFitPeaks <= 0 {
		out.MaxPureFitPeaks = 8
	}
	return &out
}

// NMRPipeline is the end-to-end NMR flow.
type NMRPipeline struct {
	cfg *NMRConfig
	// LowField is the process (benchtop) instrument; HighField the
	// reference spectrometer.
	LowField  *nmrsim.Instrument
	HighField *nmrsim.Instrument

	components []*ihm.ComponentModel
	augmenter  *nmrsim.Augmenter
	analyzer   *ihm.MixtureAnalyzer

	cnn  *toolflow.Result
	lstm *toolflow.Result
}

// NewNMRPipeline returns a pipeline with fresh virtual instruments.
func NewNMRPipeline(cfg NMRConfig) *NMRPipeline {
	c := cfg.withDefaults()
	return &NMRPipeline{
		cfg:       c,
		LowField:  nmrsim.NewLowField(c.Seed + 10),
		HighField: nmrsim.NewHighField(c.Seed + 11),
	}
}

// FitComponents measures each pure component on the low-field instrument
// and fits IHM hard models — the machine-assisted model building step.
func (p *NMRPipeline) FitComponents() error {
	var comps []*ihm.ComponentModel
	for j := 0; j < nmrsim.NumComponents; j++ {
		s, err := p.LowField.MeasurePure(j)
		if err != nil {
			return err
		}
		c, err := ihm.FitPureComponent(nmrsim.ComponentNames[j], s, p.cfg.MaxPureFitPeaks)
		if err != nil {
			return fmt.Errorf("core: fitting %s: %w", nmrsim.ComponentNames[j], err)
		}
		comps = append(comps, c)
	}
	p.components = comps
	an, err := ihm.NewMixtureAnalyzer(comps, ihm.AnalyzerOptions{MaxShift: 0.03, WidthRange: 0.4})
	if err != nil {
		return err
	}
	p.analyzer = an
	p.augmenter = &nmrsim.Augmenter{
		Axis:             p.LowField.Axis,
		Components:       comps,
		ConcLo:           []float64{0, 0, 0, 0},
		ConcHi:           []float64{0.6, 0.6, 0.6, 0.5},
		ShiftJitter:      p.LowField.ShiftJitter,
		WidthJitter:      p.LowField.WidthJitter,
		NoiseSigma:       p.LowField.NoiseSigma,
		IntensityScale:   p.LowField.IntensityScale,
		Workers:          p.cfg.Workers,
		ExactRender:      p.cfg.ExactRender,
		RenderOversample: p.cfg.RenderOversample,
	}
	return nil
}

// Components returns the fitted hard models.
func (p *NMRPipeline) Components() []*ihm.ComponentModel { return p.components }

// Augmenter returns the configured synthetic-spectra generator.
func (p *NMRPipeline) Augmenter() *nmrsim.Augmenter { return p.augmenter }

// TrainCNN generates the synthetic corpus and trains the paper's
// 10 532-parameter locally connected CNN, validating against measured
// campaign data (valX/valY from a reactor campaign). verbose may be nil.
func (p *NMRPipeline) TrainCNN(val *dataset.Dataset, verbose io.Writer) (*toolflow.Result, error) {
	if p.augmenter == nil {
		return nil, fmt.Errorf("core: FitComponents before TrainCNN")
	}
	spec := toolflow.NMRCNNSpec(p.LowField.Axis.N, nmrsim.NumComponents,
		p.cfg.Epochs, p.cfg.BatchSize, p.cfg.Seed)
	spec.Workers = p.cfg.Workers
	runner := &toolflow.Runner{Verbose: verbose}
	if p.cfg.Stream {
		src, err := p.augmenter.TrainingStream(p.cfg.TrainSamples, p.cfg.Seed+20)
		if err != nil {
			return nil, err
		}
		// Replay d.Shuffle(rng.New(Seed+21)) as an index permutation so the
		// streamed epoch order matches the materialized path bit for bit.
		perm := dataset.ShuffledIndices(p.cfg.TrainSamples, rng.New(p.cfg.Seed+21))
		train, err := dataset.Select(src, perm)
		if err != nil {
			return nil, err
		}
		spec.Checkpoint = p.cfg.Checkpoint
		res, err := runner.TrainSource(spec, train, val)
		if err != nil {
			return nil, err
		}
		p.cnn = res
		return res, nil
	}
	d, err := p.augmenter.Generate(p.cfg.TrainSamples, p.cfg.Seed+20)
	if err != nil {
		return nil, err
	}
	d.Shuffle(rng.New(p.cfg.Seed + 21))
	res, err := runner.Train(spec, d, val)
	if err != nil {
		return nil, err
	}
	p.cnn = res
	return res, nil
}

// TrainLSTM generates the plateau time-series corpus and trains the
// paper's 221 956-parameter LSTM model. verbose may be nil.
func (p *NMRPipeline) TrainLSTM(val *dataset.Dataset, verbose io.Writer) (*toolflow.Result, error) {
	if p.augmenter == nil {
		return nil, fmt.Errorf("core: FitComponents before TrainLSTM")
	}
	spec := toolflow.NMRLSTMSpec(p.cfg.Steps, p.LowField.Axis.N, nmrsim.NumComponents,
		p.cfg.Epochs, p.cfg.BatchSize, p.cfg.Seed)
	spec.Workers = p.cfg.Workers
	runner := &toolflow.Runner{Verbose: verbose}
	if p.cfg.Stream {
		src, err := p.augmenter.TimeSeriesStream(p.cfg.Windows, p.cfg.Steps, p.cfg.MaxRepeat, p.cfg.Seed+30)
		if err != nil {
			return nil, err
		}
		// Replay d.Shuffle(rng.New(Seed+31)) as an index permutation so the
		// streamed epoch order matches the materialized path bit for bit.
		perm := dataset.ShuffledIndices(p.cfg.Windows, rng.New(p.cfg.Seed+31))
		train, err := dataset.Select(src, perm)
		if err != nil {
			return nil, err
		}
		spec.Checkpoint = p.cfg.LSTMCheckpoint
		res, err := runner.TrainSource(spec, train, val)
		if err != nil {
			return nil, err
		}
		p.lstm = res
		return res, nil
	}
	d, err := p.augmenter.GenerateTimeSeries(p.cfg.Windows, p.cfg.Steps, p.cfg.MaxRepeat, p.cfg.Seed+30)
	if err != nil {
		return nil, err
	}
	d.Shuffle(rng.New(p.cfg.Seed + 31))
	res, err := runner.Train(spec, d, val)
	if err != nil {
		return nil, err
	}
	p.lstm = res
	return res, nil
}

// CNN returns the trained CNN record, or nil.
func (p *NMRPipeline) CNN() *toolflow.Result { return p.cnn }

// LSTM returns the trained LSTM record, or nil.
func (p *NMRPipeline) LSTM() *toolflow.Result { return p.lstm }

// AnalyzeIHM runs the classical IHM mixture analysis on one spectrum and
// reports the estimated concentrations (instrument-gain corrected) plus
// the wall-clock analysis latency — the baseline the networks are compared
// against.
func (p *NMRPipeline) AnalyzeIHM(s *spectrum.Spectrum) ([]float64, time.Duration, error) {
	if p.analyzer == nil {
		return nil, 0, fmt.Errorf("core: FitComponents before AnalyzeIHM")
	}
	start := time.Now()
	res, err := p.analyzer.Analyze(s)
	elapsed := time.Since(start)
	if err != nil {
		return nil, elapsed, err
	}
	// weights are in receiver-gain units; undo the instrument scale so they
	// are comparable to the concentration labels
	conc := make([]float64, len(res.Weights))
	for j, w := range res.Weights {
		conc[j] = w / p.LowField.IntensityScale
	}
	return conc, elapsed, nil
}

// PredictCNN runs the trained CNN on one spectrum, returning predictions
// and inference latency.
func (p *NMRPipeline) PredictCNN(s *spectrum.Spectrum) ([]float64, time.Duration, error) {
	if p.cnn == nil {
		return nil, 0, fmt.Errorf("core: TrainCNN before PredictCNN")
	}
	start := time.Now()
	out := p.cnn.Model.Predict(s.Intensities)
	return out, time.Since(start), nil
}
