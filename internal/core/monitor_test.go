package core

import (
	"math"
	"testing"
)

// TestMonitorRejectsNonFinite pins the contract that Step refuses NaN/Inf
// predictions with an explicit error instead of propagating them into the
// smoothed state (where a single NaN would poison every later estimate).
func TestMonitorRejectsNonFinite(t *testing.T) {
	m, err := NewMonitor([]string{"a", "b"}, []Limit{{Name: "a", Min: 0, Max: 1}}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step([]float64{0.4, 0.6}); err != nil {
		t.Fatal(err)
	}
	before := m.Smoothed()
	cases := [][]float64{
		{math.NaN(), 0.5},
		{0.5, math.NaN()},
		{math.Inf(1), 0.5},
		{0.5, math.Inf(-1)},
	}
	for _, pred := range cases {
		if _, err := m.Step(pred); err == nil {
			t.Fatalf("Step(%v) must fail", pred)
		}
	}
	// the rejected steps must not have advanced or mutated the monitor
	if m.StepCount() != 1 {
		t.Fatalf("step count %d after rejected steps, want 1", m.StepCount())
	}
	after := m.Smoothed()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("smoothed state changed by rejected step: %v vs %v", before, after)
		}
	}
	// the monitor keeps working after a rejection
	if _, err := m.Step([]float64{0.2, 0.8}); err != nil {
		t.Fatal(err)
	}
	if m.StepCount() != 2 {
		t.Fatalf("step count %d, want 2", m.StepCount())
	}
}

// TestMonitorRejectsNonFiniteFirstStep covers the first-step path, where
// the prediction would otherwise seed the smoothing buffer directly.
func TestMonitorRejectsNonFiniteFirstStep(t *testing.T) {
	m, err := NewMonitor([]string{"a"}, nil, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step([]float64{math.Inf(1)}); err == nil {
		t.Fatal("first Step with Inf must fail")
	}
	if m.Smoothed() != nil {
		t.Fatal("rejected first step must not seed the smoothing buffer")
	}
	if _, err := m.Step([]float64{0.5}); err != nil {
		t.Fatal(err)
	}
	if got := m.Smoothed(); len(got) != 1 || got[0] != 0.5 {
		t.Fatalf("smoothed = %v, want [0.5]", got)
	}
}
