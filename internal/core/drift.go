package core

import (
	"fmt"
	"math"
)

// DriftConfig parameterizes a DriftDetector: smoothed-residual statistics
// with a CUSUM-style trip rule. The detector watches the mean absolute
// residual between a model's predictions and a reference (the reactor
// ground truth in simulation, the high-field reference method on a real
// process), smooths it with an EWMA to suppress single-scan noise, and
// accumulates the smoothed excess over Threshold into a cumulative sum
// that trips at Trip. Every statistic is a pure function of the residual
// stream, so equal streams produce bit-identical trip steps.
type DriftConfig struct {
	// Smoothing is the residual EWMA factor a in [0,1):
	// r_t = a*r_{t-1} + (1-a)*|residual_t|. 0 disables smoothing.
	Smoothing float64 `json:"smoothing"`
	// Threshold is the allowance: only the part of the smoothed residual
	// above it accumulates toward a trip. Set it above the healthy
	// steady-state residual of the deployed model.
	Threshold float64 `json:"threshold"`
	// Trip is the cumulative excess at which the detector trips. Larger
	// values demand either bigger or longer-lasting drift, making the trip
	// step monotone in drift magnitude.
	Trip float64 `json:"trip"`
	// Warmup is the number of initial steps during which the EWMA settles
	// but no excess is accumulated (the first scans of a fresh model are
	// not evidence of drift).
	Warmup int `json:"warmup"`
}

// Validate reports whether the configuration is usable.
func (c DriftConfig) Validate() error {
	if math.IsNaN(c.Smoothing) || c.Smoothing < 0 || c.Smoothing >= 1 {
		return fmt.Errorf("core: drift smoothing must be in [0,1), got %g", c.Smoothing)
	}
	if math.IsNaN(c.Threshold) || math.IsInf(c.Threshold, 0) || c.Threshold < 0 {
		return fmt.Errorf("core: drift threshold must be finite and non-negative, got %g", c.Threshold)
	}
	if math.IsNaN(c.Trip) || math.IsInf(c.Trip, 0) || c.Trip <= 0 {
		return fmt.Errorf("core: drift trip level must be finite and positive, got %g", c.Trip)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("core: drift warmup must be non-negative, got %d", c.Warmup)
	}
	return nil
}

// DriftSample is the detector state after one residual observation.
type DriftSample struct {
	// Step is the 1-based observation count.
	Step int
	// Residual is this step's raw mean absolute residual.
	Residual float64
	// EWMA is the smoothed residual after this step.
	EWMA float64
	// CUSUM is the accumulated smoothed excess over the threshold.
	CUSUM float64
	// Tripped reports whether the detector is in the tripped state.
	Tripped bool
}

// DriftDetector accumulates residual statistics between predictions and a
// trusted reference signal and trips when the smoothed residual has stayed
// above the configured threshold for long enough. It is the residual-based
// drift monitor of the closed recalibration loop: a trip is the signal to
// re-characterize the instrument and retrain.
//
// The detector is deterministic and purely sequential; it is NOT safe for
// concurrent use. Use one detector per monitored device.
type DriftDetector struct {
	cfg      DriftConfig
	step     int
	ewma     float64
	haveEWMA bool
	cusum    float64
	tripped  bool
	tripStep int
}

// NewDriftDetector validates the configuration and returns a detector.
func NewDriftDetector(cfg DriftConfig) (*DriftDetector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DriftDetector{cfg: cfg, tripStep: -1}, nil
}

// Config returns the detector's configuration.
func (d *DriftDetector) Config() DriftConfig { return d.cfg }

// Step feeds one prediction/reference pair and returns the updated
// statistics. Once tripped the detector stays tripped (further excess keeps
// accumulating) until Reset.
func (d *DriftDetector) Step(pred, truth []float64) (DriftSample, error) {
	if len(pred) == 0 || len(pred) != len(truth) {
		return DriftSample{}, fmt.Errorf("core: drift step with %d predictions for %d references",
			len(pred), len(truth))
	}
	res := 0.0
	for i, p := range pred {
		v := p - truth[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return DriftSample{}, fmt.Errorf("core: non-finite drift residual at output %d", i)
		}
		res += math.Abs(v)
	}
	res /= float64(len(pred))
	return d.Observe(res)
}

// Observe feeds one precomputed residual magnitude directly (the hook for
// callers that define their own residual, e.g. per-substance weighting).
func (d *DriftDetector) Observe(residual float64) (DriftSample, error) {
	if math.IsNaN(residual) || math.IsInf(residual, 0) || residual < 0 {
		return DriftSample{}, fmt.Errorf("core: drift residual must be finite and non-negative, got %g", residual)
	}
	d.step++
	if !d.haveEWMA {
		d.ewma = residual
		d.haveEWMA = true
	} else {
		a := d.cfg.Smoothing
		d.ewma = a*d.ewma + (1-a)*residual
	}
	if d.step > d.cfg.Warmup {
		if excess := d.ewma - d.cfg.Threshold; excess > 0 {
			d.cusum += excess
		} else {
			// The classic one-sided CUSUM resets toward zero when the
			// statistic returns below the allowance, so short excursions
			// cannot trip the detector hours later.
			d.cusum += excess
			if d.cusum < 0 {
				d.cusum = 0
			}
		}
		if !d.tripped && d.cusum >= d.cfg.Trip {
			d.tripped = true
			d.tripStep = d.step
		}
	}
	return d.sample(residual), nil
}

func (d *DriftDetector) sample(res float64) DriftSample {
	return DriftSample{Step: d.step, Residual: res, EWMA: d.ewma, CUSUM: d.cusum, Tripped: d.tripped}
}

// Tripped reports whether the detector has tripped since the last Reset.
func (d *DriftDetector) Tripped() bool { return d.tripped }

// TripStep returns the 1-based step at which the detector tripped, or -1.
func (d *DriftDetector) TripStep() int { return d.tripStep }

// EWMA returns the current smoothed residual (0 before the first step).
func (d *DriftDetector) EWMA() float64 { return d.ewma }

// StepCount returns the number of observed residuals.
func (d *DriftDetector) StepCount() int { return d.step }

// Reset clears the trip state and the accumulated excess after a
// recalibration. The EWMA is cleared too: the retrained model's residual
// level is a fresh statistic, not a continuation of the drifted one.
func (d *DriftDetector) Reset() {
	d.ewma = 0
	d.haveEWMA = false
	d.cusum = 0
	d.tripped = false
	d.tripStep = -1
	d.step = 0
}

// SetDriftDetector attaches a drift detector to the monitor; StepWithTruth
// feeds it. Pass nil to detach.
func (m *Monitor) SetDriftDetector(d *DriftDetector) { m.drift = d }

// DriftDetector returns the attached detector, or nil.
func (m *Monitor) DriftDetector() *DriftDetector { return m.drift }

// StepWithTruth feeds one prediction through the alarm-band monitor and,
// when a reference signal and a drift detector are present, the
// prediction/reference residual through the detector. It is the closed-loop
// hook: alarms watch the process, the drift statistics watch the model.
func (m *Monitor) StepWithTruth(pred, truth []float64) ([]Alarm, DriftSample, error) {
	alarms, err := m.Step(pred)
	if err != nil {
		return nil, DriftSample{}, err
	}
	if m.drift == nil || truth == nil {
		return alarms, DriftSample{}, nil
	}
	sample, err := m.drift.Step(pred, truth)
	if err != nil {
		return nil, DriftSample{}, err
	}
	return alarms, sample, nil
}
