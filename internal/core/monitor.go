package core

import (
	"fmt"
	"math"

	"specml/internal/nn"
)

// Limit is an alarm band for one monitored substance.
type Limit struct {
	Name string
	Min  float64
	Max  float64
}

// Alarm reports a limit violation at a monitoring step.
type Alarm struct {
	Step  int
	Name  string
	Value float64
	Limit Limit
}

func (a Alarm) String() string {
	return fmt.Sprintf("step %d: %s = %.4f outside [%.4f, %.4f]",
		a.Step, a.Name, a.Value, a.Limit.Min, a.Limit.Max)
}

// Monitor implements the closed-loop quality-control view: a stream of
// concentration predictions is checked against per-substance alarm bands,
// with exponential smoothing to suppress single-sample noise.
type Monitor struct {
	// Names are the substances in prediction order.
	Names []string
	// Limits are the alarm bands (substances without a band are logged
	// only).
	Limits []Limit
	// Smoothing is the exponential-moving-average factor in [0,1);
	// 0 disables smoothing.
	Smoothing float64

	step   int
	smooth []float64
	drift  *DriftDetector
}

// NewMonitor returns a monitor for the given substances.
func NewMonitor(names []string, limits []Limit, smoothing float64) (*Monitor, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("core: monitor needs substance names")
	}
	if smoothing < 0 || smoothing >= 1 {
		return nil, fmt.Errorf("core: smoothing must be in [0,1), got %g", smoothing)
	}
	for _, l := range limits {
		found := false
		for _, n := range names {
			if n == l.Name {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: limit for unknown substance %q", l.Name)
		}
		if l.Min > l.Max {
			return nil, fmt.Errorf("core: limit for %q has Min > Max", l.Name)
		}
	}
	return &Monitor{Names: names, Limits: limits, Smoothing: smoothing}, nil
}

// Step feeds one prediction vector and returns any alarms raised.
// Non-finite predictions are rejected before touching the smoothed state:
// a single NaN would otherwise poison the exponential average forever
// (NaN propagates through every later blend), silently disabling the
// alarm comparisons downstream.
func (m *Monitor) Step(pred []float64) ([]Alarm, error) {
	if len(pred) != len(m.Names) {
		return nil, fmt.Errorf("core: prediction width %d, monitor has %d substances", len(pred), len(m.Names))
	}
	for i, v := range pred {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("core: non-finite prediction for %s: %g", m.Names[i], v)
		}
	}
	if m.smooth == nil {
		m.smooth = append([]float64(nil), pred...)
	} else {
		a := m.Smoothing
		for i, v := range pred {
			m.smooth[i] = a*m.smooth[i] + (1-a)*v
		}
	}
	m.step++
	var alarms []Alarm
	for _, l := range m.Limits {
		for i, n := range m.Names {
			if n != l.Name {
				continue
			}
			v := m.smooth[i]
			if v < l.Min || v > l.Max || math.IsNaN(v) {
				alarms = append(alarms, Alarm{Step: m.step, Name: n, Value: v, Limit: l})
			}
		}
	}
	return alarms, nil
}

// Smoothed returns the current smoothed concentration estimates (nil
// before the first step).
func (m *Monitor) Smoothed() []float64 {
	if m.smooth == nil {
		return nil
	}
	out := make([]float64, len(m.smooth))
	copy(out, m.smooth)
	return out
}

// StepCount returns the number of processed predictions.
func (m *Monitor) StepCount() int { return m.step }

// MonitorSeries runs batched inference over a whole stream of measured
// input vectors on `workers` goroutines (0 = all cores) and then feeds the
// predictions through the monitor in stream order, returning every
// prediction and every alarm raised. The predictions — and therefore the
// alarms — are bit-identical for any worker count; only the inference
// phase is parallel, the stateful smoothing stays strictly sequential.
func MonitorSeries(m *Monitor, model *nn.Model, inputs [][]float64, workers int) ([][]float64, []Alarm, error) {
	if m == nil {
		return nil, nil, fmt.Errorf("core: MonitorSeries needs a monitor")
	}
	if model == nil {
		return nil, nil, fmt.Errorf("core: MonitorSeries needs a trained model")
	}
	preds, err := model.PredictBatch(inputs, workers)
	if err != nil {
		return nil, nil, err
	}
	var alarms []Alarm
	for _, p := range preds {
		a, err := m.Step(p)
		if err != nil {
			return nil, nil, err
		}
		alarms = append(alarms, a...)
	}
	return preds, alarms, nil
}
