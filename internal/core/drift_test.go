package core

import (
	"math"
	"testing"
)

func mustDetector(t *testing.T, cfg DriftConfig) *DriftDetector {
	t.Helper()
	d, err := NewDriftDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// residualStream feeds a synthetic residual series: `base` for the first
// `driftAt` steps, then base+magnitude. It returns the 1-based trip step,
// or -1 when the detector never trips within n steps.
func residualStream(t *testing.T, d *DriftDetector, n, driftAt int, base, magnitude float64) int {
	t.Helper()
	for i := 0; i < n; i++ {
		r := base
		if i >= driftAt {
			r += magnitude
		}
		if _, err := d.Observe(r); err != nil {
			t.Fatal(err)
		}
		if d.Tripped() {
			return d.TripStep()
		}
	}
	return -1
}

func TestDriftConfigValidate(t *testing.T) {
	good := DriftConfig{Smoothing: 0.9, Threshold: 0.05, Trip: 0.5, Warmup: 3}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []DriftConfig{
		{Smoothing: -0.1, Threshold: 0.05, Trip: 0.5},
		{Smoothing: 1.0, Threshold: 0.05, Trip: 0.5},
		{Smoothing: math.NaN(), Threshold: 0.05, Trip: 0.5},
		{Smoothing: 0.5, Threshold: -1, Trip: 0.5},
		{Smoothing: 0.5, Threshold: math.Inf(1), Trip: 0.5},
		{Smoothing: 0.5, Threshold: 0.05, Trip: 0},
		{Smoothing: 0.5, Threshold: 0.05, Trip: math.NaN()},
		{Smoothing: 0.5, Threshold: 0.05, Trip: 0.5, Warmup: -1},
	}
	for i, cfg := range bad {
		if _, err := NewDriftDetector(cfg); err == nil {
			t.Errorf("bad config %d (%+v) accepted", i, cfg)
		}
	}
}

// TestDriftNoDriftNoTrip: a residual stream that stays at the healthy
// baseline never trips, no matter how long it runs.
func TestDriftNoDriftNoTrip(t *testing.T) {
	cfg := DriftConfig{Smoothing: 0.8, Threshold: 0.05, Trip: 0.3, Warmup: 5}
	d := mustDetector(t, cfg)
	if got := residualStream(t, d, 10000, 0, 0.02, 0); got != -1 {
		t.Fatalf("healthy stream tripped at step %d", got)
	}
	if d.EWMA() >= cfg.Threshold {
		t.Fatalf("healthy EWMA %g should settle below the threshold %g", d.EWMA(), cfg.Threshold)
	}
}

// TestDriftStepTrip: a step change in the residual trips the detector
// within a bounded number of steps, and the trip step is deterministic.
func TestDriftStepTrip(t *testing.T) {
	cfg := DriftConfig{Smoothing: 0.8, Threshold: 0.05, Trip: 0.3, Warmup: 5}
	const driftAt = 50
	d1 := mustDetector(t, cfg)
	trip1 := residualStream(t, d1, 200, driftAt, 0.02, 0.15)
	if trip1 < 0 {
		t.Fatal("step drift never tripped")
	}
	if trip1 <= driftAt {
		t.Fatalf("tripped at %d, before the drift at step %d", trip1, driftAt+1)
	}
	if trip1 > driftAt+20 {
		t.Fatalf("tripped at %d, more than 20 steps after the drift at %d", trip1, driftAt)
	}
	// Determinism: an identical stream trips at the identical step.
	d2 := mustDetector(t, cfg)
	if trip2 := residualStream(t, d2, 200, driftAt, 0.02, 0.15); trip2 != trip1 {
		t.Fatalf("trip step not deterministic: %d then %d", trip1, trip2)
	}
}

// TestDriftTripMonotoneInMagnitude: a bigger drift trips no later than a
// smaller one.
func TestDriftTripMonotoneInMagnitude(t *testing.T) {
	cfg := DriftConfig{Smoothing: 0.8, Threshold: 0.05, Trip: 0.3, Warmup: 5}
	const driftAt = 30
	magnitudes := []float64{0.08, 0.12, 0.2, 0.4, 0.8}
	prev := math.MaxInt32
	for _, mag := range magnitudes {
		d := mustDetector(t, cfg)
		trip := residualStream(t, d, 500, driftAt, 0.02, mag)
		if trip < 0 {
			t.Fatalf("magnitude %g never tripped", mag)
		}
		if trip > prev {
			t.Fatalf("trip step %d for magnitude %g is later than %d for the smaller previous magnitude",
				trip, mag, prev)
		}
		prev = trip
	}
}

// TestDriftWarmupSuppressesAccumulation: a residual spike entirely inside
// the warmup window accumulates nothing.
func TestDriftWarmupSuppressesAccumulation(t *testing.T) {
	cfg := DriftConfig{Smoothing: 0, Threshold: 0.05, Trip: 0.1, Warmup: 10}
	d := mustDetector(t, cfg)
	for i := 0; i < 10; i++ {
		if _, err := d.Observe(10); err != nil { // enormous, but inside warmup
			t.Fatal(err)
		}
	}
	if d.Tripped() {
		t.Fatal("tripped during warmup")
	}
	// After warmup the healthy residual decays the (zero) accumulation.
	if got := residualStream(t, d, 100, 0, 0.01, 0); got != -1 {
		t.Fatalf("tripped at %d on a healthy stream after warmup", got)
	}
}

// TestDriftCUSUMRecovers: a short excursion above the threshold that
// returns to baseline drains the accumulated excess instead of latching it.
func TestDriftCUSUMRecovers(t *testing.T) {
	cfg := DriftConfig{Smoothing: 0, Threshold: 0.05, Trip: 0.5, Warmup: 0}
	d := mustDetector(t, cfg)
	for i := 0; i < 4; i++ { // 4 * (0.15-0.05) = 0.4 < Trip
		if _, err := d.Observe(0.15); err != nil {
			t.Fatal(err)
		}
	}
	if d.Tripped() {
		t.Fatal("tripped below the trip level")
	}
	for i := 0; i < 20; i++ {
		if _, err := d.Observe(0.01); err != nil {
			t.Fatal(err)
		}
	}
	s, err := d.Observe(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if s.CUSUM != 0 {
		t.Fatalf("CUSUM %g did not drain back to zero", s.CUSUM)
	}
}

// TestDriftResetClearsState: Reset returns the detector to its initial
// state, so post-recalibration residuals are judged fresh.
func TestDriftResetClearsState(t *testing.T) {
	cfg := DriftConfig{Smoothing: 0.5, Threshold: 0.05, Trip: 0.2, Warmup: 0}
	d := mustDetector(t, cfg)
	if trip := residualStream(t, d, 100, 0, 0.02, 0.5); trip < 0 {
		t.Fatal("expected a trip")
	}
	d.Reset()
	if d.Tripped() || d.TripStep() != -1 || d.StepCount() != 0 || d.EWMA() != 0 {
		t.Fatalf("reset left state behind: %+v", d)
	}
	if got := residualStream(t, d, 200, 0, 0.02, 0); got != -1 {
		t.Fatalf("tripped at %d on a healthy stream after reset", got)
	}
}

func TestDriftStepErrors(t *testing.T) {
	d := mustDetector(t, DriftConfig{Smoothing: 0.5, Threshold: 0.05, Trip: 0.2})
	if _, err := d.Step([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := d.Step(nil, nil); err == nil {
		t.Error("empty step accepted")
	}
	if _, err := d.Step([]float64{math.NaN()}, []float64{0}); err == nil {
		t.Error("NaN residual accepted")
	}
	if _, err := d.Observe(math.Inf(1)); err == nil {
		t.Error("infinite residual accepted")
	}
	if _, err := d.Observe(-0.1); err == nil {
		t.Error("negative residual accepted")
	}
}

// TestMonitorStepWithTruth: the monitor hook feeds alarms and the drift
// detector from one call, and works without a detector attached.
func TestMonitorStepWithTruth(t *testing.T) {
	m, err := NewMonitor([]string{"a", "b"}, []Limit{{Name: "a", Min: 0, Max: 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// No detector: plain monitor semantics, zero drift sample.
	alarms, sample, err := m.StepWithTruth([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) != 0 || sample.Step != 0 {
		t.Fatalf("unexpected alarms %v or drift sample %+v without a detector", alarms, sample)
	}
	d := mustDetector(t, DriftConfig{Smoothing: 0, Threshold: 0.05, Trip: 0.1, Warmup: 0})
	m.SetDriftDetector(d)
	if m.DriftDetector() != d {
		t.Fatal("detector not attached")
	}
	// Large residual: drift statistics move, and the out-of-band value
	// still raises the alarm.
	alarms, sample, err = m.StepWithTruth([]float64{1.5, 0.5}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) != 1 {
		t.Fatalf("expected 1 alarm, got %v", alarms)
	}
	if sample.Step != 1 || sample.Residual != 0.5 {
		t.Fatalf("unexpected drift sample %+v", sample)
	}
	if !d.Tripped() {
		t.Fatal("large residual should trip immediately at this config")
	}
	// A nil truth skips the detector but still monitors.
	if _, s, err := m.StepWithTruth([]float64{0.5, 0.5}, nil); err != nil || s.Step != 0 {
		t.Fatalf("nil truth: err %v sample %+v", err, s)
	}
	if d.StepCount() != 1 {
		t.Fatalf("nil truth advanced the detector to %d", d.StepCount())
	}
	// Errors propagate from the monitor step.
	if _, _, err := m.StepWithTruth([]float64{0.5}, []float64{0.5}); err == nil {
		t.Fatal("width mismatch accepted")
	}
}
