// Package core is the public high-level API of the library: end-to-end
// pipelines that tie the substrates together exactly the way the paper's
// two projects do.
//
//   - MSPipeline: characterize a (virtual) miniaturized mass spectrometer
//     from a few reference measurements, generate an arbitrarily large
//     simulated training corpus, train the Table-1 CNN and predict
//     substance concentrations from measured spectra — with the input
//     plausibility check the paper calls for.
//   - NMRPipeline: fit Indirect-Hard-Modelling component models to a few
//     pure-component spectra, augment them into a large synthetic corpus,
//     train the small locally-connected CNN and the LSTM time-series
//     model, and benchmark both against classical IHM analysis.
//   - Monitor: a closed-loop process-monitoring helper with alarm limits.
package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"specml/internal/dataset"
	"specml/internal/msim"
	"specml/internal/rng"
	"specml/internal/spectrum"
	"specml/internal/store"
	"specml/internal/toolflow"
)

// MSConfig configures an MSPipeline.
type MSConfig struct {
	// Task lists the compound names whose concentrations are predicted
	// (defaults to msim.DefaultTask).
	Task []string
	// Axis is the instrument's m/z axis (defaults to msim.DefaultAxis).
	Axis spectrum.Axis
	// TrainSamples is the size of the simulated training corpus, split
	// 80/20 into training and validation (paper: 100 000; default 2000 for
	// laptop-scale runs).
	TrainSamples int
	// Alpha is the Dirichlet concentration of random training mixtures.
	Alpha float64
	// Epochs, BatchSize and LR drive the training loop (LR defaults to
	// 5e-3, which converges at laptop-scale corpus sizes).
	Epochs    int
	BatchSize int
	LR        float64
	// Seed makes the pipeline fully deterministic.
	Seed uint64
	// Workers is the worker count for corpus generation, training and batch
	// evaluation (0 = all cores). Every result is bit-identical for any
	// value, so Workers is a pure throughput knob.
	Workers int
	// Hidden, Conv6 and Output select the Table-1 activation variant
	// (defaults: selu/softmax/softmax, the paper's best).
	Hidden, Conv6, Output string
	// PlausibilityThreshold is the maximum tolerated fraction of
	// above-baseline signal outside known fragment regions before Predict
	// rejects an input (default 0.08).
	PlausibilityThreshold float64
	// ExactRender forces the legacy per-sample renderer during corpus
	// generation instead of the cached-template fast path (slower,
	// bit-identical to pre-cache corpora; see DESIGN.md).
	ExactRender bool
	// Store, when non-nil, records datasets and networks with provenance.
	Store *store.Store
}

func (c *MSConfig) withDefaults() (*MSConfig, error) {
	out := *c
	if len(out.Task) == 0 {
		out.Task = msim.DefaultTask
	}
	if out.Axis.N == 0 {
		out.Axis = msim.DefaultAxis()
	}
	if out.TrainSamples <= 0 {
		out.TrainSamples = 2000
	}
	if out.Alpha <= 0 {
		out.Alpha = 1.0
	}
	if out.Epochs <= 0 {
		out.Epochs = 8
	}
	if out.BatchSize <= 0 {
		out.BatchSize = 32
	}
	if out.LR <= 0 {
		out.LR = 0.005
	}
	if out.Hidden == "" {
		out.Hidden = "selu"
	}
	if out.Conv6 == "" {
		out.Conv6 = "softmax"
	}
	if out.Output == "" {
		out.Output = "softmax"
	}
	if out.PlausibilityThreshold <= 0 {
		out.PlausibilityThreshold = 0.08
	}
	return &out, nil
}

// MSPipeline is the end-to-end MS flow.
type MSPipeline struct {
	cfg *MSConfig
	sim *msim.LineSimulator
	// instrument is the Tool-2 estimate used by Tool 3.
	instrument *msim.InstrumentModel
	result     *toolflow.Result

	refsID, simID, dataID string
}

// NewMSPipeline validates the configuration and resolves the measurement
// task.
func NewMSPipeline(cfg MSConfig) (*MSPipeline, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	comps, err := msim.Compounds(c.Task...)
	if err != nil {
		return nil, err
	}
	sim, err := msim.NewLineSimulator(comps)
	if err != nil {
		return nil, err
	}
	return &MSPipeline{cfg: c, sim: sim}, nil
}

// LineSimulator exposes Tool 1 (for reference collection and experiments).
func (p *MSPipeline) LineSimulator() *msim.LineSimulator { return p.sim }

// Names returns the substance names in label order.
func (p *MSPipeline) Names() []string { return p.sim.Names() }

// Characterize runs Tool 2 on reference measurements and installs the
// estimated instrument model.
func (p *MSPipeline) Characterize(refs []msim.ReferenceSeries) error {
	ch := &msim.Characterizer{Task: p.sim.Compounds(), IgnitionMZ: 4}
	est, err := ch.Estimate(refs)
	if err != nil {
		return err
	}
	p.instrument = est
	if p.cfg.Store != nil {
		rid, err := p.cfg.Store.Put("measurements", map[string]string{
			"kind":   "reference-series",
			"series": fmt.Sprintf("%d", len(refs)),
		}, nil, len(refs))
		if err != nil {
			return err
		}
		p.refsID = rid
		sid, err := p.cfg.Store.Put("simulators", map[string]string{
			"kind": "instrument-model",
		}, []string{rid}, est)
		if err != nil {
			return err
		}
		p.simID = sid
	}
	return nil
}

// SetInstrumentModel installs an externally produced instrument model
// (e.g., in ablations that bypass characterization).
func (p *MSPipeline) SetInstrumentModel(m *msim.InstrumentModel) error {
	if err := m.Validate(); err != nil {
		return err
	}
	p.instrument = m.Clone()
	return nil
}

// InstrumentModel returns the current (estimated) model, or nil before
// characterization.
func (p *MSPipeline) InstrumentModel() *msim.InstrumentModel { return p.instrument }

// GenerateTraining produces the simulated labelled corpus via Tools 1+3.
func (p *MSPipeline) GenerateTraining() (*dataset.Dataset, error) {
	if p.instrument == nil {
		return nil, fmt.Errorf("core: characterize the instrument before generating training data")
	}
	d, err := msim.GenerateTrainingWith(p.sim, p.instrument, p.cfg.Axis,
		p.cfg.TrainSamples, p.cfg.Alpha, p.cfg.Seed+1, p.cfg.Workers,
		msim.TrainingOptions{ExactRender: p.cfg.ExactRender})
	if err != nil {
		return nil, err
	}
	if p.cfg.Store != nil {
		var parents []string
		if p.simID != "" {
			parents = append(parents, p.simID)
		}
		id, err := p.cfg.Store.Put("datasets", map[string]string{
			"kind":    "simulated-training",
			"samples": fmt.Sprintf("%d", d.Len()),
		}, parents, d.Len())
		if err != nil {
			return nil, err
		}
		p.dataID = id
	}
	return d, nil
}

// Train generates the corpus, splits it 80/20 and trains the configured
// Table-1 variant. verbose may be nil.
func (p *MSPipeline) Train(verbose io.Writer) (*toolflow.Result, error) {
	d, err := p.GenerateTraining()
	if err != nil {
		return nil, err
	}
	d.Shuffle(rng.New(p.cfg.Seed + 2))
	train, val, err := d.Split(0.8)
	if err != nil {
		return nil, err
	}
	spec, err := toolflow.MSTable1Spec(p.cfg.Axis.N, p.sim.NumCompounds(),
		p.cfg.Hidden, p.cfg.Conv6, p.cfg.Output, p.cfg.Epochs, p.cfg.BatchSize, p.cfg.Seed)
	if err != nil {
		return nil, err
	}
	spec.LR = p.cfg.LR
	spec.Workers = p.cfg.Workers
	runner := &toolflow.Runner{
		Store:       p.cfg.Store,
		DatasetID:   p.dataID,
		SimulatorID: p.simID,
		Verbose:     verbose,
	}
	res, err := runner.Train(spec, train, val)
	if err != nil {
		return nil, err
	}
	p.result = res
	return res, nil
}

// Result returns the trained network record, or nil before Train.
func (p *MSPipeline) Result() *toolflow.Result { return p.result }

// ErrImplausibleInput is returned by Predict when the measured spectrum
// does not look like a spectrum of the configured measurement task — "in
// the case of inputs containing unknown compounds ... no meaningful output
// can be expected".
type ErrImplausibleInput struct {
	Reason string
	// UnknownFraction is the intensity fraction outside known fragment
	// regions.
	UnknownFraction float64
}

func (e *ErrImplausibleInput) Error() string {
	return fmt.Sprintf("core: implausible input: %s (unknown-region intensity fraction %.3f)",
		e.Reason, e.UnknownFraction)
}

// CheckPlausibility verifies that a preprocessed input vector concentrates
// its signal near the known fragment positions of the task (plus the
// ignition artifact). The instrument's baseline and noise floor are
// removed first by subtracting the median intensity, so only genuine
// peaks count toward the unknown-region fraction.
func (p *MSPipeline) CheckPlausibility(x []float64) error {
	if len(x) != p.cfg.Axis.N {
		return fmt.Errorf("core: input length %d, expected %d", len(x), p.cfg.Axis.N)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &ErrImplausibleInput{Reason: "non-finite intensity"}
		}
	}
	// baseline proxy: the median sample (most of the axis is peak-free)
	sorted := append([]float64(nil), x...)
	sort.Float64s(sorted)
	baseline := sorted[len(sorted)/2]
	total := 0.0
	excess := make([]float64, len(x))
	for i, v := range x {
		if e := v - baseline; e > 0 {
			excess[i] = e
			total += e
		}
	}
	if total <= 0 {
		return &ErrImplausibleInput{Reason: "no signal"}
	}
	// collect known positions: every fragment of every task compound plus
	// the ignition artifact
	var known []float64
	for _, c := range p.sim.Compounds() {
		for _, f := range c.Fragments {
			known = append(known, f.Position)
		}
	}
	known = append(known, 4) // ignition gas
	unknown := 0.0
	for i, e := range excess {
		if e == 0 {
			continue
		}
		mz := p.cfg.Axis.Value(i)
		near := false
		for _, k := range known {
			if math.Abs(mz-k) < 0.75 {
				near = true
				break
			}
		}
		if !near {
			unknown += e
		}
	}
	frac := unknown / total
	if frac > p.cfg.PlausibilityThreshold {
		return &ErrImplausibleInput{Reason: "signal outside known fragment regions", UnknownFraction: frac}
	}
	return nil
}

// UnknownSignalFraction computes the plausibility statistic without
// applying the threshold (for diagnostics and dashboards).
func (p *MSPipeline) UnknownSignalFraction(x []float64) (float64, error) {
	err := p.CheckPlausibility(x)
	if err == nil {
		// recompute by temporarily using a zero threshold would duplicate
		// work; instead rerun with the error carrying the fraction
		saved := p.cfg.PlausibilityThreshold
		p.cfg.PlausibilityThreshold = -1
		err = p.CheckPlausibility(x)
		p.cfg.PlausibilityThreshold = saved
	}
	var impl *ErrImplausibleInput
	if errors.As(err, &impl) {
		return impl.UnknownFraction, nil
	}
	return 0, err
}

// Predict maps a measured spectrum to substance fractions. Spectra on a
// different axis are interpolated onto the training axis first; the
// plausibility check rejects inputs that cannot belong to the task.
func (p *MSPipeline) Predict(s *spectrum.Spectrum) ([]float64, error) {
	if p.result == nil {
		return nil, fmt.Errorf("core: train the pipeline before predicting")
	}
	rs := s
	if !s.Axis.Equal(p.cfg.Axis) {
		rs = s.Resample(p.cfg.Axis)
	}
	x := msim.Preprocess(rs)
	if err := p.CheckPlausibility(x); err != nil {
		return nil, err
	}
	return p.result.Model.Predict(x), nil
}

// EvaluateOn computes evaluation metrics of the trained network over a
// measured dataset.
func (p *MSPipeline) EvaluateOn(d *dataset.Dataset) (*dataset.Metrics, error) {
	if p.result == nil {
		return nil, fmt.Errorf("core: train the pipeline before evaluating")
	}
	preds, err := p.result.Model.PredictBatch(d.X, p.cfg.Workers)
	if err != nil {
		return nil, err
	}
	return dataset.Evaluate(preds, d.Y)
}
