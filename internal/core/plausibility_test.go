package core

import (
	"math"
	"testing"

	"specml/internal/msim"
	"specml/internal/spectrum"
)

func TestUnknownSignalFraction(t *testing.T) {
	p, err := NewMSPipeline(MSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	axis := msim.DefaultAxis()
	// all signal on a known fragment: fraction ~0
	known := make([]float64, axis.N)
	known[axis.NearestIndex(28)] = 1
	f, err := p.UnknownSignalFraction(known)
	if err != nil {
		t.Fatal(err)
	}
	if f > 0.01 {
		t.Fatalf("known-fragment fraction = %v", f)
	}
	// half the signal in an empty region
	mixed := make([]float64, axis.N)
	mixed[axis.NearestIndex(28)] = 0.5
	mixed[axis.NearestIndex(85)] = 0.5
	f, err = p.UnknownSignalFraction(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-0.5) > 0.05 {
		t.Fatalf("unknown fraction = %v, want ~0.5", f)
	}
}

func TestUnknownSignalFractionOnMeasuredData(t *testing.T) {
	// Realistic spectra from the virtual prototype: task mixtures stay
	// under the default threshold; off-task contamination exceeds it.
	p, err := NewMSPipeline(MSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	proto := msim.NewVirtualInstrument(nil, 51)
	axis := msim.DefaultAxis()
	frac := make([]float64, 8)
	frac[3], frac[6] = 0.6, 0.4 // N2 + CO2
	ideal, err := p.LineSimulator().Mixture(frac)
	if err != nil {
		t.Fatal(err)
	}
	s, err := proto.Measure(ideal, axis)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckPlausibility(msim.Preprocess(s)); err != nil {
		t.Fatalf("legitimate measurement rejected: %v", err)
	}

	propane, err := msim.ByName("C3H8")
	if err != nil {
		t.Fatal(err)
	}
	blended, err := spectrum.SuperposeLines([]float64{0.5, 0.5},
		[]*spectrum.LineSpectrum{ideal, propane.Lines()})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := proto.Measure(blended, axis)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckPlausibility(msim.Preprocess(s2)); err == nil {
		t.Fatal("heavy propane contamination not rejected")
	}
}

func TestPlausibilityThresholdConfigurable(t *testing.T) {
	// A permissive threshold accepts what the default rejects.
	loose, err := NewMSPipeline(MSConfig{PlausibilityThreshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	axis := msim.DefaultAxis()
	x := make([]float64, axis.N)
	x[axis.NearestIndex(28)] = 0.4
	x[axis.NearestIndex(85)] = 0.6
	if err := loose.CheckPlausibility(x); err != nil {
		t.Fatalf("loose threshold still rejected: %v", err)
	}
}
