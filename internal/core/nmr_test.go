package core

import (
	"math"
	"testing"

	"specml/internal/dataset"
	"specml/internal/nmrsim"
	"specml/internal/toolflow"
)

func TestNMRPipelineRequiresOrder(t *testing.T) {
	p := NewNMRPipeline(NMRConfig{})
	if _, err := p.TrainCNN(nil, nil); err == nil {
		t.Fatal("TrainCNN before FitComponents must error")
	}
	if _, err := p.TrainLSTM(nil, nil); err == nil {
		t.Fatal("TrainLSTM before FitComponents must error")
	}
	if _, _, err := p.AnalyzeIHM(nil); err == nil {
		t.Fatal("AnalyzeIHM before FitComponents must error")
	}
	if _, _, err := p.PredictCNN(nil); err == nil {
		t.Fatal("PredictCNN before TrainCNN must error")
	}
}

// miniature NMR end-to-end: fit components, train a tiny CNN, compare
// against IHM on one spectrum.
func TestNMRPipelineEndToEnd(t *testing.T) {
	p := NewNMRPipeline(NMRConfig{
		TrainSamples: 120,
		Epochs:       6,
		BatchSize:    16,
		Seed:         3,
	})
	if err := p.FitComponents(); err != nil {
		t.Fatal(err)
	}
	if len(p.Components()) != nmrsim.NumComponents {
		t.Fatalf("%d components fitted", len(p.Components()))
	}
	if p.Augmenter() == nil {
		t.Fatal("augmenter not configured")
	}

	// validation data from a small reactor campaign
	reactor := nmrsim.NewReactor()
	plateaus, err := nmrsim.Campaign(reactor, p.LowField, nmrsim.DoE(2, 2), 5, 0.002, 7)
	if err != nil {
		t.Fatal(err)
	}
	spectra, labels := nmrsim.FlattenCampaign(plateaus)
	val := dataset.New(len(spectra))
	for i := range spectra {
		val.Append(spectra[i].Intensities, labels[i])
	}

	res, err := p.TrainCNN(val, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.NumParams() != 10532 {
		t.Fatalf("CNN params %d, want 10532", res.Model.NumParams())
	}
	if p.CNN() != res {
		t.Fatal("CNN record not stored")
	}

	// predictions and latency on one spectrum
	pred, dt, err := p.PredictCNN(spectra[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 4 || dt <= 0 {
		t.Fatalf("prediction %v in %v", pred, dt)
	}

	// IHM on the same spectrum: concentrations comparable to labels
	conc, ihmTime, err := p.AnalyzeIHM(spectra[0])
	if err != nil {
		t.Fatal(err)
	}
	if ihmTime <= dt {
		t.Fatalf("IHM (%v) should be slower than the CNN (%v)", ihmTime, dt)
	}
	for j := range conc {
		if math.Abs(conc[j]-labels[0][j]) > 0.1 {
			t.Fatalf("IHM concentration %d = %v, label %v", j, conc[j], labels[0][j])
		}
	}
}

// TestNMRPipelineStreamedCNNBitIdentical pins the pipeline-level streaming
// guarantee: TrainCNN with Stream renders the corpus on demand yet produces
// the bit-identical network of the materialized path.
func TestNMRPipelineStreamedCNNBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the CNN twice")
	}
	reactor := nmrsim.NewReactor()
	train := func(stream bool) *toolflow.Result {
		p := NewNMRPipeline(NMRConfig{
			TrainSamples: 80,
			Epochs:       2,
			BatchSize:    16,
			Seed:         3,
			Stream:       stream,
		})
		if err := p.FitComponents(); err != nil {
			t.Fatal(err)
		}
		plateaus, err := nmrsim.Campaign(reactor, p.LowField, nmrsim.DoE(2, 1), 3, 0.002, 7)
		if err != nil {
			t.Fatal(err)
		}
		spectra, labels := nmrsim.FlattenCampaign(plateaus)
		val := dataset.New(len(spectra))
		for i := range spectra {
			val.Append(spectra[i].Intensities, labels[i])
		}
		res, err := p.TrainCNN(val, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := train(false)
	got := train(true)
	wp, gp := want.Model.Params(), got.Model.Params()
	for i := range wp {
		for j := range wp[i].Data {
			if math.Float64bits(wp[i].Data[j]) != math.Float64bits(gp[i].Data[j]) {
				t.Fatalf("streamed param %d[%d] = %v, materialized %v", i, j, gp[i].Data[j], wp[i].Data[j])
			}
		}
	}
	if got.ValMAE != want.ValMAE {
		t.Fatalf("streamed val MAE %v, materialized %v", got.ValMAE, want.ValMAE)
	}
}

func TestNMRPipelineLSTM(t *testing.T) {
	p := NewNMRPipeline(NMRConfig{
		Windows:   40,
		Steps:     3,
		MaxRepeat: 4,
		Epochs:    2,
		BatchSize: 8,
		Seed:      9,
	})
	if err := p.FitComponents(); err != nil {
		t.Fatal(err)
	}
	reactor := nmrsim.NewReactor()
	plateaus, err := nmrsim.Campaign(reactor, p.LowField, nmrsim.DoE(2, 1), 4, 0.002, 5)
	if err != nil {
		t.Fatal(err)
	}
	spectra, labels := nmrsim.FlattenCampaign(plateaus)
	val, err := nmrsim.WindowCampaign(spectra, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.TrainLSTM(val, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.LSTM() != res {
		t.Fatal("LSTM record not stored")
	}
	// 3-step windows on 1700-point spectra: 4*32*(1700+32+1) + 132 params
	want := 4*32*(1700+32+1) + 32*4 + 4
	if res.Model.NumParams() != want {
		t.Fatalf("LSTM params %d, want %d", res.Model.NumParams(), want)
	}
}

// TestNMRPipelineStreamedLSTMBitIdentical pins the same pipeline-level
// streaming guarantee for the recurrent model: TrainLSTM with Stream replays
// the order-dependent rolling-window corpus through the windowed source yet
// produces the bit-identical network of the materialized path.
func TestNMRPipelineStreamedLSTMBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the LSTM twice")
	}
	reactor := nmrsim.NewReactor()
	train := func(stream bool) *toolflow.Result {
		p := NewNMRPipeline(NMRConfig{
			Windows:   30,
			Steps:     3,
			MaxRepeat: 4,
			Epochs:    2,
			BatchSize: 8,
			Seed:      9,
			Stream:    stream,
		})
		if err := p.FitComponents(); err != nil {
			t.Fatal(err)
		}
		plateaus, err := nmrsim.Campaign(reactor, p.LowField, nmrsim.DoE(2, 1), 4, 0.002, 5)
		if err != nil {
			t.Fatal(err)
		}
		spectra, labels := nmrsim.FlattenCampaign(plateaus)
		val, err := nmrsim.WindowCampaign(spectra, labels, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.TrainLSTM(val, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := train(false)
	got := train(true)
	wp, gp := want.Model.Params(), got.Model.Params()
	for i := range wp {
		for j := range wp[i].Data {
			if math.Float64bits(wp[i].Data[j]) != math.Float64bits(gp[i].Data[j]) {
				t.Fatalf("streamed param %d[%d] = %v, materialized %v", i, j, gp[i].Data[j], wp[i].Data[j])
			}
		}
	}
	if got.ValMAE != want.ValMAE {
		t.Fatalf("streamed val MAE %v, materialized %v", got.ValMAE, want.ValMAE)
	}
}
