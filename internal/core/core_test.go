package core

import (
	"errors"
	"math"
	"testing"

	"specml/internal/msim"
	"specml/internal/spectrum"
	"specml/internal/store"
)

func TestNewMSPipelineDefaults(t *testing.T) {
	p, err := NewMSPipeline(MSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Names()) != 8 {
		t.Fatalf("default task has %d compounds", len(p.Names()))
	}
	if _, err := NewMSPipeline(MSConfig{Task: []string{"Unobtainium"}}); err == nil {
		t.Fatal("unknown compound must error")
	}
}

func TestMSPipelineRequiresOrder(t *testing.T) {
	p, err := NewMSPipeline(MSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.GenerateTraining(); err == nil {
		t.Fatal("GenerateTraining before Characterize must error")
	}
	if _, err := p.Predict(spectrum.New(msim.DefaultAxis())); err == nil {
		t.Fatal("Predict before Train must error")
	}
	if _, err := p.EvaluateOn(nil); err == nil {
		t.Fatal("EvaluateOn before Train must error")
	}
}

func TestMSPipelineSetInstrumentModel(t *testing.T) {
	p, _ := NewMSPipeline(MSConfig{})
	if err := p.SetInstrumentModel(msim.DefaultTrueModel()); err != nil {
		t.Fatal(err)
	}
	if p.InstrumentModel() == nil {
		t.Fatal("model not installed")
	}
	bad := msim.DefaultTrueModel()
	bad.PeakFWHM0 = -1
	if err := p.SetInstrumentModel(bad); err == nil {
		t.Fatal("invalid model must be rejected")
	}
}

// miniature end-to-end MS pipeline (tiny sizes; quality asserted loosely)
func TestMSPipelineEndToEnd(t *testing.T) {
	st := store.New()
	p, err := NewMSPipeline(MSConfig{
		TrainSamples: 150,
		Epochs:       2,
		BatchSize:    16,
		Seed:         5,
		Store:        st,
	})
	if err != nil {
		t.Fatal(err)
	}
	vi := msim.NewVirtualInstrument(nil, 42)
	refs, err := msim.CollectReferences(vi, p.LineSimulator(), msim.DefaultAxis(),
		msim.StandardMixtures(8), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Characterize(refs); err != nil {
		t.Fatal(err)
	}
	if p.InstrumentModel() == nil {
		t.Fatal("no instrument model after characterization")
	}
	res, err := p.Train(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.NumParams() < 20000 {
		t.Fatalf("unexpected model size %d", res.Model.NumParams())
	}
	// provenance: network document exists and traces to measurements
	nets := st.Find("networks", nil)
	if len(nets) != 1 {
		t.Fatalf("%d network documents", len(nets))
	}
	lin, err := st.Lineage(nets[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(lin) < 2 {
		t.Fatalf("lineage too short: %d", len(lin))
	}

	// prediction on a freshly measured plausible spectrum works
	frac := make([]float64, 8)
	frac[3] = 1
	ideal, _ := p.LineSimulator().Mixture(frac)
	s, err := vi.Measure(ideal, msim.DefaultAxis())
	if err != nil {
		t.Fatal(err)
	}
	pred, err := p.Predict(s)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range pred {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("softmax predictions must sum to 1, got %v", sum)
	}

	// a different axis is resampled transparently
	otherAxis := spectrum.MustAxis(1, 0.25, 397)
	s2, _ := vi.Measure(ideal, otherAxis)
	if _, err := p.Predict(s2); err != nil {
		t.Fatalf("resampled prediction failed: %v", err)
	}
}

func TestCheckPlausibility(t *testing.T) {
	p, _ := NewMSPipeline(MSConfig{})
	axis := msim.DefaultAxis()

	// plausible: intensity near known fragments
	ok := make([]float64, axis.N)
	ok[axis.NearestIndex(28)] = 0.7 // N2
	ok[axis.NearestIndex(32)] = 0.3 // O2
	if err := p.CheckPlausibility(ok); err != nil {
		t.Fatalf("plausible input rejected: %v", err)
	}

	// implausible: big signal at m/z 85 (no task fragment nearby)
	bad := make([]float64, axis.N)
	bad[axis.NearestIndex(28)] = 0.5
	bad[axis.NearestIndex(85)] = 0.5
	err := p.CheckPlausibility(bad)
	var impl *ErrImplausibleInput
	if !errors.As(err, &impl) {
		t.Fatalf("unknown-compound input not flagged: %v", err)
	}
	if impl.UnknownFraction < 0.4 {
		t.Fatalf("unknown fraction %v too small", impl.UnknownFraction)
	}

	// degenerate inputs
	if err := p.CheckPlausibility(make([]float64, axis.N)); err == nil {
		t.Fatal("zero spectrum must be implausible")
	}
	nan := make([]float64, axis.N)
	nan[0] = math.NaN()
	if err := p.CheckPlausibility(nan); err == nil {
		t.Fatal("NaN spectrum must be implausible")
	}
	if err := p.CheckPlausibility([]float64{1}); err == nil {
		t.Fatal("wrong length must error")
	}
}

func TestMonitor(t *testing.T) {
	names := []string{"N2", "O2"}
	limits := []Limit{{Name: "O2", Min: 0, Max: 0.3}}
	m, err := NewMonitor(names, limits, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// first in-range step: no alarm
	alarms, err := m.Step([]float64{0.8, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) != 0 {
		t.Fatalf("unexpected alarms: %v", alarms)
	}
	// O2 jumps; smoothing keeps the first excursion in band
	alarms, _ = m.Step([]float64{0.5, 0.38})
	if len(alarms) != 0 {
		t.Fatalf("smoothing failed: %v", alarms)
	}
	// sustained excursion must alarm
	for i := 0; i < 5; i++ {
		alarms, _ = m.Step([]float64{0.5, 0.5})
	}
	if len(alarms) != 1 || alarms[0].Name != "O2" {
		t.Fatalf("expected O2 alarm, got %v", alarms)
	}
	if alarms[0].String() == "" {
		t.Fatal("alarm formatting empty")
	}
	if m.StepCount() != 7 {
		t.Fatalf("step count %d", m.StepCount())
	}
	if got := m.Smoothed(); len(got) != 2 {
		t.Fatalf("smoothed = %v", got)
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(nil, nil, 0); err == nil {
		t.Fatal("empty names must error")
	}
	if _, err := NewMonitor([]string{"a"}, nil, 1.0); err == nil {
		t.Fatal("smoothing 1.0 must error")
	}
	if _, err := NewMonitor([]string{"a"}, []Limit{{Name: "b"}}, 0); err == nil {
		t.Fatal("unknown limit substance must error")
	}
	if _, err := NewMonitor([]string{"a"}, []Limit{{Name: "a", Min: 1, Max: 0}}, 0); err == nil {
		t.Fatal("inverted limit must error")
	}
	m, _ := NewMonitor([]string{"a"}, nil, 0)
	if _, err := m.Step([]float64{1, 2}); err == nil {
		t.Fatal("wrong prediction width must error")
	}
}
