package toolflow

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specml/internal/dataset"
)

// TestTrainSourceMatchesTrain pins the runner-level streaming guarantee:
// TrainSource on a source must train the bit-identical network Train does on
// the materialized rows.
func TestTrainSourceMatchesTrain(t *testing.T) {
	train := tinyData(120, 1)
	val := tinyData(40, 2)
	r := &Runner{}
	spec := tinySpec(6)
	spec.KeepBest = true

	want, err := r.Train(spec, train, val)
	if err != nil {
		t.Fatal(err)
	}
	src, err := dataset.FromDataset(train)
	if err != nil {
		t.Fatal(err)
	}
	for _, prefetch := range []int{0, 3} {
		spec.Prefetch = prefetch
		got, err := r.TrainSource(spec, src, val)
		if err != nil {
			t.Fatal(err)
		}
		wp, gp := want.Model.Params(), got.Model.Params()
		for i := range wp {
			for j := range wp[i].Data {
				if math.Float64bits(wp[i].Data[j]) != math.Float64bits(gp[i].Data[j]) {
					t.Fatalf("prefetch %d: param %d[%d] differs: %v vs %v",
						prefetch, i, j, gp[i].Data[j], wp[i].Data[j])
				}
			}
		}
		if got.ValMAE != want.ValMAE {
			t.Fatalf("prefetch %d: val MAE %v vs %v", prefetch, got.ValMAE, want.ValMAE)
		}
	}
}

// TestTrainSourceResume pins resume-if-checkpoint-exists: a run killed after
// some epochs continues from its checkpoint and lands on the bit-identical
// network of an uninterrupted run.
func TestTrainSourceResume(t *testing.T) {
	train := tinyData(96, 3)
	val := tinyData(32, 4)
	src, err := dataset.FromDataset(train)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{}

	straight := tinySpec(5)
	want, err := r.TrainSource(straight, src, val)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "tiny.ckpt")
	partial := tinySpec(3)
	partial.Checkpoint = ckpt
	if _, err := r.TrainSource(partial, src, val); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	var buf bytes.Buffer
	r2 := &Runner{Verbose: &buf}
	full := tinySpec(5)
	full.Checkpoint = ckpt
	got, err := r2.TrainSource(full, src, val)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "resuming") {
		t.Fatalf("resume not reported:\n%s", buf.String())
	}
	wp, gp := want.Model.Params(), got.Model.Params()
	for i := range wp {
		for j := range wp[i].Data {
			if math.Float64bits(wp[i].Data[j]) != math.Float64bits(gp[i].Data[j]) {
				t.Fatalf("resumed param %d[%d] differs: %v vs %v", i, j, gp[i].Data[j], wp[i].Data[j])
			}
		}
	}
}

func TestTrainSourceValidatesInput(t *testing.T) {
	r := &Runner{}
	if _, err := r.TrainSource(tinySpec(1), nil, tinyData(5, 6)); err == nil {
		t.Fatal("nil source must error")
	}
	// an unreadable checkpoint file must fail loudly, not silently retrain
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := tinySpec(1)
	spec.Checkpoint = bad
	src, err := dataset.FromDataset(tinyData(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.TrainSource(spec, src, tinyData(5, 6)); err == nil {
		t.Fatal("corrupt checkpoint must error")
	}
}
