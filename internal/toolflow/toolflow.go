// Package toolflow is Tool 4 of the paper's MS toolchain: the automated
// definition, training, evaluation and selection of ANN topologies.
// Networks are declared as data (TopologySpec), so "the definition of one
// or more network topologies and the training- and validation datasets to
// use" requires no source-code changes; the whole training process runs
// without user interaction, and backend helpers evaluate trained networks,
// select the best one by a quality criterion and export it. Every step is
// recorded in the provenance store.
package toolflow

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"specml/internal/dataset"
	"specml/internal/nn"
	"specml/internal/rng"
	"specml/internal/store"
)

// TopologySpec declares one trainable network plus its training recipe.
type TopologySpec struct {
	Name       string         `json:"name"`
	Layers     []nn.LayerSpec `json:"layers"`
	Loss       string         `json:"loss"`      // "mae" (default), "mse", "huber"
	Optimizer  string         `json:"optimizer"` // "adam" (default), "sgd", "momentum"
	LR         float64        `json:"lr"`
	Epochs     int            `json:"epochs"`
	BatchSize  int            `json:"batchSize"`
	Seed       uint64         `json:"seed"`
	Patience   int            `json:"patience"`
	KeepBest   bool           `json:"keepBest"`
	InputShape []int          `json:"inputShape"`
	// Workers is the data-parallel training worker count (0 = all cores);
	// the trained network is bit-identical for any value.
	Workers int `json:"workers,omitempty"`
	// Prefetch is the streamed-training prefetch depth for TrainSource
	// (0 = default double buffering); the trained network is bit-identical
	// for any value.
	Prefetch int `json:"prefetch,omitempty"`
	// Checkpoint, when non-empty, is a specml/ckpt/v1 file TrainSource
	// writes after each epoch and resumes from when it already exists.
	Checkpoint string `json:"checkpoint,omitempty"`
}

// Build constructs and initializes the network.
func (t *TopologySpec) Build() (*nn.Model, error) {
	if len(t.InputShape) == 0 {
		return nil, fmt.Errorf("toolflow: topology %q has no input shape", t.Name)
	}
	m, err := nn.FromSpecs(t.Layers)
	if err != nil {
		return nil, fmt.Errorf("toolflow: topology %q: %w", t.Name, err)
	}
	if err := m.Build(rng.New(t.Seed), t.InputShape...); err != nil {
		return nil, fmt.Errorf("toolflow: topology %q: %w", t.Name, err)
	}
	return m, nil
}

// Result is one trained network with its evaluation record.
type Result struct {
	Spec      TopologySpec
	Model     *nn.Model
	History   *nn.History
	ValMAE    float64
	ValPerOut []float64
	TrainTime time.Duration
	// StoreID is the provenance-store document of the trained network
	// (empty when no store was attached).
	StoreID string
}

// Runner trains topology specs against datasets and records provenance.
type Runner struct {
	// Store, when non-nil, receives one document per trained network.
	Store *store.Store
	// DatasetID and SimulatorID are provenance parents recorded on each
	// trained network.
	DatasetID   string
	SimulatorID string
	// Verbose, when non-nil, receives progress lines.
	Verbose io.Writer
}

// Train trains one topology on train/val data.
func (r *Runner) Train(spec TopologySpec, train, val *dataset.Dataset) (*Result, error) {
	if err := train.Validate(); err != nil {
		return nil, fmt.Errorf("toolflow: training data: %w", err)
	}
	return r.train(spec, val, func(m *nn.Model, cfg nn.FitConfig) (*nn.History, error) {
		return m.Fit(train.X, train.Y, cfg)
	})
}

// TrainSource trains one topology from a streaming data source: samples are
// rendered on demand through the nn prefetch pipeline instead of being
// materialized, so corpus size is bounded by disk-free determinism, not
// host RAM. The trained network is bit-identical to Train on the
// materialized equivalent of the source.
//
// When spec.Checkpoint names an existing specml/ckpt/v1 file, training
// resumes from it (and continues writing there after every epoch); a fresh
// run simply starts writing checkpoints.
func (r *Runner) TrainSource(spec TopologySpec, train dataset.Source, val *dataset.Dataset) (*Result, error) {
	if train == nil {
		return nil, fmt.Errorf("toolflow: training source is nil")
	}
	var resume *nn.Checkpoint
	if spec.Checkpoint != "" {
		if _, err := os.Stat(spec.Checkpoint); err == nil {
			ck, err := nn.LoadCheckpointFile(spec.Checkpoint)
			if err != nil {
				return nil, fmt.Errorf("toolflow: resuming %q: %w", spec.Name, err)
			}
			resume = ck
			if r.Verbose != nil {
				fmt.Fprintf(r.Verbose, "== resuming %s from %s (epoch %d)\n", spec.Name, spec.Checkpoint, ck.Epoch)
			}
		}
	}
	return r.train(spec, val, func(m *nn.Model, cfg nn.FitConfig) (*nn.History, error) {
		cfg.Prefetch = spec.Prefetch
		cfg.CheckpointPath = spec.Checkpoint
		cfg.Resume = resume
		return m.FitSource(train, cfg)
	})
}

// train is the shared body of Train and TrainSource.
func (r *Runner) train(spec TopologySpec, val *dataset.Dataset,
	fit func(*nn.Model, nn.FitConfig) (*nn.History, error)) (*Result, error) {
	if err := val.Validate(); err != nil {
		return nil, fmt.Errorf("toolflow: validation data: %w", err)
	}
	m, err := spec.Build()
	if err != nil {
		return nil, err
	}
	loss, err := nn.LossByName(spec.Loss)
	if err != nil {
		return nil, err
	}
	opt, err := nn.OptimizerByName(spec.Optimizer, spec.LR)
	if err != nil {
		return nil, err
	}
	if r.Verbose != nil {
		fmt.Fprintf(r.Verbose, "== training %s (%d parameters)\n", spec.Name, m.NumParams())
	}
	start := time.Now()
	hist, err := fit(m, nn.FitConfig{
		Epochs:    spec.Epochs,
		BatchSize: spec.BatchSize,
		Loss:      loss,
		Optimizer: opt,
		Seed:      spec.Seed,
		ValX:      val.X,
		ValY:      val.Y,
		Patience:  spec.Patience,
		KeepBest:  spec.KeepBest,
		Verbose:   r.Verbose,
		Workers:   spec.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("toolflow: training %q: %w", spec.Name, err)
	}
	elapsed := time.Since(start)
	mae, perOut := m.EvaluateMAE(val.X, val.Y)
	res := &Result{
		Spec:      spec,
		Model:     m,
		History:   hist,
		ValMAE:    mae,
		ValPerOut: perOut,
		TrainTime: elapsed,
	}
	if r.Store != nil {
		var parents []string
		if r.DatasetID != "" {
			parents = append(parents, r.DatasetID)
		}
		if r.SimulatorID != "" {
			parents = append(parents, r.SimulatorID)
		}
		id, err := r.Store.Put("networks", map[string]string{
			"name":   spec.Name,
			"loss":   loss.Name(),
			"valMAE": fmt.Sprintf("%.6f", mae),
		}, parents, spec)
		if err != nil {
			return nil, err
		}
		res.StoreID = id
	}
	return res, nil
}

// TrainAll trains every spec on the same data and returns the results in
// input order.
func (r *Runner) TrainAll(specs []TopologySpec, train, val *dataset.Dataset) ([]*Result, error) {
	out := make([]*Result, 0, len(specs))
	for _, spec := range specs {
		res, err := r.Train(spec, train, val)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// SelectBest returns the result with the lowest validation MAE (the
// default "selectable quality criterion").
func SelectBest(results []*Result) (*Result, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("toolflow: no results to select from")
	}
	sorted := append([]*Result(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ValMAE < sorted[j].ValMAE })
	return sorted[0], nil
}

// Export writes the trained model of a result as JSON (the "tool to export
// the desired ANN for use on embedded platforms").
func Export(res *Result, w io.Writer) error {
	if res == nil || res.Model == nil {
		return fmt.Errorf("toolflow: nothing to export")
	}
	return res.Model.Save(w)
}
