package toolflow

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteResultsCSV exports training/evaluation results for spreadsheet
// analysis: one row per trained network with its validation MAE, training
// time and per-output errors. names labels the outputs (may be nil).
func WriteResultsCSV(results []*Result, names []string, w io.Writer) error {
	if len(results) == 0 {
		return fmt.Errorf("toolflow: no results to export")
	}
	cw := csv.NewWriter(w)
	width := len(results[0].ValPerOut)
	header := []string{"network", "loss", "epochs", "params", "valMAE", "trainSeconds", "bestEpoch"}
	for j := 0; j < width; j++ {
		if j < len(names) && names[j] != "" {
			header = append(header, "mae_"+names[j])
		} else {
			header = append(header, fmt.Sprintf("mae_out%d", j))
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		if len(r.ValPerOut) != width {
			return fmt.Errorf("toolflow: result %q has %d outputs, want %d", r.Spec.Name, len(r.ValPerOut), width)
		}
		best := -1
		if r.History != nil {
			best = r.History.BestEpoch
		}
		row := []string{
			r.Spec.Name,
			r.Spec.Loss,
			strconv.Itoa(r.Spec.Epochs),
			strconv.Itoa(r.Model.NumParams()),
			strconv.FormatFloat(r.ValMAE, 'g', 8, 64),
			strconv.FormatFloat(r.TrainTime.Seconds(), 'g', 6, 64),
			strconv.Itoa(best),
		}
		for _, v := range r.ValPerOut {
			row = append(row, strconv.FormatFloat(v, 'g', 8, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
