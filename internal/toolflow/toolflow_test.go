package toolflow

import (
	"bytes"
	"strings"
	"testing"

	"specml/internal/dataset"
	"specml/internal/nn"
	"specml/internal/rng"
	"specml/internal/store"
)

// tinyData builds a linear toy problem: y = softmax-ish normalized
// fractions from 2 features.
func tinyData(n int, seed uint64) *dataset.Dataset {
	src := rng.New(seed)
	d := dataset.New(n)
	for i := 0; i < n; i++ {
		a, b := src.Float64(), src.Float64()
		sum := a + b
		d.Append([]float64{a, b}, []float64{a / sum, b / sum})
	}
	return d
}

func tinySpec(epochs int) TopologySpec {
	return TopologySpec{
		Name: "tiny",
		Layers: []nn.LayerSpec{
			{Type: "dense", Out: 8},
			{Type: "activation", Activation: "tanh"},
			{Type: "dense", Out: 2},
			{Type: "softmax"},
		},
		Loss: "mae", Optimizer: "adam", LR: 0.01,
		Epochs: epochs, BatchSize: 16, Seed: 1,
		InputShape: []int{2},
	}
}

func TestSpecBuildValidation(t *testing.T) {
	s := tinySpec(1)
	s.InputShape = nil
	if _, err := s.Build(); err == nil {
		t.Fatal("missing input shape must error")
	}
	s2 := tinySpec(1)
	s2.Layers[0].Type = "bogus"
	if _, err := s2.Build(); err == nil {
		t.Fatal("bogus layer must error")
	}
	s3 := tinySpec(1)
	if m, err := s3.Build(); err != nil || m.NumParams() == 0 {
		t.Fatalf("build failed: %v", err)
	}
}

func TestRunnerTrainAndSelect(t *testing.T) {
	train := tinyData(120, 1)
	val := tinyData(40, 2)
	r := &Runner{}
	good := tinySpec(40)
	bad := tinySpec(1)
	bad.Name = "undertrained"
	results, err := r.TrainAll([]TopologySpec{bad, good}, train, val)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	best, err := SelectBest(results)
	if err != nil {
		t.Fatal(err)
	}
	if best.Spec.Name != "tiny" {
		t.Fatalf("best = %q (MAE %v vs %v)", best.Spec.Name, results[0].ValMAE, results[1].ValMAE)
	}
	if best.ValMAE > 0.05 {
		t.Fatalf("trained network too weak: %v", best.ValMAE)
	}
	if len(best.ValPerOut) != 2 {
		t.Fatalf("per-output record missing: %v", best.ValPerOut)
	}
	if _, err := SelectBest(nil); err == nil {
		t.Fatal("empty selection must error")
	}
}

func TestRunnerRecordsProvenance(t *testing.T) {
	st := store.New()
	measID, _ := st.Put("measurements", nil, nil, "raw")
	simID, _ := st.Put("simulators", nil, []string{measID}, "sim")
	dataID, _ := st.Put("datasets", nil, []string{simID}, "data")
	r := &Runner{Store: st, DatasetID: dataID, SimulatorID: simID}
	res, err := r.Train(tinySpec(3), tinyData(50, 3), tinyData(20, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.StoreID == "" {
		t.Fatal("no store document recorded")
	}
	lin, err := st.Lineage(res.StoreID)
	if err != nil {
		t.Fatal(err)
	}
	// the lineage must reach back to the raw measurements
	found := false
	for _, d := range lin {
		if d.ID == measID {
			found = true
		}
	}
	if !found {
		t.Fatalf("network lineage does not reach measurements: %v", lin)
	}
}

func TestRunnerValidatesData(t *testing.T) {
	r := &Runner{}
	bad := tinyData(10, 5)
	bad.X[0] = []float64{1}
	if _, err := r.Train(tinySpec(1), bad, tinyData(5, 6)); err == nil {
		t.Fatal("ragged training data must error")
	}
	if _, err := r.Train(tinySpec(1), tinyData(10, 5), bad); err == nil {
		t.Fatal("ragged validation data must error")
	}
}

func TestExport(t *testing.T) {
	r := &Runner{}
	res, err := r.Train(tinySpec(2), tinyData(30, 7), tinyData(10, 8))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Export(res, &buf); err != nil {
		t.Fatal(err)
	}
	m2, err := nn.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.4, 0.6}
	a := res.Model.Predict(x)
	b := m2.Predict(x)
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatal("exported model differs")
	}
	if err := Export(nil, &buf); err == nil {
		t.Fatal("nil export must error")
	}
}

func TestVerboseOutput(t *testing.T) {
	var buf bytes.Buffer
	r := &Runner{Verbose: &buf}
	if _, err := r.Train(tinySpec(2), tinyData(30, 9), tinyData(10, 10)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "training tiny") || !strings.Contains(out, "epoch") {
		t.Fatalf("verbose output missing: %q", out)
	}
}

func TestMSTable1LayersShapeAndVariants(t *testing.T) {
	// canonical variant matches the Table-1 parameter budget
	spec, err := MSTable1Spec(199, 8, "selu", "softmax", "softmax", 1, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := 525 + 12525 + 9400 + 5640 + (8*30 + 8)
	if got := m.NumParams(); got != want {
		t.Fatalf("params = %d, want %d", got, want)
	}
	// linear heads simply omit the softmax layers
	specLin, err := MSTable1Spec(199, 8, "relu", "linear", "linear", 1, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	mLin, err := specLin.Build()
	if err != nil {
		t.Fatal(err)
	}
	if mLin.NumParams() != want {
		t.Fatal("activation choice must not change the parameter count")
	}
	if len(mLin.Layers()) >= len(m.Layers()) {
		t.Fatal("linear variant should have fewer layers (no softmax)")
	}
	// invalid names
	if _, err := MSTable1Layers(199, 8, "gelu", "softmax", "softmax"); err == nil {
		t.Fatal("invalid hidden activation must error")
	}
	if _, err := MSTable1Layers(199, 8, "relu", "sigmoid", "softmax"); err == nil {
		t.Fatal("invalid conv6 head must error")
	}
	if _, err := MSTable1Layers(199, 8, "relu", "softmax", "gelu"); err == nil {
		t.Fatal("invalid output head must error")
	}
}

func TestActivationStudySpecsCount(t *testing.T) {
	specs, err := ActivationStudySpecs(199, 8, 1, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 8 {
		t.Fatalf("%d variants, want 8 (paper)", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Fatalf("duplicate variant %q", s.Name)
		}
		names[s.Name] = true
	}
	if !names["table1-selu-sftm-sftm"] || !names["table1-relu-lin-lin"] {
		t.Fatalf("expected canonical names, got %v", names)
	}
}

func TestNMRSpecsMatchPaperParameterCounts(t *testing.T) {
	cnn := NMRCNNSpec(1700, 4, 1, 32, 1)
	m, err := cnn.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumParams() != 10532 {
		t.Fatalf("NMR CNN params = %d, want 10532", m.NumParams())
	}
	lstm := NMRLSTMSpec(5, 1700, 4, 1, 32, 1)
	m2, err := lstm.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumParams() != 221956 {
		t.Fatalf("NMR LSTM params = %d, want 221956", m2.NumParams())
	}
}
