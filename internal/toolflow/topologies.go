package toolflow

import (
	"fmt"

	"specml/internal/nn"
)

// MSTable1Layers returns the layer stack of the paper's Table 1 with
// configurable activations: hidden is the activation of the first three
// convolutional layers ("relu" or "selu"), conv6 the activation of the
// final convolutional layer and output the activation of the dense output
// layer ("softmax" or "linear" each). inputLen is the spectrum length and
// outputs the number of substances.
func MSTable1Layers(inputLen, outputs int, hidden, conv6, output string) ([]nn.LayerSpec, error) {
	hiddenAct := func() (nn.LayerSpec, error) {
		switch hidden {
		case "relu", "selu":
			return nn.LayerSpec{Type: "activation", Activation: hidden}, nil
		default:
			return nn.LayerSpec{}, fmt.Errorf("toolflow: hidden activation must be relu or selu, got %q", hidden)
		}
	}
	headAct := func(name string) (nn.LayerSpec, bool, error) {
		switch name {
		case "softmax":
			return nn.LayerSpec{Type: "softmax"}, true, nil
		case "linear", "":
			return nn.LayerSpec{}, false, nil
		default:
			return nn.LayerSpec{}, false, fmt.Errorf("toolflow: head activation must be softmax or linear, got %q", name)
		}
	}
	init := ""
	if hidden == "selu" {
		init = "lecun"
	}
	var layers []nn.LayerSpec
	layers = append(layers, nn.LayerSpec{Type: "reshape", TargetShape: []int{inputLen, 1}})
	convs := []nn.LayerSpec{
		{Type: "conv1d", Filters: 25, Kernel: 20, Stride: 1, Init: init},
		{Type: "conv1d", Filters: 25, Kernel: 20, Stride: 3, Init: init},
		{Type: "conv1d", Filters: 25, Kernel: 15, Stride: 2, Init: init},
	}
	for _, c := range convs {
		layers = append(layers, c)
		act, err := hiddenAct()
		if err != nil {
			return nil, err
		}
		layers = append(layers, act)
	}
	// layer 6: final convolution with its own head activation
	layers = append(layers, nn.LayerSpec{Type: "conv1d", Filters: 15, Kernel: 15, Stride: 4, Init: init})
	if act, isSoftmax, err := headAct(conv6); err != nil {
		return nil, err
	} else if isSoftmax {
		layers = append(layers, act)
	}
	layers = append(layers, nn.LayerSpec{Type: "flatten"})
	layers = append(layers, nn.LayerSpec{Type: "dense", Out: outputs, Init: init})
	if act, isSoftmax, err := headAct(output); err != nil {
		return nil, err
	} else if isSoftmax {
		layers = append(layers, act)
	}
	return layers, nil
}

// MSTable1Spec returns the complete training spec of a Table-1 variant.
// The canonical network of the paper uses SELU hidden activations and
// softmax on both the final convolutional layer and the output layer.
func MSTable1Spec(inputLen, outputs int, hidden, conv6, output string,
	epochs, batch int, seed uint64) (TopologySpec, error) {
	layers, err := MSTable1Layers(inputLen, outputs, hidden, conv6, output)
	if err != nil {
		return TopologySpec{}, err
	}
	name := fmt.Sprintf("table1-%s-%s-%s", hidden, headName(conv6), headName(output))
	return TopologySpec{
		Name:       name,
		Layers:     layers,
		Loss:       "mae",
		Optimizer:  "adam",
		LR:         0.001,
		Epochs:     epochs,
		BatchSize:  batch,
		Seed:       seed,
		KeepBest:   true,
		InputShape: []int{inputLen},
	}, nil
}

func headName(a string) string {
	if a == "softmax" {
		return "sftm"
	}
	return "lin"
}

// ActivationStudySpecs returns the paper's 8 activation-study variants
// (Fig. 5): {relu, selu} x {linear, softmax} for layer 6 x {linear,
// softmax} for layer 8.
func ActivationStudySpecs(inputLen, outputs, epochs, batch int, seed uint64) ([]TopologySpec, error) {
	var specs []TopologySpec
	for _, hidden := range []string{"relu", "selu"} {
		for _, conv6 := range []string{"linear", "softmax"} {
			for _, out := range []string{"linear", "softmax"} {
				s, err := MSTable1Spec(inputLen, outputs, hidden, conv6, out, epochs, batch, seed)
				if err != nil {
					return nil, err
				}
				specs = append(specs, s)
			}
		}
	}
	return specs, nil
}

// NMRCNNSpec returns the paper's NMR convolutional model: a single locally
// connected 1-D layer (four filters, kernel and stride 9) feeding a dense
// layer with four concentration outputs — 10 532 trainable parameters on
// 1700-point spectra.
func NMRCNNSpec(inputLen, outputs, epochs, batch int, seed uint64) TopologySpec {
	return TopologySpec{
		Name: "nmr-cnn",
		Layers: []nn.LayerSpec{
			{Type: "reshape", TargetShape: []int{inputLen, 1}},
			{Type: "locallyconnected1d", Filters: 4, Kernel: 9, Stride: 9},
			{Type: "flatten"},
			{Type: "dense", Out: outputs},
		},
		Loss:       "mse",
		Optimizer:  "adam",
		LR:         0.001,
		Epochs:     epochs,
		BatchSize:  batch,
		Seed:       seed,
		KeepBest:   true,
		InputShape: []int{inputLen},
	}
}

// NMRHybridSpec returns the architecture the paper proposes as future
// work: "combining a locally connected convolutional layer as feature
// selector and input for an LSTM layer". The locally connected layer (the
// NMR CNN's feature extractor) runs per timestep with shared weights; its
// compressed features feed an LSTM(32) and a dense head.
func NMRHybridSpec(steps, inputLen, outputs, epochs, batch int, seed uint64) TopologySpec {
	return TopologySpec{
		Name: "nmr-hybrid-cnn-lstm",
		Layers: []nn.LayerSpec{
			{
				Type:        "timedistributed",
				TargetShape: []int{inputLen, 1},
				Inner:       &nn.LayerSpec{Type: "locallyconnected1d", Filters: 4, Kernel: 9, Stride: 9},
			},
			{Type: "lstm", Units: 32},
			{Type: "dense", Out: outputs},
		},
		Loss:       "mse",
		Optimizer:  "adam",
		LR:         0.001,
		Epochs:     epochs,
		BatchSize:  batch,
		Seed:       seed,
		KeepBest:   true,
		InputShape: []int{steps, inputLen},
	}
}

// NMRLSTMSpec returns the paper's time-series model: an LSTM with 32 units
// over windows of `steps` spectra plus a dense output layer — 221 956
// trainable parameters for 1700-point spectra.
func NMRLSTMSpec(steps, inputLen, outputs, epochs, batch int, seed uint64) TopologySpec {
	return TopologySpec{
		Name: "nmr-lstm",
		Layers: []nn.LayerSpec{
			{Type: "lstm", Units: 32},
			{Type: "dense", Out: outputs},
		},
		Loss:       "mse",
		Optimizer:  "adam",
		LR:         0.001,
		Epochs:     epochs,
		BatchSize:  batch,
		Seed:       seed,
		KeepBest:   true,
		InputShape: []int{steps, inputLen},
	}
}
