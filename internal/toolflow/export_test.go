package toolflow

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteResultsCSV(t *testing.T) {
	r := &Runner{}
	res1, err := r.Train(tinySpec(2), tinyData(30, 1), tinyData(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	spec2 := tinySpec(3)
	spec2.Name = "tiny-b"
	res2, err := r.Train(spec2, tinyData(30, 3), tinyData(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResultsCSV([]*Result{res1, res2}, []string{"A", "B"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines, want 3", len(lines))
	}
	if !strings.Contains(lines[0], "mae_A") || !strings.Contains(lines[0], "valMAE") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "tiny,") || !strings.HasPrefix(lines[2], "tiny-b,") {
		t.Fatalf("rows wrong: %q %q", lines[1], lines[2])
	}
}

func TestWriteResultsCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteResultsCSV(nil, nil, &buf); err == nil {
		t.Fatal("empty results must error")
	}
}

func TestNMRHybridSpecBuilds(t *testing.T) {
	spec := NMRHybridSpec(5, 1700, 4, 1, 32, 1)
	m, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	// locally connected feature selector: 188*4*10 = 7520 + 752 bias
	// LSTM over 752 features: 4*32*(752+32+1) = 100480; dense 32*4+4
	want := 188*4*(9+1) + 4*32*(752+32+1) + 32*4 + 4
	if got := m.NumParams(); got != want {
		t.Fatalf("hybrid params = %d, want %d", got, want)
	}
	out := m.Forward(make([]float64, 5*1700))
	if len(out) != 4 {
		t.Fatalf("hybrid output len %d", len(out))
	}
}
