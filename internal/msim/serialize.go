package msim

import (
	"encoding/json"
	"fmt"
	"io"
)

// instrumentFormat versions the instrument-model JSON layout.
const instrumentFormat = "specml/instrument/v1"

type savedInstrument struct {
	Format string           `json:"format"`
	Model  *InstrumentModel `json:"model"`
}

// Save writes the instrument model as JSON, so characterization results
// can be stored, diffed between sessions and reloaded without re-measuring
// references.
func (m *InstrumentModel) Save(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(&savedInstrument{Format: instrumentFormat, Model: m})
}

// LoadInstrumentModel reads a model saved with Save.
func LoadInstrumentModel(r io.Reader) (*InstrumentModel, error) {
	var s savedInstrument
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("msim: decoding instrument model: %w", err)
	}
	if s.Format != instrumentFormat {
		return nil, fmt.Errorf("msim: unsupported instrument format %q", s.Format)
	}
	if s.Model == nil {
		return nil, fmt.Errorf("msim: instrument file has no model")
	}
	if err := s.Model.Validate(); err != nil {
		return nil, fmt.Errorf("msim: loaded model invalid: %w", err)
	}
	return s.Model, nil
}
