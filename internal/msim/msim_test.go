package msim

import (
	"math"
	"testing"
	"testing/quick"

	"specml/internal/rng"
	"specml/internal/spectrum"
)

func TestLibraryIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Library {
		if c.Name == "" || len(c.Fragments) == 0 {
			t.Fatalf("compound %+v incomplete", c)
		}
		if seen[c.Name] {
			t.Fatalf("duplicate compound %s", c.Name)
		}
		seen[c.Name] = true
		for _, f := range c.Fragments {
			if f.Position <= 0 || f.Intensity <= 0 {
				t.Fatalf("%s has invalid fragment %+v", c.Name, f)
			}
		}
	}
}

func TestCompoundLinesNormalized(t *testing.T) {
	for _, c := range Library {
		ls := c.Lines()
		if got := ls.TotalIntensity(); math.Abs(got-1) > 1e-9 {
			t.Fatalf("%s lines total %v, want 1", c.Name, got)
		}
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("N2")
	if err != nil || c.Name != "N2" {
		t.Fatalf("ByName(N2) = %v, %v", c, err)
	}
	if _, err := ByName("Unobtainium"); err == nil {
		t.Fatal("unknown compound must error")
	}
	if _, err := Compounds("H2", "O2"); err != nil {
		t.Fatal(err)
	}
	if _, err := Compounds("H2", "Nope"); err == nil {
		t.Fatal("unknown compound in list must error")
	}
}

func TestDefaultTaskResolves(t *testing.T) {
	cs, err := Compounds(DefaultTask...)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 8 {
		t.Fatalf("default task has %d compounds, want 8", len(cs))
	}
}

func taskSim(t *testing.T) *LineSimulator {
	t.Helper()
	cs, err := Compounds(DefaultTask...)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewLineSimulator(cs)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestLineSimulatorMixture(t *testing.T) {
	sim := taskSim(t)
	frac := make([]float64, sim.NumCompounds())
	frac[0] = 1 // pure H2
	ls, err := sim.Mixture(frac)
	if err != nil {
		t.Fatal(err)
	}
	if got := ls.TotalIntensity(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("pure mixture total intensity = %v", got)
	}
	// mixture errors
	if _, err := sim.Mixture([]float64{1}); err == nil {
		t.Fatal("wrong fraction count must error")
	}
	if _, err := sim.Mixture([]float64{-1, 0, 0, 0, 0, 0, 0, 2}); err == nil {
		t.Fatal("negative fraction must error")
	}
}

// Property: any simplex mixture has total ideal intensity 1 (mass balance
// of the normalized patterns).
func TestMixtureIntensityProperty(t *testing.T) {
	sim := taskSim(t)
	src := rng.New(3)
	f := func(alphaRaw uint8) bool {
		alpha := 0.2 + float64(alphaRaw)/64
		frac := sim.RandomFractions(src, alpha)
		ls, err := sim.Mixture(frac)
		if err != nil {
			return false
		}
		return math.Abs(ls.TotalIntensity()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInstrumentModelValidate(t *testing.T) {
	m := DefaultTrueModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := m.Clone()
	bad.PeakFWHM0 = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero FWHM must be invalid")
	}
	bad2 := m.Clone()
	bad2.PeakEta = 2
	if err := bad2.Validate(); err == nil {
		t.Fatal("eta > 1 must be invalid")
	}
	bad3 := m.Clone()
	bad3.NoiseFloor = -1
	if err := bad3.Validate(); err == nil {
		t.Fatal("negative noise must be invalid")
	}
}

func TestMeasureDeterministicWithoutSource(t *testing.T) {
	sim := taskSim(t)
	frac := make([]float64, sim.NumCompounds())
	frac[3] = 1 // N2
	ls, _ := sim.Mixture(frac)
	m := DefaultTrueModel()
	axis := DefaultAxis()
	a, err := m.Measure(ls, axis, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.Measure(ls, axis, nil)
	for i := range a.Intensities {
		if a.Intensities[i] != b.Intensities[i] {
			t.Fatal("noise-free measurement must be deterministic")
		}
	}
}

func TestMeasureContainsIgnitionArtifact(t *testing.T) {
	// Fig. 4's artifact: a peak with no line-spectrum counterpart.
	sim := taskSim(t)
	frac := make([]float64, sim.NumCompounds())
	frac[3] = 1 // pure N2: no ideal line anywhere near m/z 4
	ls, _ := sim.Mixture(frac)
	m := DefaultTrueModel()
	axis := DefaultAxis()
	s, err := m.Measure(ls, axis, nil)
	if err != nil {
		t.Fatal(err)
	}
	at4 := s.ValueAt(4 + m.MassOffset)
	at10 := s.ValueAt(10)
	if at4 < 10*at10 || at4 <= 0 {
		t.Fatalf("no ignition artifact at m/z 4: %v vs background %v", at4, at10)
	}
	// disable the artifact: the peak disappears
	m2 := m.Clone()
	m2.IgnitionArea = 0
	s2, _ := m2.Measure(ls, axis, nil)
	if s2.ValueAt(4+m.MassOffset) > at4/10 {
		t.Fatal("artifact persists with IgnitionArea=0")
	}
}

func TestMeasureAttenuationShape(t *testing.T) {
	// The same line intensity at low vs high m/z yields a smaller measured
	// area at high m/z under the default fading sensitivity.
	m := DefaultTrueModel()
	m.NoiseFloor, m.NoiseScale = 0, 0
	m.Baseline = nil
	m.IgnitionArea = 0
	axis := DefaultAxis()
	low := &spectrum.LineSpectrum{Lines: []spectrum.Line{{Position: 20, Intensity: 1}}}
	high := &spectrum.LineSpectrum{Lines: []spectrum.Line{{Position: 80, Intensity: 1}}}
	sl, _ := m.Measure(low, axis, nil)
	sh, _ := m.Measure(high, axis, nil)
	al := sl.IntegrateBetween(15, 25)
	ah := sh.IntegrateBetween(75, 85)
	if ah >= al {
		t.Fatalf("high-m/z area %v not attenuated vs low-m/z %v", ah, al)
	}
}

func TestVirtualInstrumentHumidityShowsUp(t *testing.T) {
	// A dry N2 sample measured on the prototype still shows an H2O signal.
	sim := taskSim(t)
	frac := make([]float64, sim.NumCompounds())
	frac[3] = 1
	ls, _ := sim.Mixture(frac)
	vi := NewVirtualInstrument(nil, 7)
	axis := DefaultAxis()
	s, err := vi.Measure(ls, axis)
	if err != nil {
		t.Fatal(err)
	}
	at18 := s.IntegrateBetween(17.5, 18.7)
	at24 := s.IntegrateBetween(23.5, 24.7) // empty region baseline
	if at18 < 2*math.Abs(at24) {
		t.Fatalf("no humidity signal at m/z 18: %v vs empty %v", at18, at24)
	}
}

func TestVirtualInstrumentSessionsDiffer(t *testing.T) {
	vi := NewVirtualInstrument(nil, 9)
	before := *vi.session
	vi.NewSession()
	after := *vi.session
	if before.PeakFWHM0 == after.PeakFWHM0 && before.MassOffset == after.MassOffset {
		t.Fatal("NewSession did not perturb the configuration")
	}
	// truth must be untouched
	if vi.Truth().PeakFWHM0 != DefaultTrueModel().PeakFWHM0 {
		t.Fatal("NewSession corrupted the ground truth")
	}
}

func TestMixer(t *testing.T) {
	mix := NewMixer(0.005, 3)
	actual, err := mix.Mix([]float64{0.5, 0.3, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, v := range actual {
		if math.Abs(v-[]float64{0.5, 0.3, 0.2}[i]) > 0.05 {
			t.Fatalf("mixer deviates too much: %v", actual)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("mixer output not normalized: %v", sum)
	}
	if _, err := mix.Mix([]float64{-1, 1}); err == nil {
		t.Fatal("negative setpoint must error")
	}
	if _, err := mix.Mix([]float64{0, 0}); err == nil {
		t.Fatal("all-zero setpoints must error")
	}
}

func TestPreprocessNormalizesAndClips(t *testing.T) {
	s := spectrum.New(spectrum.MustAxis(0, 1, 4))
	s.Intensities = []float64{2, -1, 3, 0}
	x := Preprocess(s)
	if x[1] != 0 {
		t.Fatal("negative intensity not clipped")
	}
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("preprocessed sum = %v", sum)
	}
	// all-zero spectrum stays zero without NaN
	z := spectrum.New(spectrum.MustAxis(0, 1, 3))
	for _, v := range Preprocess(z) {
		if math.IsNaN(v) || v != 0 {
			t.Fatal("zero spectrum preprocessing broken")
		}
	}
}

func TestStandardMixtures(t *testing.T) {
	ms := StandardMixtures(8)
	if len(ms) != 14 {
		t.Fatalf("want 14 mixtures (paper), got %d", len(ms))
	}
	for i, m := range ms {
		if len(m) != 8 {
			t.Fatalf("mixture %d has %d entries", i, len(m))
		}
		sum := 0.0
		for _, v := range m {
			if v < 0 {
				t.Fatalf("mixture %d has negative fraction", i)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("mixture %d sums to %v", i, sum)
		}
	}
	// first 8 are the pure components
	for i := 0; i < 8; i++ {
		if ms[i][i] != 1 {
			t.Fatalf("mixture %d is not pure component %d: %v", i, i, ms[i])
		}
	}
}

func TestGenerateTraining(t *testing.T) {
	sim := taskSim(t)
	model := DefaultTrueModel()
	d, err := GenerateTraining(sim, model, DefaultAxis(), 20, 1, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 20 {
		t.Fatalf("dataset len = %d", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.X[0]) != DefaultAxis().N {
		t.Fatalf("feature width %d, want %d", len(d.X[0]), DefaultAxis().N)
	}
	for i := range d.Y {
		sum := 0.0
		for _, v := range d.Y[i] {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("label %d not on simplex: %v", i, sum)
		}
	}
	if _, err := GenerateTraining(sim, model, DefaultAxis(), 0, 1, 5, 1); err == nil {
		t.Fatal("zero samples must error")
	}
	// determinism
	d2, _ := GenerateTraining(sim, model, DefaultAxis(), 20, 1, 5, 1)
	for i := range d.X[0] {
		if d.X[0][i] != d2.X[0][i] {
			t.Fatal("generation not deterministic for equal seeds")
		}
	}
}

// TestGenerateTrainingWorkerInvariance is the generation half of the
// determinism guarantee: the corpus must be bit-identical for any worker
// count, because every sample draws from its own index-keyed child stream.
func TestGenerateTrainingWorkerInvariance(t *testing.T) {
	sim := taskSim(t)
	model := DefaultTrueModel()
	ref, err := GenerateTraining(sim, model, DefaultAxis(), 30, 1, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 0} {
		d, err := GenerateTraining(sim, model, DefaultAxis(), 30, 1, 42, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.X {
			for j := range ref.X[i] {
				if d.X[i][j] != ref.X[i][j] {
					t.Fatalf("workers=%d: X[%d][%d] = %x, want %x (bitwise)", workers, i, j, d.X[i][j], ref.X[i][j])
				}
			}
			for j := range ref.Y[i] {
				if d.Y[i][j] != ref.Y[i][j] {
					t.Fatalf("workers=%d: Y[%d][%d] differs bitwise", workers, i, j)
				}
			}
		}
	}
}

func TestCollectReferencesAndEvaluationData(t *testing.T) {
	sim := taskSim(t)
	vi := NewVirtualInstrument(nil, 11)
	axis := DefaultAxis()
	refs, err := CollectReferences(vi, sim, axis, StandardMixtures(8)[:3], 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 3 || len(refs[0].Spectra) != 4 {
		t.Fatalf("reference shape wrong: %d series", len(refs))
	}
	if _, err := CollectReferences(vi, sim, axis, StandardMixtures(8)[:1], 0); err == nil {
		t.Fatal("zero samples per mixture must error")
	}

	mixer := NewMixer(0.005, 1)
	eval, err := MeasureEvaluation(vi, mixer, sim, axis, StandardMixtures(8)[:2], 3)
	if err != nil {
		t.Fatal(err)
	}
	if eval.Len() != 6 {
		t.Fatalf("eval len = %d, want 6", eval.Len())
	}
	if err := eval.Validate(); err != nil {
		t.Fatal(err)
	}
}

// The central Tool-2 integration test: with plenty of reference data the
// characterizer recovers the true instrument parameters well.
func TestCharacterizerRecoversTrueModel(t *testing.T) {
	sim := taskSim(t)
	truth := DefaultTrueModel()
	vi := NewVirtualInstrument(truth, 21)
	vi.HumidityMean = 0 // clean references isolate the estimation quality
	vi.HumidityJitter = 0
	vi.ScanMassJitter = 0
	vi.ScanGainJitter = 0
	axis := DefaultAxis()
	refs, err := CollectReferences(vi, sim, axis, StandardMixtures(8), 60)
	if err != nil {
		t.Fatal(err)
	}
	c := &Characterizer{Task: sim.Compounds(), IgnitionMZ: truth.IgnitionMZ}
	est, err := c.Estimate(refs)
	if err != nil {
		t.Fatal(err)
	}
	// peak width at m/z 50
	wTrue := truth.PeakFWHM0 + 50*truth.PeakFWHMSlope
	wEst := est.PeakFWHM0 + 50*est.PeakFWHMSlope
	if math.Abs(wEst-wTrue)/wTrue > 0.15 {
		t.Fatalf("width at 50: est %v vs true %v", wEst, wTrue)
	}
	// attenuation at m/z 20 and 80
	for _, mz := range []float64{20, 80} {
		aTrue := truth.attenuationAt(mz)
		aEst := est.attenuationAt(mz)
		if math.Abs(aEst-aTrue)/aTrue > 0.2 {
			t.Fatalf("attenuation at %v: est %v vs true %v", mz, aEst, aTrue)
		}
	}
	// mass offset within half a step
	if math.Abs(est.MassOffset-truth.MassOffset) > 0.15 {
		t.Fatalf("mass offset: est %v vs true %v", est.MassOffset, truth.MassOffset)
	}
	// ignition artifact found
	if est.IgnitionMZ != truth.IgnitionMZ || est.IgnitionArea <= 0 {
		t.Fatalf("ignition artifact not recovered: %+v", est)
	}
	if math.Abs(est.IgnitionArea-truth.IgnitionArea)/truth.IgnitionArea > 0.4 {
		t.Fatalf("ignition area: est %v vs true %v", est.IgnitionArea, truth.IgnitionArea)
	}
	// noise floor order of magnitude
	if est.NoiseFloor <= 0 {
		t.Fatalf("noise floor not estimated: %v", est.NoiseFloor)
	}
}

// Fewer reference samples must give a (weakly) worse width estimate on
// average — the mechanism behind Fig. 6.
func TestCharacterizerQualityImprovesWithSamples(t *testing.T) {
	sim := taskSim(t)
	truth := DefaultTrueModel()
	axis := DefaultAxis()
	widthErr := func(n int, seed uint64) float64 {
		vi := NewVirtualInstrument(truth, seed)
		vi.HumidityMean, vi.HumidityJitter = 0, 0
		vi.ScanMassJitter, vi.ScanGainJitter = 0, 0
		vi.ScanMassJitter, vi.ScanGainJitter = 0, 0
		refs, err := CollectReferences(vi, sim, axis, StandardMixtures(8), n)
		if err != nil {
			t.Fatal(err)
		}
		c := &Characterizer{Task: sim.Compounds(), IgnitionMZ: truth.IgnitionMZ}
		est, err := c.Estimate(refs)
		if err != nil {
			t.Fatal(err)
		}
		errSum := 0.0
		for _, mz := range []float64{10, 30, 50, 70, 90} {
			tw := truth.PeakFWHM0 + mz*truth.PeakFWHMSlope
			ew := est.PeakFWHM0 + mz*est.PeakFWHMSlope
			errSum += math.Abs(ew-tw) / tw
		}
		return errSum / 5
	}
	small, large := 0.0, 0.0
	for seed := uint64(0); seed < 3; seed++ {
		small += widthErr(2, 100+seed)
		large += widthErr(40, 200+seed)
	}
	if large > small {
		t.Fatalf("more samples gave worse width estimates: n=40 err %v vs n=2 err %v", large/3, small/3)
	}
}

func TestCharacterizerInputValidation(t *testing.T) {
	sim := taskSim(t)
	c := &Characterizer{Task: sim.Compounds()}
	if _, err := c.Estimate(nil); err == nil {
		t.Fatal("no references must error")
	}
	if _, err := (&Characterizer{}).Estimate([]ReferenceSeries{{}}); err == nil {
		t.Fatal("empty task must error")
	}
	if _, err := c.Estimate([]ReferenceSeries{{Fractions: []float64{1}, Spectra: nil}}); err == nil {
		t.Fatal("series without spectra must error")
	}
}

func TestMedianAndClamp(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median wrong")
	}
	if median(nil) != 0 {
		t.Fatal("empty median wrong")
	}
	if clamp01(-1) != 0 || clamp01(2) != 1 || clamp01(0.5) != 0.5 {
		t.Fatal("clamp01 wrong")
	}
}
