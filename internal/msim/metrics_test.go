package msim

import (
	"testing"

	"specml/internal/obs"
)

// TestGenerateTrainingReportsMetrics checks the throughput counter and the
// duration histogram land in the registry once per generation call, and
// that instrumented generation yields the same corpus as uninstrumented.
func TestGenerateTrainingReportsMetrics(t *testing.T) {
	sim := taskSim(t)
	model := DefaultTrueModel()
	axis := DefaultAxis()
	reg := obs.NewRegistry()

	plain, err := GenerateTrainingWith(sim, model, axis, 6, 1, 11, 2, TrainingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := GenerateTrainingWith(sim, model, axis, 6, 1, 11, 2, TrainingOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.X {
		for j := range plain.X[i] {
			if plain.X[i][j] != inst.X[i][j] {
				t.Fatalf("instrumented corpus diverges at sample %d index %d", i, j)
			}
		}
	}

	c := reg.Counter("specml_corpus_samples_total", "", obs.L("source", "msim"))
	if c.Value() != 6 {
		t.Fatalf("samples counter = %d, want 6", c.Value())
	}
	h := reg.Histogram("specml_corpus_generate_seconds", "", corpusGenBuckets, obs.L("source", "msim"))
	if h.Count() != 1 {
		t.Fatalf("duration histogram count = %d, want 1", h.Count())
	}
}
