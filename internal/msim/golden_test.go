package msim

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestInstrumentSaveGolden pins the exact bytes of the instrument-model
// format: characterization results are stored and diffed between sessions,
// so the layout must never drift silently.
func TestInstrumentSaveGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := DefaultTrueModel().Save(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "instrument_v1.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/msim -run Golden -update-golden)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("instrument format drifted from golden bytes.\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}
}

// TestInstrumentGoldenRoundTrip asserts Load+Save is byte-stable on the
// committed artifact and the loaded model measures identically.
func TestInstrumentGoldenRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "instrument_v1.golden.json"))
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	m, err := LoadInstrumentModel(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("LoadInstrumentModel+Save is not byte-stable on the golden model")
	}
	// the loaded model must measure exactly like the reference
	ref := DefaultTrueModel()
	comps, err := Compounds(DefaultTask...)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewLineSimulator(comps)
	if err != nil {
		t.Fatal(err)
	}
	frac := make([]float64, sim.NumCompounds())
	frac[0] = 1
	ls, err := sim.Mixture(frac)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ref.Measure(ls, DefaultAxis(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Measure(ls, DefaultAxis(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Intensities {
		if a.Intensities[i] != b.Intensities[i] {
			t.Fatal("golden instrument model measures differently after round trip")
		}
	}
}
