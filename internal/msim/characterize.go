package msim

import (
	"fmt"
	"math"
	"sort"

	"specml/internal/fit"
	"specml/internal/spectrum"
)

// ReferenceSeries is one reference measurement series: a mixture of known
// composition measured repeatedly on the real (virtual) instrument. These
// are the inputs of Tool 2.
type ReferenceSeries struct {
	// Fractions are the known concentration setpoints in task order.
	Fractions []float64
	// Spectra are the repeated measurements of this mixture.
	Spectra []*spectrum.Spectrum
}

// Characterizer is Tool 2: it estimates an InstrumentModel — peak shape,
// mass-dependent attenuation, baseline drift and noise model — from a
// limited number of reference measurement series. The number of series and
// samples per series directly controls estimate quality, which is the
// mechanism behind the paper's sample-size study (Fig. 6).
type Characterizer struct {
	// Task is the ordered compound list matching ReferenceSeries.Fractions.
	Task []*Compound
	// IgnitionMZ is the known position of the ignition-gas artifact.
	IgnitionMZ float64
	// AttenuationDegree and BaselineDegree are the polynomial orders of the
	// fitted attenuation and baseline curves (defaults 1 and 1).
	AttenuationDegree int
	BaselineDegree    int
}

// minLineSeparation is the minimum distance (in m/z) to the nearest other
// line for a line to be used as an isolated calibration peak.
const minLineSeparation = 2.2

// Estimate runs the characterization and returns the fitted model.
func (c *Characterizer) Estimate(refs []ReferenceSeries) (*InstrumentModel, error) {
	if len(c.Task) == 0 {
		return nil, fmt.Errorf("msim: characterizer needs a task")
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("msim: characterizer needs reference series")
	}
	attDeg := c.AttenuationDegree
	if attDeg <= 0 {
		attDeg = 1
	}
	baseDeg := c.BaselineDegree
	if baseDeg <= 0 {
		baseDeg = 1
	}
	sim, err := NewLineSimulator(c.Task)
	if err != nil {
		return nil, err
	}

	type peakObs struct {
		mz, centerErr, fwhm, eta float64
		areaRatio                float64
	}
	var (
		observations []peakObs
		baseXs       []float64
		baseYs       []float64
		noiseMeans   []float64
		noiseStds    []float64
		ignAreas     []float64
	)

	for ri, ref := range refs {
		if len(ref.Spectra) == 0 {
			return nil, fmt.Errorf("msim: reference series %d has no spectra", ri)
		}
		if len(ref.Fractions) != len(c.Task) {
			return nil, fmt.Errorf("msim: reference series %d has %d fractions for %d compounds",
				ri, len(ref.Fractions), len(c.Task))
		}
		axis := ref.Spectra[0].Axis
		mean := meanSpectrum(ref.Spectra)

		// --- noise model observations: per-point std across repeats ---
		if len(ref.Spectra) >= 2 {
			for i := 0; i < axis.N; i += 3 {
				v := 0.0
				for _, s := range ref.Spectra {
					d := s.Intensities[i] - mean.Intensities[i]
					v += d * d
				}
				noiseMeans = append(noiseMeans, math.Abs(mean.Intensities[i]))
				noiseStds = append(noiseStds, math.Sqrt(v/float64(len(ref.Spectra)-1)))
			}
		}

		ideal, err := sim.Mixture(ref.Fractions)
		if err != nil {
			return nil, err
		}

		// --- baseline observations: points far from any line ---
		for i := 0; i < axis.N; i++ {
			mz := axis.Value(i)
			if distanceToNearestLine(mz, ideal, c.IgnitionMZ) > 4 {
				baseXs = append(baseXs, mz)
				baseYs = append(baseYs, mean.Intensities[i])
			}
		}

		// --- isolated-peak fits: shape, position and area ---
		for _, l := range isolatedLines(ideal) {
			p, ok := fitSinglePeak(mean, l.Position, 2.5)
			if !ok {
				continue
			}
			observations = append(observations, peakObs{
				mz:        l.Position,
				centerErr: p.Center - l.Position,
				fwhm:      p.Width,
				eta:       p.Eta,
				areaRatio: p.Area / l.Intensity,
			})
		}

		// --- ignition artifact ---
		if c.IgnitionMZ > 0 && distanceToNearestLine(c.IgnitionMZ, ideal, -1) > minLineSeparation {
			if p, ok := fitSinglePeak(mean, c.IgnitionMZ, 2.5); ok && p.Area > 0 {
				ignAreas = append(ignAreas, p.Area)
			}
		}
	}

	if len(observations) < 3 {
		return nil, fmt.Errorf("msim: only %d usable calibration peaks; need at least 3", len(observations))
	}

	model := &InstrumentModel{}

	// peak width vs m/z: linear fit
	xs := make([]float64, len(observations))
	ys := make([]float64, len(observations))
	for i, o := range observations {
		xs[i], ys[i] = o.mz, o.fwhm
	}
	wc, err := fit.Polyfit(xs, ys, 1)
	if err != nil {
		return nil, fmt.Errorf("msim: width fit: %w", err)
	}
	model.PeakFWHM0, model.PeakFWHMSlope = wc[0], wc[1]
	if model.PeakFWHM0 <= 0 {
		model.PeakFWHM0 = 0.05
	}

	// eta and mass offset: medians over observations (robust to bad fits)
	etas := make([]float64, len(observations))
	offs := make([]float64, len(observations))
	for i, o := range observations {
		etas[i], offs[i] = o.eta, o.centerErr
	}
	model.PeakEta = clamp01(median(etas))
	model.MassOffset = median(offs)

	// attenuation polynomial from area ratios
	for i, o := range observations {
		ys[i] = o.areaRatio
	}
	deg := attDeg
	if len(observations) <= deg {
		deg = len(observations) - 1
	}
	ac, err := fit.Polyfit(xs, ys, deg)
	if err != nil {
		return nil, fmt.Errorf("msim: attenuation fit: %w", err)
	}
	model.Attenuation = ac

	// baseline polynomial
	if len(baseXs) > baseDeg {
		bc, err := fit.Polyfit(baseXs, baseYs, baseDeg)
		if err == nil {
			model.Baseline = bc
		}
	}

	// noise model: std = floor + scale*|signal|
	if len(noiseStds) > 2 {
		nc, err := fit.Polyfit(noiseMeans, noiseStds, 1)
		if err == nil {
			model.NoiseFloor = math.Max(nc[0], 0)
			model.NoiseScale = math.Max(nc[1], 0)
		}
	}
	if model.NoiseFloor == 0 && model.NoiseScale == 0 {
		// single-sample series cannot expose the noise; assume a tiny floor
		model.NoiseFloor = 1e-4
	}

	// ignition artifact
	if len(ignAreas) > 0 {
		model.IgnitionMZ = c.IgnitionMZ
		model.IgnitionArea = median(ignAreas)
	}

	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("msim: characterization produced invalid model: %w", err)
	}
	return model, nil
}

// meanSpectrum averages spectra sharing one axis.
func meanSpectrum(spectra []*spectrum.Spectrum) *spectrum.Spectrum {
	mean := spectrum.New(spectra[0].Axis)
	for _, s := range spectra {
		for i, v := range s.Intensities {
			mean.Intensities[i] += v
		}
	}
	mean.Scale(1 / float64(len(spectra)))
	return mean
}

// isolatedLines returns lines strong enough and far enough from neighbours
// to serve as calibration peaks.
func isolatedLines(ls *spectrum.LineSpectrum) []spectrum.Line {
	maxI := 0.0
	for _, l := range ls.Lines {
		if l.Intensity > maxI {
			maxI = l.Intensity
		}
	}
	var out []spectrum.Line
	for i, l := range ls.Lines {
		if l.Intensity < 0.05*maxI {
			continue
		}
		isolated := true
		for j, o := range ls.Lines {
			if i == j || o.Intensity < 0.02*l.Intensity {
				continue
			}
			if math.Abs(o.Position-l.Position) < minLineSeparation {
				isolated = false
				break
			}
		}
		if isolated {
			out = append(out, l)
		}
	}
	return out
}

// distanceToNearestLine returns the distance from mz to the nearest ideal
// line (and the ignition artifact position, when >= 0).
func distanceToNearestLine(mz float64, ls *spectrum.LineSpectrum, ignitionMZ float64) float64 {
	d := math.Inf(1)
	for _, l := range ls.Lines {
		if l.Intensity <= 0 {
			continue
		}
		if dd := math.Abs(l.Position - mz); dd < d {
			d = dd
		}
	}
	if ignitionMZ >= 0 {
		if dd := math.Abs(ignitionMZ - mz); dd < d {
			d = dd
		}
	}
	return d
}

// fitSinglePeak fits a pseudo-Voigt peak plus a constant local baseline to
// the spectrum in a window of +-halfWidth around pos. Returns ok=false when
// the window leaves the axis or the fit fails.
func fitSinglePeak(s *spectrum.Spectrum, pos, halfWidth float64) (spectrum.Peak, bool) {
	axis := s.Axis
	lo := axis.NearestIndex(pos - halfWidth)
	hi := axis.NearestIndex(pos + halfWidth)
	if hi-lo < 8 {
		return spectrum.Peak{}, false
	}
	m := hi - lo + 1
	xs := make([]float64, m)
	ys := make([]float64, m)
	localBase := math.Inf(1)
	maxY := math.Inf(-1)
	for i := 0; i < m; i++ {
		xs[i] = axis.Value(lo + i)
		ys[i] = s.Intensities[lo+i]
		if ys[i] < localBase {
			localBase = ys[i]
		}
		if ys[i] > maxY {
			maxY = ys[i]
		}
	}
	if maxY-localBase <= 0 {
		return spectrum.Peak{}, false
	}
	// initial area estimate: trapezoid above the local base
	area0 := 0.0
	for i := 0; i < m-1; i++ {
		area0 += 0.5 * (ys[i] + ys[i+1] - 2*localBase)
	}
	area0 *= axis.Step
	if area0 <= 0 {
		area0 = (maxY - localBase) * 0.5
	}
	prob := fit.Problem{
		NumResiduals: m,
		// params: center, area, fwhm, eta, base
		Residuals: func(p, out []float64) {
			pk := spectrum.Peak{Center: p[0], Area: p[1], Width: p[2], Eta: p[3]}
			for i := range out {
				out[i] = pk.Value(xs[i]) + p[4] - ys[i]
			}
		},
		Lower: []float64{pos - halfWidth, 0, 0.02, 0, -math.MaxFloat64},
		Upper: []float64{pos + halfWidth, math.MaxFloat64, 2 * halfWidth, 1, math.MaxFloat64},
	}
	res, err := fit.LevenbergMarquardt(prob,
		[]float64{pos, area0, 0.5, 0.3, localBase},
		fit.Options{MaxIterations: 80})
	if err != nil && err != fit.ErrNoProgress {
		return spectrum.Peak{}, false
	}
	p := spectrum.Peak{Center: res.Params[0], Area: res.Params[1], Width: res.Params[2], Eta: res.Params[3]}
	if p.Validate() != nil || p.Area <= 0 {
		return spectrum.Peak{}, false
	}
	return p, true
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return 0.5 * (c[n/2-1] + c[n/2])
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
