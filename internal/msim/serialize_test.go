package msim

import (
	"bytes"
	"strings"
	"testing"
)

func TestInstrumentModelSaveLoad(t *testing.T) {
	m := DefaultTrueModel()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadInstrumentModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.PeakFWHM0 != m.PeakFWHM0 || got.IgnitionMZ != m.IgnitionMZ ||
		len(got.Attenuation) != len(m.Attenuation) {
		t.Fatalf("round trip changed model: %+v vs %+v", got, m)
	}
	// spectra produced by the two models agree exactly
	sim := taskSim(t)
	frac := make([]float64, sim.NumCompounds())
	frac[3] = 1
	ls, _ := sim.Mixture(frac)
	a, _ := m.Measure(ls, DefaultAxis(), nil)
	b, _ := got.Measure(ls, DefaultAxis(), nil)
	for i := range a.Intensities {
		if a.Intensities[i] != b.Intensities[i] {
			t.Fatal("loaded model measures differently")
		}
	}
}

func TestInstrumentModelSaveRejectsInvalid(t *testing.T) {
	m := DefaultTrueModel()
	m.PeakFWHM0 = -1
	var buf bytes.Buffer
	if err := m.Save(&buf); err == nil {
		t.Fatal("invalid model must not save")
	}
}

func TestLoadInstrumentModelErrors(t *testing.T) {
	if _, err := LoadInstrumentModel(strings.NewReader("junk")); err == nil {
		t.Fatal("junk must not load")
	}
	if _, err := LoadInstrumentModel(strings.NewReader(`{"format":"nope"}`)); err == nil {
		t.Fatal("wrong format must not load")
	}
	if _, err := LoadInstrumentModel(strings.NewReader(`{"format":"specml/instrument/v1"}`)); err == nil {
		t.Fatal("missing model must not load")
	}
	if _, err := LoadInstrumentModel(strings.NewReader(
		`{"format":"specml/instrument/v1","model":{"PeakFWHM0":-3}}`)); err == nil {
		t.Fatal("invalid model payload must not load")
	}
}
