package msim

import (
	"fmt"
	"math"
)

// DriftSchedule is a deterministic per-scan degradation of the instrument:
// from StartScan the session parameters walk away from their calibrated
// values, ramping linearly over RampScans scans and then holding at the
// full magnitude. The schedule draws nothing from the device's random
// stream, so attaching (or removing) one never shifts the noise sequence —
// two devices with the same seed and different schedules see identical
// noise on top of different systematics, which is exactly how a slowly
// detuning analyzer behaves and what keeps the closed loop bit-reproducible.
type DriftSchedule struct {
	// StartScan is the 1-based scan index at which drift begins; scans
	// before it are unaffected.
	StartScan int `json:"start_scan"`
	// RampScans is the number of scans over which the drift ramps from zero
	// to full magnitude; 0 means a step change at StartScan.
	RampScans int `json:"ramp_scans"`
	// MassShift is the full-magnitude additional m/z calibration offset.
	MassShift float64 `json:"mass_shift"`
	// GainTilt is the full-magnitude relative tilt of the mass-dependent
	// sensitivity: the non-constant attenuation terms are scaled by
	// (1 + tilt), mimicking a detector whose high-mass response fades.
	GainTilt float64 `json:"gain_tilt"`
	// FWHMGrowth is the full-magnitude relative peak-width growth.
	FWHMGrowth float64 `json:"fwhm_growth"`
	// NoiseGrowth is the full-magnitude relative growth of both noise terms.
	NoiseGrowth float64 `json:"noise_growth"`
}

// Validate reports whether the schedule is usable.
func (d *DriftSchedule) Validate() error {
	if d.StartScan < 1 {
		return fmt.Errorf("msim: drift start scan must be >= 1, got %d", d.StartScan)
	}
	if d.RampScans < 0 {
		return fmt.Errorf("msim: drift ramp must be non-negative, got %d", d.RampScans)
	}
	for _, v := range []float64{d.MassShift, d.GainTilt, d.FWHMGrowth, d.NoiseGrowth} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("msim: drift magnitudes must be finite")
		}
	}
	if d.FWHMGrowth <= -1 || d.NoiseGrowth <= -1 {
		return fmt.Errorf("msim: relative drift growth must stay above -1")
	}
	return nil
}

// factor returns the ramp fraction in [0,1] for a 1-based scan index.
func (d *DriftSchedule) factor(scan int) float64 {
	if d == nil || scan < d.StartScan {
		return 0
	}
	if d.RampScans <= 0 {
		return 1
	}
	f := float64(scan-d.StartScan+1) / float64(d.RampScans)
	if f > 1 {
		return 1
	}
	return f
}

// active reports whether the schedule perturbs the given scan.
func (d *DriftSchedule) active(scan int) bool { return d.factor(scan) > 0 }

// apply perturbs the model in place by the schedule at the given scan.
func (d *DriftSchedule) apply(m *InstrumentModel, scan int) {
	f := d.factor(scan)
	if f == 0 {
		return
	}
	m.MassOffset += f * d.MassShift
	if d.GainTilt != 0 {
		tilt := 1 + f*d.GainTilt
		for i := 1; i < len(m.Attenuation); i++ {
			m.Attenuation[i] *= tilt
		}
	}
	if d.FWHMGrowth != 0 {
		g := 1 + f*d.FWHMGrowth
		m.PeakFWHM0 *= g
		m.PeakFWHMSlope *= g
	}
	if d.NoiseGrowth != 0 {
		g := 1 + f*d.NoiseGrowth
		m.NoiseFloor *= g
		m.NoiseScale *= g
	}
}

// SetDriftSchedule attaches (or with nil detaches) a deterministic drift
// schedule. The scan counter keeps running across schedule changes.
func (v *VirtualInstrument) SetDriftSchedule(d *DriftSchedule) error {
	if d != nil {
		if err := d.Validate(); err != nil {
			return err
		}
	}
	v.drift = d
	return nil
}

// ScanCount returns the number of Measure calls so far.
func (v *VirtualInstrument) ScanCount() int { return v.scans }
