package msim

import (
	"fmt"

	"specml/internal/rng"
	"specml/internal/spectrum"
)

// LineSimulator is Tool 1: it generates ideal line spectra of substance
// mixtures with arbitrary concentrations by linear superposition of the
// pure compounds' fragmentation patterns.
type LineSimulator struct {
	compounds []*Compound
	pure      []*spectrum.LineSpectrum
}

// NewLineSimulator returns a simulator for the given measurement task
// (an ordered compound list; the order defines the label vector).
func NewLineSimulator(compounds []*Compound) (*LineSimulator, error) {
	if len(compounds) == 0 {
		return nil, fmt.Errorf("msim: line simulator needs at least one compound")
	}
	pure := make([]*spectrum.LineSpectrum, len(compounds))
	for i, c := range compounds {
		if c == nil {
			return nil, fmt.Errorf("msim: nil compound at index %d", i)
		}
		pure[i] = c.Lines()
	}
	return &LineSimulator{compounds: compounds, pure: pure}, nil
}

// Compounds returns the ordered measurement task.
func (s *LineSimulator) Compounds() []*Compound { return s.compounds }

// Names returns the compound names in label order.
func (s *LineSimulator) Names() []string {
	names := make([]string, len(s.compounds))
	for i, c := range s.compounds {
		names[i] = c.Name
	}
	return names
}

// NumCompounds returns the size of the concentration vector.
func (s *LineSimulator) NumCompounds() int { return len(s.compounds) }

// Mixture returns the ideal line spectrum for the given concentration
// fractions (which must match the task size; they are not required to sum
// to 1, so the simulator can also express diluted or enriched samples).
func (s *LineSimulator) Mixture(fractions []float64) (*spectrum.LineSpectrum, error) {
	if len(fractions) != len(s.pure) {
		return nil, fmt.Errorf("msim: %d fractions for %d compounds", len(fractions), len(s.pure))
	}
	for i, f := range fractions {
		if f < 0 {
			return nil, fmt.Errorf("msim: negative fraction %g for %s", f, s.compounds[i].Name)
		}
	}
	return spectrum.SuperposeLines(fractions, s.pure)
}

// RandomFractions samples a random mixture composition on the simplex.
// alpha < 1 produces sparse mixtures (a few dominant compounds), alpha = 1
// uniform ones.
func (s *LineSimulator) RandomFractions(src *rng.Source, alpha float64) []float64 {
	f := make([]float64, len(s.pure))
	src.Dirichlet(alpha, f)
	return f
}
