package msim

import (
	"math"
	"testing"

	"specml/internal/fit"
	"specml/internal/spectrum"
)

func maxAbs(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// TestCachedTrainingMatchesFullAxisReference: for a noiseless instrument
// the cached generator (fraction-weighted template sums) must match a
// from-scratch full-axis analytic render of the same mixture — the
// tail-corrected templates are the *more* accurate rendering, so they are
// compared against the untruncated ground truth, not the cutoff renderer.
func TestCachedTrainingMatchesFullAxisReference(t *testing.T) {
	sim := taskSim(t)
	model := DefaultTrueModel().Clone()
	model.NoiseFloor, model.NoiseScale = 0, 0
	axis := DefaultAxis()
	d, err := GenerateTrainingWith(sim, model, axis, 8, 1, 31, 1, TrainingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.X {
		ideal, err := sim.Mixture(d.Y[i])
		if err != nil {
			t.Fatal(err)
		}
		s := spectrum.New(axis)
		peaks := modelPeaks(model, ideal)
		if model.IgnitionArea > 0 {
			peaks = append(peaks, spectrum.Peak{
				Center: model.IgnitionMZ + model.MassOffset,
				Area:   model.IgnitionArea,
				Width:  model.fwhmAt(model.IgnitionMZ),
				Eta:    model.PeakEta,
			})
		}
		if err := spectrum.RenderPeaks(s, peaks, 0); err != nil {
			t.Fatal(err)
		}
		for j := range s.Intensities {
			s.Intensities[j] += fit.PolyEval(model.Baseline, axis.Value(j))
		}
		want := Preprocess(s)
		scale := maxAbs(want)
		for j := range want {
			if diff := math.Abs(d.X[i][j] - want[j]); diff > 2e-4*scale {
				t.Fatalf("sample %d[%d]: cached %v vs full-axis %v (%v of max)",
					i, j, d.X[i][j], want[j], diff/scale)
			}
		}
	}
}

// TestCachedTrainingAgainstExactOption: labels are bit-identical between
// the cached and exact paths (same draw sequence), and with a noiseless
// model the spectra agree up to the Lorentzian tail intensity the exact
// cutoff renderer discards.
func TestCachedTrainingAgainstExactOption(t *testing.T) {
	sim := taskSim(t)
	model := DefaultTrueModel().Clone()
	model.NoiseFloor, model.NoiseScale = 0, 0
	axis := DefaultAxis()
	cached, err := GenerateTrainingWith(sim, model, axis, 12, 1, 7, 2, TrainingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := GenerateTrainingWith(sim, model, axis, 12, 1, 7, 2, TrainingOptions{ExactRender: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cached.Y {
		for j := range cached.Y[i] {
			if cached.Y[i][j] != exact.Y[i][j] {
				t.Fatalf("label [%d][%d] differs between cached and exact", i, j)
			}
		}
		scale := maxAbs(exact.X[i])
		for j := range cached.X[i] {
			if diff := math.Abs(cached.X[i][j] - exact.X[i][j]); diff > 1e-2*scale {
				t.Fatalf("X[%d][%d]: cached %v vs exact %v", i, j, cached.X[i][j], exact.X[i][j])
			}
		}
	}
}

// TestExactOptionDeterministic: the legacy path behind the ExactRender
// option must stay deterministic and produce simplex labels.
func TestExactOptionDeterministic(t *testing.T) {
	sim := taskSim(t)
	model := DefaultTrueModel()
	d1, err := GenerateTrainingWith(sim, model, DefaultAxis(), 10, 1, 13, 1, TrainingOptions{ExactRender: true})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := GenerateTrainingWith(sim, model, DefaultAxis(), 10, 1, 13, 3, TrainingOptions{ExactRender: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.X {
		for j := range d1.X[i] {
			if d1.X[i][j] != d2.X[i][j] {
				t.Fatalf("exact path X[%d][%d] depends on worker count", i, j)
			}
		}
	}
}

// TestGenerateTrainingIntoReuse: regenerating into a reused dataset must be
// bit-identical to a fresh generation.
func TestGenerateTrainingIntoReuse(t *testing.T) {
	sim := taskSim(t)
	model := DefaultTrueModel()
	axis := DefaultAxis()
	want, err := GenerateTrainingWith(sim, model, axis, 9, 1, 55, 1, TrainingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := GenerateTrainingWith(sim, model, axis, 25, 1, 2, 1, TrainingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := GenerateTrainingInto(d, sim, model, axis, 9, 1, 55, 1, TrainingOptions{}); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 9 {
		t.Fatalf("reused dataset has %d rows, want 9", d.Len())
	}
	for i := range want.X {
		for j := range want.X[i] {
			if d.X[i][j] != want.X[i][j] {
				t.Fatalf("X[%d][%d] differs after reuse", i, j)
			}
		}
	}
}

// TestPreprocessIntoMatchesPreprocess: the in-place variant must agree with
// the allocating one bit for bit.
func TestPreprocessIntoMatchesPreprocess(t *testing.T) {
	sim := taskSim(t)
	model := DefaultTrueModel()
	ideal, err := sim.Mixture([]float64{0.4, 0.3, 0.1, 0.1, 0.05, 0.05, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	s, err := model.Measure(ideal, DefaultAxis(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Preprocess(s)
	got := make([]float64, len(s.Intensities))
	PreprocessInto(got, s)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: %v vs %v", i, got[i], want[i])
		}
	}
}
