package msim

import (
	"fmt"
	"math"
	"time"

	"specml/internal/dataset"
	"specml/internal/fit"
	"specml/internal/obs"
	"specml/internal/parallel"
	"specml/internal/rng"
	"specml/internal/spectrum"
)

// TrainingOptions selects the rendering strategy of GenerateTrainingWith.
type TrainingOptions struct {
	// ExactRender forces the legacy per-sample Mixture + Measure path,
	// bit-identical to the pre-cache generator. The default cached path
	// renders each compound's fragmentation pattern through the instrument
	// model once and composes samples as fraction-weighted template sums,
	// which additionally carries the analytic Lorentzian tail correction the
	// truncating exact renderer lacks (values agree to ~1e-4 of the peak
	// scale, dominated by that tail).
	ExactRender bool
	// Metrics, when non-nil, receives corpus-generation throughput:
	// specml_corpus_samples_total{source="msim"} and a wall-clock
	// specml_corpus_generate_seconds histogram. Recording happens once per
	// generation call, never per sample.
	Metrics *obs.Registry
}

// corpusGenBuckets spans 1ms..~2m of corpus-generation wall clock.
var corpusGenBuckets = obs.ExponentialBuckets(1e-3, 2, 18)

// renderCache holds the per-compound instrument-rendered templates on a
// fixed axis. Measurement is linear in the line intensities — attenuation
// and peak width depend only on line position — so the spectrum of any
// mixture is the fraction-weighted sum of the pure-compound templates plus
// the composition-independent background (ignition artifact and baseline).
type renderCache struct {
	comp [][]float64 // pure-compound renders, label order
	bg   []float64   // ignition peak + baseline drift
}

// modelPeaks converts one ideal line spectrum into instrument peaks,
// mirroring InstrumentModel.Measure exactly.
func modelPeaks(m *InstrumentModel, ls *spectrum.LineSpectrum) []spectrum.Peak {
	peaks := make([]spectrum.Peak, 0, len(ls.Lines))
	for _, l := range ls.Lines {
		if l.Intensity <= 0 {
			continue
		}
		mz := l.Position + m.MassOffset
		peaks = append(peaks, spectrum.Peak{
			Center: mz,
			Area:   l.Intensity * m.attenuationAt(l.Position),
			Width:  m.fwhmAt(mz),
			Eta:    m.PeakEta,
		})
	}
	return peaks
}

// newRenderCache renders every pure compound and the background through the
// instrument model once. Templates use the tail-corrected renderer, so the
// 12-width cutoff loses no Lorentzian area.
func newRenderCache(sim *LineSimulator, model *InstrumentModel, axis spectrum.Axis) (*renderCache, error) {
	c := &renderCache{comp: make([][]float64, len(sim.pure))}
	for k, ls := range sim.pure {
		s := spectrum.New(axis)
		if err := spectrum.RenderPeaksTailCorrected(s, modelPeaks(model, ls), 12); err != nil {
			return nil, err
		}
		c.comp[k] = s.Intensities
	}
	s := spectrum.New(axis)
	if model.IgnitionArea > 0 {
		peak := []spectrum.Peak{{
			Center: model.IgnitionMZ + model.MassOffset,
			Area:   model.IgnitionArea,
			Width:  model.fwhmAt(model.IgnitionMZ),
			Eta:    model.PeakEta,
		}}
		if err := spectrum.RenderPeaksTailCorrected(s, peak, 12); err != nil {
			return nil, err
		}
	}
	if len(model.Baseline) > 0 {
		for i := range s.Intensities {
			s.Intensities[i] += fit.PolyEval(model.Baseline, axis.Value(i))
		}
	}
	c.bg = s.Intensities
	return c, nil
}

// GenerateTrainingWith is GenerateTraining with explicit rendering options.
func GenerateTrainingWith(sim *LineSimulator, model *InstrumentModel, axis spectrum.Axis,
	n int, alpha float64, seed uint64, workers int, opts TrainingOptions) (*dataset.Dataset, error) {
	d := dataset.New(n)
	if err := GenerateTrainingInto(d, sim, model, axis, n, alpha, seed, workers, opts); err != nil {
		return nil, err
	}
	return d, nil
}

// GenerateTrainingInto is GenerateTrainingWith writing into an existing
// dataset, reusing its row storage (grow-only). On the cached path,
// steady-state regeneration performs zero heap allocation per sample.
// Generation runs under a pprof "corpus-msim" stage label (inherited by
// the parallel workers) and, when opts.Metrics is set, reports samples and
// duration through the registry.
func GenerateTrainingInto(d *dataset.Dataset, sim *LineSimulator, model *InstrumentModel,
	axis spectrum.Axis, n int, alpha float64, seed uint64, workers int, opts TrainingOptions) error {
	start := time.Now()
	err := obs.WithStage("corpus-msim", func() error {
		return generateTrainingInto(d, sim, model, axis, n, alpha, seed, workers, opts)
	})
	if opts.Metrics != nil && err == nil {
		opts.Metrics.Counter("specml_corpus_samples_total",
			"Simulated training samples generated.", obs.L("source", "msim")).Add(uint64(n))
		opts.Metrics.Histogram("specml_corpus_generate_seconds",
			"Wall-clock duration of one corpus generation call.", corpusGenBuckets,
			obs.L("source", "msim")).ObserveSince(start)
	}
	return err
}

func generateTrainingInto(d *dataset.Dataset, sim *LineSimulator, model *InstrumentModel,
	axis spectrum.Axis, n int, alpha float64, seed uint64, workers int, opts TrainingOptions) error {
	if n <= 0 {
		return fmt.Errorf("msim: need a positive sample count, got %d", n)
	}
	if err := model.Validate(); err != nil {
		return err
	}
	d.Resize(n, axis.N, sim.NumCompounds())
	d.Names = sim.Names()

	// Child-stream seeds are drawn sequentially from the root (the Split
	// construction), so sample i's stream never depends on scheduling.
	root := rng.New(seed)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = root.Uint64()
	}

	if opts.ExactRender {
		return parallel.For(workers, n, func(_, i int) error {
			src := rng.New(seeds[i])
			frac := sim.RandomFractions(src, alpha)
			ideal, err := sim.Mixture(frac)
			if err != nil {
				return err
			}
			s, err := model.Measure(ideal, axis, src)
			if err != nil {
				return err
			}
			PreprocessInto(d.X[i], s)
			copy(d.Y[i], frac)
			return nil
		})
	}

	// Cached path: templates are built deterministically before the
	// parallel wave; each worker reuses one raw-spectrum buffer and one
	// reseedable source, so the wave itself does not allocate.
	cache, err := newRenderCache(sim, model, axis)
	if err != nil {
		return err
	}
	nw := parallel.Resolve(workers)
	if nw > n {
		nw = n
	}
	raws := make([][]float64, nw)
	srcs := make([]*rng.Source, nw)
	for w := 0; w < nw; w++ {
		raws[w] = make([]float64, axis.N)
		srcs[w] = rng.New(0)
	}
	noisy := model.NoiseFloor > 0 || model.NoiseScale > 0
	return parallel.For(nw, n, func(w, i int) error {
		src := srcs[w]
		src.Reseed(seeds[i])
		frac := d.Y[i]
		src.Dirichlet(alpha, frac)
		raw := raws[w]
		copy(raw, cache.bg)
		for k, f := range frac {
			if f == 0 {
				continue
			}
			tmpl := cache.comp[k]
			for j, t := range tmpl {
				raw[j] += f * t
			}
		}
		if noisy {
			for j, v := range raw {
				sigma := model.NoiseFloor + model.NoiseScale*math.Abs(v)
				raw[j] = v + src.Normal(0, sigma)
			}
		}
		preprocessInto(d.X[i], raw)
		return nil
	})
}
