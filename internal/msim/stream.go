package msim

import (
	"fmt"
	"math"
	"sync"

	"specml/internal/dataset"
	"specml/internal/obs"
	"specml/internal/rng"
	"specml/internal/spectrum"
)

// NewTrainingStream is the streaming counterpart of GenerateTrainingWith:
// a dataset.Source that renders sample i on demand instead of materializing
// the corpus. The per-sample child seeds come from the same sequential-draw
// construction as the materialized generator, so a stream built from equal
// (sim, model, axis, n, alpha, seed, opts) yields rows bit-identical to the
// generated dataset — feeding it to nn.Model.FitSource trains the exact
// model a materialize-then-Fit run would, while holding only the in-flight
// mini-batches in memory.
//
// The second return value is the compound name list (dataset.Dataset.Names
// of the materialized equivalent). Batch is safe for concurrent calls; the
// cached path reuses pooled raw-spectrum buffers and performs zero
// steady-state allocation per sample.
func NewTrainingStream(sim *LineSimulator, model *InstrumentModel, axis spectrum.Axis,
	n int, alpha float64, seed uint64, opts TrainingOptions) (*dataset.Stream, []string, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("msim: need a positive sample count, got %d", n)
	}
	if err := model.Validate(); err != nil {
		return nil, nil, err
	}

	var render dataset.RenderFunc
	if opts.ExactRender {
		// Legacy per-sample Mixture + Measure path. Reseed(seeds[i]) puts the
		// stream in the exact state rng.New(seeds[i]) gives the generator.
		render = func(_ int, src *rng.Source, x, y []float64) error {
			frac := sim.RandomFractions(src, alpha)
			ideal, err := sim.Mixture(frac)
			if err != nil {
				return err
			}
			s, err := model.Measure(ideal, axis, src)
			if err != nil {
				return err
			}
			PreprocessInto(x, s)
			copy(y, frac)
			return nil
		}
	} else {
		cache, err := newRenderCache(sim, model, axis)
		if err != nil {
			return nil, nil, err
		}
		var raws sync.Pool
		raws.New = func() any { b := make([]float64, axis.N); return &b }
		noisy := model.NoiseFloor > 0 || model.NoiseScale > 0
		render = func(_ int, src *rng.Source, x, y []float64) error {
			src.Dirichlet(alpha, y)
			rp := raws.Get().(*[]float64)
			raw := *rp
			copy(raw, cache.bg)
			for k, f := range y {
				if f == 0 {
					continue
				}
				tmpl := cache.comp[k]
				for j, t := range tmpl {
					raw[j] += f * t
				}
			}
			if noisy {
				for j, v := range raw {
					sigma := model.NoiseFloor + model.NoiseScale*math.Abs(v)
					raw[j] = v + src.Normal(0, sigma)
				}
			}
			preprocessInto(x, raw)
			raws.Put(rp)
			return nil
		}
	}

	s, err := dataset.NewStream(n, axis.N, sim.NumCompounds(), seed, render)
	if err != nil {
		return nil, nil, err
	}
	if opts.Metrics != nil {
		c := opts.Metrics.Counter("specml_corpus_samples_total",
			"Simulated training samples generated.", obs.L("source", "msim"))
		s.OnBatch = func(rendered int) { c.Add(uint64(rendered)) }
	}
	return s, sim.Names(), nil
}
