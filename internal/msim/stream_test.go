package msim

import (
	"testing"

	"specml/internal/dataset"
	"specml/internal/obs"
)

// renderStream materializes every sample of a stream for comparison.
func renderStream(t *testing.T, s *dataset.Stream, batch int) (x, y [][]float64) {
	t.Helper()
	n := s.Len()
	xw, yw := s.Widths()
	x = make([][]float64, n)
	y = make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, xw)
		y[i] = make([]float64, yw)
	}
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		idx := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			idx = append(idx, i)
		}
		if err := s.Batch(0, idx, x[start:end], y[start:end]); err != nil {
			t.Fatal(err)
		}
	}
	return x, y
}

// TestTrainingStreamMatchesGenerate pins the streaming equivalence: the
// stream's rows must be bit-identical to the materialized generator's for
// equal (sim, model, axis, n, alpha, seed) — in both render modes and for
// any batch grouping, so FitSource on the stream trains the exact model a
// materialize-then-Fit run would.
func TestTrainingStreamMatchesGenerate(t *testing.T) {
	sim := taskSim(t)
	model := DefaultTrueModel()
	axis := DefaultAxis()
	for _, tc := range []struct {
		name string
		opts TrainingOptions
	}{
		{"cached", TrainingOptions{}},
		{"exact", TrainingOptions{ExactRender: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, err := GenerateTrainingWith(sim, model, axis, 12, 1, 7, 2, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			s, names, err := NewTrainingStream(sim, model, axis, 12, 1, 7, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != sim.NumCompounds() {
				t.Fatalf("stream returned %d names, want %d", len(names), sim.NumCompounds())
			}
			for i, want := range d.Names {
				if names[i] != want {
					t.Fatalf("name %d = %q, want %q", i, names[i], want)
				}
			}
			for _, batch := range []int{1, 5, 12} {
				x, y := renderStream(t, s, batch)
				for i := range d.X {
					for j := range d.X[i] {
						if x[i][j] != d.X[i][j] {
							t.Fatalf("batch=%d: x[%d][%d] = %x, want %x (bitwise)", batch, i, j, x[i][j], d.X[i][j])
						}
					}
					for j := range d.Y[i] {
						if y[i][j] != d.Y[i][j] {
							t.Fatalf("batch=%d: y[%d][%d] differs bitwise", batch, i, j)
						}
					}
				}
			}
		})
	}
}

func TestTrainingStreamValidation(t *testing.T) {
	sim := taskSim(t)
	model := DefaultTrueModel()
	if _, _, err := NewTrainingStream(sim, model, DefaultAxis(), 0, 1, 7, TrainingOptions{}); err == nil {
		t.Fatal("zero samples accepted")
	}
	bad := DefaultTrueModel().Clone()
	bad.PeakFWHM0 = -1
	if _, _, err := NewTrainingStream(sim, bad, DefaultAxis(), 4, 1, 7, TrainingOptions{}); err == nil {
		t.Fatal("invalid instrument model accepted")
	}
}

func TestTrainingStreamMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s, _, err := NewTrainingStream(taskSim(t), DefaultTrueModel(), DefaultAxis(), 6, 1, 11,
		TrainingOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	renderStream(t, s, 3)
	got := reg.Counter("specml_corpus_samples_total", "", obs.L("source", "msim")).Value()
	if got != 6 {
		t.Fatalf("corpus counter = %d, want 6", got)
	}
}
