package msim

import (
	"math"
	"testing"

	"specml/internal/spectrum"
)

func driftTestLines(t *testing.T) *spectrum.LineSpectrum {
	t.Helper()
	comps, err := Compounds("N2", "O2", "CO2")
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewLineSimulator(comps)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := sim.Mixture([]float64{0.5, 0.3, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

func TestDriftScheduleValidate(t *testing.T) {
	good := DriftSchedule{StartScan: 10, RampScans: 5, MassShift: 0.3, GainTilt: -0.2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []DriftSchedule{
		{StartScan: 0},
		{StartScan: 5, RampScans: -1},
		{StartScan: 5, MassShift: math.NaN()},
		{StartScan: 5, GainTilt: math.Inf(1)},
		{StartScan: 5, FWHMGrowth: -1},
		{StartScan: 5, NoiseGrowth: -2},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad schedule %d (%+v) accepted", i, d)
		}
	}
	vi := NewVirtualInstrument(nil, 1)
	if err := vi.SetDriftSchedule(&bad[0]); err == nil {
		t.Error("SetDriftSchedule accepted an invalid schedule")
	}
}

func TestDriftScheduleFactor(t *testing.T) {
	d := &DriftSchedule{StartScan: 10, RampScans: 4}
	want := map[int]float64{1: 0, 9: 0, 10: 0.25, 11: 0.5, 13: 1, 100: 1}
	for scan, f := range want {
		if got := d.factor(scan); got != f {
			t.Errorf("factor(%d) = %g, want %g", scan, got, f)
		}
	}
	step := &DriftSchedule{StartScan: 3}
	if step.factor(2) != 0 || step.factor(3) != 1 {
		t.Error("step schedule should jump from 0 to 1 at StartScan")
	}
	var nilSched *DriftSchedule
	if nilSched.factor(1000) != 0 || nilSched.active(1000) {
		t.Error("nil schedule must be inert")
	}
}

// TestDriftNilScheduleByteIdentity: attaching no schedule produces exactly
// the byte stream of the pre-drift instrument — the scan counter and the
// nil checks must not perturb the rng sequence.
func TestDriftNilScheduleByteIdentity(t *testing.T) {
	ls := driftTestLines(t)
	axis := DefaultAxis()
	a := NewVirtualInstrument(nil, 42)
	b := NewVirtualInstrument(nil, 42)
	if err := b.SetDriftSchedule(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		sa, err := a.Measure(ls, axis)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.Measure(ls, axis)
		if err != nil {
			t.Fatal(err)
		}
		for k := range sa.Intensities {
			if sa.Intensities[k] != sb.Intensities[k] {
				t.Fatalf("scan %d bin %d differs: %g vs %g", i, k, sa.Intensities[k], sb.Intensities[k])
			}
		}
	}
	if a.ScanCount() != 5 || b.ScanCount() != 5 {
		t.Fatalf("scan counts %d/%d, want 5", a.ScanCount(), b.ScanCount())
	}
}

// TestDriftPreservesNoiseStream: the drifted instrument consumes the rng
// stream identically to the undrifted one, so pre-drift scans are byte-equal
// and post-drift scans differ only by the scheduled systematics.
func TestDriftPreservesNoiseStream(t *testing.T) {
	ls := driftTestLines(t)
	axis := DefaultAxis()
	clean := NewVirtualInstrument(nil, 7)
	drifted := NewVirtualInstrument(nil, 7)
	sched := &DriftSchedule{StartScan: 4, MassShift: 0.8, GainTilt: -0.4}
	if err := drifted.SetDriftSchedule(sched); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		sc, err := clean.Measure(ls, axis)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := drifted.Measure(ls, axis)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for k := range sc.Intensities {
			if sc.Intensities[k] != sd.Intensities[k] {
				same = false
				break
			}
		}
		if i < sched.StartScan && !same {
			t.Fatalf("scan %d before drift start differs", i)
		}
		if i >= sched.StartScan && same {
			t.Fatalf("scan %d after drift start is unchanged", i)
		}
	}
}

// TestDriftDeterministic: two identically seeded, identically scheduled
// devices produce bitwise-identical drifted scans.
func TestDriftDeterministic(t *testing.T) {
	ls := driftTestLines(t)
	axis := DefaultAxis()
	mk := func() *VirtualInstrument {
		vi := NewVirtualInstrument(nil, 99)
		if err := vi.SetDriftSchedule(&DriftSchedule{
			StartScan: 2, RampScans: 3, MassShift: 0.5, FWHMGrowth: 0.3, NoiseGrowth: 0.5,
		}); err != nil {
			t.Fatal(err)
		}
		return vi
	}
	a, b := mk(), mk()
	for i := 0; i < 6; i++ {
		sa, err := a.Measure(ls, axis)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.Measure(ls, axis)
		if err != nil {
			t.Fatal(err)
		}
		for k := range sa.Intensities {
			if sa.Intensities[k] != sb.Intensities[k] {
				t.Fatalf("scan %d bin %d not deterministic", i, k)
			}
		}
	}
}

// TestDriftAppliesWithoutJitter: with all stochastic jitter disabled the
// drift path still clones the session model instead of mutating it.
func TestDriftAppliesWithoutJitter(t *testing.T) {
	ls := driftTestLines(t)
	axis := DefaultAxis()
	vi := NewVirtualInstrument(nil, 5)
	vi.ScanMassJitter = 0
	vi.ScanGainJitter = 0
	if err := vi.SetDriftSchedule(&DriftSchedule{StartScan: 1, MassShift: 1.0}); err != nil {
		t.Fatal(err)
	}
	before := vi.session.MassOffset
	if _, err := vi.Measure(ls, axis); err != nil {
		t.Fatal(err)
	}
	if vi.session.MassOffset != before {
		t.Fatalf("drift mutated the session model: %g -> %g", before, vi.session.MassOffset)
	}
}
