package msim

import (
	"fmt"

	"specml/internal/dataset"
	"specml/internal/spectrum"
)

// DefaultAxis is the canonical m/z axis of the virtual prototype:
// m/z 1.0 to 100.0 in steps of 0.5 (199 samples). The instrument's step
// size and range are configurable; networks trained on this axis accept
// other resolutions after spectrum.Resample interpolation.
func DefaultAxis() spectrum.Axis {
	return spectrum.MustAxis(1.0, 0.5, 199)
}

// Preprocess converts a measured spectrum into a network input vector:
// negative (noise) samples are clipped and the vector is normalized to
// unit total intensity, making the input invariant to the absolute signal
// scale.
func Preprocess(s *spectrum.Spectrum) []float64 {
	x := make([]float64, len(s.Intensities))
	PreprocessInto(x, s)
	return x
}

// PreprocessInto is Preprocess writing into a caller-owned buffer of the
// same length as the spectrum.
func PreprocessInto(dst []float64, s *spectrum.Spectrum) {
	preprocessInto(dst, s.Intensities)
}

func preprocessInto(dst, src []float64) {
	sum := 0.0
	for i, v := range src {
		if v < 0 {
			v = 0
		}
		dst[i] = v
		sum += v
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range dst {
			dst[i] *= inv
		}
	}
}

// StandardMixtures returns the deterministic reference-mixture table used
// to parameterize the simulator: the paper uses 14 different mixtures per
// characterization run. The first k mixtures are the pure components
// (isolated calibration peaks); the rest are standard blends.
func StandardMixtures(k int) [][]float64 {
	if k <= 0 {
		return nil
	}
	var out [][]float64
	for i := 0; i < k; i++ {
		m := make([]float64, k)
		m[i] = 1
		out = append(out, m)
	}
	// blends: equal parts of all, pairs of neighbours, and a 2:1 ramp
	all := make([]float64, k)
	for i := range all {
		all[i] = 1 / float64(k)
	}
	out = append(out, all)
	for i := 0; i+1 < k && len(out) < 14; i += 2 {
		m := make([]float64, k)
		m[i], m[i+1] = 0.5, 0.5
		out = append(out, m)
	}
	if len(out) < 14 {
		ramp := make([]float64, k)
		total := 0.0
		for i := range ramp {
			ramp[i] = float64(i + 1)
			total += ramp[i]
		}
		for i := range ramp {
			ramp[i] /= total
		}
		out = append(out, ramp)
	}
	for len(out) < 14 {
		m := make([]float64, k)
		m[len(out)%k] = 0.7
		m[(len(out)+1)%k] = 0.3
		out = append(out, m)
	}
	return out[:14]
}

// CollectReferences measures each reference mixture samplesPerMixture
// times on the virtual instrument, returning the characterizer inputs.
// The delivered composition is the setpoint itself (reference gases are
// certified), but the instrument still contaminates and distorts them.
func CollectReferences(vi *VirtualInstrument, sim *LineSimulator, axis spectrum.Axis,
	mixtures [][]float64, samplesPerMixture int) ([]ReferenceSeries, error) {
	if samplesPerMixture <= 0 {
		return nil, fmt.Errorf("msim: samplesPerMixture must be positive, got %d", samplesPerMixture)
	}
	refs := make([]ReferenceSeries, 0, len(mixtures))
	for _, frac := range mixtures {
		ideal, err := sim.Mixture(frac)
		if err != nil {
			return nil, err
		}
		spectra, err := vi.MeasureN(ideal, axis, samplesPerMixture)
		if err != nil {
			return nil, err
		}
		refs = append(refs, ReferenceSeries{Fractions: frac, Spectra: spectra})
	}
	return refs, nil
}

// GenerateTraining produces n simulated, labelled spectra: random mixture
// compositions rendered through the (estimated) instrument model. This is
// the data-augmentation core of the paper — "a sufficient number of
// simulated and labelled measurement series can be generated in minutes".
// alpha controls composition sparsity (see rng.Dirichlet).
//
// Generation runs on `workers` goroutines (0 = all cores). Every sample i
// draws from its own rng.Split-derived child stream keyed by i, so the
// corpus is bit-identical for any worker count: equal (seed, n, alpha)
// always yield equal datasets. Rendering uses the cached-template fast
// path (see GenerateTrainingWith / TrainingOptions for the exact legacy
// renderer).
func GenerateTraining(sim *LineSimulator, model *InstrumentModel, axis spectrum.Axis,
	n int, alpha float64, seed uint64, workers int) (*dataset.Dataset, error) {
	return GenerateTrainingWith(sim, model, axis, n, alpha, seed, workers, TrainingOptions{})
}

// MeasureEvaluation prepares evaluation data on the virtual prototype: the
// mixer delivers each setpoint (with flow error), the instrument measures
// perMixture spectra, and the labels are the actually delivered fractions.
func MeasureEvaluation(vi *VirtualInstrument, mixer *Mixer, sim *LineSimulator,
	axis spectrum.Axis, setpoints [][]float64, perMixture int) (*dataset.Dataset, error) {
	if perMixture <= 0 {
		return nil, fmt.Errorf("msim: perMixture must be positive, got %d", perMixture)
	}
	d := dataset.New(len(setpoints) * perMixture)
	d.Names = sim.Names()
	for _, sp := range setpoints {
		actual, err := mixer.Mix(sp)
		if err != nil {
			return nil, err
		}
		ideal, err := sim.Mixture(actual)
		if err != nil {
			return nil, err
		}
		spectra, err := vi.MeasureN(ideal, axis, perMixture)
		if err != nil {
			return nil, err
		}
		for _, s := range spectra {
			d.Append(Preprocess(s), actual)
		}
	}
	return d, nil
}
