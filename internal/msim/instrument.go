package msim

import (
	"fmt"
	"math"

	"specml/internal/fit"
	"specml/internal/rng"
	"specml/internal/spectrum"
)

// InstrumentModel is Tool 3: the parametric model of the portable mass
// spectrometer that converts an ideal line spectrum into a continuous
// non-ideal spectrum with the desired resolution. Its parameters are the
// "characteristics of the measurement system" the paper's Tool 2 extracts
// from real measurements: the deformation of the peaks to a curve, the
// frequency-dependent attenuation, the drift and the noise model.
type InstrumentModel struct {
	// Peak shape: FWHM grows linearly with m/z (quadrupole-like behaviour),
	// with a Lorentzian fraction Eta.
	PeakFWHM0     float64
	PeakFWHMSlope float64
	PeakEta       float64
	// Attenuation is a polynomial (increasing powers of m/z) multiplying
	// line intensities: the instrument's mass-dependent sensitivity.
	Attenuation []float64
	// Baseline is a polynomial (increasing powers of m/z) added to every
	// spectrum: the slow drift floor.
	Baseline []float64
	// Noise: additive Gaussian sigma (NoiseFloor) plus a signal-
	// proportional component (NoiseScale * intensity).
	NoiseFloor float64
	NoiseScale float64
	// MassOffset is a calibration shift of the m/z axis.
	MassOffset float64
	// Ignition-gas artifact: a peak at IgnitionMZ with area IgnitionArea
	// that appears in every measurement regardless of the sample (the peak
	// in Fig. 4 "which has no counterpart in the line spectrum").
	IgnitionMZ   float64
	IgnitionArea float64
}

// Validate reports whether the model parameters are usable.
func (m *InstrumentModel) Validate() error {
	if m.PeakFWHM0 <= 0 {
		return fmt.Errorf("msim: PeakFWHM0 must be positive, got %g", m.PeakFWHM0)
	}
	if m.PeakEta < 0 || m.PeakEta > 1 {
		return fmt.Errorf("msim: PeakEta must be in [0,1], got %g", m.PeakEta)
	}
	if m.NoiseFloor < 0 || m.NoiseScale < 0 {
		return fmt.Errorf("msim: noise parameters must be non-negative")
	}
	return nil
}

// fwhmAt returns the peak FWHM at a given m/z, floored to stay positive.
func (m *InstrumentModel) fwhmAt(mz float64) float64 {
	w := m.PeakFWHM0 + m.PeakFWHMSlope*mz
	if w < 1e-3 {
		w = 1e-3
	}
	return w
}

// attenuationAt evaluates the sensitivity multiplier at m/z, clamped to a
// small positive floor (a sensitivity can fade but not invert).
func (m *InstrumentModel) attenuationAt(mz float64) float64 {
	if len(m.Attenuation) == 0 {
		return 1
	}
	a := fit.PolyEval(m.Attenuation, mz)
	if a < 1e-4 {
		return 1e-4
	}
	return a
}

// Measure converts an ideal line spectrum into a simulated continuous
// measurement on the given axis. src supplies the measurement noise; pass
// nil for the deterministic expected spectrum (no noise, no drift jitter).
func (m *InstrumentModel) Measure(ls *spectrum.LineSpectrum, axis spectrum.Axis, src *rng.Source) (*spectrum.Spectrum, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s := spectrum.New(axis)
	peaks := make([]spectrum.Peak, 0, len(ls.Lines)+1)
	for _, l := range ls.Lines {
		if l.Intensity <= 0 {
			continue
		}
		mz := l.Position + m.MassOffset
		peaks = append(peaks, spectrum.Peak{
			Center: mz,
			Area:   l.Intensity * m.attenuationAt(l.Position),
			Width:  m.fwhmAt(mz),
			Eta:    m.PeakEta,
		})
	}
	if m.IgnitionArea > 0 {
		peaks = append(peaks, spectrum.Peak{
			Center: m.IgnitionMZ + m.MassOffset,
			Area:   m.IgnitionArea,
			Width:  m.fwhmAt(m.IgnitionMZ),
			Eta:    m.PeakEta,
		})
	}
	if err := spectrum.RenderPeaks(s, peaks, 12); err != nil {
		return nil, err
	}
	// baseline drift
	if len(m.Baseline) > 0 {
		for i := range s.Intensities {
			s.Intensities[i] += fit.PolyEval(m.Baseline, axis.Value(i))
		}
	}
	// noise
	if src != nil && (m.NoiseFloor > 0 || m.NoiseScale > 0) {
		for i, v := range s.Intensities {
			sigma := m.NoiseFloor + m.NoiseScale*math.Abs(v)
			s.Intensities[i] = v + src.Normal(0, sigma)
		}
	}
	return s, nil
}

// Clone returns a deep copy of the model.
func (m *InstrumentModel) Clone() *InstrumentModel {
	c := *m
	c.Attenuation = append([]float64(nil), m.Attenuation...)
	c.Baseline = append([]float64(nil), m.Baseline...)
	return &c
}

// DefaultTrueModel returns the ground-truth instrument parameters of the
// virtual prototype. These are the values the characterizer must recover
// from reference measurements; the experiment harness never hands them to
// the training pipeline directly.
func DefaultTrueModel() *InstrumentModel {
	return &InstrumentModel{
		PeakFWHM0:     0.35,
		PeakFWHMSlope: 0.004,
		PeakEta:       0.25,
		// sensitivity fades toward high m/z: 1.0 at 0, ~0.55 at 100
		Attenuation: []float64{1.0, -0.0045},
		// small tilted baseline
		Baseline:   []float64{0.002, 0.00001},
		NoiseFloor: 0.0015,
		NoiseScale: 0.01,
		MassOffset: 0.05,
		// helium ignition gas artifact at m/z 4
		IgnitionMZ:   4,
		IgnitionArea: 0.035,
	}
}

// VirtualInstrument stands in for the miniaturized-mass-spectrometer
// prototype: it measures *actual gas mixtures* through the true instrument
// model, contaminated by ambient humidity (the H2O ingress the paper
// blames for the O2/H2O confusion in Fig. 7) and subject to small
// session-to-session configuration drift ("changes in the configuration of
// the prototype").
type VirtualInstrument struct {
	truth   *InstrumentModel
	session *InstrumentModel

	// humidity contamination: fraction of total signal that is ambient H2O
	HumidityMean   float64
	HumidityJitter float64
	// SessionDrift scales the random parameter perturbation applied by
	// NewSession.
	SessionDrift float64
	// ScanMassJitter is the std-dev of an extra per-scan m/z displacement.
	// The simulator "only considers a static system state; fluctuations of
	// certain parameters, such as the displacement of the peaks, do not
	// affect the simulated values" — this is that fluctuation, and a main
	// driver of the simulated-vs-measured quality gap.
	ScanMassJitter float64
	// ScanGainJitter is the relative std-dev of a per-scan multiplicative
	// sensitivity wobble applied on top of the attenuation curve.
	ScanGainJitter float64

	water *spectrum.LineSpectrum
	src   *rng.Source
	drift *DriftSchedule
	scans int
}

// NewVirtualInstrument returns a prototype with the given ground truth.
// Pass nil to use DefaultTrueModel. The seed drives all stochastic
// behaviour of the device.
func NewVirtualInstrument(truth *InstrumentModel, seed uint64) *VirtualInstrument {
	if truth == nil {
		truth = DefaultTrueModel()
	}
	w, err := ByName("H2O")
	if err != nil {
		panic("msim: library must contain H2O") // build-time invariant
	}
	v := &VirtualInstrument{
		truth:          truth.Clone(),
		HumidityMean:   0.015,
		HumidityJitter: 0.006,
		SessionDrift:   0.03,
		ScanMassJitter: 0.10,
		ScanGainJitter: 0.05,
		water:          w.Lines(),
		src:            rng.New(seed),
	}
	v.session = truth.Clone()
	return v
}

// Truth exposes the ground-truth model for test assertions only.
func (v *VirtualInstrument) Truth() *InstrumentModel { return v.truth }

// NewSession re-randomizes the prototype configuration: each continuous
// parameter is perturbed by a relative amount drawn from
// N(0, SessionDrift). Reference measurements and later evaluation
// measurements typically come from different sessions, which is one source
// of the simulated-vs-measured quality gap.
func (v *VirtualInstrument) NewSession() {
	p := v.truth.Clone()
	jitter := func(x float64) float64 {
		return x * (1 + v.src.Normal(0, v.SessionDrift))
	}
	p.PeakFWHM0 = jitter(p.PeakFWHM0)
	p.PeakFWHMSlope = jitter(p.PeakFWHMSlope)
	for i := range p.Attenuation {
		p.Attenuation[i] = jitter(p.Attenuation[i])
	}
	for i := range p.Baseline {
		p.Baseline[i] = jitter(p.Baseline[i])
	}
	p.NoiseFloor = math.Abs(jitter(p.NoiseFloor))
	p.NoiseScale = math.Abs(jitter(p.NoiseScale))
	p.MassOffset += v.src.Normal(0, 0.01)
	p.IgnitionArea = math.Abs(jitter(p.IgnitionArea))
	v.session = p
}

// Measure records one spectrum of the actual mixture described by the
// ideal line spectrum ls. Ambient humidity is mixed in before measurement:
// the sample that reaches the ion source is (1-h)*sample + h*H2O.
func (v *VirtualInstrument) Measure(ls *spectrum.LineSpectrum, axis spectrum.Axis) (*spectrum.Spectrum, error) {
	h := v.HumidityMean + v.src.Normal(0, v.HumidityJitter)
	if h < 0 {
		h = 0
	}
	contaminated, err := spectrum.SuperposeLines(
		[]float64{1 - h, h},
		[]*spectrum.LineSpectrum{ls, v.water},
	)
	if err != nil {
		return nil, err
	}
	// per-scan fluctuations the static simulator cannot capture
	v.scans++
	scan := v.session
	if v.ScanMassJitter > 0 || v.ScanGainJitter > 0 {
		c := v.session.Clone()
		c.MassOffset += v.src.Normal(0, v.ScanMassJitter)
		if v.ScanGainJitter > 0 {
			// a uniform gain change would cancel under sum-normalization,
			// so the wobble tilts the sensitivity curve: the non-constant
			// attenuation terms fluctuate relative to the constant one
			wobble := 1 + v.src.Normal(0, v.ScanGainJitter)
			if wobble < 0.1 {
				wobble = 0.1
			}
			for i := 1; i < len(c.Attenuation); i++ {
				c.Attenuation[i] *= wobble
			}
		}
		scan = c
	}
	// Scheduled drift is applied after the stochastic jitter and draws
	// nothing from the stream: the same seed yields the same noise whether
	// or not the device is drifting.
	if v.drift.active(v.scans) {
		if scan == v.session {
			scan = v.session.Clone()
		}
		v.drift.apply(scan, v.scans)
	}
	return scan.Measure(contaminated, axis, v.src)
}

// MeasureN records n repeated spectra of the same mixture (one
// measurement series).
func (v *VirtualInstrument) MeasureN(ls *spectrum.LineSpectrum, axis spectrum.Axis, n int) ([]*spectrum.Spectrum, error) {
	out := make([]*spectrum.Spectrum, n)
	for i := range out {
		s, err := v.Measure(ls, axis)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// Mixer models the mass-flow-controller rig used to prepare evaluation
// mixtures "with controlled concentrations of compounds": the delivered
// fractions deviate from the setpoints by a small relative flow error.
type Mixer struct {
	// FlowError is the relative standard deviation of each controller
	// (typical MFC accuracy is a fraction of a percent).
	FlowError float64
	src       *rng.Source
}

// NewMixer returns a mixer with the given relative flow error.
func NewMixer(flowError float64, seed uint64) *Mixer {
	return &Mixer{FlowError: flowError, src: rng.New(seed)}
}

// Mix returns the actually delivered fractions for the given setpoints
// (renormalized to sum to 1).
func (m *Mixer) Mix(setpoints []float64) ([]float64, error) {
	sum := 0.0
	out := make([]float64, len(setpoints))
	for i, sp := range setpoints {
		if sp < 0 {
			return nil, fmt.Errorf("msim: negative setpoint %g", sp)
		}
		f := sp * (1 + m.src.Normal(0, m.FlowError))
		if f < 0 {
			f = 0
		}
		out[i] = f
		sum += f
	}
	if sum == 0 {
		return nil, fmt.Errorf("msim: all setpoints zero")
	}
	for i := range out {
		out[i] /= sum
	}
	return out, nil
}
