// Package msim implements the paper's mass-spectrometry toolchain:
//
//	Tool 1 — an ideal line-spectra simulator that superposes known
//	         electron-ionization fragmentation patterns of the compounds
//	         in a mixture (LineSimulator);
//	Tool 2 — a characterizer that estimates a portable-instrument model
//	         (peak shape, mass-dependent attenuation, baseline drift and
//	         noise) from a limited number of reference measurements
//	         (Characterizer);
//	Tool 3 — the instrument simulator itself, which turns an ideal line
//	         spectrum into a continuous non-ideal spectrum at an arbitrary
//	         m/z resolution (InstrumentModel.Measure);
//
// plus the stand-ins for the laboratory hardware: VirtualInstrument (the
// miniaturized-mass-spectrometer prototype, with impurities and
// session-to-session configuration drift the toolchain does not know
// about) and Mixer (the mass-flow-controller gas rig used to prepare
// evaluation mixtures with known composition).
package msim

import (
	"fmt"

	"specml/internal/spectrum"
)

// Compound is a chemical species with its ideal electron-ionization
// fragmentation pattern: relative line intensities normalized so the sum
// over all fragments is 1.
type Compound struct {
	Name    string
	Formula string
	// Fragments is the EI stick pattern (m/z, relative intensity). The
	// intensities need not be normalized; Lines() normalizes.
	Fragments []spectrum.Line
}

// Lines returns the compound's line spectrum with total intensity 1, so
// superposition weights correspond directly to molar fractions.
func (c *Compound) Lines() *spectrum.LineSpectrum {
	ls := &spectrum.LineSpectrum{Lines: make([]spectrum.Line, len(c.Fragments))}
	copy(ls.Lines, c.Fragments)
	total := ls.TotalIntensity()
	if total > 0 {
		ls.Scale(1 / total)
	}
	return ls
}

// Library is the built-in compound library with approximate EI
// fragmentation patterns of the permanent gases and light hydrocarbons a
// miniaturized process mass spectrometer sees. Intensities are relative
// (base peak 100) and follow the qualitative shape of published EI
// spectra; exact values are irrelevant to the toolchain, which only needs
// internally consistent ideal patterns.
var Library = []Compound{
	{Name: "H2", Formula: "H2", Fragments: []spectrum.Line{
		{Position: 2, Intensity: 100}, {Position: 1, Intensity: 2},
	}},
	{Name: "He", Formula: "He", Fragments: []spectrum.Line{
		{Position: 4, Intensity: 100},
	}},
	{Name: "CH4", Formula: "CH4", Fragments: []spectrum.Line{
		{Position: 16, Intensity: 100}, {Position: 15, Intensity: 85},
		{Position: 14, Intensity: 16}, {Position: 13, Intensity: 8},
		{Position: 12, Intensity: 2.6}, {Position: 17, Intensity: 1.2},
	}},
	{Name: "H2O", Formula: "H2O", Fragments: []spectrum.Line{
		{Position: 18, Intensity: 100}, {Position: 17, Intensity: 21},
		{Position: 16, Intensity: 1},
	}},
	{Name: "N2", Formula: "N2", Fragments: []spectrum.Line{
		{Position: 28, Intensity: 100}, {Position: 14, Intensity: 7.2},
		{Position: 29, Intensity: 0.7},
	}},
	{Name: "O2", Formula: "O2", Fragments: []spectrum.Line{
		{Position: 32, Intensity: 100}, {Position: 16, Intensity: 11},
	}},
	{Name: "Ar", Formula: "Ar", Fragments: []spectrum.Line{
		{Position: 40, Intensity: 100}, {Position: 20, Intensity: 10},
	}},
	{Name: "CO2", Formula: "CO2", Fragments: []spectrum.Line{
		{Position: 44, Intensity: 100}, {Position: 28, Intensity: 9.8},
		{Position: 16, Intensity: 8.5}, {Position: 12, Intensity: 8.7},
		{Position: 22, Intensity: 1.9},
	}},
	{Name: "CO", Formula: "CO", Fragments: []spectrum.Line{
		{Position: 28, Intensity: 100}, {Position: 12, Intensity: 4.5},
		{Position: 16, Intensity: 1.7}, {Position: 29, Intensity: 1.2},
	}},
	{Name: "NH3", Formula: "NH3", Fragments: []spectrum.Line{
		{Position: 17, Intensity: 100}, {Position: 16, Intensity: 80},
		{Position: 15, Intensity: 7.5}, {Position: 14, Intensity: 2},
	}},
	{Name: "C2H4", Formula: "C2H4", Fragments: []spectrum.Line{
		{Position: 28, Intensity: 100}, {Position: 27, Intensity: 62},
		{Position: 26, Intensity: 53}, {Position: 25, Intensity: 12},
		{Position: 24, Intensity: 4},
	}},
	{Name: "C2H6", Formula: "C2H6", Fragments: []spectrum.Line{
		{Position: 28, Intensity: 100}, {Position: 27, Intensity: 33},
		{Position: 30, Intensity: 26}, {Position: 29, Intensity: 21},
		{Position: 26, Intensity: 23}, {Position: 25, Intensity: 3.5},
		{Position: 15, Intensity: 4.4},
	}},
	{Name: "C3H8", Formula: "C3H8", Fragments: []spectrum.Line{
		{Position: 29, Intensity: 100}, {Position: 28, Intensity: 59},
		{Position: 44, Intensity: 27}, {Position: 27, Intensity: 39},
		{Position: 43, Intensity: 23}, {Position: 39, Intensity: 16},
		{Position: 41, Intensity: 13},
	}},
	{Name: "Ne", Formula: "Ne", Fragments: []spectrum.Line{
		{Position: 20, Intensity: 100}, {Position: 22, Intensity: 9.9},
	}},
}

// ByName returns the library compound with the given name.
func ByName(name string) (*Compound, error) {
	for i := range Library {
		if Library[i].Name == name {
			return &Library[i], nil
		}
	}
	return nil, fmt.Errorf("msim: unknown compound %q", name)
}

// Compounds resolves a list of names against the library.
func Compounds(names ...string) ([]*Compound, error) {
	out := make([]*Compound, len(names))
	for i, n := range names {
		c, err := ByName(n)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// DefaultTask is the measurement task used throughout the experiments: the
// eight substances whose concentrations the network predicts. The paper's
// prototype monitored a comparable permanent-gas panel (Fig. 7 shows
// species including O2 and the spurious H2O channel).
var DefaultTask = []string{"H2", "CH4", "H2O", "N2", "O2", "Ar", "CO2", "C2H6"}
