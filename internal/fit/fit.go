// Package fit implements the numerical-optimization substrate used by the
// Indirect Hard Modelling analyzer and the instrument characterizer:
// dense Cholesky solves, linear least squares via normal equations, and a
// Levenberg-Marquardt nonlinear least-squares solver with finite-difference
// Jacobians.
package fit

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system is (numerically) singular.
var ErrSingular = errors.New("fit: singular system")

// ErrNoProgress is returned when Levenberg-Marquardt cannot reduce the
// cost any further before reaching the convergence tolerance.
var ErrNoProgress = errors.New("fit: no progress")

// CholeskySolve solves A*x = b for symmetric positive-definite A (n x n,
// row-major). A and b are not modified.
func CholeskySolve(a []float64, b []float64, n int) ([]float64, error) {
	if len(a) != n*n || len(b) != n {
		return nil, fmt.Errorf("fit: CholeskySolve dimension mismatch")
	}
	// Factor A = L*Lᵀ.
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrSingular
				}
				l[i*n+j] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	// Forward substitution L*y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * y[k]
		}
		y[i] = sum / l[i*n+i]
	}
	// Back substitution Lᵀ*x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return x, nil
}

// LinearLeastSquares solves min_x ||A*x - b||² for A (m x n, row-major,
// m >= n) via the normal equations with a tiny Tikhonov ridge for
// numerical robustness.
func LinearLeastSquares(a []float64, b []float64, m, n int) ([]float64, error) {
	if len(a) != m*n || len(b) != m {
		return nil, fmt.Errorf("fit: LinearLeastSquares dimension mismatch")
	}
	if m < n {
		return nil, fmt.Errorf("fit: underdetermined system (%d rows, %d cols)", m, n)
	}
	ata := make([]float64, n*n)
	atb := make([]float64, n)
	for r := 0; r < m; r++ {
		row := a[r*n : (r+1)*n]
		for i := 0; i < n; i++ {
			if row[i] == 0 {
				continue
			}
			atb[i] += row[i] * b[r]
			for j := i; j < n; j++ {
				ata[i*n+j] += row[i] * row[j]
			}
		}
	}
	// mirror and add ridge
	maxDiag := 0.0
	for i := 0; i < n; i++ {
		if d := ata[i*n+i]; d > maxDiag {
			maxDiag = d
		}
	}
	ridge := 1e-12 * (maxDiag + 1)
	for i := 0; i < n; i++ {
		ata[i*n+i] += ridge
		for j := i + 1; j < n; j++ {
			ata[j*n+i] = ata[i*n+j]
		}
	}
	return CholeskySolve(ata, atb, n)
}

// ResidualFunc fills out with the m residuals at params. len(out) is the
// problem's residual count; implementations must not retain out.
type ResidualFunc func(params []float64, out []float64)

// Problem is a nonlinear least-squares problem: minimize
// 0.5*||r(params)||² over params.
type Problem struct {
	// Residuals evaluates the residual vector.
	Residuals ResidualFunc
	// NumResiduals is the length of the residual vector (m).
	NumResiduals int
	// Lower and Upper, when non-nil, give per-parameter box constraints
	// enforced by projection after every accepted step.
	Lower, Upper []float64
}

// Options configures LevenbergMarquardt.
type Options struct {
	MaxIterations int     // default 100
	InitialLambda float64 // default 1e-3
	CostTol       float64 // relative cost-decrease tolerance, default 1e-10
	StepTol       float64 // parameter-step tolerance, default 1e-10
	FDStep        float64 // finite-difference step, default 1e-6 (relative)
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.InitialLambda <= 0 {
		o.InitialLambda = 1e-3
	}
	if o.CostTol <= 0 {
		o.CostTol = 1e-10
	}
	if o.StepTol <= 0 {
		o.StepTol = 1e-10
	}
	if o.FDStep <= 0 {
		o.FDStep = 1e-6
	}
	return o
}

// Result reports the outcome of a Levenberg-Marquardt run.
type Result struct {
	Params     []float64
	Cost       float64 // 0.5 * ||r||²
	Iterations int
	Converged  bool
}

// LevenbergMarquardt minimizes 0.5*||r(params)||² starting at initial.
// The Jacobian is approximated by forward finite differences. When box
// constraints are supplied, parameters are projected onto the box after
// each accepted step (projected LM), which is sufficient for the
// well-conditioned spectral fits in this repository.
func LevenbergMarquardt(p Problem, initial []float64, opts Options) (Result, error) {
	o := opts.withDefaults()
	n := len(initial)
	m := p.NumResiduals
	if m == 0 || n == 0 {
		return Result{}, fmt.Errorf("fit: empty problem (m=%d, n=%d)", m, n)
	}
	if m < n {
		return Result{}, fmt.Errorf("fit: fewer residuals (%d) than parameters (%d)", m, n)
	}
	if (p.Lower != nil && len(p.Lower) != n) || (p.Upper != nil && len(p.Upper) != n) {
		return Result{}, fmt.Errorf("fit: bounds length mismatch")
	}

	params := make([]float64, n)
	copy(params, initial)
	project(params, p.Lower, p.Upper)

	r := make([]float64, m)
	rTrial := make([]float64, m)
	jac := make([]float64, m*n) // row-major, m rows of n partials
	trial := make([]float64, n)
	pPerturbed := make([]float64, n)

	p.Residuals(params, r)
	cost := halfNorm2(r)
	lambda := o.InitialLambda

	res := Result{Params: params, Cost: cost}
	for iter := 0; iter < o.MaxIterations; iter++ {
		res.Iterations = iter + 1
		// Finite-difference Jacobian: column j = (r(p+h*e_j)-r(p))/h.
		for j := 0; j < n; j++ {
			h := o.FDStep * (math.Abs(params[j]) + o.FDStep)
			copy(pPerturbed, params)
			pPerturbed[j] += h
			p.Residuals(pPerturbed, rTrial)
			inv := 1 / h
			for i := 0; i < m; i++ {
				jac[i*n+j] = (rTrial[i] - r[i]) * inv
			}
		}
		// Normal equations: (JᵀJ + λ diag(JᵀJ)) δ = -Jᵀ r.
		jtj := make([]float64, n*n)
		jtr := make([]float64, n)
		for i := 0; i < m; i++ {
			row := jac[i*n : (i+1)*n]
			ri := r[i]
			for a := 0; a < n; a++ {
				if row[a] == 0 {
					continue
				}
				jtr[a] += row[a] * ri
				for b := a; b < n; b++ {
					jtj[a*n+b] += row[a] * row[b]
				}
			}
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				jtj[b*n+a] = jtj[a*n+b]
			}
		}

		improved := false
		for attempt := 0; attempt < 20; attempt++ {
			damped := make([]float64, n*n)
			copy(damped, jtj)
			for a := 0; a < n; a++ {
				d := jtj[a*n+a]
				if d == 0 {
					d = 1e-12
				}
				damped[a*n+a] += lambda * d
			}
			neg := make([]float64, n)
			for a := range neg {
				neg[a] = -jtr[a]
			}
			delta, err := CholeskySolve(damped, neg, n)
			if err != nil {
				lambda *= 10
				continue
			}
			for a := range trial {
				trial[a] = params[a] + delta[a]
			}
			project(trial, p.Lower, p.Upper)
			p.Residuals(trial, rTrial)
			trialCost := halfNorm2(rTrial)
			if trialCost < cost {
				stepNorm := 0.0
				for a := range delta {
					stepNorm += delta[a] * delta[a]
				}
				relDecrease := (cost - trialCost) / (cost + 1e-300)
				copy(params, trial)
				copy(r, rTrial)
				prevCost := cost
				cost = trialCost
				lambda = math.Max(lambda/10, 1e-12)
				improved = true
				res.Cost = cost
				if relDecrease < o.CostTol || math.Sqrt(stepNorm) < o.StepTol || prevCost == cost {
					res.Converged = true
					return res, nil
				}
				break
			}
			lambda *= 10
		}
		if !improved {
			// Cannot find a descent step: either we are at a (local)
			// minimum, or the problem is degenerate. Treat a tiny gradient
			// as convergence.
			gnorm := 0.0
			for _, g := range jtr {
				gnorm += g * g
			}
			if math.Sqrt(gnorm) < 1e-8*(1+cost) {
				res.Converged = true
				return res, nil
			}
			return res, ErrNoProgress
		}
	}
	return res, nil
}

func halfNorm2(r []float64) float64 {
	s := 0.0
	for _, v := range r {
		s += v * v
	}
	return 0.5 * s
}

func project(params, lower, upper []float64) {
	if lower != nil {
		for i, lo := range lower {
			if params[i] < lo {
				params[i] = lo
			}
		}
	}
	if upper != nil {
		for i, hi := range upper {
			if params[i] > hi {
				params[i] = hi
			}
		}
	}
}

// Polyfit fits a polynomial of the given degree to (xs, ys) by linear
// least squares and returns the coefficients in increasing-power order
// (c0 + c1*x + ...). Used by the instrument characterizer to model the
// frequency-dependent attenuation and baseline drift.
func Polyfit(xs, ys []float64, degree int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("fit: Polyfit length mismatch")
	}
	if degree < 0 {
		return nil, fmt.Errorf("fit: negative degree")
	}
	m, n := len(xs), degree+1
	if m < n {
		return nil, fmt.Errorf("fit: need at least %d points for degree %d, got %d", n, degree, m)
	}
	a := make([]float64, m*n)
	for r, x := range xs {
		pow := 1.0
		for c := 0; c < n; c++ {
			a[r*n+c] = pow
			pow *= x
		}
	}
	return LinearLeastSquares(a, ys, m, n)
}

// PolyEval evaluates a polynomial with increasing-power coefficients at x.
func PolyEval(coeffs []float64, x float64) float64 {
	v := 0.0
	for i := len(coeffs) - 1; i >= 0; i-- {
		v = v*x + coeffs[i]
	}
	return v
}
