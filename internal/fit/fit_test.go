package fit

import (
	"math"
	"testing"
	"testing/quick"

	"specml/internal/rng"
)

func TestCholeskySolveIdentity(t *testing.T) {
	a := []float64{1, 0, 0, 0, 1, 0, 0, 0, 1}
	b := []float64{3, -2, 5}
	x, err := CholeskySolve(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-12 {
			t.Fatalf("identity solve wrong: %v", x)
		}
	}
}

func TestCholeskySolveKnown(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 8] -> x = [7/4, 3/2]
	a := []float64{4, 2, 2, 3}
	b := []float64{10, 8}
	x, err := CholeskySolve(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1.75) > 1e-12 || math.Abs(x[1]-1.5) > 1e-12 {
		t.Fatalf("solve = %v, want [1.75 1.5]", x)
	}
}

func TestCholeskySingular(t *testing.T) {
	a := []float64{1, 1, 1, 1} // rank 1
	if _, err := CholeskySolve(a, []float64{1, 1}, 2); err == nil {
		t.Fatal("singular matrix must error")
	}
}

// Property: CholeskySolve inverts SPD matrices built as MᵀM + I.
func TestCholeskySolveProperty(t *testing.T) {
	src := rng.New(17)
	f := func(nRaw uint8) bool {
		n := int(nRaw%5) + 1
		mMat := make([]float64, n*n)
		for i := range mMat {
			mMat[i] = src.Normal(0, 1)
		}
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += mMat[k*n+i] * mMat[k*n+j]
				}
				a[i*n+j] = s
			}
			a[i*n+i] += 1
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = src.Normal(0, 2)
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a[i*n+j] * want[j]
			}
		}
		x, err := CholeskySolve(a, b, n)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent: y = 2x + 1 at 5 points.
	xs := []float64{0, 1, 2, 3, 4}
	m, n := len(xs), 2
	a := make([]float64, m*n)
	b := make([]float64, m)
	for i, x := range xs {
		a[i*n] = 1
		a[i*n+1] = x
		b[i] = 2*x + 1
	}
	c, err := LinearLeastSquares(a, b, m, n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]-1) > 1e-9 || math.Abs(c[1]-2) > 1e-9 {
		t.Fatalf("coeffs = %v, want [1 2]", c)
	}
}

func TestLinearLeastSquaresUnderdetermined(t *testing.T) {
	if _, err := LinearLeastSquares(make([]float64, 2), make([]float64, 1), 1, 2); err == nil {
		t.Fatal("underdetermined system must error")
	}
}

func TestPolyfitRecoversCoefficients(t *testing.T) {
	want := []float64{0.5, -2, 0.25}
	xs := make([]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		xs[i] = float64(i) / 3
		ys[i] = PolyEval(want, xs[i])
	}
	got, err := Polyfit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("coeff %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPolyfitNoisyIsClose(t *testing.T) {
	src := rng.New(2)
	want := []float64{1, 3}
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = src.Uniform(0, 10)
		ys[i] = PolyEval(want, xs[i]) + src.Normal(0, 0.1)
	}
	got, err := Polyfit(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-1) > 0.05 || math.Abs(got[1]-3) > 0.02 {
		t.Fatalf("noisy fit = %v, want ~[1 3]", got)
	}
}

func TestPolyfitErrors(t *testing.T) {
	if _, err := Polyfit([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := Polyfit([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Fatal("negative degree must error")
	}
	if _, err := Polyfit([]float64{1}, []float64{1}, 3); err == nil {
		t.Fatal("too few points must error")
	}
}

func TestPolyEvalHorner(t *testing.T) {
	// 2 + 3x + x² at x=2 -> 12
	if got := PolyEval([]float64{2, 3, 1}, 2); got != 12 {
		t.Fatalf("PolyEval = %v, want 12", got)
	}
	if got := PolyEval(nil, 5); got != 0 {
		t.Fatalf("empty PolyEval = %v, want 0", got)
	}
}

func TestLMQuadraticBowl(t *testing.T) {
	// r = [p0-3, p1+1] -> minimum at (3,-1), cost 0.
	prob := Problem{
		NumResiduals: 2,
		Residuals: func(p, out []float64) {
			out[0] = p[0] - 3
			out[1] = p[1] + 1
		},
	}
	res, err := LevenbergMarquardt(prob, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-3) > 1e-5 || math.Abs(res.Params[1]+1) > 1e-5 {
		t.Fatalf("LM params = %v, want [3 -1]", res.Params)
	}
	if res.Cost > 1e-10 {
		t.Fatalf("LM cost = %v, want ~0", res.Cost)
	}
}

func TestLMExponentialFit(t *testing.T) {
	// Fit y = a*exp(-b*x) to noise-free data.
	const aTrue, bTrue = 2.5, 0.7
	xs := make([]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		xs[i] = float64(i) * 0.2
		ys[i] = aTrue * math.Exp(-bTrue*xs[i])
	}
	prob := Problem{
		NumResiduals: len(xs),
		Residuals: func(p, out []float64) {
			for i, x := range xs {
				out[i] = p[0]*math.Exp(-p[1]*x) - ys[i]
			}
		},
	}
	res, err := LevenbergMarquardt(prob, []float64{1, 0.1}, Options{MaxIterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-aTrue) > 1e-4 || math.Abs(res.Params[1]-bTrue) > 1e-4 {
		t.Fatalf("LM exponential fit = %v, want [%v %v]", res.Params, aTrue, bTrue)
	}
}

func TestLMRosenbrockResiduals(t *testing.T) {
	// Rosenbrock as least squares: r = [10(y-x²), 1-x]; min at (1,1).
	prob := Problem{
		NumResiduals: 2,
		Residuals: func(p, out []float64) {
			out[0] = 10 * (p[1] - p[0]*p[0])
			out[1] = 1 - p[0]
		},
	}
	res, err := LevenbergMarquardt(prob, []float64{-1.2, 1}, Options{MaxIterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-1) > 1e-4 || math.Abs(res.Params[1]-1) > 1e-4 {
		t.Fatalf("Rosenbrock solution = %v, want [1 1]", res.Params)
	}
}

func TestLMRespectsBounds(t *testing.T) {
	// Unconstrained minimum at p0 = -2; constrain p0 >= 0.
	prob := Problem{
		NumResiduals: 2,
		Residuals: func(p, out []float64) {
			out[0] = p[0] + 2
			out[1] = 0.1 * p[0] // keeps m >= n
		},
		Lower: []float64{0},
		Upper: []float64{10},
	}
	res, err := LevenbergMarquardt(prob, []float64{5}, Options{})
	if err != nil && err != ErrNoProgress {
		t.Fatal(err)
	}
	if res.Params[0] < 0 {
		t.Fatalf("bound violated: %v", res.Params)
	}
	if res.Params[0] > 1e-6 {
		t.Fatalf("constrained solution = %v, want 0", res.Params[0])
	}
}

func TestLMInputValidation(t *testing.T) {
	if _, err := LevenbergMarquardt(Problem{NumResiduals: 0}, []float64{1}, Options{}); err == nil {
		t.Fatal("empty problem must error")
	}
	prob := Problem{NumResiduals: 1, Residuals: func(p, out []float64) { out[0] = p[0] }}
	if _, err := LevenbergMarquardt(prob, []float64{1, 2}, Options{}); err == nil {
		t.Fatal("m < n must error")
	}
	prob2 := Problem{
		NumResiduals: 2,
		Residuals:    func(p, out []float64) { out[0], out[1] = p[0], p[0] },
		Lower:        []float64{0, 0},
	}
	if _, err := LevenbergMarquardt(prob2, []float64{1}, Options{}); err == nil {
		t.Fatal("bounds length mismatch must error")
	}
}

func BenchmarkLMExponential(b *testing.B) {
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i) * 0.1
		ys[i] = 2 * math.Exp(-0.5*xs[i])
	}
	prob := Problem{
		NumResiduals: len(xs),
		Residuals: func(p, out []float64) {
			for i, x := range xs {
				out[i] = p[0]*math.Exp(-p[1]*x) - ys[i]
			}
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LevenbergMarquardt(prob, []float64{1, 0.1}, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
