package platform

import (
	"math"
	"testing"

	"specml/internal/nn"
	"specml/internal/rng"
	"specml/internal/toolflow"
)

func table1Model(t testing.TB) *nn.Model {
	t.Helper()
	spec, err := toolflow.MSTable1Spec(199, 8, "selu", "softmax", "softmax", 1, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCountModelTable1(t *testing.T) {
	m := table1Model(t)
	ops, err := CountModel(m)
	if err != nil {
		t.Fatal(err)
	}
	// hand-computed MAC budget: conv1 180*25*20 + conv2 54*25*500 +
	// conv3 20*25*375 + conv4 2*15*375 + dense 8*30 = ~964k MACs
	macs := int64(180*25*20 + 54*25*500 + 20*25*375 + 2*15*375 + 8*30)
	wantFLOPs := 2 * macs
	// activations add a small overhead; total must be close to the MAC count
	if ops.FLOPs < wantFLOPs || ops.FLOPs > wantFLOPs+200000 {
		t.Fatalf("FLOPs = %d, want about %d", ops.FLOPs, wantFLOPs)
	}
	// parameter bytes dominate traffic: ~28.3k params * 4B
	if ops.Bytes < 4*28000 {
		t.Fatalf("Bytes = %d, too small", ops.Bytes)
	}
}

func TestCountModelDense(t *testing.T) {
	m := nn.NewModel().Add(nn.NewDense(10))
	if err := m.Build(rng.New(1), 20); err != nil {
		t.Fatal(err)
	}
	ops, err := CountModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if ops.FLOPs != 2*20*10 {
		t.Fatalf("dense FLOPs = %d, want 400", ops.FLOPs)
	}
}

func TestCountModelLSTM(t *testing.T) {
	m := nn.NewModel().Add(nn.NewLSTM(32)).Add(nn.NewDense(4))
	if err := m.Build(rng.New(1), 5, 1700); err != nil {
		t.Fatal(err)
	}
	ops, err := CountModel(m)
	if err != nil {
		t.Fatal(err)
	}
	// 5 steps * (2*4*32*(1700+32) + 10*32) plus the dense head
	want := int64(5*(2*4*32*(1700+32)+10*32) + 2*32*4)
	if math.Abs(float64(ops.FLOPs-want)) > 0.02*float64(want) {
		t.Fatalf("LSTM FLOPs = %d, want ~%d", ops.FLOPs, want)
	}
}

func TestRunValidation(t *testing.T) {
	ops := OpCount{FLOPs: 1e6, Bytes: 1e5}
	if _, err := JetsonNanoCPU.Run(ops, 0); err == nil {
		t.Fatal("zero samples must error")
	}
	bad := Profile{}
	if _, err := bad.Run(ops, 1); err == nil {
		t.Fatal("invalid profile must error")
	}
}

func TestRunScalesLinearly(t *testing.T) {
	ops := OpCount{FLOPs: 2e6, Bytes: 2e5}
	e1, err := JetsonNanoGPU.Run(ops, 100)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := JetsonNanoGPU.Run(ops, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e2.TimeSeconds/e1.TimeSeconds-2) > 1e-9 {
		t.Fatalf("time not linear in samples: %v vs %v", e1.TimeSeconds, e2.TimeSeconds)
	}
	if e1.EnergyJoules <= 0 || math.Abs(e1.EnergyJoules-e1.TimeSeconds*e1.PowerWatts) > 1e-9 {
		t.Fatal("energy must be time x power")
	}
}

// The Table-2 reproduction: run the Table-1 network 21600 times on all
// four platforms and check the paper's qualitative relationships.
func TestTable2Relationships(t *testing.T) {
	m := table1Model(t)
	ops, err := CountModel(m)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 21600
	est := map[string]Estimate{}
	for _, p := range Table2Profiles() {
		e, err := p.Run(ops, samples)
		if err != nil {
			t.Fatal(err)
		}
		est[p.Name+"/"+p.Device] = e
	}
	nanoCPU := est["Jetson Nano/cpu"]
	nanoGPU := est["Jetson Nano/gpu"]
	tx2CPU := est["Jetson TX2/cpu"]
	tx2GPU := est["Jetson TX2/gpu"]

	// GPU speedup 4.8-7.1x (paper), allow a modest tolerance band
	for _, pair := range []struct {
		name     string
		cpu, gpu Estimate
	}{{"nano", nanoCPU, nanoGPU}, {"tx2", tx2CPU, tx2GPU}} {
		sp := pair.cpu.TimeSeconds / pair.gpu.TimeSeconds
		if sp < 3.5 || sp > 9 {
			t.Fatalf("%s GPU speedup %v outside the paper's 4.8-7.1x envelope", pair.name, sp)
		}
		er := pair.cpu.EnergyJoules / pair.gpu.EnergyJoules
		if er < 3.5 || er > 8 {
			t.Fatalf("%s GPU energy ratio %v outside the paper's 5.0-6.3x envelope", pair.name, er)
		}
	}
	// TX2 GPU about 2.1x Nano GPU
	if r := nanoGPU.TimeSeconds / tx2GPU.TimeSeconds; r < 1.6 || r > 2.6 {
		t.Fatalf("TX2-GPU vs Nano-GPU ratio %v, paper reports ~2.1x", r)
	}
	// absolute times within a factor ~1.6 of the published cells
	published := map[string]float64{
		"Jetson Nano/cpu": 30.19, "Jetson Nano/gpu": 6.34,
		"Jetson TX2/cpu": 21.64, "Jetson TX2/gpu": 3.03,
	}
	for k, want := range published {
		got := est[k].TimeSeconds
		if got < want/1.6 || got > want*1.6 {
			t.Fatalf("%s time %v too far from published %v", k, got, want)
		}
	}
	// power envelope ~5-7 W
	for k, e := range est {
		if e.PowerWatts < 4 || e.PowerWatts > 7 {
			t.Fatalf("%s power %v outside envelope", k, e.PowerWatts)
		}
	}
}

func TestCountModelBeforeBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := nn.NewModel().Add(nn.NewDense(3))
	_, _ = CountModel(m)
}
