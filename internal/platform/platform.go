// Package platform models the embedded inference platforms of the paper's
// Table 2 (NVIDIA Jetson Nano and Jetson TX2, each with a CPU and a GPU
// execution unit). Since a reproduction has no access to the physical
// boards, the package provides an analytic cost model: per-layer
// floating-point operation and memory-traffic counts of a network are
// combined with a platform profile (sustained throughput, memory bandwidth,
// power envelope, per-batch overhead) into execution-time, power and
// energy estimates.
//
// The four built-in profiles are calibrated to the published envelope of
// Table 2, so the *relationships* the paper reports — GPU 4.8-7.1x faster
// than CPU, 5.0-6.3x lower energy, TX2-GPU about 2.1x Nano-GPU, ~5-7 W
// power — emerge from the model rather than being hard-coded per cell.
package platform

import (
	"fmt"

	"specml/internal/nn"
)

// OpCount summarizes the work of one network inference.
type OpCount struct {
	FLOPs int64 // multiply-add counted as 2 FLOPs
	Bytes int64 // parameter + activation traffic in bytes (float32 deployment)
}

// Add accumulates another count.
func (o *OpCount) Add(p OpCount) {
	o.FLOPs += p.FLOPs
	o.Bytes += p.Bytes
}

// CountModel derives the per-inference operation count of a built model
// from its layer specs and shapes.
func CountModel(m *nn.Model) (OpCount, error) {
	shapes := m.LayerOutputShapes()
	layers := m.Layers()
	in := m.InputShape()
	var total OpCount
	for i, l := range layers {
		out := shapes[i]
		c, err := countLayer(l, in, out)
		if err != nil {
			return OpCount{}, fmt.Errorf("platform: layer %d (%s): %w", i, l.Kind(), err)
		}
		total.Add(c)
		in = out
	}
	// input and output activation traffic
	total.Bytes += int64(4 * (shapeLen(m.InputShape()) + shapeLen(m.OutputShape())))
	return total, nil
}

func shapeLen(s []int) int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

func countLayer(l nn.Layer, in, out []int) (OpCount, error) {
	spec := l.Spec()
	nIn := int64(shapeLen(in))
	nOut := int64(shapeLen(out))
	var params int64
	for _, p := range l.Params() {
		params += int64(len(p.Data))
	}
	c := OpCount{Bytes: 4 * (params + nOut)}
	switch spec.Type {
	case "dense":
		c.FLOPs = 2 * nIn * nOut
	case "conv1d", "locallyconnected1d":
		// each output element consumes kernel*inChannels MACs
		inCh := 1
		if len(in) == 2 {
			inCh = in[1]
		}
		c.FLOPs = 2 * nOut * int64(spec.Kernel*inCh)
	case "lstm":
		// per timestep: 4 gates of (features+units) MACs per unit, plus
		// elementwise cell updates
		if len(in) != 2 {
			return OpCount{}, fmt.Errorf("lstm input shape %v", in)
		}
		steps, feats := int64(in[0]), int64(in[1])
		units := int64(spec.Units)
		perStep := 2*4*units*(feats+units) + 10*units
		c.FLOPs = steps * perStep
	case "activation", "softmax":
		c.FLOPs = 6 * nOut // transcendental-ish pointwise cost
	case "maxpool1d", "avgpool1d":
		c.FLOPs = nIn
	case "flatten", "reshape", "dropout":
		c.FLOPs = 0
	case "timedistributed":
		td, ok := l.(*nn.TimeDistributed)
		if !ok || len(in) != 2 {
			return OpCount{}, fmt.Errorf("malformed timedistributed layer")
		}
		innerIn := td.InnerShape
		if len(innerIn) == 0 {
			innerIn = []int{in[1]}
		}
		perStep, err := countLayer(td.Inner, innerIn, []int{shapeLen(out) / in[0]})
		if err != nil {
			return OpCount{}, err
		}
		c.FLOPs = int64(in[0]) * perStep.FLOPs
		// parameters are shared; activation traffic scales with steps
		c.Bytes = 4*params + int64(in[0])*(perStep.Bytes-4*params)
	default:
		return OpCount{}, fmt.Errorf("unknown layer type %q", spec.Type)
	}
	return c, nil
}

// Profile describes one execution platform.
type Profile struct {
	Name string
	// Device distinguishes the execution unit ("cpu" or "gpu").
	Device string
	// SustainedGFLOPS is the effective throughput for small-batch dense
	// inference (far below datasheet peaks, as in any real deployment).
	SustainedGFLOPS float64
	// MemBandwidthGBs is the usable memory bandwidth.
	MemBandwidthGBs float64
	// PowerW is the board-level power draw while running this workload.
	PowerW float64
	// OverheadUs is the fixed per-inference dispatch overhead.
	OverheadUs float64
}

// Estimate is the predicted cost of running a workload.
type Estimate struct {
	Platform     string
	Device       string
	Samples      int
	TimeSeconds  float64
	PowerWatts   float64
	EnergyJoules float64
	PerSampleMs  float64
	ComputeBound bool // whether the compute term dominated the memory term
}

// Run estimates executing n inferences of a workload with the given
// per-inference op count.
func (p Profile) Run(ops OpCount, n int) (Estimate, error) {
	if n <= 0 {
		return Estimate{}, fmt.Errorf("platform: sample count must be positive, got %d", n)
	}
	if p.SustainedGFLOPS <= 0 || p.MemBandwidthGBs <= 0 || p.PowerW <= 0 {
		return Estimate{}, fmt.Errorf("platform: invalid profile %+v", p)
	}
	compute := float64(ops.FLOPs) / (p.SustainedGFLOPS * 1e9)
	memory := float64(ops.Bytes) / (p.MemBandwidthGBs * 1e9)
	per := compute
	if memory > per {
		per = memory
	}
	per += p.OverheadUs * 1e-6
	total := per * float64(n)
	return Estimate{
		Platform:     p.Name,
		Device:       p.Device,
		Samples:      n,
		TimeSeconds:  total,
		PowerWatts:   p.PowerW,
		EnergyJoules: total * p.PowerW,
		PerSampleMs:  per * 1e3,
		ComputeBound: compute >= memory,
	}, nil
}

// Built-in profiles calibrated to the paper's Table 2 envelope with the
// Table-1 CNN workload (~1.9 MFLOP/inference, 21600 samples).
var (
	// JetsonNanoCPU: quad-core ARM Cortex-A57.
	JetsonNanoCPU = Profile{
		Name: "Jetson Nano", Device: "cpu",
		SustainedGFLOPS: 1.45, MemBandwidthGBs: 6, PowerW: 5.03, OverheadUs: 60,
	}
	// JetsonNanoGPU: 128-core Maxwell GPU.
	JetsonNanoGPU = Profile{
		Name: "Jetson Nano", Device: "gpu",
		SustainedGFLOPS: 7.5, MemBandwidthGBs: 12, PowerW: 4.77, OverheadUs: 35,
	}
	// JetsonTX2CPU: Cortex-A57 + Denver2 complex.
	JetsonTX2CPU = Profile{
		Name: "Jetson TX2", Device: "cpu",
		SustainedGFLOPS: 2.05, MemBandwidthGBs: 10, PowerW: 5.92, OverheadUs: 50,
	}
	// JetsonTX2GPU: 256-core Pascal GPU.
	JetsonTX2GPU = Profile{
		Name: "Jetson TX2", Device: "gpu",
		SustainedGFLOPS: 16.0, MemBandwidthGBs: 25, PowerW: 6.68, OverheadUs: 20,
	}
)

// Table2Profiles returns the four platforms in the paper's column order.
func Table2Profiles() []Profile {
	return []Profile{JetsonNanoCPU, JetsonNanoGPU, JetsonTX2CPU, JetsonTX2GPU}
}

// Section IV discusses FPGA-based alternatives for embedded process
// control. The profiles below are calibrated to the speedups the paper
// cites: the FGPU soft GPU reaches "an average 4.2x speedup ... over an
// embedded ARM core with NEON support" on dense kernels, and "further
// specializing increases the speedup numbers by 100x" for persistent
// deep-learning configurations; the VCGRA overlay sits between the soft
// GPU and the specialized design. FPGA fabrics run at low clocks, so power
// stays in the 2-4 W envelope 2/4-wire field devices require.
var (
	// ZynqARM is the embedded ARM Cortex-A9 + NEON baseline of the FGPU
	// comparison.
	ZynqARM = Profile{
		Name: "Zynq ARM A9", Device: "cpu",
		SustainedGFLOPS: 0.9, MemBandwidthGBs: 3, PowerW: 2.5, OverheadUs: 40,
	}
	// FGPUSoftGPU is the open-source soft GPGPU overlay on the FPGA fabric.
	FGPUSoftGPU = Profile{
		Name: "FGPU soft GPU", Device: "fpga",
		SustainedGFLOPS: 0.9 * 4.2, MemBandwidthGBs: 6, PowerW: 3.2, OverheadUs: 30,
	}
	// VCGRAOverlay is the virtual coarse-grained reconfigurable array with
	// processing elements tailored to the ANN's operations.
	VCGRAOverlay = Profile{
		Name: "VCGRA overlay", Device: "fpga",
		SustainedGFLOPS: 0.9 * 40, MemBandwidthGBs: 8, PowerW: 3.5, OverheadUs: 15,
	}
	// FGPUSpecialized is the persistent-deep-learning specialization of the
	// soft GPU.
	FGPUSpecialized = Profile{
		Name: "FGPU specialized", Device: "fpga",
		SustainedGFLOPS: 0.9 * 4.2 * 100, MemBandwidthGBs: 12, PowerW: 3.8, OverheadUs: 10,
	}
)

// SectionIVProfiles returns the embedded-alternatives lineup of the
// discussion section: the ARM baseline, the soft GPU, the CGRA overlay and
// the specialized soft GPU.
func SectionIVProfiles() []Profile {
	return []Profile{ZynqARM, FGPUSoftGPU, VCGRAOverlay, FGPUSpecialized}
}
