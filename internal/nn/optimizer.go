package nn

import (
	"fmt"
	"math"
)

// Optimizer applies one update step from the accumulated gradients of a
// parameter set. Implementations keep per-parameter state keyed by the
// *Param pointer, so an optimizer instance must stay paired with one model.
type Optimizer interface {
	// Name returns the canonical optimizer name.
	Name() string
	// Step applies one update using each Param's Grad (already divided by
	// the batch size by the caller) and leaves Grad untouched.
	Step(params []*Param)
}

// LRSettable is implemented by optimizers whose learning rate can be
// adjusted mid-training (used by FitConfig.LRSchedule).
type LRSettable interface {
	SetLR(lr float64)
}

// SGD is plain stochastic gradient descent.
type SGD struct {
	LR float64
}

// SetLR implements LRSettable.
func (s *SGD) SetLR(lr float64) { s.LR = lr }

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		for i, g := range p.Grad {
			p.Data[i] -= s.LR * g
		}
	}
}

// Momentum is SGD with classical momentum.
type Momentum struct {
	LR float64
	Mu float64 // momentum coefficient, typically 0.9

	velocity map[*Param][]float64
}

// Name implements Optimizer.
func (m *Momentum) Name() string { return "momentum" }

// SetLR implements LRSettable.
func (m *Momentum) SetLR(lr float64) { m.LR = lr }

// Step implements Optimizer.
func (m *Momentum) Step(params []*Param) {
	if m.velocity == nil {
		m.velocity = make(map[*Param][]float64)
	}
	for _, p := range params {
		v, ok := m.velocity[p]
		if !ok {
			v = make([]float64, len(p.Data))
			m.velocity[p] = v
		}
		for i, g := range p.Grad {
			v[i] = m.Mu*v[i] - m.LR*g
			p.Data[i] += v[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR    float64 // default 1e-3
	Beta1 float64 // default 0.9
	Beta2 float64 // default 0.999
	Eps   float64 // default 1e-8

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam returns an Adam optimizer with the standard defaults and the
// given learning rate (pass 0 for the 1e-3 default).
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		lr = 1e-3
	}
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// SetLR implements LRSettable.
func (a *Adam) SetLR(lr float64) { a.LR = lr }

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	if a.m == nil {
		a.m = make(map[*Param][]float64)
		a.v = make(map[*Param][]float64)
	}
	if a.Beta1 == 0 && a.Beta2 == 0 && a.Eps == 0 {
		a.Beta1, a.Beta2, a.Eps = 0.9, 0.999, 1e-8
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.Data))
			a.m[p] = m
			a.v[p] = make([]float64, len(p.Data))
		}
		v := a.v[p]
		for i, g := range p.Grad {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mHat := m[i] / c1
			vHat := v[i] / c2
			p.Data[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// OptimizerByName constructs an optimizer by canonical name with the given
// learning rate (0 selects a sensible default).
func OptimizerByName(name string, lr float64) (Optimizer, error) {
	switch name {
	case "adam", "":
		return NewAdam(lr), nil
	case "sgd":
		if lr <= 0 {
			lr = 0.01
		}
		return &SGD{LR: lr}, nil
	case "momentum":
		if lr <= 0 {
			lr = 0.01
		}
		return &Momentum{LR: lr, Mu: 0.9}, nil
	default:
		return nil, fmt.Errorf("nn: unknown optimizer %q", name)
	}
}
