package nn

import (
	"testing"

	"specml/internal/obs"
	"specml/internal/rng"
)

// TestFitReportsMetrics checks the epoch/sample counters, the epoch
// duration histogram and the loss gauges after an instrumented fit, and
// that instrumentation does not perturb the fitted weights.
func TestFitReportsMetrics(t *testing.T) {
	src := rng.New(3)
	var xs, ys [][]float64
	for i := 0; i < 40; i++ {
		x := []float64{src.Normal(0, 1), src.Normal(0, 1)}
		xs = append(xs, x)
		ys = append(ys, []float64{x[0] - x[1]})
	}
	// Optimizers are stateful (Adam moments), so each fit gets a fresh one.
	cfg := FitConfig{Epochs: 4, BatchSize: 8, Loss: MSE, Optimizer: NewAdam(0.01), Seed: 9,
		ValX: xs[:8], ValY: ys[:8]}

	plain := buildModel(t, 2, []int{2}, NewDense(1))
	if _, err := plain.Fit(xs, ys, cfg); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	cfg.Metrics = reg
	cfg.Optimizer = NewAdam(0.01)
	inst := buildModel(t, 2, []int{2}, NewDense(1))
	hist, err := inst.Fit(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}

	pp, ip := plain.Params(), inst.Params()
	for i := range pp {
		for j := range pp[i].Data {
			if pp[i].Data[j] != ip[i].Data[j] {
				t.Fatalf("instrumented fit diverges at param %d index %d", i, j)
			}
		}
	}

	if v := reg.Counter("specml_fit_epochs_total", "").Value(); v != 4 {
		t.Fatalf("epochs counter = %d, want 4", v)
	}
	if v := reg.Counter("specml_fit_samples_total", "").Value(); v != 4*40 {
		t.Fatalf("samples counter = %d, want %d", v, 4*40)
	}
	if h := reg.Histogram("specml_fit_epoch_seconds", "", fitEpochBuckets); h.Count() != 4 {
		t.Fatalf("epoch histogram count = %d, want 4", h.Count())
	}
	wantTrain := hist.TrainLoss[len(hist.TrainLoss)-1]
	if g := reg.Gauge("specml_fit_train_loss", "").Value(); g != wantTrain {
		t.Fatalf("train loss gauge = %g, want %g", g, wantTrain)
	}
	wantVal := hist.ValLoss[len(hist.ValLoss)-1]
	if g := reg.Gauge("specml_fit_val_loss", "").Value(); g != wantVal {
		t.Fatalf("val loss gauge = %g, want %g", g, wantVal)
	}
}
