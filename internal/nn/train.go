package nn

import (
	"fmt"
	"io"
	"math"

	"specml/internal/dataset"
	"specml/internal/obs"
	"specml/internal/parallel"
)

// FitConfig configures Model.Fit.
type FitConfig struct {
	Epochs    int       // number of passes over the training data (default 10)
	BatchSize int       // gradient-accumulation batch size (default 32)
	Loss      Loss      // default MAE
	Optimizer Optimizer // default Adam(1e-3)
	// Seed drives shuffling; fits with equal seeds and data are identical.
	Seed uint64
	// ValX/ValY, when non-empty, are evaluated after every epoch; with
	// Patience > 0 training stops early when validation loss has not
	// improved for Patience epochs, and the best-epoch weights are
	// restored ("the network with the best performance on the experimental
	// validation dataset was selected").
	ValX, ValY [][]float64
	Patience   int
	// KeepBest restores the weights of the best validation epoch even
	// without early stopping.
	KeepBest bool
	// Verbose, when non-nil, receives one progress line per epoch.
	Verbose io.Writer
	// ClipNorm, when positive, rescales the per-batch gradient so its
	// global L2 norm never exceeds this value (stabilizes LSTM training).
	ClipNorm float64
	// LRSchedule, when non-nil, sets the optimizer learning rate before
	// each epoch (0-based). The optimizer must implement LRSettable.
	LRSchedule func(epoch int) float64
	// Workers is the data-parallel worker count (0 = all cores). Each
	// worker owns a replica sharing the weights read-only; per-sample
	// gradients are reduced in sample order before every optimizer step,
	// so the fit is bit-identical for any worker count: equal seeds and
	// data produce equal models regardless of Workers or GOMAXPROCS.
	Workers int
	// Metrics, when non-nil, receives training progress: epoch, sample and
	// batch throughput counters, epoch-duration, render-wait and
	// compute-time histograms, and the latest train/validation losses as
	// gauges. Recording is off the per-sample hot path (per batch at most),
	// so instrumented fits are not slower.
	Metrics *obs.Registry
	// Prefetch is the streamed-fit pipeline depth: how many mini-batch
	// buffers may be rendered ahead of training (default 2 — double
	// buffering; 1 disables overlap). It also caps the number of concurrent
	// render workers. The fitted model does not depend on it.
	Prefetch int
	// CheckpointPath, when non-empty, writes a specml/ckpt/v1 training
	// checkpoint (weights + optimizer state + epoch/permutation cursor)
	// there after every CheckpointEvery epochs, atomically (tmp + rename).
	// The optimizer must implement StatefulOptimizer.
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in epochs (default 1). The
	// final epoch and an early stop always checkpoint.
	CheckpointEvery int
	// Resume, when non-nil, restores the checkpointed weights, optimizer
	// state and best-epoch bookkeeping, then continues training at the
	// checkpoint's epoch cursor. The seed, sample count, batch size and
	// optimizer must match the original fit; the continuation is then
	// bit-identical to an uninterrupted fit.
	Resume *Checkpoint
}

// fitMetrics bundles the instruments Fit records into, resolved once per
// call so the epoch loop records without registry lookups.
type fitMetrics struct {
	epochs       *obs.Counter
	samples      *obs.Counter
	batches      *obs.Counter
	epochSeconds *obs.Histogram
	renderWait   *obs.Histogram
	computeSecs  *obs.Histogram
	trainLoss    *obs.Gauge
	valLoss      *obs.Gauge
}

// fitEpochBuckets spans 1ms..~2m, covering toy fits through full corpus
// epochs.
var fitEpochBuckets = obs.ExponentialBuckets(1e-3, 2, 18)

// fitBatchBuckets spans 1µs..~4s of per-batch render-wait and compute time.
// Render wait near zero means generation hides behind training compute;
// wait comparable to compute means the fit is render-bound (raise Prefetch
// or Workers).
var fitBatchBuckets = obs.ExponentialBuckets(1e-6, 2, 22)

func newFitMetrics(reg *obs.Registry) *fitMetrics {
	return &fitMetrics{
		epochs:       reg.Counter("specml_fit_epochs_total", "Training epochs completed."),
		samples:      reg.Counter("specml_fit_samples_total", "Training samples processed (epochs x dataset size)."),
		batches:      reg.Counter("specml_fit_batches_total", "Training mini-batches processed."),
		epochSeconds: reg.Histogram("specml_fit_epoch_seconds", "Wall-clock duration of one training epoch.", fitEpochBuckets),
		renderWait:   reg.Histogram("specml_fit_render_wait_seconds", "Time the training loop waited for the next mini-batch from the data source.", fitBatchBuckets),
		computeSecs:  reg.Histogram("specml_fit_compute_seconds", "Forward/backward/optimizer time of one mini-batch.", fitBatchBuckets),
		trainLoss:    reg.Gauge("specml_fit_train_loss", "Training loss of the most recent epoch."),
		valLoss:      reg.Gauge("specml_fit_val_loss", "Validation loss of the most recent epoch."),
	}
}

// History records per-epoch training metrics.
type History struct {
	TrainLoss []float64 `json:"trainLoss,omitempty"`
	ValLoss   []float64 `json:"valLoss,omitempty"`
	BestEpoch int       `json:"bestEpoch"`         // index into the loss slices; -1 when no validation data
	Stopped   bool      `json:"stopped,omitempty"` // true when early stopping triggered
}

// Fit trains the model with mini-batch gradient descent. X and Y hold one
// flat sample per row. Internally the rows are wrapped in a trivial
// in-memory dataset.Source and trained through the same prefetch pipeline
// as FitSource, bit-identically to the historical materialized loop. The
// whole fit runs under a pprof "fit" stage label (inherited by the
// data-parallel workers), so CPU profiles attribute training time even when
// a fit shares its process with serving.
func (m *Model) Fit(x, y [][]float64, cfg FitConfig) (*History, error) {
	var hist *History
	err := obs.WithStage("fit", func() error {
		var ferr error
		hist, ferr = m.fit(x, y, cfg)
		return ferr
	})
	if err != nil {
		return nil, err
	}
	return hist, nil
}

func (m *Model) fit(x, y [][]float64, cfg FitConfig) (*History, error) {
	if !m.built {
		return nil, fmt.Errorf("nn: Fit before Build")
	}
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("nn: Fit needs equal, non-zero sample counts (%d, %d)", len(x), len(y))
	}
	if len(cfg.ValX) != len(cfg.ValY) {
		return nil, fmt.Errorf("nn: validation sample counts differ (%d, %d)", len(cfg.ValX), len(cfg.ValY))
	}
	inLen, outLen := m.InputLen(), m.OutputLen()
	for i := range x {
		if len(x[i]) != inLen {
			return nil, fmt.Errorf("nn: sample %d has %d features, model expects %d", i, len(x[i]), inLen)
		}
		if len(y[i]) != outLen {
			return nil, fmt.Errorf("nn: label %d has %d values, model expects %d", i, len(y[i]), outLen)
		}
		for _, v := range x[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("nn: sample %d contains a non-finite feature", i)
			}
		}
		for _, v := range y[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("nn: label %d contains a non-finite value", i)
			}
		}
	}
	src, err := dataset.NewInMemory(x, y)
	if err != nil {
		return nil, fmt.Errorf("nn: %w", err)
	}
	// Rows were validated above; skip the producer-side re-check.
	return m.fitSource(src, cfg, false)
}

// evaluateLossReplicas computes the mean loss over a dataset on one
// goroutine per replica. Per-sample losses land in an index-keyed slice
// and are summed in index order, so the result matches a sequential
// EvaluateLoss bit for bit regardless of the replica count.
func evaluateLossReplicas(replicas []*Model, x, y [][]float64, loss Loss) (float64, error) {
	if len(x) == 0 {
		return 0, nil
	}
	for _, r := range replicas {
		r.SetTraining(false)
	}
	losses := make([]float64, len(x))
	err := parallel.For(len(replicas), len(x), func(w, i int) error {
		out := replicas[w].Forward(x[i])
		losses[i] = loss.Loss(out, y[i])
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, l := range losses {
		total += l
	}
	return total / float64(len(x)), nil
}

// evaluateLossBatched computes the mean loss over a dataset through the
// batched forward path in chunks of the training batch size. Per-sample
// losses are summed in index order and the batched forward is bit-identical
// to per-sample Forward, so the result matches evaluateLossReplicas (and a
// sequential EvaluateLoss) bit for bit.
func (m *Model) evaluateLossBatched(x, y [][]float64, loss Loss, chunk int) (float64, error) {
	if len(x) == 0 {
		return 0, nil
	}
	m.checkBatchInputs(x)
	m.SetTraining(false)
	inLen, outLen := m.InputLen(), m.OutputLen()
	if chunk <= 0 || chunk > len(x) {
		chunk = len(x)
	}
	xb := batchScratch.Get(chunk * inLen)
	defer batchScratch.Put(xb)
	total := 0.0
	for start := 0; start < len(x); start += chunk {
		end := start + chunk
		if end > len(x) {
			end = len(x)
		}
		bn := end - start
		for j := 0; j < bn; j++ {
			copy(xb[j*inLen:(j+1)*inLen], x[start+j])
		}
		yb := m.forwardBatch(xb[:bn*inLen], bn)
		for j := 0; j < bn; j++ {
			total += loss.Loss(yb[j*outLen:(j+1)*outLen], y[start+j])
		}
	}
	return total / float64(len(x)), nil
}

// clipGradNorm rescales all gradients so the global L2 norm does not
// exceed maxNorm.
func clipGradNorm(params []*Param, maxNorm float64) {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := maxNorm / norm
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] *= scale
		}
	}
}

// PredictWithUncertainty estimates the prediction and its epistemic
// uncertainty by Monte-Carlo dropout: n stochastic forward passes with the
// dropout layers active, returning per-output mean and standard deviation.
// The model must contain at least one Dropout layer for the std to be
// meaningful ("real-time estimates of error margins" — the paper's
// future-work direction for online monitoring).
func (m *Model) PredictWithUncertainty(x []float64, n int) (mean, std []float64, err error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("nn: need at least 2 MC samples, got %d", n)
	}
	m.SetTraining(true)
	defer m.SetTraining(false)
	k := m.OutputLen()
	mean = make([]float64, k)
	sq := make([]float64, k)
	for i := 0; i < n; i++ {
		out := m.Forward(x)
		for j, v := range out {
			mean[j] += v
			sq[j] += v * v
		}
	}
	std = make([]float64, k)
	inv := 1 / float64(n)
	for j := range mean {
		mean[j] *= inv
		variance := sq[j]*inv - mean[j]*mean[j]
		if variance < 0 {
			variance = 0
		}
		std[j] = math.Sqrt(variance)
	}
	return mean, std, nil
}

// EvaluateLoss returns the mean loss over a dataset.
func (m *Model) EvaluateLoss(x, y [][]float64, loss Loss) float64 {
	if loss == nil {
		loss = MAE
	}
	m.SetTraining(false)
	m.setInference(true)
	defer m.setInference(false)
	total := 0.0
	for i := range x {
		out := m.Forward(x[i])
		total += loss.Loss(out, y[i])
	}
	if len(x) == 0 {
		return 0
	}
	return total / float64(len(x))
}

// EvaluateMAE returns the overall mean absolute error and the per-output
// mean absolute errors over a dataset — the per-substance error bars of
// Figs. 5-7.
func (m *Model) EvaluateMAE(x, y [][]float64) (mean float64, perOutput []float64) {
	m.SetTraining(false)
	if len(x) == 0 {
		return 0, nil
	}
	m.setInference(true)
	defer m.setInference(false)
	perOutput = make([]float64, m.OutputLen())
	for i := range x {
		out := m.Forward(x[i])
		for j, p := range out {
			perOutput[j] += math.Abs(p - y[i][j])
		}
	}
	inv := 1 / float64(len(x))
	sum := 0.0
	for j := range perOutput {
		perOutput[j] *= inv
		sum += perOutput[j]
	}
	return sum / float64(len(perOutput)), perOutput
}

// EvaluateMSE returns the overall mean squared error over a dataset.
func (m *Model) EvaluateMSE(x, y [][]float64) float64 {
	return m.EvaluateLoss(x, y, MSE)
}

// EvaluateLossSource computes the mean loss over a dataset.Source in
// fixed-size chunks: each chunk is rendered into a pooled scratch block,
// forwarded (through the batched kernels when the stack supports them) and
// released, so peak memory holds one chunk regardless of src.Len(). The
// per-sample losses are summed in index order and the batched forward is
// bit-identical to per-sample Forward, so the result equals
// EvaluateLoss(Materialize(src)) bit for bit. chunk <= 0 means a single
// chunk (only sensible for small sources).
func (m *Model) EvaluateLossSource(src dataset.Source, loss Loss, chunk int) (float64, error) {
	if loss == nil {
		loss = MAE
	}
	total, _, err := m.evaluateSource(src, chunk, loss, false)
	return total, err
}

// EvaluateMAESource is EvaluateMAE over a dataset.Source, evaluated in
// fixed-size chunks like EvaluateLossSource: bounded memory, bit-identical
// to materializing the source first.
func (m *Model) EvaluateMAESource(src dataset.Source, chunk int) (mean float64, perOutput []float64, err error) {
	return m.evaluateSource(src, chunk, nil, true)
}

// evaluateSource is the shared chunked-evaluation driver. With wantMAE it
// accumulates per-output absolute errors (EvaluateMAE semantics); otherwise
// it sums loss.Loss per sample. Both accumulate in ascending sample order —
// the same addition sequence as the materialized evaluators.
func (m *Model) evaluateSource(src dataset.Source, chunk int, loss Loss, wantMAE bool) (float64, []float64, error) {
	n := src.Len()
	if n == 0 {
		return 0, nil, nil
	}
	xw, yw := src.Widths()
	if xw != m.InputLen() || yw != m.OutputLen() {
		return 0, nil, fmt.Errorf("nn: source rows are %dx%d, model wants %dx%d", xw, yw, m.InputLen(), m.OutputLen())
	}
	if chunk <= 0 || chunk > n {
		chunk = n
	}
	m.SetTraining(false)
	m.setInference(true)
	defer m.setInference(false)
	xb := batchScratch.Get(chunk * xw)
	defer batchScratch.Put(xb)
	yb := batchScratch.Get(chunk * yw)
	defer batchScratch.Put(yb)
	indices := make([]int, chunk)
	dstX := make([][]float64, chunk)
	dstY := make([][]float64, chunk)
	for j := 0; j < chunk; j++ {
		indices[j] = j
		dstX[j] = xb[j*xw : (j+1)*xw]
		dstY[j] = yb[j*yw : (j+1)*yw]
	}
	batched := m.fullyBatchable()
	var perOutput []float64
	if wantMAE {
		perOutput = make([]float64, yw)
	}
	total := 0.0
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		bn := end - start
		for j := 0; j < bn; j++ {
			indices[j] = start + j
		}
		if err := src.Batch(0, indices[:bn], dstX[:bn], dstY[:bn]); err != nil {
			return 0, nil, err
		}
		var out []float64
		if batched {
			out = m.forwardBatch(xb[:bn*xw], bn)
		}
		for j := 0; j < bn; j++ {
			var pred []float64
			if batched {
				pred = out[j*yw : (j+1)*yw]
			} else {
				pred = m.Forward(dstX[j])
			}
			if wantMAE {
				for k, p := range pred {
					perOutput[k] += math.Abs(p - dstY[j][k])
				}
			} else {
				total += loss.Loss(pred, dstY[j])
			}
		}
	}
	inv := 1 / float64(n)
	if !wantMAE {
		return total * inv, nil, nil
	}
	sum := 0.0
	for k := range perOutput {
		perOutput[k] *= inv
		sum += perOutput[k]
	}
	return sum / float64(len(perOutput)), perOutput, nil
}
