package nn

import (
	"fmt"
	"io"
	"math"
	"time"

	"specml/internal/obs"
	"specml/internal/parallel"
	"specml/internal/rng"
)

// FitConfig configures Model.Fit.
type FitConfig struct {
	Epochs    int       // number of passes over the training data (default 10)
	BatchSize int       // gradient-accumulation batch size (default 32)
	Loss      Loss      // default MAE
	Optimizer Optimizer // default Adam(1e-3)
	// Seed drives shuffling; fits with equal seeds and data are identical.
	Seed uint64
	// ValX/ValY, when non-empty, are evaluated after every epoch; with
	// Patience > 0 training stops early when validation loss has not
	// improved for Patience epochs, and the best-epoch weights are
	// restored ("the network with the best performance on the experimental
	// validation dataset was selected").
	ValX, ValY [][]float64
	Patience   int
	// KeepBest restores the weights of the best validation epoch even
	// without early stopping.
	KeepBest bool
	// Verbose, when non-nil, receives one progress line per epoch.
	Verbose io.Writer
	// ClipNorm, when positive, rescales the per-batch gradient so its
	// global L2 norm never exceeds this value (stabilizes LSTM training).
	ClipNorm float64
	// LRSchedule, when non-nil, sets the optimizer learning rate before
	// each epoch (0-based). The optimizer must implement LRSettable.
	LRSchedule func(epoch int) float64
	// Workers is the data-parallel worker count (0 = all cores). Each
	// worker owns a replica sharing the weights read-only; per-sample
	// gradients are reduced in sample order before every optimizer step,
	// so the fit is bit-identical for any worker count: equal seeds and
	// data produce equal models regardless of Workers or GOMAXPROCS.
	Workers int
	// Metrics, when non-nil, receives training progress: epoch and sample
	// throughput counters, an epoch-duration histogram and the latest
	// train/validation losses as gauges. Recording is off the per-sample
	// hot path (once per epoch), so instrumented fits are not slower.
	Metrics *obs.Registry
}

// fitMetrics bundles the instruments Fit records into, resolved once per
// call so the epoch loop records without registry lookups.
type fitMetrics struct {
	epochs       *obs.Counter
	samples      *obs.Counter
	epochSeconds *obs.Histogram
	trainLoss    *obs.Gauge
	valLoss      *obs.Gauge
}

// fitEpochBuckets spans 1ms..~2m, covering toy fits through full corpus
// epochs.
var fitEpochBuckets = obs.ExponentialBuckets(1e-3, 2, 18)

func newFitMetrics(reg *obs.Registry) *fitMetrics {
	return &fitMetrics{
		epochs:       reg.Counter("specml_fit_epochs_total", "Training epochs completed."),
		samples:      reg.Counter("specml_fit_samples_total", "Training samples processed (epochs x dataset size)."),
		epochSeconds: reg.Histogram("specml_fit_epoch_seconds", "Wall-clock duration of one training epoch.", fitEpochBuckets),
		trainLoss:    reg.Gauge("specml_fit_train_loss", "Training loss of the most recent epoch."),
		valLoss:      reg.Gauge("specml_fit_val_loss", "Validation loss of the most recent epoch."),
	}
}

// History records per-epoch training metrics.
type History struct {
	TrainLoss []float64
	ValLoss   []float64
	BestEpoch int  // index into the loss slices; -1 when no validation data
	Stopped   bool // true when early stopping triggered
}

// Fit trains the model with mini-batch gradient descent. X and Y hold one
// flat sample per row. The whole fit runs under a pprof "fit" stage label
// (inherited by the data-parallel workers), so CPU profiles attribute
// training time even when a fit shares its process with serving.
func (m *Model) Fit(x, y [][]float64, cfg FitConfig) (*History, error) {
	var hist *History
	err := obs.WithStage("fit", func() error {
		var ferr error
		hist, ferr = m.fit(x, y, cfg)
		return ferr
	})
	if err != nil {
		return nil, err
	}
	return hist, nil
}

func (m *Model) fit(x, y [][]float64, cfg FitConfig) (*History, error) {
	if !m.built {
		return nil, fmt.Errorf("nn: Fit before Build")
	}
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("nn: Fit needs equal, non-zero sample counts (%d, %d)", len(x), len(y))
	}
	if len(cfg.ValX) != len(cfg.ValY) {
		return nil, fmt.Errorf("nn: validation sample counts differ (%d, %d)", len(cfg.ValX), len(cfg.ValY))
	}
	inLen, outLen := m.InputLen(), m.OutputLen()
	for i := range x {
		if len(x[i]) != inLen {
			return nil, fmt.Errorf("nn: sample %d has %d features, model expects %d", i, len(x[i]), inLen)
		}
		if len(y[i]) != outLen {
			return nil, fmt.Errorf("nn: label %d has %d values, model expects %d", i, len(y[i]), outLen)
		}
		for _, v := range x[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("nn: sample %d contains a non-finite feature", i)
			}
		}
		for _, v := range y[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("nn: label %d contains a non-finite value", i)
			}
		}
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Loss == nil {
		cfg.Loss = MAE
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = NewAdam(0)
	}

	src := rng.New(cfg.Seed)
	// Dropout masks must not depend on worker scheduling, so each sample
	// gets a fresh per-sample stream seeded in sample order from a root
	// split off the fit source. The split is taken only when the model has
	// dropout, keeping the shuffle stream of dropout-free models unchanged.
	hasDrop := m.hasDropout()
	var dropRoot *rng.Source
	if hasDrop {
		dropRoot = src.Split()
	}

	// One replica per worker: weights alias the master (the optimizer step
	// updates them in place for everyone), gradients and caches private.
	workers := parallel.Resolve(cfg.Workers)
	if workers > cfg.BatchSize {
		workers = cfg.BatchSize
	}
	if workers > len(x) {
		workers = len(x)
	}
	masterParams := m.Params()
	// A fully batchable stack trains through the blocked-GEMM kernels on
	// the master model itself: one forward/backward per mini-batch instead
	// of one per sample. The kernels keep the per-sample accumulation
	// order, and the path involves no worker scheduling at all, so the fit
	// stays bit-identical for any Workers value. Stacks with recurrent
	// layers keep the wave-parallel per-sample path.
	batched := m.batchable()
	var (
		replicas      []*Model
		replicaParams [][]*Param
		gradBufs      [][]float64
		waveLoss      []float64
		dropSeeds     []uint64

		xblock, gblock []float64
		batchSeeds     []uint64
	)
	if batched {
		maxB := cfg.BatchSize
		if maxB > len(x) {
			maxB = len(x)
		}
		xblock = make([]float64, maxB*inLen)
		gblock = make([]float64, maxB*outLen)
		if hasDrop {
			batchSeeds = make([]uint64, maxB)
		}
	} else {
		var err error
		replicas, err = m.replicaPool(workers)
		if err != nil {
			return nil, err
		}
		replicaParams = make([][]*Param, workers)
		gradBufs = make([][]float64, workers)
		for i, r := range replicas {
			replicaParams[i] = r.Params()
			gradBufs[i] = make([]float64, outLen)
		}
		waveLoss = make([]float64, workers)
		dropSeeds = make([]uint64, workers)
	}

	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	hist := &History{BestEpoch: -1}
	bestVal := math.Inf(1)
	var bestModel *Model
	sinceBest := 0

	if cfg.LRSchedule != nil {
		if _, ok := cfg.Optimizer.(LRSettable); !ok {
			return nil, fmt.Errorf("nn: optimizer %s does not support LR scheduling", cfg.Optimizer.Name())
		}
	}

	var mx *fitMetrics
	if cfg.Metrics != nil {
		mx = newFitMetrics(cfg.Metrics)
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochStart := time.Now()
		if cfg.LRSchedule != nil {
			cfg.Optimizer.(LRSettable).SetLR(cfg.LRSchedule(epoch))
		}
		m.SetTraining(true)
		for _, r := range replicas {
			r.SetTraining(true)
		}
		src.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss := 0.0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			m.ZeroGrad()
			if batched {
				// Assemble the mini-batch into one row-major block and run a
				// single batched forward/backward. Dropout seeds are drawn in
				// sample order from the same root as the wave path, and the
				// losses accumulate in sample order, so shuffling, masks and
				// epoch loss all match the per-sample path exactly.
				bn := end - start
				for j := 0; j < bn; j++ {
					copy(xblock[j*inLen:(j+1)*inLen], x[idx[start+j]])
				}
				if hasDrop {
					for j := 0; j < bn; j++ {
						batchSeeds[j] = dropRoot.Uint64()
					}
					m.reseedDropoutBatch(batchSeeds[:bn])
				}
				yb := m.forwardBatch(xblock[:bn*inLen], bn)
				for j := 0; j < bn; j++ {
					k := idx[start+j]
					row := yb[j*outLen : (j+1)*outLen]
					epochLoss += cfg.Loss.Loss(row, y[k])
					cfg.Loss.Grad(row, y[k], gblock[j*outLen:(j+1)*outLen])
				}
				m.backwardBatch(gblock[:bn*outLen], bn)

				// average gradients over the batch
				inv := 1 / float64(end-start)
				for _, p := range masterParams {
					for i := range p.Grad {
						p.Grad[i] *= inv
					}
				}
				if cfg.ClipNorm > 0 {
					clipGradNorm(masterParams, cfg.ClipNorm)
				}
				cfg.Optimizer.Step(masterParams)
				continue
			}
			// Each batch is processed in waves of `workers` samples. Wave
			// item j always runs on replica j, and the per-sample gradients
			// are reduced into the master in sample order below, so the sum
			// — and therefore the fitted model — is bit-identical for any
			// worker count (a zeroed replica gradient plus one sample's
			// contribution equals the contribution exactly, and additions
			// happen in the same order as a sequential pass).
			for wstart := start; wstart < end; wstart += workers {
				wn := workers
				if end-wstart < wn {
					wn = end - wstart
				}
				if hasDrop {
					for j := 0; j < wn; j++ {
						dropSeeds[j] = dropRoot.Uint64()
					}
				}
				if err := parallel.For(wn, wn, func(_, j int) error {
					r := replicas[j]
					k := idx[wstart+j]
					r.ZeroGrad()
					if hasDrop {
						r.reseedDropout(dropSeeds[j])
					}
					out := r.Forward(x[k])
					waveLoss[j] = cfg.Loss.Loss(out, y[k])
					cfg.Loss.Grad(out, y[k], gradBufs[j])
					r.Backward(gradBufs[j])
					return nil
				}); err != nil {
					return nil, err
				}
				// deterministic sample-order reduction
				for j := 0; j < wn; j++ {
					epochLoss += waveLoss[j]
					rp := replicaParams[j]
					for pi, p := range masterParams {
						for gi, g := range rp[pi].Grad {
							p.Grad[gi] += g
						}
					}
				}
			}
			// average gradients over the batch
			inv := 1 / float64(end-start)
			for _, p := range masterParams {
				for i := range p.Grad {
					p.Grad[i] *= inv
				}
			}
			if cfg.ClipNorm > 0 {
				clipGradNorm(masterParams, cfg.ClipNorm)
			}
			cfg.Optimizer.Step(masterParams)
		}
		m.SetTraining(false)
		epochLoss /= float64(len(idx))
		hist.TrainLoss = append(hist.TrainLoss, epochLoss)
		if mx != nil {
			mx.epochs.Inc()
			mx.samples.Add(uint64(len(idx)))
			mx.epochSeconds.ObserveSince(epochStart)
			mx.trainLoss.Set(epochLoss)
		}

		if len(cfg.ValX) > 0 {
			var valLoss float64
			var verr error
			if batched {
				valLoss, verr = m.evaluateLossBatched(cfg.ValX, cfg.ValY, cfg.Loss, cfg.BatchSize)
			} else {
				valLoss, verr = evaluateLossReplicas(replicas, cfg.ValX, cfg.ValY, cfg.Loss)
			}
			if verr != nil {
				return nil, verr
			}
			hist.ValLoss = append(hist.ValLoss, valLoss)
			if mx != nil {
				mx.valLoss.Set(valLoss)
			}
			if cfg.Verbose != nil {
				fmt.Fprintf(cfg.Verbose, "epoch %3d  train=%.6f  val=%.6f\n", epoch+1, epochLoss, valLoss)
			}
			if valLoss < bestVal {
				bestVal = valLoss
				hist.BestEpoch = epoch
				sinceBest = 0
				if cfg.KeepBest || cfg.Patience > 0 {
					c, err := m.Clone()
					if err != nil {
						return nil, err
					}
					bestModel = c
				}
			} else {
				sinceBest++
				if cfg.Patience > 0 && sinceBest >= cfg.Patience {
					hist.Stopped = true
					break
				}
			}
		} else if cfg.Verbose != nil {
			fmt.Fprintf(cfg.Verbose, "epoch %3d  train=%.6f\n", epoch+1, epochLoss)
		}
	}
	if bestModel != nil && (cfg.KeepBest || hist.Stopped) {
		if err := m.CopyParamsFrom(bestModel); err != nil {
			return nil, err
		}
	}
	return hist, nil
}

// evaluateLossReplicas computes the mean loss over a dataset on one
// goroutine per replica. Per-sample losses land in an index-keyed slice
// and are summed in index order, so the result matches a sequential
// EvaluateLoss bit for bit regardless of the replica count.
func evaluateLossReplicas(replicas []*Model, x, y [][]float64, loss Loss) (float64, error) {
	if len(x) == 0 {
		return 0, nil
	}
	for _, r := range replicas {
		r.SetTraining(false)
	}
	losses := make([]float64, len(x))
	err := parallel.For(len(replicas), len(x), func(w, i int) error {
		out := replicas[w].Forward(x[i])
		losses[i] = loss.Loss(out, y[i])
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, l := range losses {
		total += l
	}
	return total / float64(len(x)), nil
}

// evaluateLossBatched computes the mean loss over a dataset through the
// batched forward path in chunks of the training batch size. Per-sample
// losses are summed in index order and the batched forward is bit-identical
// to per-sample Forward, so the result matches evaluateLossReplicas (and a
// sequential EvaluateLoss) bit for bit.
func (m *Model) evaluateLossBatched(x, y [][]float64, loss Loss, chunk int) (float64, error) {
	if len(x) == 0 {
		return 0, nil
	}
	m.checkBatchInputs(x)
	m.SetTraining(false)
	inLen, outLen := m.InputLen(), m.OutputLen()
	if chunk <= 0 || chunk > len(x) {
		chunk = len(x)
	}
	xb := batchScratch.Get(chunk * inLen)
	defer batchScratch.Put(xb)
	total := 0.0
	for start := 0; start < len(x); start += chunk {
		end := start + chunk
		if end > len(x) {
			end = len(x)
		}
		bn := end - start
		for j := 0; j < bn; j++ {
			copy(xb[j*inLen:(j+1)*inLen], x[start+j])
		}
		yb := m.forwardBatch(xb[:bn*inLen], bn)
		for j := 0; j < bn; j++ {
			total += loss.Loss(yb[j*outLen:(j+1)*outLen], y[start+j])
		}
	}
	return total / float64(len(x)), nil
}

// clipGradNorm rescales all gradients so the global L2 norm does not
// exceed maxNorm.
func clipGradNorm(params []*Param, maxNorm float64) {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := maxNorm / norm
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] *= scale
		}
	}
}

// PredictWithUncertainty estimates the prediction and its epistemic
// uncertainty by Monte-Carlo dropout: n stochastic forward passes with the
// dropout layers active, returning per-output mean and standard deviation.
// The model must contain at least one Dropout layer for the std to be
// meaningful ("real-time estimates of error margins" — the paper's
// future-work direction for online monitoring).
func (m *Model) PredictWithUncertainty(x []float64, n int) (mean, std []float64, err error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("nn: need at least 2 MC samples, got %d", n)
	}
	m.SetTraining(true)
	defer m.SetTraining(false)
	k := m.OutputLen()
	mean = make([]float64, k)
	sq := make([]float64, k)
	for i := 0; i < n; i++ {
		out := m.Forward(x)
		for j, v := range out {
			mean[j] += v
			sq[j] += v * v
		}
	}
	std = make([]float64, k)
	inv := 1 / float64(n)
	for j := range mean {
		mean[j] *= inv
		variance := sq[j]*inv - mean[j]*mean[j]
		if variance < 0 {
			variance = 0
		}
		std[j] = math.Sqrt(variance)
	}
	return mean, std, nil
}

// EvaluateLoss returns the mean loss over a dataset.
func (m *Model) EvaluateLoss(x, y [][]float64, loss Loss) float64 {
	if loss == nil {
		loss = MAE
	}
	m.SetTraining(false)
	m.setInference(true)
	defer m.setInference(false)
	total := 0.0
	for i := range x {
		out := m.Forward(x[i])
		total += loss.Loss(out, y[i])
	}
	if len(x) == 0 {
		return 0
	}
	return total / float64(len(x))
}

// EvaluateMAE returns the overall mean absolute error and the per-output
// mean absolute errors over a dataset — the per-substance error bars of
// Figs. 5-7.
func (m *Model) EvaluateMAE(x, y [][]float64) (mean float64, perOutput []float64) {
	m.SetTraining(false)
	if len(x) == 0 {
		return 0, nil
	}
	m.setInference(true)
	defer m.setInference(false)
	perOutput = make([]float64, m.OutputLen())
	for i := range x {
		out := m.Forward(x[i])
		for j, p := range out {
			perOutput[j] += math.Abs(p - y[i][j])
		}
	}
	inv := 1 / float64(len(x))
	sum := 0.0
	for j := range perOutput {
		perOutput[j] *= inv
		sum += perOutput[j]
	}
	return sum / float64(len(perOutput)), perOutput
}

// EvaluateMSE returns the overall mean squared error over a dataset.
func (m *Model) EvaluateMSE(x, y [][]float64) float64 {
	return m.EvaluateLoss(x, y, MSE)
}
