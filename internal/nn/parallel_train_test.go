package nn

import (
	"testing"

	"specml/internal/rng"
)

// dropNet builds a small model containing dropout — the layer whose
// per-sample randomness is the hard part of worker-count determinism.
func dropNet(t *testing.T) *Model {
	t.Helper()
	m := NewModel().
		Add(NewDense(16)).
		Add(NewActivation(ReLU)).
		Add(NewDropout(0.3)).
		Add(NewDense(3)).
		Add(NewSoftmax())
	if err := m.Build(rng.New(7), 12); err != nil {
		t.Fatal(err)
	}
	return m
}

func parallelFitData(n, in, out int, seed uint64) (x, y [][]float64) {
	src := rng.New(seed)
	x = make([][]float64, n)
	y = make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, in)
		for j := range x[i] {
			x[i][j] = src.Normal(0, 1)
		}
		y[i] = make([]float64, out)
		src.Dirichlet(1, y[i])
	}
	return x, y
}

// fitWithWorkers trains a fresh dropNet with the given worker count and
// returns every fitted parameter value.
func fitWithWorkers(t *testing.T, workers int, x, y [][]float64) ([]float64, *History) {
	t.Helper()
	m := dropNet(t)
	hist, err := m.Fit(x, y, FitConfig{
		Epochs:    4,
		BatchSize: 8,
		Seed:      11,
		Workers:   workers,
		ValX:      x[:10],
		ValY:      y[:10],
		KeepBest:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var flat []float64
	for _, p := range m.Params() {
		flat = append(flat, p.Data...)
	}
	return flat, hist
}

// TestFitBitIdenticalAcrossWorkerCounts is the training half of the
// determinism guarantee: equal seeds and data must produce bitwise-equal
// models regardless of the Workers setting, even with dropout active.
func TestFitBitIdenticalAcrossWorkerCounts(t *testing.T) {
	x, y := parallelFitData(40, 12, 3, 3)
	ref, refHist := fitWithWorkers(t, 1, x, y)
	for _, workers := range []int{2, 3, 8, 0} {
		got, hist := fitWithWorkers(t, workers, x, y)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d params vs %d", workers, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: param %d = %x, want %x (bitwise)", workers, i, got[i], ref[i])
			}
		}
		for e := range refHist.TrainLoss {
			if hist.TrainLoss[e] != refHist.TrainLoss[e] {
				t.Fatalf("workers=%d: epoch %d train loss %x, want %x", workers, e, hist.TrainLoss[e], refHist.TrainLoss[e])
			}
		}
		for e := range refHist.ValLoss {
			if hist.ValLoss[e] != refHist.ValLoss[e] {
				t.Fatalf("workers=%d: epoch %d val loss %x, want %x", workers, e, hist.ValLoss[e], refHist.ValLoss[e])
			}
		}
	}
}

// TestPredictBatchMatchesPredict checks batched inference returns exactly
// what sequential Predict does, for several worker counts.
func TestPredictBatchMatchesPredict(t *testing.T) {
	m := dropNet(t)
	x, _ := parallelFitData(25, 12, 3, 9)
	want := make([][]float64, len(x))
	for i := range x {
		want[i] = m.Predict(x[i])
	}
	for _, workers := range []int{1, 2, 7, 0} {
		got, err := m.PredictBatch(x, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d: sample %d output %d = %x, want %x", workers, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestFitParallelMatchesLSTM runs the same check on an LSTM topology,
// whose layer caches are the richest (per-step states and gates).
func TestFitParallelMatchesLSTM(t *testing.T) {
	build := func() *Model {
		m := NewModel().Add(NewLSTM(6)).Add(NewDense(2))
		if err := m.Build(rng.New(5), 4, 3); err != nil {
			t.Fatal(err)
		}
		return m
	}
	src := rng.New(21)
	x := make([][]float64, 24)
	y := make([][]float64, 24)
	for i := range x {
		x[i] = make([]float64, 12)
		for j := range x[i] {
			x[i][j] = src.Normal(0, 1)
		}
		y[i] = []float64{src.Float64(), src.Float64()}
	}
	fit := func(workers int) []float64 {
		m := build()
		if _, err := m.Fit(x, y, FitConfig{Epochs: 3, BatchSize: 5, Seed: 2, Workers: workers, ClipNorm: 1}); err != nil {
			t.Fatal(err)
		}
		var flat []float64
		for _, p := range m.Params() {
			flat = append(flat, p.Data...)
		}
		return flat
	}
	ref := fit(1)
	for _, workers := range []int{4, 0} {
		got := fit(workers)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: param %d differs bitwise", workers, i)
			}
		}
	}
}
