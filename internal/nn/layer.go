package nn

import (
	"fmt"
	"math"

	"specml/internal/rng"
	"specml/internal/tensor"
)

// Param is a trainable parameter tensor with its gradient accumulator.
type Param struct {
	Name string
	Data []float64
	Grad []float64
}

func newParam(name string, n int) *Param {
	return &Param{Name: name, Data: make([]float64, n), Grad: make([]float64, n)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Layer is one stage of a feed-forward network. Layers are stateful: Build
// fixes shapes and allocates parameters, Forward caches whatever Backward
// needs, and Backward consumes the most recent Forward's cache. A layer
// instance therefore serves one goroutine at a time.
type Layer interface {
	// Kind returns the canonical layer-type name ("dense", "conv1d", ...).
	Kind() string
	// Build validates the input shape, allocates and initializes
	// parameters using src, and returns the output shape. Shapes are
	// either [n] (a vector) or [length, channels] (a 1-D sequence).
	Build(src *rng.Source, inputShape []int) (outputShape []int, err error)
	// Forward computes the layer output for one sample.
	Forward(x []float64) []float64
	// Backward receives dLoss/dOutput and returns dLoss/dInput, adding
	// parameter gradients into Params' Grad buffers.
	Backward(gradOut []float64) []float64
	// Params returns the trainable parameters (nil for stateless layers).
	Params() []*Param
	// Spec returns a serializable description of the layer configuration
	// (without weights).
	Spec() LayerSpec
}

// shapeLen returns the element count of a shape.
func shapeLen(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// glorotUniform initializes w with the Glorot/Xavier uniform scheme.
func glorotUniform(src *rng.Source, w []float64, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range w {
		w[i] = src.Uniform(-limit, limit)
	}
}

// lecunNormal initializes w with the LeCun normal scheme (recommended for
// SELU networks).
func lecunNormal(src *rng.Source, w []float64, fanIn int) {
	std := math.Sqrt(1.0 / float64(fanIn))
	for i := range w {
		w[i] = src.Normal(0, std)
	}
}

// Dense is a fully connected layer: y = W*x + b.
type Dense struct {
	Out  int
	Init string // "glorot" (default) or "lecun"

	in    int
	w, b  *Param
	x     []float64 // cached input
	y     []float64
	gin   []float64
	infer bool

	bx, by, bgin []float64 // batched-path caches (bx aliases the input block)
}

// NewDense returns a dense layer with Out output units.
func NewDense(out int) *Dense { return &Dense{Out: out} }

// Kind implements Layer.
func (d *Dense) Kind() string { return "dense" }

// Build implements Layer.
func (d *Dense) Build(src *rng.Source, inputShape []int) ([]int, error) {
	if d.Out <= 0 {
		return nil, fmt.Errorf("nn: dense layer needs positive Out, got %d", d.Out)
	}
	d.in = shapeLen(inputShape)
	if d.in == 0 {
		return nil, fmt.Errorf("nn: dense layer got empty input shape %v", inputShape)
	}
	d.w = newParam("w", d.Out*d.in)
	d.b = newParam("b", d.Out)
	if d.Init == "lecun" {
		lecunNormal(src, d.w.Data, d.in)
	} else {
		glorotUniform(src, d.w.Data, d.in, d.Out)
	}
	d.x = make([]float64, d.in)
	d.y = make([]float64, d.Out)
	d.gin = make([]float64, d.in)
	return []int{d.Out}, nil
}

// SetInference toggles inference mode: the input snapshot Backward needs is
// skipped, since a pure forward pass never calls Backward.
func (d *Dense) SetInference(v bool) { d.infer = v }

// Forward implements Layer.
func (d *Dense) Forward(x []float64) []float64 {
	if !d.infer {
		copy(d.x, x)
	}
	tensor.MatVec(d.y, d.w.Data, x, d.Out, d.in)
	for i := range d.y {
		d.y[i] += d.b.Data[i]
	}
	return d.y
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut []float64) []float64 {
	tensor.OuterAccum(d.w.Grad, gradOut, d.x, d.Out, d.in)
	for i, g := range gradOut {
		d.b.Grad[i] += g
	}
	tensor.MatTVec(d.gin, d.w.Data, gradOut, d.Out, d.in)
	return d.gin
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// Spec implements Layer.
func (d *Dense) Spec() LayerSpec {
	return LayerSpec{Type: "dense", Out: d.Out, Init: d.Init}
}

// ActivationLayer applies a pointwise activation.
type ActivationLayer struct {
	Act Activation

	x, y, gin []float64
	infer     bool

	bx, by, bgin []float64 // batched-path caches (bx aliases the input block)
}

// NewActivation wraps a pointwise activation as a layer.
func NewActivation(a Activation) *ActivationLayer { return &ActivationLayer{Act: a} }

// Kind implements Layer.
func (l *ActivationLayer) Kind() string { return "activation" }

// Build implements Layer.
func (l *ActivationLayer) Build(_ *rng.Source, inputShape []int) ([]int, error) {
	if l.Act == nil {
		return nil, fmt.Errorf("nn: activation layer without activation")
	}
	n := shapeLen(inputShape)
	l.x = make([]float64, n)
	l.y = make([]float64, n)
	l.gin = make([]float64, n)
	out := make([]int, len(inputShape))
	copy(out, inputShape)
	return out, nil
}

// SetInference toggles inference mode (skips the input snapshot).
func (l *ActivationLayer) SetInference(v bool) { l.infer = v }

// Forward implements Layer.
func (l *ActivationLayer) Forward(x []float64) []float64 {
	if !l.infer {
		copy(l.x, x)
	}
	for i, v := range x {
		l.y[i] = l.Act.Value(v)
	}
	return l.y
}

// Backward implements Layer.
func (l *ActivationLayer) Backward(gradOut []float64) []float64 {
	for i, g := range gradOut {
		l.gin[i] = g * l.Act.Deriv(l.x[i], l.y[i])
	}
	return l.gin
}

// Params implements Layer.
func (l *ActivationLayer) Params() []*Param { return nil }

// Spec implements Layer.
func (l *ActivationLayer) Spec() LayerSpec {
	return LayerSpec{Type: "activation", Activation: l.Act.Name()}
}

// SoftmaxLayer applies the softmax map. On a vector input it normalizes
// the whole vector (the usual output-layer softmax). On a sequence input
// of shape [length, channels] it follows the Keras semantics of a softmax
// activation on a Conv1D layer: the normalization runs over the channel
// axis independently at every position (Table 1's layer 6).
type SoftmaxLayer struct {
	groups, width int // groups x width = total size; softmax within each width-sized row
	y, gin        []float64

	by, bgin []float64 // batched-path caches
}

// NewSoftmax returns a softmax layer.
func NewSoftmax() *SoftmaxLayer { return &SoftmaxLayer{} }

// Kind implements Layer.
func (l *SoftmaxLayer) Kind() string { return "softmax" }

// Build implements Layer.
func (l *SoftmaxLayer) Build(_ *rng.Source, inputShape []int) ([]int, error) {
	n := shapeLen(inputShape)
	if len(inputShape) == 2 {
		l.groups, l.width = inputShape[0], inputShape[1]
	} else {
		l.groups, l.width = 1, n
	}
	l.y = make([]float64, n)
	l.gin = make([]float64, n)
	out := make([]int, len(inputShape))
	copy(out, inputShape)
	return out, nil
}

// Forward implements Layer.
func (l *SoftmaxLayer) Forward(x []float64) []float64 {
	for g := 0; g < l.groups; g++ {
		lo, hi := g*l.width, (g+1)*l.width
		Softmax(l.y[lo:hi], x[lo:hi])
	}
	return l.y
}

// Backward implements Layer.
func (l *SoftmaxLayer) Backward(gradOut []float64) []float64 {
	// per group: dL/dx_i = y_i * (g_i - Σ_j g_j y_j)
	for g := 0; g < l.groups; g++ {
		lo, hi := g*l.width, (g+1)*l.width
		y := l.y[lo:hi]
		grad := gradOut[lo:hi]
		dot := 0.0
		for i, gv := range grad {
			dot += gv * y[i]
		}
		gin := l.gin[lo:hi]
		for i, gv := range grad {
			gin[i] = y[i] * (gv - dot)
		}
	}
	return l.gin
}

// Params implements Layer.
func (l *SoftmaxLayer) Params() []*Param { return nil }

// Spec implements Layer.
func (l *SoftmaxLayer) Spec() LayerSpec { return LayerSpec{Type: "softmax"} }

// Reshape reinterprets the input as TargetShape (element count preserved).
type Reshape struct {
	TargetShape []int
}

// NewReshape returns a reshape layer targeting the given shape.
func NewReshape(shape ...int) *Reshape { return &Reshape{TargetShape: shape} }

// Kind implements Layer.
func (l *Reshape) Kind() string { return "reshape" }

// Build implements Layer.
func (l *Reshape) Build(_ *rng.Source, inputShape []int) ([]int, error) {
	if shapeLen(l.TargetShape) != shapeLen(inputShape) {
		return nil, fmt.Errorf("nn: reshape %v incompatible with input %v", l.TargetShape, inputShape)
	}
	out := make([]int, len(l.TargetShape))
	copy(out, l.TargetShape)
	return out, nil
}

// Forward implements Layer.
func (l *Reshape) Forward(x []float64) []float64 { return x }

// Backward implements Layer.
func (l *Reshape) Backward(gradOut []float64) []float64 { return gradOut }

// Params implements Layer.
func (l *Reshape) Params() []*Param { return nil }

// Spec implements Layer.
func (l *Reshape) Spec() LayerSpec {
	return LayerSpec{Type: "reshape", TargetShape: append([]int(nil), l.TargetShape...)}
}

// Flatten collapses any input shape to a vector.
type Flatten struct{}

// NewFlatten returns a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Kind implements Layer.
func (l *Flatten) Kind() string { return "flatten" }

// Build implements Layer.
func (l *Flatten) Build(_ *rng.Source, inputShape []int) ([]int, error) {
	return []int{shapeLen(inputShape)}, nil
}

// Forward implements Layer.
func (l *Flatten) Forward(x []float64) []float64 { return x }

// Backward implements Layer.
func (l *Flatten) Backward(gradOut []float64) []float64 { return gradOut }

// Params implements Layer.
func (l *Flatten) Params() []*Param { return nil }

// Spec implements Layer.
func (l *Flatten) Spec() LayerSpec { return LayerSpec{Type: "flatten"} }

// Dropout zeroes a fraction Rate of activations during training and
// rescales the survivors by 1/(1-Rate) (inverted dropout). Outside
// training mode it is the identity.
type Dropout struct {
	Rate float64

	src      *rng.Source
	training bool
	mask     []float64
	y, gin   []float64

	batchSrcs       []*rng.Source // one mask stream per sample of the next batched forward
	bmask, by, bgin []float64     // batched-path caches
}

// NewDropout returns a dropout layer with the given drop rate in [0,1).
func NewDropout(rate float64) *Dropout { return &Dropout{Rate: rate} }

// Kind implements Layer.
func (l *Dropout) Kind() string { return "dropout" }

// Build implements Layer.
func (l *Dropout) Build(src *rng.Source, inputShape []int) ([]int, error) {
	if l.Rate < 0 || l.Rate >= 1 {
		return nil, fmt.Errorf("nn: dropout rate must be in [0,1), got %g", l.Rate)
	}
	n := shapeLen(inputShape)
	l.src = src.Split()
	l.mask = make([]float64, n)
	l.y = make([]float64, n)
	l.gin = make([]float64, n)
	out := make([]int, len(inputShape))
	copy(out, inputShape)
	return out, nil
}

// SetTraining toggles training mode.
func (l *Dropout) SetTraining(training bool) { l.training = training }

// Reseed replaces the mask stream with a fresh deterministic source. The
// data-parallel trainer reseeds every dropout layer per sample (seeds drawn
// in sample order from the fit's seed), which makes the masks — and hence
// the whole fit — independent of which worker processes which sample.
func (l *Dropout) Reseed(src *rng.Source) { l.src = src }

// Forward implements Layer.
func (l *Dropout) Forward(x []float64) []float64 {
	if !l.training || l.Rate == 0 {
		// Identity outside training: pass the input through without the
		// defensive copy (values are unchanged either way).
		return x
	}
	keep := 1 - l.Rate
	inv := 1 / keep
	for i, v := range x {
		if l.src.Float64() < keep {
			l.mask[i] = inv
		} else {
			l.mask[i] = 0
		}
		l.y[i] = v * l.mask[i]
	}
	return l.y
}

// Backward implements Layer.
func (l *Dropout) Backward(gradOut []float64) []float64 {
	if !l.training || l.Rate == 0 {
		return gradOut
	}
	for i, g := range gradOut {
		l.gin[i] = g * l.mask[i]
	}
	return l.gin
}

// Params implements Layer.
func (l *Dropout) Params() []*Param { return nil }

// Spec implements Layer.
func (l *Dropout) Spec() LayerSpec { return LayerSpec{Type: "dropout", Rate: l.Rate} }

// trainingAware is implemented by layers whose behaviour differs between
// training and inference (currently only Dropout).
type trainingAware interface {
	SetTraining(bool)
}

// inferenceAware is implemented by layers that can skip the input snapshots
// Backward would need when the caller promises a pure forward pass (Predict,
// PredictBatch, the evaluate helpers). Outputs are unchanged; only the
// defensive copies disappear.
type inferenceAware interface {
	SetInference(bool)
}
