package nn

import (
	"fmt"
	"strings"
	"sync"

	"specml/internal/parallel"
	"specml/internal/rng"
)

// Model is a feed-forward stack of layers.
type Model struct {
	layers      []Layer
	inputShape  []int
	outputShape []int
	built       bool

	// Cached shared replicas for data-parallel PredictBatch, recycled
	// across calls so steady-state batched inference allocates nothing.
	repMu   sync.Mutex
	repFree []*Model

	// Per-layer output blocks for the batched forward's per-sample
	// fallback (layers without a batched kernel).
	fallbackOut [][]float64

	// params caches the flattened parameter list once built (the layer
	// stack is immutable after Build), so per-batch ZeroGrad calls don't
	// rebuild the slice.
	params []*Param

	// fuseAct enables the fused Dense+activation batch step (opt-in,
	// bit-identical; see forwardBatchFused in batch.go).
	fuseAct bool
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// Add appends a layer. It panics if the model is already built, which is
// always a programming error.
func (m *Model) Add(l Layer) *Model {
	if m.built {
		panic("nn: Add after Build")
	}
	m.layers = append(m.layers, l)
	return m
}

// Build fixes the input shape, allocates and initializes all parameters
// from src, and validates shape compatibility across the stack.
func (m *Model) Build(src *rng.Source, inputShape ...int) error {
	if m.built {
		return fmt.Errorf("nn: model already built")
	}
	if len(m.layers) == 0 {
		return fmt.Errorf("nn: empty model")
	}
	shape := append([]int(nil), inputShape...)
	if shapeLen(shape) == 0 {
		return fmt.Errorf("nn: empty input shape %v", inputShape)
	}
	for i, l := range m.layers {
		out, err := l.Build(src, shape)
		if err != nil {
			return fmt.Errorf("nn: building layer %d (%s): %w", i, l.Kind(), err)
		}
		shape = out
	}
	m.inputShape = append([]int(nil), inputShape...)
	m.outputShape = shape
	m.built = true
	for _, l := range m.layers {
		m.params = append(m.params, l.Params()...)
	}
	return nil
}

// InputShape returns the built input shape.
func (m *Model) InputShape() []int { return m.inputShape }

// OutputShape returns the built output shape.
func (m *Model) OutputShape() []int { return m.outputShape }

// InputLen returns the flat input size.
func (m *Model) InputLen() int { return shapeLen(m.inputShape) }

// OutputLen returns the flat output size.
func (m *Model) OutputLen() int { return shapeLen(m.outputShape) }

// Layers returns the layer stack.
func (m *Model) Layers() []Layer { return m.layers }

// Forward runs one sample through the network and returns the output
// buffer, which is owned by the model and overwritten by the next call.
func (m *Model) Forward(x []float64) []float64 {
	if !m.built {
		panic("nn: Forward before Build")
	}
	if len(x) != m.InputLen() {
		panic(fmt.Sprintf("nn: input length %d, model expects %d", len(x), m.InputLen()))
	}
	for _, l := range m.layers {
		x = l.Forward(x)
	}
	return x
}

// Predict runs Forward with training-mode layers (dropout) disabled and
// copies the output into a fresh slice. The pass runs in inference mode:
// layers skip the input snapshots only Backward would read.
func (m *Model) Predict(x []float64) []float64 {
	m.SetTraining(false)
	m.setInference(true)
	out := m.Forward(x)
	res := make([]float64, len(out))
	copy(res, out)
	m.setInference(false)
	return res
}

// Backward propagates dLoss/dOutput through the stack, accumulating
// parameter gradients. It must follow a Forward call for the same sample.
func (m *Model) Backward(gradOut []float64) []float64 {
	if !m.built {
		panic("nn: Backward before Build")
	}
	g := gradOut
	for i := len(m.layers) - 1; i >= 0; i-- {
		g = m.layers[i].Backward(g)
	}
	return g
}

// Params returns all trainable parameters in layer order. After Build the
// cached list is returned; callers must not append to it.
func (m *Model) Params() []*Param {
	if m.built {
		return m.params
	}
	var ps []*Param
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total trainable parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Data)
	}
	return n
}

// ZeroGrad clears all gradient accumulators.
func (m *Model) ZeroGrad() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// SetTraining toggles training-mode behaviour on layers that have one.
func (m *Model) SetTraining(training bool) {
	for _, l := range m.layers {
		if ta, ok := l.(trainingAware); ok {
			ta.SetTraining(training)
		}
	}
}

// setInference toggles snapshot-free forward passes on layers that support
// them. Callers must restore the flag to false before any Forward whose
// caches a later Backward will consume.
func (m *Model) setInference(v bool) {
	for _, l := range m.layers {
		if ia, ok := l.(inferenceAware); ok {
			ia.SetInference(v)
		}
	}
}

// SetFusedActivations toggles the fused Dense+activation batch step: when
// a Dense layer is immediately followed by a ReLU/SELU activation, the
// batched forward applies the activation inside the GEMM output/bias pass
// instead of traversing the block a second time. Off by default; results
// (and gradients, when training through the batched path) are bit-identical
// either way. Replicas created after the call inherit the setting.
func (m *Model) SetFusedActivations(v bool) { m.fuseAct = v }

// Clone returns an independent copy of a built model: same architecture,
// deep-copied parameters, fresh caches.
func (m *Model) Clone() (*Model, error) {
	if !m.built {
		return nil, fmt.Errorf("nn: Clone before Build")
	}
	c := NewModel()
	for _, l := range m.layers {
		nl, err := LayerFromSpec(l.Spec())
		if err != nil {
			return nil, err
		}
		c.Add(nl)
	}
	// Build with a throwaway source, then overwrite parameters.
	if err := c.Build(rng.New(0), m.inputShape...); err != nil {
		return nil, err
	}
	src := m.Params()
	dst := c.Params()
	for i := range src {
		copy(dst[i].Data, src[i].Data)
	}
	c.fuseAct = m.fuseAct
	return c, nil
}

// sharedReplica returns a model with the same architecture whose parameter
// Data slices alias the receiver's — weights are shared read-only and stay
// in sync with the receiver at zero copy cost — while gradient buffers and
// all layer caches (activations, dropout masks, LSTM state) are private.
// Replicas back the data-parallel paths of Fit and PredictBatch: one
// replica per worker, each serving one goroutine at a time.
func (m *Model) sharedReplica() (*Model, error) {
	c, err := m.Clone()
	if err != nil {
		return nil, err
	}
	src, dst := m.Params(), c.Params()
	for i := range src {
		dst[i].Data = src[i].Data
	}
	return c, nil
}

// replicaPool builds n shared replicas of the model.
func (m *Model) replicaPool(n int) ([]*Model, error) {
	pool := make([]*Model, n)
	for i := range pool {
		r, err := m.sharedReplica()
		if err != nil {
			return nil, err
		}
		pool[i] = r
	}
	return pool, nil
}

// hasDropout reports whether any layer needs per-sample mask reseeding
// during data-parallel training.
func (m *Model) hasDropout() bool {
	for _, l := range m.layers {
		if _, ok := l.(*Dropout); ok {
			return true
		}
	}
	return false
}

// reseedDropout gives every dropout layer a fresh stream derived from
// seed (one Split per layer, in layer order).
func (m *Model) reseedDropout(seed uint64) {
	src := rng.New(seed)
	for _, l := range m.layers {
		if d, ok := l.(*Dropout); ok {
			d.Reseed(src.Split())
		}
	}
}

// PredictBatch runs inference over all rows of x, returning one freshly
// allocated prediction per row. The rows are packed into one block and
// forwarded through the batched kernels (im2col + blocked GEMM), which are
// bit-identical to calling Predict row by row. With workers > 1 (0 = all
// cores) the block is sharded into contiguous row ranges, each forwarded
// through a cached shared replica, so the receiver's caches are never
// touched and steady-state calls allocate only the returned slices.
func (m *Model) PredictBatch(x [][]float64, workers int) ([][]float64, error) {
	if !m.built {
		return nil, fmt.Errorf("nn: PredictBatch before Build")
	}
	out := make([][]float64, len(x))
	if len(x) == 0 {
		return out, nil
	}
	m.checkBatchInputs(x)
	inLen, outLen := m.InputLen(), m.OutputLen()
	w := parallel.Resolve(workers)
	if w > len(x) {
		w = len(x)
	}
	xb := batchScratch.Get(len(x) * inLen)
	defer batchScratch.Put(xb)
	for i, row := range x {
		copy(xb[i*inLen:(i+1)*inLen], row)
	}
	runShard := func(mm *Model, lo, hi int) {
		mm.SetTraining(false)
		mm.setInference(true)
		yb := mm.forwardBatch(xb[lo*inLen:hi*inLen], hi-lo)
		mm.setInference(false)
		for s := lo; s < hi; s++ {
			res := make([]float64, outLen)
			copy(res, yb[(s-lo)*outLen:(s-lo+1)*outLen])
			out[s] = res
		}
	}
	if w == 1 {
		runShard(m, 0, len(x))
		return out, nil
	}
	reps, err := m.acquireReplicas(w)
	if err != nil {
		return nil, err
	}
	defer m.releaseReplicas(reps)
	err = parallel.For(w, w, func(_, shard int) error {
		lo, hi := shard*len(x)/w, (shard+1)*len(x)/w
		if lo < hi {
			runShard(reps[shard], lo, hi)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CopyParamsFrom copies parameter values from other, which must have an
// identical architecture.
func (m *Model) CopyParamsFrom(other *Model) error {
	a, b := m.Params(), other.Params()
	if len(a) != len(b) {
		return fmt.Errorf("nn: parameter-set mismatch (%d vs %d tensors)", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Data) != len(b[i].Data) {
			return fmt.Errorf("nn: parameter tensor %d size mismatch", i)
		}
		copy(a[i].Data, b[i].Data)
	}
	return nil
}

// Summary returns a human-readable architecture table in the spirit of the
// paper's Table 1.
func (m *Model) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-20s %-14s %10s\n", "#", "Layer", "Output", "Params")
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", 52))
	shape := m.inputShape
	fmt.Fprintf(&sb, "%-4s %-20s %-14v %10d\n", "0", "input", shape, 0)
	// Rebuild shapes by re-deriving from specs is unnecessary: track through
	// layer Build results is not stored per layer, so recompute via OutputShape
	// of sequential dry-run: store during Build would be cleaner; derive here.
	shapes := m.layerShapes()
	for i, l := range m.layers {
		n := 0
		for _, p := range l.Params() {
			n += len(p.Data)
		}
		fmt.Fprintf(&sb, "%-4d %-20s %-14v %10d\n", i+1, l.Kind(), shapes[i], n)
	}
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", 52))
	fmt.Fprintf(&sb, "total trainable parameters: %d\n", m.NumParams())
	return sb.String()
}

// LayerOutputShapes returns the output shape of every layer in order,
// derived from the built input shape. Used by the platform cost model to
// count per-layer operations.
func (m *Model) LayerOutputShapes() [][]int {
	if !m.built {
		panic("nn: LayerOutputShapes before Build")
	}
	return m.layerShapes()
}

// layerShapes recomputes per-layer output shapes from the specs (shape
// inference only, no allocation of new models).
func (m *Model) layerShapes() [][]int {
	shapes := make([][]int, len(m.layers))
	shape := m.inputShape
	for i, l := range m.layers {
		shape = inferShape(l, shape)
		shapes[i] = shape
	}
	return shapes
}

// inferShape mirrors each layer's Build-time shape computation without
// touching parameters.
func inferShape(l Layer, in []int) []int {
	switch v := l.(type) {
	case *Dense:
		return []int{v.Out}
	case *Conv1D:
		length, _, err := seq2D(in)
		if err != nil {
			return in
		}
		out, err := convOutLen(length, v.Kernel, v.Stride)
		if err != nil {
			return in
		}
		return []int{out, v.Filters}
	case *LocallyConnected1D:
		length, _, err := seq2D(in)
		if err != nil {
			return in
		}
		out, err := convOutLen(length, v.Kernel, v.Stride)
		if err != nil {
			return in
		}
		return []int{out, v.Filters}
	case *MaxPool1D:
		length, ch, err := seq2D(in)
		if err != nil {
			return in
		}
		out, err := convOutLen(length, v.Kernel, v.Stride)
		if err != nil {
			return in
		}
		return []int{out, ch}
	case *AvgPool1D:
		length, ch, err := seq2D(in)
		if err != nil {
			return in
		}
		out, err := convOutLen(length, v.Kernel, v.Stride)
		if err != nil {
			return in
		}
		return []int{out, ch}
	case *LSTM:
		return []int{v.Units}
	case *TimeDistributed:
		if len(in) != 2 {
			return in
		}
		innerIn := v.InnerShape
		if len(innerIn) == 0 {
			innerIn = []int{in[1]}
		}
		return []int{in[0], shapeLen(inferShape(v.Inner, innerIn))}
	case *Flatten:
		return []int{shapeLen(in)}
	case *Reshape:
		return append([]int(nil), v.TargetShape...)
	default:
		return in
	}
}
