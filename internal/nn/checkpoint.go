package nn

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"specml/internal/rng"
)

// OptimizerState is a serializable snapshot of an optimizer's per-parameter
// state. Slots maps a state name ("m", "v", "velocity", ...) to one row per
// parameter tensor, in Model.Params order — the order is the contract that
// lets a restored optimizer re-key its state by pointer on a rebuilt model.
type OptimizerState struct {
	Name  string                 `json:"name"`
	Step  int                    `json:"step,omitempty"`
	Slots map[string][][]float64 `json:"slots,omitempty"`
}

// StatefulOptimizer is implemented by optimizers whose state can be captured
// into a checkpoint and restored so a resumed fit continues bit-identically.
// params must be the same ordered parameter set the optimizer steps.
type StatefulOptimizer interface {
	Optimizer
	// CaptureState snapshots the optimizer state for the given parameters.
	// Returned rows are copies; mutating the optimizer afterwards does not
	// alter a captured state.
	CaptureState(params []*Param) OptimizerState
	// RestoreState re-keys a captured state onto the given parameters.
	RestoreState(params []*Param, st OptimizerState) error
}

// captureSlot copies one state row per parameter. Parameters the optimizer
// has not touched yet get zero rows (the same state lazy initialization
// would produce).
func captureSlot(params []*Param, state map[*Param][]float64) [][]float64 {
	rows := make([][]float64, len(params))
	for i, p := range params {
		row := make([]float64, len(p.Data))
		if state != nil {
			copy(row, state[p])
		}
		rows[i] = row
	}
	return rows
}

// restoreSlot re-keys one slot's rows by parameter pointer, validating shape.
func restoreSlot(name string, params []*Param, rows [][]float64) (map[*Param][]float64, error) {
	if len(rows) != len(params) {
		return nil, fmt.Errorf("nn: optimizer slot %q has %d rows, model has %d parameter tensors",
			name, len(rows), len(params))
	}
	state := make(map[*Param][]float64, len(params))
	for i, p := range params {
		if len(rows[i]) != len(p.Data) {
			return nil, fmt.Errorf("nn: optimizer slot %q row %d has %d values, want %d",
				name, i, len(rows[i]), len(p.Data))
		}
		row := make([]float64, len(p.Data))
		copy(row, rows[i])
		state[p] = row
	}
	return state, nil
}

func checkStateName(got OptimizerState, want string) error {
	if got.Name != want {
		return fmt.Errorf("nn: optimizer state is for %q, optimizer is %q", got.Name, want)
	}
	return nil
}

// CaptureState implements StatefulOptimizer. SGD is stateless.
func (s *SGD) CaptureState([]*Param) OptimizerState {
	return OptimizerState{Name: s.Name()}
}

// RestoreState implements StatefulOptimizer.
func (s *SGD) RestoreState(_ []*Param, st OptimizerState) error {
	return checkStateName(st, s.Name())
}

// CaptureState implements StatefulOptimizer.
func (m *Momentum) CaptureState(params []*Param) OptimizerState {
	return OptimizerState{
		Name:  m.Name(),
		Slots: map[string][][]float64{"velocity": captureSlot(params, m.velocity)},
	}
}

// RestoreState implements StatefulOptimizer.
func (m *Momentum) RestoreState(params []*Param, st OptimizerState) error {
	if err := checkStateName(st, m.Name()); err != nil {
		return err
	}
	v, err := restoreSlot("velocity", params, st.Slots["velocity"])
	if err != nil {
		return err
	}
	m.velocity = v
	return nil
}

// CaptureState implements StatefulOptimizer.
func (a *Adam) CaptureState(params []*Param) OptimizerState {
	return OptimizerState{
		Name: a.Name(),
		Step: a.t,
		Slots: map[string][][]float64{
			"m": captureSlot(params, a.m),
			"v": captureSlot(params, a.v),
		},
	}
}

// RestoreState implements StatefulOptimizer.
func (a *Adam) RestoreState(params []*Param, st OptimizerState) error {
	if err := checkStateName(st, a.Name()); err != nil {
		return err
	}
	m, err := restoreSlot("m", params, st.Slots["m"])
	if err != nil {
		return err
	}
	v, err := restoreSlot("v", params, st.Slots["v"])
	if err != nil {
		return err
	}
	a.t = st.Step
	a.m, a.v = m, v
	return nil
}

// Checkpoint is a complete mid-training snapshot: weights, optimizer state
// and the fit cursor (completed epochs). Resuming from it with the same
// FitConfig and data source continues bit-identically to an uninterrupted
// fit — the shuffle and dropout streams are fast-forwarded past Epoch
// completed passes, and JSON round-trips float64 exactly (shortest-repr),
// so nothing drifts across a save/load boundary.
type Checkpoint struct {
	Epoch     int    // completed epochs
	Seed      uint64 // FitConfig.Seed the run was started with
	Samples   int    // per-epoch sample count of the data source
	BatchSize int
	Model     *Model // weights after Epoch epochs
	Optimizer OptimizerState
	History   *History
	// BestValBits is math.Float64bits of the best validation loss so far —
	// bit-level encoding keeps +Inf (no validation yet) exact in JSON.
	BestValBits uint64
	SinceBest   int    // epochs since the best validation epoch
	Best        *Model // best-epoch weights (nil when not tracking)
}

// savedCheckpoint is the on-disk JSON layout of a checkpoint.
type savedCheckpoint struct {
	Format      string         `json:"format"`
	Epoch       int            `json:"epoch"`
	Seed        uint64         `json:"seed"`
	Samples     int            `json:"samples"`
	BatchSize   int            `json:"batchSize"`
	InputShape  []int          `json:"inputShape"`
	Layers      []LayerSpec    `json:"layers"`
	Weights     [][]float64    `json:"weights"`
	Optimizer   OptimizerState `json:"optimizer"`
	History     *History       `json:"history,omitempty"`
	BestValBits uint64         `json:"bestValBits"`
	SinceBest   int            `json:"sinceBest,omitempty"`
	BestWeights [][]float64    `json:"bestWeights,omitempty"`
}

const checkpointFormat = "specml/ckpt/v1"

// SaveCheckpoint writes a checkpoint as specml/ckpt/v1 JSON.
func SaveCheckpoint(w io.Writer, ck *Checkpoint) error {
	if ck == nil || ck.Model == nil {
		return fmt.Errorf("nn: checkpoint needs a model")
	}
	if !ck.Model.built {
		return fmt.Errorf("nn: checkpoint model is not built")
	}
	sc := savedCheckpoint{
		Format:      checkpointFormat,
		Epoch:       ck.Epoch,
		Seed:        ck.Seed,
		Samples:     ck.Samples,
		BatchSize:   ck.BatchSize,
		InputShape:  ck.Model.inputShape,
		Layers:      ck.Model.Specs(),
		Optimizer:   ck.Optimizer,
		History:     ck.History,
		BestValBits: ck.BestValBits,
		SinceBest:   ck.SinceBest,
	}
	for _, p := range ck.Model.Params() {
		sc.Weights = append(sc.Weights, p.Data)
	}
	if ck.Best != nil {
		for _, p := range ck.Best.Params() {
			sc.BestWeights = append(sc.BestWeights, p.Data)
		}
	}
	return json.NewEncoder(w).Encode(&sc)
}

// loadWeights rebuilds a model from specs and copies saved weight tensors in.
func loadWeights(specs []LayerSpec, inputShape []int, weights [][]float64) (*Model, error) {
	m, err := FromSpecs(specs)
	if err != nil {
		return nil, err
	}
	if err := m.Build(rng.New(0), inputShape...); err != nil {
		return nil, err
	}
	params := m.Params()
	if len(params) != len(weights) {
		return nil, fmt.Errorf("nn: checkpoint has %d weight tensors, architecture needs %d",
			len(weights), len(params))
	}
	for i, p := range params {
		if len(p.Data) != len(weights[i]) {
			return nil, fmt.Errorf("nn: weight tensor %d has %d values, want %d",
				i, len(weights[i]), len(p.Data))
		}
		copy(p.Data, weights[i])
	}
	return m, nil
}

// LoadCheckpoint reads a checkpoint saved with SaveCheckpoint. The contained
// models come back built.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var sc savedCheckpoint
	if err := json.NewDecoder(r).Decode(&sc); err != nil {
		return nil, fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	if sc.Format != checkpointFormat {
		return nil, fmt.Errorf("nn: unsupported checkpoint format %q", sc.Format)
	}
	model, err := loadWeights(sc.Layers, sc.InputShape, sc.Weights)
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{
		Epoch:       sc.Epoch,
		Seed:        sc.Seed,
		Samples:     sc.Samples,
		BatchSize:   sc.BatchSize,
		Model:       model,
		Optimizer:   sc.Optimizer,
		History:     sc.History,
		BestValBits: sc.BestValBits,
		SinceBest:   sc.SinceBest,
	}
	if len(sc.BestWeights) > 0 {
		best, err := loadWeights(sc.Layers, sc.InputShape, sc.BestWeights)
		if err != nil {
			return nil, fmt.Errorf("nn: best-epoch weights: %w", err)
		}
		ck.Best = best
	}
	return ck, nil
}

// SaveCheckpointFile writes a checkpoint atomically: the JSON goes to a
// temporary file in the same directory and is renamed into place, so a crash
// mid-write never corrupts the previous checkpoint.
func SaveCheckpointFile(path string, ck *Checkpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("nn: writing checkpoint: %w", err)
	}
	if err := SaveCheckpoint(f, ck); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("nn: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("nn: writing checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpointFile reads a checkpoint written by SaveCheckpointFile.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: reading checkpoint: %w", err)
	}
	defer f.Close()
	return LoadCheckpoint(f)
}

// snapshotCheckpoint captures the fit state after `epoch` completed epochs.
// The weights are deep-copied (training continues to mutate the master) and
// the optimizer state rows are copied by CaptureState; bestModel is retained
// by reference because the fit replaces — never mutates — it.
func (m *Model) snapshotCheckpoint(cfg FitConfig, n, epoch int, hist *History, bestVal float64, sinceBest int, bestModel *Model) (*Checkpoint, error) {
	so, ok := cfg.Optimizer.(StatefulOptimizer)
	if !ok {
		return nil, fmt.Errorf("nn: optimizer %s does not support checkpointing", cfg.Optimizer.Name())
	}
	snap, err := m.Clone()
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		Epoch:       epoch,
		Seed:        cfg.Seed,
		Samples:     n,
		BatchSize:   cfg.BatchSize,
		Model:       snap,
		Optimizer:   so.CaptureState(m.Params()),
		History:     cloneHistory(hist),
		BestValBits: math.Float64bits(bestVal),
		SinceBest:   sinceBest,
		Best:        bestModel,
	}, nil
}
