package nn

import (
	"math"
	"testing"

	"specml/internal/rng"
)

// The accuracy-delta gate: the in-repo mirror of the paper's Table 2
// embedded-deployment story. Two small models train on seeded synthetic
// corpora — an MS-style peak-pattern classifier and an NMR-style
// concentration regressor — then run through the int8 engine. The int8
// path must agree with the float path on ≥99% of classifier argmaxes and
// drift regression MAE by ≤1%. These thresholds are the contract named in
// DESIGN.md §5e; loosening them is a product decision, not a test fix.

// msClassSpectrum renders one synthetic spectrum of nPts bins for class c:
// class-specific peak positions with jittered Gaussian peaks plus noise.
func msClassSpectrum(src *rng.Source, c, nPts int) []float64 {
	positions := [][]int{
		{12, 40, 85},
		{25, 55, 101},
		{18, 70, 93},
		{33, 62, 110},
	}[c]
	x := make([]float64, nPts)
	for _, p := range positions {
		amp := src.Uniform(0.6, 1.2)
		width := src.Uniform(1.5, 3)
		center := float64(p) + src.Uniform(-1, 1)
		for i := range x {
			d := (float64(i) - center) / width
			x[i] += amp * math.Exp(-0.5*d*d)
		}
	}
	for i := range x {
		x[i] += src.Uniform(0, 0.05)
	}
	return x
}

func TestQuantizedClassifierArgmaxAgreement(t *testing.T) {
	const (
		nPts    = 120
		classes = 4
		nTrain  = 600
		nEval   = 400
	)
	src := rng.New(20260808)
	trainX := make([][]float64, nTrain)
	trainY := make([][]float64, nTrain)
	for i := range trainX {
		c := i % classes
		trainX[i] = msClassSpectrum(src, c, nPts)
		trainY[i] = make([]float64, classes)
		trainY[i][c] = 1
	}

	m := NewModel().
		Add(NewReshape(nPts, 1)).
		Add(NewConv1D(8, 9, 4)).
		Add(NewActivation(ReLU)).
		Add(NewFlatten()).
		Add(NewDense(classes)).
		Add(NewSoftmax())
	if err := m.Build(rng.New(77), nPts); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(trainX, trainY, FitConfig{Epochs: 6, BatchSize: 32, Seed: 5}); err != nil {
		t.Fatal(err)
	}

	q, err := Quantize(m)
	if err != nil {
		t.Fatal(err)
	}

	argmax := func(v []float64) int {
		best := 0
		for i := range v {
			if v[i] > v[best] {
				best = i
			}
		}
		return best
	}
	agree, correct := 0, 0
	for i := 0; i < nEval; i++ {
		c := i % classes
		x := msClassSpectrum(src, c, nPts)
		fa := argmax(m.Predict(x))
		qa := argmax(q.Predict(x))
		if fa == qa {
			agree++
		}
		if fa == c {
			correct++
		}
	}
	agreement := float64(agree) / nEval
	t.Logf("float accuracy %.1f%%, int8/float argmax agreement %.2f%% (%d/%d)",
		100*float64(correct)/nEval, 100*agreement, agree, nEval)
	// Sanity: the gate is meaningless on an untrained model.
	if float64(correct)/nEval < 0.9 {
		t.Fatalf("float classifier only %d/%d correct; corpus or training regressed", correct, nEval)
	}
	if agreement < 0.99 {
		t.Fatalf("int8 argmax agreement %.2f%% below the 99%% contract (%d/%d)",
			100*agreement, agree, nEval)
	}
}

// nmrMixSpectrum renders a two-peak mixture spectrum; the regression
// target is the first component's concentration.
func nmrMixSpectrum(src *rng.Source, nPts int) ([]float64, float64) {
	conc := src.Uniform(0.2, 1.0)
	x := make([]float64, nPts)
	for _, pk := range []struct {
		pos int
		amp float64
	}{{14, conc}, {44, 1 - conc}} {
		amp := pk.amp
		width := src.Uniform(2, 3.5)
		center := float64(pk.pos) + src.Uniform(-0.5, 0.5)
		for i := range x {
			d := (float64(i) - center) / width
			x[i] += amp * math.Exp(-0.5*d*d)
		}
	}
	for i := range x {
		x[i] += src.Uniform(0, 0.02)
	}
	return x, conc
}

func TestQuantizedRegressorMAEDelta(t *testing.T) {
	const (
		nPts   = 64
		nTrain = 600
		nEval  = 400
	)
	src := rng.New(20260809)
	trainX := make([][]float64, nTrain)
	trainY := make([][]float64, nTrain)
	for i := range trainX {
		x, conc := nmrMixSpectrum(src, nPts)
		trainX[i] = x
		trainY[i] = []float64{conc}
	}

	m := NewModel().
		Add(NewDense(32)).
		Add(NewActivation(ReLU)).
		Add(NewDense(16)).
		Add(NewActivation(ReLU)).
		Add(NewDense(1))
	if err := m.Build(rng.New(78), nPts); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(trainX, trainY, FitConfig{Epochs: 10, BatchSize: 32, Seed: 6}); err != nil {
		t.Fatal(err)
	}

	q, err := Quantize(m)
	if err != nil {
		t.Fatal(err)
	}

	sumDelta, sumRef, sumErrF, sumErrQ := 0.0, 0.0, 0.0, 0.0
	for i := 0; i < nEval; i++ {
		x, conc := nmrMixSpectrum(src, nPts)
		yf := m.Predict(x)[0]
		yq := q.Predict(x)[0]
		sumDelta += math.Abs(yq - yf)
		sumRef += math.Abs(yf)
		sumErrF += math.Abs(yf - conc)
		sumErrQ += math.Abs(yq - conc)
	}
	maeDelta := sumDelta / sumRef
	t.Logf("float MAE %.4f, int8 MAE %.4f, int8-vs-float MAE delta %.3f%%",
		sumErrF/nEval, sumErrQ/nEval, 100*maeDelta)
	// Sanity: the regressor must actually have learned the concentration.
	if sumErrF/nEval > 0.05 {
		t.Fatalf("float regressor MAE %.4f too high; corpus or training regressed", sumErrF/nEval)
	}
	if maeDelta > 0.01 {
		t.Fatalf("int8 MAE delta %.3f%% exceeds the 1%% contract", 100*maeDelta)
	}
}
