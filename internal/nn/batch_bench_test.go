package nn

import (
	"testing"

	"specml/internal/rng"
)

// The serve demo stack: dense 199 -> 32 -> 8 with a softmax head.
func benchDenseModel(b *testing.B) *Model {
	b.Helper()
	m := NewModel().
		Add(NewDense(32)).
		Add(NewActivation(ReLU)).
		Add(NewDense(8)).
		Add(NewSoftmax())
	if err := m.Build(rng.New(1), 199); err != nil {
		b.Fatal(err)
	}
	return m
}

// A Table-1-style MS conv stack at reduced width.
func benchConvModel(b *testing.B) *Model {
	b.Helper()
	m := NewModel().
		Add(NewReshape(500, 1)).
		Add(NewConv1D(20, 25, 2)).
		Add(NewActivation(ReLU)).
		Add(NewConv1D(15, 25, 3)).
		Add(NewActivation(ReLU)).
		Add(NewFlatten()).
		Add(NewDense(8)).
		Add(NewSoftmax())
	if err := m.Build(rng.New(2), 500); err != nil {
		b.Fatal(err)
	}
	return m
}

func benchBlock(n, width int) []float64 {
	src := rng.New(50)
	xb := make([]float64, n*width)
	for i := range xb {
		xb[i] = src.Uniform(-1, 1)
	}
	return xb
}

func BenchmarkBatchForwardDense32(b *testing.B) {
	m := benchDenseModel(b)
	xb := benchBlock(32, m.InputLen())
	m.SetTraining(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.forwardBatch(xb, 32)
	}
}

func BenchmarkBatchForwardDense32PerSample(b *testing.B) {
	m := benchDenseModel(b)
	inLen := m.InputLen()
	xb := benchBlock(32, inLen)
	m.SetTraining(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 32; s++ {
			m.Forward(xb[s*inLen : (s+1)*inLen])
		}
	}
}

func BenchmarkBatchForwardConv32(b *testing.B) {
	m := benchConvModel(b)
	xb := benchBlock(32, m.InputLen())
	m.SetTraining(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.forwardBatch(xb, 32)
	}
}

func BenchmarkBatchForwardConv32PerSample(b *testing.B) {
	m := benchConvModel(b)
	inLen := m.InputLen()
	xb := benchBlock(32, inLen)
	m.SetTraining(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 32; s++ {
			m.Forward(xb[s*inLen : (s+1)*inLen])
		}
	}
}

func BenchmarkBatchForwardBackwardConv32(b *testing.B) {
	m := benchConvModel(b)
	xb := benchBlock(32, m.InputLen())
	gb := benchBlock(32, m.OutputLen())
	m.SetTraining(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrad()
		m.forwardBatch(xb, 32)
		m.backwardBatch(gb, 32)
	}
}

func BenchmarkPredictBatch32(b *testing.B) {
	m := benchDenseModel(b)
	inLen := m.InputLen()
	block := benchBlock(32, inLen)
	rows := make([][]float64, 32)
	for i := range rows {
		rows[i] = block[i*inLen : (i+1)*inLen]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PredictBatch(rows, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitEpochDenseBatched(b *testing.B) {
	m := benchDenseModel(b)
	const n = 256
	inLen, outLen := m.InputLen(), m.OutputLen()
	block := benchBlock(n, inLen)
	x := make([][]float64, n)
	y := make([][]float64, n)
	for i := range x {
		x[i] = block[i*inLen : (i+1)*inLen]
		y[i] = make([]float64, outLen)
		y[i][i%outLen] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Fit(x, y, FitConfig{Epochs: 1, BatchSize: 32, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// The Table-2 NMR monitor stack: 5x1700-point windows through LSTM(32) into
// a 4-component head — the 221,956-parameter model core.Monitor steps on
// every reactor tick.
func benchLSTMModel(b *testing.B) *Model {
	b.Helper()
	m := NewModel().
		Add(NewReshape(5, 1700)).
		Add(NewLSTM(32)).
		Add(NewDense(4))
	if err := m.Build(rng.New(3), 5*1700); err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkLSTMBatchForward32(b *testing.B) {
	m := benchLSTMModel(b)
	xb := benchBlock(32, m.InputLen())
	m.SetTraining(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.forwardBatch(xb, 32)
	}
}

func BenchmarkLSTMBatchForward32PerSample(b *testing.B) {
	m := benchLSTMModel(b)
	inLen := m.InputLen()
	xb := benchBlock(32, inLen)
	m.SetTraining(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 32; s++ {
			m.Forward(xb[s*inLen : (s+1)*inLen])
		}
	}
}

func BenchmarkLSTMBatchForwardBackward32(b *testing.B) {
	m := benchLSTMModel(b)
	xb := benchBlock(32, m.InputLen())
	gb := benchBlock(32, m.OutputLen())
	m.SetTraining(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrad()
		m.forwardBatch(xb, 32)
		m.backwardBatch(gb, 32)
	}
}

func BenchmarkLSTMFitEpoch(b *testing.B) {
	m := benchLSTMModel(b)
	const n = 128
	inLen, outLen := m.InputLen(), m.OutputLen()
	block := benchBlock(n, inLen)
	x := make([][]float64, n)
	y := make([][]float64, n)
	for i := range x {
		x[i] = block[i*inLen : (i+1)*inLen]
		y[i] = make([]float64, outLen)
		y[i][i%outLen] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Fit(x, y, FitConfig{Epochs: 1, BatchSize: 32, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
