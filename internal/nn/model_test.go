package nn

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"specml/internal/rng"
)

func TestModelShapeInference(t *testing.T) {
	// The paper's Table-1 topology on a 200-point spectrum with 8 outputs.
	m := NewModel().
		Add(NewReshape(200, 1)).
		Add(NewConv1D(25, 20, 1)).Add(NewActivation(SELU)).
		Add(NewConv1D(25, 20, 3)).Add(NewActivation(SELU)).
		Add(NewConv1D(25, 15, 2)).Add(NewActivation(SELU)).
		Add(NewConv1D(15, 15, 4)).Add(NewSoftmax()).
		Add(NewFlatten()).
		Add(NewDense(8)).Add(NewSoftmax())
	if err := m.Build(rng.New(1), 200); err != nil {
		t.Fatal(err)
	}
	if m.OutputLen() != 8 {
		t.Fatalf("output len = %d, want 8", m.OutputLen())
	}
	// 200 -k20s1-> 181 -k20s3-> 54 -k15s2-> 20 -k15s4-> 2 positions x 15 filters
	shapes := m.layerShapes()
	wantConv4 := []int{2, 15}
	got := shapes[7]
	if !shapeEq(got, wantConv4) {
		t.Fatalf("conv4 shape = %v, want %v", got, wantConv4)
	}
	out := m.Forward(make([]float64, 200))
	if len(out) != 8 {
		t.Fatalf("forward output len = %d", len(out))
	}
}

func TestModelBuildErrors(t *testing.T) {
	m := NewModel()
	if err := m.Build(rng.New(1), 4); err == nil {
		t.Fatal("empty model must not build")
	}
	m2 := NewModel().Add(NewConv1D(2, 10, 1))
	if err := m2.Build(rng.New(1), 5); err == nil {
		t.Fatal("kernel larger than input must not build")
	}
	m3 := NewModel().Add(NewDense(3))
	if err := m3.Build(rng.New(1), 4); err != nil {
		t.Fatal(err)
	}
	if err := m3.Build(rng.New(1), 4); err == nil {
		t.Fatal("double Build must error")
	}
}

func TestModelForwardBeforeBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewModel().Add(NewDense(2)).Forward([]float64{1})
}

func TestModelInputLengthPanics(t *testing.T) {
	m := buildModel(t, 1, []int{4}, NewDense(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Forward([]float64{1, 2})
}

func TestNumParamsTable1(t *testing.T) {
	// Table-1 CNN parameter count on 200-point input, 8 outputs:
	// conv1: 25*(20*1)+25 = 525
	// conv2: 25*(20*25)+25 = 12525
	// conv3: 25*(15*25)+25 = 9400
	// conv4: 15*(15*25)+15 = 5640
	// dense: 8*(2*15)+8 = 248
	m := buildModel(t, 1, []int{200},
		NewReshape(200, 1),
		NewConv1D(25, 20, 1), NewActivation(SELU),
		NewConv1D(25, 20, 3), NewActivation(SELU),
		NewConv1D(25, 15, 2), NewActivation(SELU),
		NewConv1D(15, 15, 4), NewSoftmax(),
		NewFlatten(), NewDense(8), NewSoftmax())
	want := 525 + 12525 + 9400 + 5640 + 248
	if got := m.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
}

func TestNMRCNNParamCountMatchesPaper(t *testing.T) {
	// The paper reports 10 532 trainable parameters for the NMR CNN:
	// locally connected (4 filters, kernel 9, stride 9) on 1700 points,
	// flatten, dense to 4 concentrations.
	m := buildModel(t, 1, []int{1700, 1},
		NewLocallyConnected1D(4, 9, 9),
		NewFlatten(),
		NewDense(4))
	if got := m.NumParams(); got != 10532 {
		t.Fatalf("NMR CNN params = %d, want 10532 (paper)", got)
	}
}

func TestNMRLSTMParamCountMatchesPaper(t *testing.T) {
	// The paper reports 221 956 trainable parameters for the LSTM model:
	// LSTM(32) over 5 timesteps of 1700-point spectra plus Dense(4).
	m := buildModel(t, 1, []int{5, 1700}, NewLSTM(32), NewDense(4))
	if got := m.NumParams(); got != 221956 {
		t.Fatalf("NMR LSTM params = %d, want 221956 (paper)", got)
	}
}

func TestSummaryContainsLayersAndTotal(t *testing.T) {
	m := buildModel(t, 1, []int{10}, NewDense(4), NewSoftmax())
	s := m.Summary()
	for _, frag := range []string{"dense", "softmax", "total trainable parameters: 44"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("summary missing %q:\n%s", frag, s)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := buildModel(t, 2, []int{6}, NewDense(5), NewActivation(ReLU), NewDense(3))
	c, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3, 4, 5, 6}
	a := m.Predict(x)
	b := c.Predict(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("clone predicts differently")
		}
	}
	// mutate the clone; original must not change
	c.Params()[0].Data[0] += 1
	a2 := m.Predict(x)
	for i := range a {
		if a[i] != a2[i] {
			t.Fatal("mutating clone changed original")
		}
	}
}

func TestCopyParamsFromMismatch(t *testing.T) {
	a := buildModel(t, 1, []int{4}, NewDense(2))
	b := buildModel(t, 1, []int{4}, NewDense(3))
	if err := a.CopyParamsFrom(b); err == nil {
		t.Fatal("mismatched architectures must error")
	}
}

func TestDeterministicInitialization(t *testing.T) {
	a := buildModel(t, 42, []int{5}, NewDense(4), NewDense(2))
	b := buildModel(t, 42, []int{5}, NewDense(4), NewDense(2))
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Data {
			if pa[i].Data[j] != pb[i].Data[j] {
				t.Fatal("same seed produced different initializations")
			}
		}
	}
	c := buildModel(t, 43, []int{5}, NewDense(4), NewDense(2))
	if pa[0].Data[0] == c.Params()[0].Data[0] {
		t.Fatal("different seeds produced identical first weight")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := buildModel(t, 3, []int{12},
		NewReshape(12, 1),
		NewConv1D(3, 4, 2), NewActivation(SELU),
		NewFlatten(), NewDense(4), NewSoftmax())
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 12)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	a, b := m.Predict(x), m2.Predict(x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-15 {
			t.Fatalf("loaded model predicts differently: %v vs %v", a, b)
		}
	}
}

func TestSaveLoadLSTM(t *testing.T) {
	m := buildModel(t, 4, []int{3, 5}, NewLSTM(4), NewDense(2))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 15)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	a, b := m.Predict(x), m2.Predict(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("LSTM round trip mismatch")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must not load")
	}
	if _, err := Load(strings.NewReader(`{"format":"other"}`)); err == nil {
		t.Fatal("wrong format must not load")
	}
}

func TestFromSpecsUnknownType(t *testing.T) {
	if _, err := FromSpecs([]LayerSpec{{Type: "nope"}}); err == nil {
		t.Fatal("unknown layer type must error")
	}
}

func TestSpecsRoundTrip(t *testing.T) {
	m := NewModel().
		Add(NewReshape(8, 1)).
		Add(NewConv1D(2, 3, 1)).
		Add(NewActivation(ReLU)).
		Add(NewMaxPool1D(2, 0)).
		Add(NewFlatten()).
		Add(NewDropout(0.25)).
		Add(NewDense(2)).
		Add(NewSoftmax())
	specs := m.Specs()
	m2, err := FromSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Layers()) != len(m.Layers()) {
		t.Fatal("spec round trip lost layers")
	}
	for i := range specs {
		if m2.Layers()[i].Kind() != m.Layers()[i].Kind() {
			t.Fatalf("layer %d kind mismatch", i)
		}
	}
}

func TestDropoutTrainingVsInference(t *testing.T) {
	m := buildModel(t, 5, []int{100}, NewDropout(0.5))
	x := make([]float64, 100)
	for i := range x {
		x[i] = 1
	}
	m.SetTraining(false)
	out := m.Forward(x)
	for _, v := range out {
		if v != 1 {
			t.Fatal("inference dropout must be identity")
		}
	}
	m.SetTraining(true)
	out = m.Forward(x)
	zeros := 0
	for _, v := range out {
		switch v {
		case 0:
			zeros++
		case 2:
			// kept and scaled by 1/(1-0.5)
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros == 0 || zeros == len(out) {
		t.Fatalf("dropout dropped %d/100, expected ~50", zeros)
	}
}
