package nn

import (
	"strings"
	"testing"

	"specml/internal/dataset"
	"specml/internal/obs"
	"specml/internal/rng"
)

// streamCorpus builds a deterministic streaming corpus shaped for dropNet
// (12 features, 3-class Dirichlet labels) — the same rows regardless of how
// they are batched or scheduled.
func streamCorpus(t *testing.T, n int, seed uint64) *dataset.Stream {
	t.Helper()
	s, err := dataset.NewStream(n, 12, 3, seed, func(i int, src *rng.Source, x, y []float64) error {
		for j := range x {
			x[j] = src.Normal(0, 1)
		}
		src.Dirichlet(1, y)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func flatParams(m *Model) []float64 {
	var flat []float64
	for _, p := range m.Params() {
		flat = append(flat, p.Data...)
	}
	return flat
}

// TestFitSourceBitIdenticalToFit is the streaming determinism guarantee the
// acceptance criteria pin: training from a streamed source must produce
// bit-identical weights to materializing the same source and calling Fit,
// for worker counts {1, 4} and prefetch depths {1, 2} — with dropout active,
// so the per-sample rng streams are exercised too.
func TestFitSourceBitIdenticalToFit(t *testing.T) {
	const n = 40
	src := streamCorpus(t, n, 3)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	d, err := dataset.Materialize(src, idx)
	if err != nil {
		t.Fatal(err)
	}

	cfg := FitConfig{
		Epochs:    4,
		BatchSize: 8,
		Seed:      11,
		ValX:      d.X[:10],
		ValY:      d.Y[:10],
		KeepBest:  true,
	}
	ref := dropNet(t)
	refHist, err := ref.Fit(d.X, d.Y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refFlat := flatParams(ref)

	for _, workers := range []int{1, 4} {
		for _, prefetch := range []int{1, 2} {
			c := cfg
			c.Workers = workers
			c.Prefetch = prefetch
			m := dropNet(t)
			hist, err := m.FitSource(streamCorpus(t, n, 3), c)
			if err != nil {
				t.Fatal(err)
			}
			got := flatParams(m)
			for i := range got {
				if got[i] != refFlat[i] {
					t.Fatalf("workers=%d prefetch=%d: param %d = %x, want %x (bitwise)",
						workers, prefetch, i, got[i], refFlat[i])
				}
			}
			for e := range refHist.TrainLoss {
				if hist.TrainLoss[e] != refHist.TrainLoss[e] {
					t.Fatalf("workers=%d prefetch=%d: epoch %d train loss differs bitwise", workers, prefetch, e)
				}
			}
			for e := range refHist.ValLoss {
				if hist.ValLoss[e] != refHist.ValLoss[e] {
					t.Fatalf("workers=%d prefetch=%d: epoch %d val loss differs bitwise", workers, prefetch, e)
				}
			}
		}
	}
}

// TestFitSourceBitIdenticalLSTM runs the same check on a recurrent stack.
// Since the batched LSTM kernels landed this trains through the batched
// GEMM path (the stack is fully batchable), and the materialized Fit it is
// compared against must stay bitwise equal for any worker count.
func TestFitSourceBitIdenticalLSTM(t *testing.T) {
	const n = 24
	corpus := func() *dataset.Stream {
		s, err := dataset.NewStream(n, 12, 2, 21, func(i int, src *rng.Source, x, y []float64) error {
			for j := range x {
				x[j] = src.Normal(0, 1)
			}
			y[0], y[1] = src.Float64(), src.Float64()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	build := func() *Model {
		m := NewModel().Add(NewLSTM(6)).Add(NewDense(2))
		if err := m.Build(rng.New(5), 4, 3); err != nil {
			t.Fatal(err)
		}
		return m
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	d, err := dataset.Materialize(corpus(), idx)
	if err != nil {
		t.Fatal(err)
	}
	cfg := FitConfig{Epochs: 3, BatchSize: 5, Seed: 2, ClipNorm: 1}
	ref := build()
	if _, err := ref.Fit(d.X, d.Y, cfg); err != nil {
		t.Fatal(err)
	}
	refFlat := flatParams(ref)
	for _, workers := range []int{1, 4} {
		for _, prefetch := range []int{1, 2} {
			c := cfg
			c.Workers = workers
			c.Prefetch = prefetch
			m := build()
			if _, err := m.FitSource(corpus(), c); err != nil {
				t.Fatal(err)
			}
			got := flatParams(m)
			for i := range got {
				if got[i] != refFlat[i] {
					t.Fatalf("workers=%d prefetch=%d: LSTM param %d differs bitwise", workers, prefetch, i)
				}
			}
		}
	}
}

// TestFitSourceValidation covers the streamed path's error contract.
func TestFitSourceValidation(t *testing.T) {
	m := dropNet(t)
	if _, err := NewModel().Add(NewDense(2)).FitSource(streamCorpus(t, 4, 1), FitConfig{}); err == nil {
		t.Fatal("unbuilt model accepted")
	}
	wrong, err := dataset.NewStream(4, 5, 3, 1, func(i int, src *rng.Source, x, y []float64) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FitSource(wrong, FitConfig{}); err == nil || !strings.Contains(err.Error(), "features") {
		t.Fatalf("feature-width mismatch not rejected: %v", err)
	}
	bad, err := dataset.NewStream(4, 12, 3, 1, func(i int, src *rng.Source, x, y []float64) error {
		x[0] = 1
		if i == 2 {
			x[1] = 0
			x[0] /= x[1] // +Inf
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FitSource(bad, FitConfig{Epochs: 1, BatchSize: 2}); err == nil ||
		!strings.Contains(err.Error(), "sample 2 contains a non-finite feature") {
		t.Fatalf("non-finite rendered feature not rejected with its global index: %v", err)
	}
}

// TestFitSourceMetrics checks the new pipeline counters and histograms fire.
func TestFitSourceMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := dropNet(t)
	if _, err := m.FitSource(streamCorpus(t, 16, 7), FitConfig{
		Epochs: 2, BatchSize: 8, Metrics: reg,
	}); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("specml_fit_batches_total", "").Value(); v != 4 {
		t.Fatalf("batches counter = %d, want 4", v)
	}
	if v := reg.Counter("specml_fit_epochs_total", "").Value(); v != 2 {
		t.Fatalf("epochs counter = %d, want 2", v)
	}
	if v := reg.Counter("specml_fit_samples_total", "").Value(); v != 32 {
		t.Fatalf("samples counter = %d, want 32", v)
	}
	if h := reg.Histogram("specml_fit_render_wait_seconds", "", fitBatchBuckets); h.Count() != 4 {
		t.Fatalf("render-wait histogram count = %d, want 4", h.Count())
	}
	if h := reg.Histogram("specml_fit_compute_seconds", "", fitBatchBuckets); h.Count() != 4 {
		t.Fatalf("compute histogram count = %d, want 4", h.Count())
	}
}

// TestFitSourceWavePathNonBatchable keeps the per-sample wave path under
// coverage now that every shipped layer batches: a stack with a hidden
// batch kernel must fall back to the replica wave schedule and still train
// bit-identically to the materialized Fit for any worker count.
func TestFitSourceWavePathNonBatchable(t *testing.T) {
	const n = 32
	build := func() *Model {
		m := NewModel().
			Add(NewDense(8)).
			Add(&perSampleOnly{NewActivation(SELU)}).
			Add(NewDense(3))
		if err := m.Build(rng.New(7), 12); err != nil {
			t.Fatal(err)
		}
		return m
	}
	if build().fullyBatchable() {
		t.Fatal("perSampleOnly stack must not be fully batchable")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	d, err := dataset.Materialize(streamCorpus(t, n, 13), idx)
	if err != nil {
		t.Fatal(err)
	}
	cfg := FitConfig{Epochs: 3, BatchSize: 8, Seed: 17, ValX: d.X[:8], ValY: d.Y[:8]}
	ref := build()
	if _, err := ref.Fit(d.X, d.Y, cfg); err != nil {
		t.Fatal(err)
	}
	refFlat := flatParams(ref)
	for _, workers := range []int{1, 4} {
		c := cfg
		c.Workers = workers
		m := build()
		if _, err := m.FitSource(streamCorpus(t, n, 13), c); err != nil {
			t.Fatal(err)
		}
		got := flatParams(m)
		for i := range got {
			if got[i] != refFlat[i] {
				t.Fatalf("workers=%d: wave-path param %d differs bitwise", workers, i)
			}
		}
	}
}

// TestEvaluateSourceChunked pins the chunked streaming evaluators: for any
// chunk size, and with or without the batched kernels, EvaluateLossSource
// and EvaluateMAESource match their materialized counterparts bit for bit.
func TestEvaluateSourceChunked(t *testing.T) {
	const n = 23
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	d, err := dataset.Materialize(streamCorpus(t, n, 29), idx)
	if err != nil {
		t.Fatal(err)
	}
	models := map[string]*Model{
		"batched": NewModel().Add(NewDense(8)).Add(NewActivation(SELU)).Add(NewDense(3)),
		"fallback": NewModel().Add(NewDense(8)).
			Add(&perSampleOnly{NewActivation(SELU)}).Add(NewDense(3)),
	}
	for name, m := range models {
		if err := m.Build(rng.New(37), 12); err != nil {
			t.Fatal(err)
		}
		wantLoss := m.EvaluateLoss(d.X, d.Y, MSE)
		wantMean, wantPer := m.EvaluateMAE(d.X, d.Y)
		for _, chunk := range []int{0, 1, 5, n, 50} {
			src := streamCorpus(t, n, 29)
			gotLoss, err := m.EvaluateLossSource(src, MSE, chunk)
			if err != nil {
				t.Fatal(err)
			}
			if gotLoss != wantLoss {
				t.Fatalf("%s chunk=%d: loss %v, want %v (bitwise)", name, chunk, gotLoss, wantLoss)
			}
			gotMean, gotPer, err := m.EvaluateMAESource(src, chunk)
			if err != nil {
				t.Fatal(err)
			}
			if gotMean != wantMean {
				t.Fatalf("%s chunk=%d: MAE %v, want %v (bitwise)", name, chunk, gotMean, wantMean)
			}
			for j := range wantPer {
				if gotPer[j] != wantPer[j] {
					t.Fatalf("%s chunk=%d: per-output MAE %d differs bitwise", name, chunk, j)
				}
			}
		}
	}
	// width mismatch is an error, not a panic
	m := NewModel().Add(NewDense(2))
	if err := m.Build(rng.New(3), 5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.EvaluateLossSource(streamCorpus(t, n, 29), MSE, 4); err == nil {
		t.Fatal("mismatched source widths must error")
	}
}
