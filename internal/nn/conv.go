package nn

import (
	"fmt"

	"specml/internal/rng"
)

// convOutLen returns the number of valid output positions for a 1-D
// convolution without padding.
func convOutLen(inLen, kernel, stride int) (int, error) {
	if kernel <= 0 || stride <= 0 {
		return 0, fmt.Errorf("nn: kernel and stride must be positive (kernel=%d, stride=%d)", kernel, stride)
	}
	if inLen < kernel {
		return 0, fmt.Errorf("nn: input length %d shorter than kernel %d", inLen, kernel)
	}
	return (inLen-kernel)/stride + 1, nil
}

// seq2D validates a [length, channels] input shape.
func seq2D(shape []int) (length, channels int, err error) {
	switch len(shape) {
	case 2:
		if shape[0] <= 0 || shape[1] <= 0 {
			return 0, 0, fmt.Errorf("nn: invalid sequence shape %v", shape)
		}
		return shape[0], shape[1], nil
	case 1:
		// A bare vector is treated as a single-channel sequence, which lets
		// spectra feed a convolution without an explicit Reshape.
		if shape[0] <= 0 {
			return 0, 0, fmt.Errorf("nn: invalid sequence shape %v", shape)
		}
		return shape[0], 1, nil
	default:
		return 0, 0, fmt.Errorf("nn: conv layers need a 1-D sequence shape, got %v", shape)
	}
}

// Conv1D is a valid-padding 1-D convolution with channels-last layout:
// the input is [length, channels] flattened row-major, the output is
// [outLen, Filters]. Weights are shared across positions.
type Conv1D struct {
	Filters int
	Kernel  int
	Stride  int
	Init    string // "glorot" (default) or "lecun"

	inLen, inCh, outLen int
	w, b                *Param // w layout: [filter][k][inCh]
	x, y, gin           []float64
	infer               bool

	bcol, bdcol, by, bgin []float64 // batched-path caches (bcol: im2col block)
}

// NewConv1D returns a Conv1D layer.
func NewConv1D(filters, kernel, stride int) *Conv1D {
	return &Conv1D{Filters: filters, Kernel: kernel, Stride: stride}
}

// Kind implements Layer.
func (c *Conv1D) Kind() string { return "conv1d" }

// Build implements Layer.
func (c *Conv1D) Build(src *rng.Source, inputShape []int) ([]int, error) {
	if c.Filters <= 0 {
		return nil, fmt.Errorf("nn: conv1d needs positive Filters, got %d", c.Filters)
	}
	inLen, inCh, err := seq2D(inputShape)
	if err != nil {
		return nil, err
	}
	outLen, err := convOutLen(inLen, c.Kernel, c.Stride)
	if err != nil {
		return nil, err
	}
	c.inLen, c.inCh, c.outLen = inLen, inCh, outLen
	fanIn := c.Kernel * inCh
	c.w = newParam("w", c.Filters*fanIn)
	c.b = newParam("b", c.Filters)
	if c.Init == "lecun" {
		lecunNormal(src, c.w.Data, fanIn)
	} else {
		glorotUniform(src, c.w.Data, fanIn, c.Filters)
	}
	c.x = make([]float64, inLen*inCh)
	c.y = make([]float64, outLen*c.Filters)
	c.gin = make([]float64, inLen*inCh)
	return []int{outLen, c.Filters}, nil
}

// SetInference toggles inference mode (skips the input snapshot).
func (c *Conv1D) SetInference(v bool) { c.infer = v }

// Forward implements Layer.
func (c *Conv1D) Forward(x []float64) []float64 {
	if !c.infer {
		copy(c.x, x)
	}
	fanIn := c.Kernel * c.inCh
	for p := 0; p < c.outLen; p++ {
		base := p * c.Stride * c.inCh
		win := x[base : base+fanIn]
		out := c.y[p*c.Filters : (p+1)*c.Filters]
		for f := 0; f < c.Filters; f++ {
			wf := c.w.Data[f*fanIn : (f+1)*fanIn]
			s := c.b.Data[f]
			for i, v := range win {
				s += wf[i] * v
			}
			out[f] = s
		}
	}
	return c.y
}

// Backward implements Layer.
func (c *Conv1D) Backward(gradOut []float64) []float64 {
	fanIn := c.Kernel * c.inCh
	for i := range c.gin {
		c.gin[i] = 0
	}
	for p := 0; p < c.outLen; p++ {
		base := p * c.Stride * c.inCh
		win := c.x[base : base+fanIn]
		ginWin := c.gin[base : base+fanIn]
		g := gradOut[p*c.Filters : (p+1)*c.Filters]
		for f := 0; f < c.Filters; f++ {
			gf := g[f]
			if gf == 0 {
				continue
			}
			c.b.Grad[f] += gf
			wf := c.w.Data[f*fanIn : (f+1)*fanIn]
			gwf := c.w.Grad[f*fanIn : (f+1)*fanIn]
			for i, v := range win {
				gwf[i] += gf * v
				ginWin[i] += gf * wf[i]
			}
		}
	}
	return c.gin
}

// Params implements Layer.
func (c *Conv1D) Params() []*Param { return []*Param{c.w, c.b} }

// Spec implements Layer.
func (c *Conv1D) Spec() LayerSpec {
	return LayerSpec{Type: "conv1d", Filters: c.Filters, Kernel: c.Kernel, Stride: c.Stride, Init: c.Init}
}

// LocallyConnected1D is a 1-D convolution whose weights are NOT shared
// across positions — each output position has its own kernel, as in
// Keras' LocallyConnected1D. This is the layer type of the paper's NMR
// CNN ("locally connected 1-D convolutional layer, four filters, strides
// and kernel size 9").
type LocallyConnected1D struct {
	Filters int
	Kernel  int
	Stride  int
	Init    string

	inLen, inCh, outLen int
	w, b                *Param // w layout: [pos][filter][k][inCh]; b: [pos][filter]
	x, y, gin           []float64

	bx, by, bgin []float64 // batched-path caches (bx aliases the input block)
}

// NewLocallyConnected1D returns a locally connected 1-D layer.
func NewLocallyConnected1D(filters, kernel, stride int) *LocallyConnected1D {
	return &LocallyConnected1D{Filters: filters, Kernel: kernel, Stride: stride}
}

// Kind implements Layer.
func (c *LocallyConnected1D) Kind() string { return "locallyconnected1d" }

// Build implements Layer.
func (c *LocallyConnected1D) Build(src *rng.Source, inputShape []int) ([]int, error) {
	if c.Filters <= 0 {
		return nil, fmt.Errorf("nn: locallyconnected1d needs positive Filters, got %d", c.Filters)
	}
	inLen, inCh, err := seq2D(inputShape)
	if err != nil {
		return nil, err
	}
	outLen, err := convOutLen(inLen, c.Kernel, c.Stride)
	if err != nil {
		return nil, err
	}
	c.inLen, c.inCh, c.outLen = inLen, inCh, outLen
	fanIn := c.Kernel * inCh
	c.w = newParam("w", outLen*c.Filters*fanIn)
	c.b = newParam("b", outLen*c.Filters)
	if c.Init == "lecun" {
		lecunNormal(src, c.w.Data, fanIn)
	} else {
		glorotUniform(src, c.w.Data, fanIn, c.Filters)
	}
	c.x = make([]float64, inLen*inCh)
	c.y = make([]float64, outLen*c.Filters)
	c.gin = make([]float64, inLen*inCh)
	return []int{outLen, c.Filters}, nil
}

// NumParams returns the trainable parameter count (exposed because the
// paper reports it: 10 532 for the NMR CNN).
func (c *LocallyConnected1D) NumParams() int {
	return len(c.w.Data) + len(c.b.Data)
}

// Forward implements Layer.
func (c *LocallyConnected1D) Forward(x []float64) []float64 {
	copy(c.x, x)
	fanIn := c.Kernel * c.inCh
	for p := 0; p < c.outLen; p++ {
		base := p * c.Stride * c.inCh
		win := x[base : base+fanIn]
		out := c.y[p*c.Filters : (p+1)*c.Filters]
		wp := c.w.Data[p*c.Filters*fanIn : (p+1)*c.Filters*fanIn]
		bp := c.b.Data[p*c.Filters : (p+1)*c.Filters]
		for f := 0; f < c.Filters; f++ {
			wf := wp[f*fanIn : (f+1)*fanIn]
			s := bp[f]
			for i, v := range win {
				s += wf[i] * v
			}
			out[f] = s
		}
	}
	return c.y
}

// Backward implements Layer.
func (c *LocallyConnected1D) Backward(gradOut []float64) []float64 {
	fanIn := c.Kernel * c.inCh
	for i := range c.gin {
		c.gin[i] = 0
	}
	for p := 0; p < c.outLen; p++ {
		base := p * c.Stride * c.inCh
		win := c.x[base : base+fanIn]
		ginWin := c.gin[base : base+fanIn]
		g := gradOut[p*c.Filters : (p+1)*c.Filters]
		wp := c.w.Data[p*c.Filters*fanIn : (p+1)*c.Filters*fanIn]
		gwp := c.w.Grad[p*c.Filters*fanIn : (p+1)*c.Filters*fanIn]
		gbp := c.b.Grad[p*c.Filters : (p+1)*c.Filters]
		for f := 0; f < c.Filters; f++ {
			gf := g[f]
			if gf == 0 {
				continue
			}
			gbp[f] += gf
			wf := wp[f*fanIn : (f+1)*fanIn]
			gwf := gwp[f*fanIn : (f+1)*fanIn]
			for i, v := range win {
				gwf[i] += gf * v
				ginWin[i] += gf * wf[i]
			}
		}
	}
	return c.gin
}

// Params implements Layer.
func (c *LocallyConnected1D) Params() []*Param { return []*Param{c.w, c.b} }

// Spec implements Layer.
func (c *LocallyConnected1D) Spec() LayerSpec {
	return LayerSpec{Type: "locallyconnected1d", Filters: c.Filters, Kernel: c.Kernel, Stride: c.Stride, Init: c.Init}
}

// MaxPool1D takes the per-channel maximum over non-overlapping (or
// strided) windows of a [length, channels] sequence.
type MaxPool1D struct {
	Kernel int
	Stride int

	inLen, ch, outLen int
	argmax            []int
	y, gin            []float64

	bargmax  []int
	by, bgin []float64 // batched-path caches
}

// NewMaxPool1D returns a max-pooling layer. Stride defaults to Kernel when 0.
func NewMaxPool1D(kernel, stride int) *MaxPool1D {
	if stride == 0 {
		stride = kernel
	}
	return &MaxPool1D{Kernel: kernel, Stride: stride}
}

// Kind implements Layer.
func (l *MaxPool1D) Kind() string { return "maxpool1d" }

// Build implements Layer.
func (l *MaxPool1D) Build(_ *rng.Source, inputShape []int) ([]int, error) {
	inLen, ch, err := seq2D(inputShape)
	if err != nil {
		return nil, err
	}
	outLen, err := convOutLen(inLen, l.Kernel, l.Stride)
	if err != nil {
		return nil, err
	}
	l.inLen, l.ch, l.outLen = inLen, ch, outLen
	l.argmax = make([]int, outLen*ch)
	l.y = make([]float64, outLen*ch)
	l.gin = make([]float64, inLen*ch)
	return []int{outLen, ch}, nil
}

// Forward implements Layer.
func (l *MaxPool1D) Forward(x []float64) []float64 {
	for p := 0; p < l.outLen; p++ {
		for c := 0; c < l.ch; c++ {
			bestIdx := (p*l.Stride)*l.ch + c
			best := x[bestIdx]
			for k := 1; k < l.Kernel; k++ {
				idx := (p*l.Stride+k)*l.ch + c
				if x[idx] > best {
					best, bestIdx = x[idx], idx
				}
			}
			l.y[p*l.ch+c] = best
			l.argmax[p*l.ch+c] = bestIdx
		}
	}
	return l.y
}

// Backward implements Layer.
func (l *MaxPool1D) Backward(gradOut []float64) []float64 {
	for i := range l.gin {
		l.gin[i] = 0
	}
	for i, g := range gradOut {
		l.gin[l.argmax[i]] += g
	}
	return l.gin
}

// Params implements Layer.
func (l *MaxPool1D) Params() []*Param { return nil }

// Spec implements Layer.
func (l *MaxPool1D) Spec() LayerSpec {
	return LayerSpec{Type: "maxpool1d", Kernel: l.Kernel, Stride: l.Stride}
}

// AvgPool1D averages per-channel windows of a [length, channels] sequence.
type AvgPool1D struct {
	Kernel int
	Stride int

	inLen, ch, outLen int
	y, gin            []float64

	by, bgin []float64 // batched-path caches
}

// NewAvgPool1D returns an average-pooling layer. Stride defaults to Kernel
// when 0.
func NewAvgPool1D(kernel, stride int) *AvgPool1D {
	if stride == 0 {
		stride = kernel
	}
	return &AvgPool1D{Kernel: kernel, Stride: stride}
}

// Kind implements Layer.
func (l *AvgPool1D) Kind() string { return "avgpool1d" }

// Build implements Layer.
func (l *AvgPool1D) Build(_ *rng.Source, inputShape []int) ([]int, error) {
	inLen, ch, err := seq2D(inputShape)
	if err != nil {
		return nil, err
	}
	outLen, err := convOutLen(inLen, l.Kernel, l.Stride)
	if err != nil {
		return nil, err
	}
	l.inLen, l.ch, l.outLen = inLen, ch, outLen
	l.y = make([]float64, outLen*ch)
	l.gin = make([]float64, inLen*ch)
	return []int{outLen, ch}, nil
}

// Forward implements Layer.
func (l *AvgPool1D) Forward(x []float64) []float64 {
	inv := 1 / float64(l.Kernel)
	for p := 0; p < l.outLen; p++ {
		for c := 0; c < l.ch; c++ {
			s := 0.0
			for k := 0; k < l.Kernel; k++ {
				s += x[(p*l.Stride+k)*l.ch+c]
			}
			l.y[p*l.ch+c] = s * inv
		}
	}
	return l.y
}

// Backward implements Layer.
func (l *AvgPool1D) Backward(gradOut []float64) []float64 {
	for i := range l.gin {
		l.gin[i] = 0
	}
	inv := 1 / float64(l.Kernel)
	for p := 0; p < l.outLen; p++ {
		for c := 0; c < l.ch; c++ {
			g := gradOut[p*l.ch+c] * inv
			for k := 0; k < l.Kernel; k++ {
				l.gin[(p*l.Stride+k)*l.ch+c] += g
			}
		}
	}
	return l.gin
}

// Params implements Layer.
func (l *AvgPool1D) Params() []*Param { return nil }

// Spec implements Layer.
func (l *AvgPool1D) Spec() LayerSpec {
	return LayerSpec{Type: "avgpool1d", Kernel: l.Kernel, Stride: l.Stride}
}
