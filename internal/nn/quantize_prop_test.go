package nn

import (
	"math"
	"testing"

	"specml/internal/rng"
)

// Property tests for the QuantizeParams/QuantizationError round trip: the
// reported maxRel must upper-bound every observed per-element error, the
// grid must be symmetric (no zero-point: zeros survive exactly, sign flips
// commute with quantization), and every dequantized value must sit on an
// integer multiple of the per-tensor scale. Table-driven across the bit
// widths the embedded-deployment story cares about.

func propModel(t *testing.T, seed uint64) *Model {
	t.Helper()
	m := NewModel().
		Add(NewReshape(30, 1)).
		Add(NewConv1D(4, 5, 2)).
		Add(NewActivation(ReLU)).
		Add(NewFlatten()).
		Add(NewDense(7)).
		Add(NewDense(3))
	if err := m.Build(rng.New(seed), 30); err != nil {
		t.Fatal(err)
	}
	// Inject exact zeros and a ±v pair into every tensor so the symmetry
	// properties are exercised on every trial, not just by luck.
	for _, p := range m.Params() {
		if len(p.Data) >= 4 {
			p.Data[0] = 0
			p.Data[2] = -p.Data[1]
		}
	}
	return m
}

func TestQuantizeParamsProperties(t *testing.T) {
	for _, bits := range []int{4, 8} {
		levels := float64(int64(1)<<(bits-1)) - 1
		for seed := uint64(40); seed < 45; seed++ {
			m := propModel(t, seed)
			q, err := QuantizeParams(m, bits)
			if err != nil {
				t.Fatal(err)
			}
			maxRel, rms, err := QuantizationError(m, q)
			if err != nil {
				t.Fatal(err)
			}

			// Round-to-nearest on a symmetric grid cannot exceed half a
			// step relative to the tensor max.
			if halfStep := 0.5 / levels; maxRel > halfStep*(1+1e-12) {
				t.Fatalf("bits=%d seed=%d: maxRel %g exceeds half-step bound %g",
					bits, seed, maxRel, halfStep)
			}
			if rms > maxRel {
				t.Fatalf("bits=%d seed=%d: rms %g exceeds maxRel %g", bits, seed, rms, maxRel)
			}

			mp, qp := m.Params(), q.Params()
			observedMax := 0.0
			for ti := range mp {
				a, b := mp[ti].Data, qp[ti].Data
				maxAbs := 0.0
				for _, v := range a {
					if x := math.Abs(v); x > maxAbs {
						maxAbs = x
					}
				}
				if maxAbs == 0 {
					continue
				}
				scale := maxAbs / levels
				for i := range a {
					// maxRel upper-bounds every observed per-element error.
					rel := math.Abs(a[i]-b[i]) / maxAbs
					if rel > maxRel*(1+1e-12) {
						t.Fatalf("bits=%d seed=%d tensor %d elem %d: error %g above reported maxRel %g",
							bits, seed, ti, i, rel, maxRel)
					}
					if rel > observedMax {
						observedMax = rel
					}
					// Symmetric grid: zero maps to zero (no zero-point drift)...
					if a[i] == 0 && b[i] != 0 {
						t.Fatalf("bits=%d seed=%d tensor %d elem %d: zero drifted to %g",
							bits, seed, ti, i, b[i])
					}
					// ...every value lands on an integer multiple of the scale...
					steps := b[i] / scale
					if math.Abs(steps-math.Round(steps)) > 1e-9 {
						t.Fatalf("bits=%d seed=%d tensor %d elem %d: %g is not on the %g grid",
							bits, seed, ti, i, b[i], scale)
					}
					// ...within the representable code range.
					if math.Abs(math.Round(steps)) > levels {
						t.Fatalf("bits=%d seed=%d tensor %d elem %d: code %g outside ±%g",
							bits, seed, ti, i, math.Round(steps), levels)
					}
				}
				// Sign symmetry: quantize(-v) == -quantize(v) for the
				// injected ± pair (math.Round rounds half away from zero,
				// which is sign-symmetric).
				if len(a) >= 4 && a[2] == -a[1] && b[2] != -b[1] {
					t.Fatalf("bits=%d seed=%d tensor %d: quantization not sign-symmetric (%g vs %g)",
						bits, seed, ti, b[1], b[2])
				}
			}
			// maxRel is tight: it equals the worst observed error.
			if math.Abs(observedMax-maxRel) > 1e-12 {
				t.Fatalf("bits=%d seed=%d: reported maxRel %g != observed max %g",
					bits, seed, maxRel, observedMax)
			}
		}
	}
}

func TestQuantizeParamsRejectsBadBits(t *testing.T) {
	m := propModel(t, 1)
	for _, bits := range []int{1, 0, -3, 33} {
		if _, err := QuantizeParams(m, bits); err == nil {
			t.Fatalf("QuantizeParams accepted bits=%d", bits)
		}
	}
}
