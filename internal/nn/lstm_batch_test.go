package nn

import (
	"math"
	"testing"

	"specml/internal/rng"
)

// TestLSTMBatchBitIdentical pins the tentpole contract on the recurrent
// kernels across the full batch x timestep grid: ForwardBatch/BackwardBatch
// are bitwise identical — outputs, input gradients and accumulated
// parameter gradients — to looping Forward/Backward over the rows.
func TestLSTMBatchBitIdentical(t *testing.T) {
	const features, units = 4, 6
	for _, steps := range []int{1, 5, 9} {
		for _, n := range []int{1, 7, 32} {
			t.Run("steps="+itoa(steps)+"/n="+itoa(n), func(t *testing.T) {
				build := func() *LSTM {
					l := NewLSTM(units)
					if _, err := l.Build(rng.New(17), []int{steps, features}); err != nil {
						t.Fatalf("build: %v", err)
					}
					return l
				}
				batch, ref := build(), build()
				inLen := steps * features
				src := rng.New(uint64(100*steps + n))
				xb := make([]float64, n*inLen)
				gb := make([]float64, n*units)
				fillBatch(src, xb)
				fillBatch(src, gb)

				yb := batch.ForwardBatch(xb, n)
				ginb := batch.BackwardBatch(gb, n)

				refY := make([]float64, n*units)
				refGin := make([]float64, n*inLen)
				for s := 0; s < n; s++ {
					y := ref.Forward(xb[s*inLen : (s+1)*inLen])
					copy(refY[s*units:(s+1)*units], y)
					gin := ref.Backward(gb[s*units : (s+1)*units])
					copy(refGin[s*inLen:(s+1)*inLen], gin)
				}

				expectBits(t, "forward", yb, refY)
				expectBits(t, "backward", ginb, refGin)
				bp, rp := batch.Params(), ref.Params()
				for i := range bp {
					expectBits(t, bp[i].Name+" grad", bp[i].Grad, rp[i].Grad)
				}
			})
		}
	}
}

// TestLSTMBatchGradcheck verifies the batched BPTT path against central
// finite differences of the batched loss, through a full monitor-shaped
// stack (reshape -> LSTM -> dense head).
func TestLSTMBatchGradcheck(t *testing.T) {
	m := NewModel().
		Add(NewReshape(5, 4)).
		Add(NewLSTM(6)).
		Add(NewDense(3))
	if err := m.Build(rng.New(23), 20); err != nil {
		t.Fatal(err)
	}
	if !m.fullyBatchable() {
		t.Fatalf("LSTM stack should be fully batchable")
	}
	const n = 3
	inLen, outLen := m.InputLen(), m.OutputLen()
	src := rng.New(24)
	xb := make([]float64, n*inLen)
	tb := make([]float64, n*outLen)
	for i := range xb {
		xb[i] = src.Normal(0, 1)
	}
	for i := range tb {
		tb[i] = src.Normal(0, 1)
	}
	batchLoss := func() float64 {
		yb := m.forwardBatch(xb, n)
		l := 0.0
		for i, v := range yb {
			d := v - tb[i]
			l += 0.5 * d * d
		}
		return l
	}

	m.SetTraining(false)
	m.ZeroGrad()
	yb := m.forwardBatch(xb, n)
	gb := make([]float64, n*outLen)
	for i, v := range yb {
		gb[i] = v - tb[i]
	}
	m.backwardBatch(gb, n)

	const eps = 1e-5
	maxRel := 0.0
	for _, p := range m.Params() {
		for i := range p.Data {
			orig := p.Data[i]
			p.Data[i] = orig + eps
			lp := batchLoss()
			p.Data[i] = orig - eps
			lm := batchLoss()
			p.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			den := math.Max(math.Abs(p.Grad[i])+math.Abs(numeric), 1e-4)
			if r := math.Abs(p.Grad[i]-numeric) / den; r > maxRel {
				maxRel = r
			}
		}
	}
	if maxRel > 2e-4 {
		t.Fatalf("batched BPTT gradcheck max relative error %.3e", maxRel)
	}
}

// TestHybridStackFullyBatchable pins the paper's hybrid future-work stack
// (TimeDistributed feature selector into an LSTM) on the batched engine:
// fully batchable, and PredictBatch stays bitwise equal to Predict.
func TestHybridStackFullyBatchable(t *testing.T) {
	m := NewModel().
		Add(NewReshape(6, 10)).
		Add(NewTimeDistributed(NewLocallyConnected1D(2, 3, 2), 10, 1)).
		Add(NewLSTM(5)).
		Add(NewDense(2))
	if err := m.Build(rng.New(31), 60); err != nil {
		t.Fatal(err)
	}
	if !m.fullyBatchable() {
		t.Fatalf("hybrid TimeDistributed+LSTM stack should be fully batchable")
	}
	src := rng.New(32)
	rows := make([][]float64, 10)
	for i := range rows {
		rows[i] = make([]float64, 60)
		fillBatch(src, rows[i])
	}
	want := make([][]float64, len(rows))
	for i, r := range rows {
		want[i] = m.Predict(r)
	}
	for _, workers := range []int{1, 3} {
		got, err := m.PredictBatch(rows, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			expectBits(t, "row "+itoa(i), got[i], want[i])
		}
	}
}

// TestTimeDistributedNonBatchInnerFallback covers the wrapper's internal
// per-sample fallback: with an inner layer hiding its batched kernel the
// stack is not fully batchable, yet TimeDistributed's ForwardBatch and
// BackwardBatch still match the per-sample loop bitwise.
func TestTimeDistributedNonBatchInnerFallback(t *testing.T) {
	const steps, features, innerOut = 4, 6, 3
	build := func(wrap bool) *TimeDistributed {
		var inner Layer = NewDense(innerOut)
		if wrap {
			inner = &perSampleOnly{inner}
		}
		td := NewTimeDistributed(inner)
		if _, err := td.Build(rng.New(41), []int{steps, features}); err != nil {
			t.Fatalf("build: %v", err)
		}
		return td
	}
	batch, ref := build(true), build(false)
	if batch.batchCapable() {
		t.Fatalf("wrapped inner must not report batchCapable")
	}
	const n = 7
	inLen, outLen := steps*features, steps*innerOut
	src := rng.New(42)
	xb := make([]float64, n*inLen)
	gb := make([]float64, n*outLen)
	fillBatch(src, xb)
	fillBatch(src, gb)

	yb := batch.ForwardBatch(xb, n)
	ginb := batch.BackwardBatch(gb, n)

	refY := make([]float64, n*outLen)
	refGin := make([]float64, n*inLen)
	for s := 0; s < n; s++ {
		copy(refY[s*outLen:(s+1)*outLen], ref.Forward(xb[s*inLen:(s+1)*inLen]))
		copy(refGin[s*inLen:(s+1)*inLen], ref.Backward(gb[s*outLen:(s+1)*outLen]))
	}
	expectBits(t, "forward", yb, refY)
	expectBits(t, "backward", ginb, refGin)
	bp, rp := batch.Params(), ref.Params()
	for i := range bp {
		expectBits(t, bp[i].Name+" grad", bp[i].Grad, rp[i].Grad)
	}
}

// TestFusedDenseActivation pins the fused Dense+activation batch step:
// opt-in, and bitwise identical to the unfused pair for outputs, input
// gradients and parameter gradients.
func TestFusedDenseActivation(t *testing.T) {
	build := func(fused bool) *Model {
		m := NewModel().
			Add(NewDense(16)).
			Add(NewActivation(ReLU)).
			Add(NewDense(10)).
			Add(NewActivation(SELU)).
			Add(NewDense(4))
		if err := m.Build(rng.New(51), 12); err != nil {
			t.Fatal(err)
		}
		m.SetFusedActivations(fused)
		return m
	}
	fused, ref := build(true), build(false)
	const n = 13
	inLen, outLen := fused.InputLen(), fused.OutputLen()
	src := rng.New(52)
	xb := make([]float64, n*inLen)
	gb := make([]float64, n*outLen)
	fillBatch(src, xb)
	fillBatch(src, gb)

	yb := fused.forwardBatch(xb, n)
	refY := ref.forwardBatch(xb, n)
	expectBits(t, "forward", yb, refY)

	ginb := fused.backwardBatch(gb, n)
	refGin := ref.backwardBatch(gb, n)
	expectBits(t, "backward", ginb, refGin)
	fp, rp := fused.Params(), ref.Params()
	for i := range fp {
		expectBits(t, fp[i].Name+" grad", fp[i].Grad, rp[i].Grad)
	}
}
