package nn

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"specml/internal/dataset"
)

// materializeAll renders every sample of a stream into [][]float64 rows.
func materializeAll(t *testing.T, src *dataset.Stream) (x, y [][]float64) {
	t.Helper()
	idx := make([]int, src.Len())
	for i := range idx {
		idx[i] = i
	}
	d, err := dataset.Materialize(src, idx)
	if err != nil {
		t.Fatal(err)
	}
	return d.X, d.Y
}

// TestCheckpointResumeEquivalence is the resume guarantee: 5 epochs straight
// vs 3 epochs + checkpoint to disk + load + resume 2 more must produce
// bit-identical weights, optimizer trajectory included.
func TestCheckpointResumeEquivalence(t *testing.T) {
	x, y := materializeAll(t, streamCorpus(t, 40, 3))
	cfg := FitConfig{
		Epochs:    5,
		BatchSize: 8,
		Seed:      11,
		ValX:      x[:10],
		ValY:      y[:10],
		KeepBest:  true,
		Optimizer: NewAdam(0),
	}

	straight := dropNet(t)
	straightHist, err := straight.Fit(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := flatParams(straight)

	// First leg: 3 epochs, checkpointing every epoch.
	path := filepath.Join(t.TempDir(), "fit.ckpt")
	first := dropNet(t)
	c1 := cfg
	c1.Epochs = 3
	c1.Optimizer = NewAdam(0)
	c1.CheckpointPath = path
	if _, err := first.Fit(x, y, c1); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Epoch != 3 {
		t.Fatalf("checkpoint cursor at epoch %d, want 3", ck.Epoch)
	}

	// Second leg: a fresh model and optimizer resume to epoch 5.
	second := dropNet(t)
	c2 := cfg
	c2.Optimizer = NewAdam(0)
	c2.Resume = ck
	hist, err := second.Fit(x, y, c2)
	if err != nil {
		t.Fatal(err)
	}
	got := flatParams(second)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("resumed param %d = %x, want %x (bitwise)", i, got[i], want[i])
		}
	}
	if len(hist.TrainLoss) != len(straightHist.TrainLoss) {
		t.Fatalf("resumed history has %d epochs, want %d", len(hist.TrainLoss), len(straightHist.TrainLoss))
	}
	for e := range straightHist.TrainLoss {
		if hist.TrainLoss[e] != straightHist.TrainLoss[e] {
			t.Fatalf("epoch %d train loss differs bitwise after resume", e)
		}
		if hist.ValLoss[e] != straightHist.ValLoss[e] {
			t.Fatalf("epoch %d val loss differs bitwise after resume", e)
		}
	}
	if hist.BestEpoch != straightHist.BestEpoch {
		t.Fatalf("resumed best epoch %d, want %d", hist.BestEpoch, straightHist.BestEpoch)
	}
}

// TestCheckpointResumeStreamed runs the same equivalence through FitSource,
// the path a long streamed run would actually resume on.
func TestCheckpointResumeStreamed(t *testing.T) {
	cfg := FitConfig{Epochs: 4, BatchSize: 8, Seed: 7, Optimizer: NewAdam(0)}
	straight := dropNet(t)
	if _, err := straight.FitSource(streamCorpus(t, 32, 9), cfg); err != nil {
		t.Fatal(err)
	}
	want := flatParams(straight)

	path := filepath.Join(t.TempDir(), "fit.ckpt")
	first := dropNet(t)
	c1 := cfg
	c1.Epochs = 2
	c1.Optimizer = NewAdam(0)
	c1.CheckpointPath = path
	if _, err := first.FitSource(streamCorpus(t, 32, 9), c1); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	second := dropNet(t)
	c2 := cfg
	c2.Optimizer = NewAdam(0)
	c2.Resume = ck
	if _, err := second.FitSource(streamCorpus(t, 32, 9), c2); err != nil {
		t.Fatal(err)
	}
	got := flatParams(second)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("streamed resume: param %d differs bitwise", i)
		}
	}
}

// statelessOpt is an optimizer without checkpoint support (it implements
// Optimizer but not StatefulOptimizer).
type statelessOpt struct{}

func (*statelessOpt) Name() string    { return "custom" }
func (*statelessOpt) Step(_ []*Param) {}

// TestCheckpointValidation covers the mismatch error paths.
func TestCheckpointValidation(t *testing.T) {
	src := streamCorpus(t, 16, 1)
	path := filepath.Join(t.TempDir(), "fit.ckpt")
	m := dropNet(t)
	if _, err := m.FitSource(src, FitConfig{
		Epochs: 1, BatchSize: 8, Seed: 5, Optimizer: NewAdam(0), CheckpointPath: path,
	}); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mutate func(cfg *FitConfig), wantSub string) {
		t.Helper()
		cfg := FitConfig{Epochs: 2, BatchSize: 8, Seed: 5, Optimizer: NewAdam(0), Resume: ck}
		mutate(&cfg)
		if _, err := dropNet(t).FitSource(streamCorpus(t, 16, 1), cfg); err == nil {
			t.Fatalf("%s: mismatch accepted", name)
		} else if wantSub != "" && !bytes.Contains([]byte(err.Error()), []byte(wantSub)) {
			t.Fatalf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}
	check("seed", func(cfg *FitConfig) { cfg.Seed = 6 }, "seed")
	check("batch", func(cfg *FitConfig) { cfg.BatchSize = 4 }, "batch size")
	check("optimizer", func(cfg *FitConfig) { cfg.Optimizer = &SGD{LR: 0.1} }, "optimizer")
	check("stateless", func(cfg *FitConfig) { cfg.Optimizer = &statelessOpt{} }, "checkpointing")

	// Sample-count mismatch.
	cfg := FitConfig{Epochs: 2, BatchSize: 8, Seed: 5, Optimizer: NewAdam(0), Resume: ck}
	if _, err := dropNet(t).FitSource(streamCorpus(t, 24, 1), cfg); err == nil {
		t.Fatal("sample-count mismatch accepted")
	}

	// CheckpointPath with an optimizer that cannot capture state.
	if _, err := dropNet(t).FitSource(src, FitConfig{
		Epochs: 1, BatchSize: 8, Optimizer: &statelessOpt{}, CheckpointPath: path,
	}); err == nil {
		t.Fatal("checkpointing with a stateless optimizer accepted")
	}
}

// TestCheckpointFormatRejected checks format gating on load.
func TestCheckpointFormatRejected(t *testing.T) {
	if _, err := LoadCheckpoint(bytes.NewReader([]byte(`{"format":"specml/ckpt/v0"}`))); err == nil {
		t.Fatal("unknown checkpoint format accepted")
	}
	if _, err := LoadCheckpoint(bytes.NewReader([]byte(`not json`))); err == nil {
		t.Fatal("malformed checkpoint accepted")
	}
}

// TestCheckpointGolden pins the exact bytes of specml/ckpt/v1: resumable
// long runs depend on this layout, so drift must be a deliberate, versioned
// format change.
func TestCheckpointGolden(t *testing.T) {
	x, y := materializeAll(t, streamCorpus(t, 16, 13))
	path := filepath.Join(t.TempDir(), "fit.ckpt")
	m := dropNet(t)
	if _, err := m.Fit(x, y, FitConfig{
		Epochs:         2,
		BatchSize:      8,
		Seed:           17,
		Optimizer:      NewAdam(0),
		ValX:           x[:4],
		ValY:           y[:4],
		KeepBest:       true,
		CheckpointPath: path,
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "ckpt_v1.golden.json", got)

	// Load + save must be byte-stable.
	ck, err := LoadCheckpoint(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), got) {
		t.Fatal("LoadCheckpoint+SaveCheckpoint is not byte-stable")
	}
}
