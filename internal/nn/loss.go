package nn

import (
	"fmt"
	"math"
)

// Loss is a differentiable training objective over one sample.
type Loss interface {
	// Name returns the canonical loss name ("mae", "mse", "huber").
	Name() string
	// Loss returns the scalar loss for a prediction/target pair.
	Loss(pred, target []float64) float64
	// Grad writes dLoss/dPred into out.
	Grad(pred, target, out []float64)
}

type maeLoss struct{}

// MAE is the mean absolute error, the loss the paper trains the MS
// networks with ("we used the mean absolute error (MAE) as loss function").
var MAE Loss = maeLoss{}

func (maeLoss) Name() string { return "mae" }

func (maeLoss) Loss(pred, target []float64) float64 {
	checkLen(pred, target)
	s := 0.0
	for i, p := range pred {
		s += math.Abs(p - target[i])
	}
	return s / float64(len(pred))
}

func (maeLoss) Grad(pred, target, out []float64) {
	checkLen(pred, target)
	inv := 1 / float64(len(pred))
	for i, p := range pred {
		d := p - target[i]
		switch {
		case d > 0:
			out[i] = inv
		case d < 0:
			out[i] = -inv
		default:
			out[i] = 0
		}
	}
}

type mseLoss struct{}

// MSE is the mean squared error, used for the NMR models and as the
// comparison metric against IHM.
var MSE Loss = mseLoss{}

func (mseLoss) Name() string { return "mse" }

func (mseLoss) Loss(pred, target []float64) float64 {
	checkLen(pred, target)
	s := 0.0
	for i, p := range pred {
		d := p - target[i]
		s += d * d
	}
	return s / float64(len(pred))
}

func (mseLoss) Grad(pred, target, out []float64) {
	checkLen(pred, target)
	inv := 2 / float64(len(pred))
	for i, p := range pred {
		out[i] = inv * (p - target[i])
	}
}

// HuberLoss is the Huber loss with transition point Delta; quadratic near
// zero, linear in the tails. Useful for spectra with occasional outlier
// samples.
type HuberLoss struct {
	Delta float64
}

// Name implements Loss.
func (h HuberLoss) Name() string { return "huber" }

func (h HuberLoss) delta() float64 {
	if h.Delta <= 0 {
		return 1
	}
	return h.Delta
}

// Loss implements Loss.
func (h HuberLoss) Loss(pred, target []float64) float64 {
	checkLen(pred, target)
	d := h.delta()
	s := 0.0
	for i, p := range pred {
		e := math.Abs(p - target[i])
		if e <= d {
			s += 0.5 * e * e
		} else {
			s += d * (e - 0.5*d)
		}
	}
	return s / float64(len(pred))
}

// Grad implements Loss.
func (h HuberLoss) Grad(pred, target, out []float64) {
	checkLen(pred, target)
	d := h.delta()
	inv := 1 / float64(len(pred))
	for i, p := range pred {
		e := p - target[i]
		switch {
		case e > d:
			out[i] = d * inv
		case e < -d:
			out[i] = -d * inv
		default:
			out[i] = e * inv
		}
	}
}

// LossByName resolves a canonical loss name.
func LossByName(name string) (Loss, error) {
	switch name {
	case "mae", "":
		return MAE, nil
	case "mse":
		return MSE, nil
	case "huber":
		return HuberLoss{}, nil
	default:
		return nil, fmt.Errorf("nn: unknown loss %q", name)
	}
}

func checkLen(pred, target []float64) {
	if len(pred) != len(target) {
		panic(fmt.Sprintf("nn: loss length mismatch (%d vs %d)", len(pred), len(target)))
	}
}
