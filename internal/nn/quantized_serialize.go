package nn

import (
	"encoding/json"
	"fmt"
	"io"

	"specml/internal/rng"
	"specml/internal/tensor"
)

// On-disk layout of a quantized model. Quantized layers store their int8
// codes (base64 via []byte, unpadded row-major [out][fanIn]), per-output-
// channel scales and float bias; every other layer keeps its float
// parameter tensors, in stack order. The layout is pinned byte-for-byte
// by quantized_golden_test.go.
type savedQuantLayer struct {
	Layer   int       `json:"layer"` // index into Layers
	Kind    string    `json:"kind"`  // "dense" | "conv1d"
	Scales  []float64 `json:"scales"`
	Weights []byte    `json:"weights"`
	Bias    []float64 `json:"bias"`
}

type savedQuantModel struct {
	Format       string            `json:"format"`
	InputShape   []int             `json:"inputShape"`
	Layers       []LayerSpec       `json:"layers"`
	Quant        []savedQuantLayer `json:"quant"`
	FloatWeights [][]float64       `json:"floatWeights,omitempty"`
}

const quantFormat = "specml/qmodel/v1"

// packCodes strips the panel padding: [rows][kp] int8 -> [rows][k] bytes.
func packCodes(w []int8, rows, k, kp int) []byte {
	out := make([]byte, rows*k)
	for r := 0; r < rows; r++ {
		for i := 0; i < k; i++ {
			out[r*k+i] = byte(w[r*kp+i])
		}
	}
	return out
}

// unpackCodes re-pads stored codes to the panel stride.
func unpackCodes(dst []int8, src []byte, rows, k, kp int) {
	for r := 0; r < rows; r++ {
		for i := 0; i < k; i++ {
			dst[r*kp+i] = int8(src[r*k+i])
		}
	}
}

// Save writes the quantized engine (architecture, int8 codes, scales, and
// the float parameters of non-quantized layers) as JSON.
func (q *QuantizedModel) Save(w io.Writer) error {
	sm := savedQuantModel{
		Format:     quantFormat,
		InputShape: q.m.inputShape,
		Layers:     q.m.Specs(),
	}
	for li, st := range q.steps {
		switch v := st.(type) {
		case *qDense:
			sm.Quant = append(sm.Quant, savedQuantLayer{
				Layer:   li,
				Kind:    "dense",
				Scales:  v.ws,
				Weights: packCodes(v.w, v.out, v.in, v.kp),
				Bias:    v.b,
			})
		case *qConv1D:
			sm.Quant = append(sm.Quant, savedQuantLayer{
				Layer:   li,
				Kind:    "conv1d",
				Scales:  v.ws,
				Weights: packCodes(v.w, v.filters, v.fanIn, v.kp),
				Bias:    v.b,
			})
		case *qFloat:
			for _, p := range v.l.Params() {
				sm.FloatWeights = append(sm.FloatWeights, p.Data)
			}
		}
	}
	return json.NewEncoder(w).Encode(&sm)
}

// LoadQuantized reads an engine saved with (*QuantizedModel).Save. The
// inner model's quantized layers receive the dequantized weights
// (scale·code), so introspection (Summary, NumParams) sees a faithful
// float surrogate; inference runs on the stored int8 codes exactly as
// saved. Load->Save round-trips byte-identically.
func LoadQuantized(r io.Reader) (*QuantizedModel, error) {
	var sm savedQuantModel
	if err := json.NewDecoder(r).Decode(&sm); err != nil {
		return nil, fmt.Errorf("nn: decoding quantized model: %w", err)
	}
	if sm.Format != quantFormat {
		return nil, fmt.Errorf("nn: unsupported quantized model format %q", sm.Format)
	}
	m, err := FromSpecs(sm.Layers)
	if err != nil {
		return nil, err
	}
	if err := m.Build(rng.New(0), sm.InputShape...); err != nil {
		return nil, err
	}
	m.SetTraining(false)
	m.setInference(true)
	q := &QuantizedModel{m: m}

	quantAt := make(map[int]*savedQuantLayer, len(sm.Quant))
	for i := range sm.Quant {
		e := &sm.Quant[i]
		if e.Layer < 0 || e.Layer >= len(m.layers) {
			return nil, fmt.Errorf("nn: quant entry %d targets layer %d of %d", i, e.Layer, len(m.layers))
		}
		if _, dup := quantAt[e.Layer]; dup {
			return nil, fmt.Errorf("nn: duplicate quant entry for layer %d", e.Layer)
		}
		quantAt[e.Layer] = e
	}

	nextFloat := 0
	takeFloat := func(p *Param) error {
		if nextFloat >= len(sm.FloatWeights) {
			return fmt.Errorf("nn: quantized model is missing float weight tensor %d", nextFloat)
		}
		w := sm.FloatWeights[nextFloat]
		if len(w) != len(p.Data) {
			return fmt.Errorf("nn: float weight tensor %d has %d values, want %d", nextFloat, len(w), len(p.Data))
		}
		copy(p.Data, w)
		nextFloat++
		return nil
	}

	for li, l := range m.layers {
		e, isQuant := quantAt[li]
		switch v := l.(type) {
		case *Dense:
			if !isQuant {
				return nil, fmt.Errorf("nn: dense layer %d has no quant entry", li)
			}
			if e.Kind != "dense" {
				return nil, fmt.Errorf("nn: quant entry for layer %d is %q, want dense", li, e.Kind)
			}
			qd := &qDense{in: v.in, out: v.Out, kp: tensor.KPad16(v.in)}
			if len(e.Scales) != qd.out || len(e.Bias) != qd.out || len(e.Weights) != qd.out*qd.in {
				return nil, fmt.Errorf("nn: quant dense layer %d size mismatch (scales %d, bias %d, weights %d for out=%d in=%d)",
					li, len(e.Scales), len(e.Bias), len(e.Weights), qd.out, qd.in)
			}
			qd.ws = e.Scales
			qd.b = e.Bias
			qd.w = make([]int8, qd.out*qd.kp)
			unpackCodes(qd.w, e.Weights, qd.out, qd.in, qd.kp)
			for o := 0; o < qd.out; o++ {
				for i := 0; i < qd.in; i++ {
					v.w.Data[o*qd.in+i] = qd.ws[o] * float64(qd.w[o*qd.kp+i])
				}
			}
			copy(v.b.Data, qd.b)
			q.steps = append(q.steps, qd)
			q.nQuant++
		case *Conv1D:
			if !isQuant {
				return nil, fmt.Errorf("nn: conv1d layer %d has no quant entry", li)
			}
			if e.Kind != "conv1d" {
				return nil, fmt.Errorf("nn: quant entry for layer %d is %q, want conv1d", li, e.Kind)
			}
			qc := &qConv1D{
				inLen: v.inLen, inCh: v.inCh, outLen: v.outLen,
				kernel: v.Kernel, stride: v.Stride, filters: v.Filters,
				fanIn: v.Kernel * v.inCh, inSize: v.inLen * v.inCh,
			}
			qc.kp = tensor.KPad16(qc.fanIn)
			qc.oSize = qc.outLen * qc.filters
			if len(e.Scales) != qc.filters || len(e.Bias) != qc.filters || len(e.Weights) != qc.filters*qc.fanIn {
				return nil, fmt.Errorf("nn: quant conv1d layer %d size mismatch (scales %d, bias %d, weights %d for filters=%d fanIn=%d)",
					li, len(e.Scales), len(e.Bias), len(e.Weights), qc.filters, qc.fanIn)
			}
			qc.ws = e.Scales
			qc.b = e.Bias
			qc.w = make([]int8, qc.filters*qc.kp)
			unpackCodes(qc.w, e.Weights, qc.filters, qc.fanIn, qc.kp)
			for f := 0; f < qc.filters; f++ {
				for i := 0; i < qc.fanIn; i++ {
					v.w.Data[f*qc.fanIn+i] = qc.ws[f] * float64(qc.w[f*qc.kp+i])
				}
			}
			copy(v.b.Data, qc.b)
			q.steps = append(q.steps, qc)
			q.nQuant++
		default:
			if isQuant {
				return nil, fmt.Errorf("nn: quant entry for layer %d (%s) which has no int8 kernel", li, l.Kind())
			}
			for _, p := range l.Params() {
				if err := takeFloat(p); err != nil {
					return nil, err
				}
			}
			q.steps = append(q.steps, &qFloat{l: l})
		}
	}
	if nextFloat != len(sm.FloatWeights) {
		return nil, fmt.Errorf("nn: quantized model has %d float weight tensors, architecture consumed %d",
			len(sm.FloatWeights), nextFloat)
	}
	return q, nil
}
