package nn

import (
	"fmt"
	"math"
	"sync"
	"time"

	"specml/internal/dataset"
	"specml/internal/obs"
	"specml/internal/parallel"
	"specml/internal/rng"
	"specml/internal/tensor/pool"
)

// fitSlot is one in-flight mini-batch of the streamed-fit prefetch
// pipeline. The coordinator copies the epoch-permutation indices in, a
// render worker fills the rows from the source, and the training loop
// consumes them — each stage owns the slot exclusively between handoffs, so
// the buffers are reused without locking (grow-only: a fit allocates its
// slots once and then runs at zero steady-state allocation).
type fitSlot struct {
	idx   []int       // global sample indices of this batch (coordinator-copied)
	x, y  [][]float64 // rendered feature/label rows, slot-owned
	n     int         // samples in this batch
	epoch int
	err   error
	ready chan struct{} // one token per completed render
}

// FitSource trains the model from a batch-granular data source through a
// prefetch pipeline: a coordinator goroutine draws the epoch permutation
// (same shuffle stream as Fit), render workers fill up to Prefetch
// mini-batch buffers ahead (batch N+1 renders while batch N trains), and
// the training loop consumes the buffers in issue order. All optimizer,
// dropout and shuffle streams advance exactly as in Fit, and sources render
// sample i independently of scheduling, so a streamed fit is bit-identical
// to materializing the source and calling Fit — for any worker count,
// prefetch depth or batch size.
//
// Rows coming out of the source are validated (finite values) as they are
// rendered, on the render workers, off the training hot path.
//
// The whole fit runs under a pprof "fit" stage label like Fit.
func (m *Model) FitSource(src dataset.Source, cfg FitConfig) (*History, error) {
	var hist *History
	err := obs.WithStage("fit", func() error {
		var ferr error
		hist, ferr = m.fitSource(src, cfg, true)
		return ferr
	})
	if err != nil {
		return nil, err
	}
	return hist, nil
}

// cloneHistory deep-copies a checkpointed history so resumed fits never
// alias the checkpoint's slices.
func cloneHistory(h *History) *History {
	if h == nil {
		return &History{BestEpoch: -1}
	}
	return &History{
		TrainLoss: append([]float64(nil), h.TrainLoss...),
		ValLoss:   append([]float64(nil), h.ValLoss...),
		BestEpoch: h.BestEpoch,
		Stopped:   h.Stopped,
	}
}

// fitSource is the engine behind Fit and FitSource. validate selects
// producer-side row validation (Fit pre-validates materialized rows and
// skips it).
func (m *Model) fitSource(src dataset.Source, cfg FitConfig, validate bool) (*History, error) {
	if !m.built {
		return nil, fmt.Errorf("nn: Fit before Build")
	}
	n := src.Len()
	if n <= 0 {
		return nil, fmt.Errorf("nn: Fit needs a non-empty data source, got %d samples", n)
	}
	if len(cfg.ValX) != len(cfg.ValY) {
		return nil, fmt.Errorf("nn: validation sample counts differ (%d, %d)", len(cfg.ValX), len(cfg.ValY))
	}
	inLen, outLen := m.InputLen(), m.OutputLen()
	xw, yw := src.Widths()
	if xw != inLen {
		return nil, fmt.Errorf("nn: source has %d features, model expects %d", xw, inLen)
	}
	if yw != outLen {
		return nil, fmt.Errorf("nn: source has %d label values, model expects %d", yw, outLen)
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Loss == nil {
		cfg.Loss = MAE
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = NewAdam(0)
	}
	if cfg.LRSchedule != nil {
		if _, ok := cfg.Optimizer.(LRSettable); !ok {
			return nil, fmt.Errorf("nn: optimizer %s does not support LR scheduling", cfg.Optimizer.Name())
		}
	}
	if cfg.CheckpointPath != "" {
		if _, ok := cfg.Optimizer.(StatefulOptimizer); !ok {
			return nil, fmt.Errorf("nn: optimizer %s does not support checkpointing", cfg.Optimizer.Name())
		}
	}

	src0 := rng.New(cfg.Seed)
	// Dropout masks must not depend on worker scheduling, so each sample
	// gets a fresh per-sample stream seeded in sample order from a root
	// split off the fit source. The split is taken only when the model has
	// dropout, keeping the shuffle stream of dropout-free models unchanged.
	hasDrop := m.hasDropout()
	var dropRoot *rng.Source
	if hasDrop {
		dropRoot = src0.Split()
	}

	masterParams := m.Params()
	hist := &History{BestEpoch: -1}
	bestVal := math.Inf(1)
	var bestModel *Model
	sinceBest := 0

	// Resume: restore weights, optimizer state and best-epoch bookkeeping,
	// then fast-forward the shuffle and dropout streams past the completed
	// epochs so the continuation replays the exact draw sequence an
	// uninterrupted fit would have used.
	startEpoch := 0
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if ck := cfg.Resume; ck != nil {
		so, ok := cfg.Optimizer.(StatefulOptimizer)
		if !ok {
			return nil, fmt.Errorf("nn: optimizer %s does not support checkpointing", cfg.Optimizer.Name())
		}
		if ck.Seed != cfg.Seed {
			return nil, fmt.Errorf("nn: checkpoint seed %d does not match FitConfig seed %d", ck.Seed, cfg.Seed)
		}
		if ck.Samples != n {
			return nil, fmt.Errorf("nn: checkpoint trained on %d samples, source has %d", ck.Samples, n)
		}
		if ck.BatchSize != cfg.BatchSize {
			return nil, fmt.Errorf("nn: checkpoint batch size %d does not match %d", ck.BatchSize, cfg.BatchSize)
		}
		if ck.Optimizer.Name != cfg.Optimizer.Name() {
			return nil, fmt.Errorf("nn: checkpoint optimizer %q does not match %q", ck.Optimizer.Name, cfg.Optimizer.Name())
		}
		if ck.Model == nil {
			return nil, fmt.Errorf("nn: checkpoint has no model weights")
		}
		if err := m.CopyParamsFrom(ck.Model); err != nil {
			return nil, fmt.Errorf("nn: restoring checkpoint weights: %w", err)
		}
		if err := so.RestoreState(masterParams, ck.Optimizer); err != nil {
			return nil, err
		}
		hist = cloneHistory(ck.History)
		bestVal = math.Float64frombits(ck.BestValBits)
		sinceBest = ck.SinceBest
		bestModel = ck.Best
		startEpoch = ck.Epoch
		for e := 0; e < startEpoch; e++ {
			src0.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
			if hasDrop {
				for k := 0; k < n; k++ {
					dropRoot.Uint64()
				}
			}
		}
	}
	if startEpoch >= cfg.Epochs {
		return hist, nil
	}

	// Fully batchable stacks — now including the recurrent LSTM and
	// TimeDistributed layers — train through the blocked-GEMM kernels on the
	// master model; stacks with a layer lacking a batched kernel get one
	// replica per worker instead. Both paths keep the per-sample
	// accumulation order, so the fit stays bit-identical for any Workers
	// value (see Fit).
	workers := parallel.Resolve(cfg.Workers)
	if workers > cfg.BatchSize {
		workers = cfg.BatchSize
	}
	if workers > n {
		workers = n
	}
	batched := m.fullyBatchable()
	maxB := cfg.BatchSize
	if maxB > n {
		maxB = n
	}
	var (
		replicas      []*Model
		replicaParams [][]*Param
		gradBufs      [][]float64
		waveLoss      []float64
		dropSeeds     []uint64

		xblock, gblock []float64
		batchSeeds     []uint64
	)
	if batched {
		xblock = make([]float64, maxB*inLen)
		gblock = make([]float64, maxB*outLen)
		if hasDrop {
			batchSeeds = make([]uint64, maxB)
		}
	} else {
		var err error
		replicas, err = m.replicaPool(workers)
		if err != nil {
			return nil, err
		}
		replicaParams = make([][]*Param, workers)
		gradBufs = make([][]float64, workers)
		for i, r := range replicas {
			replicaParams[i] = r.Params()
			gradBufs[i] = make([]float64, outLen)
		}
		waveLoss = make([]float64, workers)
		dropSeeds = make([]uint64, workers)
	}

	var mx *fitMetrics
	if cfg.Metrics != nil {
		mx = newFitMetrics(cfg.Metrics)
	}

	// --- prefetch pipeline -------------------------------------------------
	batchesPerEpoch := (n + cfg.BatchSize - 1) / cfg.BatchSize
	prefetch := cfg.Prefetch
	if prefetch <= 0 {
		prefetch = 2
	}
	if prefetch > batchesPerEpoch*(cfg.Epochs-startEpoch) {
		prefetch = batchesPerEpoch * (cfg.Epochs - startEpoch)
	}
	renderWorkers := parallel.Resolve(cfg.Workers)
	if renderWorkers > prefetch {
		renderWorkers = prefetch
	}

	free := make(chan *fitSlot, prefetch)
	orderq := make(chan *fitSlot, prefetch)
	work := make(chan *fitSlot, prefetch)
	done := make(chan struct{})
	for s := 0; s < prefetch; s++ {
		sl := &fitSlot{
			idx:   make([]int, 0, maxB),
			x:     make([][]float64, maxB),
			y:     make([][]float64, maxB),
			ready: make(chan struct{}, 1),
		}
		for j := 0; j < maxB; j++ {
			sl.x[j] = pool.Grow(nil, inLen)
			sl.y[j] = pool.Grow(nil, outLen)
		}
		free <- sl
	}

	var wg sync.WaitGroup
	// Coordinator: owns the shuffle stream and the cumulative permutation.
	// It runs ahead of training by at most `prefetch` batches (bounded by
	// the free list), copying each batch's indices into the slot before
	// issuing it, so reshuffling for epoch e+1 never races a slot still
	// rendering epoch e.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(work)
		defer close(orderq)
		for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
			src0.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
			for start := 0; start < n; start += cfg.BatchSize {
				end := start + cfg.BatchSize
				if end > n {
					end = n
				}
				var sl *fitSlot
				select {
				case sl = <-free:
				case <-done:
					return
				}
				sl.idx = append(sl.idx[:0], idx[start:end]...)
				sl.n = end - start
				sl.epoch = epoch
				sl.err = nil
				select {
				case orderq <- sl:
				case <-done:
					return
				}
				select {
				case work <- sl:
				case <-done:
					return
				}
			}
		}
	}()
	// Render workers: fill slots from the source. Each slot is rendered by
	// exactly one worker; raising Prefetch admits more concurrent renders.
	for w := 0; w < renderWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sl := range work {
				sl.err = renderFitSlot(src, sl, validate)
				sl.ready <- struct{}{}
			}
		}()
	}
	defer func() {
		close(done)
		// Drain pending slots so render workers never block; buffers die
		// with the pipeline.
		wg.Wait()
	}()

	// --- training loop (consumer) ------------------------------------------
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		epochStart := time.Now()
		if cfg.LRSchedule != nil {
			cfg.Optimizer.(LRSettable).SetLR(cfg.LRSchedule(epoch))
		}
		m.SetTraining(true)
		for _, r := range replicas {
			r.SetTraining(true)
		}
		epochLoss := 0.0
		for start := 0; start < n; start += cfg.BatchSize {
			var waitStart time.Time
			if mx != nil {
				waitStart = time.Now()
			}
			sl := <-orderq
			<-sl.ready
			if mx != nil {
				mx.renderWait.ObserveSince(waitStart)
			}
			if sl.err != nil {
				return nil, sl.err
			}
			var computeStart time.Time
			if mx != nil {
				computeStart = time.Now()
			}
			bn := sl.n
			m.ZeroGrad()
			if batched {
				// Assemble the mini-batch into one row-major block and run a
				// single batched forward/backward. Dropout seeds are drawn in
				// sample order from the same root as the wave path, and the
				// losses accumulate in sample order, so shuffling, masks and
				// epoch loss all match the per-sample path exactly.
				for j := 0; j < bn; j++ {
					copy(xblock[j*inLen:(j+1)*inLen], sl.x[j])
				}
				if hasDrop {
					for j := 0; j < bn; j++ {
						batchSeeds[j] = dropRoot.Uint64()
					}
					m.reseedDropoutBatch(batchSeeds[:bn])
				}
				yb := m.forwardBatch(xblock[:bn*inLen], bn)
				for j := 0; j < bn; j++ {
					row := yb[j*outLen : (j+1)*outLen]
					epochLoss += cfg.Loss.Loss(row, sl.y[j])
					cfg.Loss.Grad(row, sl.y[j], gblock[j*outLen:(j+1)*outLen])
				}
				m.backwardBatch(gblock[:bn*outLen], bn)
			} else {
				// Waves of `workers` samples on weight-aliased replicas with a
				// deterministic sample-order reduction (see Fit).
				for wstart := 0; wstart < bn; wstart += workers {
					wn := workers
					if bn-wstart < wn {
						wn = bn - wstart
					}
					if hasDrop {
						for j := 0; j < wn; j++ {
							dropSeeds[j] = dropRoot.Uint64()
						}
					}
					if err := parallel.For(wn, wn, func(_, j int) error {
						r := replicas[j]
						r.ZeroGrad()
						if hasDrop {
							r.reseedDropout(dropSeeds[j])
						}
						out := r.Forward(sl.x[wstart+j])
						waveLoss[j] = cfg.Loss.Loss(out, sl.y[wstart+j])
						cfg.Loss.Grad(out, sl.y[wstart+j], gradBufs[j])
						r.Backward(gradBufs[j])
						return nil
					}); err != nil {
						return nil, err
					}
					for j := 0; j < wn; j++ {
						epochLoss += waveLoss[j]
						rp := replicaParams[j]
						for pi, p := range masterParams {
							for gi, g := range rp[pi].Grad {
								p.Grad[gi] += g
							}
						}
					}
				}
			}
			// average gradients over the batch
			inv := 1 / float64(bn)
			for _, p := range masterParams {
				for i := range p.Grad {
					p.Grad[i] *= inv
				}
			}
			if cfg.ClipNorm > 0 {
				clipGradNorm(masterParams, cfg.ClipNorm)
			}
			cfg.Optimizer.Step(masterParams)
			if mx != nil {
				mx.computeSecs.ObserveSince(computeStart)
				mx.batches.Inc()
			}
			free <- sl
		}
		m.SetTraining(false)
		epochLoss /= float64(n)
		hist.TrainLoss = append(hist.TrainLoss, epochLoss)
		if mx != nil {
			mx.epochs.Inc()
			mx.samples.Add(uint64(n))
			mx.epochSeconds.ObserveSince(epochStart)
			mx.trainLoss.Set(epochLoss)
		}

		stopping := false
		if len(cfg.ValX) > 0 {
			var valLoss float64
			var verr error
			if batched {
				valLoss, verr = m.evaluateLossBatched(cfg.ValX, cfg.ValY, cfg.Loss, cfg.BatchSize)
			} else {
				valLoss, verr = evaluateLossReplicas(replicas, cfg.ValX, cfg.ValY, cfg.Loss)
			}
			if verr != nil {
				return nil, verr
			}
			hist.ValLoss = append(hist.ValLoss, valLoss)
			if mx != nil {
				mx.valLoss.Set(valLoss)
			}
			if cfg.Verbose != nil {
				fmt.Fprintf(cfg.Verbose, "epoch %3d  train=%.6f  val=%.6f\n", epoch+1, epochLoss, valLoss)
			}
			if valLoss < bestVal {
				bestVal = valLoss
				hist.BestEpoch = epoch
				sinceBest = 0
				if cfg.KeepBest || cfg.Patience > 0 {
					c, err := m.Clone()
					if err != nil {
						return nil, err
					}
					bestModel = c
				}
			} else {
				sinceBest++
				if cfg.Patience > 0 && sinceBest >= cfg.Patience {
					stopping = true
				}
			}
		} else if cfg.Verbose != nil {
			fmt.Fprintf(cfg.Verbose, "epoch %3d  train=%.6f\n", epoch+1, epochLoss)
		}

		if cfg.CheckpointPath != "" {
			every := cfg.CheckpointEvery
			if every <= 0 {
				every = 1
			}
			if (epoch+1)%every == 0 || epoch == cfg.Epochs-1 || stopping {
				ck, err := m.snapshotCheckpoint(cfg, n, epoch+1, hist, bestVal, sinceBest, bestModel)
				if err != nil {
					return nil, err
				}
				if err := SaveCheckpointFile(cfg.CheckpointPath, ck); err != nil {
					return nil, err
				}
			}
		}
		if stopping {
			hist.Stopped = true
			break
		}
	}
	if bestModel != nil && (cfg.KeepBest || hist.Stopped) {
		if err := m.CopyParamsFrom(bestModel); err != nil {
			return nil, err
		}
	}
	return hist, nil
}

// renderFitSlot fills one slot from the source and, when validate is set,
// rejects non-finite rendered values with the sample's global index — the
// same contract Fit enforces on materialized rows, applied as rows are
// rendered (off the training hot path, on the render workers).
func renderFitSlot(src dataset.Source, sl *fitSlot, validate bool) error {
	if err := src.Batch(sl.epoch, sl.idx, sl.x[:sl.n], sl.y[:sl.n]); err != nil {
		return err
	}
	if !validate {
		return nil
	}
	for j := 0; j < sl.n; j++ {
		for _, v := range sl.x[j] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nn: sample %d contains a non-finite feature", sl.idx[j])
			}
		}
		for _, v := range sl.y[j] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nn: label %d contains a non-finite value", sl.idx[j])
			}
		}
	}
	return nil
}
