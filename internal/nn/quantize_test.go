package nn

import (
	"math"
	"testing"

	"specml/internal/rng"
)

func TestQuantizeParamsBounds(t *testing.T) {
	m := buildModel(t, 51, []int{10}, NewDense(8), NewActivation(Tanh), NewDense(3))
	if _, err := QuantizeParams(m, 1); err == nil {
		t.Fatal("1 bit must error")
	}
	if _, err := QuantizeParams(m, 33); err == nil {
		t.Fatal("33 bits must error")
	}
}

func TestQuantizeParamsErrorShrinksWithBits(t *testing.T) {
	m := buildModel(t, 52, []int{16}, NewDense(12), NewActivation(Tanh), NewDense(4))
	prev := math.Inf(1)
	for _, bits := range []int{4, 8, 12, 16} {
		q, err := QuantizeParams(m, bits)
		if err != nil {
			t.Fatal(err)
		}
		_, rms, err := QuantizationError(m, q)
		if err != nil {
			t.Fatal(err)
		}
		if rms > prev {
			t.Fatalf("rms error grew from %v to %v at %d bits", prev, rms, bits)
		}
		// the grid step at b bits bounds the per-weight error
		maxRel, _, _ := QuantizationError(m, q)
		levels := float64(int64(1)<<(bits-1)) - 1
		if maxRel > 0.5/levels+1e-12 {
			t.Fatalf("%d bits: max relative error %v exceeds grid bound %v", bits, maxRel, 0.5/levels)
		}
		prev = rms
	}
}

func TestQuantizeParamsLeavesOriginalUntouched(t *testing.T) {
	m := buildModel(t, 53, []int{4}, NewDense(2))
	before := append([]float64(nil), m.Params()[0].Data...)
	if _, err := QuantizeParams(m, 4); err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Params()[0].Data {
		if v != before[i] {
			t.Fatal("quantization mutated the original model")
		}
	}
}

func TestQuantizedPredictionDegradesGracefully(t *testing.T) {
	// train a small regression net, then check 12-bit quantization barely
	// moves predictions while 3-bit visibly does
	src := rng.New(54)
	var xs, ys [][]float64
	for i := 0; i < 150; i++ {
		x := src.Uniform(-1, 1)
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{math.Sin(2 * x)})
	}
	m := buildModel(t, 55, []int{1}, NewDense(12), NewActivation(Tanh), NewDense(1))
	if _, err := m.Fit(xs, ys, FitConfig{Epochs: 80, BatchSize: 16, Loss: MSE, Optimizer: NewAdam(0.02), Seed: 9}); err != nil {
		t.Fatal(err)
	}
	base := m.EvaluateMSE(xs, ys)
	q12, _ := QuantizeParams(m, 12)
	q3, _ := QuantizeParams(m, 3)
	mse12 := q12.EvaluateMSE(xs, ys)
	mse3 := q3.EvaluateMSE(xs, ys)
	if mse12 > 2*base+1e-6 {
		t.Fatalf("12-bit quantization degraded MSE %v -> %v", base, mse12)
	}
	if mse3 < mse12 {
		t.Fatalf("3-bit (%v) should be worse than 12-bit (%v)", mse3, mse12)
	}
}

func TestQuantizedBytes(t *testing.T) {
	m := buildModel(t, 56, []int{10}, NewDense(10)) // 110 params
	if got := QuantizedBytes(m, 8); got != 110 {
		t.Fatalf("8-bit bytes = %d, want 110", got)
	}
	if got := QuantizedBytes(m, 4); got != 55 {
		t.Fatalf("4-bit bytes = %d, want 55", got)
	}
	if got := QuantizedBytes(m, 10); got != (110*10+7)/8 {
		t.Fatalf("10-bit bytes = %d", got)
	}
}

func TestQuantizationErrorMismatch(t *testing.T) {
	a := buildModel(t, 57, []int{4}, NewDense(2))
	b := buildModel(t, 57, []int{4}, NewDense(3))
	if _, _, err := QuantizationError(a, b); err == nil {
		t.Fatal("mismatched models must error")
	}
}
