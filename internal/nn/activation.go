// Package nn is a from-scratch neural-network framework covering exactly
// the architectures the paper uses: multi-layer perceptrons, 1-D
// convolutional networks (Table 1), locally connected 1-D layers (the NMR
// CNN) and LSTM networks, with ReLU/SELU/Softmax/Linear activations, MAE
// and MSE losses and SGD/Momentum/Adam optimizers. All layers implement
// exact backpropagation, verified against finite differences in the test
// suite.
//
// The framework operates per-sample on flat []float64 buffers with shape
// metadata established once at build time; mini-batch training accumulates
// gradients across samples before each optimizer step.
package nn

import (
	"fmt"
	"math"
)

// Activation is a pointwise nonlinearity. Softmax is not pointwise and is
// implemented as its own layer (SoftmaxLayer).
type Activation interface {
	// Name returns the canonical lower-case identifier ("relu", "selu", ...).
	Name() string
	// Value evaluates the function at x.
	Value(x float64) float64
	// Deriv evaluates the derivative at pre-activation x (y = Value(x) is
	// supplied so implementations like sigmoid can reuse it).
	Deriv(x, y float64) float64
}

// SELU constants from Klambauer et al., "Self-Normalizing Neural Networks".
const (
	seluLambda = 1.0507009873554804934193349852946
	seluAlpha  = 1.6732632423543772848170429916717
)

type linearAct struct{}

func (linearAct) Name() string               { return "linear" }
func (linearAct) Value(x float64) float64    { return x }
func (linearAct) Deriv(_, _ float64) float64 { return 1 }

type reluAct struct{}

func (reluAct) Name() string { return "relu" }
func (reluAct) Value(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}
func (reluAct) Deriv(x, _ float64) float64 {
	if x > 0 {
		return 1
	}
	return 0
}

type seluAct struct{}

func (seluAct) Name() string { return "selu" }
func (seluAct) Value(x float64) float64 {
	if x > 0 {
		return seluLambda * x
	}
	return seluLambda * seluAlpha * (math.Exp(x) - 1)
}
func (seluAct) Deriv(x, _ float64) float64 {
	if x > 0 {
		return seluLambda
	}
	return seluLambda * seluAlpha * math.Exp(x)
}

type sigmoidAct struct{}

func (sigmoidAct) Name() string { return "sigmoid" }
func (sigmoidAct) Value(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}
func (sigmoidAct) Deriv(_, y float64) float64 { return y * (1 - y) }

type tanhAct struct{}

func (tanhAct) Name() string               { return "tanh" }
func (tanhAct) Value(x float64) float64    { return math.Tanh(x) }
func (tanhAct) Deriv(_, y float64) float64 { return 1 - y*y }

// Named activation singletons.
var (
	Linear  Activation = linearAct{}
	ReLU    Activation = reluAct{}
	SELU    Activation = seluAct{}
	Sigmoid Activation = sigmoidAct{}
	Tanh    Activation = tanhAct{}
)

// ActivationByName resolves a canonical activation name. "softmax" is not
// resolvable here; use NewSoftmax (it is a layer, not a pointwise map).
func ActivationByName(name string) (Activation, error) {
	switch name {
	case "linear", "":
		return Linear, nil
	case "relu":
		return ReLU, nil
	case "selu":
		return SELU, nil
	case "sigmoid":
		return Sigmoid, nil
	case "tanh":
		return Tanh, nil
	default:
		return nil, fmt.Errorf("nn: unknown activation %q", name)
	}
}

// Softmax computes the softmax of x into out with the usual max-shift for
// numerical stability. out and x may alias.
func Softmax(out, x []float64) {
	if len(out) != len(x) {
		panic("nn: Softmax length mismatch")
	}
	maxV := math.Inf(-1)
	for _, v := range x {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for i, v := range x {
		e := math.Exp(v - maxV)
		out[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range out {
		out[i] *= inv
	}
}
