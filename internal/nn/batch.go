package nn

import (
	"fmt"

	"specml/internal/rng"
	"specml/internal/tensor"
	"specml/internal/tensor/pool"
)

// BatchLayer is the batched fast path of a Layer: ForwardBatch and
// BackwardBatch process a whole row-major [n x features] block in one call,
// turning n per-sample loops into blocked GEMM kernels (im2col lowering for
// the convolutions). Implementations guarantee BIT-IDENTICAL results to
// looping Forward/Backward over the rows: inside every kernel each output
// element keeps the exact accumulation order of the per-sample loops, so
// batching is invisible to the golden-file, worker-invariance and serve
// bitwise-identity tests.
//
// Like the per-sample path, the batched path is stateful: BackwardBatch
// consumes the caches of the most recent ForwardBatch (with the same n) and
// returned blocks are owned by the layer until its next call. Every shipped
// layer now implements the interface — the recurrent stack included (LSTM
// in lstm_batch.go, TimeDistributed by reshaping to [n*steps x features]
// rows); Model keeps a per-sample fallback in forwardBatch only for
// external layers without a kernel.
type BatchLayer interface {
	Layer
	// ForwardBatch computes outputs for n samples packed row-major in x
	// ([n x inLen]) and returns a layer-owned [n x outLen] block.
	ForwardBatch(x []float64, n int) []float64
	// BackwardBatch consumes dLoss/dOutput for the last ForwardBatch's n
	// samples and returns the layer-owned [n x inLen] input-gradient block,
	// accumulating parameter gradients exactly as n sequential Backward
	// calls would.
	BackwardBatch(gradOut []float64, n int) []float64
}

// zero clears a scratch slice (the batched kernels accumulate into their
// destinations, so reused buffers must start from +0 like fresh ones).
func zero(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// ---------------------------------------------------------------------------
// Dense

// ForwardBatch implements BatchLayer: one GEMM for the whole block.
func (d *Dense) ForwardBatch(x []float64, n int) []float64 {
	d.bx = x // kept for BackwardBatch; blocks stay alive across one fwd/bwd cycle
	d.by = pool.Grow(d.by, n*d.Out)
	zero(d.by)
	// Per row: accumulator starts at 0, adds w[r][c]*x[c] in ascending c
	// order, bias added afterwards — exactly MatVec + bias in Forward.
	tensor.GemmNT(d.by, x, d.w.Data, n, d.Out, d.in)
	for s := 0; s < n; s++ {
		row := d.by[s*d.Out : (s+1)*d.Out]
		for i := range row {
			row[i] += d.b.Data[i]
		}
	}
	return d.by
}

// BackwardBatch implements BatchLayer.
func (d *Dense) BackwardBatch(gradOut []float64, n int) []float64 {
	// dW += dYᵀ·X with the batch as the contraction axis: every weight
	// element receives its per-sample contributions in ascending sample
	// order with OuterAccum's zero-skip, matching n sequential Backwards.
	tensor.GemmTN(d.w.Grad, gradOut, d.bx, d.Out, d.in, n)
	for s := 0; s < n; s++ {
		grow := gradOut[s*d.Out : (s+1)*d.Out]
		for i, g := range grow {
			d.b.Grad[i] += g
		}
	}
	d.bgin = pool.Grow(d.bgin, n*d.in)
	zero(d.bgin)
	// dX = dY·W: per row, ascending output index with MatTVec's zero-skip.
	tensor.Gemm(d.bgin, gradOut, d.w.Data, n, d.in, d.Out)
	return d.bgin
}

// ---------------------------------------------------------------------------
// Conv1D

// ForwardBatch implements BatchLayer: im2col lowering plus one blocked GEMM
// over all samples and output positions.
func (c *Conv1D) ForwardBatch(x []float64, n int) []float64 {
	fanIn := c.Kernel * c.inCh
	inSize := c.inLen * c.inCh
	rows := n * c.outLen
	c.bcol = pool.Grow(c.bcol, rows*fanIn)
	for s := 0; s < n; s++ {
		tensor.Im2Col(c.bcol[s*c.outLen*fanIn:(s+1)*c.outLen*fanIn],
			x[s*inSize:(s+1)*inSize], c.inLen, c.inCh, c.Kernel, c.Stride, c.outLen)
	}
	c.by = pool.Grow(c.by, rows*c.Filters)
	// The per-sample loop seeds each accumulator with the bias and then
	// adds the window products in ascending order; prefilling C with the
	// bias before the accumulating GEMM reproduces that exactly.
	for r := 0; r < rows; r++ {
		copy(c.by[r*c.Filters:(r+1)*c.Filters], c.b.Data)
	}
	tensor.GemmNT(c.by, c.bcol, c.w.Data, rows, c.Filters, fanIn)
	return c.by
}

// BackwardBatch implements BatchLayer. The weight gradient contracts the
// cached im2col block against the output gradients in one GEMM; the input
// gradient keeps the per-position loop structure (GEMM + Col2Im when the
// windows don't overlap), both preserving the per-sample addition order.
func (c *Conv1D) BackwardBatch(gradOut []float64, n int) []float64 {
	fanIn := c.Kernel * c.inCh
	inSize := c.inLen * c.inCh
	rows := n * c.outLen
	// dW += dYᵀ·col: contributions arrive in ascending (sample, position)
	// order with the gf==0 skip — the order of n sequential Backwards.
	tensor.GemmTN(c.w.Grad, gradOut, c.bcol, c.Filters, fanIn, rows)
	for r := 0; r < rows; r++ {
		grow := gradOut[r*c.Filters : (r+1)*c.Filters]
		for f, gf := range grow {
			if gf != 0 {
				c.b.Grad[f] += gf
			}
		}
	}
	c.bgin = pool.Grow(c.bgin, n*inSize)
	zero(c.bgin)
	if c.Stride >= c.Kernel {
		// Non-overlapping windows: each input element belongs to exactly one
		// position, so dcol = dY·W scattered by Col2Im adds the same values
		// in the same order as the per-position loop.
		c.bdcol = pool.Grow(c.bdcol, rows*fanIn)
		zero(c.bdcol)
		tensor.Gemm(c.bdcol, gradOut, c.w.Data, rows, fanIn, c.Filters)
		for s := 0; s < n; s++ {
			tensor.Col2Im(c.bgin[s*inSize:(s+1)*inSize],
				c.bdcol[s*c.outLen*fanIn:(s+1)*c.outLen*fanIn],
				c.inLen, c.inCh, c.Kernel, c.Stride, c.outLen)
		}
		return c.bgin
	}
	// Overlapping windows: an input element collects contributions from
	// several positions interleaved by filter; only the exact per-sample
	// loop reproduces that addition sequence.
	for s := 0; s < n; s++ {
		gin := c.bgin[s*inSize : (s+1)*inSize]
		gs := gradOut[s*c.outLen*c.Filters : (s+1)*c.outLen*c.Filters]
		for p := 0; p < c.outLen; p++ {
			base := p * c.Stride * c.inCh
			ginWin := gin[base : base+fanIn]
			grow := gs[p*c.Filters : (p+1)*c.Filters]
			for f, gf := range grow {
				if gf == 0 {
					continue
				}
				wf := c.w.Data[f*fanIn : (f+1)*fanIn]
				for i, wv := range wf {
					ginWin[i] += gf * wv
				}
			}
		}
	}
	return c.bgin
}

// ---------------------------------------------------------------------------
// LocallyConnected1D

// ForwardBatch implements BatchLayer. Weights are per-position, so there is
// no single GEMM; instead the position loop moves outermost and the batch
// innermost, streaming the (large) weight tensor once per batch instead of
// once per sample. Each output element keeps its per-sample dot-product
// order: accumulator seeded with the bias, window products ascending.
func (c *LocallyConnected1D) ForwardBatch(x []float64, n int) []float64 {
	fanIn := c.Kernel * c.inCh
	inSize := c.inLen * c.inCh
	c.bx = x
	c.by = pool.Grow(c.by, n*c.outLen*c.Filters)
	for p := 0; p < c.outLen; p++ {
		base := p * c.Stride * c.inCh
		wp := c.w.Data[p*c.Filters*fanIn : (p+1)*c.Filters*fanIn]
		bp := c.b.Data[p*c.Filters : (p+1)*c.Filters]
		for s := 0; s < n; s++ {
			win := x[s*inSize+base : s*inSize+base+fanIn]
			out := c.by[(s*c.outLen+p)*c.Filters : (s*c.outLen+p+1)*c.Filters]
			for f := 0; f < c.Filters; f++ {
				wf := wp[f*fanIn : (f+1)*fanIn]
				acc := bp[f]
				for i, v := range win {
					acc += wf[i] * v
				}
				out[f] = acc
			}
		}
	}
	return c.by
}

// BackwardBatch implements BatchLayer: the exact per-sample loop run over
// the cached input block, samples outermost so every gradient element
// accumulates in ascending sample order like sequential Backward calls.
func (c *LocallyConnected1D) BackwardBatch(gradOut []float64, n int) []float64 {
	fanIn := c.Kernel * c.inCh
	inSize := c.inLen * c.inCh
	c.bgin = pool.Grow(c.bgin, n*inSize)
	zero(c.bgin)
	for s := 0; s < n; s++ {
		xs := c.bx[s*inSize : (s+1)*inSize]
		gin := c.bgin[s*inSize : (s+1)*inSize]
		gs := gradOut[s*c.outLen*c.Filters : (s+1)*c.outLen*c.Filters]
		for p := 0; p < c.outLen; p++ {
			base := p * c.Stride * c.inCh
			win := xs[base : base+fanIn]
			ginWin := gin[base : base+fanIn]
			g := gs[p*c.Filters : (p+1)*c.Filters]
			wp := c.w.Data[p*c.Filters*fanIn : (p+1)*c.Filters*fanIn]
			gwp := c.w.Grad[p*c.Filters*fanIn : (p+1)*c.Filters*fanIn]
			gbp := c.b.Grad[p*c.Filters : (p+1)*c.Filters]
			for f := 0; f < c.Filters; f++ {
				gf := g[f]
				if gf == 0 {
					continue
				}
				gbp[f] += gf
				wf := wp[f*fanIn : (f+1)*fanIn]
				gwf := gwp[f*fanIn : (f+1)*fanIn]
				for i, v := range win {
					gwf[i] += gf * v
					ginWin[i] += gf * wf[i]
				}
			}
		}
	}
	return c.bgin
}

// ---------------------------------------------------------------------------
// ActivationLayer

// ForwardBatch implements BatchLayer: one pointwise pass over the block.
func (l *ActivationLayer) ForwardBatch(x []float64, n int) []float64 {
	l.bx = x
	l.by = pool.Grow(l.by, n*len(l.y))
	for i, v := range x {
		l.by[i] = l.Act.Value(v)
	}
	return l.by
}

// BackwardBatch implements BatchLayer.
func (l *ActivationLayer) BackwardBatch(gradOut []float64, n int) []float64 {
	l.bgin = pool.Grow(l.bgin, n*len(l.gin))
	for i, g := range gradOut {
		l.bgin[i] = g * l.Act.Deriv(l.bx[i], l.by[i])
	}
	return l.bgin
}

// ---------------------------------------------------------------------------
// SoftmaxLayer

// ForwardBatch implements BatchLayer: the per-group softmax of Forward, run
// over every row of the block.
func (l *SoftmaxLayer) ForwardBatch(x []float64, n int) []float64 {
	nf := len(l.y)
	l.by = pool.Grow(l.by, n*nf)
	for s := 0; s < n; s++ {
		for g := 0; g < l.groups; g++ {
			lo, hi := s*nf+g*l.width, s*nf+(g+1)*l.width
			Softmax(l.by[lo:hi], x[lo:hi])
		}
	}
	return l.by
}

// BackwardBatch implements BatchLayer.
func (l *SoftmaxLayer) BackwardBatch(gradOut []float64, n int) []float64 {
	nf := len(l.y)
	l.bgin = pool.Grow(l.bgin, n*nf)
	for s := 0; s < n; s++ {
		for g := 0; g < l.groups; g++ {
			lo, hi := s*nf+g*l.width, s*nf+(g+1)*l.width
			y := l.by[lo:hi]
			grad := gradOut[lo:hi]
			dot := 0.0
			for i, gv := range grad {
				dot += gv * y[i]
			}
			gin := l.bgin[lo:hi]
			for i, gv := range grad {
				gin[i] = y[i] * (gv - dot)
			}
		}
	}
	return l.bgin
}

// ---------------------------------------------------------------------------
// Dropout

// setBatchSources installs one mask stream per sample of the next training
// ForwardBatch; Model.reseedDropoutBatch derives them exactly like the
// per-sample reseedDropout so batched masks equal per-sample masks.
func (l *Dropout) setBatchSources(srcs []*rng.Source) { l.batchSrcs = srcs }

// ForwardBatch implements BatchLayer. Outside training it is the identity
// (no copy, like the snapshot-free inference Forward); in training each row
// draws its mask from its own per-sample stream in element order, exactly
// as Forward does after a per-sample Reseed.
func (l *Dropout) ForwardBatch(x []float64, n int) []float64 {
	if !l.training || l.Rate == 0 {
		return x
	}
	nf := len(l.y)
	if len(l.batchSrcs) < n {
		panic("nn: dropout ForwardBatch in training mode without per-sample batch sources")
	}
	l.bmask = pool.Grow(l.bmask, n*nf)
	l.by = pool.Grow(l.by, n*nf)
	keep := 1 - l.Rate
	inv := 1 / keep
	for s := 0; s < n; s++ {
		src := l.batchSrcs[s]
		row := x[s*nf : (s+1)*nf]
		mrow := l.bmask[s*nf : (s+1)*nf]
		orow := l.by[s*nf : (s+1)*nf]
		for i, v := range row {
			if src.Float64() < keep {
				mrow[i] = inv
			} else {
				mrow[i] = 0
			}
			orow[i] = v * mrow[i]
		}
	}
	return l.by
}

// BackwardBatch implements BatchLayer.
func (l *Dropout) BackwardBatch(gradOut []float64, n int) []float64 {
	if !l.training || l.Rate == 0 {
		return gradOut
	}
	nf := len(l.y)
	l.bgin = pool.Grow(l.bgin, n*nf)
	for i, g := range gradOut {
		l.bgin[i] = g * l.bmask[i]
	}
	return l.bgin
}

// ---------------------------------------------------------------------------
// Shape-only layers

// ForwardBatch implements BatchLayer (flat blocks make reshape a no-op).
func (l *Reshape) ForwardBatch(x []float64, _ int) []float64 { return x }

// BackwardBatch implements BatchLayer.
func (l *Reshape) BackwardBatch(gradOut []float64, _ int) []float64 { return gradOut }

// ForwardBatch implements BatchLayer.
func (l *Flatten) ForwardBatch(x []float64, _ int) []float64 { return x }

// BackwardBatch implements BatchLayer.
func (l *Flatten) BackwardBatch(gradOut []float64, _ int) []float64 { return gradOut }

// ---------------------------------------------------------------------------
// Pooling

// ForwardBatch implements BatchLayer.
func (l *MaxPool1D) ForwardBatch(x []float64, n int) []float64 {
	inSize := l.inLen * l.ch
	oSize := l.outLen * l.ch
	l.by = pool.Grow(l.by, n*oSize)
	l.bargmax = pool.GrowInts(l.bargmax, n*oSize)
	for s := 0; s < n; s++ {
		xs := x[s*inSize : (s+1)*inSize]
		ys := l.by[s*oSize : (s+1)*oSize]
		am := l.bargmax[s*oSize : (s+1)*oSize]
		for p := 0; p < l.outLen; p++ {
			for c := 0; c < l.ch; c++ {
				bestIdx := (p*l.Stride)*l.ch + c
				best := xs[bestIdx]
				for k := 1; k < l.Kernel; k++ {
					idx := (p*l.Stride+k)*l.ch + c
					if xs[idx] > best {
						best, bestIdx = xs[idx], idx
					}
				}
				ys[p*l.ch+c] = best
				am[p*l.ch+c] = bestIdx // sample-local index, like Forward
			}
		}
	}
	return l.by
}

// BackwardBatch implements BatchLayer.
func (l *MaxPool1D) BackwardBatch(gradOut []float64, n int) []float64 {
	inSize := l.inLen * l.ch
	oSize := l.outLen * l.ch
	l.bgin = pool.Grow(l.bgin, n*inSize)
	zero(l.bgin)
	for s := 0; s < n; s++ {
		gin := l.bgin[s*inSize : (s+1)*inSize]
		grow := gradOut[s*oSize : (s+1)*oSize]
		am := l.bargmax[s*oSize : (s+1)*oSize]
		for i, g := range grow {
			gin[am[i]] += g
		}
	}
	return l.bgin
}

// ForwardBatch implements BatchLayer.
func (l *AvgPool1D) ForwardBatch(x []float64, n int) []float64 {
	inSize := l.inLen * l.ch
	oSize := l.outLen * l.ch
	l.by = pool.Grow(l.by, n*oSize)
	inv := 1 / float64(l.Kernel)
	for s := 0; s < n; s++ {
		xs := x[s*inSize : (s+1)*inSize]
		ys := l.by[s*oSize : (s+1)*oSize]
		for p := 0; p < l.outLen; p++ {
			for c := 0; c < l.ch; c++ {
				sum := 0.0
				for k := 0; k < l.Kernel; k++ {
					sum += xs[(p*l.Stride+k)*l.ch+c]
				}
				ys[p*l.ch+c] = sum * inv
			}
		}
	}
	return l.by
}

// BackwardBatch implements BatchLayer.
func (l *AvgPool1D) BackwardBatch(gradOut []float64, n int) []float64 {
	inSize := l.inLen * l.ch
	oSize := l.outLen * l.ch
	l.bgin = pool.Grow(l.bgin, n*inSize)
	zero(l.bgin)
	inv := 1 / float64(l.Kernel)
	for s := 0; s < n; s++ {
		gin := l.bgin[s*inSize : (s+1)*inSize]
		grow := gradOut[s*oSize : (s+1)*oSize]
		for p := 0; p < l.outLen; p++ {
			for c := 0; c < l.ch; c++ {
				g := grow[p*l.ch+c] * inv
				for k := 0; k < l.Kernel; k++ {
					gin[(p*l.Stride+k)*l.ch+c] += g
				}
			}
		}
	}
	return l.bgin
}

// ---------------------------------------------------------------------------
// Model drivers

// batchScratch recycles the flattened input blocks assembled by
// PredictBatch across calls (the serve dispatcher flushes continuously, so
// steady-state batching must not allocate per flush).
var batchScratch pool.Pool

// conditionalBatch is implemented by wrapper layers whose batched kernels
// only truly batch under some condition (TimeDistributed batches when its
// inner layer does, falling back per sample inside ForwardBatch otherwise).
// fullyBatchable consults it so a wrapper with a per-sample core doesn't
// masquerade as a batched stack.
type conditionalBatch interface{ batchCapable() bool }

// fullyBatchable reports whether every layer runs a real batched kernel,
// i.e. whether training and the serve batcher can run fully batched with no
// per-sample fallback anywhere in the stack. Inference can always use
// forwardBatch: layers without a kernel fall back per sample inside it.
func (m *Model) fullyBatchable() bool {
	for _, l := range m.layers {
		if cb, ok := l.(conditionalBatch); ok {
			if !cb.batchCapable() {
				return false
			}
			continue
		}
		if _, ok := l.(BatchLayer); !ok {
			return false
		}
	}
	return true
}

// forwardBatch runs n row-major samples through the stack, using each
// layer's batched kernel when it has one and a generic per-sample fallback
// when it does not. With fused activations enabled, a Dense layer feeding a
// ReLU/SELU activation runs both in one pass. The returned [n x outLen]
// block is owned by the model's layers and overwritten by the next call.
func (m *Model) forwardBatch(x []float64, n int) []float64 {
	if m.fallbackOut == nil {
		m.fallbackOut = make([][]float64, len(m.layers))
	}
	for li := 0; li < len(m.layers); li++ {
		l := m.layers[li]
		if m.fuseAct && li+1 < len(m.layers) {
			if d, ok := l.(*Dense); ok {
				if a, ok := m.layers[li+1].(*ActivationLayer); ok && fusableActivation(a.Act) {
					x = d.forwardBatchFused(x, n, a)
					li++ // the activation layer ran inside the fused step
					continue
				}
			}
		}
		if bl, ok := l.(BatchLayer); ok {
			x = bl.ForwardBatch(x, n)
			continue
		}
		in := len(x) / n
		var out []float64
		for s := 0; s < n; s++ {
			o := l.Forward(x[s*in : (s+1)*in])
			if out == nil {
				out = pool.Grow(m.fallbackOut[li], n*len(o))
				m.fallbackOut[li] = out
			}
			copy(out[s*len(o):(s+1)*len(o)], o)
		}
		x = out
	}
	return x
}

// fusableActivation gates the fused Dense+activation step to pointwise
// functions whose fused evaluation is trivially the per-layer one (the
// ReLU/SELU families the paper's dense heads use).
func fusableActivation(a Activation) bool {
	switch a.Name() {
	case "relu", "selu":
		return true
	}
	return false
}

// forwardBatchFused is ForwardBatch for a Dense layer immediately followed
// by a pointwise activation: the bias pass that finishes the GEMM output
// also applies the activation, skipping one full traversal of the block.
// Both layers' caches end up exactly as the unfused pair would leave them —
// d.by holds the post-bias pre-activations and a.bx aliases it — so
// BackwardBatch needs no fusion awareness and gradients are bit-identical.
func (d *Dense) forwardBatchFused(x []float64, n int, a *ActivationLayer) []float64 {
	d.bx = x
	d.by = pool.Grow(d.by, n*d.Out)
	zero(d.by)
	tensor.GemmNT(d.by, x, d.w.Data, n, d.Out, d.in)
	a.bx = d.by
	a.by = pool.Grow(a.by, n*d.Out)
	for s := 0; s < n; s++ {
		row := d.by[s*d.Out : (s+1)*d.Out]
		orow := a.by[s*d.Out : (s+1)*d.Out]
		for i := range row {
			row[i] += d.b.Data[i]
			orow[i] = a.Act.Value(row[i])
		}
	}
	return a.by
}

// backwardBatch propagates a [n x outLen] gradient block through a fully
// batchable stack (callers must have checked fullyBatchable), accumulating
// parameter gradients exactly like n sequential Backward calls.
func (m *Model) backwardBatch(gradOut []float64, n int) []float64 {
	g := gradOut
	for i := len(m.layers) - 1; i >= 0; i-- {
		g = m.layers[i].(BatchLayer).BackwardBatch(g, n)
	}
	return g
}

// reseedDropoutBatch gives every dropout layer one mask stream per sample,
// derived exactly like the per-sample reseedDropout (rng.New(seed) then one
// Split per dropout layer in layer order), so batched masks are
// bit-identical to the per-sample path's.
func (m *Model) reseedDropoutBatch(seeds []uint64) {
	var drops []*Dropout
	for _, l := range m.layers {
		if d, ok := l.(*Dropout); ok {
			drops = append(drops, d)
			if cap(d.batchSrcs) < len(seeds) {
				d.batchSrcs = make([]*rng.Source, len(seeds))
			}
			d.batchSrcs = d.batchSrcs[:len(seeds)]
		}
	}
	for j, seed := range seeds {
		src := rng.New(seed)
		for _, d := range drops {
			d.batchSrcs[j] = src.Split()
		}
	}
}

// acquireReplicas hands out k shared replicas from the model's cached pool,
// building missing ones. Replicas alias the master's weights (hot reloads
// that swap the whole model never see them) and are returned with
// releaseReplicas, so steady-state batched inference allocates nothing.
func (m *Model) acquireReplicas(k int) ([]*Model, error) {
	got := make([]*Model, 0, k)
	m.repMu.Lock()
	for len(got) < k && len(m.repFree) > 0 {
		got = append(got, m.repFree[len(m.repFree)-1])
		m.repFree = m.repFree[:len(m.repFree)-1]
	}
	m.repMu.Unlock()
	for len(got) < k {
		r, err := m.sharedReplica()
		if err != nil {
			m.releaseReplicas(got)
			return nil, err
		}
		got = append(got, r)
	}
	return got, nil
}

// releaseReplicas returns replicas to the cache.
func (m *Model) releaseReplicas(rs []*Model) {
	m.repMu.Lock()
	m.repFree = append(m.repFree, rs...)
	m.repMu.Unlock()
}

// checkBatchInputs panics like Forward on a row of the wrong width, from
// the caller's goroutine so the serve dispatcher's recover can turn it into
// a batch error instead of a worker-goroutine crash.
func (m *Model) checkBatchInputs(x [][]float64) {
	inLen := m.InputLen()
	for _, row := range x {
		if len(row) != inLen {
			panic(fmt.Sprintf("nn: input length %d, model expects %d", len(row), inLen))
		}
	}
}
