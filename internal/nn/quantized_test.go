package nn

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"specml/internal/rng"
)

func quantTestInput(seed uint64, n int) []float64 {
	src := rng.New(seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = src.Uniform(-1, 1)
	}
	return x
}

func TestQuantizeRequiresBuild(t *testing.T) {
	m := NewModel().Add(NewDense(3))
	if _, err := Quantize(m); err == nil {
		t.Fatal("Quantize before Build must error")
	}
}

func TestQuantizeIndependentOfSource(t *testing.T) {
	m := NewModel().Add(NewDense(4))
	if err := m.Build(rng.New(7), 6); err != nil {
		t.Fatal(err)
	}
	q, err := Quantize(m)
	if err != nil {
		t.Fatal(err)
	}
	x := quantTestInput(1, 6)
	before := q.Predict(x)
	for _, p := range m.Params() { // mutate the source after quantizing
		for i := range p.Data {
			p.Data[i] *= -3
		}
	}
	after := q.Predict(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("quantized engine must deep-copy the source model")
		}
	}
}

// A single linear Dense layer admits the same analytic bound the tensor
// fuzz harness asserts: with per-sample input scale sx and per-output
// weight scales ws[o], each output is within
// k·(sx/2·Wmax_o + ws_o/2·Xmax + sx·ws_o/4) of the float pre-activation.
func TestQuantizedDenseWithinAnalyticBound(t *testing.T) {
	const in, out = 37, 9
	m := NewModel().Add(NewDense(out))
	if err := m.Build(rng.New(8), in); err != nil {
		t.Fatal(err)
	}
	q, err := Quantize(m)
	if err != nil {
		t.Fatal(err)
	}
	d := m.layers[0].(*Dense)
	for trial := uint64(0); trial < 10; trial++ {
		x := quantTestInput(100+trial, in)
		want := m.Predict(x)
		got := q.Predict(x)
		xmax := 0.0
		for _, v := range x {
			if a := math.Abs(v); a > xmax {
				xmax = a
			}
		}
		sx := xmax / 127
		for o := 0; o < out; o++ {
			wmax := 0.0
			for _, v := range d.w.Data[o*in : (o+1)*in] {
				if a := math.Abs(v); a > wmax {
					wmax = a
				}
			}
			ws := wmax / 127
			bound := float64(in) * (sx/2*wmax + ws/2*xmax + sx*ws/4)
			slack := 1e-9 * (math.Abs(want[o]) + bound)
			if diff := math.Abs(got[o] - want[o]); diff > bound*(1+1e-9)+slack {
				t.Fatalf("trial %d output %d: |%g - %g| = %g exceeds bound %g",
					trial, o, got[o], want[o], diff, bound)
			}
		}
	}
}

// Per-sample activation scales make batching invisible: a sample's
// quantized prediction must not depend on its batch neighbours — the same
// contract the serve dispatcher relies on for the float path.
func TestQuantizedBatchInvariance(t *testing.T) {
	m := NewModel().
		Add(NewReshape(40, 1)).
		Add(NewConv1D(4, 5, 2)).
		Add(NewActivation(ReLU)).
		Add(NewFlatten()).
		Add(NewDense(6)).
		Add(NewSoftmax())
	if err := m.Build(rng.New(9), 40); err != nil {
		t.Fatal(err)
	}
	q, err := Quantize(m)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, 17)
	for i := range rows {
		rows[i] = quantTestInput(uint64(200+i), 40)
	}
	batched, err := q.PredictBatch(rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		solo := q.Predict(row)
		for j := range solo {
			if math.Float64bits(solo[j]) != math.Float64bits(batched[i][j]) {
				t.Fatalf("row %d element %d: solo %g vs batched %g (batching must be invisible)",
					i, j, solo[j], batched[i][j])
			}
		}
	}
}

// With no Dense/Conv1D in the stack every step is a float fallback, so
// the quantized engine must reproduce the float model bit for bit.
func TestQuantizedFallbackOnlyIsBitIdentical(t *testing.T) {
	m := NewModel().
		Add(NewReshape(10, 1)).
		Add(&LocallyConnected1D{Filters: 3, Kernel: 3, Stride: 1}).
		Add(NewActivation(Sigmoid)).
		Add(NewMaxPool1D(2, 2)).
		Add(NewFlatten())
	if err := m.Build(rng.New(10), 10); err != nil {
		t.Fatal(err)
	}
	q, err := Quantize(m)
	if err != nil {
		t.Fatal(err)
	}
	if q.QuantizedLayers() != 0 {
		t.Fatalf("QuantizedLayers = %d, want 0", q.QuantizedLayers())
	}
	x := quantTestInput(3, 10)
	want := m.Predict(x)
	got := q.Predict(x)
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("element %d: %g vs %g (fallback-only engine must match float path)",
				i, got[i], want[i])
		}
	}
}

func TestQuantizedLayerCountAndShapes(t *testing.T) {
	m := NewModel().
		Add(NewReshape(30, 1)).
		Add(NewConv1D(4, 5, 2)).
		Add(NewActivation(ReLU)).
		Add(NewFlatten()).
		Add(NewDense(5)).
		Add(NewSoftmax())
	if err := m.Build(rng.New(11), 30); err != nil {
		t.Fatal(err)
	}
	q, err := Quantize(m)
	if err != nil {
		t.Fatal(err)
	}
	if q.QuantizedLayers() != 2 {
		t.Fatalf("QuantizedLayers = %d, want 2 (conv + dense)", q.QuantizedLayers())
	}
	if q.InputLen() != m.InputLen() || q.OutputLen() != m.OutputLen() || q.NumParams() != m.NumParams() {
		t.Fatal("quantized engine must report the source model's shapes and parameter count")
	}
}

func TestQuantizedPredictBatchWidthPanics(t *testing.T) {
	m := NewModel().Add(NewDense(2))
	if err := m.Build(rng.New(12), 4); err != nil {
		t.Fatal(err)
	}
	q, err := Quantize(m)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input width (serve batcher depends on it)")
		}
	}()
	_, _ = q.PredictBatch([][]float64{{1, 2, 3}}, 1)
}

func TestQuantizedSerializeRoundTrip(t *testing.T) {
	m := NewModel().
		Add(NewReshape(24, 1)).
		Add(NewConv1D(3, 5, 2)).
		Add(NewActivation(ReLU)).
		Add(&LocallyConnected1D{Filters: 2, Kernel: 2, Stride: 1}). // pins FloatWeights
		Add(NewFlatten()).
		Add(NewDense(4)).
		Add(NewSoftmax())
	if err := m.Build(rng.New(13), 24); err != nil {
		t.Fatal(err)
	}
	q, err := Quantize(m)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadQuantized(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.QuantizedLayers() != q.QuantizedLayers() {
		t.Fatalf("loaded QuantizedLayers = %d, want %d", loaded.QuantizedLayers(), q.QuantizedLayers())
	}
	// Same codes, scales and fallback weights -> bit-identical inference.
	for trial := uint64(0); trial < 5; trial++ {
		x := quantTestInput(300+trial, 24)
		want := q.Predict(x)
		got := loaded.Predict(x)
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("trial %d element %d: loaded engine predicts %g, want %g",
					trial, i, got[i], want[i])
			}
		}
	}
	// Save of the loaded engine reproduces the bytes (stability).
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("Load+Save is not byte-stable for the quantized format")
	}
}

func TestLoadQuantizedRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":      "{",
		"wrong format": `{"format":"specml/model/v1"}`,
		"bad layer index": `{"format":"specml/qmodel/v1","inputShape":[2],` +
			`"layers":[{"type":"dense","out":1}],"quant":[{"layer":5,"kind":"dense"}]}`,
		"missing quant entry": `{"format":"specml/qmodel/v1","inputShape":[2],` +
			`"layers":[{"type":"dense","out":1}]}`,
		"size mismatch": `{"format":"specml/qmodel/v1","inputShape":[2],` +
			`"layers":[{"type":"dense","out":1}],` +
			`"quant":[{"layer":0,"kind":"dense","scales":[1],"weights":"AA==","bias":[0]}]}`,
	}
	for name, raw := range cases {
		if _, err := LoadQuantized(strings.NewReader(raw)); err == nil {
			t.Fatalf("%s: LoadQuantized accepted invalid input", name)
		}
	}
}
