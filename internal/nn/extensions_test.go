package nn

import (
	"bytes"
	"math"
	"testing"

	"specml/internal/rng"
)

func TestGradTimeDistributedDense(t *testing.T) {
	m := buildModel(t, 31, []int{4, 6},
		NewTimeDistributed(NewDense(3)), NewLSTM(4), NewDense(2))
	if r := numericalGradCheck(t, m, MSE, 32); r > gradTol {
		t.Fatalf("timedistributed gradient error %v", r)
	}
}

func TestGradTimeDistributedConv(t *testing.T) {
	// the paper's proposed hybrid: locally connected feature selector per
	// timestep feeding an LSTM
	m := buildModel(t, 33, []int{3, 18},
		NewTimeDistributed(NewLocallyConnected1D(2, 3, 3), 18, 1),
		NewLSTM(4), NewDense(2))
	if r := numericalGradCheck(t, m, MSE, 34); r > gradTol {
		t.Fatalf("hybrid gradient error %v", r)
	}
}

func TestTimeDistributedSharesWeights(t *testing.T) {
	m := buildModel(t, 35, []int{5, 4}, NewTimeDistributed(NewDense(2)))
	// exactly one weight matrix and one bias, regardless of 5 timesteps
	ps := m.Params()
	if len(ps) != 2 {
		t.Fatalf("%d parameter tensors, want 2 (shared)", len(ps))
	}
	if m.NumParams() != 4*2+2 {
		t.Fatalf("params = %d, want 10", m.NumParams())
	}
	// identical timestep inputs yield identical timestep outputs
	x := make([]float64, 20)
	for t2 := 0; t2 < 5; t2++ {
		copy(x[t2*4:(t2+1)*4], []float64{1, -2, 0.5, 3})
	}
	out := m.Forward(x)
	for t2 := 1; t2 < 5; t2++ {
		for j := 0; j < 2; j++ {
			if out[t2*2+j] != out[j] {
				t.Fatal("shared weights must give identical per-step outputs")
			}
		}
	}
}

func TestTimeDistributedBuildErrors(t *testing.T) {
	if _, err := NewTimeDistributed(nil).Build(rng.New(1), []int{3, 4}); err == nil {
		t.Fatal("nil inner must error")
	}
	if _, err := NewTimeDistributed(NewDense(2)).Build(rng.New(1), []int{7}); err == nil {
		t.Fatal("vector input must error")
	}
	if _, err := NewTimeDistributed(NewDense(2), 5, 2).Build(rng.New(1), []int{3, 4}); err == nil {
		t.Fatal("incompatible inner shape must error")
	}
}

func TestTimeDistributedSaveLoad(t *testing.T) {
	m := buildModel(t, 37, []int{3, 9},
		NewTimeDistributed(NewLocallyConnected1D(2, 3, 3), 9, 1),
		NewFlatten(), NewDense(2))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 27)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	a, b := m.Predict(x), m2.Predict(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("timedistributed round trip mismatch")
		}
	}
}

func TestTimeDistributedSpecWithoutInnerFails(t *testing.T) {
	if _, err := FromSpecs([]LayerSpec{{Type: "timedistributed"}}); err == nil {
		t.Fatal("spec without inner must error")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := newParam("w", 3)
	p.Grad[0], p.Grad[1], p.Grad[2] = 3, 4, 0 // norm 5
	clipGradNorm([]*Param{p}, 2.5)
	if math.Abs(p.Grad[0]-1.5) > 1e-12 || math.Abs(p.Grad[1]-2) > 1e-12 {
		t.Fatalf("clip wrong: %v", p.Grad)
	}
	// under the limit: untouched
	clipGradNorm([]*Param{p}, 10)
	if math.Abs(p.Grad[0]-1.5) > 1e-12 {
		t.Fatal("clip must not rescale small gradients")
	}
	// zero gradient: no NaN
	z := newParam("z", 2)
	clipGradNorm([]*Param{z}, 1)
	if z.Grad[0] != 0 {
		t.Fatal("zero grad changed")
	}
}

func TestFitWithClipAndSchedule(t *testing.T) {
	src := rng.New(41)
	var xs, ys [][]float64
	for i := 0; i < 80; i++ {
		x := src.Normal(0, 1)
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{2 * x})
	}
	m := buildModel(t, 7, []int{1}, NewDense(1))
	opt := NewAdam(0.05)
	var seenLRs []float64
	hist, err := m.Fit(xs, ys, FitConfig{
		Epochs: 25, BatchSize: 16, Loss: MSE, Optimizer: opt, Seed: 1,
		ClipNorm: 1.0,
		LRSchedule: func(epoch int) float64 {
			lr := 0.05 * math.Pow(0.95, float64(epoch))
			seenLRs = append(seenLRs, lr)
			return lr
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seenLRs) != 25 || seenLRs[24] >= seenLRs[0] {
		t.Fatalf("schedule not applied: %v", seenLRs)
	}
	if final := hist.TrainLoss[len(hist.TrainLoss)-1]; final > 0.05 {
		t.Fatalf("training with clip+schedule failed: %v", final)
	}
}

func TestFitScheduleRequiresSettableOptimizer(t *testing.T) {
	m := buildModel(t, 7, []int{1}, NewDense(1))
	type fixedOpt struct{ Optimizer }
	base, _ := OptimizerByName("sgd", 0.1)
	_, err := m.Fit([][]float64{{1}}, [][]float64{{1}}, FitConfig{
		Optimizer:  fixedOpt{base},
		LRSchedule: func(int) float64 { return 0.1 },
	})
	if err == nil {
		t.Fatal("wrapped optimizer without SetLR must be rejected")
	}
}

func TestPredictWithUncertainty(t *testing.T) {
	m := buildModel(t, 43, []int{8},
		NewDense(16), NewActivation(Tanh), NewDropout(0.4), NewDense(2))
	x := []float64{1, -1, 0.5, 2, 0, 1, -0.5, 0.25}
	mean, std, err := m.PredictWithUncertainty(x, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(mean) != 2 || len(std) != 2 {
		t.Fatalf("shapes wrong: %v %v", mean, std)
	}
	// dropout creates genuine spread
	if std[0] == 0 && std[1] == 0 {
		t.Fatal("MC dropout produced zero uncertainty")
	}
	// inference mode restored afterwards: deterministic predictions
	a, b := m.Predict(x), m.Predict(x)
	if a[0] != b[0] {
		t.Fatal("training mode leaked out of PredictWithUncertainty")
	}
	if _, _, err := m.PredictWithUncertainty(x, 1); err == nil {
		t.Fatal("n < 2 must error")
	}
}

func TestPredictWithUncertaintyNoDropoutIsDeterministic(t *testing.T) {
	m := buildModel(t, 44, []int{3}, NewDense(2))
	mean, std, err := m.PredictWithUncertainty([]float64{1, 2, 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Predict([]float64{1, 2, 3})
	for j := range mean {
		if math.Abs(mean[j]-p[j]) > 1e-12 || std[j] > 1e-12 {
			t.Fatal("deterministic model must have zero MC spread")
		}
	}
}

func TestFitRejectsNonFiniteData(t *testing.T) {
	m := buildModel(t, 61, []int{2}, NewDense(1))
	nan := math.NaN()
	if _, err := m.Fit([][]float64{{1, nan}}, [][]float64{{1}}, FitConfig{}); err == nil {
		t.Fatal("NaN feature must be rejected")
	}
	if _, err := m.Fit([][]float64{{1, 2}}, [][]float64{{math.Inf(1)}}, FitConfig{}); err == nil {
		t.Fatal("Inf label must be rejected")
	}
}

func TestSetLROnAllOptimizers(t *testing.T) {
	for _, name := range []string{"sgd", "momentum", "adam"} {
		opt, err := OptimizerByName(name, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		s, ok := opt.(LRSettable)
		if !ok {
			t.Fatalf("%s does not implement LRSettable", name)
		}
		s.SetLR(0.42)
	}
}
