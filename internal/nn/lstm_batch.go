package nn

import (
	"math"

	"specml/internal/tensor"
	"specml/internal/tensor/pool"
)

// Batched LSTM kernels. The per-sample Forward computes, for every timestep
// and gate row, one scalar chain: bias, then the x·Wx products in ascending
// feature order, then the h·Wh products in ascending unit order. The batched
// path reproduces that chain exactly with two GEMMs per element:
//
//  1. the input projection for ALL samples and timesteps at once — the gate
//     block is prefilled with the bias and one GemmNT over the time-major
//     [n*steps x features] input adds the x products (GemmNT's accumulator
//     starts from the incoming C value and adds k ascending);
//  2. per timestep, one GemmNT over the [n x units] previous hidden block
//     adds the recurrent products onto the stored partials.
//
// A float64 round-trips through memory exactly, so splitting the chain at
// the x/h boundary performs the identical sequence of rounded additions.
// The fused gate kernel (sigmoid x3 + tanh + cell/hidden update over the
// contiguous gate block) is elementwise and matches the per-sample gate loop
// term for term. All scratch is grow-only: steady-state batches allocate
// nothing.

// ForwardBatch implements BatchLayer: bit-identical to looping Forward over
// the n rows, per the single-accumulator ascending-k contract above.
func (l *LSTM) ForwardBatch(x []float64, n int) []float64 {
	u, fts := l.Units, l.features
	rows := n * l.steps
	l.bxT = pool.Grow(l.bxT, rows*fts)
	for s := 0; s < n; s++ {
		for t := 0; t < l.steps; t++ {
			copy(l.bxT[(t*n+s)*fts:(t*n+s+1)*fts], x[(s*l.steps+t)*fts:(s*l.steps+t+1)*fts])
		}
	}
	// Gate block seeded with the bias, exactly like the per-sample
	// accumulator; the hoisted GEMM then adds every x product in ascending
	// feature order for all [n x steps] rows at once.
	l.bz = pool.Grow(l.bz, rows*4*u)
	for r := 0; r < rows; r++ {
		copy(l.bz[r*4*u:(r+1)*4*u], l.b.Data)
	}
	tensor.GemmNT(l.bz, l.bxT, l.wx.Data, rows, 4*u, fts)
	l.bhs = pool.Grow(l.bhs, (l.steps+1)*n*u)
	l.bcs = pool.Grow(l.bcs, (l.steps+1)*n*u)
	zero(l.bhs[:n*u])
	zero(l.bcs[:n*u])
	for t := 0; t < l.steps; t++ {
		hPrev := l.bhs[t*n*u : (t+1)*n*u]
		cPrev := l.bcs[t*n*u : (t+1)*n*u]
		h := l.bhs[(t+1)*n*u : (t+2)*n*u]
		cNew := l.bcs[(t+1)*n*u : (t+2)*n*u]
		zt := l.bz[t*n*4*u : (t+1)*n*4*u]
		// Recurrent term for the whole batch: ascending-unit products append
		// to each element's stored bias+x partial.
		tensor.GemmNT(zt, hPrev, l.wh.Data, n, 4*u, u)
		lstmGateBlock(zt, h, cNew, cPrev, n, u)
	}
	return l.bhs[l.steps*n*u : (l.steps+1)*n*u]
}

// lstmGateBlock applies the fused gate nonlinearities in place over a
// [n x 4u] pre-activation block (sigmoid on i, f, o; tanh on g) and writes
// the new cell and hidden rows, mirroring the per-sample gate loop.
func lstmGateBlock(g, h, cNew, cPrev []float64, n, u int) {
	for s := 0; s < n; s++ {
		gr := g[s*4*u : (s+1)*4*u]
		hr := h[s*u : (s+1)*u]
		cn := cNew[s*u : (s+1)*u]
		cp := cPrev[s*u : (s+1)*u]
		for j := 0; j < u; j++ {
			i := sigmoid(gr[j])
			f := sigmoid(gr[u+j])
			gg := math.Tanh(gr[2*u+j])
			o := sigmoid(gr[3*u+j])
			gr[j], gr[u+j], gr[2*u+j], gr[3*u+j] = i, f, gg, o
			cn[j] = f*cp[j] + i*gg
			hr[j] = o * math.Tanh(cn[j])
		}
	}
}

// BackwardBatch implements BatchLayer (batched BPTT). The t-descending sweep
// computes the gate gradients elementwise and propagates dh/dx through
// Gemm, whose zero-skip matches the per-sample `if d == 0` skip. Parameter
// gradients must arrive in the order n sequential Backward calls produce —
// (sample ascending, timestep DESCENDING) — which no single batched GEMM
// over the t-major gate-gradient block emits, so they are accumulated in a
// deferred loop over the cached gate gradients in exactly that order.
func (l *LSTM) BackwardBatch(gradOut []float64, n int) []float64 {
	u, fts := l.Units, l.features
	l.bdh = pool.Grow(l.bdh, n*u)
	copy(l.bdh, gradOut[:n*u])
	l.bdc = pool.Grow(l.bdc, n*u)
	zero(l.bdc)
	l.bdg = pool.Grow(l.bdg, l.steps*n*4*u)
	l.bdx = pool.Grow(l.bdx, l.steps*n*fts)
	zero(l.bdx)
	for t := l.steps - 1; t >= 0; t-- {
		zt := l.bz[t*n*4*u : (t+1)*n*4*u] // post-activation gates from ForwardBatch
		cPrev := l.bcs[t*n*u : (t+1)*n*u]
		cNew := l.bcs[(t+1)*n*u : (t+2)*n*u]
		dg := l.bdg[t*n*4*u : (t+1)*n*4*u]
		for s := 0; s < n; s++ {
			gr := zt[s*4*u : (s+1)*4*u]
			dgr := dg[s*4*u : (s+1)*4*u]
			dh := l.bdh[s*u : (s+1)*u]
			dc := l.bdc[s*u : (s+1)*u]
			cp := cPrev[s*u : (s+1)*u]
			cn := cNew[s*u : (s+1)*u]
			for j := 0; j < u; j++ {
				i, f, gg, o := gr[j], gr[u+j], gr[2*u+j], gr[3*u+j]
				tc := math.Tanh(cn[j])
				do := dh[j] * tc
				dcTotal := dc[j] + dh[j]*o*(1-tc*tc)
				di := dcTotal * gg
				df := dcTotal * cp[j]
				dgg := dcTotal * i
				dgr[j] = di * i * (1 - i)
				dgr[u+j] = df * f * (1 - f)
				dgr[2*u+j] = dgg * (1 - gg*gg)
				dgr[3*u+j] = do * o * (1 - o)
				dc[j] = dcTotal * f
			}
		}
		zero(l.bdh[:n*u])
		tensor.Gemm(l.bdh[:n*u], dg, l.wh.Data, n, u, 4*u)
		tensor.Gemm(l.bdx[t*n*fts:(t+1)*n*fts], dg, l.wx.Data, n, fts, 4*u)
	}
	for s := 0; s < n; s++ {
		for t := l.steps - 1; t >= 0; t-- {
			dgr := l.bdg[(t*n+s)*4*u : (t*n+s+1)*4*u]
			xt := l.bxT[(t*n+s)*fts : (t*n+s+1)*fts]
			hPrev := l.bhs[t*n*u+s*u : t*n*u+(s+1)*u]
			for r := 0; r < 4*u; r++ {
				d := dgr[r]
				if d == 0 {
					continue
				}
				l.b.Grad[r] += d
				gwxRow := l.wx.Grad[r*fts : (r+1)*fts]
				for c, v := range xt {
					gwxRow[c] += d * v
				}
				gwhRow := l.wh.Grad[r*u : (r+1)*u]
				for c, v := range hPrev {
					gwhRow[c] += d * v
				}
			}
		}
	}
	l.bgin = pool.Grow(l.bgin, n*l.steps*fts)
	for s := 0; s < n; s++ {
		for t := 0; t < l.steps; t++ {
			copy(l.bgin[(s*l.steps+t)*fts:(s*l.steps+t+1)*fts], l.bdx[(t*n+s)*fts:(t*n+s+1)*fts])
		}
	}
	return l.bgin
}
