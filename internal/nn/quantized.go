package nn

import (
	"fmt"

	"specml/internal/tensor"
	"specml/internal/tensor/pool"
)

// QuantizedModel is an int8 inference engine derived from a trained Model.
//
// Dense and Conv1D layers execute as packed int8 GEMMs with int32
// accumulation: weights carry one symmetric scale per output channel
// (scale = maxAbs(row)/127, no zero point), activations are quantized
// dynamically with one symmetric scale per SAMPLE per layer, and outputs
// dequantize back to float64 before the bias add, so activations,
// softmax, pooling and every other layer run unchanged in float. Per-
// sample activation scales keep the serve contract intact: a sample's
// result does not depend on what else is in the batch. Layers without an
// int8 kernel (LSTM, TimeDistributed, LocallyConnected1D, ...) fall back
// to their float path inside the same forward pass.
//
// The accuracy contract is a bounded delta versus the float model —
// ≥99% argmax agreement for classifiers, ≤1% MAE drift for regressors on
// the seeded corpora (quantize_accuracy_test.go) — NOT bit-exactness:
// int8 codes discard mantissa bits by design. Within the quantized path
// itself, scalar and AVX2 dispatch ARE bit-identical (integer
// accumulation is exact; see internal/tensor/int8.go).
//
// A QuantizedModel is inference-only and NOT safe for concurrent use
// (layer scratch is shared across calls, like Model.Forward); the serve
// batcher serializes calls per model entry, which is the intended use.
type QuantizedModel struct {
	m      *Model // independent clone: float fallback layers + architecture
	steps  []qStep
	nQuant int
}

// qStep is one layer of the quantized forward pass over a row-major
// [n x features] block.
type qStep interface {
	forward(x []float64, n int) []float64
}

// Quantize builds the int8 engine from a trained model. The model must be
// built; it is deep-copied, so later training of m does not affect the
// quantized engine (re-quantize after retraining).
func Quantize(m *Model) (*QuantizedModel, error) {
	if !m.built {
		return nil, fmt.Errorf("nn: Quantize before Build")
	}
	clone, err := m.Clone()
	if err != nil {
		return nil, err
	}
	// Inference-only: training layers off, snapshot-free forwards on, for
	// the lifetime of the engine.
	clone.SetTraining(false)
	clone.setInference(true)
	q := &QuantizedModel{m: clone}
	for _, l := range clone.layers {
		switch v := l.(type) {
		case *Dense:
			q.steps = append(q.steps, newQDense(v))
			q.nQuant++
		case *Conv1D:
			q.steps = append(q.steps, newQConv1D(v))
			q.nQuant++
		default:
			q.steps = append(q.steps, &qFloat{l: l})
		}
	}
	return q, nil
}

// InputLen returns the flat input size.
func (q *QuantizedModel) InputLen() int { return q.m.InputLen() }

// OutputLen returns the flat output size.
func (q *QuantizedModel) OutputLen() int { return q.m.OutputLen() }

// InputShape returns the built input shape.
func (q *QuantizedModel) InputShape() []int { return q.m.InputShape() }

// OutputShape returns the built output shape.
func (q *QuantizedModel) OutputShape() []int { return q.m.OutputShape() }

// NumParams returns the trainable parameter count of the source model.
func (q *QuantizedModel) NumParams() int { return q.m.NumParams() }

// QuantizedLayers returns how many layers execute in int8 (the rest run
// their float fallback).
func (q *QuantizedModel) QuantizedLayers() int { return q.nQuant }

// forwardBatch runs n row-major samples through the quantized stack. The
// returned [n x outLen] block is owned by the engine and overwritten by
// the next call.
func (q *QuantizedModel) forwardBatch(x []float64, n int) []float64 {
	for _, st := range q.steps {
		x = st.forward(x, n)
	}
	return x
}

// Predict runs one sample and returns a fresh output slice.
func (q *QuantizedModel) Predict(x []float64) []float64 {
	if len(x) != q.InputLen() {
		panic(fmt.Sprintf("nn: input length %d, model expects %d", len(x), q.InputLen()))
	}
	out := q.forwardBatch(x, 1)
	res := make([]float64, len(out))
	copy(res, out)
	return res
}

// PredictBatch mirrors Model.PredictBatch for the quantized engine: all
// rows are packed into one block and forwarded through the int8 kernels,
// returning one fresh prediction per row. The workers argument is
// accepted for call-site compatibility and ignored — the engine's shared
// layer scratch makes it single-goroutine; per-sample activation scales
// mean the results are identical for any batch split regardless.
func (q *QuantizedModel) PredictBatch(x [][]float64, workers int) ([][]float64, error) {
	_ = workers
	out := make([][]float64, len(x))
	if len(x) == 0 {
		return out, nil
	}
	q.m.checkBatchInputs(x)
	inLen, outLen := q.InputLen(), q.OutputLen()
	xb := batchScratch.Get(len(x) * inLen)
	defer batchScratch.Put(xb)
	for i, row := range x {
		copy(xb[i*inLen:(i+1)*inLen], row)
	}
	yb := q.forwardBatch(xb, len(x))
	for s := range x {
		res := make([]float64, outLen)
		copy(res, yb[s*outLen:(s+1)*outLen])
		out[s] = res
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Quantized Dense

// qDense executes y = dequant(qx · qwᵀ) + b: per-sample input scales,
// per-output-channel weight scales, contraction padded to the AVX2 panel.
type qDense struct {
	in, out, kp int
	w           []int8    // [out][kp], rows zero-padded past in
	ws          []float64 // per-output-channel weight scales
	b           []float64

	qx  []int8 // [n][kp] quantized activations
	xs  []float64
	acc []int32
	y   []float64
}

func newQDense(d *Dense) *qDense {
	q := &qDense{
		in:  d.in,
		out: d.Out,
		kp:  tensor.KPad16(d.in),
		b:   append([]float64(nil), d.b.Data...),
	}
	q.w = make([]int8, q.out*q.kp)
	q.ws = make([]float64, q.out)
	for o := 0; o < q.out; o++ {
		q.ws[o] = tensor.QuantizeRowInt8(q.w[o*q.kp:(o+1)*q.kp], d.w.Data[o*q.in:(o+1)*q.in])
	}
	return q
}

func (q *qDense) forward(x []float64, n int) []float64 {
	q.qx = pool.Grow8(q.qx, n*q.kp)
	q.xs = pool.Grow(q.xs, n)
	q.acc = pool.Grow32(q.acc, n*q.out)
	q.y = pool.Grow(q.y, n*q.out)
	for s := 0; s < n; s++ {
		q.xs[s] = tensor.QuantizeRowInt8(q.qx[s*q.kp:(s+1)*q.kp], x[s*q.in:(s+1)*q.in])
	}
	for i := range q.acc {
		q.acc[i] = 0
	}
	tensor.GemmInt8NT(q.acc, q.qx, q.w, n, q.out, q.kp)
	for s := 0; s < n; s++ {
		sx := q.xs[s]
		arow := q.acc[s*q.out : (s+1)*q.out]
		yrow := q.y[s*q.out : (s+1)*q.out]
		for o, a := range arow {
			yrow[o] = float64(a)*(sx*q.ws[o]) + q.b[o]
		}
	}
	return q.y
}

// ---------------------------------------------------------------------------
// Quantized Conv1D

// qConv1D lowers the convolution through an int8 im2col: the whole input
// sample is quantized once (one scale per sample), windows are gathered
// into panel-padded rows, and all positions of all samples collapse into
// a single int8 GEMM against the per-filter weight rows.
type qConv1D struct {
	inLen, inCh, outLen      int
	kernel, stride, filters  int
	fanIn, kp, inSize, oSize int
	w                        []int8 // [filters][kp]
	ws                       []float64
	b                        []float64

	qx  []int8 // [n][inSize] quantized input codes
	xs  []float64
	col []int8 // [n*outLen][kp] lowered windows
	acc []int32
	y   []float64
}

func newQConv1D(c *Conv1D) *qConv1D {
	q := &qConv1D{
		inLen:   c.inLen,
		inCh:    c.inCh,
		outLen:  c.outLen,
		kernel:  c.Kernel,
		stride:  c.Stride,
		filters: c.Filters,
		fanIn:   c.Kernel * c.inCh,
		inSize:  c.inLen * c.inCh,
		b:       append([]float64(nil), c.b.Data...),
	}
	q.kp = tensor.KPad16(q.fanIn)
	q.oSize = q.outLen * q.filters
	q.w = make([]int8, q.filters*q.kp)
	q.ws = make([]float64, q.filters)
	for f := 0; f < q.filters; f++ {
		q.ws[f] = tensor.QuantizeRowInt8(q.w[f*q.kp:(f+1)*q.kp], c.w.Data[f*q.fanIn:(f+1)*q.fanIn])
	}
	return q
}

func (q *qConv1D) forward(x []float64, n int) []float64 {
	rows := n * q.outLen
	q.qx = pool.Grow8(q.qx, n*q.inSize)
	q.xs = pool.Grow(q.xs, n)
	q.col = pool.Grow8(q.col, rows*q.kp)
	q.acc = pool.Grow32(q.acc, rows*q.filters)
	q.y = pool.Grow(q.y, rows*q.filters)
	for s := 0; s < n; s++ {
		qrow := q.qx[s*q.inSize : (s+1)*q.inSize]
		q.xs[s] = tensor.QuantizeRowInt8(qrow, x[s*q.inSize:(s+1)*q.inSize])
		tensor.Im2ColInt8(q.col[s*q.outLen*q.kp:(s+1)*q.outLen*q.kp], qrow,
			q.inLen, q.inCh, q.kernel, q.stride, q.outLen, q.kp)
	}
	for i := range q.acc {
		q.acc[i] = 0
	}
	tensor.GemmInt8NT(q.acc, q.col, q.w, rows, q.filters, q.kp)
	for r := 0; r < rows; r++ {
		sx := q.xs[r/q.outLen]
		arow := q.acc[r*q.filters : (r+1)*q.filters]
		yrow := q.y[r*q.filters : (r+1)*q.filters]
		for f, a := range arow {
			yrow[f] = float64(a)*(sx*q.ws[f]) + q.b[f]
		}
	}
	return q.y
}

// ---------------------------------------------------------------------------
// Float fallback

// qFloat runs a layer's float path inside the quantized forward: the
// batched kernel when the layer has one, otherwise the per-sample loop
// (mirroring Model.forwardBatch's fallback).
type qFloat struct {
	l   Layer
	out []float64
}

func (q *qFloat) forward(x []float64, n int) []float64 {
	if bl, ok := q.l.(BatchLayer); ok {
		return bl.ForwardBatch(x, n)
	}
	in := len(x) / n
	var out []float64
	for s := 0; s < n; s++ {
		o := q.l.Forward(x[s*in : (s+1)*in])
		if out == nil {
			out = pool.Grow(q.out, n*len(o))
			q.out = out
		}
		copy(out[s*len(o):(s+1)*len(o)], o)
	}
	return out
}
