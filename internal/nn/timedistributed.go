package nn

import (
	"fmt"

	"specml/internal/rng"
	"specml/internal/tensor/pool"
)

// TimeDistributed applies an inner layer independently to every timestep
// of a [timesteps, features] input, sharing the inner layer's weights
// across timesteps (Keras TimeDistributed semantics). The output is
// [timesteps, innerOutputLen].
//
// This enables the hybrid architecture the paper proposes as future work:
// "combining a locally connected convolutional layer as feature selector
// and input for an LSTM layer".
type TimeDistributed struct {
	Inner Layer
	// InnerShape optionally reshapes each timestep's feature vector before
	// the inner layer (e.g. [1700, 1] to feed a convolution); defaults to
	// the flat [features].
	InnerShape []int

	steps, features, innerOut int
	xs                        []float64 // cached input sequence
	y, gin                    []float64
	infer                     bool

	// batched per-sample fallback scratch (used only when Inner has no
	// batched kernel; see ForwardBatch)
	bbx, bfy, bfgin []float64
}

// NewTimeDistributed wraps inner.
func NewTimeDistributed(inner Layer, innerShape ...int) *TimeDistributed {
	return &TimeDistributed{Inner: inner, InnerShape: innerShape}
}

// Kind implements Layer.
func (l *TimeDistributed) Kind() string { return "timedistributed" }

// Build implements Layer.
func (l *TimeDistributed) Build(src *rng.Source, inputShape []int) ([]int, error) {
	if l.Inner == nil {
		return nil, fmt.Errorf("nn: timedistributed without inner layer")
	}
	if len(inputShape) != 2 || inputShape[0] <= 0 || inputShape[1] <= 0 {
		return nil, fmt.Errorf("nn: timedistributed needs [timesteps, features], got %v", inputShape)
	}
	l.steps, l.features = inputShape[0], inputShape[1]
	innerIn := l.InnerShape
	if len(innerIn) == 0 {
		innerIn = []int{l.features}
	}
	if shapeLen(innerIn) != l.features {
		return nil, fmt.Errorf("nn: inner shape %v does not hold %d features", innerIn, l.features)
	}
	out, err := l.Inner.Build(src, innerIn)
	if err != nil {
		return nil, fmt.Errorf("nn: timedistributed inner: %w", err)
	}
	l.innerOut = shapeLen(out)
	l.xs = make([]float64, l.steps*l.features)
	l.y = make([]float64, l.steps*l.innerOut)
	l.gin = make([]float64, l.steps*l.features)
	return []int{l.steps, l.innerOut}, nil
}

// SetInference propagates inference mode to the inner layer and skips the
// sequence snapshot that Backward's re-forward would need.
func (l *TimeDistributed) SetInference(v bool) {
	l.infer = v
	if ia, ok := l.Inner.(inferenceAware); ok {
		ia.SetInference(v)
	}
}

// Forward implements Layer.
func (l *TimeDistributed) Forward(x []float64) []float64 {
	if !l.infer {
		copy(l.xs, x)
	}
	for t := 0; t < l.steps; t++ {
		out := l.Inner.Forward(x[t*l.features : (t+1)*l.features])
		copy(l.y[t*l.innerOut:(t+1)*l.innerOut], out)
	}
	return l.y
}

// Backward implements Layer. The inner layer caches only its most recent
// forward pass, so each timestep's forward is recomputed immediately
// before its backward; parameter gradients accumulate across timesteps
// because the weights are shared.
func (l *TimeDistributed) Backward(gradOut []float64) []float64 {
	for t := 0; t < l.steps; t++ {
		xt := l.xs[t*l.features : (t+1)*l.features]
		l.Inner.Forward(xt) // restore the inner cache for this timestep
		gin := l.Inner.Backward(gradOut[t*l.innerOut : (t+1)*l.innerOut])
		copy(l.gin[t*l.features:(t+1)*l.features], gin)
	}
	return l.gin
}

// ForwardBatch implements BatchLayer. A sample-major [n x steps*features]
// block is, read row-major, already the [n*steps x features] row block the
// inner layer's batched kernel wants (row k = s*steps + t), so when Inner
// implements BatchLayer the whole sequence batch is one zero-copy inner
// call. Row order (sample ascending, timestep ascending) is exactly the
// order sequential per-sample Forwards visit the timesteps, so the
// BatchLayer bit-identity contract carries through unchanged. When Inner
// has no batched kernel, a per-sample loop inside the layer preserves the
// same semantics.
func (l *TimeDistributed) ForwardBatch(x []float64, n int) []float64 {
	if ib, ok := l.Inner.(BatchLayer); ok {
		return ib.ForwardBatch(x, n*l.steps)
	}
	l.bbx = x // kept for BackwardBatch's re-forward, like the per-sample xs
	l.bfy = pool.Grow(l.bfy, n*l.steps*l.innerOut)
	for r := 0; r < n*l.steps; r++ {
		out := l.Inner.Forward(x[r*l.features : (r+1)*l.features])
		copy(l.bfy[r*l.innerOut:(r+1)*l.innerOut], out)
	}
	return l.bfy
}

// BackwardBatch implements BatchLayer. The inner batched backward
// accumulates the shared parameters' gradients in ascending row order —
// (sample asc, timestep asc) — which matches n sequential TimeDistributed
// Backwards (each walks its timesteps ascending).
func (l *TimeDistributed) BackwardBatch(gradOut []float64, n int) []float64 {
	if ib, ok := l.Inner.(BatchLayer); ok {
		return ib.BackwardBatch(gradOut, n*l.steps)
	}
	l.bfgin = pool.Grow(l.bfgin, n*l.steps*l.features)
	for r := 0; r < n*l.steps; r++ {
		l.Inner.Forward(l.bbx[r*l.features : (r+1)*l.features]) // restore inner cache
		gin := l.Inner.Backward(gradOut[r*l.innerOut : (r+1)*l.innerOut])
		copy(l.bfgin[r*l.features:(r+1)*l.features], gin)
	}
	return l.bfgin
}

// batchCapable implements conditionalBatch: the wrapper runs truly batched
// only when the inner layer does.
func (l *TimeDistributed) batchCapable() bool {
	if cb, ok := l.Inner.(conditionalBatch); ok {
		return cb.batchCapable()
	}
	_, ok := l.Inner.(BatchLayer)
	return ok
}

// Params implements Layer (the shared inner parameters).
func (l *TimeDistributed) Params() []*Param { return l.Inner.Params() }

// Spec implements Layer.
func (l *TimeDistributed) Spec() LayerSpec {
	inner := l.Inner.Spec()
	return LayerSpec{
		Type:        "timedistributed",
		Inner:       &inner,
		TargetShape: append([]int(nil), l.InnerShape...),
	}
}
