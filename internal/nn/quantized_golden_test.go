package nn

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"specml/internal/rng"
)

// goldenQuantModel mixes quantized layers (Conv1D, Dense) with a float
// fallback that owns parameters (LocallyConnected1D), so the golden file
// pins the int8 code block, the per-channel scales AND the FloatWeights
// section of the qmodel format.
func goldenQuantModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel()
	m.Add(&Conv1D{Filters: 2, Kernel: 3, Stride: 2})
	act, err := ActivationByName("selu")
	if err != nil {
		t.Fatal(err)
	}
	m.Add(&ActivationLayer{Act: act})
	m.Add(&LocallyConnected1D{Filters: 3, Kernel: 2, Stride: 1})
	m.Add(&Flatten{})
	m.Add(&Dense{Out: 4})
	m.Add(&SoftmaxLayer{})
	if err := m.Build(rng.New(20260805), 12, 1); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestQuantizedSaveGolden pins the exact bytes of the quantized model
// format: deployed int8 engines depend on this layout, so any drift must
// be a deliberate, versioned format change.
func TestQuantizedSaveGolden(t *testing.T) {
	q, err := Quantize(goldenQuantModel(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "qmodel_v1.golden.json", buf.Bytes())
}

// TestQuantizedGoldenRoundTrip loads the committed artifact and re-saves
// it: the bytes must survive unchanged, and the loaded engine must
// predict bit-identically to one quantized fresh from the golden model
// (same codes + same scales -> exact int32 accumulation -> same floats).
func TestQuantizedGoldenRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "qmodel_v1.golden.json"))
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	loaded, err := LoadQuantized(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := loaded.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("LoadQuantized+Save is not byte-stable on the golden engine")
	}
	ref, err := Quantize(goldenQuantModel(t))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, ref.InputLen())
	for i := range x {
		x[i] = float64(i%5)*0.2 - 0.3
	}
	want, got := ref.Predict(x), loaded.Predict(x)
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("golden engine predicts differently after round trip: %v vs %v", got, want)
		}
	}
}
