package nn

import (
	"encoding/json"
	"fmt"
	"io"

	"specml/internal/rng"
)

// LayerSpec is a serializable, weight-free description of one layer. It is
// the unit of the toolflow's declarative topology definitions ("the
// definition of one or more network topologies ... without modifying the
// source code").
type LayerSpec struct {
	Type        string  `json:"type"`
	Out         int     `json:"out,omitempty"`         // dense
	Filters     int     `json:"filters,omitempty"`     // conv / locally connected
	Kernel      int     `json:"kernel,omitempty"`      // conv / pooling
	Stride      int     `json:"stride,omitempty"`      // conv / pooling
	Units       int     `json:"units,omitempty"`       // lstm
	Activation  string  `json:"activation,omitempty"`  // activation layer
	TargetShape []int   `json:"targetShape,omitempty"` // reshape
	Rate        float64 `json:"rate,omitempty"`        // dropout
	Init        string  `json:"init,omitempty"`        // weight initializer
	// Inner describes the wrapped layer of a timedistributed layer; its
	// per-step input shape is TargetShape (empty = flat features).
	Inner *LayerSpec `json:"inner,omitempty"`
}

// LayerFromSpec constructs an unbuilt layer from its spec.
func LayerFromSpec(s LayerSpec) (Layer, error) {
	switch s.Type {
	case "dense":
		return &Dense{Out: s.Out, Init: s.Init}, nil
	case "conv1d":
		return &Conv1D{Filters: s.Filters, Kernel: s.Kernel, Stride: s.Stride, Init: s.Init}, nil
	case "locallyconnected1d":
		return &LocallyConnected1D{Filters: s.Filters, Kernel: s.Kernel, Stride: s.Stride, Init: s.Init}, nil
	case "lstm":
		return &LSTM{Units: s.Units}, nil
	case "activation":
		act, err := ActivationByName(s.Activation)
		if err != nil {
			return nil, err
		}
		return &ActivationLayer{Act: act}, nil
	case "softmax":
		return &SoftmaxLayer{}, nil
	case "flatten":
		return &Flatten{}, nil
	case "reshape":
		return &Reshape{TargetShape: append([]int(nil), s.TargetShape...)}, nil
	case "dropout":
		return &Dropout{Rate: s.Rate}, nil
	case "maxpool1d":
		return NewMaxPool1D(s.Kernel, s.Stride), nil
	case "avgpool1d":
		return NewAvgPool1D(s.Kernel, s.Stride), nil
	case "timedistributed":
		if s.Inner == nil {
			return nil, fmt.Errorf("nn: timedistributed spec without inner layer")
		}
		inner, err := LayerFromSpec(*s.Inner)
		if err != nil {
			return nil, err
		}
		return NewTimeDistributed(inner, s.TargetShape...), nil
	default:
		return nil, fmt.Errorf("nn: unknown layer type %q", s.Type)
	}
}

// FromSpecs builds a model from layer specs (unbuilt; call Build).
func FromSpecs(specs []LayerSpec) (*Model, error) {
	m := NewModel()
	for i, s := range specs {
		l, err := LayerFromSpec(s)
		if err != nil {
			return nil, fmt.Errorf("nn: spec %d: %w", i, err)
		}
		m.Add(l)
	}
	return m, nil
}

// Specs returns the layer specs of the model.
func (m *Model) Specs() []LayerSpec {
	specs := make([]LayerSpec, len(m.layers))
	for i, l := range m.layers {
		specs[i] = l.Spec()
	}
	return specs
}

// savedModel is the on-disk JSON layout of a trained model.
type savedModel struct {
	Format     string      `json:"format"`
	InputShape []int       `json:"inputShape"`
	Layers     []LayerSpec `json:"layers"`
	Weights    [][]float64 `json:"weights"`
}

const modelFormat = "specml/model/v1"

// Save writes the built model (architecture and weights) as JSON.
func (m *Model) Save(w io.Writer) error {
	if !m.built {
		return fmt.Errorf("nn: Save before Build")
	}
	sm := savedModel{
		Format:     modelFormat,
		InputShape: m.inputShape,
		Layers:     m.Specs(),
	}
	for _, p := range m.Params() {
		sm.Weights = append(sm.Weights, p.Data)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&sm)
}

// Load reads a model saved with Save and returns it built and ready for
// inference or further training.
func Load(r io.Reader) (*Model, error) {
	var sm savedModel
	if err := json.NewDecoder(r).Decode(&sm); err != nil {
		return nil, fmt.Errorf("nn: decoding model: %w", err)
	}
	if sm.Format != modelFormat {
		return nil, fmt.Errorf("nn: unsupported model format %q", sm.Format)
	}
	m, err := FromSpecs(sm.Layers)
	if err != nil {
		return nil, err
	}
	if err := m.Build(rng.New(0), sm.InputShape...); err != nil {
		return nil, err
	}
	params := m.Params()
	if len(params) != len(sm.Weights) {
		return nil, fmt.Errorf("nn: saved model has %d weight tensors, architecture needs %d",
			len(sm.Weights), len(params))
	}
	for i, p := range params {
		if len(p.Data) != len(sm.Weights[i]) {
			return nil, fmt.Errorf("nn: weight tensor %d has %d values, want %d",
				i, len(sm.Weights[i]), len(p.Data))
		}
		copy(p.Data, sm.Weights[i])
	}
	return m, nil
}
