package nn

import (
	"math"
	"testing"

	"specml/internal/rng"
)

// numericalGradCheck compares the analytic gradients of a built model
// (parameters AND inputs) against central finite differences on a random
// sample, returning the maximum relative error.
func numericalGradCheck(t *testing.T, m *Model, loss Loss, seed uint64) float64 {
	t.Helper()
	src := rng.New(seed)
	x := make([]float64, m.InputLen())
	y := make([]float64, m.OutputLen())
	for i := range x {
		x[i] = src.Normal(0, 1)
	}
	for i := range y {
		y[i] = src.Float64()
	}
	// normalize targets for softmax-headed models; harmless otherwise
	sum := 0.0
	for _, v := range y {
		sum += v
	}
	for i := range y {
		y[i] /= sum
	}

	m.SetTraining(false)
	m.ZeroGrad()
	out := m.Forward(x)
	grad := make([]float64, len(out))
	loss.Grad(out, y, grad)
	gin := m.Backward(grad)
	analyticIn := make([]float64, len(gin))
	copy(analyticIn, gin)

	const eps = 1e-5
	maxRel := 0.0
	rel := func(analytic, numeric float64) float64 {
		den := math.Max(math.Abs(analytic)+math.Abs(numeric), 1e-4)
		return math.Abs(analytic-numeric) / den
	}
	evalLoss := func() float64 {
		return loss.Loss(m.Forward(x), y)
	}

	// parameter gradients
	for _, p := range m.Params() {
		stride := 1
		if len(p.Data) > 400 {
			stride = len(p.Data) / 200 // sample large tensors
		}
		for i := 0; i < len(p.Data); i += stride {
			orig := p.Data[i]
			p.Data[i] = orig + eps
			lp := evalLoss()
			p.Data[i] = orig - eps
			lm := evalLoss()
			p.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			if r := rel(p.Grad[i], numeric); r > maxRel {
				maxRel = r
			}
		}
	}
	// input gradients
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		lp := evalLoss()
		x[i] = orig - eps
		lm := evalLoss()
		x[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if r := rel(analyticIn[i], numeric); r > maxRel {
			maxRel = r
		}
	}
	return maxRel
}

func buildModel(t *testing.T, seed uint64, inputShape []int, layers ...Layer) *Model {
	t.Helper()
	m := NewModel()
	for _, l := range layers {
		m.Add(l)
	}
	if err := m.Build(rng.New(seed), inputShape...); err != nil {
		t.Fatal(err)
	}
	return m
}

const gradTol = 2e-4

func TestGradDense(t *testing.T) {
	m := buildModel(t, 1, []int{7}, NewDense(5), NewDense(3))
	if r := numericalGradCheck(t, m, MSE, 2); r > gradTol {
		t.Fatalf("dense gradient error %v", r)
	}
}

func TestGradDenseWithActivations(t *testing.T) {
	for _, act := range []Activation{ReLU, SELU, Sigmoid, Tanh, Linear} {
		m := buildModel(t, 3, []int{6},
			NewDense(8), NewActivation(act), NewDense(4))
		if r := numericalGradCheck(t, m, MSE, 4); r > gradTol {
			t.Fatalf("%s gradient error %v", act.Name(), r)
		}
	}
}

func TestGradSoftmaxHead(t *testing.T) {
	m := buildModel(t, 5, []int{6}, NewDense(4), NewSoftmax())
	if r := numericalGradCheck(t, m, MSE, 6); r > gradTol {
		t.Fatalf("softmax gradient error %v", r)
	}
}

func TestGradSoftmaxWithMAE(t *testing.T) {
	// MAE is only subdifferentiable; the check still passes away from kinks
	// for almost all random draws with the loose relative tolerance.
	m := buildModel(t, 7, []int{5}, NewDense(4), NewSoftmax())
	if r := numericalGradCheck(t, m, MSE, 8); r > gradTol {
		t.Fatalf("softmax+MAE gradient error %v", r)
	}
}

func TestGradConv1D(t *testing.T) {
	m := buildModel(t, 9, []int{20, 2},
		NewConv1D(3, 5, 2), NewActivation(Tanh), NewFlatten(), NewDense(3))
	if r := numericalGradCheck(t, m, MSE, 10); r > gradTol {
		t.Fatalf("conv1d gradient error %v", r)
	}
}

func TestGradConv1DStacked(t *testing.T) {
	// Miniature version of the paper's Table-1 stack.
	m := buildModel(t, 11, []int{40},
		NewReshape(40, 1),
		NewConv1D(5, 7, 1), NewActivation(SELU),
		NewConv1D(5, 7, 3), NewActivation(SELU),
		NewConv1D(4, 5, 2), NewSoftmax(),
		NewFlatten(),
		NewDense(4), NewSoftmax())
	if r := numericalGradCheck(t, m, MSE, 12); r > gradTol {
		t.Fatalf("stacked conv gradient error %v", r)
	}
}

func TestGradLocallyConnected1D(t *testing.T) {
	m := buildModel(t, 13, []int{27, 1},
		NewLocallyConnected1D(4, 9, 9), NewFlatten(), NewDense(4))
	if r := numericalGradCheck(t, m, MSE, 14); r > gradTol {
		t.Fatalf("locally connected gradient error %v", r)
	}
}

func TestGradLSTM(t *testing.T) {
	m := buildModel(t, 15, []int{4, 6}, NewLSTM(5), NewDense(3))
	if r := numericalGradCheck(t, m, MSE, 16); r > gradTol {
		t.Fatalf("lstm gradient error %v", r)
	}
}

func TestGradLSTMLongerSequence(t *testing.T) {
	m := buildModel(t, 17, []int{9, 3}, NewLSTM(4), NewDense(2))
	if r := numericalGradCheck(t, m, MSE, 18); r > gradTol {
		t.Fatalf("lstm(T=9) gradient error %v", r)
	}
}

func TestGradPooling(t *testing.T) {
	m := buildModel(t, 19, []int{16, 2},
		NewConv1D(3, 3, 1), NewActivation(Tanh),
		NewMaxPool1D(2, 0), NewFlatten(), NewDense(3))
	if r := numericalGradCheck(t, m, MSE, 20); r > gradTol {
		t.Fatalf("maxpool gradient error %v", r)
	}
	m2 := buildModel(t, 21, []int{16, 2},
		NewConv1D(3, 3, 1), NewActivation(Tanh),
		NewAvgPool1D(2, 0), NewFlatten(), NewDense(3))
	if r := numericalGradCheck(t, m2, MSE, 22); r > gradTol {
		t.Fatalf("avgpool gradient error %v", r)
	}
}

func TestGradHuber(t *testing.T) {
	m := buildModel(t, 23, []int{5}, NewDense(4), NewActivation(Tanh), NewDense(2))
	if r := numericalGradCheck(t, m, HuberLoss{Delta: 0.5}, 24); r > gradTol {
		t.Fatalf("huber gradient error %v", r)
	}
}
