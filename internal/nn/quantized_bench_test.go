package nn

import "testing"

// Int8 counterparts of BenchmarkBatchForwardDense32/Conv32: same models,
// same batch-32 block, quantized engine. BENCH_kernels.json records the
// speedup_vs_float of each pair under the benchcmp kernels gate.

func BenchmarkQuantForwardDense32(b *testing.B) {
	m := benchDenseModel(b)
	q, err := Quantize(m)
	if err != nil {
		b.Fatal(err)
	}
	xb := benchBlock(32, m.InputLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.forwardBatch(xb, 32)
	}
}

func BenchmarkQuantForwardConv32(b *testing.B) {
	m := benchConvModel(b)
	q, err := Quantize(m)
	if err != nil {
		b.Fatal(err)
	}
	xb := benchBlock(32, m.InputLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.forwardBatch(xb, 32)
	}
}
