package nn

import (
	"fmt"
	"math"

	"specml/internal/rng"
)

// LSTM is a standard long short-term memory layer processing a
// [timesteps, features] sequence and emitting the final hidden state (the
// Keras return_sequences=false behaviour the paper's time-series model
// uses). Gate order in the packed weight matrices is i, f, g, o.
//
// Parameter count is 4*Units*(features+Units+1), which for the paper's
// configuration (32 units, 1700-point spectra, plus the 32->4 dense head)
// totals exactly 221 956 trainable parameters.
type LSTM struct {
	Units int

	steps, features int
	wx              *Param // [4*Units][features]
	wh              *Param // [4*Units][Units]
	b               *Param // [4*Units]

	// caches for backpropagation through time
	xs             []float64   // copy of the input sequence
	hs, cs         [][]float64 // hidden and cell states per step (index 0 = initial zeros)
	gates          [][]float64 // post-activation gate values per step: i,f,g,o packed
	gin            []float64
	dh, dc, dgates []float64

	// grow-only scratch for the batched GEMM path (lstm_batch.go). All
	// time-major blocks index rows as t*n+s so each timestep's batch slab
	// is contiguous for the recurrent GEMM.
	bxT  []float64 // time-major input copy [steps][n][features]
	bz   []float64 // gate block [steps][n][4u]: pre-activations, then post-activation gates
	bhs  []float64 // hidden states [(steps+1)][n][u]
	bcs  []float64 // cell states   [(steps+1)][n][u]
	bdg  []float64 // gate gradients per step [steps][n][4u]
	bdh  []float64 // running dh [n][u]
	bdc  []float64 // running dc [n][u]
	bdx  []float64 // time-major input gradients [steps][n][features]
	bgin []float64 // sample-major input-gradient block [n][steps*features]
}

// NewLSTM returns an LSTM layer with the given number of units.
func NewLSTM(units int) *LSTM { return &LSTM{Units: units} }

// Kind implements Layer.
func (l *LSTM) Kind() string { return "lstm" }

// Build implements Layer.
func (l *LSTM) Build(src *rng.Source, inputShape []int) ([]int, error) {
	if l.Units <= 0 {
		return nil, fmt.Errorf("nn: lstm needs positive Units, got %d", l.Units)
	}
	if len(inputShape) != 2 || inputShape[0] <= 0 || inputShape[1] <= 0 {
		return nil, fmt.Errorf("nn: lstm needs a [timesteps, features] input, got %v", inputShape)
	}
	l.steps, l.features = inputShape[0], inputShape[1]
	u := l.Units
	l.wx = newParam("wx", 4*u*l.features)
	l.wh = newParam("wh", 4*u*u)
	l.b = newParam("b", 4*u)
	glorotUniform(src, l.wx.Data, l.features, u)
	// orthogonal-ish init is overkill; glorot on recurrent weights works for
	// the short sequences used here
	glorotUniform(src, l.wh.Data, u, u)
	// forget-gate bias starts at 1 (standard trick for gradient flow)
	for i := u; i < 2*u; i++ {
		l.b.Data[i] = 1
	}

	l.xs = make([]float64, l.steps*l.features)
	l.hs = make([][]float64, l.steps+1)
	l.cs = make([][]float64, l.steps+1)
	for i := 0; i <= l.steps; i++ {
		l.hs[i] = make([]float64, u)
		l.cs[i] = make([]float64, u)
	}
	l.gates = make([][]float64, l.steps)
	for i := range l.gates {
		l.gates[i] = make([]float64, 4*u)
	}
	l.gin = make([]float64, l.steps*l.features)
	l.dh = make([]float64, u)
	l.dc = make([]float64, u)
	l.dgates = make([]float64, 4*u)
	return []int{u}, nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward implements Layer.
func (l *LSTM) Forward(x []float64) []float64 {
	copy(l.xs, x)
	u := l.Units
	for i := range l.hs[0] {
		l.hs[0][i] = 0
		l.cs[0][i] = 0
	}
	for t := 0; t < l.steps; t++ {
		xt := x[t*l.features : (t+1)*l.features]
		hPrev, cPrev := l.hs[t], l.cs[t]
		g := l.gates[t]
		// pre-activations: z = Wx*xt + Wh*hPrev + b
		for r := 0; r < 4*u; r++ {
			s := l.b.Data[r]
			wxRow := l.wx.Data[r*l.features : (r+1)*l.features]
			for c, v := range xt {
				s += wxRow[c] * v
			}
			whRow := l.wh.Data[r*u : (r+1)*u]
			for c, v := range hPrev {
				s += whRow[c] * v
			}
			g[r] = s
		}
		h, cNew := l.hs[t+1], l.cs[t+1]
		for j := 0; j < u; j++ {
			i := sigmoid(g[j])
			f := sigmoid(g[u+j])
			gg := math.Tanh(g[2*u+j])
			o := sigmoid(g[3*u+j])
			g[j], g[u+j], g[2*u+j], g[3*u+j] = i, f, gg, o
			cNew[j] = f*cPrev[j] + i*gg
			h[j] = o * math.Tanh(cNew[j])
		}
	}
	return l.hs[l.steps]
}

// Backward implements Layer (backpropagation through time). gradOut is the
// gradient with respect to the final hidden state.
func (l *LSTM) Backward(gradOut []float64) []float64 {
	u := l.Units
	copy(l.dh, gradOut)
	for i := range l.dc {
		l.dc[i] = 0
	}
	for i := range l.gin {
		l.gin[i] = 0
	}
	for t := l.steps - 1; t >= 0; t-- {
		g := l.gates[t]
		cPrev := l.cs[t]
		cNew := l.cs[t+1]
		hPrev := l.hs[t]
		xt := l.xs[t*l.features : (t+1)*l.features]
		dg := l.dgates
		for j := 0; j < u; j++ {
			i, f, gg, o := g[j], g[u+j], g[2*u+j], g[3*u+j]
			tc := math.Tanh(cNew[j])
			do := l.dh[j] * tc
			dcTotal := l.dc[j] + l.dh[j]*o*(1-tc*tc)
			di := dcTotal * gg
			df := dcTotal * cPrev[j]
			dgg := dcTotal * i
			// back through gate nonlinearities to pre-activations
			dg[j] = di * i * (1 - i)
			dg[u+j] = df * f * (1 - f)
			dg[2*u+j] = dgg * (1 - gg*gg)
			dg[3*u+j] = do * o * (1 - o)
			// carry cell gradient to t-1
			l.dc[j] = dcTotal * f
		}
		// accumulate parameter gradients and propagate to h_{t-1} and x_t
		ginT := l.gin[t*l.features : (t+1)*l.features]
		for j := range l.dh {
			l.dh[j] = 0
		}
		for r := 0; r < 4*u; r++ {
			d := dg[r]
			if d == 0 {
				continue
			}
			l.b.Grad[r] += d
			wxRow := l.wx.Data[r*l.features : (r+1)*l.features]
			gwxRow := l.wx.Grad[r*l.features : (r+1)*l.features]
			for c, v := range xt {
				gwxRow[c] += d * v
				ginT[c] += d * wxRow[c]
			}
			whRow := l.wh.Data[r*u : (r+1)*u]
			gwhRow := l.wh.Grad[r*u : (r+1)*u]
			for c, v := range hPrev {
				gwhRow[c] += d * v
				l.dh[c] += d * whRow[c]
			}
		}
	}
	return l.gin
}

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.wx, l.wh, l.b} }

// Spec implements Layer.
func (l *LSTM) Spec() LayerSpec { return LayerSpec{Type: "lstm", Units: l.Units} }
