package nn

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"specml/internal/rng"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenModel is the deterministic reference network committed under
// testdata: a dense/conv mix covering every spec field the serializer
// round-trips.
func goldenModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel()
	m.Add(&Conv1D{Filters: 2, Kernel: 3, Stride: 2})
	act, err := ActivationByName("selu")
	if err != nil {
		t.Fatal(err)
	}
	m.Add(&ActivationLayer{Act: act})
	m.Add(&Flatten{})
	m.Add(&Dense{Out: 4})
	m.Add(&SoftmaxLayer{})
	if err := m.Build(rng.New(20260805), 12, 1); err != nil {
		t.Fatal(err)
	}
	return m
}

// checkGolden compares got against the named golden file, rewriting it
// under -update-golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test -run Golden -update-golden ./%s)", err, "internal/nn")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from the golden bytes: the on-disk model format changed.\n"+
			"If the change is intentional, bump the format version and regenerate with -update-golden.\n"+
			"got:  %s\nwant: %s", name, got, want)
	}
}

// TestModelSaveGolden pins the exact bytes nn.Save emits: deployed models
// (and the serve model directory protocol) depend on this layout, so any
// drift must be a deliberate, versioned format change.
func TestModelSaveGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenModel(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "model_v1.golden.json", buf.Bytes())
}

// TestModelGoldenRoundTrip loads the committed artifact and re-saves it:
// the bytes must survive unchanged (Load is lossless, Save is stable), and
// the loaded model must predict bit-identically to the freshly built one.
func TestModelGoldenRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "model_v1.golden.json"))
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	loaded, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := loaded.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("Load+Save is not byte-stable on the golden model")
	}
	ref := goldenModel(t)
	x := make([]float64, ref.InputLen())
	for i := range x {
		x[i] = float64(i%5) * 0.2
	}
	want, got := ref.Predict(x), loaded.Predict(x)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("golden model predicts differently after round trip: %v vs %v", got, want)
		}
	}
}
