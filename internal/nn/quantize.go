package nn

import (
	"fmt"
	"math"
)

// Quantization support for embedded deployment. Section IV of the paper
// motivates FPGA overlays whose processing elements are tailored "to
// specific operations and number formats"; the functions here simulate
// post-training fixed-point quantization of a trained network so the
// accuracy cost of a number format can be measured before committing to a
// hardware configuration.

// QuantizeParams rounds every parameter tensor of a built model to a
// symmetric fixed-point grid with the given bit width (sign bit included)
// and per-tensor scaling, returning a new model whose float64 parameters
// hold the dequantized values. The original model is unchanged.
func QuantizeParams(m *Model, bits int) (*Model, error) {
	if bits < 2 || bits > 32 {
		return nil, fmt.Errorf("nn: quantization bits must be in [2,32], got %d", bits)
	}
	q, err := m.Clone()
	if err != nil {
		return nil, err
	}
	levels := float64(int64(1)<<(bits-1)) - 1 // e.g. 127 for int8
	for _, p := range q.Params() {
		maxAbs := 0.0
		for _, v := range p.Data {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			continue
		}
		scale := maxAbs / levels
		for i, v := range p.Data {
			p.Data[i] = math.Round(v/scale) * scale
		}
	}
	return q, nil
}

// QuantizationError reports the worst-case and root-mean-square relative
// parameter error between a model and its quantized copy.
func QuantizationError(m, q *Model) (maxRel, rms float64, err error) {
	a, b := m.Params(), q.Params()
	if len(a) != len(b) {
		return 0, 0, fmt.Errorf("nn: model/quantized parameter mismatch")
	}
	n := 0
	for t := range a {
		if len(a[t].Data) != len(b[t].Data) {
			return 0, 0, fmt.Errorf("nn: parameter tensor %d size mismatch", t)
		}
		maxAbs := 0.0
		for _, v := range a[t].Data {
			if x := math.Abs(v); x > maxAbs {
				maxAbs = x
			}
		}
		if maxAbs == 0 {
			continue
		}
		for i := range a[t].Data {
			d := (a[t].Data[i] - b[t].Data[i]) / maxAbs
			if r := math.Abs(d); r > maxRel {
				maxRel = r
			}
			rms += d * d
			n++
		}
	}
	if n > 0 {
		rms = math.Sqrt(rms / float64(n))
	}
	return maxRel, rms, nil
}

// QuantizedBytes returns the parameter storage a fixed-point deployment of
// the model needs at the given bit width (packed, excluding scales).
func QuantizedBytes(m *Model, bits int) int64 {
	totalBits := int64(m.NumParams()) * int64(bits)
	return (totalBits + 7) / 8
}
