package nn

import (
	"math"
	"testing"
	"testing/quick"

	"specml/internal/rng"
)

func TestActivationValues(t *testing.T) {
	cases := []struct {
		act  Activation
		x    float64
		want float64
	}{
		{Linear, 3.5, 3.5},
		{Linear, -2, -2},
		{ReLU, 2, 2},
		{ReLU, -2, 0},
		{ReLU, 0, 0},
		{SELU, 1, seluLambda},
		{SELU, 0, 0},
		{Sigmoid, 0, 0.5},
		{Tanh, 0, 0},
	}
	for _, c := range cases {
		if got := c.act.Value(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s(%v) = %v, want %v", c.act.Name(), c.x, got, c.want)
		}
	}
}

func TestSELUNegativeBranch(t *testing.T) {
	// SELU(-inf) -> -lambda*alpha
	if got := SELU.Value(-50); math.Abs(got-(-seluLambda*seluAlpha)) > 1e-9 {
		t.Fatalf("SELU(-50) = %v, want %v", got, -seluLambda*seluAlpha)
	}
	// self-normalizing fixed point: mean 0 / var 1 inputs keep variance ~1
	src := rng.New(3)
	sum, sumsq := 0.0, 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := SELU.Value(src.StdNormal())
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("SELU not self-normalizing: mean=%v var=%v", mean, variance)
	}
}

// Property: each activation's Deriv matches a finite difference.
func TestActivationDerivProperty(t *testing.T) {
	acts := []Activation{Linear, ReLU, SELU, Sigmoid, Tanh}
	f := func(raw int16, which uint8) bool {
		a := acts[int(which)%len(acts)]
		x := float64(raw) / 1000 // [-32.7, 32.7]
		if a.Name() == "relu" && math.Abs(x) < 1e-3 {
			return true // skip the kink
		}
		const h = 1e-6
		numeric := (a.Value(x+h) - a.Value(x-h)) / (2 * h)
		y := a.Value(x)
		analytic := a.Deriv(x, y)
		return math.Abs(numeric-analytic) <= 1e-4*(1+math.Abs(numeric))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestActivationByName(t *testing.T) {
	for _, name := range []string{"linear", "relu", "selu", "sigmoid", "tanh", ""} {
		if _, err := ActivationByName(name); err != nil {
			t.Errorf("ActivationByName(%q) failed: %v", name, err)
		}
	}
	if _, err := ActivationByName("softmax"); err == nil {
		t.Error("softmax must not resolve as a pointwise activation")
	}
	if _, err := ActivationByName("bogus"); err == nil {
		t.Error("bogus activation must error")
	}
}

// Property: softmax outputs are a probability distribution and are
// invariant under constant shifts of the input.
func TestSoftmaxProperties(t *testing.T) {
	src := rng.New(9)
	f := func(nRaw uint8, shiftRaw int16) bool {
		n := int(nRaw%8) + 1
		x := make([]float64, n)
		for i := range x {
			x[i] = src.Normal(0, 3)
		}
		out := make([]float64, n)
		Softmax(out, x)
		sum := 0.0
		for _, v := range out {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// shift invariance
		shift := float64(shiftRaw) / 100
		shifted := make([]float64, n)
		for i := range x {
			shifted[i] = x[i] + shift
		}
		out2 := make([]float64, n)
		Softmax(out2, shifted)
		for i := range out {
			if math.Abs(out[i]-out2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxExtremeValues(t *testing.T) {
	out := make([]float64, 3)
	Softmax(out, []float64{1000, 0, -1000})
	if math.IsNaN(out[0]) || math.Abs(out[0]-1) > 1e-9 {
		t.Fatalf("softmax overflow handling broken: %v", out)
	}
}

func TestSoftmaxAliasing(t *testing.T) {
	x := []float64{1, 2, 3}
	Softmax(x, x)
	sum := x[0] + x[1] + x[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("in-place softmax broken: %v", x)
	}
}
