package nn

import (
	"math"
	"testing"
	"testing/quick"

	"specml/internal/rng"
)

func TestLossValues(t *testing.T) {
	pred := []float64{1, 2, 3}
	target := []float64{1, 3, 5}
	if got := MAE.Loss(pred, target); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MAE = %v, want 1", got)
	}
	if got := MSE.Loss(pred, target); math.Abs(got-5.0/3) > 1e-12 {
		t.Fatalf("MSE = %v, want 5/3", got)
	}
	h := HuberLoss{Delta: 1}
	// errors 0,1,2 -> 0 + 0.5 + (2-0.5) = 2 -> /3
	if got := h.Loss(pred, target); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Huber = %v, want 2/3", got)
	}
}

func TestLossGradMatchesFiniteDifference(t *testing.T) {
	src := rng.New(1)
	losses := []Loss{MAE, MSE, HuberLoss{Delta: 0.7}}
	f := func(which uint8) bool {
		loss := losses[int(which)%len(losses)]
		n := 4
		pred := make([]float64, n)
		target := make([]float64, n)
		for i := range pred {
			pred[i] = src.Normal(0, 1)
			target[i] = src.Normal(0, 1)
		}
		grad := make([]float64, n)
		loss.Grad(pred, target, grad)
		const h = 1e-6
		for i := range pred {
			orig := pred[i]
			pred[i] = orig + h
			lp := loss.Loss(pred, target)
			pred[i] = orig - h
			lm := loss.Loss(pred, target)
			pred[i] = orig
			numeric := (lp - lm) / (2 * h)
			if math.Abs(numeric-grad[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLossByName(t *testing.T) {
	for _, name := range []string{"mae", "mse", "huber", ""} {
		if _, err := LossByName(name); err != nil {
			t.Errorf("LossByName(%q): %v", name, err)
		}
	}
	if _, err := LossByName("xent"); err == nil {
		t.Error("unknown loss must error")
	}
}

func TestOptimizerByName(t *testing.T) {
	for _, name := range []string{"adam", "sgd", "momentum", ""} {
		if _, err := OptimizerByName(name, 0); err != nil {
			t.Errorf("OptimizerByName(%q): %v", name, err)
		}
	}
	if _, err := OptimizerByName("rmsprop", 0); err == nil {
		t.Error("unknown optimizer must error")
	}
}

// optimizers minimize a simple quadratic via the Param interface
func TestOptimizersMinimizeQuadratic(t *testing.T) {
	opts := map[string]Optimizer{
		"sgd":      &SGD{LR: 0.1},
		"momentum": &Momentum{LR: 0.05, Mu: 0.9},
		"adam":     NewAdam(0.1),
	}
	for name, opt := range opts {
		p := newParam("w", 2)
		p.Data[0], p.Data[1] = 4, -3
		for iter := 0; iter < 300; iter++ {
			// f = 0.5*(w0² + 4 w1²); grad = (w0, 4 w1)
			p.Grad[0] = p.Data[0]
			p.Grad[1] = 4 * p.Data[1]
			opt.Step([]*Param{p})
		}
		if math.Abs(p.Data[0]) > 1e-2 || math.Abs(p.Data[1]) > 1e-2 {
			t.Errorf("%s failed to minimize quadratic: %v", name, p.Data)
		}
	}
}

func TestFitLearnsLinearMap(t *testing.T) {
	// y = A x with a 2x3 matrix; a linear model must drive MSE to ~0.
	src := rng.New(7)
	a := [][]float64{{0.5, -1, 0.25}, {1, 0.5, -0.5}}
	var xs, ys [][]float64
	for i := 0; i < 200; i++ {
		x := []float64{src.Normal(0, 1), src.Normal(0, 1), src.Normal(0, 1)}
		y := []float64{
			a[0][0]*x[0] + a[0][1]*x[1] + a[0][2]*x[2],
			a[1][0]*x[0] + a[1][1]*x[1] + a[1][2]*x[2],
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	m := buildModel(t, 1, []int{3}, NewDense(2))
	hist, err := m.Fit(xs, ys, FitConfig{
		Epochs: 60, BatchSize: 16, Loss: MSE, Optimizer: NewAdam(0.02), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := hist.TrainLoss[len(hist.TrainLoss)-1]
	if final > 1e-4 {
		t.Fatalf("linear map not learned: final MSE %v", final)
	}
}

func TestFitLearnsNonlinearFunction(t *testing.T) {
	// Learn y = sin(x) on [-2,2] with a small MLP.
	src := rng.New(9)
	var xs, ys [][]float64
	for i := 0; i < 300; i++ {
		x := src.Uniform(-2, 2)
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{math.Sin(x)})
	}
	m := buildModel(t, 2, []int{1},
		NewDense(16), NewActivation(Tanh), NewDense(1))
	hist, err := m.Fit(xs, ys, FitConfig{
		Epochs: 150, BatchSize: 32, Loss: MSE, Optimizer: NewAdam(0.01), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := hist.TrainLoss[len(hist.TrainLoss)-1]
	if final > 5e-3 {
		t.Fatalf("sin not learned: final MSE %v", final)
	}
}

func TestFitValidationAndEarlyStopping(t *testing.T) {
	src := rng.New(11)
	var xs, ys [][]float64
	for i := 0; i < 100; i++ {
		x := src.Normal(0, 1)
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{2 * x})
	}
	m := buildModel(t, 3, []int{1}, NewDense(1))
	hist, err := m.Fit(xs[:80], ys[:80], FitConfig{
		Epochs: 500, BatchSize: 16, Loss: MSE, Optimizer: NewAdam(0.05),
		ValX: xs[80:], ValY: ys[80:], Patience: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.ValLoss) == 0 {
		t.Fatal("no validation losses recorded")
	}
	if hist.BestEpoch < 0 {
		t.Fatal("best epoch not tracked")
	}
	// after convergence the run must have stopped well before 500 epochs
	if !hist.Stopped && len(hist.TrainLoss) == 500 {
		t.Log("early stopping did not trigger (acceptable if still improving), final val:",
			hist.ValLoss[len(hist.ValLoss)-1])
	}
	if v := m.EvaluateMSE(xs[80:], ys[80:]); v > 1e-3 {
		t.Fatalf("validation MSE after training = %v", v)
	}
}

func TestFitKeepBestRestoresBestWeights(t *testing.T) {
	src := rng.New(13)
	var xs, ys [][]float64
	for i := 0; i < 60; i++ {
		x := src.Normal(0, 1)
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{x})
	}
	m := buildModel(t, 5, []int{1}, NewDense(1))
	// Huge LR makes late epochs diverge, so KeepBest must restore an
	// earlier, better epoch.
	hist, err := m.Fit(xs[:40], ys[:40], FitConfig{
		Epochs: 30, BatchSize: 8, Loss: MSE, Optimizer: &SGD{LR: 0.9},
		ValX: xs[40:], ValY: ys[40:], KeepBest: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	best := hist.ValLoss[hist.BestEpoch]
	got := m.EvaluateMSE(xs[40:], ys[40:])
	if math.Abs(got-best) > 1e-9 {
		t.Fatalf("KeepBest did not restore best weights: eval %v vs best %v", got, best)
	}
}

func TestFitInputValidation(t *testing.T) {
	m := buildModel(t, 1, []int{2}, NewDense(1))
	if _, err := m.Fit(nil, nil, FitConfig{}); err == nil {
		t.Fatal("empty data must error")
	}
	if _, err := m.Fit([][]float64{{1, 2}}, [][]float64{{1}, {2}}, FitConfig{}); err == nil {
		t.Fatal("count mismatch must error")
	}
	if _, err := m.Fit([][]float64{{1}}, [][]float64{{1}}, FitConfig{}); err == nil {
		t.Fatal("wrong feature width must error")
	}
	if _, err := m.Fit([][]float64{{1, 2}}, [][]float64{{1, 2}}, FitConfig{}); err == nil {
		t.Fatal("wrong label width must error")
	}
	if _, err := m.Fit([][]float64{{1, 2}}, [][]float64{{1}},
		FitConfig{ValX: [][]float64{{1, 2}}}); err == nil {
		t.Fatal("validation mismatch must error")
	}
}

func TestFitDeterminism(t *testing.T) {
	src := rng.New(21)
	var xs, ys [][]float64
	for i := 0; i < 50; i++ {
		x := src.Normal(0, 1)
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{3 * x})
	}
	run := func() []float64 {
		m := buildModel(t, 77, []int{1}, NewDense(4), NewActivation(Tanh), NewDense(1))
		if _, err := m.Fit(xs, ys, FitConfig{Epochs: 5, BatchSize: 10, Seed: 99, Optimizer: NewAdam(0.01)}); err != nil {
			t.Fatal(err)
		}
		return m.Predict([]float64{0.5})
	}
	a, b := run(), run()
	if a[0] != b[0] {
		t.Fatalf("training not deterministic: %v vs %v", a, b)
	}
}

func TestEvaluateMAEPerOutput(t *testing.T) {
	m := buildModel(t, 1, []int{1}, NewDense(2))
	// force known weights: y = [x, -x]
	p := m.Params()
	p[0].Data[0], p[0].Data[1] = 1, -1
	p[1].Data[0], p[1].Data[1] = 0, 0
	xs := [][]float64{{1}, {2}}
	ys := [][]float64{{1, 0}, {2, 0}}
	mean, per := m.EvaluateMAE(xs, ys)
	// output0 exact, output1 errors |−1−0|=1, |−2−0|=2 -> 1.5
	if math.Abs(per[0]) > 1e-12 || math.Abs(per[1]-1.5) > 1e-12 {
		t.Fatalf("per-output MAE = %v", per)
	}
	if math.Abs(mean-0.75) > 1e-12 {
		t.Fatalf("mean MAE = %v, want 0.75", mean)
	}
}

func TestLSTMFitLearnsSequenceSum(t *testing.T) {
	// Predict the mean of a 4-step scalar sequence.
	src := rng.New(31)
	var xs, ys [][]float64
	for i := 0; i < 200; i++ {
		seq := make([]float64, 4)
		sum := 0.0
		for j := range seq {
			seq[j] = src.Uniform(-1, 1)
			sum += seq[j]
		}
		xs = append(xs, seq)
		ys = append(ys, []float64{sum / 4})
	}
	m := NewModel().Add(NewLSTM(8)).Add(NewDense(1))
	if err := m.Build(rng.New(8), 4, 1); err != nil {
		t.Fatal(err)
	}
	hist, err := m.Fit(xs, ys, FitConfig{Epochs: 60, BatchSize: 16, Loss: MSE, Optimizer: NewAdam(0.02), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	final := hist.TrainLoss[len(hist.TrainLoss)-1]
	if final > 5e-3 {
		t.Fatalf("LSTM failed to learn sequence mean: MSE %v", final)
	}
}
