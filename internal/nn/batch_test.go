package nn

import (
	"math"
	"testing"

	"specml/internal/rng"
)

// batchSizes are the block widths every BatchLayer implementation is checked
// at: a single row, an odd remainder-style batch, and the default training
// batch size.
var batchSizes = []int{1, 7, 32}

type batchCase struct {
	name  string
	shape []int // layer input shape
	mk    func() Layer
	train bool // run Dropout in training mode with seeded per-sample streams
}

var batchCases = []batchCase{
	{name: "dense", shape: []int{23}, mk: func() Layer { return NewDense(11) }},
	{name: "conv1d-overlap", shape: []int{40, 2}, mk: func() Layer { return NewConv1D(5, 5, 2) }},
	{name: "conv1d-nonoverlap", shape: []int{27, 3}, mk: func() Layer { return NewConv1D(4, 3, 3) }},
	{name: "locallyconnected1d", shape: []int{30, 2}, mk: func() Layer { return NewLocallyConnected1D(3, 4, 2) }},
	{name: "activation-relu", shape: []int{17}, mk: func() Layer { return NewActivation(ReLU) }},
	{name: "activation-selu", shape: []int{17}, mk: func() Layer { return NewActivation(SELU) }},
	{name: "softmax-vector", shape: []int{9}, mk: func() Layer { return NewSoftmax() }},
	{name: "softmax-sequence", shape: []int{6, 4}, mk: func() Layer { return NewSoftmax() }},
	{name: "maxpool1d", shape: []int{21, 3}, mk: func() Layer { return NewMaxPool1D(3, 2) }},
	{name: "avgpool1d", shape: []int{20, 2}, mk: func() Layer { return NewAvgPool1D(4, 0) }},
	{name: "dropout-training", shape: []int{15}, mk: func() Layer { return NewDropout(0.4) }, train: true},
	{name: "dropout-inference", shape: []int{15}, mk: func() Layer { return NewDropout(0.4) }},
	{name: "reshape", shape: []int{12}, mk: func() Layer { return NewReshape(4, 3) }},
	{name: "flatten", shape: []int{4, 3}, mk: func() Layer { return NewFlatten() }},
	{name: "lstm", shape: []int{5, 3}, mk: func() Layer { return NewLSTM(6) }},
	{name: "timedistributed-dense", shape: []int{4, 6}, mk: func() Layer { return NewTimeDistributed(NewDense(3)) }},
	{name: "timedistributed-lc1d", shape: []int{4, 10}, mk: func() Layer { return NewTimeDistributed(NewLocallyConnected1D(2, 3, 2), 10, 1) }},
}

// fillBatch fills s with values in (-1.5, 1.5), forcing ~20% exact zeros so
// the kernels' zero-skip branches face the same sparsity as ReLU gradients.
func fillBatch(src *rng.Source, s []float64) {
	for i := range s {
		if src.Float64() < 0.2 {
			s[i] = 0
		} else {
			s[i] = src.Uniform(-1.5, 1.5)
		}
	}
}

func expectBits(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d differs bitwise: %v vs %v", name, i, got[i], want[i])
		}
	}
}

// TestBatchLayerEquivalence pins the tentpole contract: for every BatchLayer
// implementation, ForwardBatch/BackwardBatch over a block is bit-identical —
// outputs, input gradients, and accumulated parameter gradients — to looping
// per-sample Forward/Backward over the rows.
func TestBatchLayerEquivalence(t *testing.T) {
	for _, tc := range batchCases {
		for _, n := range batchSizes {
			t.Run(tc.name, func(t *testing.T) {
				const buildSeed = 7
				build := func() Layer {
					l := tc.mk()
					if _, err := l.Build(rng.New(buildSeed), tc.shape); err != nil {
						t.Fatalf("build: %v", err)
					}
					return l
				}
				batch := build()
				ref := build()
				bl, ok := batch.(BatchLayer)
				if !ok {
					t.Fatalf("%T does not implement BatchLayer", batch)
				}

				inLen := shapeLen(tc.shape)
				// infer the output length from one reference forward
				probe := make([]float64, inLen)
				outLen := len(ref.Forward(probe))

				src := rng.New(uint64(1000 + n))
				xb := make([]float64, n*inLen)
				gb := make([]float64, n*outLen)
				fillBatch(src, xb)
				fillBatch(src, gb)

				if d, ok := batch.(*Dropout); ok && tc.train {
					d.SetTraining(true)
					ref.(*Dropout).SetTraining(true)
					srcs := make([]*rng.Source, n)
					for s := range srcs {
						srcs[s] = rng.New(uint64(500 + s)).Split()
					}
					d.setBatchSources(srcs)
				}

				yb := bl.ForwardBatch(xb, n)
				ginb := bl.BackwardBatch(gb, n)

				refY := make([]float64, n*outLen)
				refGin := make([]float64, n*inLen)
				for s := 0; s < n; s++ {
					if d, ok := ref.(*Dropout); ok && tc.train {
						d.Reseed(rng.New(uint64(500 + s)).Split())
					}
					y := ref.Forward(xb[s*inLen : (s+1)*inLen])
					copy(refY[s*outLen:(s+1)*outLen], y)
					gin := ref.Backward(gb[s*outLen : (s+1)*outLen])
					copy(refGin[s*inLen:(s+1)*inLen], gin)
				}

				expectBits(t, "forward n="+itoa(n), yb, refY)
				expectBits(t, "backward n="+itoa(n), ginb, refGin)
				bp, rp := batch.Params(), ref.Params()
				for i := range bp {
					expectBits(t, bp[i].Name+" grad n="+itoa(n), bp[i].Grad, rp[i].Grad)
				}
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestForwardBatchMatchesModelForward runs a whole Table-1-style conv stack
// through forwardBatch and checks bit-identity against per-sample Forward.
func TestForwardBatchMatchesModelForward(t *testing.T) {
	m := NewModel().
		Add(NewReshape(50, 1)).
		Add(NewConv1D(6, 5, 2)).
		Add(NewActivation(ReLU)).
		Add(NewMaxPool1D(2, 0)).
		Add(NewConv1D(4, 3, 1)).
		Add(NewActivation(SELU)).
		Add(NewFlatten()).
		Add(NewDense(8)).
		Add(NewSoftmax())
	if err := m.Build(rng.New(3), 50); err != nil {
		t.Fatal(err)
	}
	ref, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	const n = 13
	inLen, outLen := m.InputLen(), m.OutputLen()
	src := rng.New(42)
	xb := make([]float64, n*inLen)
	fillBatch(src, xb)

	yb := m.forwardBatch(xb, n)
	for s := 0; s < n; s++ {
		want := ref.Forward(xb[s*inLen : (s+1)*inLen])
		expectBits(t, "sample "+itoa(s), yb[s*outLen:(s+1)*outLen], want)
	}
}

// TestBatchedConvGradcheck verifies the batched conv forward/backward path
// against central finite differences of the batched loss.
func TestBatchedConvGradcheck(t *testing.T) {
	m := NewModel().
		Add(NewReshape(20, 1)).
		Add(NewConv1D(3, 5, 2)).
		Add(NewActivation(Tanh)).
		Add(NewFlatten()).
		Add(NewDense(4))
	if err := m.Build(rng.New(5), 20); err != nil {
		t.Fatal(err)
	}
	if !m.fullyBatchable() {
		t.Fatalf("conv stack should be batchable")
	}
	const n = 3
	inLen, outLen := m.InputLen(), m.OutputLen()
	src := rng.New(6)
	xb := make([]float64, n*inLen)
	tb := make([]float64, n*outLen)
	for i := range xb {
		xb[i] = src.Normal(0, 1)
	}
	for i := range tb {
		tb[i] = src.Normal(0, 1)
	}
	batchLoss := func() float64 {
		yb := m.forwardBatch(xb, n)
		l := 0.0
		for i, v := range yb {
			d := v - tb[i]
			l += 0.5 * d * d
		}
		return l
	}

	m.SetTraining(false)
	m.ZeroGrad()
	yb := m.forwardBatch(xb, n)
	gb := make([]float64, n*outLen)
	for i, v := range yb {
		gb[i] = v - tb[i]
	}
	m.backwardBatch(gb, n)

	const eps = 1e-5
	maxRel := 0.0
	for _, p := range m.Params() {
		for i := range p.Data {
			orig := p.Data[i]
			p.Data[i] = orig + eps
			lp := batchLoss()
			p.Data[i] = orig - eps
			lm := batchLoss()
			p.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			den := math.Max(math.Abs(p.Grad[i])+math.Abs(numeric), 1e-4)
			if r := math.Abs(p.Grad[i]-numeric) / den; r > maxRel {
				maxRel = r
			}
		}
	}
	if maxRel > 2e-4 {
		t.Fatalf("batched conv gradcheck max relative error %.3e", maxRel)
	}
}

// TestReseedDropoutBatchMatchesPerSample checks that a multi-dropout model
// produces bit-identical training-mode outputs through the batched path and
// the per-sample reseed path for the same seed sequence.
func TestReseedDropoutBatchMatchesPerSample(t *testing.T) {
	build := func() *Model {
		m := NewModel().
			Add(NewDense(16)).
			Add(NewActivation(ReLU)).
			Add(NewDropout(0.3)).
			Add(NewDense(10)).
			Add(NewDropout(0.5)).
			Add(NewDense(4))
		if err := m.Build(rng.New(21), 12); err != nil {
			t.Fatal(err)
		}
		return m
	}
	batch := build()
	ref := build()
	const n = 7
	inLen, outLen := batch.InputLen(), batch.OutputLen()
	src := rng.New(77)
	xb := make([]float64, n*inLen)
	fillBatch(src, xb)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(9000 + i)
	}

	batch.SetTraining(true)
	batch.reseedDropoutBatch(seeds)
	yb := batch.forwardBatch(xb, n)

	ref.SetTraining(true)
	for s := 0; s < n; s++ {
		ref.reseedDropout(seeds[s])
		want := ref.Forward(xb[s*inLen : (s+1)*inLen])
		expectBits(t, "sample "+itoa(s), yb[s*outLen:(s+1)*outLen], want)
	}
}

// TestPredictBatchLSTMBatched pins the batched recurrent engine's serving
// contract: an LSTM stack is now fully batchable (no per-sample fallback in
// PredictBatch or the serve batcher), and the batched kernels stay bitwise
// identical to Predict for any worker count.
func TestPredictBatchLSTMBatched(t *testing.T) {
	m := NewModel().
		Add(NewReshape(6, 4)).
		Add(NewLSTM(8)).
		Add(NewDense(3))
	if err := m.Build(rng.New(9), 24); err != nil {
		t.Fatal(err)
	}
	if !m.fullyBatchable() {
		t.Fatalf("LSTM stack must be fully batchable")
	}
	src := rng.New(10)
	rows := make([][]float64, 11)
	for i := range rows {
		rows[i] = make([]float64, 24)
		fillBatch(src, rows[i])
	}
	ref, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]float64, len(rows))
	for i, r := range rows {
		want[i] = ref.Predict(r)
	}
	for _, workers := range []int{1, 3} {
		got, err := m.PredictBatch(rows, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			expectBits(t, "row "+itoa(i), got[i], want[i])
		}
	}
}

// perSampleOnly hides a layer's batched kernels, exposing only the Layer
// interface. Every shipped layer now implements BatchLayer, so the
// forwardBatch per-sample fallback and the replica wave path in fitSource
// are kept covered through this wrapper.
type perSampleOnly struct{ Layer }

// TestPredictBatchFallbackLayer exercises the per-sample fallback inside the
// batch driver with a layer that has no batched kernel.
func TestPredictBatchFallbackLayer(t *testing.T) {
	m := NewModel().
		Add(NewDense(16)).
		Add(&perSampleOnly{NewActivation(SELU)}).
		Add(NewDense(5))
	if err := m.Build(rng.New(11), 13); err != nil {
		t.Fatal(err)
	}
	if m.fullyBatchable() {
		t.Fatalf("wrapped stack must not be fully batchable")
	}
	src := rng.New(12)
	rows := make([][]float64, 9)
	for i := range rows {
		rows[i] = make([]float64, 13)
		fillBatch(src, rows[i])
	}
	want := make([][]float64, len(rows))
	for i, r := range rows {
		want[i] = m.Predict(r)
	}
	got, err := m.PredictBatch(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		expectBits(t, "row "+itoa(i), got[i], want[i])
	}
}

// TestInferenceModeUnchangedAndTrainable pins the snapshot-skip satellite:
// Predict results are unchanged by inference mode, and a model that has been
// through Predict (inference on, then off) still gradchecks — the flag must
// not leak into training passes.
func TestInferenceModeUnchangedAndTrainable(t *testing.T) {
	build := func() *Model {
		m := NewModel().
			Add(NewReshape(20, 1)).
			Add(NewConv1D(3, 4, 2)).
			Add(NewActivation(ReLU)).
			Add(NewFlatten()).
			Add(NewDropout(0.2)).
			Add(NewDense(5))
		if err := m.Build(rng.New(33), 20); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m := build()
	ref := build()
	src := rng.New(34)
	x := make([]float64, 20)
	fillBatch(src, x)

	// Reference forward without ever touching the inference flag.
	ref.SetTraining(false)
	want := append([]float64(nil), ref.Forward(x)...)
	expectBits(t, "predict", m.Predict(x), want)

	// Train a little, predict in between, then gradcheck: Backward must see
	// correct snapshots even though Predict ran with the flag on.
	xs := [][]float64{x}
	ys := [][]float64{{0.1, 0.2, 0.3, 0.2, 0.2}}
	if _, err := m.Fit(xs, ys, FitConfig{Epochs: 2, BatchSize: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	m.Predict(x)
	if maxRel := numericalGradCheck(t, m, MSE, 35); maxRel > 2e-4 {
		t.Fatalf("gradcheck after Fit+Predict: max relative error %.3e", maxRel)
	}
}
