package tensor

import "fmt"

// Blocked GEMM kernels for the batched neural-network path. All three
// variants accumulate into C (C += ...) and preserve a strict per-element
// contract: every C element is produced by a single scalar accumulator that
// starts from the current C value and adds its k products in ascending k
// order. That contract is what makes the batched im2col+GEMM forward and
// backward passes bit-identical to the per-sample loops in internal/nn —
// tiling and register blocking only reorder *which* elements are computed
// when, never the addition sequence within one element.
//
// The kernels are written for the shapes the nn hot paths produce: A is a
// large activation (or im2col) block streamed row by row, B is a parameter
// matrix small enough to stay cache-resident across A's rows.

// gemmKC is the k-tile size of Gemm: one B tile of gemmKC rows is reused
// across a whole stripe of A rows before the next tile is touched, keeping
// the streamed B traffic inside L1/L2 for large k.
const gemmKC = 256

// Gemm computes C += A*B for row-major A (m x k), B (k x n), C (m x n).
func Gemm(c, a, b []float64, m, n, k int) {
	if len(a) != m*k || len(b) != k*n || len(c) != m*n {
		panic(fmt.Sprintf("tensor: Gemm dimension mismatch (a %d, b %d, c %d for m=%d n=%d k=%d)",
			len(a), len(b), len(c), m, n, k))
	}
	if m == 0 || n == 0 || k == 0 {
		return
	}
	// k-tiles ascending: element (i,j) receives its p-contributions in
	// ascending p order across tiles because C persists between tiles.
	for p0 := 0; p0 < k; p0 += gemmKC {
		p1 := p0 + gemmKC
		if p1 > k {
			p1 = k
		}
		for i := 0; i < m; i++ {
			arow := a[i*k : (i+1)*k]
			crow := c[i*n : (i+1)*n]
			for p := p0; p < p1; p++ {
				av := arow[p]
				if av == 0 {
					// Mirrors the zero-skip of the per-sample MatTVec (and
					// of the historical MatMul): a zero scale contributes
					// ±0 everywhere, and ReLU-sparse gradient blocks make
					// the skip worth a predictable branch.
					continue
				}
				brow := b[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// GemmNT computes C += A*Bᵀ for row-major A (m x k), B (n x k), C (m x n):
// C[i][j] is the dot product of A's row i with B's row j, accumulated in
// ascending k order starting from the incoming C value. This is the layout
// of every forward kernel in internal/nn (weights are stored row-major
// [out][in], i.e. already transposed for the dot-product form), and of the
// im2col convolution lowering. B rows are register-blocked four at a time
// so each loaded A element feeds four accumulators.
func GemmNT(c, a, b []float64, m, n, k int) {
	if len(a) != m*k || len(b) != n*k || len(c) != m*n {
		panic(fmt.Sprintf("tensor: GemmNT dimension mismatch (a %d, b %d, c %d for m=%d n=%d k=%d)",
			len(a), len(b), len(c), m, n, k))
	}
	if m == 0 || n == 0 || k == 0 {
		return
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			acc0, acc1, acc2, acc3 := crow[j], crow[j+1], crow[j+2], crow[j+3]
			for p, av := range arow {
				acc0 += av * b0[p]
				acc1 += av * b1[p]
				acc2 += av * b2[p]
				acc3 += av * b3[p]
			}
			crow[j], crow[j+1], crow[j+2], crow[j+3] = acc0, acc1, acc2, acc3
		}
		for ; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			acc := crow[j]
			for p, av := range arow {
				acc += av * brow[p]
			}
			crow[j] = acc
		}
	}
}

// GemmTN computes C += Aᵀ*B for row-major A (k x m), B (k x n), C (m x n):
// the weight-gradient kernel dW += dYᵀ·X, where k runs over the batch (or
// batch x positions) dimension. Each C element receives its k contributions
// in ascending k order because the outer loop walks k while C acts as the
// accumulator; C (a parameter gradient) is small and stays cache-resident.
func GemmTN(c, a, b []float64, m, n, k int) {
	if len(a) != k*m || len(b) != k*n || len(c) != m*n {
		panic(fmt.Sprintf("tensor: GemmTN dimension mismatch (a %d, b %d, c %d for m=%d n=%d k=%d)",
			len(a), len(b), len(c), m, n, k))
	}
	if m == 0 || n == 0 || k == 0 {
		return
	}
	for p := 0; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				// A zero row scale contributes av*brow[j] = ±0 to every
				// element; skipping it cannot change any finite sum (the
				// accumulators never hold -0: they start at a stored C value
				// produced by additions, and x + ±0 == x for x != -0).
				continue
			}
			crow := c[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTo computes dst = A*B in place for row-major matrices A (m x k) and
// B (k x n); dst must be pre-shaped to (m x n) and is overwritten. It is
// the allocation-free core that MatMul delegates to.
func MatMulTo(dst, a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMulTo shape mismatch %v x %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	if dst.Rank() != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTo dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	dst.Zero()
	Gemm(dst.Data, a.Data, b.Data, m, n, k)
	return dst
}
