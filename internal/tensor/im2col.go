package tensor

import "fmt"

// Im2Col lowers a channels-last 1-D sequence to the convolution's column
// matrix: x is [inLen, inCh] row-major, dst becomes [outLen, kernel*inCh]
// row-major where row p is the window x[p*stride : p*stride+kernel] with
// its channels flattened. Because the layout is channels-last, each window
// is a contiguous run of kernel*inCh elements of x, so the lowering is a
// straight copy per output position. outLen must equal
// (inLen-kernel)/stride+1 (valid padding).
//
// After Im2Col, a 1-D convolution with row-major weights [filters][kernel*
// inCh] is exactly GemmNT(y, dst, w, outLen, filters, kernel*inCh).
func Im2Col(dst, x []float64, inLen, inCh, kernel, stride, outLen int) {
	fanIn := kernel * inCh
	if len(x) != inLen*inCh || len(dst) != outLen*fanIn {
		panic(fmt.Sprintf("tensor: Im2Col dimension mismatch (x %d, dst %d for inLen=%d inCh=%d kernel=%d outLen=%d)",
			len(x), len(dst), inLen, inCh, kernel, outLen))
	}
	if (outLen-1)*stride+kernel > inLen {
		panic(fmt.Sprintf("tensor: Im2Col window overrun (inLen=%d kernel=%d stride=%d outLen=%d)",
			inLen, kernel, stride, outLen))
	}
	step := stride * inCh
	for p := 0; p < outLen; p++ {
		copy(dst[p*fanIn:(p+1)*fanIn], x[p*step:p*step+fanIn])
	}
}

// Col2Im is the adjoint of Im2Col: it accumulates a column-matrix gradient
// cols ([outLen, kernel*inCh] row-major) back onto the sequence gradient
// dst ([inLen, inCh] row-major, NOT cleared first). Rows are scattered in
// ascending position order and elements within a row in ascending order,
// so an element of dst covered by several overlapping windows receives its
// contributions in the same order a per-position backward loop would add
// them.
func Col2Im(dst, cols []float64, inLen, inCh, kernel, stride, outLen int) {
	fanIn := kernel * inCh
	if len(dst) != inLen*inCh || len(cols) != outLen*fanIn {
		panic(fmt.Sprintf("tensor: Col2Im dimension mismatch (dst %d, cols %d for inLen=%d inCh=%d kernel=%d outLen=%d)",
			len(dst), len(cols), inLen, inCh, kernel, outLen))
	}
	if (outLen-1)*stride+kernel > inLen {
		panic(fmt.Sprintf("tensor: Col2Im window overrun (inLen=%d kernel=%d stride=%d outLen=%d)",
			inLen, kernel, stride, outLen))
	}
	step := stride * inCh
	for p := 0; p < outLen; p++ {
		row := cols[p*fanIn : (p+1)*fanIn]
		win := dst[p*step : p*step+fanIn]
		for i, v := range row {
			win[i] += v
		}
	}
}
