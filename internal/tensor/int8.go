package tensor

import (
	"fmt"
	"math"
)

// Packed int8 GEMM kernels and quantize/dequantize helpers for the
// quantized inference path (internal/nn.QuantizedModel). The design
// mirrors the float kernels: weights are packed row-major [out][k] like
// GemmNT's B operand, activations stream row by row, and an AVX2 variant
// sits behind the same CPUID/SPECML_NOASM gating as the render kernels
// with a bit-identical scalar fallback.
//
// Numerics contract: products and sums are exact in int32 (see
// MaxGemmInt8K), so — unlike the float kernels — any summation order
// yields the same accumulator and the scalar and SIMD paths agree bit for
// bit by construction. Quantization itself rounds to nearest, ties to
// even (math.RoundToEven in the scalar kernel, VCVTPD2DQ under the
// default MXCSR rounding mode in the AVX2 kernel), so the two dispatch
// paths also produce identical int8 codes for every finite input with
// |v·invScale| < 2³¹; behaviour outside that range (never produced by the
// nn quantizers, which bound |v·invScale| ≤ 127 by construction) is
// unspecified.

// MaxGemmInt8K is the largest contraction length GemmInt8NT accepts:
// k·127·127 must stay below 2³¹ so the int32 accumulator cannot overflow
// (131072·16129 = 2 114 060 288 < 2 147 483 647). Every layer shape in
// this repo is orders of magnitude below the limit.
const MaxGemmInt8K = 1 << 17

// KPad16 rounds a contraction length up to the next multiple of 16, the
// panel granularity of the AVX2 int8 kernel. Rows padded with zero int8s
// contribute nothing to the dot products, so callers quantize into
// KPad16-strided rows once and every GEMM over them takes the fast path.
func KPad16(k int) int { return (k + 15) &^ 15 }

// GemmInt8NT computes C += A·Bᵀ with int32 accumulation for row-major
// int8 A (m x k), B (n x k) and int32 C (m x n): C[i][j] gains the exact
// integer dot product of A's row i with B's row j. This is the same
// operand layout as the float GemmNT (weights pre-transposed row-major
// [out][in]) and the layout Im2ColInt8 produces for convolutions.
//
// The AVX2 variant engages when k is a positive multiple of 16 (use
// KPad16 and zero-pad); other shapes run the scalar kernel. Both paths
// return identical results — int32 addition is associative.
func GemmInt8NT(c []int32, a, b []int8, m, n, k int) {
	if len(a) != m*k || len(b) != n*k || len(c) != m*n {
		panic(fmt.Sprintf("tensor: GemmInt8NT dimension mismatch (a %d, b %d, c %d for m=%d n=%d k=%d)",
			len(a), len(b), len(c), m, n, k))
	}
	if k > MaxGemmInt8K {
		panic(fmt.Sprintf("tensor: GemmInt8NT k=%d exceeds MaxGemmInt8K=%d (int32 accumulator could overflow)",
			k, MaxGemmInt8K))
	}
	if m == 0 || n == 0 || k == 0 {
		return
	}
	gemmInt8NT(c, a, b, m, n, k)
}

// QuantizeInt8 writes round-to-nearest-even int8 codes of src[i]*invScale
// into dst, clamping to [-127, 127] (symmetric: -128 is never produced,
// so negation of a code is always representable). len(dst) must equal
// len(src).
func QuantizeInt8(dst []int8, src []float64, invScale float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: QuantizeInt8 length mismatch (dst %d, src %d)", len(dst), len(src)))
	}
	quantizeInt8(dst, src, invScale)
}

// QuantizeRowInt8 quantizes one row symmetrically: the scale is
// maxAbs(x)/127 (no zero point — zero always maps to code 0), codes go to
// dst[:len(x)], and dst[len(x):] is zero-filled so KPad16-padded rows
// feed the GEMM directly. It returns the scale; dequantize with
// value ≈ scale·code. An all-zero (or empty) row zero-fills dst and
// returns scale 0. len(dst) must be at least len(x); inputs are expected
// finite (the nn layers and the serve preprocessing both guarantee it).
func QuantizeRowInt8(dst []int8, x []float64) float64 {
	if len(dst) < len(x) {
		panic(fmt.Sprintf("tensor: QuantizeRowInt8 dst %d shorter than row %d", len(dst), len(x)))
	}
	m := maxAbs(x)
	if m == 0 || math.IsInf(m, 0) || math.IsNaN(m) {
		for i := range dst {
			dst[i] = 0
		}
		return 0
	}
	quantizeInt8(dst[:len(x)], x, 127/m)
	for i := len(x); i < len(dst); i++ {
		dst[i] = 0
	}
	return m / 127
}

// Im2ColInt8 is Im2Col for quantized sequences with padded rows: x is
// [inLen, inCh] row-major int8, dst becomes [outLen, rowStride] row-major
// where each row holds the kernel*inCh window codes followed by zero
// padding up to rowStride (pass KPad16(kernel*inCh) so the lowered matrix
// feeds the AVX2 GEMM directly; rowStride == kernel*inCh reproduces the
// unpadded float layout). After it, the convolution is exactly
// GemmInt8NT(acc, dst, w, outLen, filters, rowStride) with w packed to
// the same rowStride.
func Im2ColInt8(dst, x []int8, inLen, inCh, kernel, stride, outLen, rowStride int) {
	fanIn := kernel * inCh
	if rowStride < fanIn {
		panic(fmt.Sprintf("tensor: Im2ColInt8 rowStride %d below fan-in %d", rowStride, fanIn))
	}
	if len(x) != inLen*inCh || len(dst) != outLen*rowStride {
		panic(fmt.Sprintf("tensor: Im2ColInt8 dimension mismatch (x %d, dst %d for inLen=%d inCh=%d kernel=%d outLen=%d rowStride=%d)",
			len(x), len(dst), inLen, inCh, kernel, outLen, rowStride))
	}
	if (outLen-1)*stride+kernel > inLen {
		panic(fmt.Sprintf("tensor: Im2ColInt8 window overrun (inLen=%d kernel=%d stride=%d outLen=%d)",
			inLen, kernel, stride, outLen))
	}
	step := stride * inCh
	for p := 0; p < outLen; p++ {
		row := dst[p*rowStride : (p+1)*rowStride]
		copy(row[:fanIn], x[p*step:p*step+fanIn])
		for i := fanIn; i < rowStride; i++ {
			row[i] = 0
		}
	}
}
