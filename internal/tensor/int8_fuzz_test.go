package tensor

import (
	"math"
	"testing"

	"specml/internal/rng"
)

// FuzzGemmInt8 is the differential harness for the quantized GEMM: random
// shapes and float matrices are quantized row-wise, multiplied in int8,
// and checked two ways.
//
//  1. Exactness over the codes: int32 accumulation has no rounding, so
//     the kernel output must EQUAL the float64 dot product of the code
//     values (|acc| ≤ k·127² < 2²³ ≪ 2⁵³, so the float64 reference is
//     itself exact). This catches overflow, panel mis-indexing, and any
//     scalar/SIMD divergence regardless of which path dispatch picks.
//  2. The analytic quantization bound against the float reference:
//     per-row symmetric rounding puts each element within scale/2·(1+ε)
//     of its code, so the dequantized dot differs from the float dot by
//     at most k·(sa/2·Bmax + sb/2·Amax + sa·sb/4) up to fp slack.
func FuzzGemmInt8(f *testing.F) {
	f.Add(uint64(1), uint8(1), uint8(1), uint8(1))
	f.Add(uint64(2), uint8(4), uint8(4), uint8(16))
	f.Add(uint64(3), uint8(7), uint8(3), uint8(40))
	f.Add(uint64(42), uint8(8), uint8(8), uint8(64))
	f.Add(uint64(99), uint8(2), uint8(5), uint8(17))

	f.Fuzz(func(t *testing.T, seed uint64, mm, nn, kk uint8) {
		m := 1 + int(mm)%8
		n := 1 + int(nn)%8
		k := 1 + int(kk)%64
		kp := KPad16(k)
		src := rng.New(seed)

		amp := math.Exp(src.Uniform(-3, 3)) // span tiny to large dynamic ranges
		a := make([]float64, m*k)
		b := make([]float64, n*k)
		for i := range a {
			a[i] = src.Uniform(-amp, amp)
		}
		for i := range b {
			b[i] = src.Uniform(-amp, amp)
		}

		qa := make([]int8, m*kp)
		qb := make([]int8, n*kp)
		sa := make([]float64, m)
		sb := make([]float64, n)
		for i := 0; i < m; i++ {
			sa[i] = QuantizeRowInt8(qa[i*kp:(i+1)*kp], a[i*k:(i+1)*k])
		}
		for j := 0; j < n; j++ {
			sb[j] = QuantizeRowInt8(qb[j*kp:(j+1)*kp], b[j*k:(j+1)*k])
		}

		acc := make([]int32, m*n)
		GemmInt8NT(acc, qa, qb, m, n, kp)

		for i := 0; i < m; i++ {
			amax := maxAbsGeneric(a[i*k : (i+1)*k])
			for j := 0; j < n; j++ {
				// (1) exact over the codes.
				exact := 0.0
				for p := 0; p < kp; p++ {
					exact += float64(qa[i*kp+p]) * float64(qb[j*kp+p])
				}
				if float64(acc[i*n+j]) != exact {
					t.Fatalf("m=%d n=%d k=%d cell (%d,%d): int gemm %d != code dot %g",
						m, n, k, i, j, acc[i*n+j], exact)
				}

				// (2) analytic bound vs the float reference.
				ref := 0.0
				for p := 0; p < k; p++ {
					ref += a[i*k+p] * b[j*k+p]
				}
				got := sa[i] * sb[j] * float64(acc[i*n+j])
				bmax := maxAbsGeneric(b[j*k : (j+1)*k])
				bound := float64(k) * (sa[i]/2*bmax + sb[j]/2*amax + sa[i]*sb[j]/4)
				slack := 1e-9 * (math.Abs(ref) + math.Abs(got) + bound)
				if diff := math.Abs(got - ref); diff > bound*(1+1e-9)+slack {
					t.Fatalf("m=%d n=%d k=%d cell (%d,%d): |%g - %g| = %g exceeds bound %g",
						m, n, k, i, j, got, ref, diff, bound)
				}
			}
		}
	})
}
