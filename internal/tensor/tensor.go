// Package tensor implements the small dense linear-algebra substrate used
// by the neural-network framework: row-major float64 tensors with shape
// metadata plus the handful of BLAS-like kernels (matrix-vector products,
// outer-product accumulation, elementwise maps) that forward and backward
// passes require. It deliberately avoids reflection and interface-based
// dispatch; all hot loops operate on flat []float64.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major tensor. The zero value is an empty tensor.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: make([]float64, n)}
}

// FromVec wraps data (not copied) as a 1-D tensor.
func FromVec(data []float64) *Tensor {
	return &Tensor{Shape: []int{len(data)}, Data: data}
}

// FromMat copies a [][]float64 into a 2-D tensor. All rows must have equal
// length.
func FromMat(rows [][]float64) *Tensor {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	t := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("tensor: ragged rows (%d vs %d)", len(r), c))
		}
		copy(t.Data[i*c:(i+1)*c], r)
	}
	return t
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dims returns the size of dimension i.
func (t *Tensor) Dims(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape sharing the same backing data.
// The element count must be preserved.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.Shape, len(t.Data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: t.Data}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Scale multiplies every element by a.
func (t *Tensor) Scale(a float64) {
	for i := range t.Data {
		t.Data[i] *= a
	}
}

// AddScaled adds a*other to t elementwise (axpy).
func (t *Tensor) AddScaled(a float64, other *Tensor) {
	if len(other.Data) != len(t.Data) {
		panic("tensor: AddScaled size mismatch")
	}
	for i, v := range other.Data {
		t.Data[i] += a * v
	}
}

// Apply replaces every element x by f(x).
func (t *Tensor) Apply(f func(float64) float64) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ArgMax returns the index of the largest element of a 1-D tensor.
func (t *Tensor) ArgMax() int {
	best, bestV := -1, math.Inf(-1)
	for i, v := range t.Data {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// EqualApprox reports whether two tensors have identical shape and
// elementwise differences no larger than tol.
func (t *Tensor) EqualApprox(o *Tensor, tol float64) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	for i := range t.Data {
		if math.Abs(t.Data[i]-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// MatVec computes out = W*x where W is (rows x cols) row-major. out must
// have length rows and x length cols. out is overwritten.
func MatVec(out, w, x []float64, rows, cols int) {
	if len(w) != rows*cols || len(x) != cols || len(out) != rows {
		panic("tensor: MatVec dimension mismatch")
	}
	for r := 0; r < rows; r++ {
		row := w[r*cols : (r+1)*cols]
		s := 0.0
		for c, v := range row {
			s += v * x[c]
		}
		out[r] = s
	}
}

// MatVecAdd computes out += W*x (same contract as MatVec).
func MatVecAdd(out, w, x []float64, rows, cols int) {
	if len(w) != rows*cols || len(x) != cols || len(out) != rows {
		panic("tensor: MatVecAdd dimension mismatch")
	}
	for r := 0; r < rows; r++ {
		row := w[r*cols : (r+1)*cols]
		s := 0.0
		for c, v := range row {
			s += v * x[c]
		}
		out[r] += s
	}
}

// MatTVec computes out = Wᵀ*y where W is (rows x cols) row-major and y has
// length rows; out (length cols) is overwritten. This is the input-gradient
// kernel of a dense layer.
func MatTVec(out, w, y []float64, rows, cols int) {
	if len(w) != rows*cols || len(y) != rows || len(out) != cols {
		panic("tensor: MatTVec dimension mismatch")
	}
	for c := range out {
		out[c] = 0
	}
	for r := 0; r < rows; r++ {
		yr := y[r]
		if yr == 0 {
			continue
		}
		row := w[r*cols : (r+1)*cols]
		for c, v := range row {
			out[c] += v * yr
		}
	}
}

// OuterAccum accumulates grad += y ⊗ x into a (rows x cols) row-major
// gradient buffer: grad[r][c] += y[r]*x[c]. This is the weight-gradient
// kernel of a dense layer.
func OuterAccum(grad, y, x []float64, rows, cols int) {
	if len(grad) != rows*cols || len(y) != rows || len(x) != cols {
		panic("tensor: OuterAccum dimension mismatch")
	}
	for r := 0; r < rows; r++ {
		yr := y[r]
		if yr == 0 {
			continue
		}
		g := grad[r*cols : (r+1)*cols]
		for c, v := range x {
			g[c] += yr * v
		}
	}
}

// MatMul computes C = A*B for row-major matrices A (m x k) and B (k x n),
// returning a new (m x n) tensor. It allocates the result; hot paths that
// can reuse a destination should call MatMulTo (or Gemm on raw slices)
// instead.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v", a.Shape, b.Shape))
	}
	return MatMulTo(New(a.Shape[0], b.Shape[1]), a, b)
}
