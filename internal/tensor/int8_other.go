//go:build !amd64

package tensor

func gemmInt8NT(c []int32, a, b []int8, m, n, k int) {
	gemmInt8NTGeneric(c, a, b, m, n, k)
}

func quantizeInt8(dst []int8, src []float64, inv float64) {
	quantizeInt8Generic(dst, src, inv)
}

func maxAbs(x []float64) float64 {
	return maxAbsGeneric(x)
}
