package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"specml/internal/rng"
)

func TestNewShapeAndZeroFill(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || x.Rank() != 3 || x.Dims(1) != 3 {
		t.Fatalf("bad shape metadata: %+v", x)
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if x.Data[2*4+1] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromMat(t *testing.T) {
	m := FromMat([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Dims(0) != 3 || m.Dims(1) != 2 || m.At(1, 1) != 4 {
		t.Fatalf("FromMat wrong: %+v", m)
	}
}

func TestFromMatRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged input")
		}
	}()
	FromMat([][]float64{{1, 2}, {3}})
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Set(9, 0, 1)
	if x.Data[1] != 9 {
		t.Fatal("Reshape must share backing data")
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(7)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromVec([]float64{1, 2, 3})
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestScaleApplySumMean(t *testing.T) {
	x := FromVec([]float64{1, 2, 3, 4})
	x.Scale(2)
	if x.Sum() != 20 {
		t.Fatalf("Sum = %v, want 20", x.Sum())
	}
	if x.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", x.Mean())
	}
	x.Apply(func(v float64) float64 { return -v })
	if x.MaxAbs() != 8 {
		t.Fatalf("MaxAbs = %v, want 8", x.MaxAbs())
	}
}

func TestAddScaled(t *testing.T) {
	x := FromVec([]float64{1, 1})
	y := FromVec([]float64{2, 3})
	x.AddScaled(0.5, y)
	if x.Data[0] != 2 || x.Data[1] != 2.5 {
		t.Fatalf("AddScaled wrong: %v", x.Data)
	}
}

func TestArgMax(t *testing.T) {
	x := FromVec([]float64{0.1, 0.7, 0.2})
	if x.ArgMax() != 1 {
		t.Fatalf("ArgMax = %d, want 1", x.ArgMax())
	}
}

func TestEqualApprox(t *testing.T) {
	a := FromVec([]float64{1, 2})
	b := FromVec([]float64{1.0001, 2})
	if !a.EqualApprox(b, 1e-3) {
		t.Fatal("should be approx equal")
	}
	if a.EqualApprox(b, 1e-6) {
		t.Fatal("should not be equal at 1e-6")
	}
	c := New(2, 1)
	if a.EqualApprox(c, 1) {
		t.Fatal("different shapes must not compare equal")
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestMatVec(t *testing.T) {
	// W = [[1,2],[3,4],[5,6]], x = [1,1] -> [3,7,11]
	w := []float64{1, 2, 3, 4, 5, 6}
	out := make([]float64, 3)
	MatVec(out, w, []float64{1, 1}, 3, 2)
	want := []float64{3, 7, 11}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("MatVec = %v, want %v", out, want)
		}
	}
}

func TestMatTVec(t *testing.T) {
	// Wᵀ*y with W = [[1,2],[3,4],[5,6]], y = [1,0,1] -> [6,8]
	w := []float64{1, 2, 3, 4, 5, 6}
	out := make([]float64, 2)
	MatTVec(out, w, []float64{1, 0, 1}, 3, 2)
	if out[0] != 6 || out[1] != 8 {
		t.Fatalf("MatTVec = %v, want [6 8]", out)
	}
}

func TestOuterAccum(t *testing.T) {
	grad := make([]float64, 6)
	OuterAccum(grad, []float64{1, 2, 3}, []float64{4, 5}, 3, 2)
	want := []float64{4, 5, 8, 10, 12, 15}
	for i := range want {
		if grad[i] != want[i] {
			t.Fatalf("OuterAccum = %v, want %v", grad, want)
		}
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromMat([][]float64{{1, 2}, {3, 4}})
	b := FromMat([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := FromMat([][]float64{{19, 22}, {43, 50}})
	if !c.EqualApprox(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", c.Data, want.Data)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// Property: MatVec agrees with MatMul on random matrices.
func TestMatVecMatchesMatMulProperty(t *testing.T) {
	src := rng.New(99)
	f := func(rRaw, cRaw uint8) bool {
		rows := int(rRaw%6) + 1
		cols := int(cRaw%6) + 1
		w := New(rows, cols)
		x := New(cols, 1)
		for i := range w.Data {
			w.Data[i] = src.Normal(0, 1)
		}
		for i := range x.Data {
			x.Data[i] = src.Normal(0, 1)
		}
		out := make([]float64, rows)
		MatVec(out, w.Data, x.Data, rows, cols)
		ref := MatMul(w, x)
		for i := range out {
			if math.Abs(out[i]-ref.Data[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: (Wᵀy)·x == y·(Wx) — adjoint identity used implicitly by backprop.
func TestAdjointIdentityProperty(t *testing.T) {
	src := rng.New(123)
	f := func(rRaw, cRaw uint8) bool {
		rows := int(rRaw%8) + 1
		cols := int(cRaw%8) + 1
		w := make([]float64, rows*cols)
		x := make([]float64, cols)
		y := make([]float64, rows)
		for i := range w {
			w[i] = src.Normal(0, 1)
		}
		for i := range x {
			x[i] = src.Normal(0, 1)
		}
		for i := range y {
			y[i] = src.Normal(0, 1)
		}
		wx := make([]float64, rows)
		MatVec(wx, w, x, rows, cols)
		wty := make([]float64, cols)
		MatTVec(wty, w, y, rows, cols)
		return math.Abs(Dot(wty, x)-Dot(y, wx)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatVec256(b *testing.B) {
	const rows, cols = 256, 256
	w := make([]float64, rows*cols)
	x := make([]float64, cols)
	out := make([]float64, rows)
	src := rng.New(1)
	for i := range w {
		w[i] = src.Normal(0, 1)
	}
	for i := range x {
		x[i] = src.Normal(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVec(out, w, x, rows, cols)
	}
}
