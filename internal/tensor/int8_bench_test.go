package tensor

import (
	"testing"

	"specml/internal/rng"
)

// Int8 counterparts of the float kernel benchmarks: the conv-lowered
// shape matches BenchmarkGemmNTConvLowered with k padded to the AVX2
// panel (25 -> 32), and the quantize benchmark covers the per-sample
// activation quantization the QuantizedModel performs before every GEMM.

func BenchmarkGemmInt8NTConvLowered(b *testing.B) {
	// batch 32 x outLen 976 rows, fanIn 25 padded to 32, 20 filters.
	m, n, k := 32*976, 20, KPad16(25)
	src := rng.New(103)
	am := make([]int8, m*k)
	bm := make([]int8, n*k)
	cm := make([]int32, m*n)
	fillCodes(src, am)
	fillCodes(src, bm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmInt8NT(cm, am, bm, m, n, k)
	}
}

func BenchmarkQuantizeRowInt8(b *testing.B) {
	// One 2000-point spectrum row -> padded int8 codes (maxAbs + quantize).
	n := 2000
	src := rng.New(104)
	x := make([]float64, n)
	for i := range x {
		x[i] = src.Uniform(-3, 3)
	}
	dst := make([]int8, KPad16(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QuantizeRowInt8(dst, x)
	}
}
