package tensor

import "math"

// Portable scalar kernels of the int8 path. They are the only
// implementation off amd64 and the SPECML_NOASM fallback on it; the AVX2
// variants are bit-identical (integer sums are exact, and the rounding
// convention matches — see the package comment in int8.go).

// gemmInt8NTGeneric mirrors GemmNT's register blocking: B rows four at a
// time so each loaded A code feeds four int32 accumulators.
func gemmInt8NTGeneric(c []int32, a, b []int8, m, n, k int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			var acc0, acc1, acc2, acc3 int32
			for p, av := range arow {
				va := int32(av)
				acc0 += va * int32(b0[p])
				acc1 += va * int32(b1[p])
				acc2 += va * int32(b2[p])
				acc3 += va * int32(b3[p])
			}
			crow[j] += acc0
			crow[j+1] += acc1
			crow[j+2] += acc2
			crow[j+3] += acc3
		}
		for ; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var acc int32
			for p, av := range arow {
				acc += int32(av) * int32(brow[p])
			}
			crow[j] += acc
		}
	}
}

// quantizeInt8Generic rounds src[i]*inv to the nearest int8, ties to
// even, clamped to ±127. The pre-conversion clamp keeps the float→int
// conversion in range (Go leaves out-of-range conversions implementation-
// defined); NaN products map to -127, matching the AVX2 kernel's
// convert-then-clamp of the 0x80000000 indefinite value.
func quantizeInt8Generic(dst []int8, src []float64, inv float64) {
	for i, v := range src {
		f := v * inv
		switch {
		case f >= 127:
			dst[i] = 127
		case f <= -127:
			dst[i] = -127
		case f != f: // NaN
			dst[i] = -127
		default:
			dst[i] = int8(math.RoundToEven(f))
		}
	}
}

// maxAbsGeneric returns max(|x[i]|), 0 for an empty slice.
func maxAbsGeneric(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
