package tensor

import (
	"math"
	"testing"

	"specml/internal/rng"
)

// refGemmInt8 is the obvious triple loop both dispatch paths must match
// exactly (integer accumulation leaves no rounding freedom).
func refGemmInt8(c []int32, a, b []int8, m, n, k int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := c[i*n+j]
			for p := 0; p < k; p++ {
				acc += int32(a[i*k+p]) * int32(b[j*k+p])
			}
			c[i*n+j] = acc
		}
	}
}

func fillCodes(src *rng.Source, s []int8) {
	for i := range s {
		s[i] = int8(src.Intn(255) - 127)
	}
}

func TestKPad16(t *testing.T) {
	cases := map[int]int{0: 0, 1: 16, 15: 16, 16: 16, 17: 32, 100: 112, 512: 512}
	for k, want := range cases {
		if got := KPad16(k); got != want {
			t.Fatalf("KPad16(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestGemmInt8NTMatchesReference(t *testing.T) {
	src := rng.New(21)
	shapes := []struct{ m, n, k int }{
		{1, 1, 1}, {1, 7, 3}, {3, 1, 5}, {4, 4, 16}, // k=16: smallest AVX2 shape
		{7, 5, 9}, {5, 3, 32}, {32, 8, 199}, {6, 20, 512},
		{2, 4, 17}, // k just past a panel: scalar path on amd64 too
	}
	for _, s := range shapes {
		a := make([]int8, s.m*s.k)
		b := make([]int8, s.n*s.k)
		c := make([]int32, s.m*s.n)
		fillCodes(src, a)
		fillCodes(src, b)
		for i := range c { // non-zero C checks the += contract
			c[i] = int32(src.Intn(100) - 50)
		}
		want := append([]int32(nil), c...)
		refGemmInt8(want, a, b, s.m, s.n, s.k)
		GemmInt8NT(c, a, b, s.m, s.n, s.k)
		for i := range c {
			if c[i] != want[i] {
				t.Fatalf("shape %+v element %d: got %d want %d", s, i, c[i], want[i])
			}
		}
	}
}

func TestGemmInt8NTWorstCaseNoOverflow(t *testing.T) {
	// All-(-127) codes at a large k: the accumulator reaches k*127*127,
	// the magnitude MaxGemmInt8K is sized against.
	k := 4096
	a := make([]int8, k)
	b := make([]int8, k)
	for i := range a {
		a[i] = -127
		b[i] = -127
	}
	c := make([]int32, 1)
	GemmInt8NT(c, a, b, 1, 1, k)
	if want := int32(k) * 127 * 127; c[0] != want {
		t.Fatalf("worst-case accumulation: got %d want %d", c[0], want)
	}
}

func TestGemmInt8NTZeroDims(t *testing.T) {
	GemmInt8NT(nil, nil, nil, 0, 0, 0)
	GemmInt8NT(nil, nil, nil, 0, 3, 0)
}

func TestGemmInt8NTPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("dims", func() {
		GemmInt8NT(make([]int32, 4), make([]int8, 3), make([]int8, 4), 2, 2, 2)
	})
	mustPanic("maxk", func() {
		k := MaxGemmInt8K + 16
		GemmInt8NT(make([]int32, 1), make([]int8, k), make([]int8, k), 1, 1, k)
	})
}

func TestQuantizeInt8Rounding(t *testing.T) {
	src := []float64{0, 0.4, 0.5, 0.6, 1.5, 2.5, -0.5, -1.5, -2.5, 126.4, 126.5, 127.4,
		127.6, 300, -300, math.NaN()}
	want := []int8{0, 0, 0, 1, 2, 2, 0, -2, -2, 126, 126, 127,
		127, 127, -127, -127} // ties to even; clamp at ±127; NaN -> -127
	dst := make([]int8, len(src))
	QuantizeInt8(dst, src, 1)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("QuantizeInt8(%g): got %d want %d", src[i], dst[i], want[i])
		}
	}
}

func TestQuantizeRowInt8(t *testing.T) {
	x := []float64{-2, 0.5, 1, 0}
	dst := make([]int8, KPad16(len(x)))
	for i := range dst {
		dst[i] = 99 // stale codes must be overwritten, padding zeroed
	}
	scale := QuantizeRowInt8(dst, x)
	if want := 2.0 / 127; scale != want {
		t.Fatalf("scale = %g, want %g", scale, want)
	}
	inv := 127 / 2.0
	for i, v := range x {
		want := int8(math.RoundToEven(v * inv))
		if dst[i] != want {
			t.Fatalf("code[%d] = %d, want %d", i, dst[i], want)
		}
	}
	if dst[0] != -127 {
		t.Fatalf("max-magnitude element must map to ±127, got %d", dst[0])
	}
	for i := len(x); i < len(dst); i++ {
		if dst[i] != 0 {
			t.Fatalf("padding code %d = %d, want 0", i, dst[i])
		}
	}
}

func TestQuantizeRowInt8ZeroAndNonFinite(t *testing.T) {
	for name, row := range map[string][]float64{
		"zero": {0, 0, 0},
		"inf":  {1, math.Inf(1), 2},
		"nan":  {math.NaN(), math.NaN()}, // all-NaN row: maxAbs stays 0
		"none": {},
	} {
		dst := []int8{9, 9, 9, 9}
		if s := QuantizeRowInt8(dst, row); s != 0 {
			t.Fatalf("%s row: scale = %g, want 0", name, s)
		}
		for i, c := range dst {
			if c != 0 {
				t.Fatalf("%s row: code %d = %d, want 0", name, i, c)
			}
		}
	}
}

func TestQuantizeRowRoundTripBound(t *testing.T) {
	// Symmetric per-row quantization bounds the per-element error by
	// scale/2 = maxAbs/254.
	src := rng.New(22)
	for trial := 0; trial < 50; trial++ {
		n := 1 + src.Intn(200)
		x := make([]float64, n)
		for i := range x {
			x[i] = src.Uniform(-5, 5)
		}
		dst := make([]int8, KPad16(n))
		scale := QuantizeRowInt8(dst, x)
		for i, v := range x {
			back := scale * float64(dst[i])
			if math.Abs(back-v) > scale/2*(1+1e-12) {
				t.Fatalf("trial %d element %d: |%g - %g| exceeds scale/2 = %g",
					trial, i, back, v, scale/2)
			}
		}
	}
}

func TestIm2ColInt8MatchesFloatLowering(t *testing.T) {
	// The padded int8 lowering must place the same window codes as the
	// float Im2Col places window values, with zero padding after fanIn.
	inLen, inCh, kernel, stride := 11, 2, 3, 2
	outLen := (inLen-kernel)/stride + 1
	fanIn := kernel * inCh
	rowStride := KPad16(fanIn)

	x := make([]int8, inLen*inCh)
	for i := range x {
		x[i] = int8(i - 10)
	}
	dst := make([]int8, outLen*rowStride)
	for i := range dst {
		dst[i] = 99
	}
	Im2ColInt8(dst, x, inLen, inCh, kernel, stride, outLen, rowStride)

	xf := make([]float64, len(x))
	for i, c := range x {
		xf[i] = float64(c)
	}
	ref := make([]float64, outLen*fanIn)
	Im2Col(ref, xf, inLen, inCh, kernel, stride, outLen)

	for p := 0; p < outLen; p++ {
		for i := 0; i < rowStride; i++ {
			got := dst[p*rowStride+i]
			var want int8
			if i < fanIn {
				want = int8(ref[p*fanIn+i])
			}
			if got != want {
				t.Fatalf("row %d col %d: got %d want %d", p, i, got, want)
			}
		}
	}
}

func TestIm2ColInt8Panics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("stride below fan-in", func() {
		Im2ColInt8(make([]int8, 8), make([]int8, 8), 8, 1, 4, 1, 2, 3)
	})
	mustPanic("window overrun", func() {
		Im2ColInt8(make([]int8, 12), make([]int8, 8), 8, 1, 4, 3, 3, 4)
	})
}
