//go:build amd64

#include "textflag.h"

// int32 clamp bounds for the symmetric int8 range [-127, 127].
DATA int8Hi<>+0(SB)/4, $127
DATA int8Hi<>+4(SB)/4, $127
DATA int8Hi<>+8(SB)/4, $127
DATA int8Hi<>+12(SB)/4, $127
GLOBL int8Hi<>(SB), RODATA, $16

DATA int8Lo<>+0(SB)/4, $-127
DATA int8Lo<>+4(SB)/4, $-127
DATA int8Lo<>+8(SB)/4, $-127
DATA int8Lo<>+12(SB)/4, $-127
GLOBL int8Lo<>(SB), RODATA, $16

// sign mask clear for |x| on float64 lanes.
DATA absMask<>+0(SB)/8, $0x7fffffffffffffff
GLOBL absMask<>(SB), RODATA, $8

// func gemmInt8NTAVX2(c []int32, a, b []int8, m, n, k int)
//
// C += A·Bᵀ, row-major int8 A (m x k) and B (n x k) into int32 C (m x n).
// k must be a positive multiple of 16: each step sign-extends 16 codes of
// the A row and of four B rows (VPMOVSXBW), multiplies pairwise into
// int32 partials (VPMADDWD; max per lane 2·127·127 = 32258, no overflow),
// and accumulates (VPADDD). Every product lands in an int32 lane exactly,
// so the horizontal reduction order is irrelevant and the result matches
// gemmInt8NTGeneric bit for bit.
TEXT ·gemmInt8NTAVX2(SB), NOSPLIT, $0-96
	MOVQ c_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), BX
	MOVQ m+72(FP), R9
	MOVQ n+80(FP), R10
	MOVQ k+88(FP), R11

	XORQ R12, R12 // i

iloop:
	CMPQ R12, R9
	JGE  gdone

	// AX = &a[i*k], persists across the j loop (CX/DX are scratch).
	MOVQ  R12, AX
	IMULQ R11, AX
	ADDQ  SI, AX

	XORQ R14, R14 // j

jloop:
	LEAQ 3(R14), CX
	CMPQ CX, R10
	JGE  jtail // fewer than 4 columns left

	// Four B row pointers for j .. j+3.
	MOVQ  R14, R13
	IMULQ R11, R13
	ADDQ  BX, R13
	LEAQ  (R13)(R11*1), R15
	LEAQ  (R15)(R11*1), R8
	LEAQ  (R8)(R11*1), DX

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3

	XORQ CX, CX // k offset (bytes == codes)

kloop4:
	VPMOVSXBW (AX)(CX*1), Y4 // 16 codes of the A row

	VPMOVSXBW (R13)(CX*1), Y5
	VPMADDWD  Y5, Y4, Y5
	VPADDD    Y5, Y0, Y0

	VPMOVSXBW (R15)(CX*1), Y6
	VPMADDWD  Y6, Y4, Y6
	VPADDD    Y6, Y1, Y1

	VPMOVSXBW (R8)(CX*1), Y7
	VPMADDWD  Y7, Y4, Y7
	VPADDD    Y7, Y2, Y2

	VPMOVSXBW (DX)(CX*1), Y8
	VPMADDWD  Y8, Y4, Y8
	VPADDD    Y8, Y3, Y3

	ADDQ $16, CX
	CMPQ CX, R11
	JL   kloop4

	// CX = byte offset of c[i*n + j]; DX becomes hsum scratch.
	MOVQ  R12, CX
	IMULQ R10, CX
	ADDQ  R14, CX
	SHLQ  $2, CX

	// Horizontal int32 sum of Y0..Y3 into c[i*n+j .. +3].
	VEXTRACTI128 $1, Y0, X5
	VPADDD       X5, X0, X0
	VPSHUFD      $0x4E, X0, X5
	VPADDD       X5, X0, X0
	VPSHUFD      $0xB1, X0, X5
	VPADDD       X5, X0, X0
	MOVQ         X0, DX
	ADDL         DX, (DI)(CX*1)

	VEXTRACTI128 $1, Y1, X5
	VPADDD       X5, X1, X1
	VPSHUFD      $0x4E, X1, X5
	VPADDD       X5, X1, X1
	VPSHUFD      $0xB1, X1, X5
	VPADDD       X5, X1, X1
	MOVQ         X1, DX
	ADDL         DX, 4(DI)(CX*1)

	VEXTRACTI128 $1, Y2, X5
	VPADDD       X5, X2, X2
	VPSHUFD      $0x4E, X2, X5
	VPADDD       X5, X2, X2
	VPSHUFD      $0xB1, X2, X5
	VPADDD       X5, X2, X2
	MOVQ         X2, DX
	ADDL         DX, 8(DI)(CX*1)

	VEXTRACTI128 $1, Y3, X5
	VPADDD       X5, X3, X3
	VPSHUFD      $0x4E, X3, X5
	VPADDD       X5, X3, X3
	VPSHUFD      $0xB1, X3, X5
	VPADDD       X5, X3, X3
	MOVQ         X3, DX
	ADDL         DX, 12(DI)(CX*1)

	ADDQ $4, R14
	JMP  jloop

jtail:
	CMPQ R14, R10
	JGE  inext

	// Single B row.
	MOVQ  R14, R13
	IMULQ R11, R13
	ADDQ  BX, R13

	VPXOR Y0, Y0, Y0
	XORQ  CX, CX

kloop1:
	VPMOVSXBW (AX)(CX*1), Y4
	VPMOVSXBW (R13)(CX*1), Y5
	VPMADDWD  Y5, Y4, Y5
	VPADDD    Y5, Y0, Y0
	ADDQ      $16, CX
	CMPQ      CX, R11
	JL        kloop1

	MOVQ  R12, CX
	IMULQ R10, CX
	ADDQ  R14, CX
	SHLQ  $2, CX

	VEXTRACTI128 $1, Y0, X5
	VPADDD       X5, X0, X0
	VPSHUFD      $0x4E, X0, X5
	VPADDD       X5, X0, X0
	VPSHUFD      $0xB1, X0, X5
	VPADDD       X5, X0, X0
	MOVQ         X0, DX
	ADDL         DX, (DI)(CX*1)

	INCQ R14
	JMP  jtail

inext:
	INCQ R12
	JMP  iloop

gdone:
	VZEROUPPER
	RET

// func quantizeInt8AVX2(dst []int8, src []float64, inv float64)
//
// dst[i] = clamp(rne(src[i]*inv), -127, 127), four elements per
// iteration. VCVTPD2DQ rounds to nearest-even under the default MXCSR
// (matching math.RoundToEven); out-of-int32-range and NaN products
// convert to the 0x80000000 indefinite, which the min-then-max clamp maps
// to -127 exactly like the scalar kernel's NaN branch. len(dst) ==
// len(src) must be a multiple of 4.
TEXT ·quantizeInt8AVX2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	VBROADCASTSD inv+48(FP), Y1
	VMOVDQU int8Hi<>(SB), X2
	VMOVDQU int8Lo<>(SB), X3

qloop:
	TESTQ CX, CX
	JLE   qdone
	VMOVUPD    (SI), Y4
	VMULPD     Y1, Y4, Y4
	VCVTPD2DQY Y4, X4      // 4 x float64 -> 4 x int32, round-to-nearest-even
	VPMINSD    X2, X4, X4  // min(v, 127); indefinite stays INT_MIN
	VPMAXSD    X3, X4, X4  // max(v, -127)
	VPACKSSDW  X4, X4, X4  // 4 x int32 -> 4 x int16 (low 64 bits)
	VPACKSSWB  X4, X4, X4  // -> 4 x int8 (low 32 bits)
	MOVQ       X4, AX
	MOVL       AX, (DI)
	ADDQ $32, SI
	ADDQ $4, DI
	SUBQ $4, CX
	JMP  qloop

qdone:
	VZEROUPPER
	RET

// func maxAbsAVX2(x []float64) float64
//
// max(|x[i]|) over finite inputs, four lanes per iteration (NaN handling
// is unspecified: VMAXPD propagates the second operand on NaN, so callers
// must pre-screen). len(x) must be a positive multiple of 4.
TEXT ·maxAbsAVX2(SB), NOSPLIT, $0-32
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	VBROADCASTSD absMask<>(SB), Y1

mloop:
	TESTQ CX, CX
	JLE   mdone
	VANDPD (SI), Y1, Y2
	VMAXPD Y2, Y0, Y0
	ADDQ   $32, SI
	SUBQ   $4, CX
	JMP    mloop

mdone:
	VEXTRACTF128 $1, Y0, X1
	VMAXPD       X1, X0, X0
	VUNPCKHPD    X0, X0, X1
	VMAXSD       X1, X0, X0
	VZEROUPPER
	MOVSD X0, ret+24(FP)
	RET

// func cpuid(op, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
