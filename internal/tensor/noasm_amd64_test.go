//go:build amd64

package tensor

import (
	"math"
	"testing"

	"specml/internal/rng"
)

// The int8 path contracts bit-identity between the AVX2 kernels and the
// scalar fallbacks (the NOASM CI job runs the same tests down the scalar
// path). These tests pin the two implementations against each other
// directly on an AVX2 host.

func TestGemmInt8AsmMatchesGeneric(t *testing.T) {
	if !hasAVX2 {
		t.Skip("no AVX2 (or SPECML_NOASM set)")
	}
	src := rng.New(31)
	for _, s := range []struct{ m, n, k int }{
		{1, 1, 16}, {2, 3, 16}, {5, 4, 32}, {7, 9, 48}, {3, 21, 160}, {32, 8, 512},
	} {
		a := make([]int8, s.m*s.k)
		b := make([]int8, s.n*s.k)
		fillCodes(src, a)
		fillCodes(src, b)
		got := make([]int32, s.m*s.n)
		want := make([]int32, s.m*s.n)
		for i := range got {
			got[i] = int32(src.Intn(9) - 4)
			want[i] = got[i]
		}
		gemmInt8NTAVX2(got, a, b, s.m, s.n, s.k)
		gemmInt8NTGeneric(want, a, b, s.m, s.n, s.k)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shape %+v element %d: asm %d vs generic %d", s, i, got[i], want[i])
			}
		}
	}
}

func TestQuantizeInt8AsmMatchesGeneric(t *testing.T) {
	if !hasAVX2 {
		t.Skip("no AVX2 (or SPECML_NOASM set)")
	}
	src := rng.New(32)
	for trial := 0; trial < 20; trial++ {
		n := 4 * (1 + src.Intn(64))
		x := make([]float64, n)
		for i := range x {
			switch src.Intn(10) {
			case 0:
				x[i] = 0
			case 1:
				x[i] = math.NaN()
			case 2:
				x[i] = src.Uniform(-1000, 1000) // forces both clamp sides
			default:
				x[i] = src.Uniform(-130, 130)
			}
		}
		inv := src.Uniform(0.1, 2)
		got := make([]int8, n)
		want := make([]int8, n)
		quantizeInt8AVX2(got, x, inv)
		quantizeInt8Generic(want, x, inv)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d element %d (x=%g inv=%g): asm %d vs generic %d",
					trial, i, x[i], inv, got[i], want[i])
			}
		}
	}
}

func TestMaxAbsAsmMatchesGeneric(t *testing.T) {
	if !hasAVX2 {
		t.Skip("no AVX2 (or SPECML_NOASM set)")
	}
	src := rng.New(33)
	for trial := 0; trial < 20; trial++ {
		n := 4 * (1 + src.Intn(64))
		x := make([]float64, n)
		for i := range x {
			x[i] = src.Uniform(-50, 50)
		}
		got := maxAbsAVX2(x)
		want := maxAbsGeneric(x)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: asm %g vs generic %g", trial, got, want)
		}
	}
}
