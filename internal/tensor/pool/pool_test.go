package pool

import "testing"

func TestGrowReusesCapacity(t *testing.T) {
	b := Grow(nil, 10)
	if len(b) != 10 || cap(b) != 16 {
		t.Fatalf("Grow(nil, 10): len=%d cap=%d, want 10/16", len(b), cap(b))
	}
	b[0] = 42
	c := Grow(b, 5)
	if len(c) != 5 || &c[0] != &b[0] {
		t.Fatalf("Grow within capacity must reslice the same array")
	}
	d := Grow(c, 16)
	if &d[0] != &b[0] {
		t.Fatalf("Grow to exactly cap must not reallocate")
	}
	e := Grow(d, 17)
	if len(e) != 17 || cap(e) != 32 {
		t.Fatalf("Grow past cap: len=%d cap=%d, want 17/32", len(e), cap(e))
	}
}

func TestGrowInts(t *testing.T) {
	b := GrowInts(nil, 3)
	if len(b) != 3 || cap(b) != 4 {
		t.Fatalf("GrowInts(nil, 3): len=%d cap=%d", len(b), cap(b))
	}
	if c := GrowInts(b, 4); &c[0] != &b[0] {
		t.Fatalf("GrowInts within capacity must reuse the array")
	}
}

func TestGrow8(t *testing.T) {
	b := Grow8(nil, 10)
	if len(b) != 10 || cap(b) != 16 {
		t.Fatalf("Grow8(nil, 10): len=%d cap=%d", len(b), cap(b))
	}
	if c := Grow8(b, 16); &c[0] != &b[0] {
		t.Fatalf("Grow8 within capacity must reuse the array")
	}
	if d := Grow8(b, 17); cap(d) != 32 {
		t.Fatalf("Grow8 past cap: cap=%d, want 32", cap(d))
	}
}

func TestGrow32(t *testing.T) {
	b := Grow32(nil, 5)
	if len(b) != 5 || cap(b) != 8 {
		t.Fatalf("Grow32(nil, 5): len=%d cap=%d", len(b), cap(b))
	}
	if c := Grow32(b, 8); &c[0] != &b[0] {
		t.Fatalf("Grow32 within capacity must reuse the array")
	}
}

func TestPoolRecycles(t *testing.T) {
	var p Pool
	a := p.Get(100)
	if len(a) != 100 || cap(a) != 128 {
		t.Fatalf("Get(100): len=%d cap=%d", len(a), cap(a))
	}
	a[0] = 7
	p.Put(a)
	b := p.Get(120) // same power-of-two bucket
	if cap(b) != 128 || &b[:1][0] != &a[:1][0] {
		t.Fatalf("Get after Put must return the recycled array")
	}
}

func TestPoolDropsOddCapacities(t *testing.T) {
	var p Pool
	odd := make([]float64, 100) // cap 100: not a power of two
	p.Put(odd)
	got := p.Get(100)
	if cap(got) == 100 {
		t.Fatalf("pool must not retain non-power-of-two capacities")
	}
}

func TestPoolGetZero(t *testing.T) {
	var p Pool
	if b := p.Get(0); b != nil {
		t.Fatalf("Get(0) = %v, want nil", b)
	}
}
