// Package pool provides reusable float64 scratch buffers for the batched
// compute kernels: a grow-in-place helper for single-owner caches and a
// concurrency-safe free list for buffers that cross call boundaries. Both
// exist so the steady-state batched forward/backward path performs zero
// heap allocation — buffers are allocated once at the high-water batch
// size and recycled forever after.
package pool

import "sync"

// Grow returns a slice of length n backed by buf's array when its capacity
// suffices, allocating (with headroom) only when it does not. Contents are
// unspecified; callers overwrite or zero as needed. This is the idiom for
// layer-owned batch caches: `l.buf = pool.Grow(l.buf, n*width)` allocates
// on the first batch and on batch-size growth, then never again.
func Grow(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n, roundUp(n))
}

// GrowInts is Grow for index scratch (pooling argmax buffers).
func GrowInts(buf []int, n int) []int {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int, n, roundUp(n))
}

// Grow8 is Grow for int8 code panels (quantized activations and packed
// weights in the int8 inference path).
func Grow8(buf []int8, n int) []int8 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int8, n, roundUp(n))
}

// Grow32 is Grow for int32 accumulator scratch (quantized GEMM outputs).
func Grow32(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int32, n, roundUp(n))
}

// roundUp pads an allocation to the next power of two so a slowly growing
// batch size settles after O(log n) allocations instead of reallocating on
// every new high-water mark.
func roundUp(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// Pool is a size-bucketed free list of []float64 scratch buffers, safe for
// concurrent use. Get/Put round capacities to powers of two, so a server
// whose batch sizes fluctuate between flushes reuses the same few arrays
// instead of churning the heap.
type Pool struct {
	mu      sync.Mutex
	buckets map[int][][]float64
}

// Get returns a slice of length n with unspecified contents.
func (p *Pool) Get(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := roundUp(n)
	p.mu.Lock()
	if bufs := p.buckets[c]; len(bufs) > 0 {
		b := bufs[len(bufs)-1]
		p.buckets[c] = bufs[:len(bufs)-1]
		p.mu.Unlock()
		return b[:n]
	}
	p.mu.Unlock()
	return make([]float64, n, c)
}

// Put returns a buffer obtained from Get to the pool. Putting a foreign
// slice is allowed as long as its capacity is a power of two; other
// capacities are dropped on the floor rather than corrupting a bucket.
func (p *Pool) Put(b []float64) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	p.mu.Lock()
	if p.buckets == nil {
		p.buckets = make(map[int][][]float64)
	}
	if len(p.buckets[c]) < 8 { // bound per-bucket retention
		p.buckets[c] = append(p.buckets[c], b[:0])
	}
	p.mu.Unlock()
}
