package tensor

import (
	"math"
	"testing"

	"specml/internal/rng"
)

// refGemm is the per-element reference all three GEMM variants must match
// bit for bit: one scalar accumulator per C element, starting from the
// incoming C value, adding products in ascending k order, with an optional
// zero-skip on the A operand (the per-sample kernels skip zero scales).
func refGemm(c, a, b []float64, m, n, k int, transA, transB, skipZero bool) {
	at := func(i, p int) float64 {
		if transA {
			return a[p*m+i]
		}
		return a[i*k+p]
	}
	bt := func(p, j int) float64 {
		if transB {
			return b[j*k+p]
		}
		return b[p*n+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := c[i*n+j]
			for p := 0; p < k; p++ {
				av := at(i, p)
				if skipZero && av == 0 {
					continue
				}
				acc += av * bt(p, j)
			}
			c[i*n+j] = acc
		}
	}
}

// fillRand fills s from src with ~20% exact zeros so the zero-skip branches
// are exercised.
func fillRand(src *rng.Source, s []float64) {
	for i := range s {
		if src.Float64() < 0.2 {
			s[i] = 0
		} else {
			s[i] = src.Uniform(-2, 2)
		}
	}
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d differs bitwise: %g vs %g", name, i, got[i], want[i])
		}
	}
}

var gemmShapes = []struct{ m, n, k int }{
	{1, 1, 1}, {1, 7, 3}, {3, 1, 5}, {4, 4, 4},
	{7, 5, 9}, {32, 8, 199}, {13, 21, 300}, // k > gemmKC exercises k-tiling
	{5, 17, 257},
}

func TestGemmMatchesOrderedReference(t *testing.T) {
	src := rng.New(11)
	for _, s := range gemmShapes {
		a := make([]float64, s.m*s.k)
		b := make([]float64, s.k*s.n)
		c := make([]float64, s.m*s.n)
		fillRand(src, a)
		fillRand(src, b)
		fillRand(src, c)
		want := append([]float64(nil), c...)
		refGemm(want, a, b, s.m, s.n, s.k, false, false, true)
		Gemm(c, a, b, s.m, s.n, s.k)
		bitsEqual(t, "Gemm", c, want)
	}
}

func TestGemmNTMatchesOrderedReference(t *testing.T) {
	src := rng.New(12)
	for _, s := range gemmShapes {
		a := make([]float64, s.m*s.k)
		b := make([]float64, s.n*s.k)
		c := make([]float64, s.m*s.n)
		fillRand(src, a)
		fillRand(src, b)
		fillRand(src, c) // non-zero C checks the bias-prefill contract
		want := append([]float64(nil), c...)
		refGemm(want, a, b, s.m, s.n, s.k, false, true, false)
		GemmNT(c, a, b, s.m, s.n, s.k)
		bitsEqual(t, "GemmNT", c, want)
	}
}

func TestGemmTNMatchesOrderedReference(t *testing.T) {
	src := rng.New(13)
	for _, s := range gemmShapes {
		a := make([]float64, s.k*s.m)
		b := make([]float64, s.k*s.n)
		c := make([]float64, s.m*s.n)
		fillRand(src, a)
		fillRand(src, b)
		fillRand(src, c)
		want := append([]float64(nil), c...)
		refGemm(want, a, b, s.m, s.n, s.k, true, false, true)
		GemmTN(c, a, b, s.m, s.n, s.k)
		bitsEqual(t, "GemmTN", c, want)
	}
}

func TestMatMulToMatchesMatMul(t *testing.T) {
	src := rng.New(14)
	a := New(9, 17)
	b := New(17, 5)
	fillRand(src, a.Data)
	fillRand(src, b.Data)
	want := MatMul(a, b)
	dst := New(9, 5)
	dst.Fill(3.5) // MatMulTo must overwrite, not accumulate
	got := MatMulTo(dst, a, b)
	if got != dst {
		t.Fatalf("MatMulTo did not return its destination")
	}
	bitsEqual(t, "MatMulTo", got.Data, want.Data)
}

func TestGemmZeroDims(t *testing.T) {
	// Degenerate shapes must be no-ops, not panics.
	Gemm(nil, nil, nil, 0, 0, 0)
	GemmNT(nil, nil, nil, 0, 3, 0)
	GemmTN(nil, nil, nil, 2, 0, 0)
}

func TestGemmDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on mismatched dims")
		}
	}()
	Gemm(make([]float64, 4), make([]float64, 3), make([]float64, 4), 2, 2, 2)
}

func TestIm2ColWindows(t *testing.T) {
	// inLen=6, inCh=2, kernel=3, stride=2 -> outLen=2; windows overlap-free.
	inLen, inCh, kernel, stride := 6, 2, 3, 2
	outLen := (inLen-kernel)/stride + 1
	x := make([]float64, inLen*inCh)
	for i := range x {
		x[i] = float64(i + 1)
	}
	dst := make([]float64, outLen*kernel*inCh)
	Im2Col(dst, x, inLen, inCh, kernel, stride, outLen)
	for p := 0; p < outLen; p++ {
		for i := 0; i < kernel*inCh; i++ {
			want := x[p*stride*inCh+i]
			if got := dst[p*kernel*inCh+i]; got != want {
				t.Fatalf("window %d element %d: got %g want %g", p, i, got, want)
			}
		}
	}
}

func TestIm2ColGemmEqualsDirectConv(t *testing.T) {
	// The documented lowering: conv(x, w) == GemmNT(im2col(x), w), bitwise,
	// for overlapping windows too.
	src := rng.New(15)
	inLen, inCh, kernel, stride, filters := 25, 1, 5, 2, 4
	outLen := (inLen-kernel)/stride + 1
	fanIn := kernel * inCh
	x := make([]float64, inLen*inCh)
	w := make([]float64, filters*fanIn)
	bias := make([]float64, filters)
	fillRand(src, x)
	fillRand(src, w)
	fillRand(src, bias)

	direct := make([]float64, outLen*filters)
	for p := 0; p < outLen; p++ {
		win := x[p*stride*inCh : p*stride*inCh+fanIn]
		for f := 0; f < filters; f++ {
			acc := bias[f]
			for i, v := range win {
				acc += w[f*fanIn+i] * v
			}
			direct[p*filters+f] = acc
		}
	}

	cols := make([]float64, outLen*fanIn)
	Im2Col(cols, x, inLen, inCh, kernel, stride, outLen)
	lowered := make([]float64, outLen*filters)
	for p := 0; p < outLen; p++ {
		copy(lowered[p*filters:(p+1)*filters], bias)
	}
	GemmNT(lowered, cols, w, outLen, filters, fanIn)
	bitsEqual(t, "im2col+GemmNT", lowered, direct)
}

func TestCol2ImAdjoint(t *testing.T) {
	// <u, Im2Col(x)> == <Col2Im(u), x> characterizes the adjoint.
	src := rng.New(16)
	inLen, inCh, kernel, stride := 19, 3, 4, 2
	outLen := (inLen-kernel)/stride + 1
	fanIn := kernel * inCh
	x := make([]float64, inLen*inCh)
	u := make([]float64, outLen*fanIn)
	fillRand(src, x)
	fillRand(src, u)

	cols := make([]float64, outLen*fanIn)
	Im2Col(cols, x, inLen, inCh, kernel, stride, outLen)
	lhs := Dot(u, cols)

	back := make([]float64, inLen*inCh)
	Col2Im(back, u, inLen, inCh, kernel, stride, outLen)
	rhs := Dot(back, x)

	if math.Abs(lhs-rhs) > 1e-12*(1+math.Abs(lhs)) {
		t.Fatalf("adjoint identity violated: %g vs %g", lhs, rhs)
	}
}

func TestCol2ImAccumulates(t *testing.T) {
	inLen, inCh, kernel, stride := 4, 1, 2, 1
	outLen := 3
	cols := []float64{1, 2, 10, 20, 100, 200}
	dst := []float64{1, 1, 1, 1} // not cleared: Col2Im adds
	Col2Im(dst, cols, inLen, inCh, kernel, stride, outLen)
	want := []float64{2, 13, 121, 201}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
}
