package tensor

import (
	"testing"

	"specml/internal/rng"
)

// Benchmark shapes mirror the serve hot path: a coalesced batch of 32
// spectra through the demo dense stack (199 -> 32), and the Table-1 MS
// convolution lowered by im2col (batch 32, 976 positions x 25-wide kernel
// against 20 filters collapses to one 31232 x 25 x 20 GEMM).

func benchMats(m, n, k int) (a, b, c []float64) {
	src := rng.New(99)
	a = make([]float64, m*k)
	b = make([]float64, k*n)
	c = make([]float64, m*n)
	fillRand(src, a)
	fillRand(src, b)
	return
}

func BenchmarkGemm32x199x32(b *testing.B) {
	m, n, k := 32, 32, 199
	am, bm, cm := benchMats(m, n, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(cm, am, bm, m, n, k)
	}
}

func BenchmarkGemmNTConvLowered(b *testing.B) {
	// batch 32 x outLen 976 rows, fanIn 25, 20 filters (MS CNN layer 1).
	m, n, k := 32*976, 20, 25
	am := make([]float64, m*k)
	bm := make([]float64, n*k)
	cm := make([]float64, m*n)
	src := rng.New(100)
	fillRand(src, am)
	fillRand(src, bm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmNT(cm, am, bm, m, n, k)
	}
}

func BenchmarkGemmTNWeightGrad(b *testing.B) {
	// dW += dYᵀ·X for the demo dense layer over a batch of 32.
	m, n, k := 32, 199, 32
	am := make([]float64, k*m)
	bm := make([]float64, k*n)
	cm := make([]float64, m*n)
	src := rng.New(101)
	fillRand(src, am)
	fillRand(src, bm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmTN(cm, am, bm, m, n, k)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	inLen, inCh, kernel, stride := 2000, 1, 25, 2
	outLen := (inLen-kernel)/stride + 1
	x := make([]float64, inLen*inCh)
	src := rng.New(102)
	fillRand(src, x)
	dst := make([]float64, outLen*kernel*inCh)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(dst, x, inLen, inCh, kernel, stride, outLen)
	}
}
