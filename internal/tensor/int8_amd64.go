//go:build amd64

package tensor

import "os"

// cpuid and xgetbv are implemented in int8_amd64.s (assembly symbols are
// package-scoped, so the detection pair from internal/spectrum/render is
// duplicated here rather than exported).
func cpuid(op, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// gemmInt8NTAVX2 computes C += A·Bᵀ over int8 panels with int32
// accumulation, 16 codes per VPMADDWD step. k must be a positive multiple
// of 16 (KPad16 layout). Bit-identical to gemmInt8NTGeneric: integer sums
// are exact, so blocking order cannot change the result.
func gemmInt8NTAVX2(c []int32, a, b []int8, m, n, k int)

// quantizeInt8AVX2 writes clamp(rne(src[i]*inv)) int8 codes, four per
// iteration via VCVTPD2DQ (round-to-nearest-even under the default MXCSR,
// matching math.RoundToEven in the scalar kernel). len(dst) == len(src)
// must be a multiple of 4.
func quantizeInt8AVX2(dst []int8, src []float64, inv float64)

// maxAbsAVX2 returns max(|x[i]|) over finite inputs, four lanes per
// iteration. len(x) must be a positive multiple of 4.
func maxAbsAVX2(x []float64) float64

// SPECML_NOASM (any non-empty value) forces the portable scalar kernels
// even on AVX2-capable hosts, so CI can prove the scalar/SIMD bit-identity
// contract by running the same tests down both dispatch paths.
var hasAVX2 = os.Getenv("SPECML_NOASM") == "" && detectAVX2()

// detectAVX2 reports whether the CPU and OS support AVX2 (CPUID feature
// flag plus OSXSAVE/XGETBV confirmation that YMM state is preserved).
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	if eax, _ := xgetbv(); eax&6 != 6 {
		return false
	}
	_, ebx, _, _ := cpuid(7, 0)
	return ebx&(1<<5) != 0
}

func gemmInt8NT(c []int32, a, b []int8, m, n, k int) {
	if hasAVX2 && k >= 16 && k%16 == 0 {
		gemmInt8NTAVX2(c, a, b, m, n, k)
		return
	}
	gemmInt8NTGeneric(c, a, b, m, n, k)
}

func quantizeInt8(dst []int8, src []float64, inv float64) {
	n := len(src)
	if hasAVX2 && n >= 8 {
		n4 := n &^ 3
		quantizeInt8AVX2(dst[:n4], src[:n4], inv)
		quantizeInt8Generic(dst[n4:], src[n4:], inv)
		return
	}
	quantizeInt8Generic(dst, src, inv)
}

func maxAbs(x []float64) float64 {
	n := len(x)
	if hasAVX2 && n >= 8 {
		n4 := n &^ 3
		m := maxAbsAVX2(x[:n4])
		if t := maxAbsGeneric(x[n4:]); t > m {
			m = t
		}
		return m
	}
	return maxAbsGeneric(x)
}
