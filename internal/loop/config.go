// Package loop closes the paper's Industry-4.0 control loop at fleet
// scale: it drives a fleet of simulated instruments (msim virtual mass
// spectrometers measuring reactor-style mixtures) through specfront-routed
// monitor sessions, watches the residual between each device's served
// predictions and its ground-truth composition with an EWMA+CUSUM drift
// detector, and — when a device trips — runs the automated recalibration
// pipeline end to end: re-characterize the drifted instrument, regenerate a
// streaming corpus from the new estimate, retrain with the checkpointed
// FitSource path, publish the weights and hot-reload the whole fleet.
//
// Everything downstream of the HTTP boundary follows the split-rng
// contract: a run is a pure function of (Config, drift schedule), so equal
// seeds produce bit-identical trip steps, retrained model bytes and reload
// counts regardless of wave parallelism.
package loop

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"specml/internal/core"
	"specml/internal/msim"
	"specml/internal/spectrum"
)

// AxisSpec is a JSON-friendly spectrum.Axis.
type AxisSpec struct {
	Start float64 `json:"start"`
	Step  float64 `json:"step"`
	N     int     `json:"n"`
}

// Axis converts the spec, or the canonical msim axis when nil.
func (a *AxisSpec) Axis() (spectrum.Axis, error) {
	if a == nil {
		return msim.DefaultAxis(), nil
	}
	return spectrum.NewAxis(a.Start, a.Step, a.N)
}

// DriftSpec injects one deterministic fault into the fleet: the schedule is
// attached to a single device, every other device stays calibrated.
type DriftSpec struct {
	// Device is the index of the drifting device; -1 disables drift.
	Device int `json:"device"`
	// Schedule is the per-scan degradation applied to that device.
	Schedule msim.DriftSchedule `json:"schedule"`
}

// DetectorSpec configures the per-device drift detectors. Either give
// explicit Threshold/Trip levels, or set Calibrate > 0 to estimate each
// device's healthy residual from its first Calibrate steps and derive the
// levels as multiples of it — the estimate is a pure function of the
// residual stream, so auto-calibration keeps the loop deterministic.
type DetectorSpec struct {
	core.DriftConfig
	// Calibrate is the number of initial steps used to measure the healthy
	// residual level (0 = use Threshold/Trip exactly as given).
	Calibrate int `json:"calibrate,omitempty"`
	// ThresholdFactor scales the measured healthy mean into the detector's
	// allowance (default 3).
	ThresholdFactor float64 `json:"threshold_factor,omitempty"`
	// TripFactor scales the measured healthy mean into the trip level
	// (default 12).
	TripFactor float64 `json:"trip_factor,omitempty"`
}

// RecalSpec parameterizes the recalibration pipeline that runs on a trip.
type RecalSpec struct {
	// Samples is the streamed corpus size.
	Samples int `json:"samples"`
	// RefSamples is the per-mixture reference measurement count for the
	// re-characterization (default 3).
	RefSamples int `json:"ref_samples,omitempty"`
	// Epochs and Batch are the FitSource training recipe (defaults 2, 32).
	Epochs int `json:"epochs,omitempty"`
	Batch  int `json:"batch,omitempty"`
	// TrainFrac splits the corpus indices into train/validation
	// (default 0.85).
	TrainFrac float64 `json:"train_frac,omitempty"`
	// AxisScale refines the training axis by an integer factor (>1 changes
	// the published model's input width, which is what forces the 409
	// stale-width path on requests queued across the reload; default 1).
	AxisScale int `json:"axis_scale,omitempty"`
	// Topology selects the network: "table1" (the paper's 1D-CNN, default)
	// or "dense" (a small dense net for fast CI loops).
	Topology string `json:"topology,omitempty"`
	// Hidden is the dense topology's hidden width (default 32).
	Hidden int `json:"hidden,omitempty"`
	// Workers is the training worker count (0 = all cores; bit-identical
	// for any value).
	Workers int `json:"workers,omitempty"`
	// Checkpoint, when set, makes the retrain resumable: FitSource writes
	// the file after every epoch and resumes from it when it exists.
	Checkpoint string `json:"checkpoint,omitempty"`
	// MaxRecals caps how many recalibrations one run may fire (default 1).
	MaxRecals int `json:"max_recals,omitempty"`
}

// Config is one closed-loop run.
type Config struct {
	// Devices is the fleet size; Steps the number of measurement waves.
	Devices int `json:"devices"`
	Steps   int `json:"steps"`
	// Seed drives every stochastic component through split-rng children.
	Seed uint64 `json:"seed"`
	// Model is the served model name the monitor sessions pin to and the
	// recalibration republishes.
	Model string `json:"model"`
	// Workers bounds wave parallelism (0 = one worker per device).
	Workers int `json:"workers,omitempty"`
	// Alpha is the Dirichlet concentration of the per-device mixture draws
	// (default 1.0).
	Alpha float64 `json:"alpha,omitempty"`
	// Smoothing is the server-side monitor EMA factor in [0,1).
	Smoothing float64 `json:"smoothing,omitempty"`
	// Task is the compound list (default msim.DefaultTask).
	Task []string `json:"task,omitempty"`
	// Axis is the measurement axis (default msim.DefaultAxis).
	Axis *AxisSpec `json:"axis,omitempty"`
	// Churn is the number of concurrent predict workers hammering the fleet
	// during the publish+reload window, to exercise the 409 stale-width
	// path under load (0 disables).
	Churn int `json:"churn,omitempty"`

	Drift    DriftSpec    `json:"drift"`
	Detector DetectorSpec `json:"detector"`
	Recal    RecalSpec    `json:"recal"`
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = c.Devices
	}
	// An all-zero schedule means "no drift": point the fault injector at no
	// device so configs that omit the drift block entirely stay valid.
	if c.Drift.Schedule == (msim.DriftSchedule{}) {
		c.Drift.Device = -1
	}
	if c.Alpha == 0 {
		c.Alpha = 1.0
	}
	if c.Detector.ThresholdFactor == 0 {
		c.Detector.ThresholdFactor = 3
	}
	if c.Detector.TripFactor == 0 {
		c.Detector.TripFactor = 12
	}
	if c.Recal.RefSamples <= 0 {
		c.Recal.RefSamples = 3
	}
	if c.Recal.Epochs <= 0 {
		c.Recal.Epochs = 2
	}
	if c.Recal.Batch <= 0 {
		c.Recal.Batch = 32
	}
	if c.Recal.TrainFrac == 0 {
		c.Recal.TrainFrac = 0.85
	}
	if c.Recal.AxisScale <= 0 {
		c.Recal.AxisScale = 1
	}
	if c.Recal.Topology == "" {
		c.Recal.Topology = "table1"
	}
	if c.Recal.Hidden <= 0 {
		c.Recal.Hidden = 32
	}
	if c.Recal.MaxRecals <= 0 {
		c.Recal.MaxRecals = 1
	}
	return c
}

// Validate reports whether the configuration is runnable. It is called on
// the defaulted config by New and ParseConfig.
func (c Config) Validate() error {
	if c.Devices <= 0 {
		return fmt.Errorf("loop: need a positive device count, got %d", c.Devices)
	}
	if c.Steps <= 0 {
		return fmt.Errorf("loop: need a positive step count, got %d", c.Steps)
	}
	if c.Model == "" {
		return fmt.Errorf("loop: model name must not be empty")
	}
	if math.IsNaN(c.Alpha) || math.IsInf(c.Alpha, 0) || c.Alpha <= 0 {
		return fmt.Errorf("loop: alpha must be finite and positive, got %g", c.Alpha)
	}
	if math.IsNaN(c.Smoothing) || c.Smoothing < 0 || c.Smoothing >= 1 {
		return fmt.Errorf("loop: smoothing must be in [0,1), got %g", c.Smoothing)
	}
	if c.Churn < 0 {
		return fmt.Errorf("loop: churn must be non-negative, got %d", c.Churn)
	}
	if _, err := c.Axis.Axis(); err != nil {
		return fmt.Errorf("loop: axis: %w", err)
	}
	if c.Drift.Device >= c.Devices {
		return fmt.Errorf("loop: drift device %d out of range (%d devices)", c.Drift.Device, c.Devices)
	}
	if c.Drift.Device >= 0 {
		if err := c.Drift.Schedule.Validate(); err != nil {
			return err
		}
	}
	d := c.Detector
	if d.Calibrate < 0 {
		return fmt.Errorf("loop: detector calibrate must be non-negative, got %d", d.Calibrate)
	}
	if d.Calibrate > 0 {
		if math.IsNaN(d.ThresholdFactor) || d.ThresholdFactor <= 0 ||
			math.IsNaN(d.TripFactor) || d.TripFactor <= 0 {
			return fmt.Errorf("loop: detector factors must be positive")
		}
		// Threshold/Trip are derived after calibration; validate the rest
		// with placeholder levels.
		probe := d.DriftConfig
		probe.Threshold, probe.Trip = 1, 1
		if err := probe.Validate(); err != nil {
			return err
		}
	} else if err := d.DriftConfig.Validate(); err != nil {
		return err
	}
	r := c.Recal
	if r.Samples <= 0 {
		return fmt.Errorf("loop: recal needs a positive corpus size, got %d", r.Samples)
	}
	if r.Samples < 8 {
		return fmt.Errorf("loop: recal corpus of %d is too small to split", r.Samples)
	}
	if math.IsNaN(r.TrainFrac) || r.TrainFrac <= 0 || r.TrainFrac >= 1 {
		return fmt.Errorf("loop: recal train fraction must be in (0,1), got %g", r.TrainFrac)
	}
	if r.Topology != "table1" && r.Topology != "dense" {
		return fmt.Errorf("loop: recal topology must be table1 or dense, got %q", r.Topology)
	}
	if len(c.Task) == 1 {
		return fmt.Errorf("loop: a task needs at least two compounds")
	}
	for _, name := range c.Task {
		if _, err := msim.ByName(name); err != nil {
			return err
		}
	}
	return nil
}

// ParseConfig strictly decodes and validates a JSON config: unknown fields,
// trailing garbage and unrunnable values are errors, never panics — this is
// the decoder the fuzz smoke job drives.
func ParseConfig(data []byte) (Config, error) {
	var c Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("loop: decoding config: %w", err)
	}
	if dec.More() {
		return Config{}, fmt.Errorf("loop: trailing data after config")
	}
	c = c.withDefaults()
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Report is the machine-readable outcome of one closed-loop run — what the
// e2e gate asserts on.
type Report struct {
	Devices int `json:"devices"`
	Steps   int `json:"steps"`
	// TripStep is the 1-based loop step of the first trip (-1 = none);
	// TripDevice the device that tripped.
	TripStep   int `json:"trip_step"`
	TripDevice int `json:"trip_device"`
	// Recals and Reloads count recalibrations fired and fleet reloads
	// driven.
	Recals  int `json:"recals"`
	Reloads int `json:"reloads"`
	// ModelSHA256 is the hex digest of the retrained model bytes (empty
	// when no recalibration fired) — the determinism pin.
	ModelSHA256 string `json:"model_sha256,omitempty"`
	// Conflicts counts 409 stale-width responses observed; ConflictRetries
	// the retries that resolved them. Both are excluded from the
	// determinism contract (they depend on scheduler timing).
	Conflicts       int `json:"conflicts_409"`
	ConflictRetries int `json:"conflict_retries"`
	// Server5xx counts 5xx responses surfaced to the loop (the e2e gate
	// requires 0).
	Server5xx int `json:"server_5xx"`
	// ResidualAtTrip is the tripping device's smoothed residual at the trip
	// step; FinalResidual its smoothed residual at the end of the run, and
	// Threshold its (possibly auto-calibrated) allowance. BelowThreshold
	// reports FinalResidual < Threshold — drift detected, repaired and
	// verified gone.
	ResidualAtTrip float64 `json:"residual_at_trip,omitempty"`
	FinalResidual  float64 `json:"final_residual"`
	Threshold      float64 `json:"threshold"`
	BelowThreshold bool    `json:"below_threshold"`
}

// ParseReport strictly decodes a Report (the e2e harness' half of the
// contract; fuzzed alongside ParseConfig).
func ParseReport(data []byte) (Report, error) {
	var r Report
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Report{}, fmt.Errorf("loop: decoding report: %w", err)
	}
	if dec.More() {
		return Report{}, fmt.Errorf("loop: trailing data after report")
	}
	if r.Devices < 0 || r.Steps < 0 || r.Recals < 0 || r.Reloads < 0 ||
		r.Conflicts < 0 || r.ConflictRetries < 0 || r.Server5xx < 0 {
		return Report{}, fmt.Errorf("loop: report counts must be non-negative")
	}
	if r.TripStep < -1 || r.TripDevice < -1 {
		return Report{}, fmt.Errorf("loop: report trip fields must be >= -1")
	}
	for _, v := range []float64{r.ResidualAtTrip, r.FinalResidual, r.Threshold} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Report{}, fmt.Errorf("loop: report residuals must be finite")
		}
	}
	return r, nil
}
