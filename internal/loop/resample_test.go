package loop

import (
	"math"
	"testing"

	"specml/internal/dataset"
	"specml/internal/spectrum"
)

func TestResampleSourceMatchesServingDomain(t *testing.T) {
	from, err := spectrum.NewAxis(10, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	to, err := spectrum.NewAxis(10, 0.25, 17)
	if err != nil {
		t.Fatal(err)
	}
	x := [][]float64{
		{0, 1, 4, 1, 0, -2, 3, 0.5, 0},
		{2, 2, 2, 2, 2, 2, 2, 2, 2},
	}
	y := [][]float64{{0.7, 0.3}, {0.1, 0.9}}
	base, err := dataset.NewInMemory(x, y)
	if err != nil {
		t.Fatal(err)
	}
	src, err := newResampleSource(base, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if n := src.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	xw, yw := src.Widths()
	if xw != 17 || yw != 2 {
		t.Fatalf("Widths = (%d, %d), want (17, 2)", xw, yw)
	}

	got, err := dataset.Materialize(src, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		// The reference transform: resample, clip, sum-normalize — the same
		// chain the serving layer applies to a live request for this model.
		want := make([]float64, to.N)
		raw := spectrum.Spectrum{Axis: from, Intensities: append([]float64(nil), x[i]...)}
		if err := raw.ResampleInto(want, to); err != nil {
			t.Fatal(err)
		}
		for j, v := range want {
			if v < 0 {
				want[j] = 0
			}
		}
		ws := spectrum.Spectrum{Axis: to, Intensities: want}
		ws.NormalizeSum()
		for j := range want {
			if math.Abs(got.X[i][j]-want[j]) > 1e-15 {
				t.Fatalf("sample %d feature %d = %g, want %g", i, j, got.X[i][j], want[j])
			}
		}
		for j := range y[i] {
			if got.Y[i][j] != y[i][j] {
				t.Fatalf("sample %d label %d = %g, want %g (labels must pass through)", i, j, got.Y[i][j], y[i][j])
			}
		}
	}

	// Normalized output rows must sum to 1.
	for i := range got.X {
		sum := 0.0
		for _, v := range got.X[i] {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("sample %d sums to %g after normalization", i, sum)
		}
	}

	// Width mismatch between base and device axis is rejected.
	if _, err := newResampleSource(base, to, from); err == nil {
		t.Fatal("base width 9 accepted against a 17-point device axis")
	}
}
