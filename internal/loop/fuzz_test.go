package loop

import (
	"encoding/json"
	"testing"
)

// FuzzDriftConfig feeds arbitrary bytes through the strict loop decoders:
// malformed configs and reports must come back as errors, never as panics
// or as silently-accepted garbage the fleet driver would then act on.
func FuzzDriftConfig(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"devices":3,"steps":10,"seed":7,"model":"fleet"}`))
	f.Add([]byte(`{"devices":3,"steps":10,"model":"fleet",` +
		`"drift":{"device":1,"schedule":{"start_scan":8,"ramp_scans":4,"mass_shift":0.7}},` +
		`"detector":{"smoothing":0.5,"warmup":2,"calibrate":6},` +
		`"recal":{"samples":48,"axis_scale":2,"topology":"dense"}}`))
	f.Add([]byte(`{"devices":1e99,"steps":-4}`))
	f.Add([]byte(`{"trip_step":-5}`))
	f.Add([]byte(`{"devices":2,"steps":5,"model":"m","detector":{"smoothing":"NaN"}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"devices":2} trailing`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if cfg, err := ParseConfig(data); err == nil {
			// Accepted configs must round-trip through their own validator:
			// re-encoding and re-parsing cannot flip them to invalid.
			out, merr := json.Marshal(cfg)
			if merr != nil {
				t.Fatalf("accepted config does not re-marshal: %v", merr)
			}
			if _, rerr := ParseConfig(out); rerr != nil {
				t.Fatalf("accepted config re-parses as invalid: %v\n%s", rerr, out)
			}
		}
		if rep, err := ParseReport(data); err == nil {
			out, merr := json.Marshal(rep)
			if merr != nil {
				t.Fatalf("accepted report does not re-marshal: %v", merr)
			}
			if _, rerr := ParseReport(out); rerr != nil {
				t.Fatalf("accepted report re-parses as invalid: %v\n%s", rerr, out)
			}
		}
	})
}
