package loop

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Client is the loop's view of the serving fleet — in production an HTTP
// front door, in tests anything that honours the same contract. Step and
// Predict may be called concurrently; the rest is called from the loop
// goroutine only.
type Client interface {
	// CreateSession opens a monitor session pinned to model and returns
	// the session ID the fleet minted.
	CreateSession(model string, smoothing float64, names []string) (string, error)
	// Step feeds one measured spectrum into a session and returns the
	// model's prediction.
	Step(session string, axisStart, axisStep float64, intensities []float64) ([]float64, error)
	// Predict is the sessionless churn path; the prediction is discarded.
	Predict(model string, axisStart, axisStep float64, intensities []float64) error
	// Publish uploads retrained weights fleet-wide under name.
	Publish(name string, data []byte) error
	// Reload asks every backend to re-scan its model directory.
	Reload() error
	// Counts reports the fault accounting accumulated so far.
	Counts() ClientCounts
}

// ClientCounts is the loop's fault ledger. Conflict counts depend on
// scheduler timing and are deliberately outside the determinism contract;
// Server5xx must stay zero for a run to pass the e2e gate.
type ClientCounts struct {
	Conflicts       int `json:"conflicts_409"`
	ConflictRetries int `json:"conflict_retries"`
	Server5xx       int `json:"server_5xx"`
}

// HTTPClient drives a specfront (or bare specserve) base URL. A 409 on the
// hot paths means the request raced a model reload — stale width or an
// orphaned registry snapshot — and is retried with backoff, which is the
// documented client contract for hot reloads.
type HTTPClient struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration

	conflicts       atomic.Int64
	conflictRetries atomic.Int64
	server5xx       atomic.Int64
}

// NewHTTPClient wraps baseURL (no trailing slash needed). A nil hc uses a
// dedicated client with a 30s timeout.
func NewHTTPClient(baseURL string, hc *http.Client) *HTTPClient {
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &HTTPClient{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      hc,
		retries: 5,
		backoff: 20 * time.Millisecond,
	}
}

type httpError struct {
	status int
	body   string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("loop: fleet returned %d: %s", e.status, e.body)
}

// do issues one request and decodes a JSON body into out (when non-nil).
func (c *HTTPClient) do(method, path string, body []byte, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode >= 500 {
		c.server5xx.Add(1)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, &httpError{status: resp.StatusCode, body: string(bytes.TrimSpace(data))}
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("loop: decoding %s %s response: %w", method, path, err)
		}
	}
	return resp.StatusCode, nil
}

// doRetry409 runs do and retries conflict responses: a 409 on a hot path
// means the request was preprocessed for a model width that a concurrent
// publish/reload replaced, and the retry re-preprocesses against the new
// snapshot.
func (c *HTTPClient) doRetry409(method, path string, body []byte, out any) error {
	var last error
	for attempt := 0; ; attempt++ {
		status, err := c.do(method, path, body, out)
		if status != http.StatusConflict {
			return err
		}
		c.conflicts.Add(1)
		last = err
		if attempt >= c.retries {
			return last
		}
		c.conflictRetries.Add(1)
		time.Sleep(c.backoff << uint(attempt))
	}
}

func (c *HTTPClient) CreateSession(model string, smoothing float64, names []string) (string, error) {
	body, err := json.Marshal(map[string]any{
		"model": model, "smoothing": smoothing, "names": names,
	})
	if err != nil {
		return "", err
	}
	var resp struct {
		Session string `json:"session"`
	}
	if _, err := c.do(http.MethodPost, "/v1/monitor", body, &resp); err != nil {
		return "", err
	}
	if resp.Session == "" {
		return "", fmt.Errorf("loop: fleet returned an empty session ID")
	}
	return resp.Session, nil
}

// stepBody builds the shared predict/step payload. The axis is always sent
// so the fleet can resample onto whatever input width the current model
// has — this is what lets a width-changing recalibration serve old devices.
func stepBody(model string, axisStart, axisStep float64, intensities []float64) ([]byte, error) {
	m := map[string]any{
		"axis":        map[string]float64{"start": axisStart, "step": axisStep},
		"intensities": intensities,
	}
	if model != "" {
		m["model"] = model
	}
	return json.Marshal(m)
}

func (c *HTTPClient) Step(session string, axisStart, axisStep float64, intensities []float64) ([]float64, error) {
	body, err := stepBody("", axisStart, axisStep, intensities)
	if err != nil {
		return nil, err
	}
	var resp struct {
		Prediction []float64 `json:"prediction"`
	}
	if err := c.doRetry409(http.MethodPost, "/v1/monitor/"+session+"/step", body, &resp); err != nil {
		return nil, err
	}
	return resp.Prediction, nil
}

func (c *HTTPClient) Predict(model string, axisStart, axisStep float64, intensities []float64) error {
	body, err := stepBody(model, axisStart, axisStep, intensities)
	if err != nil {
		return err
	}
	return c.doRetry409(http.MethodPost, "/v1/predict", body, nil)
}

func (c *HTTPClient) Publish(name string, data []byte) error {
	_, err := c.do(http.MethodPut, "/v1/models/"+name, data, nil)
	return err
}

func (c *HTTPClient) Reload() error {
	_, err := c.do(http.MethodPost, "/v1/models/reload", nil, nil)
	return err
}

func (c *HTTPClient) Counts() ClientCounts {
	return ClientCounts{
		Conflicts:       int(c.conflicts.Load()),
		ConflictRetries: int(c.conflictRetries.Load()),
		Server5xx:       int(c.server5xx.Load()),
	}
}
