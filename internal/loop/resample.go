package loop

import (
	"fmt"
	"sync"

	"specml/internal/dataset"
	"specml/internal/spectrum"
)

// resampleSource trains a refined-width model in the serving input domain.
//
// When a recalibration publishes at a refined axis (AxisScale > 1), the
// fleet's instruments keep sending spectra on their native axis; the serving
// layer linearly resamples every request onto the model's width before the
// forward pass. A model trained on natively-rendered refined spectra would
// therefore see a different input distribution at inference time than it saw
// during training — interpolated peaks, not rendered ones. resampleSource
// closes that gap: the base source renders on the device axis, and every
// feature row is pushed through the same resample → clip → sum-normalize
// chain serve applies to live requests.
type resampleSource struct {
	base     dataset.Source
	from, to spectrum.Axis
	yw       int
	scratch  sync.Pool // *[][]float64 rows at the base width
}

// newResampleSource wraps base (rendering at from.N) so it serves rows at
// to.N, resampled the way the serving layer resamples requests.
func newResampleSource(base dataset.Source, from, to spectrum.Axis) (*resampleSource, error) {
	xw, yw := base.Widths()
	if xw != from.N {
		return nil, fmt.Errorf("loop: resample source width %d does not match the device axis (%d points)", xw, from.N)
	}
	if to.N < 2 {
		return nil, fmt.Errorf("loop: refined axis needs at least 2 points, got %d", to.N)
	}
	s := &resampleSource{base: base, from: from, to: to, yw: yw}
	s.scratch.New = func() any {
		rows := make([][]float64, 0, 64)
		return &rows
	}
	return s, nil
}

// Len implements dataset.Source.
func (s *resampleSource) Len() int { return s.base.Len() }

// Widths implements dataset.Source.
func (s *resampleSource) Widths() (int, int) { return s.to.N, s.yw }

// Batch implements dataset.Source: render at the device width, then resample
// each row onto the refined axis, clip negative noise and sum-normalize —
// exactly the transform serve applies to a live request for this model.
func (s *resampleSource) Batch(epoch int, indices []int, dstX, dstY [][]float64) error {
	rp := s.scratch.Get().(*[][]float64)
	defer s.scratch.Put(rp)
	rows := *rp
	for len(rows) < len(indices) {
		rows = append(rows, make([]float64, s.from.N))
	}
	*rp = rows
	if err := s.base.Batch(epoch, indices, rows[:len(indices)], dstY); err != nil {
		return err
	}
	for j := range indices {
		raw := spectrum.Spectrum{Axis: s.from, Intensities: rows[j]}
		if err := raw.ResampleInto(dstX[j], s.to); err != nil {
			return err
		}
		for i, v := range dstX[j] {
			if v < 0 {
				dstX[j][i] = 0
			}
		}
		out := spectrum.Spectrum{Axis: s.to, Intensities: dstX[j]}
		out.NormalizeSum()
	}
	return nil
}
