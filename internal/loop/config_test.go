package loop

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseConfig(t *testing.T) {
	good := `{"devices":3,"steps":10,"seed":7,"model":"fleet",
		"detector":{"smoothing":0.5,"threshold":0.05,"trip":0.2,"warmup":2},
		"recal":{"samples":48}}`
	cfg, err := ParseConfig([]byte(good))
	if err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if cfg.Workers != 3 || cfg.Alpha != 1.0 || cfg.Recal.Topology != "table1" {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.Drift.Device != -1 {
		t.Fatalf("omitted drift block should disable the fault injector, got device %d", cfg.Drift.Device)
	}

	bad := map[string]string{
		"unknown field":   `{"devices":3,"steps":10,"model":"m","bogus":1,"recal":{"samples":48},"detector":{"smoothing":0.5,"threshold":1,"trip":1}}`,
		"trailing data":   `{"devices":3,"steps":10,"model":"m","recal":{"samples":48},"detector":{"smoothing":0.5,"threshold":1,"trip":1}} extra`,
		"no model":        `{"devices":3,"steps":10,"recal":{"samples":48},"detector":{"smoothing":0.5,"threshold":1,"trip":1}}`,
		"tiny corpus":     `{"devices":3,"steps":10,"model":"m","recal":{"samples":4},"detector":{"smoothing":0.5,"threshold":1,"trip":1}}`,
		"bad topology":    `{"devices":3,"steps":10,"model":"m","recal":{"samples":48,"topology":"transformer"},"detector":{"smoothing":0.5,"threshold":1,"trip":1}}`,
		"unknown gas":     `{"devices":3,"steps":10,"model":"m","task":["N2","Kryptonite"],"recal":{"samples":48},"detector":{"smoothing":0.5,"threshold":1,"trip":1}}`,
		"one compound":    `{"devices":3,"steps":10,"model":"m","task":["N2"],"recal":{"samples":48},"detector":{"smoothing":0.5,"threshold":1,"trip":1}}`,
		"drift oob":       `{"devices":3,"steps":10,"model":"m","drift":{"device":3,"schedule":{"start_scan":5,"mass_shift":0.5}},"recal":{"samples":48},"detector":{"smoothing":0.5,"threshold":1,"trip":1}}`,
		"not json":        `devices=3`,
		"wrong container": `[1,2]`,
	}
	for name, in := range bad {
		if _, err := ParseConfig([]byte(in)); err == nil {
			t.Errorf("%s: accepted %s", name, in)
		}
	}
}

func TestParseReport(t *testing.T) {
	rep := Report{Devices: 3, Steps: 10, TripStep: 4, TripDevice: 1, Recals: 1, Reloads: 1}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back != rep {
		t.Fatalf("report did not round-trip: %+v vs %+v", back, rep)
	}
	for name, in := range map[string]string{
		"negative count": `{"devices":-1}`,
		"bad trip":       `{"trip_step":-2}`,
		"unknown field":  `{"surprise":1}`,
		"trailing":       `{} {}`,
	} {
		if _, err := ParseReport([]byte(in)); err == nil {
			t.Errorf("%s: accepted %s", name, in)
		}
	}
}

// TestHTTPClientRetries409 pins the stale-width retry contract: conflicts
// are retried with backoff and the fault ledger records both the conflicts
// and the retries that resolved them; 5xx responses are counted, not
// retried.
func TestHTTPClientRetries409(t *testing.T) {
	var predicts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasPrefix(r.URL.Path, "/v1/predict"):
			predicts++
			if predicts <= 2 {
				w.WriteHeader(http.StatusConflict)
				return
			}
			w.Write([]byte(`{"model":"m","fractions":[1]}`))
		case strings.HasSuffix(r.URL.Path, "/step"):
			w.WriteHeader(http.StatusInternalServerError)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer ts.Close()

	c := NewHTTPClient(ts.URL+"/", nil)
	c.backoff = time.Microsecond
	if err := c.Predict("m", 1, 0.5, []float64{1, 2}); err != nil {
		t.Fatalf("predict should succeed after retries: %v", err)
	}
	if _, err := c.Step("s", 1, 0.5, []float64{1, 2}); err == nil {
		t.Fatal("5xx step should fail")
	}
	counts := c.Counts()
	if counts.Conflicts != 2 || counts.ConflictRetries != 2 {
		t.Fatalf("conflict ledger wrong: %+v", counts)
	}
	if counts.Server5xx != 1 {
		t.Fatalf("5xx ledger wrong: %+v", counts)
	}
}

// TestHTTPClientGivesUpOn409 verifies a persistent conflict eventually
// surfaces as an error instead of retrying forever.
func TestHTTPClientGivesUpOn409(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
	}))
	defer ts.Close()
	c := NewHTTPClient(ts.URL, nil)
	c.retries = 2
	c.backoff = time.Microsecond
	if err := c.Predict("m", 1, 0.5, []float64{1, 2}); err == nil {
		t.Fatal("persistent 409 should surface")
	}
	if counts := c.Counts(); counts.Conflicts != 3 || counts.ConflictRetries != 2 {
		t.Fatalf("ledger after give-up: %+v", counts)
	}
}
