package loop

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"specml/internal/core"
	"specml/internal/dataset"
	"specml/internal/msim"
	"specml/internal/nn"
	"specml/internal/obs"
	"specml/internal/parallel"
	"specml/internal/rng"
	"specml/internal/spectrum"
	"specml/internal/toolflow"
)

// device is one simulated instrument in the fleet. Each device is mutated
// only by its own goroutine within a wave and by the loop goroutine between
// waves, so no locking is needed.
type device struct {
	vi      *msim.VirtualInstrument
	fracs   *rng.Source
	session string
	det     *core.DriftDetector

	// calibration accumulators, used only while det == nil
	calSum   float64
	calCount int

	threshold float64 // resolved detector allowance (for the report)
	handled   bool    // this device's trip already triggered a recal
	stepErr   error
}

// Loop drives the closed recalibration loop of one fleet run.
type Loop struct {
	// Metrics optionally receives loop telemetry; Verbose progress lines.
	// Both must be set before Run.
	Metrics *obs.Registry
	Verbose io.Writer

	cfg     Config
	client  Client
	sim     *msim.LineSimulator
	axis    spectrum.Axis
	devices []*device
	mx      *loopMetrics

	// pre-drawn recalibration seeds (split-rng contract: drawn from the
	// root stream in a fixed order at construction, not at trip time)
	recalSeed, splitSeed, trainSeed uint64

	report Report
}

// New validates the configuration and builds the fleet. The client is the
// serving side — an HTTPClient against a specfront URL in production.
//
// Seed derivation is part of the determinism contract: the root stream
// seeds each device's instrument and mixture streams in device order, then
// the three recalibration seeds, so every stochastic consumer has its own
// independent child stream whose identity does not depend on timing.
func New(cfg Config, client Client) (*Loop, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if client == nil {
		return nil, fmt.Errorf("loop: client must not be nil")
	}
	task := cfg.Task
	if len(task) == 0 {
		task = msim.DefaultTask
	}
	comps, err := msim.Compounds(task...)
	if err != nil {
		return nil, err
	}
	sim, err := msim.NewLineSimulator(comps)
	if err != nil {
		return nil, err
	}
	axis, err := cfg.Axis.Axis()
	if err != nil {
		return nil, err
	}
	l := &Loop{cfg: cfg, client: client, sim: sim, axis: axis}
	root := rng.New(cfg.Seed)
	l.devices = make([]*device, cfg.Devices)
	for i := range l.devices {
		viSeed := root.Uint64()
		fracSeed := root.Uint64()
		vi := msim.NewVirtualInstrument(nil, viSeed)
		vi.NewSession()
		if cfg.Drift.Device == i {
			sched := cfg.Drift.Schedule
			if err := vi.SetDriftSchedule(&sched); err != nil {
				return nil, err
			}
		}
		d := &device{vi: vi, fracs: rng.New(fracSeed)}
		if cfg.Detector.Calibrate == 0 {
			det, err := core.NewDriftDetector(cfg.Detector.DriftConfig)
			if err != nil {
				return nil, err
			}
			d.det = det
			d.threshold = cfg.Detector.Threshold
		}
		l.devices[i] = d
	}
	l.recalSeed = root.Uint64()
	l.splitSeed = root.Uint64()
	l.trainSeed = root.Uint64()
	return l, nil
}

func (l *Loop) logf(format string, args ...any) {
	if l.Verbose != nil {
		fmt.Fprintf(l.Verbose, format+"\n", args...)
	}
}

// Run executes the closed loop: open monitor sessions, step the fleet in
// waves, watch residuals, and on a detector trip run the recalibration
// pipeline (re-characterize → streamed retrain → publish → fleet reload).
// The returned Report is the e2e gate's input.
func (l *Loop) Run() (Report, error) {
	l.mx = newLoopMetrics(l.Metrics)
	l.report = Report{Devices: l.cfg.Devices, Steps: l.cfg.Steps, TripStep: -1, TripDevice: -1}
	for i, d := range l.devices {
		id, err := l.client.CreateSession(l.cfg.Model, l.cfg.Smoothing, l.sim.Names())
		if err != nil {
			return l.report, fmt.Errorf("loop: opening session for device %d: %w", i, err)
		}
		d.session = id
	}
	l.logf("loop: %d devices on sessions, %d steps", l.cfg.Devices, l.cfg.Steps)
	for step := 1; step <= l.cfg.Steps; step++ {
		if err := l.wave(step); err != nil {
			return l.finish(), err
		}
		for i, d := range l.devices {
			if d.det == nil || !d.det.Tripped() || d.handled {
				continue
			}
			d.handled = true
			inc(l.mx.trips)
			if l.report.TripStep < 0 {
				l.report.TripStep = step
				l.report.TripDevice = i
				l.report.ResidualAtTrip = d.det.EWMA()
			}
			l.logf("loop: device %d tripped at step %d (residual %.5f, allowance %.5f)",
				i, step, d.det.EWMA(), d.threshold)
			if l.report.Recals >= l.cfg.Recal.MaxRecals {
				l.logf("loop: recal budget exhausted, trip on device %d left standing", i)
				continue
			}
			if err := l.recalibrate(d); err != nil {
				return l.finish(), fmt.Errorf("loop: recalibrating after device %d tripped: %w", i, err)
			}
		}
	}
	return l.finish(), nil
}

// wave steps every device once, in parallel. Device state is partitioned
// per goroutine; the barrier at the end of parallel.For makes the
// subsequent trip arbitration deterministic.
func (l *Loop) wave(step int) error {
	err := parallel.For(l.cfg.Workers, len(l.devices), func(_, i int) error {
		d := l.devices[i]
		d.stepErr = l.stepDevice(d)
		return d.stepErr
	})
	if err != nil {
		for i, d := range l.devices {
			if d.stepErr != nil {
				return fmt.Errorf("loop: step %d device %d: %w", step, i, d.stepErr)
			}
		}
		return fmt.Errorf("loop: step %d: %w", step, err)
	}
	add(l.mx.steps, uint64(len(l.devices)))
	maxRes := 0.0
	for _, d := range l.devices {
		if d.det != nil && d.det.EWMA() > maxRes {
			maxRes = d.det.EWMA()
		}
	}
	setGauge(l.mx.maxResidual, maxRes)
	l.logf("loop: step %d max smoothed residual %.4f", step, maxRes)
	return nil
}

// stepDevice draws a mixture, measures it on the device's (possibly
// drifting) instrument, routes the spectrum through the fleet's monitor
// session, and feeds |prediction − ground truth| to the device's drift
// detector — auto-calibrating the detector's levels from the first
// Calibrate healthy steps when configured to.
func (l *Loop) stepDevice(d *device) error {
	fracs := l.sim.RandomFractions(d.fracs, l.cfg.Alpha)
	ls, err := l.sim.Mixture(fracs)
	if err != nil {
		return err
	}
	sp, err := d.vi.Measure(ls, l.axis)
	if err != nil {
		return err
	}
	pred, err := l.client.Step(d.session, l.axis.Start, l.axis.Step, sp.Intensities)
	if err != nil {
		return err
	}
	res, err := meanAbsResidual(pred, fracs)
	if err != nil {
		return err
	}
	if d.det == nil {
		d.calSum += res
		d.calCount++
		if d.calCount >= l.cfg.Detector.Calibrate {
			mean := d.calSum / float64(d.calCount)
			if mean <= 0 || math.IsNaN(mean) {
				return fmt.Errorf("loop: calibration produced a degenerate residual level %g", mean)
			}
			dc := l.cfg.Detector.DriftConfig
			dc.Threshold = l.cfg.Detector.ThresholdFactor * mean
			dc.Trip = l.cfg.Detector.TripFactor * mean
			det, err := core.NewDriftDetector(dc)
			if err != nil {
				return err
			}
			d.det = det
			d.threshold = dc.Threshold
		}
		return nil
	}
	_, err = d.det.Observe(res)
	return err
}

// meanAbsResidual mirrors core.DriftDetector.Step's residual definition so
// the calibration phase measures exactly what the detector will see.
func meanAbsResidual(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0, fmt.Errorf("loop: prediction width %d vs truth width %d", len(pred), len(truth))
	}
	sum := 0.0
	for i, p := range pred {
		v := math.Abs(p - truth[i])
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("loop: non-finite residual at output %d", i)
		}
		sum += v
	}
	return sum / float64(len(pred)), nil
}

// recalibrate runs the repair pipeline for a tripped device:
// re-characterize its drifted instrument from fresh reference measurements,
// stream a training corpus from the new estimate, retrain (checkpointed,
// resumable), publish the weights fleet-wide and hot-reload every backend —
// with churn workers hammering the predict path across the publish window
// so the 409 stale-width contract is exercised under load.
func (l *Loop) recalibrate(d *device) error {
	r := l.cfg.Recal
	l.logf("loop: re-characterizing drifted instrument (%d reference samples/mixture)", r.RefSamples)
	refs, err := msim.CollectReferences(d.vi, l.sim, l.axis,
		msim.StandardMixtures(l.sim.NumCompounds()), r.RefSamples)
	if err != nil {
		return err
	}
	ch := &msim.Characterizer{Task: l.sim.Compounds(), IgnitionMZ: msim.DefaultTrueModel().IgnitionMZ}
	est, err := ch.Estimate(refs)
	if err != nil {
		return err
	}
	// The corpus is always rendered on the device axis — that is what the
	// fleet's instruments send. With AxisScale > 1 the published model takes
	// a refined width, and the serving layer will resample every live
	// request onto it; resampleSource applies that exact transform to the
	// training rows so the retrained model is fit in the serving domain.
	trainAxis := l.axis
	stream, _, err := msim.NewTrainingStream(l.sim, est, l.axis, r.Samples, l.cfg.Alpha,
		l.recalSeed, msim.TrainingOptions{})
	if err != nil {
		return err
	}
	var src dataset.Source = stream
	if r.AxisScale > 1 {
		trainAxis, err = spectrum.NewAxis(l.axis.Start, l.axis.Step/float64(r.AxisScale),
			(l.axis.N-1)*r.AxisScale+1)
		if err != nil {
			return err
		}
		src, err = newResampleSource(stream, l.axis, trainAxis)
		if err != nil {
			return err
		}
	}
	trainIdx, valIdx, err := dataset.SplitIndices(r.Samples, r.TrainFrac, rng.New(l.splitSeed))
	if err != nil {
		return err
	}
	trainSrc, err := dataset.Select(src, trainIdx)
	if err != nil {
		return err
	}
	val, err := dataset.Materialize(src, valIdx)
	if err != nil {
		return err
	}
	spec, err := l.topologySpec(trainAxis.N)
	if err != nil {
		return err
	}
	l.logf("loop: retraining %s on %d streamed samples (width %d)", spec.Name, r.Samples, trainAxis.N)
	t0 := time.Now()
	runner := &toolflow.Runner{Verbose: l.Verbose}
	result, err := runner.TrainSource(spec, trainSrc, val)
	if err != nil {
		return err
	}
	observeSince(l.mx.retrainSec, t0)
	var buf bytes.Buffer
	if err := result.Model.Save(&buf); err != nil {
		return err
	}
	sum := sha256.Sum256(buf.Bytes())
	l.report.ModelSHA256 = hex.EncodeToString(sum[:])

	stop := l.startChurn()
	t1 := time.Now()
	pubErr := l.client.Publish(l.cfg.Model, buf.Bytes())
	var relErr error
	if pubErr == nil {
		relErr = l.client.Reload()
	}
	observeSince(l.mx.reloadSec, t1)
	stop()
	if pubErr != nil {
		return fmt.Errorf("loop: publishing %q: %w", l.cfg.Model, pubErr)
	}
	if relErr != nil {
		return fmt.Errorf("loop: reloading fleet: %w", relErr)
	}
	l.report.Recals++
	l.report.Reloads++
	inc(l.mx.recals)
	l.logf("loop: published %q (val MAE %.5f, sha256 %s) and reloaded the fleet",
		l.cfg.Model, result.ValMAE, l.report.ModelSHA256[:12])
	// Every detector's EWMA history was computed against the replaced
	// model; reset them (levels stay) so post-repair residuals are judged
	// fresh.
	for _, dev := range l.devices {
		if dev.det != nil {
			dev.det.Reset()
		}
		dev.handled = false
	}
	return nil
}

// topologySpec builds the retrain spec: the paper's Table-1 CNN, or a small
// dense net for fast CI loops.
func (l *Loop) topologySpec(inputLen int) (toolflow.TopologySpec, error) {
	r := l.cfg.Recal
	outputs := l.sim.NumCompounds()
	if r.Topology == "table1" {
		spec, err := toolflow.MSTable1Spec(inputLen, outputs, "relu", "linear", "softmax",
			r.Epochs, r.Batch, l.trainSeed)
		if err != nil {
			return toolflow.TopologySpec{}, err
		}
		spec.Workers = r.Workers
		spec.Checkpoint = r.Checkpoint
		return spec, nil
	}
	return toolflow.TopologySpec{
		Name: "loop-dense",
		Layers: []nn.LayerSpec{
			{Type: "dense", Out: r.Hidden},
			{Type: "activation", Activation: "relu"},
			{Type: "dense", Out: outputs},
			{Type: "softmax"},
		},
		Loss:       "mae",
		Optimizer:  "adam",
		LR:         0.001,
		Epochs:     r.Epochs,
		BatchSize:  r.Batch,
		Seed:       l.trainSeed,
		KeepBest:   true,
		InputShape: []int{inputLen},
		Workers:    r.Workers,
		Checkpoint: r.Checkpoint,
	}, nil
}

// startChurn launches the configured number of predict workers against the
// fleet and returns a stop function. Churn runs across the publish+reload
// window: its requests race the model swap, so stale-width 409s surface and
// the client's retry path proves they resolve.
//
// It does not return until every worker has completed one full round trip
// and has its second request in flight. The swap happens inside the PUT
// broadcast that follows, so without this handshake a fast publish can win
// the race outright and the stale-width path goes unexercised; with it, an
// old-width request is queued in the batcher while the swap lands (as long
// as the serve batch window exceeds the publish round trip).
func (l *Loop) startChurn() (stop func()) {
	if l.cfg.Churn <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	flat := make([]float64, l.axis.N)
	for i := range flat {
		flat[i] = 1
	}
	// Each worker deposits a token immediately before its first two sends.
	// Between a worker's two tokens lies a complete round trip, so draining
	// 2×Churn tokens proves the pipeline is live end to end and every
	// worker's second request is already racing the swap.
	ready := make(chan struct{}, 2*l.cfg.Churn)
	for w := 0; w < l.cfg.Churn; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; ; round++ {
				select {
				case <-done:
					return
				default:
				}
				if round < 2 {
					ready <- struct{}{}
				}
				// Errors feed the client's fault ledger; churn itself is
				// best-effort load.
				_ = l.client.Predict(l.cfg.Model, l.axis.Start, l.axis.Step, flat)
			}
		}()
	}
	for i := 0; i < 2*l.cfg.Churn; i++ {
		<-ready
	}
	return func() {
		close(done)
		wg.Wait()
	}
}

// finish folds the client's fault ledger and the tripping device's final
// residual into the report.
func (l *Loop) finish() Report {
	counts := l.client.Counts()
	l.report.Conflicts = counts.Conflicts
	l.report.ConflictRetries = counts.ConflictRetries
	l.report.Server5xx = counts.Server5xx
	add(l.mx.conflicts, uint64(counts.Conflicts))
	probe := 0
	if l.report.TripDevice >= 0 {
		probe = l.report.TripDevice
	}
	d := l.devices[probe]
	if d.det != nil {
		l.report.FinalResidual = d.det.EWMA()
		l.report.Threshold = d.threshold
		l.report.BelowThreshold = l.report.FinalResidual < l.report.Threshold
	}
	return l.report
}
