package loop

import (
	"time"

	"specml/internal/obs"
)

// loopMetrics instruments the closed loop itself: how often it steps, how
// often detectors trip, and how long the repair (retrain + fleet reload)
// takes when they do. All metrics are optional — a nil registry leaves the
// collectors nil and the helper methods below no-op.
type loopMetrics struct {
	steps       *obs.Counter
	trips       *obs.Counter
	recals      *obs.Counter
	conflicts   *obs.Counter
	retrainSec  *obs.Histogram
	reloadSec   *obs.Histogram
	maxResidual *obs.Gauge
}

func newLoopMetrics(reg *obs.Registry) *loopMetrics {
	if reg == nil {
		return &loopMetrics{}
	}
	m := &loopMetrics{}
	m.steps = reg.Counter("specml_loop_steps_total",
		"Device measurement steps driven through the fleet.")
	m.trips = reg.Counter("specml_loop_trips_total",
		"Drift detector trips observed across the fleet.")
	m.recals = reg.Counter("specml_loop_recals_total",
		"Recalibration pipelines (re-characterize, retrain, publish, reload) completed.")
	m.conflicts = reg.Counter("specml_loop_conflicts_total",
		"Stale-width 409 responses absorbed and retried during reload windows.")
	m.retrainSec = reg.Histogram("specml_loop_retrain_seconds",
		"Wall time of the streamed retrain on a drift trip.", obs.LatencyBuckets)
	m.reloadSec = reg.Histogram("specml_loop_reload_seconds",
		"Wall time of publish plus fleet-wide hot reload.", obs.LatencyBuckets)
	m.maxResidual = reg.Gauge("specml_loop_max_residual",
		"Largest smoothed prediction residual across the fleet after the last wave.")
	return m
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func add(c *obs.Counter, n uint64) {
	if c != nil {
		c.Add(n)
	}
}

func setGauge(g *obs.Gauge, v float64) {
	if g != nil {
		g.Set(v)
	}
}

func observeSince(h *obs.Histogram, t0 time.Time) {
	if h != nil {
		h.ObserveSince(t0)
	}
}
