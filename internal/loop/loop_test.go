package loop

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"specml/internal/core"
	"specml/internal/front"
	"specml/internal/msim"
	"specml/internal/nn"
	"specml/internal/serve"
	"specml/internal/toolflow"
)

func testContext(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 30*time.Second)
}

// loopTask is a small compound subset that keeps test training fast while
// leaving enough spectral structure for characterization to work.
var loopTask = []string{"N2", "O2", "CO2"}

// baselineBytes trains the fleet's starting model once per test binary: a
// small dense net on the undrifted default instrument over the canonical
// axis. Every test run seeds its backends with copies of these bytes, so
// repeated runs serve bit-identical predictions.
var (
	baselineOnce  sync.Once
	baselineModel []byte
	baselineErr   error
)

func baseline(t *testing.T) []byte {
	t.Helper()
	baselineOnce.Do(func() {
		comps, err := msim.Compounds(loopTask...)
		if err != nil {
			baselineErr = err
			return
		}
		sim, err := msim.NewLineSimulator(comps)
		if err != nil {
			baselineErr = err
			return
		}
		axis := msim.DefaultAxis()
		d, err := msim.GenerateTraining(sim, msim.DefaultTrueModel(), axis, 768, 1.0, 11, 4)
		if err != nil {
			baselineErr = err
			return
		}
		spec := toolflow.TopologySpec{
			Name: "loop-baseline",
			Layers: []nn.LayerSpec{
				{Type: "dense", Out: 48},
				{Type: "activation", Activation: "relu"},
				{Type: "dense", Out: sim.NumCompounds()},
				{Type: "softmax"},
			},
			Loss: "mae", Optimizer: "adam", LR: 0.003,
			Epochs: 30, BatchSize: 32, Seed: 11, KeepBest: true,
			InputShape: []int{axis.N}, Workers: 4,
		}
		res, err := (&toolflow.Runner{}).Train(spec, d, d)
		if err != nil {
			baselineErr = err
			return
		}
		var buf bytes.Buffer
		if err := res.Model.Save(&buf); err != nil {
			baselineErr = err
			return
		}
		baselineModel = buf.Bytes()
	})
	if baselineErr != nil {
		t.Fatalf("training baseline model: %v", baselineErr)
	}
	return baselineModel
}

// bootFleet stands up a specfront over n specserve backends, each holding
// the baseline model as "fleet" in its own model directory, and returns the
// front's base URL.
func bootFleet(t *testing.T, n int) string {
	t.Helper()
	model := baseline(t)
	urls := make([]string, n)
	for i := range urls {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "fleet.json"), model, 0o644); err != nil {
			t.Fatal(err)
		}
		srv, err := serve.New(serve.Config{
			ModelDir:       dir,
			BatchWindow:    2 * time.Millisecond,
			RequestTimeout: 30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		urls[i] = hs.URL
		t.Cleanup(func() {
			hs.Close()
			ctx, cancel := testContext(t)
			defer cancel()
			_ = srv.Close(ctx)
		})
	}
	fr, err := front.New(front.Config{
		Backends:       urls,
		HealthInterval: 50 * time.Millisecond,
		RetryBackoff:   time.Millisecond,
		SessionPrefix:  "loop",
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := httptest.NewServer(fr.Handler())
	t.Cleanup(func() {
		fs.Close()
		ctx, cancel := testContext(t)
		defer cancel()
		_ = fr.Close(ctx)
	})
	return fs.URL
}

// loopConfig is the shared closed-loop scenario: 3 devices, device 1 starts
// drifting hard at scan 8, detectors auto-calibrate on the first 6 healthy
// steps, and a trip retrains a dense model on a 2x-refined axis — so the
// recalibrated publish changes the served input width.
func loopConfig() Config {
	return Config{
		Devices: 3,
		Steps:   26,
		Seed:    7,
		Model:   "fleet",
		Workers: 3,
		Task:    loopTask,
		Drift: DriftSpec{
			Device: 1,
			Schedule: msim.DriftSchedule{
				StartScan:   8,
				RampScans:   4,
				MassShift:   0.7,
				GainTilt:    3.0,
				FWHMGrowth:  1.0,
				NoiseGrowth: 3.0,
			},
		},
		Detector: DetectorSpec{
			DriftConfig:     core.DriftConfig{Smoothing: 0.5, Warmup: 2},
			Calibrate:       6,
			ThresholdFactor: 1.8,
			TripFactor:      4,
		},
		Recal: RecalSpec{
			Samples:   48,
			Epochs:    2,
			Batch:     16,
			TrainFrac: 0.8,
			AxisScale: 2,
			Topology:  "dense",
			Hidden:    16,
			Workers:   2,
		},
		Churn: 2,
	}
}

func runOnce(t *testing.T) Report {
	t.Helper()
	base := bootFleet(t, 2)
	l, err := New(loopConfig(), NewHTTPClient(base, nil))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := l.Run()
	if err != nil {
		t.Fatalf("loop run: %v (report %+v)", err, rep)
	}
	return rep
}

// TestClosedLoopRecalibrates drives the full loop against a real
// front+2-backend fleet twice and checks both the closed-loop semantics
// (drift detected on the right device, exactly one re-characterize →
// retrain → publish → reload, no 5xx) and the determinism contract: equal
// seeds and drift schedules give bitwise-identical trip step, retrained
// model bytes and reload count.
func TestClosedLoopRecalibrates(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop integration test")
	}
	first := runOnce(t)
	if first.TripStep < 0 {
		t.Fatalf("forced drift never tripped: %+v", first)
	}
	if first.TripDevice != 1 {
		t.Fatalf("trip on device %d, want the drifted device 1 (%+v)", first.TripDevice, first)
	}
	if first.TripStep <= 8 {
		t.Fatalf("trip at step %d is before the drift even started", first.TripStep)
	}
	if first.Recals != 1 || first.Reloads != 1 {
		t.Fatalf("want exactly one recal and one reload, got %+v", first)
	}
	if len(first.ModelSHA256) != 64 {
		t.Fatalf("missing retrained model digest: %+v", first)
	}
	if first.Server5xx != 0 {
		t.Fatalf("fleet surfaced %d 5xx responses during the run", first.Server5xx)
	}
	if first.ResidualAtTrip <= first.Threshold {
		t.Fatalf("trip residual %g not above allowance %g", first.ResidualAtTrip, first.Threshold)
	}

	second := runOnce(t)
	if second.TripStep != first.TripStep || second.TripDevice != first.TripDevice {
		t.Fatalf("trip not deterministic: %d/%d vs %d/%d",
			first.TripStep, first.TripDevice, second.TripStep, second.TripDevice)
	}
	if second.ModelSHA256 != first.ModelSHA256 {
		t.Fatalf("retrained model bytes not deterministic:\n%s\n%s", first.ModelSHA256, second.ModelSHA256)
	}
	if second.Reloads != first.Reloads {
		t.Fatalf("reload count not deterministic: %d vs %d", first.Reloads, second.Reloads)
	}
}

// fakeClient is a fleet stand-in whose predictions are a fixed deterministic
// blend toward uniform — residuals are positive and stable, so calibration
// succeeds and nothing ever trips.
type fakeClient struct {
	mu       sync.Mutex
	sessions int
	outputs  int
}

func (f *fakeClient) CreateSession(model string, smoothing float64, names []string) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sessions++
	f.outputs = len(names)
	return fmt.Sprintf("fake-%d", f.sessions), nil
}

func (f *fakeClient) Step(session string, axisStart, axisStep float64, intensities []float64) ([]float64, error) {
	f.mu.Lock()
	k := f.outputs
	f.mu.Unlock()
	out := make([]float64, k)
	for i := range out {
		out[i] = 1 / float64(k)
	}
	return out, nil
}

func (f *fakeClient) Predict(model string, axisStart, axisStep float64, intensities []float64) error {
	return nil
}
func (f *fakeClient) Publish(name string, data []byte) error { return nil }
func (f *fakeClient) Reload() error                          { return nil }
func (f *fakeClient) Counts() ClientCounts                   { return ClientCounts{} }

// TestLoopHealthyFleetNeverTrips: uniform predictions give a stable nonzero
// residual, so auto-calibration resolves levels and the run ends with no
// trip, no recal, and a final residual below the allowance.
func TestLoopHealthyFleetNeverTrips(t *testing.T) {
	cfg := loopConfig()
	cfg.Drift.Device = -1
	cfg.Churn = 0
	fc := &fakeClient{}
	l, err := New(cfg, fc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TripStep != -1 || rep.Recals != 0 || rep.Reloads != 0 {
		t.Fatalf("healthy fleet tripped: %+v", rep)
	}
	if fc.sessions != cfg.Devices {
		t.Fatalf("opened %d sessions for %d devices", fc.sessions, cfg.Devices)
	}
	if !rep.BelowThreshold {
		t.Fatalf("stable residual %g should sit below allowance %g", rep.FinalResidual, rep.Threshold)
	}
}

func TestLoopRejectsBadConfig(t *testing.T) {
	cfg := loopConfig()
	cfg.Devices = 0
	if _, err := New(cfg, &fakeClient{}); err == nil {
		t.Fatal("zero devices accepted")
	}
	cfg = loopConfig()
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("nil client accepted")
	}
	cfg = loopConfig()
	cfg.Drift.Device = cfg.Devices
	if _, err := New(cfg, &fakeClient{}); err == nil {
		t.Fatal("out-of-range drift device accepted")
	}
}
