package spectrum

import (
	"math"
	"testing"
	"testing/quick"

	"specml/internal/rng"
)

func TestGaussianAreaAndFWHM(t *testing.T) {
	// Integrate numerically over a wide axis: area must be ~1.
	axis := MustAxis(-50, 0.01, 10001)
	s := New(axis)
	const fwhm = 2.0
	for i := range s.Intensities {
		s.Intensities[i] = GaussianValue(axis.Value(i), 0, fwhm)
	}
	if got := s.Integrate(); math.Abs(got-1) > 1e-6 {
		t.Fatalf("gaussian area = %v, want 1", got)
	}
	// At +-FWHM/2 the value is half the peak value.
	peak := GaussianValue(0, 0, fwhm)
	half := GaussianValue(fwhm/2, 0, fwhm)
	if math.Abs(half/peak-0.5) > 1e-9 {
		t.Fatalf("gaussian FWHM violated: ratio %v", half/peak)
	}
}

func TestLorentzianAreaAndFWHM(t *testing.T) {
	// Lorentzian tails decay slowly; integrate over a very wide range.
	axis := MustAxis(-2000, 0.05, 80001)
	s := New(axis)
	const fwhm = 2.0
	for i := range s.Intensities {
		s.Intensities[i] = LorentzianValue(axis.Value(i), 0, fwhm)
	}
	if got := s.Integrate(); math.Abs(got-1) > 1e-3 {
		t.Fatalf("lorentzian area = %v, want ~1", got)
	}
	peak := LorentzianValue(0, 0, fwhm)
	half := LorentzianValue(fwhm/2, 0, fwhm)
	if math.Abs(half/peak-0.5) > 1e-9 {
		t.Fatalf("lorentzian FWHM violated: ratio %v", half/peak)
	}
}

func TestPeakValidate(t *testing.T) {
	cases := []struct {
		p  Peak
		ok bool
	}{
		{Peak{Center: 1, Area: 1, Width: 1, Eta: 0.5}, true},
		{Peak{Center: 1, Area: 1, Width: 0, Eta: 0.5}, false},
		{Peak{Center: 1, Area: 1, Width: -1, Eta: 0.5}, false},
		{Peak{Center: 1, Area: 1, Width: 1, Eta: 1.5}, false},
		{Peak{Center: 1, Area: 1, Width: 1, Eta: -0.1}, false},
		{Peak{Center: math.NaN(), Area: 1, Width: 1, Eta: 0}, false},
	}
	for i, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Fatalf("case %d: Validate() err=%v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestPeakMixing(t *testing.T) {
	// Eta=1 matches the Lorentzian, Eta=0 the Gaussian, in between it
	// interpolates.
	p := Peak{Center: 3, Area: 2, Width: 1.5}
	x := 3.4
	pl := p
	pl.Eta = 1
	pg := p
	pg.Eta = 0
	wantL := 2 * LorentzianValue(x, 3, 1.5)
	wantG := 2 * GaussianValue(x, 3, 1.5)
	if math.Abs(pl.Value(x)-wantL) > 1e-12 {
		t.Fatal("eta=1 must be lorentzian")
	}
	if math.Abs(pg.Value(x)-wantG) > 1e-12 {
		t.Fatal("eta=0 must be gaussian")
	}
	pm := p
	pm.Eta = 0.3
	want := 0.3*wantL + 0.7*wantG
	if math.Abs(pm.Value(x)-want) > 1e-12 {
		t.Fatal("eta mixing must be linear")
	}
}

func TestPeakShiftBroaden(t *testing.T) {
	p := Peak{Center: 5, Area: 1, Width: 2, Eta: 0.5}
	if s := p.Shifted(0.5); s.Center != 5.5 || p.Center != 5 {
		t.Fatal("Shifted must return a moved copy")
	}
	if b := p.Broadened(2); b.Width != 4 || p.Width != 2 {
		t.Fatal("Broadened must return a widened copy")
	}
}

// Property: peak area is invariant under shift and is preserved through
// rendering (within numerical tolerance for in-range, narrow peaks).
func TestRenderPreservesAreaProperty(t *testing.T) {
	src := rng.New(31)
	axis := MustAxis(0, 0.02, 5001) // [0,100]
	f := func(cRaw, wRaw, eRaw uint16) bool {
		p := Peak{
			Center: 30 + float64(cRaw%400)/10, // 30..70, far from edges
			Area:   0.1 + src.Float64()*5,
			Width:  0.2 + float64(wRaw%100)/100, // 0.2..1.2
			Eta:    0,                           // gaussian: compact support, exact area check
		}
		_ = eRaw
		s := New(axis)
		if err := RenderPeaks(s, []Peak{p}, 0); err != nil {
			return false
		}
		return math.Abs(s.Integrate()-p.Area) < 1e-3*p.Area+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderPeaksCutoff(t *testing.T) {
	axis := MustAxis(0, 0.1, 1001)
	full := New(axis)
	cut := New(axis)
	p := []Peak{{Center: 50, Area: 1, Width: 0.5, Eta: 0}}
	if err := RenderPeaks(full, p, 0); err != nil {
		t.Fatal(err)
	}
	if err := RenderPeaks(cut, p, 8); err != nil {
		t.Fatal(err)
	}
	// With an 8-width cutoff a Gaussian loses essentially nothing.
	if math.Abs(full.Integrate()-cut.Integrate()) > 1e-6 {
		t.Fatalf("cutoff rendering lost area: %v vs %v", full.Integrate(), cut.Integrate())
	}
}

func TestRenderPeaksRejectsInvalid(t *testing.T) {
	s := New(MustAxis(0, 1, 10))
	if err := RenderPeaks(s, []Peak{{Center: 1, Area: 1, Width: -1}}, 0); err == nil {
		t.Fatal("invalid peak must be rejected")
	}
}

func TestLineSpectrumMerge(t *testing.T) {
	ls := &LineSpectrum{Lines: []Line{
		{Position: 28.0, Intensity: 1},
		{Position: 28.005, Intensity: 3},
		{Position: 32.0, Intensity: 2},
	}}
	m := ls.Merge(0.01)
	if len(m.Lines) != 2 {
		t.Fatalf("Merge produced %d lines, want 2", len(m.Lines))
	}
	// intensity-weighted center: (28*1 + 28.005*3)/4
	want := (28.0 + 28.005*3) / 4
	if math.Abs(m.Lines[0].Position-want) > 1e-9 {
		t.Fatalf("merged position = %v, want %v", m.Lines[0].Position, want)
	}
	if m.Lines[0].Intensity != 4 || m.Lines[1].Intensity != 2 {
		t.Fatalf("merged intensities wrong: %+v", m.Lines)
	}
}

func TestLineSpectrumMergeKeepsTotalIntensity(t *testing.T) {
	src := rng.New(4)
	ls := &LineSpectrum{}
	for i := 0; i < 40; i++ {
		ls.Lines = append(ls.Lines, Line{Position: src.Uniform(0, 100), Intensity: src.Float64()})
	}
	before := ls.TotalIntensity()
	after := ls.Merge(1.0).TotalIntensity()
	if math.Abs(before-after) > 1e-9 {
		t.Fatalf("Merge changed total intensity: %v -> %v", before, after)
	}
}

// Property: superposing line spectra preserves total intensity linearly.
func TestSuperposeLinesIntensityProperty(t *testing.T) {
	src := rng.New(8)
	f := func(nRaw uint8) bool {
		n := int(nRaw%3) + 1
		weights := make([]float64, n)
		comps := make([]*LineSpectrum, n)
		wantTotal := 0.0
		for i := range comps {
			weights[i] = src.Float64()
			c := &LineSpectrum{}
			for j := 0; j < 5; j++ {
				c.Lines = append(c.Lines, Line{Position: src.Uniform(1, 100), Intensity: src.Float64()})
			}
			comps[i] = c
			wantTotal += weights[i] * c.TotalIntensity()
		}
		sum, err := SuperposeLines(weights, comps)
		if err != nil {
			return false
		}
		return math.Abs(sum.TotalIntensity()-wantTotal) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLineRenderAreaMatchesIntensity(t *testing.T) {
	ls := &LineSpectrum{Lines: []Line{
		{Position: 20, Intensity: 2},
		{Position: 60, Intensity: 1},
	}}
	s, err := ls.Render(MustAxis(0, 0.05, 2001), 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Integrate(); math.Abs(got-3) > 1e-3 {
		t.Fatalf("rendered area = %v, want 3", got)
	}
	// the rendered spectrum peaks near the line positions
	if i := s.Axis.NearestIndex(20); s.Intensities[i] < s.Intensities[i+40] {
		t.Fatal("no peak near m/z 20")
	}
}

func TestSuperposeLinesMismatch(t *testing.T) {
	if _, err := SuperposeLines([]float64{1, 2}, []*LineSpectrum{{}}); err == nil {
		t.Fatal("mismatched lengths must error")
	}
}
