package spectrum

import (
	"sync"

	"specml/internal/fit"
)

// Savitzky-Golay output is a linear functional of the window samples, so
// the least-squares solve does not depend on the data at all — only on the
// window geometry. For a given (halfWindow, degree, deriv) there are at
// most 2·halfWindow+1 distinct window geometries (the evaluation point sits
// at offset halfWindow in every interior window and walks to the window
// edges near the axis ends), each with one weight vector. The weights are
// computed once, by running the polynomial fit on the unit vectors, and
// cached process-wide; every subsequent SavitzkyGolay call is then a plain
// dot product per sample instead of a factorization per sample.

// sgKey identifies one cached coefficient set.
type sgKey struct {
	halfWindow, degree, deriv int
}

// sgCache maps sgKey to [][]float64: weights[off] is the weight vector of
// the window whose evaluation point sits at offset off in [0, window).
var sgCache sync.Map

// sgWeights returns (building and caching on first use) the coefficient
// matrix for the given filter parameters. The returned weights are in
// sample units; callers divide by Step^deriv to convert derivatives to
// axis units.
func sgWeights(halfWindow, degree, deriv int) ([][]float64, error) {
	key := sgKey{halfWindow, degree, deriv}
	if w, ok := sgCache.Load(key); ok {
		return w.([][]float64), nil
	}
	window := 2*halfWindow + 1
	factorial := 1.0
	for f := 2; f <= deriv; f++ {
		factorial *= float64(f)
	}
	xs := make([]float64, window)
	ys := make([]float64, window)
	weights := make([][]float64, window)
	for off := 0; off < window; off++ {
		for k := 0; k < window; k++ {
			xs[k] = float64(k - off)
		}
		w := make([]float64, window)
		for m := 0; m < window; m++ {
			for k := range ys {
				ys[k] = 0
			}
			ys[m] = 1
			coeffs, err := fit.Polyfit(xs, ys, degree)
			if err != nil {
				return nil, err
			}
			if deriv < len(coeffs) {
				w[m] = coeffs[deriv] * factorial
			}
		}
		weights[off] = w
	}
	// LoadOrStore keeps concurrent first callers consistent: everyone ends
	// up using the same (deterministically computed) matrix.
	actual, _ := sgCache.LoadOrStore(key, weights)
	return actual.([][]float64), nil
}
