// Package spectrum provides the shared spectral substrate of the MS and
// NMR toolchains: uniform axes, continuous spectra, discrete line (stick)
// spectra, analytic peak shapes (Gaussian, Lorentzian and the Lorentz-Gauss
// "pseudo-Voigt" profile used by Indirect Hard Modelling), resampling,
// integration and superposition.
//
// Conventions: an Axis is uniform and ascending. For mass spectrometry the
// axis is the m/z axis; for NMR it is the chemical-shift axis in ppm
// (stored ascending; display order is the caller's concern).
package spectrum

import (
	"fmt"
	"math"
)

// Axis is a uniform sampling axis: values Start, Start+Step, ...,
// Start+(N-1)*Step.
type Axis struct {
	Start float64
	Step  float64
	N     int
}

// NewAxis returns a validated axis. Step must be positive and N >= 1.
func NewAxis(start, step float64, n int) (Axis, error) {
	if step <= 0 {
		return Axis{}, fmt.Errorf("spectrum: axis step must be positive, got %g", step)
	}
	if n < 1 {
		return Axis{}, fmt.Errorf("spectrum: axis length must be >= 1, got %d", n)
	}
	return Axis{Start: start, Step: step, N: n}, nil
}

// MustAxis is NewAxis that panics on invalid parameters; for use in tests
// and package-level defaults.
func MustAxis(start, step float64, n int) Axis {
	a, err := NewAxis(start, step, n)
	if err != nil {
		panic(err)
	}
	return a
}

// Value returns the axis value at sample index i.
func (a Axis) Value(i int) float64 { return a.Start + float64(i)*a.Step }

// End returns the last axis value.
func (a Axis) End() float64 { return a.Value(a.N - 1) }

// Index returns the floating-point sample position of axis value x
// (0 maps to Start). It may lie outside [0, N-1].
func (a Axis) Index(x float64) float64 { return (x - a.Start) / a.Step }

// NearestIndex returns the in-range sample index closest to x.
func (a Axis) NearestIndex(x float64) int {
	i := int(math.Round(a.Index(x)))
	if i < 0 {
		return 0
	}
	if i >= a.N {
		return a.N - 1
	}
	return i
}

// Contains reports whether x lies within [Start, End].
func (a Axis) Contains(x float64) bool { return x >= a.Start && x <= a.End() }

// Values materializes all axis values.
func (a Axis) Values() []float64 {
	v := make([]float64, a.N)
	for i := range v {
		v[i] = a.Value(i)
	}
	return v
}

// Equal reports exact axis equality.
func (a Axis) Equal(b Axis) bool { return a == b }

// Spectrum is a continuous spectrum sampled on a uniform axis.
type Spectrum struct {
	Axis        Axis
	Intensities []float64
}

// New returns a zero spectrum on the given axis.
func New(axis Axis) *Spectrum {
	return &Spectrum{Axis: axis, Intensities: make([]float64, axis.N)}
}

// Clone returns a deep copy.
func (s *Spectrum) Clone() *Spectrum {
	c := New(s.Axis)
	copy(c.Intensities, s.Intensities)
	return c
}

// Add accumulates w*other into s. The axes must match exactly; use
// Resample first otherwise.
func (s *Spectrum) Add(w float64, other *Spectrum) error {
	if !s.Axis.Equal(other.Axis) {
		return fmt.Errorf("spectrum: Add axis mismatch (%+v vs %+v)", s.Axis, other.Axis)
	}
	for i, v := range other.Intensities {
		s.Intensities[i] += w * v
	}
	return nil
}

// Scale multiplies all intensities by w.
func (s *Spectrum) Scale(w float64) {
	for i := range s.Intensities {
		s.Intensities[i] *= w
	}
}

// Max returns the maximum intensity (0 for an all-zero spectrum is valid).
func (s *Spectrum) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.Intensities {
		if v > m {
			m = v
		}
	}
	return m
}

// TotalIntensity returns the plain sum of the sampled intensities (the
// "total ion current" in MS terms).
func (s *Spectrum) TotalIntensity() float64 {
	t := 0.0
	for _, v := range s.Intensities {
		t += v
	}
	return t
}

// Integrate returns the trapezoidal integral over the full axis.
func (s *Spectrum) Integrate() float64 {
	if s.Axis.N < 2 {
		return 0
	}
	sum := 0.0
	for i := 0; i < s.Axis.N-1; i++ {
		sum += 0.5 * (s.Intensities[i] + s.Intensities[i+1])
	}
	return sum * s.Axis.Step
}

// IntegrateBetween returns the trapezoidal integral restricted to axis
// values in [lo, hi] (clamped to the axis range). lo must not exceed hi.
func (s *Spectrum) IntegrateBetween(lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	i0 := s.Axis.NearestIndex(lo)
	i1 := s.Axis.NearestIndex(hi)
	sum := 0.0
	for i := i0; i < i1; i++ {
		sum += 0.5 * (s.Intensities[i] + s.Intensities[i+1])
	}
	return sum * s.Axis.Step
}

// ValueAt linearly interpolates the intensity at axis value x. Values
// outside the axis return 0 (spectra decay to baseline).
func (s *Spectrum) ValueAt(x float64) float64 {
	fi := s.Axis.Index(x)
	if fi < 0 || fi > float64(s.Axis.N-1) {
		return 0
	}
	i := int(fi)
	if i == s.Axis.N-1 {
		return s.Intensities[i]
	}
	frac := fi - float64(i)
	return s.Intensities[i]*(1-frac) + s.Intensities[i+1]*frac
}

// Resample linearly interpolates the spectrum onto a new axis. Samples of
// the target axis outside the source range are 0. This implements the
// paper's requirement that "missing values [are] interpolated when the
// resolution [is] changed".
func (s *Spectrum) Resample(axis Axis) *Spectrum {
	out := New(axis)
	if err := s.ResampleInto(out.Intensities, axis); err != nil {
		panic(err) // unreachable: out was sized from axis
	}
	return out
}

// ResampleInto is the allocation-free sibling of Resample: it fills dst
// (which must have length axis.N) with the spectrum linearly interpolated
// onto axis. Hot paths reuse pooled buffers through it instead of
// allocating a Spectrum per call.
func (s *Spectrum) ResampleInto(dst []float64, axis Axis) error {
	if len(dst) != axis.N {
		return fmt.Errorf("spectrum: ResampleInto destination length %d does not match axis length %d", len(dst), axis.N)
	}
	for i := range dst {
		dst[i] = s.ValueAt(axis.Value(i))
	}
	return nil
}

// NormalizeMax scales the spectrum so its maximum intensity is 1. An
// all-zero (or non-positive-max) spectrum is returned unchanged.
func (s *Spectrum) NormalizeMax() {
	m := s.Max()
	if m <= 0 {
		return
	}
	s.Scale(1 / m)
}

// NormalizeArea scales the spectrum so its trapezoidal integral is 1.
// A zero-integral spectrum is returned unchanged.
func (s *Spectrum) NormalizeArea() {
	a := s.Integrate()
	if a <= 0 {
		return
	}
	s.Scale(1 / a)
}

// NormalizeSum scales the spectrum so its intensity sum is 1.
func (s *Spectrum) NormalizeSum() {
	t := s.TotalIntensity()
	if t <= 0 {
		return
	}
	s.Scale(1 / t)
}

// Superpose returns sum_i weights[i]*components[i] on the axis of the
// first component. All components must share one axis.
func Superpose(weights []float64, components []*Spectrum) (*Spectrum, error) {
	if len(weights) != len(components) {
		return nil, fmt.Errorf("spectrum: %d weights for %d components", len(weights), len(components))
	}
	if len(components) == 0 {
		return nil, fmt.Errorf("spectrum: Superpose needs at least one component")
	}
	out := New(components[0].Axis)
	for i, c := range components {
		if err := out.Add(weights[i], c); err != nil {
			return nil, err
		}
	}
	return out, nil
}
