package spectrum

import (
	"fmt"
	"math"
)

// Peak is an analytic spectral line described by a Lorentz-Gauss
// (pseudo-Voigt) profile, the hard-model primitive of Indirect Hard
// Modelling:
//
//	f(x) = Area * [ Eta * L(x; Center, Width) + (1-Eta) * G(x; Center, Width) ]
//
// where L and G are area-normalized Lorentzian and Gaussian profiles with
// the same full width at half maximum (FWHM) Width. Eta in [0,1] mixes the
// two: Eta=1 is pure Lorentzian (typical NMR line), Eta=0 pure Gaussian
// (typical instrument broadening).
type Peak struct {
	Center float64 // peak position (m/z or ppm)
	Area   float64 // integrated intensity
	Width  float64 // FWHM; must be positive
	Eta    float64 // Lorentzian fraction in [0,1]
}

// Validate reports whether the peak parameters are physically meaningful.
func (p Peak) Validate() error {
	if p.Width <= 0 {
		return fmt.Errorf("spectrum: peak width must be positive, got %g", p.Width)
	}
	if p.Eta < 0 || p.Eta > 1 {
		return fmt.Errorf("spectrum: peak eta must be in [0,1], got %g", p.Eta)
	}
	if math.IsNaN(p.Center) || math.IsNaN(p.Area) {
		return fmt.Errorf("spectrum: peak has NaN parameters")
	}
	return nil
}

// gaussianSigma converts a FWHM to the Gaussian sigma.
func gaussianSigma(fwhm float64) float64 {
	return fwhm / (2 * math.Sqrt(2*math.Ln2))
}

// GaussianValue evaluates an area-normalized Gaussian with the given
// center and FWHM at x.
func GaussianValue(x, center, fwhm float64) float64 {
	sigma := gaussianSigma(fwhm)
	d := (x - center) / sigma
	return math.Exp(-0.5*d*d) / (sigma * math.Sqrt(2*math.Pi))
}

// LorentzianValue evaluates an area-normalized Lorentzian with the given
// center and FWHM at x.
func LorentzianValue(x, center, fwhm float64) float64 {
	gamma := fwhm / 2 // half width at half maximum
	d := x - center
	return gamma / (math.Pi * (d*d + gamma*gamma))
}

// Value evaluates the peak profile at x.
func (p Peak) Value(x float64) float64 {
	return p.Area * (p.Eta*LorentzianValue(x, p.Center, p.Width) +
		(1-p.Eta)*GaussianValue(x, p.Center, p.Width))
}

// Height returns the profile value at the peak center.
func (p Peak) Height() float64 { return p.Value(p.Center) }

// Shifted returns a copy of the peak moved by delta along the axis.
func (p Peak) Shifted(delta float64) Peak {
	p.Center += delta
	return p
}

// Broadened returns a copy of the peak with Width multiplied by factor.
func (p Peak) Broadened(factor float64) Peak {
	p.Width *= factor
	return p
}

// RenderPeaks accumulates the analytic profiles of peaks onto a spectrum
// sampled on axis. Existing intensities are preserved (accumulation), so a
// caller can layer several components. Peaks are evaluated only within
// +-cutoffWidths of their center for speed; pass cutoffWidths <= 0 for a
// full-axis evaluation (needed for accurate Lorentzian tails), or use
// RenderPeaksTailCorrected to keep truncated rendering area-accurate.
func RenderPeaks(s *Spectrum, peaks []Peak, cutoffWidths float64) error {
	return renderPeaks(s, peaks, cutoffWidths, false)
}

// RenderPeaksTailCorrected is RenderPeaks with an analytic Lorentzian
// tail correction: outside each peak's ±cutoffWidths window, the
// Lorentzian part of the profile (the only part with non-negligible mass
// out there — a Gaussian is below 1e-19 of its height beyond 4 FWHM) is
// added from its closed form, sampled every few points and linearly
// interpolated in between. Truncated rendering thus stays area-accurate:
// plain cutoff-12 rendering silently drops the ~2.65% of each Lorentzian's
// area that lies beyond the window (see LorentzianTailFraction), this
// variant restores it at a small fraction of the full-axis cost.
func RenderPeaksTailCorrected(s *Spectrum, peaks []Peak, cutoffWidths float64) error {
	return renderPeaks(s, peaks, cutoffWidths, true)
}

func renderPeaks(s *Spectrum, peaks []Peak, cutoffWidths float64, tails bool) error {
	start, step, n := s.Axis.Start, s.Axis.Step, s.Axis.N
	y := s.Intensities
	for _, p := range peaks {
		if err := p.Validate(); err != nil {
			return err
		}
		lo, hi := 0, n-1
		if cutoffWidths > 0 {
			lo = s.Axis.NearestIndex(p.Center - cutoffWidths*p.Width)
			hi = s.Axis.NearestIndex(p.Center + cutoffWidths*p.Width)
		}
		// Per-peak constants hoisted out of the inner loop. The per-point
		// expression tree below matches Peak.Value operation for operation
		// (same operand values, same order), so the loop stays bit-identical
		// to the naive p.Value(s.Axis.Value(i)) formulation while avoiding
		// the per-point sqrt calls and method dispatch.
		gamma := p.Width / 2
		g2 := gamma * gamma
		sigma := p.Width / (2 * math.Sqrt(2*math.Ln2))
		gnorm := sigma * math.Sqrt(2*math.Pi)
		eta := p.Eta
		oneMinusEta := 1 - p.Eta
		area := p.Area
		center := p.Center
		for i := lo; i <= hi; i++ {
			x := start + float64(i)*step
			d := x - center
			l := gamma / (math.Pi * (d*d + g2))
			dd := d / sigma
			g := math.Exp(-0.5*dd*dd) / gnorm
			y[i] += area * (eta*l + oneMinusEta*g)
		}
		if tails && cutoffWidths > 0 && eta != 0 && area != 0 {
			la := area * eta * gamma / math.Pi
			addLorentzianTail(y, start, step, center, la, g2, 0, lo-1)
			addLorentzianTail(y, start, step, center, la, g2, hi+1, n-1)
		}
	}
	return nil
}

// tailStride is the sampling stride of the interpolated Lorentzian tail:
// the tail is smooth (curvature ~d⁻⁴), so linear interpolation between
// every tailStride-th exact sample stays within ~1e-4 of the peak height
// for the cutoffs used in practice (>= 4 widths).
const tailStride = 4

// addLorentzianTail accumulates la/(d²+g2) over sample indices [lo, hi],
// evaluating the closed form every tailStride samples and interpolating
// linearly in between.
func addLorentzianTail(y []float64, start, step, center, la, g2 float64, lo, hi int) {
	if hi < lo {
		return
	}
	d := start + float64(lo)*step - center
	v0 := la / (d*d + g2)
	i := lo
	for {
		y[i] += v0
		if i == hi {
			return
		}
		j := i + tailStride
		if j > hi {
			j = hi
		}
		d = start + float64(j)*step - center
		v1 := la / (d*d + g2)
		inv := 1 / float64(j-i)
		for k := i + 1; k < j; k++ {
			y[k] += v0 + float64(k-i)*inv*(v1-v0)
		}
		i, v0 = j, v1
	}
}

// LorentzianTailFraction returns the fraction of an area-normalized
// Lorentzian's mass lying beyond ±cutoffWidths·FWHM of its center:
// 1 − (2/π)·atan(2·cutoffWidths). At the cutoff of 12 widths used by the
// MS instrument simulation this is ≈ 2.65% — the area a truncated render
// loses and RenderPeaksTailCorrected restores.
func LorentzianTailFraction(cutoffWidths float64) float64 {
	if cutoffWidths <= 0 {
		return 1
	}
	return 1 - 2/math.Pi*math.Atan(2*cutoffWidths)
}

// Line is a single entry of a discrete (stick) spectrum: an ideal,
// infinitely narrow signal at Position with integrated intensity.
type Line struct {
	Position  float64
	Intensity float64
}

// LineSpectrum is an ideal line (stick) spectrum — the output of the
// paper's Tool 1 before instrument effects are applied.
type LineSpectrum struct {
	Lines []Line
}

// Clone returns a deep copy.
func (ls *LineSpectrum) Clone() *LineSpectrum {
	out := &LineSpectrum{Lines: make([]Line, len(ls.Lines))}
	copy(out.Lines, ls.Lines)
	return out
}

// Scale multiplies every line intensity by w and returns the receiver.
func (ls *LineSpectrum) Scale(w float64) *LineSpectrum {
	for i := range ls.Lines {
		ls.Lines[i].Intensity *= w
	}
	return ls
}

// TotalIntensity returns the summed line intensities.
func (ls *LineSpectrum) TotalIntensity() float64 {
	t := 0.0
	for _, l := range ls.Lines {
		t += l.Intensity
	}
	return t
}

// Merge combines lines closer than tol into single lines positioned at the
// intensity-weighted mean, returning a new spectrum. Lines are assumed
// unsorted; the result is sorted by position. This models finite
// instrument resolution at the ideal-spectrum level: "in the case of low
// resolution ... both elements would be catalogued as the same one".
func (ls *LineSpectrum) Merge(tol float64) *LineSpectrum {
	sorted := ls.Clone()
	sortLines(sorted.Lines)
	out := &LineSpectrum{}
	i := 0
	for i < len(sorted.Lines) {
		j := i + 1
		pos := sorted.Lines[i].Position * sorted.Lines[i].Intensity
		inten := sorted.Lines[i].Intensity
		for j < len(sorted.Lines) && sorted.Lines[j].Position-sorted.Lines[j-1].Position <= tol {
			pos += sorted.Lines[j].Position * sorted.Lines[j].Intensity
			inten += sorted.Lines[j].Intensity
			j++
		}
		if inten > 0 {
			out.Lines = append(out.Lines, Line{Position: pos / inten, Intensity: inten})
		} else if j-i > 0 {
			out.Lines = append(out.Lines, Line{Position: sorted.Lines[i].Position, Intensity: 0})
		}
		i = j
	}
	return out
}

func sortLines(lines []Line) {
	// insertion sort: line lists are short (tens of fragments)
	for i := 1; i < len(lines); i++ {
		for j := i; j > 0 && lines[j].Position < lines[j-1].Position; j-- {
			lines[j], lines[j-1] = lines[j-1], lines[j]
		}
	}
}

// SuperposeLines returns the weighted superposition of several line
// spectra: the ideal spectrum of a mixture is the linear combination of
// the components' ideal spectra (Tool 1's core operation).
func SuperposeLines(weights []float64, components []*LineSpectrum) (*LineSpectrum, error) {
	if len(weights) != len(components) {
		return nil, fmt.Errorf("spectrum: %d weights for %d line spectra", len(weights), len(components))
	}
	out := &LineSpectrum{}
	for i, c := range components {
		for _, l := range c.Lines {
			out.Lines = append(out.Lines, Line{Position: l.Position, Intensity: weights[i] * l.Intensity})
		}
	}
	merged := out.Merge(1e-9) // coalesce identical positions from different components
	return merged, nil
}

// RenderLines converts a line spectrum to a continuous spectrum on axis by
// giving every line a peak profile of the given FWHM and Lorentzian
// fraction eta. Line intensities become peak areas.
func (ls *LineSpectrum) Render(axis Axis, fwhm, eta float64) (*Spectrum, error) {
	s := New(axis)
	peaks := make([]Peak, len(ls.Lines))
	for i, l := range ls.Lines {
		peaks[i] = Peak{Center: l.Position, Area: l.Intensity, Width: fwhm, Eta: eta}
	}
	if err := RenderPeaks(s, peaks, 0); err != nil {
		return nil, err
	}
	return s, nil
}
