package render

import (
	"testing"

	"specml/internal/rng"
	"specml/internal/spectrum"
)

func nmrishPeaks() []spectrum.Peak {
	// 14 peaks, eta 0.8, widths ~0.015-0.04 on a 1700-point 10-unit axis
	src := rng.New(2)
	ps := make([]spectrum.Peak, 14)
	for i := range ps {
		ps[i] = spectrum.Peak{Center: src.Uniform(0.5, 9.5), Width: src.Uniform(0.015, 0.04), Area: 1, Eta: 0.8}
	}
	return ps
}

func BenchmarkAnalyticAccum(b *testing.B) {
	axis := spectrum.MustAxis(0, 10.0/1699.0, 1700)
	ps := nmrishPeaks()
	dst := make([]float64, axis.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyticAccum(dst, axis.Start, axis.Step, ps, 0.03, 0.004, 1.04)
	}
}

func BenchmarkMasterInterp(b *testing.B) {
	axis := spectrum.MustAxis(0, 10.0/1699.0, 1700)
	tmpl, err := NewEngine(Options{}).NewTemplate(axis, nmrishPeaks())
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, axis.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmpl.renderMaster(dst, 0.03, 0.004)
	}
}

func BenchmarkNoise1700(b *testing.B) {
	src := rng.New(3)
	dst := make([]float64, 1700)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dst {
			dst[j] += src.Normal(0, 0.01)
		}
	}
}

func BenchmarkNoise1700Ziggurat(b *testing.B) {
	src := rng.New(3)
	dst := make([]float64, 1700)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.FastNormalAdd(dst, 0.01)
	}
}
