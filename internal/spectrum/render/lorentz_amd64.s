//go:build amd64

#include "textflag.h"

// lane indices [0, 1, 2, 3] and the per-iteration index increment.
DATA lorentzIdx<>+0(SB)/8, $0x0000000000000000 // 0.0
DATA lorentzIdx<>+8(SB)/8, $0x3ff0000000000000 // 1.0
DATA lorentzIdx<>+16(SB)/8, $0x4000000000000000 // 2.0
DATA lorentzIdx<>+24(SB)/8, $0x4008000000000000 // 3.0
GLOBL lorentzIdx<>(SB), RODATA, $32

DATA lorentzFour<>+0(SB)/8, $0x4010000000000000 // 4.0
GLOBL lorentzFour<>(SB), RODATA, $8

// func lorentzAccumAVX2(dst []float64, d0, step, num, g2 float64)
//
// dst[i] += num / (d*d + g2) with d = d0 + float64(i)*step, four lanes per
// iteration. The lane index vector holds exact small integers, so VMULPD/
// VADDPD/VDIVPD reproduce the scalar loop's roundings bit for bit; FMA is
// deliberately not used (it would fuse the mul+add with a different
// rounding than the scalar Go code).
TEXT ·lorentzAccumAVX2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	VBROADCASTSD d0+24(FP), Y1
	VBROADCASTSD step+32(FP), Y2
	VBROADCASTSD num+40(FP), Y3
	VBROADCASTSD g2+48(FP), Y4
	VMOVUPD lorentzIdx<>(SB), Y0
	VBROADCASTSD lorentzFour<>(SB), Y15

loop:
	TESTQ CX, CX
	JLE   done
	VMULPD Y2, Y0, Y5  // float64(i) * step
	VADDPD Y1, Y5, Y5  // + d0            -> d
	VMULPD Y5, Y5, Y5  // d*d
	VADDPD Y4, Y5, Y5  // + g2
	VDIVPD Y5, Y3, Y5  // num / (d*d + g2)
	VMOVUPD (DI), Y6
	VADDPD Y6, Y5, Y6
	VMOVUPD Y6, (DI)
	VADDPD Y15, Y0, Y0 // advance lane indices by 4
	ADDQ $32, DI
	SUBQ $4, CX
	JMP  loop

done:
	VZEROUPPER
	RET

// func lorentzPairAccumAVX2(dst []float64, d01, g21, num1, d02, g22, num2, step float64)
//
// dst[i] += (num1*b + num2*a) / (a*b) with a = d1²+g21, b = d2²+g22,
// d1 = d01 + float64(i)*step, d2 = d02 + float64(i)*step. One VDIVPD per
// iteration covers two Lorentzian peaks; the multiplies retire under the
// divider's shadow. Same no-FMA bit-identity contract as lorentzAccumAVX2.
TEXT ·lorentzPairAccumAVX2(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	VBROADCASTSD d01+24(FP), Y1
	VBROADCASTSD g21+32(FP), Y2
	VBROADCASTSD num1+40(FP), Y3
	VBROADCASTSD d02+48(FP), Y7
	VBROADCASTSD g22+56(FP), Y8
	VBROADCASTSD num2+64(FP), Y9
	VBROADCASTSD step+72(FP), Y11
	VMOVUPD lorentzIdx<>(SB), Y0
	VBROADCASTSD lorentzFour<>(SB), Y15

pairloop:
	TESTQ CX, CX
	JLE   pairdone
	VMULPD Y11, Y0, Y5  // t = float64(i) * step
	VADDPD Y1, Y5, Y6   // d1 = d01 + t
	VMULPD Y6, Y6, Y6   // d1*d1
	VADDPD Y2, Y6, Y6   // a = d1*d1 + g21
	VADDPD Y7, Y5, Y5   // d2 = d02 + t
	VMULPD Y5, Y5, Y5   // d2*d2
	VADDPD Y8, Y5, Y5   // b = d2*d2 + g22
	VMULPD Y5, Y3, Y10  // num1*b
	VMULPD Y6, Y9, Y12  // num2*a
	VADDPD Y12, Y10, Y10 // num1*b + num2*a
	VMULPD Y5, Y6, Y5   // a*b
	VDIVPD Y5, Y10, Y5  // (num1*b + num2*a) / (a*b)
	VMOVUPD (DI), Y6
	VADDPD Y6, Y5, Y6
	VMOVUPD Y6, (DI)
	VADDPD Y15, Y0, Y0  // advance lane indices by 4
	ADDQ $32, DI
	SUBQ $4, CX
	JMP  pairloop

pairdone:
	VZEROUPPER
	RET

// func cpuid(op, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
