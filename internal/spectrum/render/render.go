// Package render is the spectral render engine behind corpus-scale
// synthetic-spectrum generation: it turns a fixed set of pseudo-Voigt peaks
// (an IHM component model, an instrument response) into a Template from
// which every augmented variant — weighted, shifted, broadened — can be
// rendered cheaply and repeatedly into caller-owned buffers.
//
// Three render paths back one Template, selected per call:
//
//   - Exact: delegate to spectrum.RenderPeaks on freshly distorted peak
//     copies. Bit-identical to the legacy analytic path; golden files and
//     regression baselines are rendered through this mode.
//   - Master-grid lookup (widthFactor == 1): the undistorted component is
//     rendered once onto an oversampled master grid extended by a shift
//     margin; a shifted variant is then a pure translation, evaluated by
//     polynomial interpolation into the grid. Exact for translation because
//     Value(x; c+δ, w) = Value(x−δ; c, w) holds per peak and therefore for
//     the whole profile; the only error is interpolation error, bounded by
//     the oversampling factor (see Options.Oversample). O(points) per
//     render, independent of the peak count.
//   - Hoisted analytic (widthFactor != 1): the per-peak affine width
//     identity Value(x; c, w·f) = (1/f)·Value(c + (x−c)/f; c, w) rescales
//     each peak about its own center, so a broadened multi-peak profile is
//     NOT a stretch of the whole template (that would also stretch peak
//     separations). Broadened variants are instead evaluated analytically
//     with all per-peak constants (γ, γ², σ, norms, reciprocal step terms)
//     hoisted out of the inner loops: the Lorentzian part is one division
//     per point over the full axis (keeping its slow tails area-accurate),
//     the Gaussian part a windowed exp over ±4 FWHM (truncation below
//     1e-19 of the peak height).
//
// Accuracy: with cubic interpolation (the default) and automatic
// oversampling, cached rendering matches the exact analytic path to better
// than 1e-9 of the profile maximum across random shift/width draws; the
// property tests pin this bound.
package render

import (
	"fmt"
	"math"

	"specml/internal/spectrum"
)

// Interpolation orders for the master-grid lookup path.
const (
	// InterpLinear uses 2-point linear interpolation: cheapest, but the
	// interpolation error decays only quadratically in the oversampling
	// factor, so it cannot reach the 1e-9 regime at practical grid sizes.
	InterpLinear = 2
	// InterpCubic uses 4-point (cubic Lagrange) interpolation, whose error
	// decays with the fourth power of the grid step. The default.
	InterpCubic = 4
)

const (
	// gaussCutWidths bounds the Gaussian evaluation window in FWHM units;
	// exp(-4·ln2·4²) ≈ 5e-20 of the peak height remains beyond it.
	gaussCutWidths = 4.0
	// cubicOversampleFactor converts step/minWidth into the automatic
	// oversampling for cubic interpolation: the 4-point Lagrange error is
	// ≤ 2.16·(h/w)⁴ of the peak height, so h ≤ w·(step/minWidth)/360 keeps
	// it near ~1e-10, inside the 1e-9 property bound with ~8× headroom.
	cubicOversampleFactor = 360.0
	// linearOversampleFactor is the linear-interpolation analogue, chosen
	// for a ~1e-5 bound (1e-9 is impractical at quadratic decay).
	linearOversampleFactor = 2400.0
	// maxOversample and maxMasterSamples bound master-grid memory.
	maxOversample    = 512
	maxMasterSamples = 1 << 22
)

// Options configures an Engine.
type Options struct {
	// Exact forces the legacy spectrum.RenderPeaks path for every render:
	// bit-identical to pre-engine outputs, for golden files and regression
	// comparisons.
	Exact bool
	// Oversample is the master-grid oversampling factor relative to the
	// target axis step. 0 (the default) chooses automatically from the
	// narrowest peak width and the interpolation order so the cached path
	// stays inside the documented error bound.
	Oversample int
	// InterpOrder is InterpLinear or InterpCubic (default InterpCubic).
	InterpOrder int
	// MaxShift is the shift margin (axis units) the master grid is extended
	// by on each side; shifts beyond it fall back to the analytic path
	// (still correct, just slower). 0 defaults to 2% of the axis span plus
	// a few peak widths.
	MaxShift float64
}

// normalized fills defaulted fields.
func (o Options) normalized() Options {
	if o.InterpOrder != InterpLinear {
		o.InterpOrder = InterpCubic
	}
	if o.Oversample < 0 {
		o.Oversample = 0
	}
	if o.MaxShift < 0 {
		o.MaxShift = 0
	}
	return o
}

// Engine builds Templates with one shared set of Options.
type Engine struct {
	opts Options
}

// NewEngine returns an engine with normalized options.
func NewEngine(opts Options) *Engine {
	return &Engine{opts: opts.normalized()}
}

// Options returns the engine's normalized options.
func (e *Engine) Options() Options { return e.opts }

// Template is one component prepared for repeated rendering onto a fixed
// target axis. Templates are read-only after construction, so concurrent
// RenderInto calls (into distinct destinations) are safe on every path.
type Template struct {
	opts  Options
	axis  spectrum.Axis
	peaks []spectrum.Peak

	// master grid (shift-only path); nil in Exact mode or for degenerate
	// axes.
	master     []float64
	mStart     float64
	mInvStep   float64
	dpos       float64 // master-index increment per target-axis sample
	oversample int
}

// NewTemplate validates the peaks and prepares the cached representation.
// The master grid is built eagerly and deterministically, so callers can
// prepare every template before handing Templates to a parallel wave.
func (e *Engine) NewTemplate(axis spectrum.Axis, peaks []spectrum.Peak) (*Template, error) {
	if axis.N < 1 || axis.Step <= 0 {
		return nil, fmt.Errorf("render: invalid axis %+v", axis)
	}
	if len(peaks) == 0 {
		return nil, fmt.Errorf("render: template needs at least one peak")
	}
	for _, p := range peaks {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	t := &Template{
		opts:  e.opts,
		axis:  axis,
		peaks: append([]spectrum.Peak(nil), peaks...),
	}
	if !e.opts.Exact {
		t.buildMaster()
	}
	return t, nil
}

// Axis returns the target axis the template renders onto.
func (t *Template) Axis() spectrum.Axis { return t.axis }

// Oversample returns the master-grid oversampling factor actually used
// (0 when no master grid was built).
func (t *Template) Oversample() int { return t.oversample }

// minWidth returns the narrowest peak FWHM.
func (t *Template) minWidth() float64 {
	w := math.Inf(1)
	for _, p := range t.peaks {
		if p.Width < w {
			w = p.Width
		}
	}
	return w
}

// buildMaster renders the undistorted profile onto the oversampled,
// margin-extended master grid used by the shift-only lookup path.
func (t *Template) buildMaster() {
	axis := t.axis
	minW := t.minWidth()
	os := t.opts.Oversample
	if os <= 0 {
		factor := cubicOversampleFactor
		if t.opts.InterpOrder == InterpLinear {
			factor = linearOversampleFactor
		}
		os = int(math.Ceil(factor * axis.Step / minW))
	}
	if os < 2 {
		os = 2
	}
	if os > maxOversample {
		os = maxOversample
	}
	margin := t.opts.MaxShift
	if margin <= 0 {
		margin = 0.02*float64(axis.N)*axis.Step + 4*minW
	}
	mStep := axis.Step / float64(os)
	// guard cells on both sides keep 4-point stencils in range at the
	// extremes of the shift margin
	mStart := axis.Start - margin - 4*mStep
	span := (axis.End() + margin + 4*mStep) - mStart
	mN := int(math.Ceil(span/mStep)) + 1
	for mN > maxMasterSamples && os > 2 {
		os /= 2
		mStep = axis.Step / float64(os)
		mStart = axis.Start - margin - 4*mStep
		span = (axis.End() + margin + 4*mStep) - mStart
		mN = int(math.Ceil(span/mStep)) + 1
	}
	if mN > maxMasterSamples {
		return // axis too long to cache; analytic path handles everything
	}
	t.master = make([]float64, mN)
	t.mStart = mStart
	t.mInvStep = 1 / mStep
	t.dpos = axis.Step * t.mInvStep
	t.oversample = os
	analyticAccum(t.master, mStart, mStep, t.peaks, 1, 0, 1)
}

// RenderInto accumulates weight × the component, shifted by shift along the
// axis with every peak width scaled by widthFactor, onto dst (length
// axis.N). Existing dst contents are preserved, mirroring
// spectrum.RenderPeaks' accumulation semantics.
func (t *Template) RenderInto(dst []float64, weight, shift, widthFactor float64) error {
	if len(dst) != t.axis.N {
		return fmt.Errorf("render: destination length %d does not match axis length %d", len(dst), t.axis.N)
	}
	if widthFactor <= 0 {
		return fmt.Errorf("render: width factor must be positive, got %g", widthFactor)
	}
	if t.opts.Exact {
		return t.renderExact(dst, weight, shift, widthFactor)
	}
	if widthFactor == 1 && t.masterUsable(shift) {
		t.renderMaster(dst, weight, shift)
		return nil
	}
	analyticAccum(dst, t.axis.Start, t.axis.Step, t.peaks, weight, shift, widthFactor)
	return nil
}

// Render is RenderInto onto a Spectrum, checking the axis matches.
func (t *Template) Render(s *spectrum.Spectrum, weight, shift, widthFactor float64) error {
	if !s.Axis.Equal(t.axis) {
		return fmt.Errorf("render: spectrum axis %+v does not match template axis %+v", s.Axis, t.axis)
	}
	return t.RenderInto(s.Intensities, weight, shift, widthFactor)
}

// renderExact reproduces the legacy path bit for bit: distort peak copies
// exactly the way ihm.ComponentModel.Render does (including its per-call
// allocation, which keeps concurrent exact renders race-free), then
// delegate to spectrum.RenderPeaks over the full axis.
func (t *Template) renderExact(dst []float64, weight, shift, widthFactor float64) error {
	ps := make([]spectrum.Peak, len(t.peaks))
	for i, p := range t.peaks {
		p.Center += shift
		p.Width *= widthFactor
		p.Area *= weight
		ps[i] = p
	}
	s := spectrum.Spectrum{Axis: t.axis, Intensities: dst}
	return spectrum.RenderPeaks(&s, ps, 0)
}

// masterUsable reports whether every lookup position of the given shift
// stays inside the master grid with a full interpolation stencil.
func (t *Template) masterUsable(shift float64) bool {
	if t.master == nil {
		return false
	}
	pos0 := (t.axis.Start - shift - t.mStart) * t.mInvStep
	posEnd := pos0 + float64(t.axis.N-1)*t.dpos
	lo, hi := 1.0, float64(len(t.master)-3)
	if t.opts.InterpOrder == InterpLinear {
		lo, hi = 0, float64(len(t.master)-2)
	}
	return pos0 >= lo && posEnd <= hi
}

// renderMaster evaluates the shifted profile by interpolation into the
// master grid: dst[i] += weight · T(x_i − shift).
func (t *Template) renderMaster(dst []float64, weight, shift float64) {
	m := t.master
	pos := (t.axis.Start - shift - t.mStart) * t.mInvStep
	if t.opts.InterpOrder == InterpLinear {
		for i := range dst {
			p := pos + float64(i)*t.dpos
			j := int(p)
			f := p - float64(j)
			dst[i] += weight * (m[j] + f*(m[j+1]-m[j]))
		}
		return
	}
	for i := range dst {
		p := pos + float64(i)*t.dpos
		j := int(p)
		f := p - float64(j)
		// 4-point Lagrange weights for nodes -1,0,1,2 at parameter f
		fm1 := f - 1
		fm2 := f - 2
		fp1 := f + 1
		w0 := -f * fm1 * fm2 * (1.0 / 6.0)
		w1 := fp1 * fm1 * fm2 * 0.5
		w2 := -fp1 * f * fm2 * 0.5
		w3 := fp1 * f * fm1 * (1.0 / 6.0)
		dst[i] += weight * (w0*m[j-1] + w1*m[j] + w2*m[j+1] + w3*m[j+2])
	}
}

var (
	twoSqrt2Ln2 = 2 * math.Sqrt(2*math.Ln2)
	sqrt2Pi     = math.Sqrt(2 * math.Pi)
)

// analyticAccum is the hoisted analytic kernel shared by the broadened-path
// render and the master-grid build: it accumulates the distorted profile
// onto dst sampled at start + i·step. All per-peak constants are computed
// once per peak; the inner loops are a single division (Lorentzian) or a
// single exp (Gaussian, over its ±gaussCutWidths window) per point.
func analyticAccum(dst []float64, start, step float64, peaks []spectrum.Peak, weight, shift, widthFactor float64) {
	n := len(dst)
	// Lorentzian parts are processed in pairs: n1/A + n2/B is evaluated as
	// (n1·B + n2·A)/(A·B), one division per point per *pair*. The loop is
	// bound by division throughput (the extra multiplies execute under the
	// divider's shadow), so pairing nearly halves the dominant cost. The
	// regrouping perturbs each point by a few ulp — all terms are positive,
	// so there is no cancellation — far inside the 1e-9 render budget.
	var pd0, pg2, pnum float64
	havePending := false
	for _, p := range peaks {
		c := p.Center + shift
		w := p.Width * widthFactor
		area := p.Area * weight
		// Lorentzian part over the full axis: the 1/d² tails decay too
		// slowly to truncate without losing area.
		if la := area * p.Eta; la != 0 {
			gamma := w / 2
			g2 := gamma * gamma
			num := la * gamma / math.Pi
			if havePending {
				lorentzAccumPair(dst, pd0, pg2, pnum, start-c, g2, num, step)
				havePending = false
			} else {
				pd0, pg2, pnum = start-c, g2, num
				havePending = true
			}
		}
		// Gaussian part over a tight window. exp(-d²/2) along a uniform grid
		// is a geometric-like recurrence: v_{i+1} = v_i·m_i with m_{i+1} =
		// m_i·r and constant r, so the whole window costs three exps total.
		// Each step adds ~1 ulp of relative error, giving ~n·eps ≈ 1e-12
		// over the longest windows we render — far inside the 1e-9 budget.
		if ga := area * (1 - p.Eta); ga != 0 {
			sigma := w / twoSqrt2Ln2
			norm := ga / (sigma * sqrt2Pi)
			invSigma := 1 / sigma
			lo := int(math.Ceil((c - gaussCutWidths*w - start) / step))
			hi := int(math.Floor((c + gaussCutWidths*w - start) / step))
			if lo < 0 {
				lo = 0
			}
			if hi > n-1 {
				hi = n - 1
			}
			if lo > hi {
				continue
			}
			ds := step * invSigma
			dLo := (start-c)*invSigma + float64(lo)*ds
			v := norm * math.Exp(-0.5*dLo*dLo)
			m := math.Exp(-dLo*ds - 0.5*ds*ds)
			r := math.Exp(-ds * ds)
			for i := lo; i <= hi; i++ {
				dst[i] += v
				v *= m
				m *= r
			}
		}
	}
	if havePending {
		lorentzAccum(dst, pd0, step, pnum, pg2)
	}
}

// lorentzAccumGeneric is the scalar reference loop for the Lorentzian
// accumulation; the amd64 build dispatches to an AVX2 version that performs
// bit-identical arithmetic four lanes at a time.
func lorentzAccumGeneric(dst []float64, d0, step, num, g2 float64) {
	for i := range dst {
		d := d0 + float64(i)*step
		dst[i] += num / (d*d + g2)
	}
}

// lorentzPairAccumGeneric is the scalar reference for the paired form
// (n1·B + n2·A)/(A·B); the amd64 dispatch runs bit-identical AVX2 lanes.
func lorentzPairAccumGeneric(dst []float64, d01, g21, num1, d02, g22, num2, step float64) {
	for i := range dst {
		t := float64(i) * step
		d1 := d01 + t
		d2 := d02 + t
		a := d1*d1 + g21
		b := d2*d2 + g22
		dst[i] += (num1*b + num2*a) / (a * b)
	}
}
