package render

import (
	"math"
	"testing"

	"specml/internal/rng"
)

// TestLorentzAccumBitIdentical: the dispatched kernel (AVX2 on hosts that
// have it) must agree bit for bit with the scalar reference loop for
// arbitrary lengths, including tails not divisible by the vector width and
// non-zero starting contents of dst.
func TestLorentzAccumBitIdentical(t *testing.T) {
	src := rng.New(99)
	for _, n := range []int{0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 1700, 4093} {
		got := make([]float64, n)
		want := make([]float64, n)
		for i := range got {
			base := src.Normal(0, 1)
			got[i] = base
			want[i] = base
		}
		d0 := src.Normal(-5, 3)
		step := 0.001 + src.Float64()*0.01
		num := src.Float64() * 2
		g2 := 1e-6 + src.Float64()*0.1
		lorentzAccum(got, d0, step, num, g2)
		lorentzAccumGeneric(want, d0, step, num, g2)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d sample %d: dispatched %v (bits %x) vs scalar %v (bits %x)",
					n, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
			}
		}
	}
}

// TestLorentzAccumPairBitIdentical: same contract for the two-peak fused
// kernel, and the pairing itself must stay within a few ulp of evaluating
// the two peaks separately.
func TestLorentzAccumPairBitIdentical(t *testing.T) {
	src := rng.New(77)
	for _, n := range []int{0, 1, 4, 7, 8, 9, 31, 100, 1700} {
		got := make([]float64, n)
		want := make([]float64, n)
		sep := make([]float64, n)
		for i := range got {
			base := src.Normal(0, 1)
			got[i] = base
			want[i] = base
			sep[i] = base
		}
		d01 := src.Normal(-5, 3)
		d02 := src.Normal(-5, 3)
		step := 0.001 + src.Float64()*0.01
		num1 := src.Float64() * 2
		num2 := src.Float64() * 2
		g21 := 1e-6 + src.Float64()*0.1
		g22 := 1e-6 + src.Float64()*0.1
		lorentzAccumPair(got, d01, g21, num1, d02, g22, num2, step)
		lorentzPairAccumGeneric(want, d01, g21, num1, d02, g22, num2, step)
		lorentzAccumGeneric(sep, d01, step, num1, g21)
		lorentzAccumGeneric(sep, d02, step, num2, g22)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d sample %d: dispatched %v vs scalar %v", n, i, got[i], want[i])
			}
			if diff := math.Abs(got[i] - sep[i]); diff > 1e-12*math.Abs(sep[i]) {
				t.Fatalf("n=%d sample %d: paired form drifted %v relative from separate evaluation",
					n, i, diff/math.Abs(sep[i]))
			}
		}
	}
}

// BenchmarkLorentzAccum measures the dispatched full-axis Lorentzian loop
// on a Fig. 7-scale axis — the per-point cost floor of the cached render.
func BenchmarkLorentzAccum(b *testing.B) {
	dst := make([]float64, 1700)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lorentzAccum(dst, -5.0, 10.0/1699.0, 0.3, 0.01)
	}
}
