//go:build amd64

package render

import "os"

// cpuid and xgetbv are implemented in lorentz_amd64.s.
func cpuid(op, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// lorentzAccumAVX2 adds num/(d²+g2) for d = d0 + i·step onto dst, four
// lanes per iteration. len(dst) must be a multiple of 4. Implemented in
// lorentz_amd64.s with plain VMULPD/VADDPD/VDIVPD (no FMA contraction), so
// every lane performs exactly the IEEE operations of the scalar loop and
// the results are bit-identical to lorentzAccumGeneric.
func lorentzAccumAVX2(dst []float64, d0, step, num, g2 float64)

// lorentzPairAccumAVX2 is the paired form (n1·B + n2·A)/(A·B): one division
// per point for two peaks. len(dst) must be a multiple of 4; same
// bit-identity contract with lorentzPairAccumGeneric as the single kernel.
func lorentzPairAccumAVX2(dst []float64, d01, g21, num1, d02, g22, num2, step float64)

// SPECML_NOASM (any non-empty value) forces the portable scalar kernels
// even on AVX2-capable hosts, so CI can prove the scalar/SIMD bit-identity
// contract by running the same tests down both dispatch paths.
var hasAVX2 = os.Getenv("SPECML_NOASM") == "" && detectAVX2()

// detectAVX2 reports whether the CPU and OS support AVX2 (CPUID feature
// flag plus OSXSAVE/XGETBV confirmation that YMM state is preserved).
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	if eax, _ := xgetbv(); eax&6 != 6 {
		return false
	}
	_, ebx, _, _ := cpuid(7, 0)
	return ebx&(1<<5) != 0
}

// lorentzAccum dispatches the Lorentzian accumulation loop: the division is
// the per-point cost floor of area-accurate Lorentzian rendering, so the
// hot path runs it four lanes wide where the host allows.
func lorentzAccum(dst []float64, d0, step, num, g2 float64) {
	n := len(dst)
	if hasAVX2 && n >= 8 {
		n4 := n &^ 3
		lorentzAccumAVX2(dst[:n4], d0, step, num, g2)
		for i := n4; i < n; i++ {
			d := d0 + float64(i)*step
			dst[i] += num / (d*d + g2)
		}
		return
	}
	lorentzAccumGeneric(dst, d0, step, num, g2)
}

// lorentzAccumPair dispatches the two-peak fused accumulation.
func lorentzAccumPair(dst []float64, d01, g21, num1, d02, g22, num2, step float64) {
	n := len(dst)
	if hasAVX2 && n >= 8 {
		n4 := n &^ 3
		lorentzPairAccumAVX2(dst[:n4], d01, g21, num1, d02, g22, num2, step)
		for i := n4; i < n; i++ {
			t := float64(i) * step
			d1 := d01 + t
			d2 := d02 + t
			a := d1*d1 + g21
			b := d2*d2 + g22
			dst[i] += (num1*b + num2*a) / (a * b)
		}
		return
	}
	lorentzPairAccumGeneric(dst, d01, g21, num1, d02, g22, num2, step)
}
