//go:build !amd64

package render

// lorentzAccum on non-amd64 hosts is the portable scalar loop.
func lorentzAccum(dst []float64, d0, step, num, g2 float64) {
	lorentzAccumGeneric(dst, d0, step, num, g2)
}

// lorentzAccumPair on non-amd64 hosts is the portable scalar loop.
func lorentzAccumPair(dst []float64, d01, g21, num1, d02, g22, num2, step float64) {
	lorentzPairAccumGeneric(dst, d01, g21, num1, d02, g22, num2, step)
}
