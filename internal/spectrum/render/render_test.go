package render

import (
	"math"
	"testing"

	"specml/internal/rng"
	"specml/internal/spectrum"
)

// fig7Axis is a Fig. 7-scale target axis: the NMR experiments render onto
// 1700 points and the MS experiments onto 199, so 1200 points at NMR-like
// resolution exercises the same regime the paper's figures are built from.
func fig7Axis() spectrum.Axis {
	return spectrum.MustAxis(0, 0.01, 1200)
}

// randomPeaks draws a plausible multi-peak component: centers in the axis
// interior, widths spanning narrow to broad, mixed Gaussian/Lorentzian
// character.
func randomPeaks(src *rng.Source, k int) []spectrum.Peak {
	peaks := make([]spectrum.Peak, k)
	for i := range peaks {
		peaks[i] = spectrum.Peak{
			Center: src.Uniform(2, 10),
			Width:  src.Uniform(0.04, 0.25),
			Area:   src.Uniform(0.5, 2),
			Eta:    src.Float64(),
		}
	}
	return peaks
}

func maxAbs(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// renderReference renders the distorted profile through the Exact engine
// path (spectrum.RenderPeaks over the full axis) — the analytic ground
// truth every cached path is measured against.
func renderReference(t *testing.T, axis spectrum.Axis, peaks []spectrum.Peak, weight, shift, wf float64) []float64 {
	t.Helper()
	tmpl, err := NewEngine(Options{Exact: true}).NewTemplate(axis, peaks)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, axis.N)
	if err := tmpl.RenderInto(dst, weight, shift, wf); err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestCachedMatchesExactProperty is the engine's headline accuracy bound:
// across randomized weight/shift/width-factor draws on a Fig. 7-scale axis,
// the cached render paths (master-grid interpolation for pure shifts, the
// hoisted analytic kernel for broadened variants) agree with the exact
// analytic render to better than 1e-9 of the profile maximum.
func TestCachedMatchesExactProperty(t *testing.T) {
	axis := fig7Axis()
	src := rng.New(41)
	dst := make([]float64, axis.N)
	for trial := 0; trial < 40; trial++ {
		peaks := randomPeaks(src, 1+src.Intn(6))
		tmpl, err := NewEngine(Options{}).NewTemplate(axis, peaks)
		if err != nil {
			t.Fatal(err)
		}
		if tmpl.Oversample() == 0 {
			t.Fatal("cached template did not build a master grid")
		}
		weight := src.Uniform(0.1, 2)
		shift := src.Uniform(-0.05, 0.05)
		// Half the trials take the pure-shift master-grid path, half the
		// broadened analytic path.
		wf := 1.0
		if trial%2 == 1 {
			wf = src.Uniform(0.5, 1.5)
		}
		if wf == 1 && !tmpl.masterUsable(shift) {
			t.Fatalf("trial %d: shift %g should be inside the default margin", trial, shift)
		}
		want := renderReference(t, axis, peaks, weight, shift, wf)
		for i := range dst {
			dst[i] = 0
		}
		if err := tmpl.RenderInto(dst, weight, shift, wf); err != nil {
			t.Fatal(err)
		}
		scale := maxAbs(want)
		if diff := maxAbsDiff(dst, want); diff > 1e-9*scale {
			t.Fatalf("trial %d (wf=%g): cached render off by %g (%g relative), want ≤ 1e-9",
				trial, wf, diff, diff/scale)
		}
	}
}

// TestLinearInterpBound pins the looser documented bound of the 2-point
// interpolation mode.
func TestLinearInterpBound(t *testing.T) {
	axis := fig7Axis()
	src := rng.New(42)
	dst := make([]float64, axis.N)
	for trial := 0; trial < 10; trial++ {
		peaks := randomPeaks(src, 3)
		tmpl, err := NewEngine(Options{InterpOrder: InterpLinear}).NewTemplate(axis, peaks)
		if err != nil {
			t.Fatal(err)
		}
		shift := src.Uniform(-0.05, 0.05)
		want := renderReference(t, axis, peaks, 1, shift, 1)
		for i := range dst {
			dst[i] = 0
		}
		if err := tmpl.RenderInto(dst, 1, shift, 1); err != nil {
			t.Fatal(err)
		}
		scale := maxAbs(want)
		if diff := maxAbsDiff(dst, want); diff > 1e-4*scale {
			t.Fatalf("trial %d: linear-interp render off by %g relative, want ≤ 1e-4",
				trial, maxAbsDiff(dst, want)/scale)
		}
	}
}

// TestExactModeBitIdentical: the Exact engine path must reproduce
// spectrum.RenderPeaks on hand-distorted peaks bit for bit — this is the
// contract golden files rely on.
func TestExactModeBitIdentical(t *testing.T) {
	axis := fig7Axis()
	src := rng.New(43)
	peaks := randomPeaks(src, 4)
	tmpl, err := NewEngine(Options{Exact: true}).NewTemplate(axis, peaks)
	if err != nil {
		t.Fatal(err)
	}
	weight, shift, wf := 0.37, 0.021, 1.13
	got := make([]float64, axis.N)
	if err := tmpl.RenderInto(got, weight, shift, wf); err != nil {
		t.Fatal(err)
	}
	// legacy distortion order: shift center, scale width, scale area
	ps := make([]spectrum.Peak, len(peaks))
	for i, p := range peaks {
		p.Center += shift
		p.Width *= wf
		p.Area *= weight
		ps[i] = p
	}
	want := spectrum.New(axis)
	if err := spectrum.RenderPeaks(want, ps, 0); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want.Intensities[i] {
			t.Fatalf("sample %d differs bitwise: %v vs %v", i, got[i], want.Intensities[i])
		}
	}
}

// TestShiftBeyondMarginFallsBack: a shift outside the master-grid margin
// must route to the analytic path and stay accurate.
func TestShiftBeyondMarginFallsBack(t *testing.T) {
	axis := fig7Axis()
	src := rng.New(44)
	peaks := randomPeaks(src, 3)
	tmpl, err := NewEngine(Options{}).NewTemplate(axis, peaks)
	if err != nil {
		t.Fatal(err)
	}
	const shift = 3.0 // far beyond the default ~0.4 axis-unit margin
	if tmpl.masterUsable(shift) {
		t.Fatal("shift of a quarter axis span should not be inside the margin")
	}
	got := make([]float64, axis.N)
	if err := tmpl.RenderInto(got, 1, shift, 1); err != nil {
		t.Fatal(err)
	}
	want := renderReference(t, axis, peaks, 1, shift, 1)
	scale := maxAbs(want)
	if diff := maxAbsDiff(got, want); diff > 1e-9*scale {
		t.Fatalf("fallback render off by %g relative", diff/scale)
	}
}

// TestRenderIntoAccumulates: RenderInto must add onto existing contents,
// mirroring spectrum.RenderPeaks semantics.
func TestRenderIntoAccumulates(t *testing.T) {
	axis := spectrum.MustAxis(0, 0.01, 200)
	peaks := []spectrum.Peak{{Center: 1, Width: 0.1, Area: 1, Eta: 0.5}}
	for _, opts := range []Options{{}, {Exact: true}} {
		tmpl, err := NewEngine(opts).NewTemplate(axis, peaks)
		if err != nil {
			t.Fatal(err)
		}
		once := make([]float64, axis.N)
		if err := tmpl.RenderInto(once, 1, 0, 1); err != nil {
			t.Fatal(err)
		}
		twice := make([]float64, axis.N)
		copy(twice, once)
		if err := tmpl.RenderInto(twice, 1, 0, 1); err != nil {
			t.Fatal(err)
		}
		for i := range twice {
			if math.Abs(twice[i]-2*once[i]) > 1e-12 {
				t.Fatalf("opts %+v: render does not accumulate at %d", opts, i)
			}
		}
	}
}

// TestOversampleOverride: an explicit oversampling factor must be honored
// (after clamping), and the MaxShift option must widen the usable range.
func TestOversampleOverride(t *testing.T) {
	axis := fig7Axis()
	peaks := []spectrum.Peak{{Center: 6, Width: 0.1, Area: 1, Eta: 0.3}}
	tmpl, err := NewEngine(Options{Oversample: 16}).NewTemplate(axis, peaks)
	if err != nil {
		t.Fatal(err)
	}
	if tmpl.Oversample() != 16 {
		t.Fatalf("oversample = %d, want 16", tmpl.Oversample())
	}
	wide, err := NewEngine(Options{MaxShift: 2.5}).NewTemplate(axis, peaks)
	if err != nil {
		t.Fatal(err)
	}
	if !wide.masterUsable(2.0) {
		t.Fatal("MaxShift 2.5 should admit a 2.0 shift")
	}
	got := make([]float64, axis.N)
	if err := wide.RenderInto(got, 1, 2.0, 1); err != nil {
		t.Fatal(err)
	}
	want := renderReference(t, axis, peaks, 1, 2.0, 1)
	if diff := maxAbsDiff(got, want); diff > 1e-9*maxAbs(want) {
		t.Fatalf("wide-margin render off by %g relative", diff/maxAbs(want))
	}
}

// TestRenderSpectrumAxisCheck: Render must reject a mismatched axis.
func TestRenderSpectrumAxisCheck(t *testing.T) {
	axis := spectrum.MustAxis(0, 0.01, 100)
	tmpl, err := NewEngine(Options{}).NewTemplate(axis,
		[]spectrum.Peak{{Center: 0.5, Width: 0.05, Area: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s := spectrum.New(axis)
	if err := tmpl.Render(s, 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	other := spectrum.New(spectrum.MustAxis(0, 0.02, 100))
	if err := tmpl.Render(other, 1, 0, 1); err == nil {
		t.Fatal("mismatched axis must error")
	}
}

func TestTemplateValidation(t *testing.T) {
	axis := spectrum.MustAxis(0, 0.01, 100)
	eng := NewEngine(Options{})
	if _, err := eng.NewTemplate(axis, nil); err == nil {
		t.Fatal("empty peak list must error")
	}
	if _, err := eng.NewTemplate(spectrum.Axis{N: 0, Step: 0.01}, []spectrum.Peak{{Center: 1, Width: 0.1, Area: 1}}); err == nil {
		t.Fatal("degenerate axis must error")
	}
	if _, err := eng.NewTemplate(axis, []spectrum.Peak{{Center: 1, Width: -1, Area: 1}}); err == nil {
		t.Fatal("invalid peak must error")
	}
	tmpl, err := eng.NewTemplate(axis, []spectrum.Peak{{Center: 0.5, Width: 0.05, Area: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tmpl.RenderInto(make([]float64, 7), 1, 0, 1); err == nil {
		t.Fatal("short destination must error")
	}
	if err := tmpl.RenderInto(make([]float64, axis.N), 1, 0, 0); err == nil {
		t.Fatal("zero width factor must error")
	}
	if err := tmpl.RenderInto(make([]float64, axis.N), 1, 0, -0.5); err == nil {
		t.Fatal("negative width factor must error")
	}
}

// TestEngineOptionNormalization: defaults resolve to cubic interpolation
// and automatic oversampling.
func TestEngineOptionNormalization(t *testing.T) {
	o := NewEngine(Options{}).Options()
	if o.InterpOrder != InterpCubic {
		t.Fatalf("default interp order %d, want cubic", o.InterpOrder)
	}
	o = NewEngine(Options{Oversample: -3, MaxShift: -1}).Options()
	if o.Oversample != 0 || o.MaxShift != 0 {
		t.Fatalf("negative knobs must normalize to automatic: %+v", o)
	}
}

// TestConcurrentRenderSafe: templates are read-only after construction, so
// concurrent RenderInto calls into distinct destinations must agree with a
// sequential render (run with -race in CI).
func TestConcurrentRenderSafe(t *testing.T) {
	axis := fig7Axis()
	src := rng.New(45)
	peaks := randomPeaks(src, 4)
	for _, opts := range []Options{{}, {Exact: true}} {
		tmpl, err := NewEngine(opts).NewTemplate(axis, peaks)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, axis.N)
		if err := tmpl.RenderInto(want, 1, 0.01, 1); err != nil {
			t.Fatal(err)
		}
		const workers = 8
		got := make([][]float64, workers)
		done := make(chan error, workers)
		for w := 0; w < workers; w++ {
			got[w] = make([]float64, axis.N)
			go func(dst []float64) {
				done <- tmpl.RenderInto(dst, 1, 0.01, 1)
			}(got[w])
		}
		for w := 0; w < workers; w++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		for w := range got {
			if maxAbsDiff(got[w], want) != 0 {
				t.Fatalf("opts %+v: concurrent render %d differs", opts, w)
			}
		}
	}
}
