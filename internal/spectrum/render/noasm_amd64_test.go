//go:build amd64

package render

import (
	"os"
	"testing"
)

// TestNoasmOverride proves the SPECML_NOASM escape hatch: when the
// variable is set (the CI noasm job), package init must have left the AVX2
// path disabled even on capable hosts, so the whole test run exercises the
// portable scalar kernels. On an unset environment the test only checks
// that dispatch agrees with detection.
func TestNoasmOverride(t *testing.T) {
	if os.Getenv("SPECML_NOASM") != "" {
		if hasAVX2 {
			t.Fatal("SPECML_NOASM is set but the AVX2 path is still enabled")
		}
		return
	}
	if hasAVX2 != detectAVX2() {
		t.Fatalf("hasAVX2 = %v but detectAVX2() = %v with SPECML_NOASM unset", hasAVX2, detectAVX2())
	}
}

// TestScalarDispatchForced pins that disabling the feature flag routes
// lorentzAccum through the generic loop (identical output is already
// guaranteed by the bit-identity tests; this checks the flag is honored
// even for large, vector-width-aligned inputs).
func TestScalarDispatchForced(t *testing.T) {
	saved := hasAVX2
	defer func() { hasAVX2 = saved }()
	hasAVX2 = false

	got := make([]float64, 64)
	want := make([]float64, 64)
	lorentzAccum(got, -2, 0.05, 0.7, 0.02)
	lorentzAccumGeneric(want, -2, 0.05, 0.7, 0.02)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("forced-scalar dispatch differs from generic at %d", i)
		}
	}
}
