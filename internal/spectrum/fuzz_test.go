package spectrum

import (
	"math"
	"testing"
)

// fuzzIntensities decodes raw fuzz bytes into float64 intensities,
// deliberately admitting NaN, +/-Inf and denormals: the preprocessing
// entry points must tolerate arbitrary bit patterns without panicking.
func fuzzIntensities(data []byte) []float64 {
	n := len(data) / 8
	if n == 0 {
		return nil
	}
	x := make([]float64, n)
	for i := range x {
		bits := uint64(0)
		for j := 0; j < 8; j++ {
			bits = bits<<8 | uint64(data[i*8+j])
		}
		x[i] = math.Float64frombits(bits)
	}
	return x
}

// FuzzResample drives Resample with hostile intensities and axis
// geometries. Contract: never panic, and always return exactly the target
// axis length.
func FuzzResample(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 0.0, 1.0, 10, 5.0, 0.25)
	f.Add([]byte{0xff, 0xf0, 0, 0, 0, 0, 0, 0}, 1.0, 0.5, 3, -4.0, 2.0)     // +Inf sample
	f.Add([]byte{0x7f, 0xf8, 0, 0, 0, 0, 0, 1}, -10.0, 1e-9, 100, 0.0, 1e9) // NaN sample
	f.Fuzz(func(t *testing.T, data []byte, srcStart, srcStep float64, dstN int, dstStart, dstStep float64) {
		x := fuzzIntensities(data)
		srcAxis, err := NewAxis(srcStart, srcStep, len(x))
		if err != nil {
			t.Skip()
		}
		if dstN < 1 || dstN > 4096 {
			dstN = 1 + (abs(dstN) % 4096)
		}
		dstAxis, err := NewAxis(dstStart, dstStep, dstN)
		if err != nil {
			t.Skip()
		}
		s := &Spectrum{Axis: srcAxis, Intensities: x}
		out := s.Resample(dstAxis)
		if out.Axis.N != dstN || len(out.Intensities) != dstN {
			t.Fatalf("resample returned %d samples, want %d", len(out.Intensities), dstN)
		}
	})
}

// FuzzNormalize drives every normalization mode over arbitrary bit
// patterns. Contract: never panic, preserve length, and keep the
// degenerate guard — an all-zero spectrum stays untouched.
func FuzzNormalize(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint8(0))
	f.Add([]byte{0x7f, 0xf0, 0, 0, 0, 0, 0, 0}, uint8(1)) // +Inf
	f.Add([]byte{0x7f, 0xf8, 0, 0, 0, 0, 0, 1}, uint8(2)) // NaN
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, mode uint8) {
		x := fuzzIntensities(data)
		axis, err := NewAxis(0, 1, max(len(x), 1))
		if err != nil {
			t.Skip()
		}
		if len(x) == 0 {
			x = make([]float64, 1)
		}
		s := &Spectrum{Axis: axis, Intensities: x}
		n := len(s.Intensities)
		switch mode % 3 {
		case 0:
			s.NormalizeMax()
		case 1:
			s.NormalizeArea()
		case 2:
			s.NormalizeSum()
		}
		if len(s.Intensities) != n {
			t.Fatalf("normalization changed the sample count: %d -> %d", n, len(s.Intensities))
		}
		// the guard for degenerate spectra: all-zero stays all-zero
		zero := New(axis)
		zero.NormalizeMax()
		zero.NormalizeArea()
		zero.NormalizeSum()
		for i, v := range zero.Intensities {
			if v != 0 {
				t.Fatalf("all-zero spectrum mutated at %d: %g", i, v)
			}
		}
	})
}

func abs(v int) int {
	if v < 0 {
		if v == math.MinInt {
			return math.MaxInt
		}
		return -v
	}
	return v
}
