package spectrum

import (
	"fmt"
	"math"
	"sort"
)

// SavitzkyGolay smooths (deriv = 0) or differentiates (deriv >= 1) a
// spectrum with a Savitzky-Golay filter of the given half-window and
// polynomial degree: within every window of 2*halfWindow+1 samples a
// polynomial is least-squares fitted and evaluated (or differentiated) at
// the center. Edges use shifted windows so the output covers the full
// axis. This is the standard denoising step applied to spectra before
// classical multivariate analysis.
//
// The least-squares solve depends only on (halfWindow, degree, deriv), so
// the coefficient vectors are computed once per parameter triple and cached
// process-wide (see sgWeights); each call is then a dot product per sample.
func SavitzkyGolay(s *Spectrum, halfWindow, degree, deriv int) (*Spectrum, error) {
	if halfWindow < 1 {
		return nil, fmt.Errorf("spectrum: halfWindow must be >= 1, got %d", halfWindow)
	}
	window := 2*halfWindow + 1
	if degree < deriv {
		return nil, fmt.Errorf("spectrum: degree %d cannot support derivative order %d", degree, deriv)
	}
	if degree >= window {
		return nil, fmt.Errorf("spectrum: degree %d too high for window %d", degree, window)
	}
	if deriv < 0 {
		return nil, fmt.Errorf("spectrum: negative derivative order")
	}
	if s.Axis.N < window {
		return nil, fmt.Errorf("spectrum: %d samples shorter than window %d", s.Axis.N, window)
	}
	weights, err := sgWeights(halfWindow, degree, deriv)
	if err != nil {
		return nil, err
	}
	// convert the derivative from sample units to axis units
	scale := 1 / math.Pow(s.Axis.Step, float64(deriv))
	out := New(s.Axis)
	for i := 0; i < s.Axis.N; i++ {
		// window start clamped to the axis; the evaluation point moves
		// inside the window near the edges
		start := i - halfWindow
		if start < 0 {
			start = 0
		}
		if start+window > s.Axis.N {
			start = s.Axis.N - window
		}
		w := weights[i-start]
		v := 0.0
		for k, wk := range w {
			v += wk * s.Intensities[start+k]
		}
		out.Intensities[i] = v * scale
	}
	return out, nil
}

// EstimateBaseline estimates a slowly varying baseline with the iterative
// minimum-suppression scheme (a simplified SNIP): the spectrum is clipped
// repeatedly against the average of symmetric neighbours at decreasing
// spans, leaving the broad background while removing peaks.
func EstimateBaseline(s *Spectrum, maxSpan int) (*Spectrum, error) {
	if maxSpan < 1 {
		return nil, fmt.Errorf("spectrum: maxSpan must be >= 1, got %d", maxSpan)
	}
	if maxSpan >= s.Axis.N/2 {
		maxSpan = s.Axis.N/2 - 1
		if maxSpan < 1 {
			return nil, fmt.Errorf("spectrum: spectrum too short for baseline estimation")
		}
	}
	base := s.Clone()
	tmp := make([]float64, s.Axis.N)
	for span := maxSpan; span >= 1; span-- {
		copy(tmp, base.Intensities)
		for i := span; i < s.Axis.N-span; i++ {
			avg := 0.5 * (base.Intensities[i-span] + base.Intensities[i+span])
			if avg < tmp[i] {
				tmp[i] = avg
			}
		}
		copy(base.Intensities, tmp)
	}
	return base, nil
}

// SubtractBaseline returns the spectrum with its estimated baseline
// removed.
func SubtractBaseline(s *Spectrum, maxSpan int) (*Spectrum, error) {
	base, err := EstimateBaseline(s, maxSpan)
	if err != nil {
		return nil, err
	}
	out := s.Clone()
	for i := range out.Intensities {
		out.Intensities[i] -= base.Intensities[i]
	}
	return out, nil
}

// SNR estimates the signal-to-noise ratio of a spectrum: the maximum
// baseline-corrected signal divided by the robust noise level (median
// absolute deviation of the first difference, scaled to sigma).
func SNR(s *Spectrum) float64 {
	if s.Axis.N < 8 {
		return 0
	}
	diffs := make([]float64, 0, s.Axis.N-1)
	for i := 1; i < s.Axis.N; i++ {
		diffs = append(diffs, math.Abs(s.Intensities[i]-s.Intensities[i-1]))
	}
	noise := medianFloat(diffs) / (0.6745 * math.Sqrt2)
	if noise <= 0 {
		return math.Inf(1)
	}
	base, err := EstimateBaseline(s, s.Axis.N/8)
	if err != nil {
		return 0
	}
	peak := 0.0
	for i := range s.Intensities {
		if v := s.Intensities[i] - base.Intensities[i]; v > peak {
			peak = v
		}
	}
	return peak / noise
}

func medianFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return 0.5 * (c[n/2-1] + c[n/2])
}
