package spectrum

import (
	"math"
	"sync"
	"testing"

	"specml/internal/rng"
)

// TestRenderPeaksMatchesNaive: the hoisted inner loop of renderPeaks (all
// per-peak constants precomputed outside the loop) must be bit-identical to
// the naive per-point Peak.Value evaluation — the hoisting is a pure
// algebraic refactor, not an approximation.
func TestRenderPeaksMatchesNaive(t *testing.T) {
	axis := MustAxis(-2, 0.013, 700)
	src := rng.New(21)
	peaks := make([]Peak, 5)
	for i := range peaks {
		peaks[i] = Peak{
			Center: src.Uniform(-1, 6),
			Width:  src.Uniform(0.05, 0.4),
			Area:   src.Uniform(0.2, 3),
			Eta:    src.Float64(),
		}
	}
	s := New(axis)
	if err := RenderPeaks(s, peaks, 0); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, axis.N)
	for i := range want {
		x := axis.Value(i)
		for _, p := range peaks {
			want[i] += p.Value(x)
		}
	}
	for i := range want {
		if s.Intensities[i] != want[i] {
			t.Fatalf("sample %d: hoisted %v vs naive %v", i, s.Intensities[i], want[i])
		}
	}
}

// TestLorentzianTailFraction checks the closed form against the definition:
// the fraction of a unit Lorentzian's area beyond ±k widths of the center.
func TestLorentzianTailFraction(t *testing.T) {
	for _, k := range []float64{1, 4, 12} {
		got := LorentzianTailFraction(k)
		// CDF of the Lorentzian at d = k·FWHM (γ = FWHM/2): the retained
		// central fraction is (2/π)·atan(2k).
		want := 1 - 2/math.Pi*math.Atan(2*k)
		if math.Abs(got-want) > 1e-15 {
			t.Fatalf("k=%g: %v, want %v", k, got, want)
		}
		if got <= 0 || got >= 1 {
			t.Fatalf("k=%g: fraction %v outside (0,1)", k, got)
		}
	}
	// at the production cutoff of 12 widths, ~2.65% of the Lorentzian area
	// still sits in the tails — the correction is not a rounding concern
	if f := LorentzianTailFraction(12); math.Abs(f-0.0265) > 1e-3 {
		t.Fatalf("tail fraction at 12 widths = %v, want ≈ 0.0265", f)
	}
}

// TestRenderPeaksTailCorrected: windowed rendering with the analytic
// Lorentzian tail correction must recover the area a plain cutoff render
// loses, and stay pointwise close to the full-axis render.
func TestRenderPeaksTailCorrected(t *testing.T) {
	axis := MustAxis(-200, 0.05, 8001)
	peaks := []Peak{
		{Center: -30, Width: 1.2, Area: 2, Eta: 1},   // pure Lorentzian
		{Center: 45, Width: 0.8, Area: 1, Eta: 0.4},  // mixed
		{Center: 120, Width: 2.0, Area: 3, Eta: 0.9}, // mostly Lorentzian
	}
	full := New(axis)
	if err := RenderPeaks(full, peaks, 0); err != nil {
		t.Fatal(err)
	}
	trunc := New(axis)
	if err := RenderPeaks(trunc, peaks, 4); err != nil {
		t.Fatal(err)
	}
	corrected := New(axis)
	if err := RenderPeaksTailCorrected(corrected, peaks, 4); err != nil {
		t.Fatal(err)
	}
	sum := func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			s += v
		}
		return s
	}
	lost := sum(full.Intensities) - sum(trunc.Intensities)
	if lost <= 0 {
		t.Fatal("truncation should lose Lorentzian tail intensity")
	}
	if gap := math.Abs(sum(corrected.Intensities) - sum(full.Intensities)); gap > 0.02*lost {
		t.Fatalf("correction recovered only part of the tail: residual %v of %v lost", gap, lost)
	}
	// pointwise the linearly interpolated tails track the true 1/d² decay
	scale := full.Max()
	for i := range full.Intensities {
		if d := math.Abs(corrected.Intensities[i] - full.Intensities[i]); d > 2e-4*scale {
			t.Fatalf("sample %d: corrected render off by %v (%v of max)", i, d, d/scale)
		}
	}
	// inside the windows the corrected render equals the truncated one plus
	// only the other peaks' tails, so it must dominate trunc everywhere
	for i := range trunc.Intensities {
		if corrected.Intensities[i] < trunc.Intensities[i]-1e-15 {
			t.Fatalf("sample %d: tail correction decreased intensity", i)
		}
	}
}

// TestRenderPeaksTailCorrectedGaussianNoop: a pure Gaussian has no
// Lorentzian tail, so the corrected render equals the plain cutoff render.
func TestRenderPeaksTailCorrectedGaussianNoop(t *testing.T) {
	axis := MustAxis(0, 0.02, 2000)
	peaks := []Peak{{Center: 20, Width: 0.5, Area: 1, Eta: 0}}
	a := New(axis)
	if err := RenderPeaks(a, peaks, 6); err != nil {
		t.Fatal(err)
	}
	b := New(axis)
	if err := RenderPeaksTailCorrected(b, peaks, 6); err != nil {
		t.Fatal(err)
	}
	for i := range a.Intensities {
		if a.Intensities[i] != b.Intensities[i] {
			t.Fatalf("sample %d differs for a Gaussian peak", i)
		}
	}
}

// TestResampleIntoMatchesResample: the allocation-free sibling must agree
// with Resample exactly and validate its destination.
func TestResampleIntoMatchesResample(t *testing.T) {
	src := New(MustAxis(0, 0.1, 101))
	for i := range src.Intensities {
		src.Intensities[i] = math.Sin(0.3 * float64(i))
	}
	target := MustAxis(-1, 0.07, 180) // overlaps partially, forces 0-fill
	want := src.Resample(target)
	dst := make([]float64, target.N)
	if err := src.ResampleInto(dst, target); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != want.Intensities[i] {
			t.Fatalf("sample %d: %v vs %v", i, dst[i], want.Intensities[i])
		}
	}
	if err := src.ResampleInto(make([]float64, 3), target); err == nil {
		t.Fatal("wrong destination length must error")
	}
}

// TestSavitzkyGolayCacheConsistency: the process-wide coefficient cache
// must hand every caller identical weights — concurrent first-touch
// included — and the filter must stay a linear functional of the input.
func TestSavitzkyGolayCacheConsistency(t *testing.T) {
	axis := MustAxis(0, 0.05, 400)
	src := rng.New(33)
	a := New(axis)
	b := New(axis)
	for i := 0; i < axis.N; i++ {
		a.Intensities[i] = src.Normal(0, 1)
		b.Intensities[i] = src.Normal(0, 1)
	}
	// use an uncommon parameter set so this test exercises a fresh cache
	// entry under concurrency
	const hw, deg, deriv = 9, 4, 1
	var wg sync.WaitGroup
	out := make([]*Spectrum, 8)
	for w := range out {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := SavitzkyGolay(a, hw, deg, deriv)
			if err != nil {
				t.Error(err)
				return
			}
			out[w] = s
		}(w)
	}
	wg.Wait()
	for w := 1; w < len(out); w++ {
		for i := range out[0].Intensities {
			if out[w].Intensities[i] != out[0].Intensities[i] {
				t.Fatalf("goroutine %d got different SG output at %d", w, i)
			}
		}
	}
	// linearity: SG(a+b) == SG(a) + SG(b) — true iff every call applies the
	// same cached weight vectors
	sum := New(axis)
	for i := range sum.Intensities {
		sum.Intensities[i] = a.Intensities[i] + b.Intensities[i]
	}
	sa, err := SavitzkyGolay(a, hw, deg, deriv)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := SavitzkyGolay(b, hw, deg, deriv)
	if err != nil {
		t.Fatal(err)
	}
	ssum, err := SavitzkyGolay(sum, hw, deg, deriv)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ssum.Intensities {
		if math.Abs(ssum.Intensities[i]-(sa.Intensities[i]+sb.Intensities[i])) > 1e-9 {
			t.Fatalf("SG not linear at %d", i)
		}
	}
}
