package spectrum

import (
	"math"
	"testing"
	"testing/quick"

	"specml/internal/rng"
)

func TestSavitzkyGolayReproducesPolynomials(t *testing.T) {
	// A degree-2 filter must reproduce any quadratic exactly (smoothing is
	// the identity on polynomials up to the filter degree).
	axis := MustAxis(0, 0.5, 101)
	s := New(axis)
	for i := range s.Intensities {
		x := axis.Value(i)
		s.Intensities[i] = 2 + 3*x - 0.1*x*x
	}
	sm, err := SavitzkyGolay(s, 5, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sm.Intensities {
		if math.Abs(sm.Intensities[i]-s.Intensities[i]) > 1e-6*(1+math.Abs(s.Intensities[i])) {
			t.Fatalf("sample %d: %v vs %v", i, sm.Intensities[i], s.Intensities[i])
		}
	}
}

func TestSavitzkyGolayDerivative(t *testing.T) {
	// First derivative of 3x - 0.1x² is 3 - 0.2x, in axis units.
	axis := MustAxis(0, 0.25, 201)
	s := New(axis)
	for i := range s.Intensities {
		x := axis.Value(i)
		s.Intensities[i] = 3*x - 0.1*x*x
	}
	d, err := SavitzkyGolay(s, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < axis.N; i += 13 {
		want := 3 - 0.2*axis.Value(i)
		if math.Abs(d.Intensities[i]-want) > 1e-6 {
			t.Fatalf("derivative at %v = %v, want %v", axis.Value(i), d.Intensities[i], want)
		}
	}
}

func TestSavitzkyGolayDenoises(t *testing.T) {
	axis := MustAxis(0, 0.02, 501)
	clean := New(axis)
	noisy := New(axis)
	src := rng.New(9)
	for i := range clean.Intensities {
		x := axis.Value(i)
		clean.Intensities[i] = GaussianValue(x, 5, 1.2)
		noisy.Intensities[i] = clean.Intensities[i] + src.Normal(0, 0.02)
	}
	sm, err := SavitzkyGolay(noisy, 8, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	mseNoisy, mseSmooth := 0.0, 0.0
	for i := range clean.Intensities {
		dn := noisy.Intensities[i] - clean.Intensities[i]
		ds := sm.Intensities[i] - clean.Intensities[i]
		mseNoisy += dn * dn
		mseSmooth += ds * ds
	}
	if mseSmooth > mseNoisy/3 {
		t.Fatalf("smoothing barely helped: %v vs %v", mseSmooth, mseNoisy)
	}
}

func TestSavitzkyGolayValidation(t *testing.T) {
	s := New(MustAxis(0, 1, 50))
	cases := []struct{ hw, deg, deriv int }{
		{0, 2, 0},  // window too small
		{3, 1, 2},  // derivative above degree
		{2, 5, 0},  // degree >= window
		{3, 2, -1}, // negative derivative
		{30, 2, 0}, // window longer than axis
	}
	for i, c := range cases {
		if _, err := SavitzkyGolay(s, c.hw, c.deg, c.deriv); err == nil {
			t.Fatalf("case %d must error", i)
		}
	}
}

func TestEstimateBaselineRecoversOffset(t *testing.T) {
	// peaks on a tilted baseline: the estimate must track the tilt and
	// ignore the peaks
	axis := MustAxis(0, 0.05, 801)
	s := New(axis)
	for i := range s.Intensities {
		x := axis.Value(i)
		s.Intensities[i] = 0.5 + 0.02*x // baseline
	}
	if err := RenderPeaks(s, []Peak{
		{Center: 10, Area: 5, Width: 0.4, Eta: 0},
		{Center: 25, Area: 3, Width: 0.5, Eta: 0},
	}, 0); err != nil {
		t.Fatal(err)
	}
	base, err := EstimateBaseline(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	// away from the edges the baseline should be close to the true line
	for i := 100; i < axis.N-100; i += 37 {
		x := axis.Value(i)
		want := 0.5 + 0.02*x
		if math.Abs(base.Intensities[i]-want) > 0.08 {
			t.Fatalf("baseline at %v = %v, want ~%v", x, base.Intensities[i], want)
		}
	}
	// and the corrected spectrum keeps the peaks
	corr, err := SubtractBaseline(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	if corr.ValueAt(10) < 1 {
		t.Fatalf("peak lost after baseline subtraction: %v", corr.ValueAt(10))
	}
	if v := corr.ValueAt(35); math.Abs(v) > 0.1 {
		t.Fatalf("peak-free region not flattened: %v", v)
	}
}

// Property: the estimated baseline never exceeds the spectrum.
func TestBaselineNeverAboveSpectrumProperty(t *testing.T) {
	src := rng.New(13)
	axis := MustAxis(0, 0.1, 201)
	f := func(_ uint8) bool {
		s := New(axis)
		for i := range s.Intensities {
			s.Intensities[i] = src.Float64()
		}
		base, err := EstimateBaseline(s, 20)
		if err != nil {
			return false
		}
		for i := range base.Intensities {
			if base.Intensities[i] > s.Intensities[i]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateBaselineValidation(t *testing.T) {
	s := New(MustAxis(0, 1, 3))
	if _, err := EstimateBaseline(s, 0); err == nil {
		t.Fatal("zero span must error")
	}
	if _, err := EstimateBaseline(s, 5); err == nil {
		t.Fatal("too-short spectrum must error")
	}
}

func TestSNRRankings(t *testing.T) {
	axis := MustAxis(0, 0.01, 1001)
	mk := func(noise float64, seed uint64) *Spectrum {
		s := New(axis)
		if err := RenderPeaks(s, []Peak{{Center: 5, Area: 1, Width: 0.2, Eta: 0}}, 0); err != nil {
			t.Fatal(err)
		}
		src := rng.New(seed)
		for i := range s.Intensities {
			s.Intensities[i] += src.Normal(0, noise)
		}
		return s
	}
	clean := SNR(mk(0.001, 1))
	dirty := SNR(mk(0.05, 2))
	if clean <= dirty {
		t.Fatalf("SNR ordering wrong: clean %v vs dirty %v", clean, dirty)
	}
	if dirty < 1 {
		t.Fatalf("dirty SNR implausibly low: %v", dirty)
	}
	// degenerate inputs
	if SNR(New(MustAxis(0, 1, 4))) != 0 {
		t.Fatal("too-short spectrum must give 0")
	}
}
