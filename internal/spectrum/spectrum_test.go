package spectrum

import (
	"math"
	"testing"
	"testing/quick"

	"specml/internal/rng"
)

func TestNewAxisValidation(t *testing.T) {
	if _, err := NewAxis(0, -1, 10); err == nil {
		t.Fatal("negative step must error")
	}
	if _, err := NewAxis(0, 1, 0); err == nil {
		t.Fatal("zero length must error")
	}
	a, err := NewAxis(1, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.End() != 3 {
		t.Fatalf("End = %v, want 3", a.End())
	}
}

func TestAxisIndexRoundTrip(t *testing.T) {
	a := MustAxis(10, 0.25, 100)
	for i := 0; i < a.N; i += 7 {
		x := a.Value(i)
		if got := a.Index(x); math.Abs(got-float64(i)) > 1e-9 {
			t.Fatalf("Index(Value(%d)) = %v", i, got)
		}
		if a.NearestIndex(x) != i {
			t.Fatalf("NearestIndex(Value(%d)) = %d", i, a.NearestIndex(x))
		}
	}
}

func TestAxisNearestIndexClamps(t *testing.T) {
	a := MustAxis(0, 1, 10)
	if a.NearestIndex(-5) != 0 || a.NearestIndex(100) != 9 {
		t.Fatal("NearestIndex must clamp to the axis")
	}
}

func TestAxisContains(t *testing.T) {
	a := MustAxis(2, 1, 3) // 2,3,4
	if !a.Contains(2) || !a.Contains(4) || a.Contains(1.9) || a.Contains(4.1) {
		t.Fatal("Contains wrong")
	}
}

func TestAddAxisMismatch(t *testing.T) {
	s1 := New(MustAxis(0, 1, 10))
	s2 := New(MustAxis(0, 2, 10))
	if err := s1.Add(1, s2); err == nil {
		t.Fatal("Add with mismatched axes must error")
	}
}

func TestIntegrateConstant(t *testing.T) {
	s := New(MustAxis(0, 0.1, 101)) // spans [0,10]
	for i := range s.Intensities {
		s.Intensities[i] = 2
	}
	if got := s.Integrate(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("Integrate = %v, want 20", got)
	}
}

func TestIntegrateBetween(t *testing.T) {
	s := New(MustAxis(0, 0.1, 101))
	for i := range s.Intensities {
		s.Intensities[i] = 1
	}
	if got := s.IntegrateBetween(2, 5); math.Abs(got-3) > 1e-9 {
		t.Fatalf("IntegrateBetween = %v, want 3", got)
	}
	// reversed bounds are normalized
	if got := s.IntegrateBetween(5, 2); math.Abs(got-3) > 1e-9 {
		t.Fatalf("IntegrateBetween reversed = %v, want 3", got)
	}
}

func TestValueAtInterpolatesLinearly(t *testing.T) {
	s := New(MustAxis(0, 1, 3))
	s.Intensities = []float64{0, 10, 20}
	if got := s.ValueAt(0.5); math.Abs(got-5) > 1e-12 {
		t.Fatalf("ValueAt(0.5) = %v, want 5", got)
	}
	if got := s.ValueAt(1.75); math.Abs(got-17.5) > 1e-12 {
		t.Fatalf("ValueAt(1.75) = %v, want 17.5", got)
	}
	if s.ValueAt(-1) != 0 || s.ValueAt(5) != 0 {
		t.Fatal("out-of-range ValueAt must be 0")
	}
}

func TestResampleIdentity(t *testing.T) {
	axis := MustAxis(0, 1, 50)
	s := New(axis)
	src := rng.New(5)
	for i := range s.Intensities {
		s.Intensities[i] = src.Float64()
	}
	r := s.Resample(axis)
	for i := range r.Intensities {
		if math.Abs(r.Intensities[i]-s.Intensities[i]) > 1e-12 {
			t.Fatal("resampling onto the same axis must be the identity")
		}
	}
}

func TestResampleRefineAndCoarsen(t *testing.T) {
	// A linear ramp is reproduced exactly by linear interpolation at any
	// resolution.
	s := New(MustAxis(0, 1, 11))
	for i := range s.Intensities {
		s.Intensities[i] = float64(i)
	}
	fine := s.Resample(MustAxis(0, 0.25, 41))
	for i := range fine.Intensities {
		want := fine.Axis.Value(i)
		if math.Abs(fine.Intensities[i]-want) > 1e-12 {
			t.Fatalf("refined sample %d = %v, want %v", i, fine.Intensities[i], want)
		}
	}
	coarse := fine.Resample(MustAxis(0, 2, 6))
	for i := range coarse.Intensities {
		want := coarse.Axis.Value(i)
		if math.Abs(coarse.Intensities[i]-want) > 1e-12 {
			t.Fatalf("coarse sample %d = %v, want %v", i, coarse.Intensities[i], want)
		}
	}
}

func TestNormalizeMax(t *testing.T) {
	s := New(MustAxis(0, 1, 4))
	s.Intensities = []float64{1, 4, 2, 0}
	s.NormalizeMax()
	if s.Max() != 1 || s.Intensities[0] != 0.25 {
		t.Fatalf("NormalizeMax wrong: %v", s.Intensities)
	}
	// all-zero spectrum is untouched
	z := New(MustAxis(0, 1, 3))
	z.NormalizeMax()
	if z.Max() != 0 {
		t.Fatal("zero spectrum changed")
	}
}

func TestNormalizeAreaAndSum(t *testing.T) {
	s := New(MustAxis(0, 0.5, 21))
	for i := range s.Intensities {
		s.Intensities[i] = 3
	}
	s.NormalizeArea()
	if got := s.Integrate(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("area after NormalizeArea = %v", got)
	}
	s.NormalizeSum()
	if got := s.TotalIntensity(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("sum after NormalizeSum = %v", got)
	}
}

// Property: superposition is linear — Superpose(w, c) evaluated pointwise
// equals the weighted sum of components.
func TestSuperposeLinearityProperty(t *testing.T) {
	src := rng.New(77)
	axis := MustAxis(0, 1, 32)
	f := func(nRaw uint8) bool {
		n := int(nRaw%4) + 1
		weights := make([]float64, n)
		comps := make([]*Spectrum, n)
		for i := range comps {
			weights[i] = src.Uniform(-2, 2)
			c := New(axis)
			for j := range c.Intensities {
				c.Intensities[j] = src.Normal(0, 1)
			}
			comps[i] = c
		}
		sum, err := Superpose(weights, comps)
		if err != nil {
			return false
		}
		for j := 0; j < axis.N; j++ {
			want := 0.0
			for i := range comps {
				want += weights[i] * comps[i].Intensities[j]
			}
			if math.Abs(sum.Intensities[j]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSuperposeErrors(t *testing.T) {
	axis := MustAxis(0, 1, 4)
	if _, err := Superpose([]float64{1}, []*Spectrum{New(axis), New(axis)}); err == nil {
		t.Fatal("weight/component mismatch must error")
	}
	if _, err := Superpose(nil, nil); err == nil {
		t.Fatal("empty superposition must error")
	}
}
