// Package obs is the dependency-free observability core of the library:
// atomic counters, float gauges and fixed-bucket histograms collected in a
// Registry that exposes them in the Prometheus text format, plus the slog
// and pprof-label plumbing shared by the servers and pipelines.
//
// The hot paths are lock-free: Counter.Inc, Gauge.Set and
// Histogram.Observe are a handful of atomic operations and never allocate,
// so metric recording is safe inside the per-request serving path and the
// per-sample generation loops. The registry lock is only taken when a
// metric is created (cold: once per name/label set, get-or-create) and
// when the family table is snapshotted for exposition.
//
// Metrics are identified by name plus a fixed, sorted label set baked in
// at creation — there is no per-observation label hashing, which is what
// keeps recording allocation-free. Callers that need a per-entity metric
// (e.g. per-model request counters) create one instrument per entity up
// front and hold the pointer.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one constant key/value pair attached to a metric at creation.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; contended adds retry, they never lock).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper bounds in ascending order; observations above the last bound land
// in the implicit +Inf bucket. Observe is lock-free and allocation-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	total  atomic.Uint64
}

// Observe records one value. NaN observations are dropped: a poisoned
// value must not corrupt the sum for every scrape that follows.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0 in seconds — the standard
// unit of Prometheus latency histograms.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ExponentialBuckets returns n bucket bounds starting at start, each
// factor times the previous. start must be positive and factor > 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: invalid exponential buckets (start %g, factor %g, n %d)", start, factor, n))
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// LinearBuckets returns n bucket bounds starting at start, spaced width
// apart.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic(fmt.Sprintf("obs: invalid linear buckets (width %g, n %d)", width, n))
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// LatencyBuckets spans 50µs to ~1.6s doubling per bucket — wide enough
// for a micro-batched forward pass on one end and a cold model load on
// the other.
var LatencyBuckets = ExponentialBuckets(50e-6, 2, 16)

// SizeBuckets suits small count distributions such as coalesced batch
// sizes (1 to 128 doubling).
var SizeBuckets = ExponentialBuckets(1, 2, 8)

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// child is one labeled instrument inside a family.
type child struct {
	labels []Label // sorted by key
	key    string  // canonical label encoding, sort key

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups every child sharing one metric name (and therefore one
// type and help string).
type family struct {
	name     string
	help     string
	kind     metricKind
	bounds   []float64 // histograms: shared bucket bounds
	children map[string]*child
}

// Registry holds metric families and exposes them; the zero value is not
// usable, create with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter for name+labels, creating it on first use.
// It panics if name is already registered as a different metric type —
// that is a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := r.child(name, help, kindCounter, nil, labels)
	return c.counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	c := r.child(name, help, kindGauge, nil, labels)
	return c.gauge
}

// GaugeFunc registers fn to be evaluated at every exposition for
// name+labels. Re-registering the same name+labels replaces the function,
// so an entity that is rebuilt (e.g. a reloaded model's queue) can point
// its gauge at the fresh state.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	c := r.child(name, help, kindGaugeFunc, nil, labels)
	r.mu.Lock()
	c.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram for name+labels, creating it on first
// use. Every histogram of one name shares the same bucket bounds; a
// mismatch panics.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram %q bound %d is not finite (the +Inf bucket is implicit)", name, i))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	c := r.child(name, help, kindHistogram, bounds, labels)
	return c.hist
}

// child implements get-or-create for every metric type.
func (r *Registry) child(name, help string, kind metricKind, bounds []float64, labels []Label) *child {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	for i, l := range sorted {
		if !validLabelName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Key, name))
		}
		if i > 0 && sorted[i-1].Key == l.Key {
			panic(fmt.Sprintf("obs: duplicate label %q on metric %q", l.Key, name))
		}
	}
	key := labelKey(sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]*child)}
		if kind == kindHistogram {
			f.bounds = append([]float64(nil), bounds...)
		}
		r.families[name] = f
	}
	if f.kind != kind && !(f.kind == kindGauge && kind == kindGaugeFunc) &&
		!(f.kind == kindGaugeFunc && kind == kindGauge) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, f.kind))
	}
	if kind == kindHistogram && !equalBounds(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
	}
	c, ok := f.children[key]
	if !ok {
		c = &child{labels: sorted, key: key}
		switch kind {
		case kindCounter:
			c.counter = &Counter{}
		case kindGauge:
			c.gauge = &Gauge{}
		case kindGaugeFunc:
			// fn is installed by the caller under the registry lock.
		case kindHistogram:
			c.hist = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
		}
		f.children[key] = c
	}
	return c
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// labelKey canonically encodes a sorted label set.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// validMetricName follows the Prometheus data model:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName is validMetricName without the colon.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
