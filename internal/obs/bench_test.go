package obs

import (
	"io"
	"testing"
)

// BenchmarkHistogramObserve is the -benchmem smoke for the zero-alloc
// hot-path contract (CI runs it with -benchtime=1x).
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "b", LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0023)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "b", L("model", "m"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := goldenRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
