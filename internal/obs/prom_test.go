package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenRegistry builds a registry with one deterministic instance of
// every metric type and label shape the exposition writer handles.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("specserve_model_requests_total", "Requests routed per model.", L("model", "ms-demo")).Add(42)
	r.Counter("specserve_model_requests_total", "Requests routed per model.", L("model", "nmr")).Add(7)
	r.Counter("plain_total", "A label-free counter.").Add(3)
	r.Gauge("specserve_queue_depth", "Queued requests per model batcher.", L("model", "ms-demo")).Set(5)
	r.GaugeFunc("specserve_monitor_sessions", "Live monitor sessions.", func() float64 { return 2 })
	r.Gauge("tricky_gauge", "Escapes: backslash \\ and\nnewline.", L("path", `C:\tmp`), L("q", `say "hi"`)).Set(1.5)

	h := r.Histogram("specserve_stage_seconds", "Stage latency.", []float64{0.001, 0.01, 0.1}, L("stage", "forward"))
	h.Observe(0.0005)
	h.Observe(0.001) // boundary: lands in le="0.001"
	h.Observe(0.05)
	h.Observe(3) // +Inf
	r.Histogram("specserve_stage_seconds", "Stage latency.", []float64{0.001, 0.01, 0.1}, L("stage", "decode")).Observe(0.02)
	return r
}

// TestExpositionGolden pins the exposition bytes. The format is consumed
// by external scrapers, so accidental drift is a wire-format break;
// regenerate intentionally with -update-golden.
func TestExpositionGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "exposition.golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test -run ExpositionGolden -update-golden ./internal/obs)", err)
	}
	if got != string(want) {
		t.Fatalf("exposition format drifted from %s.\n"+
			"If the change is intentional, regenerate with -update-golden.\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestExpositionShape spot-checks structural properties independent of the
// golden bytes: cumulative buckets, +Inf == _count, HELP/TYPE ordering.
func TestExpositionShape(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`specserve_stage_seconds_bucket{stage="forward",le="0.001"} 2`,
		`specserve_stage_seconds_bucket{stage="forward",le="0.01"} 2`,
		`specserve_stage_seconds_bucket{stage="forward",le="0.1"} 3`,
		`specserve_stage_seconds_bucket{stage="forward",le="+Inf"} 4`,
		`specserve_stage_seconds_count{stage="forward"} 4`,
		"# TYPE specserve_stage_seconds histogram",
		"# TYPE specserve_queue_depth gauge",
		"# TYPE plain_total counter",
		"plain_total 3",
		"specserve_monitor_sessions 2",
		`tricky_gauge{path="C:\\tmp",q="say \"hi\""} 1.5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must appear in sorted order.
	if strings.Index(out, "# TYPE plain_total") > strings.Index(out, "# TYPE specserve_monitor_sessions") {
		t.Fatalf("families not sorted by name:\n%s", out)
	}
}
