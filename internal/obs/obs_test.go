package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the inclusive-upper-bound contract:
// a value equal to a bound lands in that bound's bucket, a value just
// above it in the next, and anything beyond the last bound in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "t", []float64{1, 2, 5})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, // le="1" is inclusive
		{1.0000001, 1}, {2, 1},
		{2.5, 2}, {5, 2},
		{5.0001, 3}, {1e9, 3}, // overflow -> +Inf
		{-3, 0}, // below the first bound still counts there
	}
	for _, c := range cases {
		before := make([]uint64, len(h.counts))
		for i := range h.counts {
			before[i] = h.counts[i].Load()
		}
		h.Observe(c.v)
		for i := range h.counts {
			want := before[i]
			if i == c.bucket {
				want++
			}
			if got := h.counts[i].Load(); got != want {
				t.Fatalf("Observe(%g): bucket %d count = %d, want %d", c.v, i, got, want)
			}
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(cases))
	}
}

func TestHistogramSumAndNaN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_sum", "t", []float64{10})
	h.Observe(1.5)
	h.Observe(2.25)
	h.Observe(math.NaN()) // dropped
	if got := h.Sum(); got != 3.75 {
		t.Fatalf("Sum = %g, want 3.75", got)
	}
	if got := h.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2 (NaN must be dropped)", got)
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "t")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("depth", "t")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", g.Value())
	}
}

// TestGetOrCreate: same name+labels returns the same instrument; different
// labels return distinct ones.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "t", L("model", "a"))
	b := r.Counter("x_total", "t", L("model", "b"))
	if a == b {
		t.Fatal("distinct label sets must give distinct counters")
	}
	if again := r.Counter("x_total", "t", L("model", "a")); again != a {
		t.Fatal("same name+labels must return the same counter")
	}
	// Label order must not matter.
	h1 := r.Histogram("h_seconds", "t", []float64{1}, L("a", "1"), L("b", "2"))
	h2 := r.Histogram("h_seconds", "t", []float64{1}, L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order must not change metric identity")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "t")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m_total", "t")
}

func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h_seconds", "t", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a histogram with different bounds must panic")
		}
	}()
	r.Histogram("h_seconds", "t", []float64{1, 3})
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lead", "sp ace", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("metric name %q must panic", bad)
				}
			}()
			r.Counter(bad, "t")
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid label name must panic")
		}
	}()
	r.Counter("fine_total", "t", L("bad-key", "v"))
}

func TestBucketConstructors(t *testing.T) {
	exp := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExponentialBuckets = %v, want %v", exp, want)
		}
	}
	lin := LinearBuckets(10, 5, 3)
	want = []float64{10, 15, 20}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("LinearBuckets = %v, want %v", lin, want)
		}
	}
}

// TestRecordingDoesNotAllocate is the zero-alloc contract of the hot
// path: once created, counters, gauges and histograms record without
// touching the heap.
func TestRecordingDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "t", L("model", "m"))
	g := r.Gauge("hot_gauge", "t")
	h := r.Histogram("hot_seconds", "t", LatencyBuckets)
	t0 := time.Now()
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(3)
		h.Observe(0.001)
		h.ObserveSince(t0)
	}); n != 0 {
		t.Fatalf("hot-path recording allocates %.1f objects/op, want 0", n)
	}
}

func TestGaugeFuncReplaced(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("live", "t", func() float64 { return 1 })
	r.GaugeFunc("live", "t", func() float64 { return 2 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "live 2\n") {
		t.Fatalf("re-registered gauge func not used:\n%s", sb.String())
	}
}

func TestConcurrentRecordingAndScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "t", LatencyBuckets)
	c := r.Counter("conc_total", "t")
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			for i := 0; i < 2000; i++ {
				h.Observe(float64(i) * 1e-5)
				c.Inc()
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: counter %d, histogram %d, want 8000", c.Value(), h.Count())
	}
}
