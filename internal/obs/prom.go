package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, children
// sorted by label set, histograms expanded into cumulative _bucket
// samples plus _sum and _count.
//
// The family table is snapshotted under the registry lock, but values are
// read atomically and gauge functions are evaluated after the lock is
// released — a slow scrape (or a gauge function that takes other locks)
// never blocks metric creation, and lock ordering with caller locks
// cannot deadlock.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type snapFamily struct {
		family
		kids []*child
	}
	r.mu.Lock()
	fams := make([]snapFamily, 0, len(r.families))
	for _, f := range r.families {
		sf := snapFamily{family: *f, kids: make([]*child, 0, len(f.children))}
		for _, c := range f.children {
			sf.kids = append(sf.kids, c)
		}
		fams = append(fams, sf)
	}
	r.mu.Unlock()

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		sort.Slice(f.kids, func(i, j int) bool { return f.kids[i].key < f.kids[j].key })
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range f.kids {
			switch f.kind {
			case kindCounter:
				b.WriteString(f.name)
				writeLabels(&b, c.labels, "", 0)
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(c.counter.Value(), 10))
				b.WriteByte('\n')
			case kindGauge, kindGaugeFunc:
				v := 0.0
				if c.gauge != nil {
					v = c.gauge.Value()
				} else if c.fn != nil {
					v = c.fn()
				}
				b.WriteString(f.name)
				writeLabels(&b, c.labels, "", 0)
				b.WriteByte(' ')
				b.WriteString(formatFloat(v))
				b.WriteByte('\n')
			case kindHistogram:
				// Cumulative bucket counts; the +Inf bucket equals _count.
				// Bucket counters are read once each: a concurrent Observe
				// may land between reads, so _count is re-derived from the
				// same reads to keep the series self-consistent.
				cum := uint64(0)
				for i, bound := range c.hist.bounds {
					cum += c.hist.counts[i].Load()
					b.WriteString(f.name)
					b.WriteString("_bucket")
					writeLabels(&b, c.labels, "le", bound)
					b.WriteByte(' ')
					b.WriteString(strconv.FormatUint(cum, 10))
					b.WriteByte('\n')
				}
				cum += c.hist.counts[len(c.hist.bounds)].Load()
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(&b, c.labels, "le", infBound)
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(cum, 10))
				b.WriteByte('\n')
				b.WriteString(f.name)
				b.WriteString("_sum")
				writeLabels(&b, c.labels, "", 0)
				b.WriteByte(' ')
				b.WriteString(formatFloat(c.hist.Sum()))
				b.WriteByte('\n')
				b.WriteString(f.name)
				b.WriteString("_count")
				writeLabels(&b, c.labels, "", 0)
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(cum, 10))
				b.WriteByte('\n')
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// infBound is the sentinel passed to writeLabels for the +Inf bucket;
// finite bounds are enforced at histogram creation, so it cannot collide
// with a real bucket bound.
var infBound = math.Inf(1)

// Handler returns an http.Handler serving the exposition, for mounting at
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// writeLabels renders {k="v",...}; leKey, when non-empty, appends the
// histogram le label with leBound (infBound meaning +Inf). Nothing is
// written for an empty label set without le.
func writeLabels(b *strings.Builder, labels []Label, leKey string, leBound float64) {
	if len(labels) == 0 && leKey == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		if math.IsInf(leBound, 1) {
			b.WriteString("+Inf")
		} else {
			b.WriteString(formatFloat(leBound))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslash, double quote and newline in label values.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
