package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"runtime/pprof"
)

// NewLogger builds a slog.Logger writing to w in the given format: "text"
// (or empty) for logfmt-style key=value lines, "json" for one JSON object
// per line — the value space of the cmd/* -log-format flag.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want json or text)", format)
	}
}

// NopLogger returns a logger that discards everything — the default for
// library code when the caller wires no logger.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 128}))
}

// WithStage runs fn with a pprof "stage" label on the current goroutine
// (inherited by any goroutine fn spawns, including parallel.For workers),
// so CPU and heap profiles attribute time to pipeline stages. The previous
// label set is restored when fn returns.
func WithStage(stage string, fn func() error) error {
	var err error
	pprof.Do(context.Background(), pprof.Labels("stage", stage), func(context.Context) {
		err = fn()
	})
	return err
}

// LabelGoroutine permanently tags the current goroutine with alternating
// key/value pprof labels — for long-lived goroutines (dispatcher loops,
// sweepers) that are started once and never return.
func LabelGoroutine(kv ...string) {
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(), pprof.Labels(kv...)))
}
