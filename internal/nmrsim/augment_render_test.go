package nmrsim

import (
	"math"
	"testing"

	"specml/internal/dataset"
	"specml/internal/rng"
)

// TestAugmenterCachedMatchesExact: the cached render engine must agree with
// the legacy exact path to the engine's documented 1e-9 bound. Labels and
// distortion jitters are drawn before any rendering or noise, so they are
// bit-identical between the two modes even with noise enabled; the signal
// comparison switches noise off because the fast path draws its noise from
// the ziggurat sampler rather than the legacy Box-Muller stream.
func TestAugmenterCachedMatchesExact(t *testing.T) {
	exactNoisy := defaultAugmenter()
	exactNoisy.ExactRender = true
	refNoisy, err := exactNoisy.Generate(20, 23)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := defaultAugmenter().Generate(20, 23)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refNoisy.Y {
		for j := range refNoisy.Y[i] {
			if noisy.Y[i][j] != refNoisy.Y[i][j] {
				t.Fatalf("label [%d][%d] differs between cached and exact paths", i, j)
			}
		}
	}
	exact := defaultAugmenter()
	exact.ExactRender = true
	exact.NoiseSigma = 0
	ref, err := exact.Generate(20, 23)
	if err != nil {
		t.Fatal(err)
	}
	cached := defaultAugmenter()
	cached.NoiseSigma = 0
	d, err := cached.Generate(20, 23)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.X {
		scale := 0.0
		for _, v := range ref.X[i] {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for j := range ref.X[i] {
			if diff := math.Abs(d.X[i][j] - ref.X[i][j]); diff > 1e-9*scale {
				t.Fatalf("X[%d][%d]: cached %v vs exact %v (%v relative)",
					i, j, d.X[i][j], ref.X[i][j], diff/scale)
			}
		}
	}
}

// TestAugmenterExactRenderBitIdentity: switching a live augmenter to
// ExactRender must rebuild templates and reproduce the cached path's labels
// while rendering through the legacy kernel — and switching back must again
// match the original cached output bitwise.
func TestAugmenterExactRenderBitIdentity(t *testing.T) {
	a := defaultAugmenter()
	d1, err := a.Generate(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	a.ExactRender = true
	if _, err := a.Generate(10, 5); err != nil {
		t.Fatal(err)
	}
	a.ExactRender = false
	d2, err := a.Generate(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.X {
		for j := range d1.X[i] {
			if d1.X[i][j] != d2.X[i][j] {
				t.Fatalf("X[%d][%d] not reproducible across option round-trip", i, j)
			}
		}
	}
}

// TestGenerateIntoReuseBitIdentical: regenerating into a reused dataset
// must be bit-identical to a fresh Generate, including after the reused
// dataset held other content and a different shape.
func TestGenerateIntoReuseBitIdentical(t *testing.T) {
	a := defaultAugmenter()
	want, err := a.Generate(15, 77)
	if err != nil {
		t.Fatal(err)
	}
	b := defaultAugmenter()
	d, err := b.Generate(40, 3) // different size and seed, rows get reused
	if err != nil {
		t.Fatal(err)
	}
	if err := b.GenerateInto(d, 15, 77); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 15 {
		t.Fatalf("reused dataset has %d rows, want 15", d.Len())
	}
	for i := range want.X {
		for j := range want.X[i] {
			if d.X[i][j] != want.X[i][j] {
				t.Fatalf("X[%d][%d] differs after reuse", i, j)
			}
		}
		for j := range want.Y[i] {
			if d.Y[i][j] != want.Y[i][j] {
				t.Fatalf("Y[%d][%d] differs after reuse", i, j)
			}
		}
	}
}

// TestGenerateIntoAllocs pins the zero-alloc steady state: after warm-up,
// regenerating a corpus into a reused dataset allocates a small constant
// number of objects per call (the worker closure), independent of the
// sample count — i.e. zero heap allocations per sample.
func TestGenerateIntoAllocs(t *testing.T) {
	a := defaultAugmenter()
	a.Workers = 1 // sequential path; AllocsPerRun cannot attribute other goroutines' allocs
	allocsFor := func(n int) float64 {
		d := dataset.New(n)
		if err := a.GenerateInto(d, n, 9); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(3, func() {
			if err := a.GenerateInto(d, n, 9); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := allocsFor(8)
	large := allocsFor(32)
	if small > 4 {
		t.Fatalf("steady-state GenerateInto allocates %v objects per call, want ≤ 4", small)
	}
	if large > small {
		t.Fatalf("allocations grow with sample count: %v at n=8 vs %v at n=32 — not zero per sample",
			small, large)
	}
}

// TestSampleIntoMatchesSample: the buffer-reusing sampler must draw the
// same stream and produce the same values as the allocating one.
func TestSampleIntoMatchesSample(t *testing.T) {
	a := defaultAugmenter()
	src := rng.New(13)
	x1, y1, err := a.Sample(src)
	if err != nil {
		t.Fatal(err)
	}
	src.Reseed(13)
	x2 := make([]float64, a.Axis.N)
	y2 := make([]float64, len(a.Components))
	if err := a.SampleInto(x2, y2, src); err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("sample %d differs between Sample and SampleInto", i)
		}
	}
	for j := range y1 {
		if y1[j] != y2[j] {
			t.Fatalf("label %d differs between Sample and SampleInto", j)
		}
	}
	if err := a.SampleInto(make([]float64, 3), y2, src); err == nil {
		t.Fatal("short spectrum buffer must error")
	}
	if err := a.SampleInto(x2, make([]float64, 1), src); err == nil {
		t.Fatal("short label buffer must error")
	}
}

// TestTimeSeriesDeterministicAndUnaliased: the ring-buffer time-series
// generator must stay deterministic, and emitted windows/labels must own
// their storage (the ring is reused, the outputs must not be).
func TestTimeSeriesDeterministicAndUnaliased(t *testing.T) {
	a := defaultAugmenter()
	d1, err := a.GenerateTimeSeries(10, 4, 3, 19)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := defaultAugmenter().GenerateTimeSeries(10, 4, 3, 19)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.X {
		for j := range d1.X[i] {
			if d1.X[i][j] != d2.X[i][j] {
				t.Fatalf("window [%d][%d] not deterministic", i, j)
			}
		}
	}
	// mutate one window; no other window may change (ring rows are copied
	// on emission)
	probe := d1.X[1][0]
	d1.X[0][0] = probe + 1e9
	if d1.X[1][0] != probe {
		t.Fatal("windows alias the reused ring storage")
	}
	y0 := d1.Y[0][0]
	d1.Y[1][0] = y0 + 1e9
	if d1.Y[0][0] != y0 {
		t.Fatal("labels alias shared storage")
	}
}
