package nmrsim

import (
	"testing"

	"specml/internal/obs"
)

// TestTrainingStreamMatchesGenerate pins the streaming equivalence: the
// stream's rows must be bit-identical to Generate's for equal (augmenter,
// n, seed) and any batch grouping — so FitSource on the stream trains the
// exact model a materialize-then-Fit run would.
func TestTrainingStreamMatchesGenerate(t *testing.T) {
	for _, exact := range []bool{false, true} {
		a := defaultAugmenter()
		a.ExactRender = exact
		d, err := a.Generate(10, 23)
		if err != nil {
			t.Fatal(err)
		}
		b := defaultAugmenter()
		b.ExactRender = exact
		s, err := b.TrainingStream(10, 23)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() != 10 {
			t.Fatalf("stream Len = %d, want 10", s.Len())
		}
		for _, batch := range []int{1, 4, 10} {
			n := s.Len()
			xw, yw := s.Widths()
			x := make([][]float64, n)
			y := make([][]float64, n)
			for i := range x {
				x[i] = make([]float64, xw)
				y[i] = make([]float64, yw)
			}
			for start := 0; start < n; start += batch {
				end := start + batch
				if end > n {
					end = n
				}
				idx := make([]int, 0, end-start)
				for i := start; i < end; i++ {
					idx = append(idx, i)
				}
				if err := s.Batch(0, idx, x[start:end], y[start:end]); err != nil {
					t.Fatal(err)
				}
			}
			for i := range d.X {
				for j := range d.X[i] {
					if x[i][j] != d.X[i][j] {
						t.Fatalf("exact=%v batch=%d: x[%d][%d] = %x, want %x (bitwise)",
							exact, batch, i, j, x[i][j], d.X[i][j])
					}
				}
				for j := range d.Y[i] {
					if y[i][j] != d.Y[i][j] {
						t.Fatalf("exact=%v batch=%d: y[%d][%d] differs bitwise", exact, batch, i, j)
					}
				}
			}
		}
	}
}

func TestTrainingStreamValidation(t *testing.T) {
	a := defaultAugmenter()
	if _, err := a.TrainingStream(0, 1); err == nil {
		t.Fatal("zero samples accepted")
	}
	bad := defaultAugmenter()
	bad.IntensityScale = 0
	if _, err := bad.TrainingStream(4, 1); err == nil {
		t.Fatal("invalid augmenter accepted")
	}
}

func TestTrainingStreamMetrics(t *testing.T) {
	a := defaultAugmenter()
	a.Metrics = obs.NewRegistry()
	s, err := a.TrainingStream(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := [][]float64{make([]float64, a.Axis.N), make([]float64, a.Axis.N)}
	y := [][]float64{make([]float64, len(a.Components)), make([]float64, len(a.Components))}
	if err := s.Batch(0, []int{0, 1}, x, y); err != nil {
		t.Fatal(err)
	}
	got := a.Metrics.Counter("specml_corpus_samples_total", "", obs.L("source", "nmrsim")).Value()
	if got != 2 {
		t.Fatalf("corpus counter = %d, want 2", got)
	}
}

// TestTimeSeriesStreamMatchesGenerate pins the windowed streaming
// equivalence for the order-dependent LSTM corpus: every window rendered
// through the recorded-state replay must be bit-identical to
// GenerateTimeSeries, for any batch grouping and in both render modes, and
// re-rendering a window (overlap, later epochs) must reproduce it exactly.
func TestTimeSeriesStreamMatchesGenerate(t *testing.T) {
	const nWindows, steps, maxRepeat, seed = 9, 4, 3, 77
	for _, exact := range []bool{false, true} {
		a := defaultAugmenter()
		a.ExactRender = exact
		d, err := a.GenerateTimeSeries(nWindows, steps, maxRepeat, seed)
		if err != nil {
			t.Fatal(err)
		}
		b := defaultAugmenter()
		b.ExactRender = exact
		s, err := b.TimeSeriesStream(nWindows, steps, maxRepeat, seed)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() != nWindows {
			t.Fatalf("stream Len = %d, want %d", s.Len(), nWindows)
		}
		xw, yw := s.Widths()
		if xw != steps*b.Axis.N || yw != len(b.Components) {
			t.Fatalf("stream widths (%d, %d), want (%d, %d)", xw, yw, steps*b.Axis.N, len(b.Components))
		}
		for _, batch := range []int{1, 4, nWindows} {
			x := make([][]float64, nWindows)
			y := make([][]float64, nWindows)
			for i := range x {
				x[i] = make([]float64, xw)
				y[i] = make([]float64, yw)
			}
			for start := 0; start < nWindows; start += batch {
				end := start + batch
				if end > nWindows {
					end = nWindows
				}
				idx := make([]int, 0, end-start)
				for i := start; i < end; i++ {
					idx = append(idx, i)
				}
				if err := s.Batch(0, idx, x[start:end], y[start:end]); err != nil {
					t.Fatal(err)
				}
			}
			for i := range d.X {
				for j := range d.X[i] {
					if x[i][j] != d.X[i][j] {
						t.Fatalf("exact=%v batch=%d: x[%d][%d] = %x, want %x (bitwise)",
							exact, batch, i, j, x[i][j], d.X[i][j])
					}
				}
				for j := range d.Y[i] {
					if y[i][j] != d.Y[i][j] {
						t.Fatalf("exact=%v batch=%d: y[%d][%d] differs bitwise", exact, batch, i, j)
					}
				}
			}
		}
		// Reversed single-window replay: order independence of the step renders.
		x := make([]float64, xw)
		y := make([]float64, yw)
		for i := nWindows - 1; i >= 0; i-- {
			if err := s.Batch(1, []int{i}, [][]float64{x}, [][]float64{y}); err != nil {
				t.Fatal(err)
			}
			for j := range d.X[i] {
				if x[j] != d.X[i][j] {
					t.Fatalf("exact=%v reversed: x[%d][%d] differs bitwise", exact, i, j)
				}
			}
		}
	}
}
