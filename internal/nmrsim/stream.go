package nmrsim

import (
	"specml/internal/dataset"
	"specml/internal/obs"
	"specml/internal/rng"
)

// TrainingStream is the streaming counterpart of Generate: a dataset.Source
// that renders sample i on demand instead of materializing the corpus. The
// per-sample child seeds come from the same sequential-draw construction as
// GenerateInto, so a stream built from equal (augmenter, n, seed) yields
// rows bit-identical to the generated dataset — feeding it to
// nn.Model.FitSource trains the exact model a materialize-then-Fit run
// would, while holding only the in-flight mini-batches in memory.
//
// The render templates are built (deterministically) before the stream is
// returned and the per-call rng scratch is pooled inside dataset.Stream, so
// Batch is safe for concurrent calls even though the Augmenter itself is
// not — the stream only reads the templates. Reconfiguring the Augmenter
// after TrainingStream returns is not supported.
func (a *Augmenter) TrainingStream(n int, seed uint64) (*dataset.Stream, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := a.prepare(); err != nil {
		return nil, err
	}
	s, err := dataset.NewStream(n, a.Axis.N, len(a.Components), seed,
		func(_ int, src *rng.Source, x, y []float64) error {
			return a.sampleInto(x, y, src)
		})
	if err != nil {
		return nil, err
	}
	if a.Metrics != nil {
		c := a.Metrics.Counter("specml_corpus_samples_total",
			"Simulated training samples generated.", obs.L("source", "nmrsim"))
		s.OnBatch = func(rendered int) { c.Add(uint64(rendered)) }
	}
	return s, nil
}
