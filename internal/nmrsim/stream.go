package nmrsim

import (
	"fmt"
	"sync"

	"specml/internal/dataset"
	"specml/internal/obs"
	"specml/internal/rng"
)

// TrainingStream is the streaming counterpart of Generate: a dataset.Source
// that renders sample i on demand instead of materializing the corpus. The
// per-sample child seeds come from the same sequential-draw construction as
// GenerateInto, so a stream built from equal (augmenter, n, seed) yields
// rows bit-identical to the generated dataset — feeding it to
// nn.Model.FitSource trains the exact model a materialize-then-Fit run
// would, while holding only the in-flight mini-batches in memory.
//
// The render templates are built (deterministically) before the stream is
// returned and the per-call rng scratch is pooled inside dataset.Stream, so
// Batch is safe for concurrent calls even though the Augmenter itself is
// not — the stream only reads the templates. Reconfiguring the Augmenter
// after TrainingStream returns is not supported.
func (a *Augmenter) TrainingStream(n int, seed uint64) (*dataset.Stream, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := a.prepare(); err != nil {
		return nil, err
	}
	s, err := dataset.NewStream(n, a.Axis.N, len(a.Components), seed,
		func(_ int, src *rng.Source, x, y []float64) error {
			return a.sampleInto(x, y, src)
		})
	if err != nil {
		return nil, err
	}
	if a.Metrics != nil {
		c := a.Metrics.Counter("specml_corpus_samples_total",
			"Simulated training samples generated.", obs.L("source", "nmrsim"))
		s.OnBatch = func(rendered int) { c.Add(uint64(rendered)) }
	}
	return s, nil
}

// tsScratch is the pooled per-call scratch of a time-series stream's render
// callback: a reusable rng source (restored to the recorded step state) and
// a concentration buffer for fresh-plateau steps whose labels are redrawn
// during replay and discarded.
type tsScratch struct {
	src  *rng.Source
	conc []float64
}

// TimeSeriesStream is the streaming counterpart of GenerateTimeSeries: a
// dataset.Windowed source over the same order-dependent rolling-window
// plateau series. The construction is inherently sequential — each window
// overlaps its predecessor and the rng draw counts are value-dependent
// (plateau repeats, ziggurat rejection) — so no per-window seed exists.
// Instead a sequential prepass runs the exact GenerateTimeSeries control
// flow once, discarding the spectra but recording, per step, the rng state
// immediately before its render call, whether it opens a fresh plateau or
// re-measures the current one, and the plateau concentrations. Replaying a
// step is then order-free: restore the state and repeat the identical
// render call. Recorded state is ~100 bytes per step versus a full
// steps*Axis.N window row, which is what lets the LSTM corpus train under
// a bounded heap.
//
// Rows are bit-identical to GenerateTimeSeries(nWindows, steps, maxRepeat,
// seed) — window w of the stream equals row w of the materialized dataset —
// and the callback is safe for concurrent Batch calls: it only reads the
// prepared templates and the recorded per-step state, with rng scratch
// pooled like TrainingStream's.
func (a *Augmenter) TimeSeriesStream(nWindows, steps, maxRepeat int, seed uint64) (*dataset.Windowed, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if nWindows <= 0 || steps <= 0 || maxRepeat <= 0 {
		return nil, fmt.Errorf("nmrsim: nWindows, steps and maxRepeat must be positive")
	}
	if err := a.prepare(); err != nil {
		return nil, err
	}
	nComp := len(a.Components)
	var (
		states  []rng.State // rng state before each step's render call
		fresh   []bool      // step kind: fresh plateau (sampleInto) or re-measure (renderConcInto)
		concAll []float64   // flat [step][nComp] plateau concentrations
		ends    []int
		labels  [][]float64
	)
	src := rng.New(seed)
	row := make([]float64, a.Axis.N)
	conc := make([]float64, nComp)
	count := 0
	// The exact GenerateTimeSeries loop, minus the ring buffer and window
	// copies: every render draws from src so the stream position at each
	// step matches the materialized run draw for draw.
	for len(ends) < nWindows {
		states = append(states, src.State())
		fresh = append(fresh, true)
		if err := a.sampleInto(row, conc, src); err != nil {
			return nil, err
		}
		concAll = append(concAll, conc...)
		repeat := 1 + src.Intn(maxRepeat)
		for r := 0; r < repeat; r++ {
			if r > 0 {
				states = append(states, src.State())
				fresh = append(fresh, false)
				if err := a.renderConcInto(row, conc, src); err != nil {
					return nil, err
				}
				concAll = append(concAll, conc...)
			}
			count++
			if count >= steps {
				ends = append(ends, count-1)
				labels = append(labels, append([]float64(nil), conc...))
				if len(ends) >= nWindows {
					break
				}
			}
		}
	}
	var scratch sync.Pool
	scratch.New = func() any {
		return &tsScratch{src: rng.New(0), conc: make([]float64, nComp)}
	}
	render := func(step int, dst []float64) error {
		sc := scratch.Get().(*tsScratch)
		defer scratch.Put(sc)
		sc.src.SetState(states[step])
		if fresh[step] {
			// Replays the label draws too; the window label was copied at
			// emission time, so the redrawn values are discarded.
			return a.sampleInto(dst, sc.conc, sc.src)
		}
		return a.renderConcInto(dst, concAll[step*nComp:(step+1)*nComp], sc.src)
	}
	s, err := dataset.NewWindowed(steps, a.Axis.N, ends, labels, render)
	if err != nil {
		return nil, err
	}
	if a.Metrics != nil {
		c := a.Metrics.Counter("specml_corpus_samples_total",
			"Simulated training samples generated.", obs.L("source", "nmrsim-timeseries"))
		s.OnBatch = func(rendered int) { c.Add(uint64(rendered)) }
	}
	return s, nil
}
