package nmrsim

import (
	"math"
	"testing"
)

func TestNMRDriftScheduleValidate(t *testing.T) {
	good := DriftSchedule{StartScan: 5, RampScans: 3, ShiftDrift: 0.02, WidthGrowth: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []DriftSchedule{
		{StartScan: 0},
		{StartScan: 2, RampScans: -1},
		{StartScan: 2, ShiftDrift: math.NaN()},
		{StartScan: 2, WidthGrowth: -1},
		{StartScan: 2, NoiseGrowth: math.Inf(-1)},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad schedule %d (%+v) accepted", i, d)
		}
	}
	ins := NewLowField(1)
	if err := ins.SetDriftSchedule(&bad[0]); err == nil {
		t.Error("SetDriftSchedule accepted an invalid schedule")
	}
}

// TestNMRDriftNilScheduleByteIdentity: the scan counter and nil checks must
// not perturb the measurement stream.
func TestNMRDriftNilScheduleByteIdentity(t *testing.T) {
	a := NewLowField(11)
	b := NewLowField(11)
	if err := b.SetDriftSchedule(nil); err != nil {
		t.Fatal(err)
	}
	conc := make([]float64, len(a.Components))
	for i := range conc {
		conc[i] = 1.0 / float64(i+1)
	}
	for i := 0; i < 4; i++ {
		sa, err := a.Measure(conc)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.Measure(conc)
		if err != nil {
			t.Fatal(err)
		}
		for k := range sa.Intensities {
			if sa.Intensities[k] != sb.Intensities[k] {
				t.Fatalf("scan %d bin %d differs", i, k)
			}
		}
	}
	if a.ScanCount() != 4 {
		t.Fatalf("scan count %d, want 4", a.ScanCount())
	}
}

// TestNMRDriftOnset: scans before StartScan match the undrifted instrument
// exactly; scans at and after it differ.
func TestNMRDriftOnset(t *testing.T) {
	clean := NewLowField(23)
	drifted := NewLowField(23)
	sched := &DriftSchedule{StartScan: 3, ShiftDrift: 0.05, WidthGrowth: 0.4}
	if err := drifted.SetDriftSchedule(sched); err != nil {
		t.Fatal(err)
	}
	conc := make([]float64, len(clean.Components))
	for i := range conc {
		conc[i] = 1
	}
	for i := 1; i <= 5; i++ {
		sc, err := clean.Measure(conc)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := drifted.Measure(conc)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for k := range sc.Intensities {
			if sc.Intensities[k] != sd.Intensities[k] {
				same = false
				break
			}
		}
		if i < sched.StartScan && !same {
			t.Fatalf("scan %d before drift start differs", i)
		}
		if i >= sched.StartScan && same {
			t.Fatalf("scan %d after drift start is unchanged", i)
		}
	}
}
