package nmrsim

import (
	"fmt"
	"math"

	"specml/internal/rng"
	"specml/internal/spectrum"
)

// Reactor is a steady-state model of the laboratory flow reactor running
// the MNDPA synthesis: p-toluidine is activated by Li-HMDS and reacts with
// o-FNB by aromatic substitution to the product. The reactor is operated
// along a design of experiments; each operating point yields a steady
// concentration plateau.
type Reactor struct {
	// RateConstant folds the kinetics into a dimensionless Damköhler
	// number Da = RateConstant * residenceTime; conversion of the limiting
	// reagent is Da/(1+Da).
	RateConstant float64
}

// NewReactor returns a reactor with default kinetics.
func NewReactor() *Reactor { return &Reactor{RateConstant: 0.8} }

// OperatingPoint is one condition of the design of experiments.
type OperatingPoint struct {
	// Feed concentrations (arbitrary molar units) of the three inputs.
	Toluidine float64
	LiHMDS    float64
	OFNB      float64
	// ResidenceTime in minutes.
	ResidenceTime float64
}

// Steady returns the steady-state outlet concentrations in label order
// [p-toluidine, Li-HMDS, o-FNB, MNDPA].
func (r *Reactor) Steady(op OperatingPoint) ([]float64, error) {
	if op.Toluidine < 0 || op.LiHMDS < 0 || op.OFNB < 0 || op.ResidenceTime < 0 {
		return nil, fmt.Errorf("nmrsim: negative operating parameter %+v", op)
	}
	da := r.RateConstant * op.ResidenceTime
	x := da / (1 + da)
	limiting := math.Min(op.Toluidine, math.Min(op.LiHMDS, op.OFNB))
	xi := x * limiting // extent of reaction
	return []float64{
		op.Toluidine - xi,
		op.LiHMDS - xi,
		op.OFNB - xi,
		xi,
	}, nil
}

// DoE returns a full-factorial design over feed stoichiometry and
// residence time with nRatio x nTime points, spanning the concentration
// ranges of interest.
func DoE(nRatio, nTime int) []OperatingPoint {
	var pts []OperatingPoint
	for i := 0; i < nRatio; i++ {
		// o-FNB : p-toluidine feed ratio from 0.6 to 1.4
		ratio := 0.6 + 0.8*float64(i)/math.Max(1, float64(nRatio-1))
		for j := 0; j < nTime; j++ {
			tau := 0.5 + 5.5*float64(j)/math.Max(1, float64(nTime-1))
			pts = append(pts, OperatingPoint{
				Toluidine:     0.5,
				LiHMDS:        0.55, // slight excess of base
				OFNB:          0.5 * ratio,
				ResidenceTime: tau,
			})
		}
	}
	return pts
}

// Plateau is one steady-state section of the monitored campaign.
type Plateau struct {
	Point OperatingPoint
	// True outlet concentrations (the labels).
	Concentrations []float64
	// Spectra measured on the process (low-field) instrument.
	Spectra []*spectrum.Spectrum
	// Reference concentrations from the high-field reference method (true
	// values plus small analytical error).
	Reference [][]float64
}

// Campaign runs the DoE on the process instrument: each operating point is
// held for spectraPerPlateau measurements. With 15 operating points and 20
// spectra each this reproduces the paper's raw-data basis of 300 spectra.
func Campaign(r *Reactor, ins *Instrument, points []OperatingPoint,
	spectraPerPlateau int, refErr float64, seed uint64) ([]*Plateau, error) {
	if spectraPerPlateau <= 0 {
		return nil, fmt.Errorf("nmrsim: spectraPerPlateau must be positive")
	}
	src := rng.New(seed)
	var out []*Plateau
	for _, op := range points {
		conc, err := r.Steady(op)
		if err != nil {
			return nil, err
		}
		p := &Plateau{Point: op, Concentrations: conc}
		for k := 0; k < spectraPerPlateau; k++ {
			s, err := ins.Measure(conc)
			if err != nil {
				return nil, err
			}
			p.Spectra = append(p.Spectra, s)
			ref := make([]float64, len(conc))
			for j, c := range conc {
				ref[j] = c + src.Normal(0, refErr)
				if ref[j] < 0 {
					ref[j] = 0
				}
			}
			p.Reference = append(p.Reference, ref)
		}
		out = append(out, p)
	}
	return out, nil
}

// FlattenCampaign converts plateaus into parallel spectra/label slices in
// campaign time order.
func FlattenCampaign(plateaus []*Plateau) (spectra []*spectrum.Spectrum, labels [][]float64) {
	for _, p := range plateaus {
		for k := range p.Spectra {
			spectra = append(spectra, p.Spectra[k])
			labels = append(labels, p.Reference[k])
		}
	}
	return spectra, labels
}
