// Package nmrsim implements the paper's NMR use case: the synthesis of
// 2-nitro-4'-methyldiphenylamine (MNDPA) from p-toluidine and
// 1-fluoro-2-nitrobenzene (o-FNB) with the lithium amide Li-HMDS, run in a
// laboratory flow reactor along a design of experiments and monitored
// online with a medium-resolution (benchtop) NMR spectrometer, with
// high-field NMR as the reference method.
//
// The package provides the ground-truth pure-component spectra, a
// steady-state reactor model that produces concentration plateaus, virtual
// low-field and high-field instruments, and the IHM-based data augmenter
// that turns a handful of measured spectra into an arbitrarily large
// training corpus ("enhanced to 300.000 spectra on basis of a physically
// motivated simulation method").
package nmrsim

import (
	"specml/internal/ihm"
	"specml/internal/spectrum"
)

// ComponentNames lists the four relevant species in label order: the two
// reactants, the activating base and the product.
var ComponentNames = []string{"p-toluidine", "Li-HMDS", "o-FNB", "MNDPA"}

// NumComponents is the number of predicted concentrations (the four
// labels of interest).
const NumComponents = 4

// Axis returns the canonical ¹H chemical-shift axis: 0 to 10 ppm sampled
// with 1700 points. This length makes the paper's parameter counts exact:
// the locally connected CNN has 10 532 and the LSTM model 221 956
// trainable parameters.
func Axis() spectrum.Axis {
	return spectrum.MustAxis(0, 10.0/1699.0, 1700)
}

// baseWidth is the natural (high-field) line width in ppm.
const baseWidth = 0.015

// TrueComponents returns the ground-truth hard models of the four pure
// components. Peak positions follow the qualitative ¹H NMR assignments of
// the species (aromatic protons 6.5–8.3 ppm, CH₃ near 2.2–2.4 ppm, the
// trimethylsilyl protons of Li-HMDS near 0.1 ppm, amine/NH protons broad);
// areas are proportional to proton counts and normalized per component.
func TrueComponents() []*ihm.ComponentModel {
	mk := func(name string, peaks ...spectrum.Peak) *ihm.ComponentModel {
		c := &ihm.ComponentModel{Name: name, Peaks: peaks}
		c.Normalize()
		return c
	}
	const eta = 0.8
	return []*ihm.ComponentModel{
		mk("p-toluidine",
			spectrum.Peak{Center: 6.55, Area: 2, Width: baseWidth, Eta: eta},
			spectrum.Peak{Center: 6.95, Area: 2, Width: baseWidth, Eta: eta},
			spectrum.Peak{Center: 3.30, Area: 2, Width: 2.2 * baseWidth, Eta: eta}, // NH2, broadened
			spectrum.Peak{Center: 2.20, Area: 3, Width: baseWidth, Eta: eta},
		),
		mk("Li-HMDS",
			spectrum.Peak{Center: 0.10, Area: 18, Width: baseWidth, Eta: eta}, // Si(CH3)3 x2
		),
		mk("o-FNB",
			spectrum.Peak{Center: 7.30, Area: 1, Width: baseWidth, Eta: eta},
			spectrum.Peak{Center: 7.42, Area: 1, Width: baseWidth, Eta: eta},
			spectrum.Peak{Center: 7.68, Area: 1, Width: baseWidth, Eta: eta},
			spectrum.Peak{Center: 8.05, Area: 1, Width: baseWidth, Eta: eta},
		),
		mk("MNDPA",
			spectrum.Peak{Center: 2.36, Area: 3, Width: baseWidth, Eta: eta},
			spectrum.Peak{Center: 7.12, Area: 4, Width: 1.4 * baseWidth, Eta: eta},
			spectrum.Peak{Center: 7.48, Area: 1, Width: baseWidth, Eta: eta},
			spectrum.Peak{Center: 8.18, Area: 1, Width: baseWidth, Eta: eta},
			spectrum.Peak{Center: 9.50, Area: 1, Width: 2.5 * baseWidth, Eta: eta}, // NH, broad
		),
	}
}
