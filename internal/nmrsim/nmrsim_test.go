package nmrsim

import (
	"math"
	"testing"
	"testing/quick"

	"specml/internal/ihm"
	"specml/internal/rng"
)

func TestAxisMatchesPaperParameterCounts(t *testing.T) {
	a := Axis()
	if a.N != 1700 {
		t.Fatalf("axis has %d points, want 1700", a.N)
	}
	if math.Abs(a.End()-10) > 1e-9 {
		t.Fatalf("axis end = %v, want 10 ppm", a.End())
	}
}

func TestTrueComponents(t *testing.T) {
	cs := TrueComponents()
	if len(cs) != NumComponents {
		t.Fatalf("%d components, want %d", len(cs), NumComponents)
	}
	axis := Axis()
	for i, c := range cs {
		if c.Name != ComponentNames[i] {
			t.Fatalf("component %d name %q, want %q", i, c.Name, ComponentNames[i])
		}
		if math.Abs(c.TotalArea()-1) > 1e-9 {
			t.Fatalf("%s area = %v, want 1", c.Name, c.TotalArea())
		}
		for _, p := range c.Peaks {
			if err := p.Validate(); err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			if !axis.Contains(p.Center) {
				t.Fatalf("%s peak at %v ppm outside axis", c.Name, p.Center)
			}
		}
	}
}

func TestComponentsAreDistinguishable(t *testing.T) {
	// Every pair of components must differ somewhere on the axis, otherwise
	// the concentration prediction problem is ill-posed.
	cs := TrueComponents()
	axis := Axis()
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			diff := 0.0
			for k := 0; k < axis.N; k += 5 {
				x := axis.Value(k)
				d := cs[i].Value(x, 0, 1) - cs[j].Value(x, 0, 1)
				diff += d * d
			}
			if diff < 1 {
				t.Fatalf("components %s and %s nearly identical (diff %v)", cs[i].Name, cs[j].Name, diff)
			}
		}
	}
}

func TestInstrumentMeasure(t *testing.T) {
	ins := NewLowField(1)
	conc := []float64{0.3, 0.2, 0.3, 0.2}
	s, err := ins.Measure(conc)
	if err != nil {
		t.Fatal(err)
	}
	if s.Axis.N != 1700 {
		t.Fatalf("spectrum length %d", s.Axis.N)
	}
	if s.Max() <= 0 {
		t.Fatal("spectrum has no signal")
	}
	if _, err := ins.Measure([]float64{1}); err == nil {
		t.Fatal("wrong concentration count must error")
	}
	if _, err := ins.Measure([]float64{-1, 0, 0, 0}); err == nil {
		t.Fatal("negative concentration must error")
	}
}

func TestLowFieldBroaderThanHighField(t *testing.T) {
	low := NewLowField(2)
	low.NoiseSigma, low.ShiftJitter, low.WidthJitter = 0, 0, 0
	high := NewHighField(2)
	high.NoiseSigma, high.ShiftJitter, high.WidthJitter = 0, 0, 0
	conc := []float64{0, 1, 0, 0} // Li-HMDS: single isolated peak at 0.1 ppm
	sl, _ := low.Measure(conc)
	sh, _ := high.Measure(conc)
	// same area, but the low-field peak is lower and wider
	if sl.Max() >= sh.Max() {
		t.Fatalf("low-field peak height %v not below high-field %v", sl.Max(), sh.Max())
	}
	al := sl.IntegrateBetween(0, 0.6)
	ah := sh.IntegrateBetween(0, 0.6)
	if math.Abs(al-ah)/ah > 0.05 {
		t.Fatalf("areas differ: low %v vs high %v", al, ah)
	}
}

func TestMeasurePure(t *testing.T) {
	ins := NewHighField(3)
	s, err := ins.MeasurePure(1)
	if err != nil {
		t.Fatal(err)
	}
	// Li-HMDS peaks only near 0.1 ppm
	if s.ValueAt(0.1) < 10*math.Abs(s.ValueAt(5)) {
		t.Fatal("pure Li-HMDS spectrum wrong")
	}
	if _, err := ins.MeasurePure(7); err == nil {
		t.Fatal("bad index must error")
	}
}

func TestReactorSteadyMassBalance(t *testing.T) {
	r := NewReactor()
	op := OperatingPoint{Toluidine: 0.5, LiHMDS: 0.55, OFNB: 0.4, ResidenceTime: 2}
	c, err := r.Steady(op)
	if err != nil {
		t.Fatal(err)
	}
	// product equals consumed amounts
	if math.Abs((op.Toluidine-c[0])-c[3]) > 1e-12 ||
		math.Abs((op.LiHMDS-c[1])-c[3]) > 1e-12 ||
		math.Abs((op.OFNB-c[2])-c[3]) > 1e-12 {
		t.Fatalf("mass balance violated: %v", c)
	}
	for j, v := range c {
		if v < 0 {
			t.Fatalf("negative concentration %d: %v", j, c)
		}
	}
	if _, err := r.Steady(OperatingPoint{Toluidine: -1}); err == nil {
		t.Fatal("negative feed must error")
	}
}

// Property: conversion increases with residence time; product never
// exceeds the limiting feed.
func TestReactorMonotoneConversionProperty(t *testing.T) {
	r := NewReactor()
	src := rng.New(5)
	f := func(_ uint8) bool {
		op := OperatingPoint{
			Toluidine:     src.Uniform(0.1, 1),
			LiHMDS:        src.Uniform(0.1, 1),
			OFNB:          src.Uniform(0.1, 1),
			ResidenceTime: src.Uniform(0.1, 5),
		}
		c1, err := r.Steady(op)
		if err != nil {
			return false
		}
		op2 := op
		op2.ResidenceTime *= 2
		c2, err := r.Steady(op2)
		if err != nil {
			return false
		}
		limiting := math.Min(op.Toluidine, math.Min(op.LiHMDS, op.OFNB))
		return c2[3] >= c1[3] && c1[3] <= limiting+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDoEGrid(t *testing.T) {
	pts := DoE(3, 5)
	if len(pts) != 15 {
		t.Fatalf("DoE(3,5) has %d points, want 15", len(pts))
	}
	for _, p := range pts {
		if p.ResidenceTime <= 0 || p.OFNB <= 0 {
			t.Fatalf("invalid DoE point %+v", p)
		}
	}
}

func TestCampaignProduces300Spectra(t *testing.T) {
	r := NewReactor()
	ins := NewLowField(4)
	plateaus, err := Campaign(r, ins, DoE(3, 5), 20, 0.002, 9)
	if err != nil {
		t.Fatal(err)
	}
	spectra, labels := FlattenCampaign(plateaus)
	if len(spectra) != 300 || len(labels) != 300 {
		t.Fatalf("campaign yielded %d spectra, want 300 (paper)", len(spectra))
	}
	// labels close to true plateau concentrations
	for _, p := range plateaus {
		for k := range p.Reference {
			for j := range p.Reference[k] {
				if math.Abs(p.Reference[k][j]-p.Concentrations[j]) > 0.02 {
					t.Fatalf("reference far from truth: %v vs %v", p.Reference[k], p.Concentrations)
				}
			}
		}
	}
	if _, err := Campaign(r, ins, DoE(1, 1), 0, 0, 1); err == nil {
		t.Fatal("zero spectra per plateau must error")
	}
}

func defaultAugmenter() *Augmenter {
	return &Augmenter{
		Axis:           Axis(),
		Components:     TrueComponents(),
		ConcLo:         []float64{0, 0, 0, 0},
		ConcHi:         []float64{0.6, 0.6, 0.6, 0.5},
		ShiftJitter:    0.008,
		WidthJitter:    0.05,
		NoiseSigma:     0.01,
		IntensityScale: 0.05,
	}
}

func TestAugmenterValidate(t *testing.T) {
	a := defaultAugmenter()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	b := defaultAugmenter()
	b.ConcHi = []float64{1}
	if err := b.Validate(); err == nil {
		t.Fatal("bound length mismatch must error")
	}
	c := defaultAugmenter()
	c.ConcLo[0] = 2 // lo > hi
	if err := c.Validate(); err == nil {
		t.Fatal("inverted range must error")
	}
	d := defaultAugmenter()
	d.IntensityScale = 0
	if err := d.Validate(); err == nil {
		t.Fatal("zero intensity scale must error")
	}
}

func TestAugmenterGenerate(t *testing.T) {
	a := defaultAugmenter()
	d, err := a.Generate(25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 25 {
		t.Fatalf("generated %d", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.X[0]) != 1700 || len(d.Y[0]) != 4 {
		t.Fatalf("sample shape %dx%d", len(d.X[0]), len(d.Y[0]))
	}
	for i := range d.Y {
		for j, v := range d.Y[i] {
			if v < a.ConcLo[j] || v > a.ConcHi[j] {
				t.Fatalf("label %d out of range: %v", i, d.Y[i])
			}
		}
	}
	// determinism
	d2, _ := a.Generate(25, 3)
	for i := range d.X[0] {
		if d.X[0][i] != d2.X[0][i] {
			t.Fatal("augmentation not deterministic")
		}
	}
	if _, err := a.Generate(0, 1); err == nil {
		t.Fatal("zero samples must error")
	}
}

// TestAugmenterWorkerInvariance checks that the synthetic corpus is
// bit-identical for any worker count — every sample draws from its own
// index-keyed child stream, so scheduling never leaks into the data.
func TestAugmenterWorkerInvariance(t *testing.T) {
	seq := defaultAugmenter()
	seq.Workers = 1
	ref, err := seq.Generate(30, 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 0} {
		a := defaultAugmenter()
		a.Workers = workers
		d, err := a.Generate(30, 17)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.X {
			for j := range ref.X[i] {
				if d.X[i][j] != ref.X[i][j] {
					t.Fatalf("workers=%d: X[%d][%d] differs bitwise", workers, i, j)
				}
			}
			for j := range ref.Y[i] {
				if d.Y[i][j] != ref.Y[i][j] {
					t.Fatalf("workers=%d: Y[%d][%d] differs bitwise", workers, i, j)
				}
			}
		}
	}
}

func TestAugmenterTimeSeries(t *testing.T) {
	a := defaultAugmenter()
	const steps = 5
	d, err := a.GenerateTimeSeries(12, steps, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 12 {
		t.Fatalf("generated %d windows", d.Len())
	}
	if len(d.X[0]) != steps*1700 {
		t.Fatalf("window width %d, want %d", len(d.X[0]), steps*1700)
	}
	if _, err := a.GenerateTimeSeries(0, 5, 3, 1); err == nil {
		t.Fatal("invalid window count must error")
	}
}

func TestWindowCampaign(t *testing.T) {
	r := NewReactor()
	ins := NewLowField(8)
	plateaus, err := Campaign(r, ins, DoE(2, 2), 3, 0.002, 9)
	if err != nil {
		t.Fatal(err)
	}
	spectra, labels := FlattenCampaign(plateaus)
	d, err := WindowCampaign(spectra, labels, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != len(spectra)-4 {
		t.Fatalf("window count %d, want %d", d.Len(), len(spectra)-4)
	}
	if _, err := WindowCampaign(spectra[:3], labels[:3], 5); err == nil {
		t.Fatal("too few spectra must error")
	}
	if _, err := WindowCampaign(spectra, labels[:1], 5); err == nil {
		t.Fatal("label mismatch must error")
	}
}

// The cross-package integration: IHM models fitted on measured pure
// spectra feed the augmenter; an IHM analyzer on the fitted models must
// recover mixture concentrations from a low-field measurement.
func TestIHMOnVirtualInstrument(t *testing.T) {
	ins := NewLowField(10)
	var fitted []*ihm.ComponentModel
	for j := 0; j < NumComponents; j++ {
		s, err := ins.MeasurePure(j)
		if err != nil {
			t.Fatal(err)
		}
		c, err := ihm.FitPureComponent(ComponentNames[j], s, 8)
		if err != nil {
			t.Fatalf("fitting %s: %v", ComponentNames[j], err)
		}
		fitted = append(fitted, c)
	}
	an, err := ihm.NewMixtureAnalyzer(fitted, ihm.AnalyzerOptions{MaxShift: 0.03, WidthRange: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	conc := []float64{0.4, 0.15, 0.3, 0.15}
	s, err := ins.Measure(conc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	// weights are in instrument-scaled units; compare relative composition
	got := res.Concentrations()
	want := make([]float64, len(conc))
	sum := 0.0
	for _, v := range conc {
		sum += v
	}
	for j, v := range conc {
		want[j] = v / sum
	}
	for j := range want {
		if math.Abs(got[j]-want[j]) > 0.05 {
			t.Fatalf("IHM composition %v, want %v", got, want)
		}
	}
}
