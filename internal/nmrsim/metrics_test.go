package nmrsim

import (
	"testing"

	"specml/internal/obs"
)

// TestGenerateReportsMetrics checks Generate reports samples and duration
// through the registry without changing the generated corpus.
func TestGenerateReportsMetrics(t *testing.T) {
	plain, err := defaultAugmenter().Generate(5, 21)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	a := defaultAugmenter()
	a.Metrics = reg
	inst, err := a.Generate(5, 21)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.X {
		for j := range plain.X[i] {
			if plain.X[i][j] != inst.X[i][j] {
				t.Fatalf("instrumented corpus diverges at sample %d index %d", i, j)
			}
		}
	}

	c := reg.Counter("specml_corpus_samples_total", "", obs.L("source", "nmrsim"))
	if c.Value() != 5 {
		t.Fatalf("samples counter = %d, want 5", c.Value())
	}
	h := reg.Histogram("specml_corpus_generate_seconds", "", corpusGenBuckets, obs.L("source", "nmrsim"))
	if h.Count() != 1 {
		t.Fatalf("duration histogram count = %d, want 1", h.Count())
	}
}
