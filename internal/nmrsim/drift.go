package nmrsim

import (
	"fmt"
	"math"
)

// DriftSchedule is the NMR counterpart of the mass-spec drift schedule: a
// deterministic per-measurement degradation that ramps in from StartScan.
// It never touches the instrument's random stream, so the noise sequence
// for a given seed is identical with or without drift.
type DriftSchedule struct {
	// StartScan is the 1-based measurement index at which drift begins.
	StartScan int `json:"start_scan"`
	// RampScans ramps the drift linearly to full magnitude; 0 = step.
	RampScans int `json:"ramp_scans"`
	// ShiftDrift is the full-magnitude systematic chemical-shift offset
	// (ppm) applied to every component — a detuning field/lock.
	ShiftDrift float64 `json:"shift_drift"`
	// WidthGrowth is the full-magnitude relative line-width growth — a
	// degrading shim.
	WidthGrowth float64 `json:"width_growth"`
	// NoiseGrowth is the full-magnitude relative noise-level growth.
	NoiseGrowth float64 `json:"noise_growth"`
}

// Validate reports whether the schedule is usable.
func (d *DriftSchedule) Validate() error {
	if d.StartScan < 1 {
		return fmt.Errorf("nmrsim: drift start scan must be >= 1, got %d", d.StartScan)
	}
	if d.RampScans < 0 {
		return fmt.Errorf("nmrsim: drift ramp must be non-negative, got %d", d.RampScans)
	}
	for _, v := range []float64{d.ShiftDrift, d.WidthGrowth, d.NoiseGrowth} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("nmrsim: drift magnitudes must be finite")
		}
	}
	if d.WidthGrowth <= -1 || d.NoiseGrowth <= -1 {
		return fmt.Errorf("nmrsim: relative drift growth must stay above -1")
	}
	return nil
}

// factor returns the ramp fraction in [0,1] for a 1-based scan index.
func (d *DriftSchedule) factor(scan int) float64 {
	if d == nil || scan < d.StartScan {
		return 0
	}
	if d.RampScans <= 0 {
		return 1
	}
	f := float64(scan-d.StartScan+1) / float64(d.RampScans)
	if f > 1 {
		return 1
	}
	return f
}

// SetDriftSchedule attaches (or with nil detaches) a drift schedule.
func (ins *Instrument) SetDriftSchedule(d *DriftSchedule) error {
	if d != nil {
		if err := d.Validate(); err != nil {
			return err
		}
	}
	ins.drift = d
	return nil
}

// ScanCount returns the number of Measure calls so far.
func (ins *Instrument) ScanCount() int { return ins.scans }
