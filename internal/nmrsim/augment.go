package nmrsim

import (
	"fmt"

	"specml/internal/dataset"
	"specml/internal/ihm"
	"specml/internal/parallel"
	"specml/internal/rng"
	"specml/internal/spectrum"
)

// Augmenter generates synthetic training spectra from fitted IHM
// pure-component models: linear combinations with random concentrations
// plus the physically motivated distortions (peak shift and broadening)
// that a naive linear combination of measured spectra would miss. This is
// the paper's central data-augmentation method for NMR.
type Augmenter struct {
	Axis spectrum.Axis
	// Components are the fitted pure-component hard models (label order).
	Components []*ihm.ComponentModel
	// ConcLo/ConcHi bound the sampled concentration of each component; the
	// training corpus covers "the full concentration range of interest".
	ConcLo, ConcHi []float64
	// ShiftJitter and WidthJitter are the distortion magnitudes (per
	// component, per spectrum).
	ShiftJitter float64
	WidthJitter float64
	// NoiseSigma is the additive noise level of the synthetic spectra.
	NoiseSigma float64
	// IntensityScale matches the instrument's receiver gain.
	IntensityScale float64
	// Workers is the generation worker count for Generate (0 = all
	// cores). The corpus is bit-identical for any value because every
	// sample draws from its own index-keyed child stream.
	Workers int
}

// Validate checks the augmenter configuration.
func (a *Augmenter) Validate() error {
	k := len(a.Components)
	if k == 0 {
		return fmt.Errorf("nmrsim: augmenter needs components")
	}
	if len(a.ConcLo) != k || len(a.ConcHi) != k {
		return fmt.Errorf("nmrsim: concentration bounds must match %d components", k)
	}
	for j := range a.ConcLo {
		if a.ConcLo[j] < 0 || a.ConcHi[j] < a.ConcLo[j] {
			return fmt.Errorf("nmrsim: invalid concentration range [%g, %g] for component %d",
				a.ConcLo[j], a.ConcHi[j], j)
		}
	}
	if a.IntensityScale <= 0 {
		return fmt.Errorf("nmrsim: IntensityScale must be positive")
	}
	return nil
}

// Sample renders one synthetic spectrum with random concentrations,
// returning the input vector and its label.
func (a *Augmenter) Sample(src *rng.Source) ([]float64, []float64, error) {
	k := len(a.Components)
	conc := make([]float64, k)
	for j := range conc {
		conc[j] = src.Uniform(a.ConcLo[j], a.ConcHi[j])
	}
	s := spectrum.New(a.Axis)
	for j, c := range a.Components {
		if conc[j] == 0 {
			continue
		}
		shift := src.Normal(0, a.ShiftJitter)
		wf := 1 + src.Normal(0, a.WidthJitter)
		if wf < 0.2 {
			wf = 0.2
		}
		if err := c.Render(s, conc[j]*a.IntensityScale, shift, wf); err != nil {
			return nil, nil, err
		}
	}
	if a.NoiseSigma > 0 {
		for i := range s.Intensities {
			s.Intensities[i] += src.Normal(0, a.NoiseSigma)
		}
	}
	return s.Intensities, conc, nil
}

// Generate produces n synthetic labelled spectra on a.Workers goroutines
// (0 = all cores). Sample i is rendered from an rng.Split-derived child
// stream keyed by i, so the dataset is bit-identical for any worker count.
func (a *Augmenter) Generate(n int, seed uint64) (*dataset.Dataset, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("nmrsim: need a positive sample count, got %d", n)
	}
	root := rng.New(seed)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = root.Uint64()
	}
	xs := make([][]float64, n)
	ys := make([][]float64, n)
	err := parallel.For(a.Workers, n, func(_, i int) error {
		x, y, err := a.Sample(rng.New(seeds[i]))
		if err != nil {
			return err
		}
		xs[i], ys[i] = x, y
		return nil
	})
	if err != nil {
		return nil, err
	}
	d := dataset.New(n)
	d.Names = componentNames(a.Components)
	for i := range xs {
		d.Append(xs[i], ys[i])
	}
	return d, nil
}

// GenerateTimeSeries produces synthetic plateau time series for LSTM
// training: random compositions are repeated 1 to maxRepeat times "to
// emulate plateaus with jumps between them", then windows of `steps`
// consecutive spectra become one sample whose label is the concentration
// at the window end.
//
// Unlike Generate, the window stream is an order-dependent rolling buffer
// (each window overlaps its predecessor), so this path stays sequential;
// Workers does not apply here.
func (a *Augmenter) GenerateTimeSeries(nWindows, steps, maxRepeat int, seed uint64) (*dataset.Dataset, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if nWindows <= 0 || steps <= 0 || maxRepeat <= 0 {
		return nil, fmt.Errorf("nmrsim: nWindows, steps and maxRepeat must be positive")
	}
	src := rng.New(seed)
	d := dataset.New(nWindows)
	d.Names = componentNames(a.Components)

	// rolling buffer of recent spectra/labels emulating the online stream
	var bufX [][]float64
	var bufY [][]float64
	for d.Len() < nWindows {
		x, y, err := a.Sample(src)
		if err != nil {
			return nil, err
		}
		repeat := 1 + src.Intn(maxRepeat)
		for r := 0; r < repeat; r++ {
			// re-measure the same plateau (new jitter and noise)
			if r > 0 {
				x, _, err = a.resample(src, y)
				if err != nil {
					return nil, err
				}
			}
			bufX = append(bufX, x)
			bufY = append(bufY, y)
			if len(bufX) >= steps {
				window := make([]float64, 0, steps*len(x))
				for _, row := range bufX[len(bufX)-steps:] {
					window = append(window, row...)
				}
				d.Append(window, bufY[len(bufY)-1])
				if d.Len() >= nWindows {
					return d, nil
				}
			}
		}
	}
	return d, nil
}

// resample renders another spectrum at fixed concentrations.
func (a *Augmenter) resample(src *rng.Source, conc []float64) ([]float64, []float64, error) {
	s := spectrum.New(a.Axis)
	for j, c := range a.Components {
		if conc[j] == 0 {
			continue
		}
		shift := src.Normal(0, a.ShiftJitter)
		wf := 1 + src.Normal(0, a.WidthJitter)
		if wf < 0.2 {
			wf = 0.2
		}
		if err := c.Render(s, conc[j]*a.IntensityScale, shift, wf); err != nil {
			return nil, nil, err
		}
	}
	if a.NoiseSigma > 0 {
		for i := range s.Intensities {
			s.Intensities[i] += src.Normal(0, a.NoiseSigma)
		}
	}
	return s.Intensities, conc, nil
}

func componentNames(cs []*ihm.ComponentModel) []string {
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

// WindowCampaign converts a measured campaign into LSTM evaluation
// windows: each sample is `steps` consecutive spectra, labelled with the
// reference concentrations at the window end.
func WindowCampaign(spectra []*spectrum.Spectrum, labels [][]float64, steps int) (*dataset.Dataset, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("nmrsim: steps must be positive")
	}
	if len(spectra) != len(labels) {
		return nil, fmt.Errorf("nmrsim: %d spectra vs %d labels", len(spectra), len(labels))
	}
	if len(spectra) < steps {
		return nil, fmt.Errorf("nmrsim: %d spectra shorter than window %d", len(spectra), steps)
	}
	d := dataset.New(len(spectra) - steps + 1)
	for end := steps - 1; end < len(spectra); end++ {
		window := make([]float64, 0, steps*spectra[0].Axis.N)
		for k := end - steps + 1; k <= end; k++ {
			window = append(window, spectra[k].Intensities...)
		}
		d.Append(window, labels[end])
	}
	return d, nil
}
