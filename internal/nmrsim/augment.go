package nmrsim

import (
	"fmt"
	"time"

	"specml/internal/dataset"
	"specml/internal/ihm"
	"specml/internal/obs"
	"specml/internal/parallel"
	"specml/internal/rng"
	"specml/internal/spectrum"
	"specml/internal/spectrum/render"
)

// corpusGenBuckets spans 1ms..~2m of corpus-generation wall clock; the
// family is shared with msim (label source distinguishes the generators).
var corpusGenBuckets = obs.ExponentialBuckets(1e-3, 2, 18)

// Augmenter generates synthetic training spectra from fitted IHM
// pure-component models: linear combinations with random concentrations
// plus the physically motivated distortions (peak shift and broadening)
// that a naive linear combination of measured spectra would miss. This is
// the paper's central data-augmentation method for NMR.
//
// Rendering goes through the render-engine templates built once per
// component (see internal/spectrum/render): pure-shift variants are
// interpolated master-grid lookups, broadened variants use the hoisted
// analytic kernels, and ExactRender forces the legacy bit-identical
// spectrum.RenderPeaks path. Templates and scratch live on the Augmenter,
// so an Augmenter must not be used from multiple goroutines concurrently —
// Generate's internal worker pool is fine, concurrent Generate calls on one
// Augmenter are not.
type Augmenter struct {
	Axis spectrum.Axis
	// Components are the fitted pure-component hard models (label order).
	Components []*ihm.ComponentModel
	// ConcLo/ConcHi bound the sampled concentration of each component; the
	// training corpus covers "the full concentration range of interest".
	ConcLo, ConcHi []float64
	// ShiftJitter and WidthJitter are the distortion magnitudes (per
	// component, per spectrum).
	ShiftJitter float64
	WidthJitter float64
	// NoiseSigma is the additive noise level of the synthetic spectra.
	NoiseSigma float64
	// IntensityScale matches the instrument's receiver gain.
	IntensityScale float64
	// Workers is the generation worker count for Generate (0 = all
	// cores). The corpus is bit-identical for any value because every
	// sample draws from its own index-keyed child stream.
	Workers int
	// ExactRender forces the legacy analytic RenderPeaks path for every
	// sample, bit-identical to the pre-engine generator (golden baselines).
	ExactRender bool
	// RenderOversample overrides the render engine's automatic master-grid
	// oversampling factor (0 = automatic).
	RenderOversample int
	// Metrics, when non-nil, receives corpus-generation throughput from
	// Generate/GenerateInto: specml_corpus_samples_total{source="nmrsim"}
	// and a wall-clock specml_corpus_generate_seconds histogram. Recording
	// happens once per generation call, never per sample.
	Metrics *obs.Registry

	// Cached render templates (one per component) plus reusable generation
	// scratch; rebuilt when the render options change.
	templates []*render.Template
	tmplOpts  render.Options
	names     []string
	seeds     []uint64
	srcs      []*rng.Source
	root      rng.Source
}

// Validate checks the augmenter configuration.
func (a *Augmenter) Validate() error {
	k := len(a.Components)
	if k == 0 {
		return fmt.Errorf("nmrsim: augmenter needs components")
	}
	if len(a.ConcLo) != k || len(a.ConcHi) != k {
		return fmt.Errorf("nmrsim: concentration bounds must match %d components", k)
	}
	for j := range a.ConcLo {
		if a.ConcLo[j] < 0 || a.ConcHi[j] < a.ConcLo[j] {
			return fmt.Errorf("nmrsim: invalid concentration range [%g, %g] for component %d",
				a.ConcLo[j], a.ConcHi[j], j)
		}
	}
	if a.IntensityScale <= 0 {
		return fmt.Errorf("nmrsim: IntensityScale must be positive")
	}
	return nil
}

// prepare (re)builds the per-component render templates. It must run
// before any parallel wave so the templates are constructed
// deterministically and the wave itself only reads them.
func (a *Augmenter) prepare() error {
	opts := render.Options{Exact: a.ExactRender, Oversample: a.RenderOversample}
	if a.templates != nil && len(a.templates) == len(a.Components) && a.tmplOpts == opts {
		return nil
	}
	eng := render.NewEngine(opts)
	ts := make([]*render.Template, len(a.Components))
	for j, c := range a.Components {
		t, err := eng.NewTemplate(a.Axis, c.Peaks)
		if err != nil {
			return fmt.Errorf("nmrsim: building render template for %s: %w", c.Name, err)
		}
		ts[j] = t
	}
	a.templates = ts
	a.tmplOpts = opts
	a.names = componentNames(a.Components)
	return nil
}

// Sample renders one synthetic spectrum with random concentrations,
// returning the input vector and its label.
func (a *Augmenter) Sample(src *rng.Source) ([]float64, []float64, error) {
	x := make([]float64, a.Axis.N)
	y := make([]float64, len(a.Components))
	if err := a.SampleInto(x, y, src); err != nil {
		return nil, nil, err
	}
	return x, y, nil
}

// SampleInto renders one synthetic spectrum into caller-owned buffers:
// x (length Axis.N) receives the spectrum, y (one slot per component) the
// concentration label. The draw sequence matches Sample exactly.
func (a *Augmenter) SampleInto(x, y []float64, src *rng.Source) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if err := a.prepare(); err != nil {
		return err
	}
	return a.sampleInto(x, y, src)
}

// sampleInto is SampleInto after validation and template preparation.
func (a *Augmenter) sampleInto(x, y []float64, src *rng.Source) error {
	if len(y) != len(a.Components) {
		return fmt.Errorf("nmrsim: label buffer has %d slots for %d components", len(y), len(a.Components))
	}
	for j := range y {
		y[j] = src.Uniform(a.ConcLo[j], a.ConcHi[j])
	}
	return a.renderConcInto(x, y, src)
}

// renderConcInto renders one spectrum at fixed concentrations into x,
// drawing fresh per-component distortions and noise from src.
func (a *Augmenter) renderConcInto(x, conc []float64, src *rng.Source) error {
	if len(x) != a.Axis.N {
		return fmt.Errorf("nmrsim: spectrum buffer has %d samples for axis length %d", len(x), a.Axis.N)
	}
	for i := range x {
		x[i] = 0
	}
	for j := range a.Components {
		if conc[j] == 0 {
			continue
		}
		shift := src.Normal(0, a.ShiftJitter)
		wf := 1 + src.Normal(0, a.WidthJitter)
		if wf < 0.2 {
			wf = 0.2
		}
		if err := a.templates[j].RenderInto(x, conc[j]*a.IntensityScale, shift, wf); err != nil {
			return err
		}
	}
	if a.NoiseSigma > 0 {
		if a.ExactRender {
			// Legacy Box-Muller stream: corpora rendered with ExactRender
			// replay historical bytes exactly.
			for i := range x {
				x[i] += src.Normal(0, a.NoiseSigma)
			}
		} else {
			// The cached fast path draws noise with the ziggurat sampler —
			// a different (still fully deterministic and seed-reproducible)
			// stream. Labels and distortion draws happen before this point,
			// so they remain bit-identical between the two modes.
			src.FastNormalAdd(x, a.NoiseSigma)
		}
	}
	return nil
}

// Generate produces n synthetic labelled spectra on a.Workers goroutines
// (0 = all cores). Sample i is rendered from an rng.Split-derived child
// stream keyed by i, so the dataset is bit-identical for any worker count.
func (a *Augmenter) Generate(n int, seed uint64) (*dataset.Dataset, error) {
	d := dataset.New(n)
	if err := a.GenerateInto(d, n, seed); err != nil {
		return nil, err
	}
	return d, nil
}

// GenerateInto is Generate writing into an existing dataset, reusing its
// row storage (grow-only): after the first call, steady-state regeneration
// performs zero heap allocation per sample. The dataset's previous rows are
// overwritten, so d must not share rows with data the caller still needs.
// The generated values are bit-identical to Generate's for equal arguments.
// Generation runs under a pprof "corpus-nmrsim" stage label (inherited by
// the parallel workers) and, when a.Metrics is set, reports samples and
// duration through the registry.
func (a *Augmenter) GenerateInto(d *dataset.Dataset, n int, seed uint64) error {
	start := time.Now()
	err := obs.WithStage("corpus-nmrsim", func() error {
		return a.generateInto(d, n, seed)
	})
	if a.Metrics != nil && err == nil {
		a.Metrics.Counter("specml_corpus_samples_total",
			"Simulated training samples generated.", obs.L("source", "nmrsim")).Add(uint64(n))
		a.Metrics.Histogram("specml_corpus_generate_seconds",
			"Wall-clock duration of one corpus generation call.", corpusGenBuckets,
			obs.L("source", "nmrsim")).ObserveSince(start)
	}
	return err
}

func (a *Augmenter) generateInto(d *dataset.Dataset, n int, seed uint64) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("nmrsim: need a positive sample count, got %d", n)
	}
	// Templates are built deterministically before the parallel wave; the
	// wave itself only reads them.
	if err := a.prepare(); err != nil {
		return err
	}
	d.Resize(n, a.Axis.N, len(a.Components))
	d.Names = a.names

	// Child-stream seeds are drawn sequentially from the root (the Split
	// construction), so sample i's stream never depends on scheduling.
	a.root.Reseed(seed)
	a.seeds = growUint64(a.seeds, n)
	for i := range a.seeds {
		a.seeds[i] = a.root.Uint64()
	}
	workers := parallel.Resolve(a.Workers)
	if workers > n {
		workers = n
	}
	for len(a.srcs) < workers {
		a.srcs = append(a.srcs, rng.New(0))
	}
	seeds, srcs := a.seeds, a.srcs
	return parallel.For(workers, n, func(w, i int) error {
		// Reseeding a per-worker source reproduces rng.New(seeds[i])
		// without allocating; the stream depends only on i.
		src := srcs[w]
		src.Reseed(seeds[i])
		return a.sampleInto(d.X[i], d.Y[i], src)
	})
}

// growUint64 is pool.Grow for seed scratch.
func growUint64(buf []uint64, n int) []uint64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return make([]uint64, n, c)
}

// GenerateTimeSeries produces synthetic plateau time series for LSTM
// training: random compositions are repeated 1 to maxRepeat times "to
// emulate plateaus with jumps between them", then windows of `steps`
// consecutive spectra become one sample whose label is the concentration
// at the window end.
//
// Unlike Generate, the window stream is an order-dependent rolling buffer
// (each window overlaps its predecessor), so this path stays sequential;
// Workers does not apply here. Spectrum rows are rendered into a reused
// ring of `steps` buffers — only the emitted windows and their label
// copies allocate.
func (a *Augmenter) GenerateTimeSeries(nWindows, steps, maxRepeat int, seed uint64) (*dataset.Dataset, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if nWindows <= 0 || steps <= 0 || maxRepeat <= 0 {
		return nil, fmt.Errorf("nmrsim: nWindows, steps and maxRepeat must be positive")
	}
	if err := a.prepare(); err != nil {
		return nil, err
	}
	src := rng.New(seed)
	d := dataset.New(nWindows)
	d.Names = componentNames(a.Components)

	// ring of reusable spectrum rows emulating the online stream: a window
	// copies its rows on emission, so slot t may be overwritten once it is
	// `steps` spectra old
	ring := make([][]float64, steps)
	for i := range ring {
		ring[i] = make([]float64, a.Axis.N)
	}
	conc := make([]float64, len(a.Components))
	count := 0
	for d.Len() < nWindows {
		row := ring[count%steps]
		if err := a.sampleInto(row, conc, src); err != nil {
			return nil, err
		}
		repeat := 1 + src.Intn(maxRepeat)
		for r := 0; r < repeat; r++ {
			if r > 0 {
				// re-measure the same plateau (new jitter and noise)
				row = ring[count%steps]
				if err := a.renderConcInto(row, conc, src); err != nil {
					return nil, err
				}
			}
			count++
			if count >= steps {
				window := make([]float64, 0, steps*a.Axis.N)
				for t := count - steps; t < count; t++ {
					window = append(window, ring[t%steps]...)
				}
				d.Append(window, append([]float64(nil), conc...))
				if d.Len() >= nWindows {
					return d, nil
				}
			}
		}
	}
	return d, nil
}

func componentNames(cs []*ihm.ComponentModel) []string {
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

// WindowCampaign converts a measured campaign into LSTM evaluation
// windows: each sample is `steps` consecutive spectra, labelled with the
// reference concentrations at the window end.
func WindowCampaign(spectra []*spectrum.Spectrum, labels [][]float64, steps int) (*dataset.Dataset, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("nmrsim: steps must be positive")
	}
	if len(spectra) != len(labels) {
		return nil, fmt.Errorf("nmrsim: %d spectra vs %d labels", len(spectra), len(labels))
	}
	if len(spectra) < steps {
		return nil, fmt.Errorf("nmrsim: %d spectra shorter than window %d", len(spectra), steps)
	}
	d := dataset.New(len(spectra) - steps + 1)
	for end := steps - 1; end < len(spectra); end++ {
		window := make([]float64, 0, steps*spectra[0].Axis.N)
		for k := end - steps + 1; k <= end; k++ {
			window = append(window, spectra[k].Intensities...)
		}
		d.Append(window, labels[end])
	}
	return d, nil
}
