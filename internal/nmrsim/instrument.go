package nmrsim

import (
	"fmt"

	"specml/internal/ihm"
	"specml/internal/rng"
	"specml/internal/spectrum"
)

// Instrument is a virtual NMR spectrometer rendering mixture spectra from
// the ground-truth component models. Field strength is abstracted into the
// line-width factor: a benchtop (medium-resolution) instrument broadens
// lines ~3x relative to the high-field reference spectrometer.
type Instrument struct {
	Axis spectrum.Axis
	// Components are the ground-truth pure models (label order).
	Components []*ihm.ComponentModel
	// WidthFactor scales all line widths (1 = high-field reference).
	WidthFactor float64
	// ShiftJitter is the std-dev of the per-component random chemical-shift
	// offset in each measurement (solvent/matrix effects).
	ShiftJitter float64
	// WidthJitter is the relative std-dev of per-measurement line-width
	// variation.
	WidthJitter float64
	// NoiseSigma is the additive Gaussian noise level.
	NoiseSigma float64
	// IntensityScale multiplies the whole spectrum to keep network inputs
	// O(1); it models receiver gain.
	IntensityScale float64

	src   *rng.Source
	drift *DriftSchedule
	scans int
}

// NewLowField returns the benchtop process spectrometer stand-in.
func NewLowField(seed uint64) *Instrument {
	return &Instrument{
		Axis:           Axis(),
		Components:     TrueComponents(),
		WidthFactor:    3.0,
		ShiftJitter:    0.008,
		WidthJitter:    0.05,
		NoiseSigma:     0.010,
		IntensityScale: 0.05,
		src:            rng.New(seed),
	}
}

// NewHighField returns the high-field reference spectrometer stand-in.
func NewHighField(seed uint64) *Instrument {
	return &Instrument{
		Axis:           Axis(),
		Components:     TrueComponents(),
		WidthFactor:    1.0,
		ShiftJitter:    0.001,
		WidthJitter:    0.01,
		NoiseSigma:     0.001,
		IntensityScale: 0.05,
		src:            rng.New(seed),
	}
}

// Measure renders one spectrum of a mixture with the given component
// concentrations (label order, arbitrary non-negative units).
func (ins *Instrument) Measure(conc []float64) (*spectrum.Spectrum, error) {
	if len(conc) != len(ins.Components) {
		return nil, fmt.Errorf("nmrsim: %d concentrations for %d components", len(conc), len(ins.Components))
	}
	// Scheduled drift: a pure function of the scan index layered on top of
	// the stochastic jitter, with no extra draws from the stream.
	ins.scans++
	f := ins.drift.factor(ins.scans)
	driftShift, widthGrow, noiseGrow := 0.0, 1.0, 1.0
	if f > 0 {
		driftShift = f * ins.drift.ShiftDrift
		widthGrow = 1 + f*ins.drift.WidthGrowth
		noiseGrow = 1 + f*ins.drift.NoiseGrowth
	}
	s := spectrum.New(ins.Axis)
	for j, c := range ins.Components {
		if conc[j] < 0 {
			return nil, fmt.Errorf("nmrsim: negative concentration %g for %s", conc[j], c.Name)
		}
		if conc[j] == 0 {
			continue
		}
		shift := ins.src.Normal(0, ins.ShiftJitter) + driftShift
		wf := ins.WidthFactor * widthGrow * (1 + ins.src.Normal(0, ins.WidthJitter))
		if wf < 0.1 {
			wf = 0.1
		}
		if err := c.Render(s, conc[j]*ins.IntensityScale, shift, wf); err != nil {
			return nil, err
		}
	}
	if ins.NoiseSigma > 0 {
		sigma := ins.NoiseSigma * noiseGrow
		for i := range s.Intensities {
			s.Intensities[i] += ins.src.Normal(0, sigma)
		}
	}
	return s, nil
}

// MeasurePure records a pure-component spectrum at unit concentration —
// the input for the IHM pure-component fits.
func (ins *Instrument) MeasurePure(componentIndex int) (*spectrum.Spectrum, error) {
	if componentIndex < 0 || componentIndex >= len(ins.Components) {
		return nil, fmt.Errorf("nmrsim: component index %d out of range", componentIndex)
	}
	conc := make([]float64, len(ins.Components))
	conc[componentIndex] = 1
	return ins.Measure(conc)
}
