package dataset

import "fmt"

// Windowed adapts an order-dependent rolling-window corpus to the Source
// interface: the underlying stream is a sequence of fixed-width steps
// (spectra), and sample w is the concatenation of the `steps` consecutive
// steps ending at ends[w], labelled with labels[w]. This is the shape of
// the LSTM plateau time series — windows overlap their predecessors, so no
// per-sample seed can render one independently; instead the generator runs
// a sequential prepass once, records how to re-render each STEP in
// isolation (for the nmrsim adapter: the rng state at that step), and hands
// this source a step-granular render callback.
//
// Batch renders each requested window's steps directly into the destination
// row — no ring buffer, no materialized corpus — so FitSource holds only
// the in-flight mini-batches. render(step, dst) must be safe for concurrent
// calls with distinct dst (Batch runs on prefetch workers) and must be a
// pure function of step, so every epoch and any batching order observes
// identical bytes; overlapping windows simply re-render their shared steps.
type Windowed struct {
	steps, stepWidth int
	ends             []int
	labels           [][]float64
	render           func(step int, dst []float64) error
	// OnBatch, when non-nil, is called with the window count after every
	// successful Batch (generator throughput counters). It must be safe for
	// concurrent calls.
	OnBatch func(rendered int)
}

// NewWindowed builds a windowed source of len(ends) samples. ends[w] is the
// zero-based index of window w's final step; every window spans steps
// [ends[w]-steps+1, ends[w]], so each entry must be at least steps-1.
// labels[w] is copied by reference and must be rectangular.
func NewWindowed(steps, stepWidth int, ends []int, labels [][]float64, render func(step int, dst []float64) error) (*Windowed, error) {
	if steps <= 0 || stepWidth <= 0 {
		return nil, fmt.Errorf("dataset: windowed source needs positive steps and step width, got (%d, %d)", steps, stepWidth)
	}
	if len(ends) == 0 || len(ends) != len(labels) {
		return nil, fmt.Errorf("dataset: windowed source needs equal, non-zero window and label counts (%d, %d)", len(ends), len(labels))
	}
	if render == nil {
		return nil, fmt.Errorf("dataset: windowed source needs a render function")
	}
	yw := len(labels[0])
	if yw == 0 {
		return nil, fmt.Errorf("dataset: windowed source needs non-empty labels")
	}
	for w, end := range ends {
		if end < steps-1 {
			return nil, fmt.Errorf("dataset: window %d ends at step %d, before a full window of %d steps", w, end, steps)
		}
		if len(labels[w]) != yw {
			return nil, fmt.Errorf("dataset: label row %d has width %d, want %d", w, len(labels[w]), yw)
		}
	}
	return &Windowed{steps: steps, stepWidth: stepWidth, ends: ends, labels: labels, render: render}, nil
}

// Len implements Source.
func (s *Windowed) Len() int { return len(s.ends) }

// Widths implements Source.
func (s *Windowed) Widths() (int, int) { return s.steps * s.stepWidth, len(s.labels[0]) }

// Batch implements Source.
func (s *Windowed) Batch(_ int, indices []int, dstX, dstY [][]float64) error {
	for j, w := range indices {
		if w < 0 || w >= len(s.ends) {
			return fmt.Errorf("dataset: sample index %d out of range [0, %d)", w, len(s.ends))
		}
		first := s.ends[w] - s.steps + 1
		for t := 0; t < s.steps; t++ {
			if err := s.render(first+t, dstX[j][t*s.stepWidth:(t+1)*s.stepWidth]); err != nil {
				return fmt.Errorf("dataset: rendering step %d of window %d: %w", first+t, w, err)
			}
		}
		copy(dstY[j], s.labels[w])
	}
	if s.OnBatch != nil {
		s.OnBatch(len(indices))
	}
	return nil
}
