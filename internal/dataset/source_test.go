package dataset

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"specml/internal/rng"
)

// testStream builds a small deterministic stream: sample i's rows are pure
// functions of its private rng stream, like the real corpus generators.
func testStream(t *testing.T, n int, seed uint64) *Stream {
	t.Helper()
	s, err := NewStream(n, 3, 2, seed, func(i int, src *rng.Source, x, y []float64) error {
		for j := range x {
			x[j] = src.Normal(0, 1)
		}
		src.Dirichlet(1, y)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// renderAll materializes every sample of a source one batch at a time.
func renderAll(t *testing.T, src Source, batch int) (x, y [][]float64) {
	t.Helper()
	n := src.Len()
	xw, yw := src.Widths()
	x = make([][]float64, n)
	y = make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, xw)
		y[i] = make([]float64, yw)
	}
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		idx := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			idx = append(idx, i)
		}
		if err := src.Batch(0, idx, x[start:end], y[start:end]); err != nil {
			t.Fatal(err)
		}
	}
	return x, y
}

// TestStreamDeterministic pins the core streaming contract: sample i's bytes
// depend only on (seed, i) — not on batch grouping, call order, or epoch.
func TestStreamDeterministic(t *testing.T) {
	refX, refY := renderAll(t, testStream(t, 20, 42), 20)
	for _, batch := range []int{1, 3, 7, 20} {
		gotX, gotY := renderAll(t, testStream(t, 20, 42), batch)
		for i := range refX {
			for j := range refX[i] {
				if gotX[i][j] != refX[i][j] {
					t.Fatalf("batch=%d: x[%d][%d] = %x, want %x", batch, i, j, gotX[i][j], refX[i][j])
				}
			}
			for j := range refY[i] {
				if gotY[i][j] != refY[i][j] {
					t.Fatalf("batch=%d: y[%d][%d] differs bitwise", batch, i, j)
				}
			}
		}
	}
	// Reversed order, repeated indices, and a different epoch all replay the
	// same bytes.
	s := testStream(t, 20, 42)
	x := [][]float64{make([]float64, 3), make([]float64, 3)}
	y := [][]float64{make([]float64, 2), make([]float64, 2)}
	if err := s.Batch(5, []int{13, 13}, x, y); err != nil {
		t.Fatal(err)
	}
	for j := range x[0] {
		if x[0][j] != refX[13][j] || x[1][j] != refX[13][j] {
			t.Fatalf("repeated render of sample 13 differs from reference")
		}
	}
}

// TestStreamConcurrentBatches renders disjoint batches from many goroutines;
// the pooled rng scratch must keep every sample bit-identical (run under
// -race in CI).
func TestStreamConcurrentBatches(t *testing.T) {
	const n, gor = 64, 8
	refX, _ := renderAll(t, testStream(t, n, 9), n)
	s := testStream(t, n, 9)
	gotX := make([][]float64, n)
	gotY := make([][]float64, n)
	for i := range gotX {
		gotX[i] = make([]float64, 3)
		gotY[i] = make([]float64, 2)
	}
	var wg sync.WaitGroup
	errs := make([]error, gor)
	per := n / gor
	for g := 0; g < gor; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			idx := make([]int, 0, per)
			for i := g * per; i < (g+1)*per; i++ {
				idx = append(idx, i)
			}
			errs[g] = s.Batch(0, idx, gotX[g*per:(g+1)*per], gotY[g*per:(g+1)*per])
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range refX {
		for j := range refX[i] {
			if gotX[i][j] != refX[i][j] {
				t.Fatalf("concurrent render: x[%d][%d] differs bitwise", i, j)
			}
		}
	}
}

func TestStreamOnBatch(t *testing.T) {
	s := testStream(t, 10, 1)
	total := 0
	s.OnBatch = func(rendered int) { total += rendered }
	renderAll(t, s, 4)
	if total != 10 {
		t.Fatalf("OnBatch counted %d samples, want 10", total)
	}
}

func TestInMemoryMatchesRows(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	y := [][]float64{{0.1}, {0.2}, {0.3}}
	src, err := NewInMemory(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != 3 {
		t.Fatalf("Len = %d, want 3", src.Len())
	}
	xw, yw := src.Widths()
	if xw != 2 || yw != 1 {
		t.Fatalf("Widths = (%d, %d), want (2, 1)", xw, yw)
	}
	gx, gy := renderAll(t, src, 2)
	for i := range x {
		for j := range x[i] {
			if gx[i][j] != x[i][j] {
				t.Fatalf("x[%d][%d] = %g, want %g", i, j, gx[i][j], x[i][j])
			}
		}
		if gy[i][0] != y[i][0] {
			t.Fatalf("y[%d] = %g, want %g", i, gy[i][0], y[i][0])
		}
	}
}

func TestSourceValidation(t *testing.T) {
	if _, err := NewInMemory(nil, nil); err == nil {
		t.Fatal("empty rows accepted")
	}
	if _, err := NewInMemory([][]float64{{1}}, [][]float64{{1}, {2}}); err == nil {
		t.Fatal("mismatched counts accepted")
	}
	if _, err := NewInMemory([][]float64{{1}, {2, 3}}, [][]float64{{1}, {2}}); err == nil {
		t.Fatal("ragged features accepted")
	}
	if _, err := NewStream(0, 1, 1, 0, nil); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := NewStream(5, 1, 1, 0, nil); err == nil {
		t.Fatal("nil render accepted")
	}
	s := testStream(t, 5, 0)
	x := [][]float64{make([]float64, 3)}
	y := [][]float64{make([]float64, 2)}
	if err := s.Batch(0, []int{5}, x, y); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	failing, err := NewStream(2, 1, 1, 0, func(i int, _ *rng.Source, _, _ []float64) error {
		return fmt.Errorf("boom %d", i)
	})
	if err != nil {
		t.Fatal(err)
	}
	err = failing.Batch(0, []int{1}, [][]float64{{0}}, [][]float64{{0}})
	if err == nil || !strings.Contains(err.Error(), "rendering sample 1") {
		t.Fatalf("render error not wrapped with sample index: %v", err)
	}
}

// TestSelectRemapsIndices checks view sample j is base sample indices[j].
func TestSelectRemapsIndices(t *testing.T) {
	base := testStream(t, 10, 3)
	refX, refY := renderAll(t, base, 10)
	pick := []int{7, 2, 9}
	v, err := Select(testStream(t, 10, 3), pick)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 3 {
		t.Fatalf("view Len = %d, want 3", v.Len())
	}
	gx, gy := renderAll(t, v, 2)
	for j, i := range pick {
		for c := range gx[j] {
			if gx[j][c] != refX[i][c] {
				t.Fatalf("view sample %d != base sample %d (x)", j, i)
			}
		}
		for c := range gy[j] {
			if gy[j][c] != refY[i][c] {
				t.Fatalf("view sample %d != base sample %d (y)", j, i)
			}
		}
	}
	if _, err := Select(base, nil); err == nil {
		t.Fatal("empty selection accepted")
	}
	if _, err := Select(base, []int{10}); err == nil {
		t.Fatal("out-of-range selection accepted")
	}
}

// TestSplitIndicesMatchesShuffleSplit pins the replication contract:
// SplitIndices selects exactly the rows Shuffle-then-Split would place in
// each side.
func TestSplitIndicesMatchesShuffleSplit(t *testing.T) {
	const n = 25
	d := New(n)
	for i := 0; i < n; i++ {
		d.Append([]float64{float64(i), float64(i) * 2}, []float64{float64(i)})
	}
	d.Shuffle(rng.New(77))
	train, test, err := d.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}

	trainIdx, testIdx, err := SplitIndices(n, 0.8, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	if len(trainIdx) != train.Len() || len(testIdx) != test.Len() {
		t.Fatalf("split sizes (%d, %d), want (%d, %d)", len(trainIdx), len(testIdx), train.Len(), test.Len())
	}
	for j, i := range trainIdx {
		if train.Y[j][0] != float64(i) {
			t.Fatalf("train row %d selects original %g, want %d", j, train.Y[j][0], i)
		}
	}
	for j, i := range testIdx {
		if test.Y[j][0] != float64(i) {
			t.Fatalf("test row %d selects original %g, want %d", j, test.Y[j][0], i)
		}
	}

	if _, _, err := SplitIndices(0, 0.8, rng.New(1)); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, _, err := SplitIndices(10, 1.0, rng.New(1)); err == nil {
		t.Fatal("fraction 1.0 accepted")
	}
	if _, _, err := SplitIndices(1, 0.5, rng.New(1)); err == nil {
		t.Fatal("empty-side split accepted")
	}
}

// TestMaterializeRendersSelection checks the bridge back to Dataset rows.
func TestMaterializeRendersSelection(t *testing.T) {
	s := testStream(t, 8, 5)
	refX, refY := renderAll(t, s, 8)
	d, err := Materialize(testStream(t, 8, 5), []int{6, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("materialized %d rows, want 3", d.Len())
	}
	for j, i := range []int{6, 0, 3} {
		for c := range d.X[j] {
			if d.X[j][c] != refX[i][c] {
				t.Fatalf("row %d != stream sample %d", j, i)
			}
		}
		for c := range d.Y[j] {
			if d.Y[j][c] != refY[i][c] {
				t.Fatalf("label %d != stream sample %d", j, i)
			}
		}
	}
	if _, err := Materialize(s, nil); err == nil {
		t.Fatal("empty materialization accepted")
	}
}
