package dataset

import (
	"bytes"
	"strings"
	"testing"

	"specml/internal/rng"
)

func TestCSVRoundTrip(t *testing.T) {
	d := sample(12, 5, 2, 3)
	d.Names = []string{"N2", "O2"}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(strings.SplitN(out, "\n", 2)[0], "N2") {
		t.Fatalf("header missing names: %q", strings.SplitN(out, "\n", 2)[0])
	}
	got, err := ReadCSV(strings.NewReader(out), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("round trip lost rows: %d vs %d", got.Len(), d.Len())
	}
	for i := range d.X {
		for k := range d.X[i] {
			if got.X[i][k] != d.X[i][k] {
				t.Fatalf("feature (%d,%d) changed: %v vs %v", i, k, got.X[i][k], d.X[i][k])
			}
		}
		for k := range d.Y[i] {
			if got.Y[i][k] != d.Y[i][k] {
				t.Fatalf("label (%d,%d) changed", i, k)
			}
		}
	}
	if got.Names[0] != "N2" || got.Names[1] != "O2" {
		t.Fatalf("names lost: %v", got.Names)
	}
}

func TestWriteCSVEmptyAndInvalid(t *testing.T) {
	var buf bytes.Buffer
	empty := New(0)
	if err := empty.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	bad := sample(3, 2, 1, 5)
	bad.X[1] = []float64{1}
	if err := bad.WriteCSV(&buf); err == nil {
		t.Fatal("ragged dataset must not export")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("x0,y0\n1,2\n"), 0); err == nil {
		t.Fatal("zero label width must error")
	}
	if _, err := ReadCSV(strings.NewReader("y0\n1\n"), 1); err == nil {
		t.Fatal("no feature columns must error")
	}
	if _, err := ReadCSV(strings.NewReader("x0,y0\nnotanumber,2\n"), 1); err == nil {
		t.Fatal("bad float must error")
	}
	if _, err := ReadCSV(strings.NewReader(""), 1); err == nil {
		t.Fatal("empty stream must error")
	}
}

func TestCSVDefaultColumnNames(t *testing.T) {
	src := rng.New(7)
	d := New(1)
	d.Append([]float64{src.Float64()}, []float64{1, 2})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "x0,y0,y1") {
		t.Fatalf("default header wrong: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}
