package dataset

import (
	"fmt"
	"math"
	"sync"

	"specml/internal/rng"
)

// Source supplies training samples at mini-batch granularity without
// prescribing how (or when) they come to exist. A materialized dataset is a
// Source; so is a streaming corpus that renders sample i on demand from its
// own deterministic rng stream. nn.Model.FitSource consumes a Source through
// a prefetch pipeline, so Batch is called from worker goroutines: it must be
// safe for concurrent calls with disjoint destination buffers.
//
// The contract streaming training depends on: sample i is a pure function of
// i (and, for sources that choose to vary per pass, the epoch) — never of the
// order, grouping or concurrency of Batch calls. Sources in this repository
// ignore epoch, so every pass observes identical bytes and a streamed fit is
// bit-identical to a materialized one.
type Source interface {
	// Len returns the per-epoch sample count.
	Len() int
	// Widths returns the feature and label row widths.
	Widths() (xWidth, yWidth int)
	// Batch fills dstX[j], dstY[j] with sample indices[j] for every j. The
	// destination rows are caller-owned and sized to Widths. indices must be
	// in [0, Len()).
	Batch(epoch int, indices []int, dstX, dstY [][]float64) error
}

// InMemory adapts materialized [][]float64 rows to the Source interface —
// the trivial source the classic Fit(x, y) path wraps itself in. Batch
// copies rows into the destination buffers.
type InMemory struct {
	x, y [][]float64
}

// NewInMemory wraps materialized feature and label rows. The rows are
// retained, not copied, and must be rectangular.
func NewInMemory(x, y [][]float64) (*InMemory, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("dataset: source needs equal, non-zero sample counts (%d, %d)", len(x), len(y))
	}
	xw, yw := len(x[0]), len(y[0])
	for i := range x {
		if len(x[i]) != xw {
			return nil, fmt.Errorf("dataset: feature row %d has width %d, want %d", i, len(x[i]), xw)
		}
		if len(y[i]) != yw {
			return nil, fmt.Errorf("dataset: label row %d has width %d, want %d", i, len(y[i]), yw)
		}
	}
	return &InMemory{x: x, y: y}, nil
}

// FromDataset wraps a dataset's rows as a Source.
func FromDataset(d *Dataset) (*InMemory, error) {
	return NewInMemory(d.X, d.Y)
}

// Len implements Source.
func (s *InMemory) Len() int { return len(s.x) }

// Widths implements Source.
func (s *InMemory) Widths() (int, int) { return len(s.x[0]), len(s.y[0]) }

// Batch implements Source.
func (s *InMemory) Batch(_ int, indices []int, dstX, dstY [][]float64) error {
	for j, i := range indices {
		if i < 0 || i >= len(s.x) {
			return fmt.Errorf("dataset: sample index %d out of range [0, %d)", i, len(s.x))
		}
		copy(dstX[j], s.x[i])
		copy(dstY[j], s.y[i])
	}
	return nil
}

// RenderFunc renders one sample into caller-owned x and y rows. src is the
// sample's private stream, already reseeded so the draw sequence depends
// only on the sample index — never on scheduling.
type RenderFunc func(i int, src *rng.Source, x, y []float64) error

// Stream is a deterministic streaming corpus: sample i is rendered on
// demand from its own child stream, seeded the same way the materialized
// generators seed theirs (seeds drawn sequentially from one root), so a
// Stream built from the same (seed, n) as a materialized corpus yields
// bit-identical rows. Batch is safe for concurrent calls; per-call rng
// scratch comes from a sync.Pool so steady-state rendering stays
// allocation-free.
type Stream struct {
	n      int
	xw, yw int
	seeds  []uint64
	render RenderFunc
	srcs   sync.Pool
	// OnBatch, when non-nil, is called with the sample count after every
	// successful Batch (generator throughput counters). It must be safe for
	// concurrent calls.
	OnBatch func(rendered int)
}

// NewStream builds a streaming corpus of n samples with the given row
// widths. The per-sample child seeds are drawn sequentially from
// rng.New(seed) — the same Split construction the materialized generators
// use — which costs 8 bytes per sample and fixes every sample's stream up
// front.
func NewStream(n, xWidth, yWidth int, seed uint64, render RenderFunc) (*Stream, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: need a positive sample count, got %d", n)
	}
	if xWidth <= 0 || yWidth <= 0 {
		return nil, fmt.Errorf("dataset: need positive row widths, got (%d, %d)", xWidth, yWidth)
	}
	if render == nil {
		return nil, fmt.Errorf("dataset: stream needs a render function")
	}
	root := rng.New(seed)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = root.Uint64()
	}
	s := &Stream{n: n, xw: xWidth, yw: yWidth, seeds: seeds, render: render}
	s.srcs.New = func() any { return rng.New(0) }
	return s, nil
}

// Len implements Source.
func (s *Stream) Len() int { return s.n }

// Widths implements Source.
func (s *Stream) Widths() (int, int) { return s.xw, s.yw }

// Batch implements Source.
func (s *Stream) Batch(_ int, indices []int, dstX, dstY [][]float64) error {
	src := s.srcs.Get().(*rng.Source)
	defer s.srcs.Put(src)
	for j, i := range indices {
		if i < 0 || i >= s.n {
			return fmt.Errorf("dataset: sample index %d out of range [0, %d)", i, s.n)
		}
		src.Reseed(s.seeds[i])
		if err := s.render(i, src, dstX[j], dstY[j]); err != nil {
			return fmt.Errorf("dataset: rendering sample %d: %w", i, err)
		}
	}
	if s.OnBatch != nil {
		s.OnBatch(len(indices))
	}
	return nil
}

// view exposes a subset (or permutation) of a base source under remapped
// indices: sample j of the view is sample idx[j] of the base.
type view struct {
	base Source
	idx  []int
	tr   sync.Pool // *[]int translation scratch
}

// Select returns a Source view of the given base samples: view sample j is
// base sample indices[j]. The index slice is copied. Combined with a seeded
// permutation this reproduces the materialized shuffle-then-split flow
// without materializing anything: train on Select(src, perm[:k]), hold out
// perm[k:].
func Select(base Source, indices []int) (Source, error) {
	if base == nil {
		return nil, fmt.Errorf("dataset: Select needs a base source")
	}
	if len(indices) == 0 {
		return nil, fmt.Errorf("dataset: Select needs at least one index")
	}
	n := base.Len()
	idx := make([]int, len(indices))
	for j, i := range indices {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("dataset: Select index %d out of range [0, %d)", i, n)
		}
		idx[j] = i
	}
	v := &view{base: base, idx: idx}
	v.tr.New = func() any { b := make([]int, 0, 64); return &b }
	return v, nil
}

// Len implements Source.
func (v *view) Len() int { return len(v.idx) }

// Widths implements Source.
func (v *view) Widths() (int, int) { return v.base.Widths() }

// Batch implements Source.
func (v *view) Batch(epoch int, indices []int, dstX, dstY [][]float64) error {
	bp := v.tr.Get().(*[]int)
	defer v.tr.Put(bp)
	tr := (*bp)[:0]
	for _, j := range indices {
		if j < 0 || j >= len(v.idx) {
			return fmt.Errorf("dataset: sample index %d out of range [0, %d)", j, len(v.idx))
		}
		tr = append(tr, v.idx[j])
	}
	*bp = tr
	return v.base.Batch(epoch, tr, dstX, dstY)
}

// Materialize renders the given source samples into a fresh Dataset — the
// bridge back to APIs that need [][]float64 rows (held-out validation
// splits, evaluation helpers).
func Materialize(src Source, indices []int) (*Dataset, error) {
	if len(indices) == 0 {
		return nil, fmt.Errorf("dataset: Materialize needs at least one index")
	}
	xw, yw := src.Widths()
	d := New(len(indices))
	d.Resize(len(indices), xw, yw)
	if err := src.Batch(0, indices, d.X, d.Y); err != nil {
		return nil, err
	}
	return d, nil
}

// ShuffledIndices reproduces a materialized Dataset.Shuffle as an index
// permutation: shuffled row j is original row perm[j]. Combined with Select
// it replays a shuffle without touching any rows.
func ShuffledIndices(n int, src *rng.Source) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	// The same Fisher-Yates swap sequence Dataset.Shuffle applies to rows,
	// applied to indices.
	src.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}

// SplitIndices reproduces the materialized Shuffle-then-Split flow as index
// sets: the returned train/test index slices select exactly the rows that
// d.Shuffle(rng.New(seed)) followed by d.Split(trainFraction) would place in
// each side, without touching any rows.
func SplitIndices(n int, trainFraction float64, src *rng.Source) (train, test []int, err error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("dataset: need a positive sample count, got %d", n)
	}
	if trainFraction <= 0 || trainFraction >= 1 {
		return nil, nil, fmt.Errorf("dataset: train fraction must be in (0,1), got %g", trainFraction)
	}
	k := int(math.Round(float64(n) * trainFraction))
	if k == 0 || k == n {
		return nil, nil, fmt.Errorf("dataset: split of %d samples at %g leaves an empty side", n, trainFraction)
	}
	perm := ShuffledIndices(n, src)
	return perm[:k], perm[k:], nil
}
