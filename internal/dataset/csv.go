package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV exports the dataset in a spreadsheet-friendly layout: a header
// row of x0..xN-1 followed by the label names (or y0..), then one row per
// sample. This implements the toolflow's "export of analysis data to
// spreadsheet applications or data analysis tools, e.g., MATLAB or
// Pandas".
func (d *Dataset) WriteCSV(w io.Writer) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if d.Len() == 0 {
		cw.Flush()
		return cw.Error()
	}
	fw, lw := len(d.X[0]), len(d.Y[0])
	header := make([]string, 0, fw+lw)
	for i := 0; i < fw; i++ {
		header = append(header, fmt.Sprintf("x%d", i))
	}
	for j := 0; j < lw; j++ {
		if j < len(d.Names) && d.Names[j] != "" {
			header = append(header, d.Names[j])
		} else {
			header = append(header, fmt.Sprintf("y%d", j))
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, fw+lw)
	for i := range d.X {
		for k, v := range d.X[i] {
			row[k] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		for k, v := range d.Y[i] {
			row[fw+k] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV imports a dataset written by WriteCSV. labelWidth tells how many
// trailing columns are labels.
func ReadCSV(r io.Reader, labelWidth int) (*Dataset, error) {
	if labelWidth <= 0 {
		return nil, fmt.Errorf("dataset: labelWidth must be positive, got %d", labelWidth)
	}
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(header) <= labelWidth {
		return nil, fmt.Errorf("dataset: %d columns cannot hold %d labels", len(header), labelWidth)
	}
	fw := len(header) - labelWidth
	d := New(0)
	d.Names = append([]string(nil), header[fw:]...)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
		x := make([]float64, fw)
		y := make([]float64, labelWidth)
		for k := 0; k < fw; k++ {
			if x[k], err = strconv.ParseFloat(rec[k], 64); err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d col %d: %w", line, k, err)
			}
		}
		for k := 0; k < labelWidth; k++ {
			if y[k], err = strconv.ParseFloat(rec[fw+k], 64); err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d col %d: %w", line, fw+k, err)
			}
		}
		d.Append(x, y)
	}
	return d, nil
}
