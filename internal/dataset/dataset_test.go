package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"specml/internal/rng"
)

func sample(n, fw, lw int, seed uint64) *Dataset {
	src := rng.New(seed)
	d := New(n)
	for i := 0; i < n; i++ {
		x := make([]float64, fw)
		y := make([]float64, lw)
		for j := range x {
			x[j] = src.Normal(0, 2)
		}
		for j := range y {
			y[j] = src.Float64()
		}
		d.Append(x, y)
	}
	return d
}

func TestValidate(t *testing.T) {
	d := sample(10, 4, 2, 1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	d.X[3] = []float64{1}
	if err := d.Validate(); err == nil {
		t.Fatal("ragged features must fail validation")
	}
	d2 := sample(5, 3, 1, 2)
	d2.Y = d2.Y[:4]
	if err := d2.Validate(); err == nil {
		t.Fatal("row-count mismatch must fail validation")
	}
	var empty Dataset
	if err := empty.Validate(); err != nil {
		t.Fatal("empty dataset must validate")
	}
}

func TestSplitFractions(t *testing.T) {
	d := sample(100, 3, 1, 3)
	train, test, err := d.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split = %d/%d, want 80/20", train.Len(), test.Len())
	}
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := d.Split(bad); err == nil {
			t.Fatalf("Split(%v) must error", bad)
		}
	}
	tiny := sample(1, 2, 1, 4)
	if _, _, err := tiny.Split(0.5); err == nil {
		t.Fatal("degenerate split must error")
	}
}

func TestShuffleKeepsPairs(t *testing.T) {
	d := New(20)
	for i := 0; i < 20; i++ {
		d.Append([]float64{float64(i)}, []float64{float64(i) * 10})
	}
	d.Shuffle(rng.New(5))
	for i := range d.X {
		if d.Y[i][0] != d.X[i][0]*10 {
			t.Fatal("shuffle broke feature/label pairing")
		}
	}
}

func TestSubset(t *testing.T) {
	d := sample(10, 2, 1, 6)
	s := d.Subset([]int{0, 5, 9})
	if s.Len() != 3 {
		t.Fatalf("subset len = %d", s.Len())
	}
	if &s.X[1][0] != &d.X[5][0] {
		t.Fatal("subset must share rows")
	}
}

func TestNormalizationMoments(t *testing.T) {
	d := sample(500, 4, 1, 7)
	norm, err := FitNormalization(d.X)
	if err != nil {
		t.Fatal(err)
	}
	applied := norm.ApplyAll(d.X)
	refit, err := FitNormalization(applied)
	if err != nil {
		t.Fatal(err)
	}
	for j := range refit.Mean {
		if math.Abs(refit.Mean[j]) > 1e-9 {
			t.Fatalf("normalized mean[%d] = %v", j, refit.Mean[j])
		}
		if math.Abs(refit.Std[j]-1) > 1e-9 {
			t.Fatalf("normalized std[%d] = %v", j, refit.Std[j])
		}
	}
}

func TestNormalizationConstantFeature(t *testing.T) {
	x := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	norm, err := FitNormalization(x)
	if err != nil {
		t.Fatal(err)
	}
	out := norm.Apply([]float64{5, 2})
	if out[0] != 0 {
		t.Fatalf("constant feature should map to 0, got %v", out[0])
	}
	if math.IsNaN(out[1]) || math.IsInf(out[1], 0) {
		t.Fatal("normalization produced non-finite value")
	}
}

func TestNormalizationEmptyErrors(t *testing.T) {
	if _, err := FitNormalization(nil); err == nil {
		t.Fatal("empty fit must error")
	}
}

func TestEvaluateKnownValues(t *testing.T) {
	preds := [][]float64{{1, 2}, {3, 4}}
	targets := [][]float64{{1, 1}, {1, 1}}
	m, err := Evaluate(preds, targets)
	if err != nil {
		t.Fatal(err)
	}
	// per-output MAE: out0 |0|,|2| -> 1 ; out1 |1|,|3| -> 2
	if math.Abs(m.PerOutput[0]-1) > 1e-12 || math.Abs(m.PerOutput[1]-2) > 1e-12 {
		t.Fatalf("per-output = %v", m.PerOutput)
	}
	if math.Abs(m.MAE-1.5) > 1e-12 {
		t.Fatalf("MAE = %v, want 1.5", m.MAE)
	}
	// MSE: (0+4+1+9)/4 = 3.5
	if math.Abs(m.MSE-3.5) > 1e-12 {
		t.Fatalf("MSE = %v, want 3.5", m.MSE)
	}
	// error stddev per output: out0 errors {0,2} -> std 1; out1 {1,3} -> 1
	if math.Abs(m.StdDev[0]-1) > 1e-12 || math.Abs(m.StdDev[1]-1) > 1e-12 {
		t.Fatalf("StdDev = %v", m.StdDev)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(nil, nil); err == nil {
		t.Fatal("empty evaluate must error")
	}
	if _, err := Evaluate([][]float64{{1}}, [][]float64{{1}, {2}}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := Evaluate([][]float64{{1}, {1, 2}}, [][]float64{{1}, {2}}); err == nil {
		t.Fatal("ragged rows must error")
	}
}

// Property: perfect predictions give zero metrics; metrics are
// non-negative in general.
func TestEvaluateProperties(t *testing.T) {
	src := rng.New(11)
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw%10) + 1
		w := int(wRaw%5) + 1
		preds := make([][]float64, n)
		for i := range preds {
			preds[i] = make([]float64, w)
			for j := range preds[i] {
				preds[i][j] = src.Normal(0, 1)
			}
		}
		m, err := Evaluate(preds, preds)
		if err != nil || m.MAE != 0 || m.MSE != 0 {
			return false
		}
		targets := make([][]float64, n)
		for i := range targets {
			targets[i] = make([]float64, w)
			for j := range targets[i] {
				targets[i][j] = src.Normal(0, 1)
			}
		}
		m2, err := Evaluate(preds, targets)
		if err != nil {
			return false
		}
		if m2.MAE < 0 || m2.MSE < 0 {
			return false
		}
		for j := range m2.StdDev {
			if m2.StdDev[j] < 0 || m2.PerOutput[j] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
