// Package dataset provides labelled-spectra dataset handling: splitting,
// shuffling, normalization and the regression metrics the paper reports
// (overall and per-substance mean absolute error, mean squared error and
// per-output standard deviation).
package dataset

import (
	"fmt"
	"math"

	"specml/internal/rng"
	"specml/internal/tensor/pool"
)

// Dataset holds flat feature rows X with label rows Y (one row per sample).
type Dataset struct {
	X [][]float64
	Y [][]float64
	// Names optionally labels the outputs (substance names).
	Names []string
}

// New returns an empty dataset with pre-allocated capacity.
func New(capacity int) *Dataset {
	return &Dataset{
		X: make([][]float64, 0, capacity),
		Y: make([][]float64, 0, capacity),
	}
}

// Append adds one sample. The slices are retained, not copied.
func (d *Dataset) Append(x, y []float64) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Len returns the sample count.
func (d *Dataset) Len() int { return len(d.X) }

// Resize sets the dataset to exactly n rows of the given feature and label
// widths, reusing existing row storage wherever capacity allows (grow-only,
// so repeated regeneration into the same dataset settles at zero heap
// allocation). Row contents are unspecified afterwards; callers overwrite
// every row. The rows become owned by the dataset: resizing a dataset whose
// rows are still referenced elsewhere (Split or Subset views) lets those
// references observe the new contents.
func (d *Dataset) Resize(n, xWidth, yWidth int) {
	d.X = resizeRows(d.X, n, xWidth)
	d.Y = resizeRows(d.Y, n, yWidth)
}

func resizeRows(rows [][]float64, n, width int) [][]float64 {
	if cap(rows) >= n {
		rows = rows[:n]
	} else {
		grown := make([][]float64, n)
		copy(grown, rows)
		rows = grown
	}
	for i := range rows {
		rows[i] = pool.Grow(rows[i], width)
	}
	return rows
}

// Validate checks rectangularity: every feature row and every label row
// must have a consistent width.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("dataset: %d feature rows vs %d label rows", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return nil
	}
	fw, lw := len(d.X[0]), len(d.Y[0])
	for i := range d.X {
		if len(d.X[i]) != fw {
			return fmt.Errorf("dataset: feature row %d has width %d, want %d", i, len(d.X[i]), fw)
		}
		if len(d.Y[i]) != lw {
			return fmt.Errorf("dataset: label row %d has width %d, want %d", i, len(d.Y[i]), lw)
		}
	}
	return nil
}

// Shuffle permutes the samples in place using src.
func (d *Dataset) Shuffle(src *rng.Source) {
	src.Shuffle(d.Len(), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Split partitions the dataset into a training set with the given fraction
// of samples and a test set with the remainder (the paper's 80/20 split).
// The receiver is unchanged; the returned sets share the underlying rows.
func (d *Dataset) Split(trainFraction float64) (train, test *Dataset, err error) {
	if trainFraction <= 0 || trainFraction >= 1 {
		return nil, nil, fmt.Errorf("dataset: train fraction must be in (0,1), got %g", trainFraction)
	}
	n := d.Len()
	k := int(math.Round(float64(n) * trainFraction))
	if k == 0 || k == n {
		return nil, nil, fmt.Errorf("dataset: split of %d samples at %g leaves an empty side", n, trainFraction)
	}
	train = &Dataset{X: d.X[:k], Y: d.Y[:k], Names: d.Names}
	test = &Dataset{X: d.X[k:], Y: d.Y[k:], Names: d.Names}
	return train, test, nil
}

// Subset returns a dataset view of the given sample indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	s := New(len(idx))
	s.Names = d.Names
	for _, i := range idx {
		s.Append(d.X[i], d.Y[i])
	}
	return s
}

// Normalization rescales feature vectors to zero mean and unit variance
// per feature, with parameters estimated on a training set and applied
// unchanged to evaluation data.
type Normalization struct {
	Mean []float64
	Std  []float64
}

// FitNormalization estimates per-feature mean and standard deviation.
func FitNormalization(x [][]float64) (*Normalization, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("dataset: cannot fit normalization on empty data")
	}
	w := len(x[0])
	n := &Normalization{Mean: make([]float64, w), Std: make([]float64, w)}
	for _, row := range x {
		for j, v := range row {
			n.Mean[j] += v
		}
	}
	inv := 1 / float64(len(x))
	for j := range n.Mean {
		n.Mean[j] *= inv
	}
	for _, row := range x {
		for j, v := range row {
			d := v - n.Mean[j]
			n.Std[j] += d * d
		}
	}
	for j := range n.Std {
		n.Std[j] = math.Sqrt(n.Std[j] * inv)
		if n.Std[j] < 1e-12 {
			n.Std[j] = 1 // constant features pass through centred
		}
	}
	return n, nil
}

// Apply returns a normalized copy of x.
func (n *Normalization) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - n.Mean[j]) / n.Std[j]
	}
	return out
}

// ApplyAll returns normalized copies of all rows.
func (n *Normalization) ApplyAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = n.Apply(row)
	}
	return out
}

// Metrics summarizes prediction quality over a dataset.
type Metrics struct {
	MAE       float64   // mean absolute error over all outputs
	MSE       float64   // mean squared error over all outputs
	PerOutput []float64 // per-output MAE (the per-substance bars of Figs. 5-7)
	StdDev    []float64 // per-output standard deviation of the prediction error
}

// Evaluate computes Metrics for parallel slices of predictions and targets.
func Evaluate(preds, targets [][]float64) (*Metrics, error) {
	if len(preds) != len(targets) {
		return nil, fmt.Errorf("dataset: %d predictions vs %d targets", len(preds), len(targets))
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("dataset: no samples to evaluate")
	}
	w := len(preds[0])
	m := &Metrics{PerOutput: make([]float64, w), StdDev: make([]float64, w)}
	meanErr := make([]float64, w)
	for i := range preds {
		if len(preds[i]) != w || len(targets[i]) != w {
			return nil, fmt.Errorf("dataset: ragged row %d", i)
		}
		for j := range preds[i] {
			e := preds[i][j] - targets[i][j]
			m.PerOutput[j] += math.Abs(e)
			m.MSE += e * e
			meanErr[j] += e
		}
	}
	n := float64(len(preds))
	for j := range m.PerOutput {
		m.PerOutput[j] /= n
		meanErr[j] /= n
		m.MAE += m.PerOutput[j]
	}
	m.MAE /= float64(w)
	m.MSE /= n * float64(w)
	for i := range preds {
		for j := range preds[i] {
			e := preds[i][j] - targets[i][j] - meanErr[j]
			m.StdDev[j] += e * e
		}
	}
	for j := range m.StdDev {
		m.StdDev[j] = math.Sqrt(m.StdDev[j] / n)
	}
	return m, nil
}
