package front

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"specml/internal/obs"
)

// backend is one specserve instance behind the front: its address, its
// health as seen by the prober, and the two load signals admission control
// keys off — the front's own in-flight count (instant) and the
// specserve_queue_depth gauges scraped from the backend's /metrics
// (authoritative but at probe-interval freshness).
type backend struct {
	name string // host:port, the routing key and metric label
	base string // URL base without trailing slash

	healthy    atomic.Bool
	consecFail atomic.Int64
	inflight   atomic.Int64
	queueDepth atomic.Int64 // scraped sum over the backend's models

	// Resolved once at construction; recording is atomic-only.
	reqs, errs *obs.Counter
	hop        *obs.Histogram
}

// saturated reports whether this backend is over the shed threshold:
// queued work it has reported plus work the front already has in flight
// to it. shed < 0 disables shedding.
func (b *backend) saturated(shed int) bool {
	if shed < 0 {
		return false
	}
	return b.inflight.Load()+b.queueDepth.Load() >= int64(shed)
}

// markFailed is the passive health signal: a transport-level hop failure
// takes the backend out of rotation immediately instead of waiting for
// the prober — this is what makes failover fast enough that a killed
// backend causes retries, not an outage.
func (b *backend) markFailed(threshold int64) {
	if b.consecFail.Add(1) >= threshold {
		b.healthy.Store(false)
	}
}

// markAlive resets the failure streak.
func (b *backend) markAlive() {
	b.consecFail.Store(0)
	b.healthy.Store(true)
}

// probe checks one backend: /healthz for liveness, then /metrics for the
// queue-depth gauges. Called by the health loop and once synchronously at
// startup.
func (f *Front) probe(ctx context.Context, b *backend) {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.HealthTimeout)
	defer cancel()
	ok := func(path string) (string, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+path, nil)
		if err != nil {
			return "", err
		}
		resp, err := f.client.Do(req)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("front: %s%s: status %d", b.name, path, resp.StatusCode)
		}
		return string(body), nil
	}
	if _, err := ok("/healthz"); err != nil {
		wasHealthy := b.healthy.Load()
		b.markFailed(int64(f.cfg.FailThreshold))
		if wasHealthy && !b.healthy.Load() {
			f.logger.Warn("backend unhealthy", "backend", b.name, "err", err)
		}
		return
	}
	if !b.healthy.Load() {
		f.logger.Info("backend healthy", "backend", b.name)
	}
	b.markAlive()
	if metrics, err := ok("/metrics"); err == nil {
		b.queueDepth.Store(sumQueueDepth(metrics))
	}
}

// healthLoop probes every backend at the configured interval until Close.
func (f *Front) healthLoop() {
	defer close(f.healthDone)
	ticker := time.NewTicker(f.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
		}
		for _, b := range f.backends {
			f.probe(context.Background(), b)
		}
	}
}

// sumQueueDepth extracts and sums the specserve_queue_depth gauge series
// from a Prometheus text exposition — the backend's total queued requests
// across its per-model micro-batchers.
func sumQueueDepth(exposition string) int64 {
	var sum float64
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, "specserve_queue_depth") {
			continue
		}
		rest := line[len("specserve_queue_depth"):]
		// Either "{labels} value" or " value"; both put the value last.
		i := strings.LastIndexByte(rest, ' ')
		if i < 0 {
			continue
		}
		if rest != "" && rest[0] != '{' && rest[0] != ' ' {
			continue // a different family sharing the prefix
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest[i+1:]), 64)
		if err != nil {
			continue
		}
		sum += v
	}
	return int64(sum)
}
