package front

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"specml/internal/nn"
	"specml/internal/rng"
	"specml/internal/serve"
)

// fleetBackend is one in-process specserve: the serve.Server plus the
// httptest listener in front of it.
type fleetBackend struct {
	srv  *serve.Server
	http *httptest.Server
	name string // host:port — what the ring and BackendHeader call it
}

func testModel(t testing.TB, seed uint64, inLen, outLen int) *nn.Model {
	t.Helper()
	m := nn.NewModel()
	m.Add(&nn.Dense{Out: 16})
	act, err := nn.ActivationByName("tanh")
	if err != nil {
		t.Fatal(err)
	}
	m.Add(&nn.ActivationLayer{Act: act})
	m.Add(&nn.Dense{Out: outLen})
	m.Add(&nn.SoftmaxLayer{})
	if err := m.Build(rng.New(seed), inLen); err != nil {
		t.Fatal(err)
	}
	return m
}

// newFleet boots n real specserve backends on loopback listeners, each
// serving the same deterministic "test" model, and a Front over them.
// mutate adjusts the front config before New.
func newFleet(t testing.TB, n int, mutate func(*Config)) (*Front, []*fleetBackend) {
	t.Helper()
	backends := make([]*fleetBackend, n)
	urls := make([]string, n)
	for i := range backends {
		srv, err := serve.New(serve.Config{BatchWindow: 0, RequestTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Registry().Register("test", testModel(t, 42, 24, 3)); err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		backends[i] = &fleetBackend{srv: srv, http: hs, name: hs.Listener.Addr().String()}
		urls[i] = hs.URL
		t.Cleanup(func() {
			hs.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Close(ctx)
		})
	}
	cfg := Config{
		Backends:       urls,
		HealthInterval: 50 * time.Millisecond,
		RetryBackoff:   time.Millisecond,
		SessionPrefix:  "fs-test",
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = f.Close(ctx)
	})
	return f, backends
}

func rampN(n int, phase float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.1 + 0.9*float64((i*7+int(phase*13))%n)/float64(n)
	}
	return x
}

// doJSON posts a JSON body through the front and decodes the response.
func doJSON(t testing.TB, h http.Handler, method, path string, body, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req := httptest.NewRequest(method, path, rd)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON response %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code, rec.Header()
}

type predictOut struct {
	Model     string    `json:"model"`
	Fractions []float64 `json:"fractions"`
	Error     string    `json:"error"`
}

// TestFrontPredictRouting: predicts for one model consistently land on one
// backend (so its micro-batcher coalesces them), and the numbers match a
// direct backend call bit for bit despite the binary hop in between.
func TestFrontPredictRouting(t *testing.T) {
	f, backends := newFleet(t, 3, nil)
	x := rampN(173, 2)

	var direct predictOut
	if code, _ := doJSON(t, backends[0].srv.Handler(), http.MethodPost, "/v1/predict",
		map[string]any{"model": "test", "intensities": x}, &direct); code != http.StatusOK {
		t.Fatalf("direct predict: %d (%s)", code, direct.Error)
	}

	owner := ""
	for i := 0; i < 10; i++ {
		var out predictOut
		code, hdr := doJSON(t, f.Handler(), http.MethodPost, "/v1/predict",
			map[string]any{"model": "test", "intensities": x}, &out)
		if code != http.StatusOK {
			t.Fatalf("front predict %d: status %d (%s)", i, code, out.Error)
		}
		b := hdr.Get(BackendHeader)
		if b == "" {
			t.Fatal("front predict: missing backend attribution header")
		}
		if owner == "" {
			owner = b
		} else if b != owner {
			t.Fatalf("model routing flapped: %s then %s", owner, b)
		}
		if !reflect.DeepEqual(out.Fractions, direct.Fractions) {
			t.Fatalf("front fractions %v != direct %v", out.Fractions, direct.Fractions)
		}
	}
	if owner != f.Ring().Lookup("test") {
		t.Fatalf("served by %s, ring says %s", owner, f.Ring().Lookup("test"))
	}
}

// TestFrontFailover: killing the backend that owns a model must cost zero
// 5xx — requests fail over to the next ring replica, and the dead backend
// drops out of the fleet view.
func TestFrontFailover(t *testing.T) {
	f, backends := newFleet(t, 3, nil)
	x := rampN(64, 1)
	body := map[string]any{"model": "test", "intensities": x}

	var out predictOut
	code, hdr := doJSON(t, f.Handler(), http.MethodPost, "/v1/predict", body, &out)
	if code != http.StatusOK {
		t.Fatalf("warm-up predict: %d (%s)", code, out.Error)
	}
	owner := hdr.Get(BackendHeader)

	for _, b := range backends {
		if b.name == owner {
			b.http.CloseClientConnections()
			b.http.Close()
		}
	}

	for i := 0; i < 20; i++ {
		var out predictOut
		code, hdr := doJSON(t, f.Handler(), http.MethodPost, "/v1/predict", body, &out)
		if code >= 500 {
			t.Fatalf("predict %d after kill: %d (%s) — failover must not surface 5xx", i, code, out.Error)
		}
		if code != http.StatusOK {
			t.Fatalf("predict %d after kill: %d (%s)", i, code, out.Error)
		}
		if got := hdr.Get(BackendHeader); got == owner {
			t.Fatalf("predict %d still attributed to the dead backend %s", i, owner)
		}
	}

	// The prober notices within a few intervals and the fleet view drops
	// to 2 healthy backends.
	deadline := time.Now().Add(3 * time.Second)
	for {
		var fleet struct {
			Healthy int `json:"healthy"`
		}
		if code, _ := doJSON(t, f.Handler(), http.MethodGet, "/v1/fleet", nil, &fleet); code != http.StatusOK {
			t.Fatalf("fleet status: %d", code)
		}
		if fleet.Healthy == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet still reports %d healthy backends after kill", fleet.Healthy)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFrontSessionStickiness: monitor sessions route by session ID, so
// every step of a session lands on the backend holding its smoothing
// state — while different sessions spread across the fleet.
func TestFrontSessionStickiness(t *testing.T) {
	f, _ := newFleet(t, 3, nil)
	h := f.Handler()
	x := rampN(24, 0)

	type sess struct{ id, backend string }
	var sessions []sess
	for i := 0; i < 16; i++ {
		var created struct {
			Session string `json:"session"`
			Error   string `json:"error"`
		}
		code, hdr := doJSON(t, h, http.MethodPost, "/v1/monitor",
			map[string]any{"model": "test", "smoothing": 0.5}, &created)
		if code != http.StatusOK {
			t.Fatalf("monitor create %d: %d (%s)", i, code, created.Error)
		}
		if created.Session == "" {
			t.Fatalf("monitor create %d: no session ID", i)
		}
		sessions = append(sessions, sess{created.Session, hdr.Get(BackendHeader)})
	}

	spread := make(map[string]int)
	for _, s := range sessions {
		if s.backend != f.Ring().Lookup(s.id) {
			t.Fatalf("session %s created on %s, ring owner is %s", s.id, s.backend, f.Ring().Lookup(s.id))
		}
		spread[s.backend]++
		for step := 1; step <= 3; step++ {
			var out struct {
				Step  int    `json:"step"`
				Error string `json:"error"`
			}
			code, hdr := doJSON(t, h, http.MethodPost, "/v1/monitor/"+s.id+"/step",
				map[string]any{"intensities": x}, &out)
			if code != http.StatusOK {
				t.Fatalf("session %s step %d: %d (%s)", s.id, step, code, out.Error)
			}
			if got := hdr.Get(BackendHeader); got != s.backend {
				t.Fatalf("session %s step %d served by %s, created on %s — state would be lost", s.id, step, got, s.backend)
			}
			if out.Step != step {
				t.Fatalf("session %s: step counter %d, want %d — state not sticky", s.id, out.Step, step)
			}
		}
		// Status and close route by the same key.
		code, hdr := doJSON(t, h, http.MethodGet, "/v1/monitor/"+s.id, nil, nil)
		if code != http.StatusOK || hdr.Get(BackendHeader) != s.backend {
			t.Fatalf("session %s status: %d via %s", s.id, code, hdr.Get(BackendHeader))
		}
	}
	if len(spread) < 2 {
		t.Fatalf("16 sessions all landed on one backend: %v", spread)
	}

	var list struct {
		Sessions []string `json:"sessions"`
	}
	if code, _ := doJSON(t, h, http.MethodGet, "/v1/monitor", nil, &list); code != http.StatusOK {
		t.Fatalf("monitor list: %d", code)
	}
	if len(list.Sessions) != len(sessions) {
		t.Fatalf("monitor list has %d sessions, created %d", len(list.Sessions), len(sessions))
	}
}

// TestFrontShed: when every candidate backend is over the queue-depth
// threshold, the front refuses with 429 + Retry-After instead of piling on.
func TestFrontShed(t *testing.T) {
	f, _ := newFleet(t, 2, func(c *Config) {
		c.ShedQueueDepth = 4
		c.HealthInterval = time.Hour // freeze scraped state for the test
	})
	for _, b := range f.backends {
		b.queueDepth.Store(10)
	}
	var out struct {
		Error string `json:"error"`
	}
	code, hdr := doJSON(t, f.Handler(), http.MethodPost, "/v1/predict",
		map[string]any{"model": "test", "intensities": rampN(24, 0)}, &out)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated fleet: status %d (%s), want 429", code, out.Error)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if f.mxShed.Value() == 0 {
		t.Fatal("shed counter not incremented")
	}

	// One backend recovering reopens admission.
	f.backends[0].queueDepth.Store(0)
	var ok predictOut
	if code, _ := doJSON(t, f.Handler(), http.MethodPost, "/v1/predict",
		map[string]any{"model": "test", "intensities": rampN(24, 0)}, &ok); code != http.StatusOK {
		t.Fatalf("recovered fleet: status %d (%s)", code, ok.Error)
	}
}

// TestFrontBinaryClient: an SPB1 client gets SPB1 end to end through the
// front, with fractions identical to the JSON path.
func TestFrontBinaryClient(t *testing.T) {
	f, _ := newFleet(t, 3, nil)
	x := rampN(173, 2)

	var viaJSON predictOut
	if code, _ := doJSON(t, f.Handler(), http.MethodPost, "/v1/predict",
		map[string]any{"model": "test", "intensities": x}, &viaJSON); code != http.StatusOK {
		t.Fatalf("JSON predict: %d (%s)", code, viaJSON.Error)
	}

	frame, err := serve.AppendPredictRequestBinary(nil, &serve.PredictRequest{Model: "test", Intensities: x})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(frame))
	req.Header.Set("Content-Type", serve.BinaryContentType)
	req.Header.Set("Accept", serve.BinaryContentType)
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("binary predict: %d %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != serve.BinaryContentType {
		t.Fatalf("binary client got Content-Type %q", ct)
	}
	model, y, err := serve.ParsePredictResponseBinary(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if model != "test" || !reflect.DeepEqual(y, viaJSON.Fractions) {
		t.Fatalf("binary path: %q %v, JSON path: %v", model, y, viaJSON.Fractions)
	}
}

// TestFrontTranscoding: every client/hop codec combination returns the
// same fractions — the front transcodes whenever the codecs differ.
func TestFrontTranscoding(t *testing.T) {
	x := rampN(96, 3)
	var want []float64
	for _, jsonHops := range []bool{false, true} {
		name := map[bool]string{false: "binary hops", true: "json hops"}[jsonHops]
		t.Run(name, func(t *testing.T) {
			f, _ := newFleet(t, 2, func(c *Config) { c.JSONHops = jsonHops })
			// JSON client.
			var out predictOut
			if code, _ := doJSON(t, f.Handler(), http.MethodPost, "/v1/predict",
				map[string]any{"model": "test", "intensities": x}, &out); code != http.StatusOK {
				t.Fatalf("JSON client: %d (%s)", code, out.Error)
			}
			if want == nil {
				want = out.Fractions
			}
			if !reflect.DeepEqual(out.Fractions, want) {
				t.Fatalf("JSON client fractions drifted: %v != %v", out.Fractions, want)
			}
			// Binary client.
			frame, err := serve.AppendPredictRequestBinary(nil, &serve.PredictRequest{Model: "test", Intensities: x})
			if err != nil {
				t.Fatal(err)
			}
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(frame))
			req.Header.Set("Content-Type", serve.BinaryContentType)
			req.Header.Set("Accept", serve.BinaryContentType)
			rec := httptest.NewRecorder()
			f.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("binary client: %d %s", rec.Code, rec.Body.String())
			}
			_, y, err := serve.ParsePredictResponseBinary(rec.Body.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(y, want) {
				t.Fatalf("binary client fractions drifted: %v != %v", y, want)
			}
		})
	}
}

// TestFrontErrors: client mistakes come back as 4xx JSON envelopes, with
// backend errors relayed rather than wrapped into 5xx.
func TestFrontErrors(t *testing.T) {
	f, _ := newFleet(t, 2, nil)
	h := f.Handler()
	cases := []struct {
		name string
		do   func() (int, string)
		want int
	}{
		{"bad JSON", func() (int, string) {
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader([]byte("{nope")))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			return rec.Code, rec.Body.String()
		}, http.StatusBadRequest},
		{"bad frame", func() (int, string) {
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader([]byte("XXXX")))
			req.Header.Set("Content-Type", serve.BinaryContentType)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			return rec.Code, rec.Body.String()
		}, http.StatusBadRequest},
		{"unknown model relayed", func() (int, string) {
			var out struct {
				Error string `json:"error"`
			}
			code, _ := doJSON(t, h, http.MethodPost, "/v1/predict",
				map[string]any{"model": "no-such", "intensities": rampN(8, 0)}, &out)
			return code, out.Error
		}, http.StatusNotFound},
		{"unknown session relayed", func() (int, string) {
			var out struct {
				Error string `json:"error"`
			}
			code, _ := doJSON(t, h, http.MethodPost, "/v1/monitor/nope/step",
				map[string]any{"intensities": rampN(24, 0)}, &out)
			return code, out.Error
		}, http.StatusNotFound},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, body := c.do()
			if code != c.want {
				t.Fatalf("status %d (%s), want %d", code, body, c.want)
			}
			var env map[string]any
			if err := json.Unmarshal([]byte(body), &env); err == nil {
				if _, ok := env["error"]; !ok && body != "" {
					t.Fatalf("error response without envelope: %q", body)
				}
			}
		})
	}
}

// TestFrontModelsAndClose: /v1/models proxies the shared model directory;
// a closed front refuses new work with 503.
func TestFrontModelsAndClose(t *testing.T) {
	f, _ := newFleet(t, 2, nil)
	var models struct {
		Models []map[string]any `json:"models"`
	}
	if code, _ := doJSON(t, f.Handler(), http.MethodGet, "/v1/models", nil, &models); code != http.StatusOK {
		t.Fatalf("models: %d", code)
	}
	if len(models.Models) != 1 {
		t.Fatalf("models: %+v", models)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.Close(ctx); err != nil {
		t.Fatal(err)
	}
	code, _ := doJSON(t, f.Handler(), http.MethodGet, "/v1/models", nil, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("request after Close: %d, want 503", code)
	}
}
