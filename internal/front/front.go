package front

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	rand "math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"specml/internal/obs"
	"specml/internal/serve"
)

// BackendHeader is set on every proxied response to the backend that
// answered it — how tests (and operators) observe routing decisions.
const BackendHeader = "X-Specml-Backend"

// Config parameterizes a Front.
type Config struct {
	// Backends are the specserve base URLs (e.g. http://127.0.0.1:9081).
	// At least one is required.
	Backends []string
	// VNodes is the virtual-node count per backend on the consistent-hash
	// ring (default 64).
	VNodes int
	// Retries caps how many additional ring replicas a failed hop tries
	// (default: all remaining backends).
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// attempt (default 25ms).
	RetryBackoff time.Duration
	// HealthInterval is the probe period (default 1s); HealthTimeout
	// bounds one probe (default 2s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// FailThreshold is how many consecutive failures (probes or proxied
	// hops) take a backend out of rotation (default 2).
	FailThreshold int
	// ShedQueueDepth is the per-backend load limit for admission control:
	// when every candidate backend's queued + in-flight work reaches it,
	// the request is refused with 429 and a Retry-After hint (default 512,
	// negative disables shedding).
	ShedQueueDepth int
	// RetryAfter is the hint on 429 responses (default 1s).
	RetryAfter time.Duration
	// RequestTimeout bounds one backend hop (default 15s).
	RequestTimeout time.Duration
	// MaxBodyBytes caps client request bodies (default 32 MiB).
	MaxBodyBytes int64
	// JSONHops forwards to backends in JSON instead of the SPB1 binary
	// wire format. Binary hops are the default: backend decode of a dense
	// spectrum is ~100x cheaper (see BENCH_serve.json).
	JSONHops bool
	// SessionPrefix namespaces the monitor-session IDs this front mints.
	// Defaults to a random per-process prefix so two fronts (or a restart)
	// cannot collide.
	SessionPrefix string
	// Metrics receives the front's obs instruments, served at /metrics.
	// Nil creates a private registry.
	Metrics *obs.Registry
	// Logger receives structured events (backend health transitions,
	// retries exhausted). Nil discards them.
	Logger *slog.Logger
	// Transport overrides the backend HTTP transport (tests).
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Retries <= 0 {
		c.Retries = len(c.Backends) - 1
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.ShedQueueDepth == 0 {
		c.ShedQueueDepth = 512
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.SessionPrefix == "" {
		c.SessionPrefix = fmt.Sprintf("fs-%08x", rand.Uint32())
	}
	return c
}

// Front is the fleet proxy. Create with New, serve Handler, Close to stop
// the health prober.
type Front struct {
	cfg      Config
	ring     *Ring
	backends []*backend
	byName   map[string]*backend
	client   *http.Client
	logger   *slog.Logger
	mux      *http.ServeMux

	closed     atomic.Bool
	stop       chan struct{}
	healthDone chan struct{}
	sessSeq    atomic.Int64

	mxRetries, mxShed *obs.Counter
}

// New builds a Front over the configured backends and synchronously probes
// each once, so the first request already sees real health state.
func New(cfg Config) (*Front, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("front: at least one backend is required")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	f := &Front{
		cfg:        cfg,
		ring:       NewRing(cfg.VNodes),
		byName:     make(map[string]*backend),
		client:     &http.Client{Transport: transport},
		logger:     cfg.Logger,
		mux:        http.NewServeMux(),
		stop:       make(chan struct{}),
		healthDone: make(chan struct{}),
		mxRetries: cfg.Metrics.Counter("specfront_retries_total",
			"Hops retried against another ring replica."),
		mxShed: cfg.Metrics.Counter("specfront_shed_total",
			"Requests refused with 429 because every candidate backend was saturated."),
	}
	names := make([]string, 0, len(cfg.Backends))
	for _, raw := range cfg.Backends {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("front: backend %q is not an absolute URL", raw)
		}
		if u.Scheme != "http" && u.Scheme != "https" {
			return nil, fmt.Errorf("front: backend %q: unsupported scheme %q", raw, u.Scheme)
		}
		name := u.Host
		if _, dup := f.byName[name]; dup {
			return nil, fmt.Errorf("front: duplicate backend %q", name)
		}
		b := &backend{
			name: name,
			base: strings.TrimSuffix(u.String(), "/"),
			reqs: cfg.Metrics.Counter("specfront_backend_requests_total",
				"Hops proxied per backend.", obs.L("backend", name)),
			errs: cfg.Metrics.Counter("specfront_backend_errors_total",
				"Failed hops per backend (transport errors and 5xx).", obs.L("backend", name)),
			hop: cfg.Metrics.Histogram("specfront_hop_seconds",
				"Backend hop latency.", obs.LatencyBuckets, obs.L("backend", name)),
		}
		b.healthy.Store(true) // optimistic until the first probe says otherwise
		f.backends = append(f.backends, b)
		f.byName[name] = b
		names = append(names, name)
		cfg.Metrics.GaugeFunc("specfront_backend_healthy",
			"1 when the backend passes health checks.", func() float64 {
				if b.healthy.Load() {
					return 1
				}
				return 0
			}, obs.L("backend", name))
		cfg.Metrics.GaugeFunc("specfront_backend_queue_depth",
			"Queued requests last scraped from the backend's /metrics.",
			func() float64 { return float64(b.queueDepth.Load()) }, obs.L("backend", name))
		cfg.Metrics.GaugeFunc("specfront_backend_inflight",
			"Requests this front currently has in flight to the backend.",
			func() float64 { return float64(b.inflight.Load()) }, obs.L("backend", name))
	}
	f.ring.Set(names)
	for _, b := range f.backends {
		f.probe(context.Background(), b)
	}
	f.routes()
	go f.healthLoop()
	return f, nil
}

// Metrics exposes the obs registry backing GET /metrics.
func (f *Front) Metrics() *obs.Registry { return f.cfg.Metrics }

// Ring exposes the routing ring (tests, fleet introspection).
func (f *Front) Ring() *Ring { return f.ring }

// Handler returns the root HTTP handler.
func (f *Front) Handler() http.Handler { return f }

// ServeHTTP rejects traffic during shutdown and dispatches to the mux.
func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("front: shutting down"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, f.cfg.MaxBodyBytes)
	f.mux.ServeHTTP(w, r)
}

// Close stops the health prober. In-flight proxied requests complete under
// the HTTP server's own drain.
func (f *Front) Close(ctx context.Context) error {
	if f.closed.CompareAndSwap(false, true) {
		close(f.stop)
	}
	select {
	case <-f.healthDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (f *Front) routes() {
	f.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	f.mux.Handle("GET /metrics", f.cfg.Metrics.Handler())
	f.mux.HandleFunc("GET /v1/fleet", f.instrument("fleet", f.handleFleet))
	f.mux.HandleFunc("POST /v1/predict", f.instrument("predict", f.handlePredict))
	f.mux.HandleFunc("GET /v1/models", f.instrument("models", f.handleModels))
	f.mux.HandleFunc("POST /v1/models/reload", f.instrument("reload", f.handleReload))
	f.mux.HandleFunc("PUT /v1/models/{name}", f.instrument("models.publish", f.handleModelPublish))
	f.mux.HandleFunc("POST /v1/monitor", f.instrument("monitor.create", f.handleMonitorCreate))
	f.mux.HandleFunc("GET /v1/monitor", f.instrument("monitor.list", f.handleMonitorList))
	f.mux.HandleFunc("GET /v1/monitor/{id}", f.instrument("monitor.proxy", f.handleMonitorProxy))
	f.mux.HandleFunc("POST /v1/monitor/{id}/step", f.instrument("monitor.step", f.handleMonitorStep))
	f.mux.HandleFunc("DELETE /v1/monitor/{id}", f.instrument("monitor.proxy", f.handleMonitorProxy))
}

// instrument counts requests and server-attributable errors per endpoint.
func (f *Front) instrument(label string, h func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	reqs := f.cfg.Metrics.Counter("specfront_http_requests_total",
		"HTTP requests handled per endpoint.", obs.L("endpoint", label))
	errs := f.cfg.Metrics.Counter("specfront_http_errors_total",
		"HTTP requests answered with an error status.", obs.L("endpoint", label))
	return func(w http.ResponseWriter, r *http.Request) {
		status := h(w, r)
		reqs.Inc()
		if status >= 400 {
			errs.Inc()
		}
	}
}

// hopResult is one backend response: status, content type and body, plus
// which backend produced it.
type hopResult struct {
	status  int
	ct      string
	body    []byte
	backend *backend
}

// forward performs one hop to one backend.
func (f *Front) forward(ctx context.Context, b *backend, method, path, contentType, accept string, body []byte) (*hopResult, error) {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.base+path, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	b.inflight.Add(1)
	b.reqs.Inc()
	t0 := time.Now()
	resp, err := f.client.Do(req)
	b.hop.ObserveSince(t0)
	b.inflight.Add(-1)
	if err != nil {
		b.errs.Inc()
		b.markFailed(int64(f.cfg.FailThreshold))
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		b.errs.Inc()
		b.markFailed(int64(f.cfg.FailThreshold))
		return nil, err
	}
	b.markAlive()
	if resp.StatusCode >= 500 {
		b.errs.Inc()
	}
	return &hopResult{
		status:  resp.StatusCode,
		ct:      resp.Header.Get("Content-Type"),
		body:    respBody,
		backend: b,
	}, nil
}

// candidates orders key's ring replicas for attempts: healthy backends in
// ring order first, unhealthy ones after them as a last resort (a fleet
// with zero healthy backends still tries, so a wrongly-marked backend can
// answer and heal).
func (f *Front) candidates(key string) []*backend {
	names := f.ring.Replicas(key, len(f.backends))
	ordered := make([]*backend, 0, len(names))
	for _, n := range names {
		if b := f.byName[n]; b != nil && b.healthy.Load() {
			ordered = append(ordered, b)
		}
	}
	for _, n := range names {
		if b := f.byName[n]; b != nil && !b.healthy.Load() {
			ordered = append(ordered, b)
		}
	}
	return ordered
}

// retryableStatus marks backend answers worth trying on another replica:
// the gateway-ish statuses a draining or overloaded specserve emits.
func retryableStatus(status int) bool {
	return status == http.StatusBadGateway || status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

// proxyWithFailover routes one request by its ring key with
// retry-with-backoff across replicas and admission control. The error
// return carries the HTTP status to surface when no hop produced a
// response at all.
func (f *Front) proxyWithFailover(ctx context.Context, key, method, path, contentType, accept string, body []byte) (*hopResult, int, error) {
	ordered := f.candidates(key)
	if len(ordered) == 0 {
		return nil, http.StatusServiceUnavailable, errors.New("front: no backends configured")
	}
	var last *hopResult
	var lastErr error
	attempts, shedSkips := 0, 0
	for _, b := range ordered {
		if attempts > f.cfg.Retries {
			break
		}
		if b.saturated(f.cfg.ShedQueueDepth) {
			shedSkips++
			continue
		}
		if attempts > 0 {
			f.mxRetries.Inc()
			backoff := f.cfg.RetryBackoff << (attempts - 1)
			select {
			case <-ctx.Done():
				return nil, http.StatusServiceUnavailable, ctx.Err()
			case <-time.After(backoff):
			}
		}
		attempts++
		res, err := f.forward(ctx, b, method, path, contentType, accept, body)
		if err != nil {
			lastErr = err
			f.logger.Warn("backend hop failed", "backend", b.name, "path", path, "err", err)
			continue
		}
		if retryableStatus(res.status) {
			last = res
			continue
		}
		return res, 0, nil
	}
	if shedSkips == len(ordered) {
		// Every candidate was over the shed threshold: the fleet is
		// saturated, tell the client when to come back.
		f.mxShed.Inc()
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("front: all %d backends saturated (queue depth >= %d)", shedSkips, f.cfg.ShedQueueDepth)
	}
	if last != nil {
		// A backend answered with a retryable status and no replica did
		// better; relay its answer rather than inventing one.
		return last, 0, nil
	}
	if lastErr != nil {
		return nil, http.StatusBadGateway, fmt.Errorf("front: all replicas failed for %s: %w", path, lastErr)
	}
	return nil, http.StatusTooManyRequests,
		fmt.Errorf("front: admission refused (saturated replicas, retry budget %d exhausted)", f.cfg.Retries)
}

// relay writes a hop result to the client unchanged (plus the backend
// attribution header).
func relay(w http.ResponseWriter, res *hopResult) int {
	if res.ct != "" {
		w.Header().Set("Content-Type", res.ct)
	}
	w.Header().Set(BackendHeader, res.backend.name)
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
	return res.status
}

// isBinary reports whether a media type (possibly with parameters) is the
// SPB1 binary content type.
func isBinary(mediaType string) bool {
	if i := strings.IndexByte(mediaType, ';'); i >= 0 {
		mediaType = mediaType[:i]
	}
	return strings.EqualFold(strings.TrimSpace(mediaType), serve.BinaryContentType)
}

func (f *Front) handlePredict(w http.ResponseWriter, r *http.Request) int {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err)
	}
	clientBinary := isBinary(r.Header.Get("Content-Type"))
	var model string
	var hopBody []byte
	var hopCT string
	switch {
	case clientBinary && !f.cfg.JSONHops:
		// Binary in, binary hop: validate just enough to route; the frame
		// passes through untouched.
		if model, err = serve.BinaryRequestModel(body); err != nil {
			return writeError(w, http.StatusBadRequest, err)
		}
		hopBody, hopCT = body, serve.BinaryContentType
	case clientBinary:
		req, err := serve.ParsePredictRequestBinary(body)
		if err != nil {
			return writeError(w, http.StatusBadRequest, err)
		}
		model = req.Model
		if hopBody, err = json.Marshal(&req); err != nil {
			return writeError(w, http.StatusInternalServerError, err)
		}
		hopCT = "application/json"
	default:
		var req serve.PredictRequest
		if err := strictUnmarshal(body, &req); err != nil {
			return writeError(w, http.StatusBadRequest, err)
		}
		model = req.Model
		if f.cfg.JSONHops {
			hopBody, hopCT = body, "application/json"
		} else {
			if hopBody, err = serve.AppendPredictRequestBinary(nil, &req); err != nil {
				return writeError(w, http.StatusBadRequest, err)
			}
			hopCT = serve.BinaryContentType
		}
	}
	hopAccept := serve.BinaryContentType
	if f.cfg.JSONHops {
		hopAccept = "application/json"
	}
	res, status, err := f.proxyWithFailover(r.Context(), model, http.MethodPost, "/v1/predict", hopCT, hopAccept, hopBody)
	if err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(int((f.cfg.RetryAfter+time.Second-1)/time.Second)))
		}
		return writeError(w, status, err)
	}
	if res.status != http.StatusOK {
		return relay(w, res)
	}
	return f.relayFractions(w, res, wantsBinary(r))
}

// wantsBinary reports whether the client asked for an SPB1 response.
func wantsBinary(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), serve.BinaryContentType)
}

// relayFractions returns a successful predict hop in the codec the client
// asked for, transcoding only when the backend's codec differs.
func (f *Front) relayFractions(w http.ResponseWriter, res *hopResult, clientWantsBinary bool) int {
	respBinary := isBinary(res.ct)
	if respBinary == clientWantsBinary {
		return relay(w, res)
	}
	var model string
	var fractions []float64
	if respBinary {
		var err error
		if model, fractions, err = serve.ParsePredictResponseBinary(res.body); err != nil {
			return writeError(w, http.StatusBadGateway, fmt.Errorf("front: backend %s sent a bad frame: %w", res.backend.name, err))
		}
	} else {
		var jr struct {
			Model     string    `json:"model"`
			Fractions []float64 `json:"fractions"`
		}
		if err := json.Unmarshal(res.body, &jr); err != nil {
			return writeError(w, http.StatusBadGateway, fmt.Errorf("front: backend %s sent bad JSON: %w", res.backend.name, err))
		}
		model, fractions = jr.Model, jr.Fractions
	}
	w.Header().Set(BackendHeader, res.backend.name)
	if clientWantsBinary {
		frame, err := serve.AppendPredictResponseBinary(nil, model, fractions)
		if err != nil {
			return writeError(w, http.StatusInternalServerError, err)
		}
		w.Header().Set("Content-Type", serve.BinaryContentType)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(frame)
		return http.StatusOK
	}
	return writeJSON(w, http.StatusOK, map[string]any{"model": model, "fractions": fractions})
}

func (f *Front) handleMonitorCreate(w http.ResponseWriter, r *http.Request) int {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err)
	}
	var fields map[string]json.RawMessage
	if err := strictUnmarshal(body, &fields); err != nil {
		return writeError(w, http.StatusBadRequest, fmt.Errorf("front: monitor create body: %w", err))
	}
	if fields == nil {
		fields = make(map[string]json.RawMessage)
	}
	// The front mints the session ID (unless the client chose one), which
	// is what lets it consistent-hash the session onto a backend and route
	// every later step of the session's life to the same place.
	var id string
	if raw, ok := fields["session"]; ok {
		if err := json.Unmarshal(raw, &id); err != nil {
			return writeError(w, http.StatusBadRequest, fmt.Errorf("front: session field: %w", err))
		}
	}
	if id == "" {
		id = fmt.Sprintf("%s-%06d", f.cfg.SessionPrefix, f.sessSeq.Add(1))
		idJSON, _ := json.Marshal(id)
		fields["session"] = idJSON
		if body, err = json.Marshal(fields); err != nil {
			return writeError(w, http.StatusInternalServerError, err)
		}
	}
	res, status, err := f.proxyWithFailover(r.Context(), id, http.MethodPost, "/v1/monitor", "application/json", "", body)
	if err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(int((f.cfg.RetryAfter+time.Second-1)/time.Second)))
		}
		return writeError(w, status, err)
	}
	return relay(w, res)
}

// handleMonitorStep routes a session step by the session's ring key. The
// request spectrum is re-encoded onto the binary hop codec when the client
// sent JSON; the response (alarms, smoothed state) is JSON end to end.
func (f *Front) handleMonitorStep(w http.ResponseWriter, r *http.Request) int {
	id := r.PathValue("id")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err)
	}
	hopBody, hopCT := body, r.Header.Get("Content-Type")
	if !isBinary(hopCT) {
		hopCT = "application/json"
		if !f.cfg.JSONHops {
			var req serve.PredictRequest
			if err := strictUnmarshal(body, &req); err != nil {
				return writeError(w, http.StatusBadRequest, err)
			}
			if hopBody, err = serve.AppendPredictRequestBinary(nil, &req); err != nil {
				return writeError(w, http.StatusBadRequest, err)
			}
			hopCT = serve.BinaryContentType
		}
	}
	res, status, err := f.proxyWithFailover(r.Context(), id, http.MethodPost, "/v1/monitor/"+url.PathEscape(id)+"/step", hopCT, "", hopBody)
	if err != nil {
		return writeError(w, status, err)
	}
	return relay(w, res)
}

// handleMonitorProxy routes status and close requests by session key.
func (f *Front) handleMonitorProxy(w http.ResponseWriter, r *http.Request) int {
	id := r.PathValue("id")
	res, status, err := f.proxyWithFailover(r.Context(), id, r.Method, "/v1/monitor/"+url.PathEscape(id), "", "", nil)
	if err != nil {
		return writeError(w, status, err)
	}
	return relay(w, res)
}

// handleModels forwards the model listing to any healthy backend — the
// fleet serves one shared model directory, so every backend's answer is
// equivalent.
func (f *Front) handleModels(w http.ResponseWriter, r *http.Request) int {
	res, status, err := f.proxyWithFailover(r.Context(), "models", http.MethodGet, "/v1/models", "", "", nil)
	if err != nil {
		return writeError(w, status, err)
	}
	return relay(w, res)
}

// handleReload broadcasts a hot reload to every backend, so the fleet
// converges on the new weights in one client call. Per-backend outcomes
// are reported individually; the status is 200 only if all succeeded.
func (f *Front) handleReload(w http.ResponseWriter, r *http.Request) int {
	results := make(map[string]any, len(f.backends))
	status := http.StatusOK
	for _, b := range f.backends {
		res, err := f.forward(r.Context(), b, http.MethodPost, "/v1/models/reload", "application/json", "", []byte("{}"))
		if err != nil {
			results[b.name] = map[string]string{"error": err.Error()}
			status = http.StatusBadGateway
			continue
		}
		var payload any
		if err := json.Unmarshal(res.body, &payload); err != nil {
			payload = string(res.body)
		}
		results[b.name] = payload
		if res.status != http.StatusOK {
			status = http.StatusBadGateway
		}
	}
	return writeJSON(w, status, map[string]any{"backends": results})
}

// handleModelPublish broadcasts new model weights to every backend, so a
// recalibration lands fleet-wide in one client call even when backends do
// not share a model directory. Like the reload broadcast, per-backend
// outcomes are reported individually and the status is 200 only if all
// succeeded; each backend persists atomically, so a partial broadcast
// leaves every backend either on the old weights or the new ones.
func (f *Front) handleModelPublish(w http.ResponseWriter, r *http.Request) int {
	name := r.PathValue("name")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err)
	}
	path := "/v1/models/" + url.PathEscape(name)
	results := make(map[string]any, len(f.backends))
	status := http.StatusOK
	for _, b := range f.backends {
		res, err := f.forward(r.Context(), b, http.MethodPut, path, "application/json", "", body)
		if err != nil {
			results[b.name] = map[string]string{"error": err.Error()}
			status = http.StatusBadGateway
			continue
		}
		var payload any
		if err := json.Unmarshal(res.body, &payload); err != nil {
			payload = string(res.body)
		}
		results[b.name] = payload
		if res.status != http.StatusOK {
			// Relay a uniform client error (bad name, bad weights) as-is;
			// disagreeing backends or 5xx are a gateway problem.
			if res.status >= 400 && res.status < 500 &&
				(status == http.StatusOK || status == res.status) {
				status = res.status
			} else {
				status = http.StatusBadGateway
			}
		}
	}
	return writeJSON(w, status, map[string]any{"model": name, "backends": results})
}

// handleMonitorList merges the live-session listings of every healthy
// backend.
func (f *Front) handleMonitorList(w http.ResponseWriter, r *http.Request) int {
	var sessions []string
	for _, b := range f.backends {
		if !b.healthy.Load() {
			continue
		}
		res, err := f.forward(r.Context(), b, http.MethodGet, "/v1/monitor", "", "", nil)
		if err != nil || res.status != http.StatusOK {
			continue
		}
		var payload struct {
			Sessions []string `json:"sessions"`
		}
		if err := json.Unmarshal(res.body, &payload); err == nil {
			sessions = append(sessions, payload.Sessions...)
		}
	}
	if sessions == nil {
		sessions = []string{}
	}
	return writeJSON(w, http.StatusOK, map[string]any{"sessions": sessions})
}

// handleFleet reports per-backend routing state: the operator's (and the
// e2e harness') view of health, load and shedding.
func (f *Front) handleFleet(w http.ResponseWriter, r *http.Request) int {
	type backendInfo struct {
		Name       string `json:"name"`
		URL        string `json:"url"`
		Healthy    bool   `json:"healthy"`
		QueueDepth int64  `json:"queueDepth"`
		Inflight   int64  `json:"inflight"`
	}
	infos := make([]backendInfo, len(f.backends))
	healthy := 0
	for i, b := range f.backends {
		infos[i] = backendInfo{
			Name:       b.name,
			URL:        b.base,
			Healthy:    b.healthy.Load(),
			QueueDepth: b.queueDepth.Load(),
			Inflight:   b.inflight.Load(),
		}
		if infos[i].Healthy {
			healthy++
		}
	}
	return writeJSON(w, http.StatusOK, map[string]any{
		"backends":    infos,
		"healthy":     healthy,
		"binary_hops": !f.cfg.JSONHops,
	})
}

// strictUnmarshal mirrors the backend's strict JSON decoding (unknown
// fields and trailing garbage are client errors), so transcoding at the
// front never silently drops request fields the backend would have
// rejected.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("front: decoding request: %w", err)
	}
	if dec.More() {
		return errors.New("front: trailing data after JSON body")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
	return status
}

func writeError(w http.ResponseWriter, status int, err error) int {
	return writeJSON(w, status, map[string]string{"error": err.Error()})
}
