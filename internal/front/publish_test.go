package front

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"specml/internal/serve"
)

// newDirFleet boots n specserve backends that each load the same model
// name from their own model directory — the publish broadcast must land
// the new weights in every one of them.
func newDirFleet(t *testing.T, n int) (*Front, []*fleetBackend) {
	t.Helper()
	backends := make([]*fleetBackend, n)
	urls := make([]string, n)
	for i := range backends {
		dir := t.TempDir()
		f, err := os.Create(filepath.Join(dir, "pub.json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := testModel(t, 1, 24, 3).Save(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		srv, err := serve.New(serve.Config{ModelDir: dir, RequestTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		backends[i] = &fleetBackend{srv: srv, http: hs, name: hs.Listener.Addr().String()}
		urls[i] = hs.URL
		t.Cleanup(func() {
			hs.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Close(ctx)
		})
	}
	fr, err := New(Config{
		Backends:       urls,
		HealthInterval: 50 * time.Millisecond,
		RetryBackoff:   time.Millisecond,
		SessionPrefix:  "fs-pub",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = fr.Close(ctx)
	})
	return fr, backends
}

func TestFrontPublishBroadcast(t *testing.T) {
	fr, backends := newDirFleet(t, 3)
	var buf bytes.Buffer
	if err := testModel(t, 9, 48, 3).Save(&buf); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPut, "/v1/models/pub", bytes.NewReader(buf.Bytes()))
	w := httptest.NewRecorder()
	fr.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("broadcast publish: %d %s", w.Code, w.Body.String())
	}
	var resp struct {
		Model    string                     `json:"model"`
		Backends map[string]json.RawMessage `json:"backends"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Model != "pub" || len(resp.Backends) != 3 {
		t.Fatalf("unexpected broadcast response: %s", w.Body.String())
	}
	for _, b := range backends {
		infos := b.srv.Registry().List()
		if len(infos) != 1 || infos[0].InputLen != 48 {
			t.Fatalf("backend %s did not swap to the published width: %+v", b.name, infos)
		}
	}
}

func TestFrontPublishRelaysClientError(t *testing.T) {
	fr, _ := newDirFleet(t, 2)
	req := httptest.NewRequest(http.MethodPut, "/v1/models/pub", bytes.NewReader([]byte("{broken")))
	w := httptest.NewRecorder()
	fr.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad weights broadcast: %d, want 400 (%s)", w.Code, w.Body.String())
	}
}
