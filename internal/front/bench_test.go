package front

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"specml/internal/serve"
)

// BenchmarkFleetPredict measures a full fleet hop: client -> front ->
// routed backend -> back, over real loopback HTTP with 1 front and 3
// specserve backends, for a dense 4096-point spectrum. The codec
// sub-benchmarks compare the SPB1 binary hop (default) against JSON hops —
// the end-to-end view of the decode/encode numbers in BenchmarkWireDecode4096.
func BenchmarkFleetPredict(b *testing.B) {
	for _, c := range []struct {
		name     string
		jsonHops bool
	}{
		{"hops=binary", false},
		{"hops=json", true},
	} {
		b.Run(c.name, func(b *testing.B) {
			f, _ := newFleet(b, 3, func(cfg *Config) { cfg.JSONHops = c.jsonHops })
			fs := httptest.NewServer(f.Handler())
			defer fs.Close()

			x := rampN(4096, 3)
			frame, err := serve.AppendPredictRequestBinary(nil, &serve.PredictRequest{Model: "test", Intensities: x})
			if err != nil {
				b.Fatal(err)
			}
			client := fs.Client()

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req, err := http.NewRequest(http.MethodPost, fs.URL+"/v1/predict", bytes.NewReader(frame))
				if err != nil {
					b.Fatal(err)
				}
				req.Header.Set("Content-Type", serve.BinaryContentType)
				req.Header.Set("Accept", serve.BinaryContentType)
				resp, err := client.Do(req)
				if err != nil {
					b.Fatal(err)
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d: %s", resp.StatusCode, body)
				}
			}
		})
	}
}
