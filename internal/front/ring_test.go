package front

import (
	"fmt"
	"reflect"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("session-%05d", i)
	}
	return keys
}

// TestRingDistribution: with virtual nodes, key load across backends stays
// within a constant factor of uniform — no backend starves and none takes
// the bulk of the keyspace.
func TestRingDistribution(t *testing.T) {
	cases := []struct {
		name     string
		backends []string
		vnodes   int
		keys     int
		// Each backend's share must land in [min, max] of uniform share.
		minFrac, maxFrac float64
	}{
		{"3 backends default vnodes", []string{"b1:9081", "b2:9082", "b3:9083"}, 64, 30000, 0.5, 1.7},
		{"5 backends", []string{"a:1", "b:2", "c:3", "d:4", "e:5"}, 64, 30000, 0.45, 1.8},
		{"2 backends few vnodes", []string{"x:1", "y:2"}, 16, 20000, 0.4, 1.6},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := NewRing(c.vnodes)
			r.Set(c.backends)
			counts := make(map[string]int, len(c.backends))
			for _, k := range ringKeys(c.keys) {
				counts[r.Lookup(k)]++
			}
			uniform := float64(c.keys) / float64(len(c.backends))
			for _, b := range c.backends {
				frac := float64(counts[b]) / uniform
				if frac < c.minFrac || frac > c.maxFrac {
					t.Errorf("backend %s owns %.2fx the uniform share (want [%.2f, %.2f]), counts=%v",
						b, frac, c.minFrac, c.maxFrac, counts)
				}
			}
		})
	}
}

// TestRingMinimalReshuffle pins the property consistent hashing exists
// for: adding a backend moves roughly 1/(N+1) of the keys, every moved key
// moves TO the new backend, and removing a backend only reassigns the keys
// it owned.
func TestRingMinimalReshuffle(t *testing.T) {
	base := []string{"b1:9081", "b2:9082", "b3:9083"}
	keys := ringKeys(20000)

	r := NewRing(64)
	r.Set(base)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}

	t.Run("join", func(t *testing.T) {
		r := NewRing(64)
		r.Set(append(append([]string(nil), base...), "b4:9084"))
		moved := 0
		for _, k := range keys {
			after := r.Lookup(k)
			if after == before[k] {
				continue
			}
			moved++
			if after != "b4:9084" {
				t.Fatalf("key %s moved %s -> %s, not to the joining backend", k, before[k], after)
			}
		}
		frac := float64(moved) / float64(len(keys))
		// Ideal is 1/4; vnode granularity wobbles it, a full reshuffle
		// (as naive mod-N hashing would do: ~3/4 moved) cannot pass.
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("join moved %.1f%% of keys, want roughly 25%%", 100*frac)
		}
	})

	t.Run("leave", func(t *testing.T) {
		r := NewRing(64)
		r.Set([]string{"b1:9081", "b3:9083"}) // b2 leaves
		movedFromSurvivor := 0
		for _, k := range keys {
			after := r.Lookup(k)
			if before[k] == "b2:9082" {
				if after == "b2:9082" {
					t.Fatalf("key %s still routes to the departed backend", k)
				}
				continue
			}
			if after != before[k] {
				movedFromSurvivor++
			}
		}
		if movedFromSurvivor != 0 {
			t.Fatalf("%d keys owned by surviving backends were reshuffled; leave must only reassign the departed backend's keys", movedFromSurvivor)
		}
	})
}

// TestRingOrderIndependence: the mapping is a function of the backend SET —
// two fronts configured with the same fleet in different flag order route
// identically.
func TestRingOrderIndependence(t *testing.T) {
	a := NewRing(64)
	a.Set([]string{"b1:1", "b2:2", "b3:3"})
	b := NewRing(64)
	b.Set([]string{"b3:3", "b1:1", "b2:2"})
	for _, k := range ringKeys(2000) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("key %s: %s vs %s under permuted backend order", k, a.Lookup(k), b.Lookup(k))
		}
	}
	if !reflect.DeepEqual(a.Backends(), b.Backends()) {
		t.Fatalf("Backends() differ: %v vs %v", a.Backends(), b.Backends())
	}
}

// TestRingStickiness: lookups are deterministic — the whole point of
// routing monitor sessions by ID is that every step of a session lands on
// the backend that holds its state.
func TestRingStickiness(t *testing.T) {
	r := NewRing(64)
	r.Set([]string{"b1:9081", "b2:9082", "b3:9083"})
	for _, k := range []string{"fs-00c0ffee-000001", "fs-00c0ffee-000002", "mon-000007"} {
		owner := r.Lookup(k)
		for i := 0; i < 100; i++ {
			if got := r.Lookup(k); got != owner {
				t.Fatalf("session %s flapped %s -> %s on lookup %d", k, owner, got, i)
			}
		}
		// Re-Set with identical contents must not move the session either.
		r.Set([]string{"b3:9083", "b2:9082", "b1:9081"})
		if got := r.Lookup(k); got != owner {
			t.Fatalf("session %s moved to %s after an identical Set", k, got)
		}
	}
}

func TestRingReplicas(t *testing.T) {
	backends := []string{"b1:1", "b2:2", "b3:3"}
	r := NewRing(64)
	r.Set(backends)
	cases := []struct {
		name string
		key  string
		n    int
		want int
	}{
		{"single", "model-a", 1, 1},
		{"two distinct", "model-a", 2, 2},
		{"all", "model-a", 3, 3},
		{"over-ask clamps", "model-a", 99, 3},
		{"zero", "model-a", 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			reps := r.Replicas(c.key, c.n)
			if len(reps) != c.want {
				t.Fatalf("Replicas(%q, %d) = %v, want %d backends", c.key, c.n, reps, c.want)
			}
			seen := make(map[string]bool, len(reps))
			for _, b := range reps {
				if seen[b] {
					t.Fatalf("Replicas returned %s twice: %v", b, reps)
				}
				seen[b] = true
			}
			if c.want > 0 && reps[0] != r.Lookup(c.key) {
				t.Fatalf("Replicas[0] = %s, Lookup = %s", reps[0], r.Lookup(c.key))
			}
		})
	}

	t.Run("empty ring", func(t *testing.T) {
		empty := NewRing(8)
		if got := empty.Lookup("anything"); got != "" {
			t.Fatalf("Lookup on empty ring = %q", got)
		}
		if reps := empty.Replicas("anything", 2); reps != nil {
			t.Fatalf("Replicas on empty ring = %v", reps)
		}
	})
}
