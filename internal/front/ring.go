// Package front is the fleet front door of the serving layer: a proxy
// that routes inference traffic across N specserve backends by consistent
// hashing — on model name for stateless predicts (so one model's traffic
// concentrates on one backend and its micro-batcher actually coalesces),
// and on session ID for stateful monitor sessions (so a session's
// exponential-smoothing state lives on exactly one backend). Backends are
// health-checked via their /healthz and /metrics endpoints; failed hops
// retry with backoff against the next distinct backend on the ring, and
// admission control sheds load with 429 + Retry-After when the fleet's
// queue depth says it is saturated.
package front

import (
	"sort"
	"strconv"
	"sync"
)

// ringNode is one virtual node: a hash point owned by a backend.
type ringNode struct {
	hash    uint64
	backend int // index into Ring.backends
}

// Ring is a consistent-hash ring with virtual nodes. A key maps to the
// backend owning the first node clockwise of the key's hash; with V
// virtual nodes per backend the keyspace splits into ~V*N arcs, which is
// what bounds both the load imbalance and the fraction of keys that move
// when a backend joins or leaves (only the arcs adjacent to the new or
// dead backend's nodes change owners).
type Ring struct {
	vnodes int

	mu       sync.RWMutex
	backends []string
	nodes    []ringNode // sorted by hash
}

// NewRing creates a ring with vnodes virtual nodes per backend
// (<= 0 defaults to 64).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes}
}

// Set replaces the backend set. The mapping depends only on the set's
// contents, not the order given: backends are sorted before hashing, so
// two fronts configured with the same fleet route identically.
func (r *Ring) Set(backends []string) {
	bs := append([]string(nil), backends...)
	sort.Strings(bs)
	nodes := make([]ringNode, 0, len(bs)*r.vnodes)
	for bi, b := range bs {
		for v := 0; v < r.vnodes; v++ {
			nodes = append(nodes, ringNode{hash: hashKey(b + "#" + strconv.Itoa(v)), backend: bi})
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].hash != nodes[j].hash {
			return nodes[i].hash < nodes[j].hash
		}
		// A full 64-bit hash collision between two backends' nodes is
		// vanishingly rare; break the tie deterministically anyway.
		return nodes[i].backend < nodes[j].backend
	})
	r.mu.Lock()
	r.backends, r.nodes = bs, nodes
	r.mu.Unlock()
}

// Backends returns the current backend set (sorted).
func (r *Ring) Backends() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.backends...)
}

// Lookup returns the backend owning key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	reps := r.Replicas(key, 1)
	if len(reps) == 0 {
		return ""
	}
	return reps[0]
}

// Replicas returns up to n distinct backends in ring order starting at
// key's owner — the retry/failover order for that key. Requesting more
// backends than exist returns them all.
func (r *Ring) Replicas(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.nodes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.backends) {
		n = len(r.backends)
	}
	h := hashKey(key)
	start := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int]struct{}, n)
	for i := 0; i < len(r.nodes) && len(out) < n; i++ {
		node := r.nodes[(start+i)%len(r.nodes)]
		if _, dup := seen[node.backend]; dup {
			continue
		}
		seen[node.backend] = struct{}{}
		out = append(out, r.backends[node.backend])
	}
	return out
}

// hashKey is FNV-1a 64 with a murmur-style avalanche finalizer, inlined so
// per-request routing never allocates. The finalizer matters: raw FNV on
// the short, similar strings used here (vnode labels, model names, session
// IDs) leaves most entropy in the low bits and clusters hash points badly
// enough to skew ring ownership by >2x.
func hashKey(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
