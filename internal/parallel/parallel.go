// Package parallel provides the shared worker-pool primitive used by the
// hot paths of the library: dataset generation (msim, nmrsim),
// data-parallel training (nn) and batched inference (core monitoring).
//
// The contract every caller relies on is determinism: For distributes
// loop indices dynamically over goroutines, so callers must make each
// index's work independent of which worker executes it (per-index RNG
// child streams via rng.Source.Split, per-index output slots) and perform
// any order-sensitive reduction themselves after For returns, in index
// order. Under that discipline, results are bit-identical for any worker
// count, including 1.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Resolve maps a Workers knob to an actual worker count: values <= 0 mean
// "use every available core" (runtime.GOMAXPROCS).
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// For runs fn(worker, i) for every index i in [0, n), distributed over up
// to `workers` goroutines (0 = all cores). The worker argument is a stable
// goroutine identifier in [0, workers) that callers may use to index
// per-worker scratch (e.g. model replicas); indices are handed out
// dynamically, so no assumption may be made about which worker receives
// which index.
//
// The first error returned by fn stops the dispatch of further indices and
// is returned after all in-flight calls finish. A panic inside fn is
// recovered and surfaced the same way — as an error, never a hang or a
// crashed process.
func For(workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := protect(0, i, fn); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stopped  atomic.Bool
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for !stopped.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := protect(worker, i, fn); err != nil {
					errOnce.Do(func() { firstErr = err })
					stopped.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// protect invokes fn and converts a panic into an error carrying the
// offending index and the goroutine stack.
func protect(worker, i int, fn func(worker, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("parallel: panic on index %d: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(worker, i)
}
