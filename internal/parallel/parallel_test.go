package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(7); got != 7 {
		t.Fatalf("Resolve(7) = %d", got)
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			const n = 257
			hits := make([]int32, n)
			if err := For(workers, n, func(_, i int) error {
				atomic.AddInt32(&hits[i], 1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("index %d executed %d times", i, h)
				}
			}
		})
	}
}

func TestForEmptyAndNegativeRange(t *testing.T) {
	calls := 0
	if err := For(4, 0, func(_, _ int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := For(4, -5, func(_, _ int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("fn called %d times on empty ranges", calls)
	}
}

func TestForWorkerIDsAreDistinctAndInRange(t *testing.T) {
	const workers = 4
	const n = 1000
	var seen [workers]int32
	if err := For(workers, n, func(w, _ int) error {
		if w < 0 || w >= workers {
			return fmt.Errorf("worker id %d out of range", w)
		}
		atomic.AddInt32(&seen[w], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	total := int32(0)
	for _, s := range seen {
		total += s
	}
	if total != n {
		t.Fatalf("workers executed %d indices in total, want %d", total, n)
	}
}

func TestForPropagatesFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	var calls atomic.Int32
	err := For(4, 10_000, func(_, i int) error {
		calls.Add(1)
		if i == 17 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	// the error must stop dispatch early, not run the whole range
	if c := calls.Load(); c == 10_000 {
		t.Fatalf("error did not stop dispatch (all %d indices ran)", c)
	}
}

// TestForPanicSurfacesAsError is the injected-panic stress test required by
// the issue: a worker panic must come back as an error — never a hang and
// never a crashed test binary.
func TestForPanicSurfacesAsError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			err := For(workers, 500, func(_, i int) error {
				if i%97 == 13 {
					panic(fmt.Sprintf("injected panic at %d", i))
				}
				return nil
			})
			if err == nil {
				t.Fatal("panic inside fn must surface as an error")
			}
			if !strings.Contains(err.Error(), "injected panic") {
				t.Fatalf("error does not carry the panic value: %v", err)
			}
		})
	}
}

// TestForStress hammers many concurrent pools to shake out races between
// dispatch, error propagation and shutdown (run under -race in CI).
func TestForStress(t *testing.T) {
	for round := 0; round < 8; round++ {
		round := round
		t.Run(fmt.Sprintf("round=%d", round), func(t *testing.T) {
			t.Parallel()
			out := make([]int, 512)
			if err := For(0, len(out), func(_, i int) error {
				out[i] = i * i
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("out[%d] = %d", i, v)
				}
			}
		})
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = For(4, 64, func(_, _ int) error { return nil })
	}
}
