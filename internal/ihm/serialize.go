package ihm

import (
	"encoding/json"
	"fmt"
	"io"
)

// componentFormat versions the component-model JSON layout.
const componentFormat = "specml/ihm-components/v1"

type savedComponents struct {
	Format     string            `json:"format"`
	Components []*ComponentModel `json:"components"`
}

// SaveComponents writes a set of fitted hard models as JSON, so pure-
// component fits can be reused across sessions without re-measuring.
func SaveComponents(components []*ComponentModel, w io.Writer) error {
	if len(components) == 0 {
		return fmt.Errorf("ihm: no components to save")
	}
	for _, c := range components {
		for _, p := range c.Peaks {
			if err := p.Validate(); err != nil {
				return fmt.Errorf("ihm: component %q: %w", c.Name, err)
			}
		}
	}
	return json.NewEncoder(w).Encode(&savedComponents{Format: componentFormat, Components: components})
}

// LoadComponents reads hard models saved with SaveComponents.
func LoadComponents(r io.Reader) ([]*ComponentModel, error) {
	var s savedComponents
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("ihm: decoding components: %w", err)
	}
	if s.Format != componentFormat {
		return nil, fmt.Errorf("ihm: unsupported component format %q", s.Format)
	}
	if len(s.Components) == 0 {
		return nil, fmt.Errorf("ihm: component file holds no components")
	}
	for _, c := range s.Components {
		if len(c.Peaks) == 0 {
			return nil, fmt.Errorf("ihm: component %q has no peaks", c.Name)
		}
		for _, p := range c.Peaks {
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("ihm: component %q: %w", c.Name, err)
			}
		}
	}
	return s.Components, nil
}
