package ihm

import (
	"bytes"
	"strings"
	"testing"

	"specml/internal/spectrum"
)

func TestComponentsSaveLoad(t *testing.T) {
	comps := twoComponents()
	var buf bytes.Buffer
	if err := SaveComponents(comps, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadComponents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "A" || len(got[1].Peaks) != len(comps[1].Peaks) {
		t.Fatalf("round trip changed components: %+v", got)
	}
	// evaluation agrees
	for _, x := range []float64{1.5, 2.0, 4.2, 8.5} {
		if got[0].Value(x, 0.01, 1.1) != comps[0].Value(x, 0.01, 1.1) {
			t.Fatal("loaded component evaluates differently")
		}
	}
}

func TestSaveComponentsValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveComponents(nil, &buf); err == nil {
		t.Fatal("empty set must not save")
	}
	bad := []*ComponentModel{{Name: "x", Peaks: []spectrum.Peak{{Center: 1, Area: 1, Width: -1}}}}
	if err := SaveComponents(bad, &buf); err == nil {
		t.Fatal("invalid peak must not save")
	}
}

func TestLoadComponentsErrors(t *testing.T) {
	if _, err := LoadComponents(strings.NewReader("junk")); err == nil {
		t.Fatal("junk must not load")
	}
	if _, err := LoadComponents(strings.NewReader(`{"format":"nope"}`)); err == nil {
		t.Fatal("wrong format must not load")
	}
	if _, err := LoadComponents(strings.NewReader(
		`{"format":"specml/ihm-components/v1","components":[]}`)); err == nil {
		t.Fatal("empty components must not load")
	}
	if _, err := LoadComponents(strings.NewReader(
		`{"format":"specml/ihm-components/v1","components":[{"Name":"x","Peaks":[]}]}`)); err == nil {
		t.Fatal("peakless component must not load")
	}
}
