package ihm

import (
	"math"
	"testing"
	"testing/quick"

	"specml/internal/rng"
	"specml/internal/spectrum"
)

func testAxis() spectrum.Axis { return spectrum.MustAxis(0, 0.01, 1001) } // 0..10

func renderModel(t *testing.T, axis spectrum.Axis, weights []float64,
	comps []*ComponentModel, shift, wf, noise float64, seed uint64) *spectrum.Spectrum {
	t.Helper()
	s := spectrum.New(axis)
	for j, c := range comps {
		if err := c.Render(s, weights[j], shift, wf); err != nil {
			t.Fatal(err)
		}
	}
	if noise > 0 {
		src := rng.New(seed)
		for i := range s.Intensities {
			s.Intensities[i] += src.Normal(0, noise)
		}
	}
	return s
}

func twoComponents() []*ComponentModel {
	a := &ComponentModel{Name: "A", Peaks: []spectrum.Peak{
		{Center: 2.0, Area: 3, Width: 0.05, Eta: 0.8},
		{Center: 7.0, Area: 1, Width: 0.05, Eta: 0.8},
	}}
	b := &ComponentModel{Name: "B", Peaks: []spectrum.Peak{
		{Center: 4.0, Area: 2, Width: 0.06, Eta: 0.7},
		{Center: 8.5, Area: 2, Width: 0.06, Eta: 0.7},
	}}
	a.Normalize()
	b.Normalize()
	return []*ComponentModel{a, b}
}

func TestComponentNormalize(t *testing.T) {
	c := &ComponentModel{Name: "X", Peaks: []spectrum.Peak{
		{Center: 1, Area: 2, Width: 0.1, Eta: 0.5},
		{Center: 3, Area: 6, Width: 0.1, Eta: 0.5},
	}}
	c.Normalize()
	if math.Abs(c.TotalArea()-1) > 1e-12 {
		t.Fatalf("TotalArea after Normalize = %v", c.TotalArea())
	}
	if math.Abs(c.Peaks[1].Area-0.75) > 1e-12 {
		t.Fatal("relative areas not preserved")
	}
	// zero-area model untouched
	z := &ComponentModel{Name: "Z"}
	z.Normalize()
	if z.TotalArea() != 0 {
		t.Fatal("empty model changed")
	}
}

func TestComponentValueMatchesRender(t *testing.T) {
	comps := twoComponents()
	axis := testAxis()
	s := spectrum.New(axis)
	if err := comps[0].Render(s, 2.5, 0.03, 1.2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < axis.N; i += 97 {
		x := axis.Value(i)
		want := 2.5 * comps[0].Value(x, 0.03, 1.2)
		if math.Abs(s.Intensities[i]-want) > 1e-9 {
			t.Fatalf("Value/Render mismatch at %v: %v vs %v", x, s.Intensities[i], want)
		}
	}
	if err := comps[0].Render(s, 1, 0, 0); err == nil {
		t.Fatal("zero width factor must error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := twoComponents()[0]
	d := c.Clone()
	d.Peaks[0].Area = 99
	if c.Peaks[0].Area == 99 {
		t.Fatal("Clone must deep-copy peaks")
	}
}

func TestFitPureComponentRoundTrip(t *testing.T) {
	axis := testAxis()
	truth := twoComponents()[0]
	s := spectrum.New(axis)
	if err := truth.Render(s, 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	fitted, err := FitPureComponent("A", s, 6)
	if err != nil {
		t.Fatal(err)
	}
	// the fitted model must reproduce the spectrum closely
	recon := spectrum.New(axis)
	if err := fitted.Render(recon, 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	num, den := 0.0, 0.0
	for i := range recon.Intensities {
		d := recon.Intensities[i] - s.Intensities[i]
		num += d * d
		den += s.Intensities[i] * s.Intensities[i]
	}
	if rel := math.Sqrt(num / den); rel > 0.05 {
		t.Fatalf("pure-component fit relative error %v", rel)
	}
	// both true peak positions must be found
	for _, want := range []float64{2.0, 7.0} {
		found := false
		for _, p := range fitted.Peaks {
			if math.Abs(p.Center-want) < 0.05 {
				found = true
			}
		}
		if !found {
			t.Fatalf("peak at %v not found: %+v", want, fitted.Peaks)
		}
	}
}

func TestFitPureComponentNoisy(t *testing.T) {
	axis := testAxis()
	truth := twoComponents()[1]
	s := spectrum.New(axis)
	if err := truth.Render(s, 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	for i := range s.Intensities {
		s.Intensities[i] += src.Normal(0, 0.01)
	}
	fitted, err := FitPureComponent("B", s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(fitted.Peaks) < 2 {
		t.Fatalf("found only %d peaks", len(fitted.Peaks))
	}
}

func TestFitPureComponentErrors(t *testing.T) {
	axis := testAxis()
	if _, err := FitPureComponent("x", spectrum.New(axis), 5); err == nil {
		t.Fatal("flat spectrum must error")
	}
	s := spectrum.New(axis)
	s.Intensities[3] = 1
	if _, err := FitPureComponent("x", s, 0); err == nil {
		t.Fatal("maxPeaks=0 must error")
	}
}

func TestAnalyzeRecoversWeights(t *testing.T) {
	comps := twoComponents()
	axis := testAxis()
	weights := []float64{0.7, 0.3}
	s := renderModel(t, axis, weights, comps, 0, 1, 0.002, 3)
	an, err := NewMixtureAnalyzer(comps, AnalyzerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	for j := range weights {
		if math.Abs(res.Weights[j]-weights[j]) > 0.02 {
			t.Fatalf("weight %d = %v, want %v", j, res.Weights[j], weights[j])
		}
	}
}

func TestAnalyzeWithShiftAndBroadening(t *testing.T) {
	// IHM's selling point: it tolerates shifted and broadened signals.
	comps := twoComponents()
	axis := testAxis()
	weights := []float64{0.5, 0.5}
	s := renderModel(t, axis, weights, comps, 0.03, 1.25, 0.002, 7)
	an, err := NewMixtureAnalyzer(comps, AnalyzerOptions{MaxShift: 0.06, WidthRange: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	for j := range weights {
		if math.Abs(res.Weights[j]-weights[j]) > 0.04 {
			t.Fatalf("distorted weight %d = %v, want %v", j, res.Weights[j], weights[j])
		}
	}
	// fitted distortions should move toward the truth
	if res.Shifts[0] < 0.005 {
		t.Fatalf("shift not detected: %v", res.Shifts)
	}
	if res.WidthFactors[0] < 1.05 {
		t.Fatalf("broadening not detected: %v", res.WidthFactors)
	}
}

// Property: analysis of a noise-free synthetic mixture recovers the
// simplex composition.
func TestAnalyzeProperty(t *testing.T) {
	comps := twoComponents()
	axis := testAxis()
	an, err := NewMixtureAnalyzer(comps, AnalyzerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(11)
	f := func(_ uint8) bool {
		w := []float64{src.Uniform(0.1, 1), src.Uniform(0.1, 1)}
		s := spectrum.New(axis)
		for j, c := range comps {
			if err := c.Render(s, w[j], 0, 1); err != nil {
				return false
			}
		}
		res, err := an.Analyze(s)
		if err != nil {
			return false
		}
		for j := range w {
			if math.Abs(res.Weights[j]-w[j]) > 0.02*(1+w[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestConcentrations(t *testing.T) {
	r := &Result{Weights: []float64{1, 3}}
	c := r.Concentrations()
	if math.Abs(c[0]-0.25) > 1e-12 || math.Abs(c[1]-0.75) > 1e-12 {
		t.Fatalf("Concentrations = %v", c)
	}
	z := &Result{Weights: []float64{0, 0}}
	cz := z.Concentrations()
	if math.Abs(cz[0]-0.5) > 1e-12 {
		t.Fatalf("zero-weight Concentrations = %v", cz)
	}
}

func TestAnalyzerValidation(t *testing.T) {
	if _, err := NewMixtureAnalyzer(nil, AnalyzerOptions{}); err == nil {
		t.Fatal("empty component list must error")
	}
	comps := twoComponents()
	an, _ := NewMixtureAnalyzer(comps, AnalyzerOptions{})
	tiny := spectrum.New(spectrum.MustAxis(0, 1, 4))
	if _, err := an.Analyze(tiny); err == nil {
		t.Fatal("too-short spectrum must error")
	}
}
