package ihm

import (
	"fmt"
	"math"
	"sync"

	"specml/internal/fit"
	"specml/internal/spectrum"
	"specml/internal/tensor/pool"
)

// analyzeScratch holds the per-call working buffers of Analyze. They are
// recycled through a sync.Pool because mixture analysis runs per spectrum
// in tight evaluation loops (and concurrently in serve handlers), and the
// LM solver never retains them: fit.LevenbergMarquardt copies the initial
// parameter vector, so Result never aliases scratch memory.
type analyzeScratch struct {
	design, b, params, lower, upper []float64
}

var analyzePool = sync.Pool{New: func() any { return new(analyzeScratch) }}

// AnalyzerOptions configures a MixtureAnalyzer.
type AnalyzerOptions struct {
	// MaxShift bounds the per-component chemical-shift relaxation (axis
	// units). Default 0.05.
	MaxShift float64
	// WidthRange bounds the per-component line-width factor around 1.
	// Default 0.5 (factor in [0.5, 1.5]).
	WidthRange float64
	// MaxIterations bounds the LM refinement. Default 60.
	MaxIterations int
	// Stride decimates the residual grid for speed (default: chosen so the
	// residual count stays near 1000 points).
	Stride int
}

// MixtureAnalyzer performs IHM mixture analysis against a fixed set of
// pure-component hard models.
type MixtureAnalyzer struct {
	Components []*ComponentModel
	Opts       AnalyzerOptions
}

// NewMixtureAnalyzer returns an analyzer for the given components.
func NewMixtureAnalyzer(components []*ComponentModel, opts AnalyzerOptions) (*MixtureAnalyzer, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("ihm: analyzer needs at least one component")
	}
	if opts.MaxShift <= 0 {
		opts.MaxShift = 0.05
	}
	if opts.WidthRange <= 0 {
		opts.WidthRange = 0.5
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 60
	}
	return &MixtureAnalyzer{Components: components, Opts: opts}, nil
}

// Result is the outcome of one mixture analysis.
type Result struct {
	// Weights are the fitted component intensities (concentration
	// estimates, same order as Components).
	Weights []float64
	// Shifts and WidthFactors are the fitted per-component distortions.
	Shifts       []float64
	WidthFactors []float64
	// Residual is the final 0.5*||r||² cost.
	Residual float64
	// Iterations spent in the nonlinear refinement.
	Iterations int
}

// Analyze fits the component models to a mixture spectrum. The initial
// weights come from a non-negative linear solve with no distortions; LM
// then refines weights, shifts and width factors jointly.
func (a *MixtureAnalyzer) Analyze(s *spectrum.Spectrum) (*Result, error) {
	k := len(a.Components)
	axis := s.Axis
	stride := a.Opts.Stride
	if stride <= 0 {
		stride = axis.N / 1000
		if stride < 1 {
			stride = 1
		}
	}
	nRes := 0
	for i := 0; i < axis.N; i += stride {
		nRes++
	}
	if nRes < 3*k {
		return nil, fmt.Errorf("ihm: spectrum too short (%d residuals) for %d components", nRes, k)
	}

	sc := analyzePool.Get().(*analyzeScratch)
	defer analyzePool.Put(sc)

	// initial linear estimate: design matrix of undistorted components
	sc.design = pool.Grow(sc.design, nRes*k)
	sc.b = pool.Grow(sc.b, nRes)
	design, b := sc.design, sc.b
	for r, i := 0, 0; i < axis.N; i += stride {
		x := axis.Value(i)
		for j, c := range a.Components {
			design[r*k+j] = c.Value(x, 0, 1)
		}
		b[r] = s.Intensities[i]
		r++
	}
	w0, err := fit.LinearLeastSquares(design, b, nRes, k)
	if err != nil {
		return nil, fmt.Errorf("ihm: initial linear solve: %w", err)
	}
	for j := range w0 {
		if w0[j] < 0 {
			w0[j] = 0
		}
	}

	// nonlinear refinement: params = [w_j, shift_j, widthFactor_j]*k
	sc.params = pool.Grow(sc.params, 3*k)
	sc.lower = pool.Grow(sc.lower, 3*k)
	sc.upper = pool.Grow(sc.upper, 3*k)
	params, lower, upper := sc.params, sc.lower, sc.upper
	for j := 0; j < k; j++ {
		params[3*j], params[3*j+1], params[3*j+2] = w0[j], 0, 1
		lower[3*j], lower[3*j+1], lower[3*j+2] = 0, -a.Opts.MaxShift, 1-a.Opts.WidthRange
		upper[3*j], upper[3*j+1], upper[3*j+2] = math.MaxFloat64, a.Opts.MaxShift, 1+a.Opts.WidthRange
	}
	iterCount := 0
	prob := fit.Problem{
		NumResiduals: nRes,
		Residuals: func(p, out []float64) {
			iterCount++
			for r, i := 0, 0; i < axis.N; i += stride {
				x := axis.Value(i)
				v := 0.0
				for j, c := range a.Components {
					w, sh, wf := p[3*j], p[3*j+1], p[3*j+2]
					if w != 0 {
						v += w * c.Value(x, sh, wf)
					}
				}
				out[r] = v - s.Intensities[i]
				r++
			}
		},
		Lower: lower,
		Upper: upper,
	}
	res, err := fit.LevenbergMarquardt(prob, params, fit.Options{MaxIterations: a.Opts.MaxIterations})
	if err != nil && err != fit.ErrNoProgress {
		return nil, fmt.Errorf("ihm: refinement: %w", err)
	}
	out := &Result{
		Weights:      make([]float64, k),
		Shifts:       make([]float64, k),
		WidthFactors: make([]float64, k),
		Residual:     res.Cost,
		Iterations:   res.Iterations,
	}
	for j := 0; j < k; j++ {
		out.Weights[j] = res.Params[3*j]
		out.Shifts[j] = res.Params[3*j+1]
		out.WidthFactors[j] = res.Params[3*j+2]
	}
	return out, nil
}

// Concentrations converts fitted weights to fractional concentrations
// (normalized to sum to 1). A zero total returns uniform fractions.
func (r *Result) Concentrations() []float64 {
	out := make([]float64, len(r.Weights))
	sum := 0.0
	for _, w := range r.Weights {
		sum += w
	}
	if sum <= 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i, w := range r.Weights {
		out[i] = w / sum
	}
	return out
}
